// Package bfbdd is a binary decision diagram (BDD) library built around
// the parallel partial breadth-first construction algorithm of Yang and
// O'Hallaron, "Parallel Breadth-First BDD Construction" (PPoPP 1997).
//
// # Overview
//
// A Manager owns a fixed set of Boolean variables and constructs reduced
// ordered BDDs over them. Construction can run with one of five engines:
//
//   - EngineDF: conventional depth-first apply (Brace/Rudell/Bryant style),
//   - EngineBF: pure breadth-first expansion/reduction,
//   - EngineHybrid: breadth-first until a memory threshold, then
//     depth-first (Chen/Yang/Bryant),
//   - EnginePBF: the paper's sequential partial breadth-first algorithm
//     with evaluation contexts (the default), and
//   - EnginePar: the paper's parallel algorithm — per-worker node managers
//     and compute caches, per-variable unique-table locks, and dynamic
//     load balancing by stealing operation groups from context stacks.
//
// All engines produce identical canonical diagrams; they differ in memory
// behaviour and parallel scalability.
//
// # Handles and garbage collection
//
// Every BDD value returned by the library is pinned: it stays valid across
// the manager's internal garbage collections (mark-compact by default),
// which relocate nodes. Call Free when a BDD is no longer needed so its
// nodes can be reclaimed. Because BDDs are canonical, Equal is a constant
// time comparison.
//
// # Concurrency
//
// A Manager parallelizes internally (EnginePar) but its public API is not
// safe for concurrent use: issue operations from one goroutine at a time.
//
// # Quick start
//
//	m := bfbdd.New(4, bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(4))
//	a, b := m.Var(0), m.Var(1)
//	f := a.And(b)
//	g := b.And(a)
//	fmt.Println(f.Equal(g)) // true
//	fmt.Println(f.SatCount()) // 4 (two free variables)
package bfbdd
