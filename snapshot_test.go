package bfbdd_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"bfbdd"
	"bfbdd/internal/snapshot"
)

// dotOf renders b deterministically; with WriteDOT's stable ordering this
// is a canonical structural fingerprint.
func dotOf(t *testing.T, b *bfbdd.BDD) string {
	t.Helper()
	var sb strings.Builder
	if err := bfbdd.WriteDOT(&sb, nil, b); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	return sb.String()
}

func randAssign(rng *rand.Rand, n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = rng.Intn(2) == 0
	}
	return a
}

// TestSnapshotRoundTripProperty builds random circuits under several
// engines, snapshots them, restores them (under a different engine than
// they were built with), and checks Eval, SatCount, Size, Support, and
// full structural equality against the originals. It also checks the
// compaction-on-load guarantee (restored live nodes never exceed the
// source's) and write determinism (re-snapshotting the restored manager
// reproduces the original bytes).
func TestSnapshotRoundTripProperty(t *testing.T) {
	const vars = 12
	engines := []struct {
		name    string
		opts    []bfbdd.Option
		restore []bfbdd.Option
	}{
		{"pbf->df", nil, []bfbdd.Option{bfbdd.WithEngine(bfbdd.EngineDF)}},
		{"df->pbf", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EngineDF)}, nil},
		{"par->pbf", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(3)}, nil},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed))
				m := bfbdd.New(vars, eng.opts...)
				roots := make([]*bfbdd.BDD, 3)
				for i := range roots {
					f := m.Var(rng.Intn(vars))
					for j := 0; j < 10; j++ {
						g := m.Var(rng.Intn(vars))
						switch rng.Intn(4) {
						case 0:
							f = f.And(g)
						case 1:
							f = f.Or(g.Not())
						case 2:
							f = f.Xor(g)
						default:
							f = f.Implies(g)
						}
					}
					roots[i] = f
				}

				var buf bytes.Buffer
				if err := m.Snapshot(&buf, roots...); err != nil {
					t.Fatalf("seed %d: Snapshot: %v", seed, err)
				}
				saved := append([]byte(nil), buf.Bytes()...)
				preNodes := m.NumNodes()

				m2, restored, err := bfbdd.RestoreManager(bytes.NewReader(saved), eng.restore...)
				if err != nil {
					t.Fatalf("seed %d: RestoreManager: %v", seed, err)
				}
				if len(restored) != len(roots) {
					t.Fatalf("seed %d: restored %d roots, want %d", seed, len(restored), len(roots))
				}
				if m2.NumVars() != vars {
					t.Fatalf("seed %d: restored NumVars = %d, want %d", seed, m2.NumVars(), vars)
				}
				if m2.NumNodes() > preNodes {
					t.Errorf("seed %d: restore grew the node space: %d > %d", seed, m2.NumNodes(), preNodes)
				}
				for i, rr := range restored {
					orig := roots[i]
					if rr.ID != uint64(i) {
						t.Fatalf("seed %d root %d: ID = %d", seed, i, rr.ID)
					}
					if got, want := rr.B.Size(), orig.Size(); got != want {
						t.Errorf("seed %d root %d: Size = %d, want %d", seed, i, got, want)
					}
					if got, want := rr.B.SatCount(), orig.SatCount(); got.Cmp(want) != 0 {
						t.Errorf("seed %d root %d: SatCount = %v, want %v", seed, i, got, want)
					}
					if got, want := rr.B.Support(), orig.Support(); len(got) != len(want) {
						t.Errorf("seed %d root %d: Support = %v, want %v", seed, i, got, want)
					}
					for trial := 0; trial < 32; trial++ {
						a := randAssign(rng, vars)
						if rr.B.Eval(a) != orig.Eval(a) {
							t.Fatalf("seed %d root %d: Eval(%v) disagrees after restore", seed, i, a)
						}
					}
					if got, want := dotOf(t, rr.B), dotOf(t, orig); got != want {
						t.Errorf("seed %d root %d: structure differs after restore\ngot:\n%s\nwant:\n%s", seed, i, got, want)
					}
				}

				// Determinism: the restored manager holds exactly the saved
				// subgraph in the saved order, so re-snapshotting it must
				// reproduce the stream byte for byte.
				var buf2 bytes.Buffer
				rr2 := make([]*bfbdd.BDD, len(restored))
				for i, rr := range restored {
					rr2[i] = rr.B
				}
				if err := m2.Snapshot(&buf2, rr2...); err != nil {
					t.Fatalf("seed %d: re-Snapshot: %v", seed, err)
				}
				if !bytes.Equal(saved, buf2.Bytes()) {
					t.Errorf("seed %d: re-snapshot of restored manager is not byte-identical (%d vs %d bytes)",
						seed, len(saved), buf2.Len())
				}
				m.Close()
				m2.Close()
			}
		})
	}
}

// TestSnapshotRawRefsRoundTrip checks that the non-delta encoding decodes
// to the same structures.
func TestSnapshotRawRefsRoundTrip(t *testing.T) {
	m := bfbdd.New(8)
	defer m.Close()
	f := m.Var(0).Xor(m.Var(3)).Or(m.Var(5).And(m.Var(7).Not()))

	var delta, raw bytes.Buffer
	if err := m.SnapshotRoots(&delta, []bfbdd.SnapshotRoot{{ID: 42, B: f}}); err != nil {
		t.Fatalf("delta snapshot: %v", err)
	}
	if err := m.SnapshotRoots(&raw, []bfbdd.SnapshotRoot{{ID: 42, B: f}}, bfbdd.SnapshotRawRefs()); err != nil {
		t.Fatalf("raw snapshot: %v", err)
	}
	if bytes.Equal(delta.Bytes(), raw.Bytes()) {
		t.Fatalf("raw and delta encodings are identical; flag is not taking effect")
	}
	for name, stream := range map[string][]byte{"delta": delta.Bytes(), "raw": raw.Bytes()} {
		m2, roots, err := bfbdd.RestoreManager(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("%s restore: %v", name, err)
		}
		if len(roots) != 1 || roots[0].ID != 42 {
			t.Fatalf("%s restore: roots = %+v", name, roots)
		}
		if got, want := dotOf(t, roots[0].B), dotOf(t, f); got != want {
			t.Errorf("%s restore: structure differs", name)
		}
		m2.Close()
	}
}

// TestSnapshotTerminalAndEmptyRoots covers the degenerate shapes: no
// roots at all, and constant-only roots.
func TestSnapshotTerminalAndEmptyRoots(t *testing.T) {
	m := bfbdd.New(4)
	defer m.Close()

	var buf bytes.Buffer
	if err := m.SnapshotRoots(&buf, nil); err != nil {
		t.Fatalf("empty snapshot: %v", err)
	}
	m2, roots, err := bfbdd.RestoreManager(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("empty restore: %v", err)
	}
	if len(roots) != 0 || m2.NumVars() != 4 || m2.NumNodes() != 0 {
		t.Fatalf("empty restore: roots=%d vars=%d nodes=%d", len(roots), m2.NumVars(), m2.NumNodes())
	}
	m2.Close()

	buf.Reset()
	if err := m.Snapshot(&buf, m.Zero(), m.One()); err != nil {
		t.Fatalf("terminal snapshot: %v", err)
	}
	m3, roots, err := bfbdd.RestoreManager(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("terminal restore: %v", err)
	}
	defer m3.Close()
	if len(roots) != 2 || !roots[0].B.IsZero() || !roots[1].B.IsOne() {
		t.Fatalf("terminal restore mismatched: %+v", roots)
	}
}

// TestSnapshotPreservesVariableOrder reorders variables before saving and
// checks the restored manager speaks the same variable indexing.
func TestSnapshotPreservesVariableOrder(t *testing.T) {
	m := bfbdd.New(6)
	defer m.Close()
	f := m.Var(0).And(m.Var(3)).Or(m.Var(5).Xor(m.Var(1)))
	m.SetOrder([]int{5, 4, 3, 2, 1, 0}) // reverse the order

	var buf bytes.Buffer
	if err := m.Snapshot(&buf, f); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	m2, roots, err := bfbdd.RestoreManager(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("RestoreManager: %v", err)
	}
	defer m2.Close()
	if got, want := m2.Order(), m.Order(); len(got) != len(want) {
		t.Fatalf("Order length mismatch")
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("restored Order = %v, want %v", got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		a := randAssign(rng, 6)
		if roots[0].B.Eval(a) != f.Eval(a) {
			t.Fatalf("Eval(%v) differs after reorder+restore", a)
		}
	}
}

// TestSnapshotDropsDeadNodes checks compaction-on-load: garbage that is
// unreachable from the saved roots never crosses the snapshot boundary.
func TestSnapshotDropsDeadNodes(t *testing.T) {
	m := bfbdd.New(16, bfbdd.WithGCMinNodes(1<<30)) // suppress auto-GC
	defer m.Close()
	keep := m.Var(0).And(m.Var(1)).Or(m.Var(2))
	// Manufacture a pile of garbage the manager still stores.
	for i := 0; i < 10; i++ {
		g := m.Var(i).Xor(m.Var(15 - i)).And(m.Var((i + 3) % 16))
		g.Free()
	}
	keepSize := uint64(keep.Size())
	if m.NumNodes() <= keepSize {
		t.Fatalf("test needs garbage: live=%d keep=%d", m.NumNodes(), keepSize)
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf, keep); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	m2, _, err := bfbdd.RestoreManager(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("RestoreManager: %v", err)
	}
	defer m2.Close()
	if m2.NumNodes() != keepSize {
		t.Fatalf("restored nodes = %d, want exactly the %d reachable ones", m2.NumNodes(), keepSize)
	}
}

// resealHeader recomputes the header checksum over bytes [0,28) and
// stores it at [28,32), so tests can patch header fields without
// tripping the CRC check first.
func resealHeader(b []byte) {
	binary.LittleEndian.PutUint32(b[28:32], crc32.ChecksumIEEE(b[:28]))
}

// validStream builds one well-formed snapshot to corrupt in the tests
// below.
func validStream(t *testing.T) []byte {
	t.Helper()
	m := bfbdd.New(10)
	defer m.Close()
	f := m.Var(0).And(m.Var(4)).Xor(m.Var(9).Or(m.Var(2)))
	g := f.Not().Implies(m.Var(7))
	var buf bytes.Buffer
	if err := m.Snapshot(&buf, f, g); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestRestoreTruncated checks that every proper prefix of a valid stream
// fails with ErrTruncated and never panics.
func TestRestoreTruncated(t *testing.T) {
	stream := validStream(t)
	for n := 0; n < len(stream); n++ {
		m, _, err := bfbdd.RestoreManager(bytes.NewReader(stream[:n]))
		if err == nil {
			m.Close()
			t.Fatalf("prefix of %d/%d bytes restored successfully", n, len(stream))
		}
		if !errors.Is(err, snapshot.ErrTruncated) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrTruncated", n, err)
		}
	}
}

// TestRestoreCorrupted flips every byte of a valid stream in turn; each
// mutation must either fail with a typed error or (if it happens to be
// semantically neutral, which CRC coverage makes effectively impossible)
// restore something evaluable. Panics fail the test by crashing it.
func TestRestoreCorrupted(t *testing.T) {
	stream := validStream(t)
	typed := []error{
		snapshot.ErrBadMagic, snapshot.ErrVersion, snapshot.ErrChecksum,
		snapshot.ErrTruncated, snapshot.ErrCorrupt, snapshot.ErrTooLarge,
	}
	for i := 0; i < len(stream); i++ {
		mut := append([]byte(nil), stream...)
		mut[i] ^= 0x41
		m, _, err := bfbdd.RestoreManager(bytes.NewReader(mut))
		if err == nil {
			m.Close()
			continue
		}
		ok := false
		for _, te := range typed {
			if errors.Is(err, te) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
}

// TestRestoreHostileRootCount patches the header's root count to the
// uint32 ceiling (re-sealing the header CRC, which any attacker can do)
// and checks the reader rejects the claim against the actual roots
// payload instead of allocating ~4 billion Root slots up front.
func TestRestoreHostileRootCount(t *testing.T) {
	for _, stream := range [][]byte{
		validStream(t),
		func() []byte { // degenerate stream: zero nodes, zero roots
			m := bfbdd.New(4)
			defer m.Close()
			var buf bytes.Buffer
			if err := m.SnapshotRoots(&buf, nil); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			return buf.Bytes()
		}(),
	} {
		mut := append([]byte(nil), stream...)
		binary.LittleEndian.PutUint32(mut[16:20], 0xFFFFFFFF)
		resealHeader(mut)
		m, _, err := bfbdd.RestoreManager(bytes.NewReader(mut))
		if err == nil {
			m.Close()
			t.Fatalf("hostile root count restored successfully")
		}
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("hostile root count: err = %v, want ErrCorrupt", err)
		}
	}
}

// TestRestoreTypedErrors exercises the specific error classes.
func TestRestoreTypedErrors(t *testing.T) {
	stream := validStream(t)

	t.Run("bad-magic", func(t *testing.T) {
		mut := append([]byte(nil), stream...)
		mut[0] = 'X'
		if _, _, err := bfbdd.RestoreManager(bytes.NewReader(mut)); !errors.Is(err, snapshot.ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		// Patch the version field and re-seal the header CRC so the version
		// check (not the checksum) fires.
		mut := append([]byte(nil), stream...)
		mut[8] = 99
		resealHeader(mut)
		if _, _, err := bfbdd.RestoreManager(bytes.NewReader(mut)); !errors.Is(err, snapshot.ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("bad-flags", func(t *testing.T) {
		mut := append([]byte(nil), stream...)
		mut[10] = 0xFE
		resealHeader(mut)
		if _, _, err := bfbdd.RestoreManager(bytes.NewReader(mut)); !errors.Is(err, snapshot.ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("payload-bit-rot", func(t *testing.T) {
		mut := append([]byte(nil), stream...)
		mut[len(mut)/2] ^= 0x10 // lands in some section payload or its CRC
		_, _, err := bfbdd.RestoreManager(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit rot restored successfully")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, _, err := bfbdd.RestoreManager(bytes.NewReader(nil)); !errors.Is(err, snapshot.ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
}
