#!/usr/bin/env bash
# End-to-end exercise of the compiled-function subsystem against a real
# bfbdd-serve process: publish artifacts from a live session, record
# their answers, close the session, kill the server with -9, restart
# over the same directory, and require the artifacts back with
# bit-identical answers — plus a download/offline round trip through
# the bfbdd-compile CLI. Run from the repo root with ./bfbdd-serve and
# ./bfbdd-compile already built (see .github/workflows/ci.yml).
set -euo pipefail

ADDR=127.0.0.1:8727
BASE=http://$ADDR
DIR=$(mktemp -d)
FN=$DIR/wire.fn
SERVER_PID=

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

jsonget() { # jsonget '<json>' <key>
  python3 -c 'import json,sys; print(json.loads(sys.argv[1])[sys.argv[2]])' "$1" "$2"
}

start_server() {
  ./bfbdd-serve -addr "$ADDR" -checkpoint-dir "$DIR/ckpt" -checkpoint-interval 1s &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server did not come up" >&2
  exit 1
}

# eval_batch <func> <root>: evaluate all 16 assignments of x0..x3 in one
# batch and print the 16 values as a compact 0/1 string.
eval_batch() {
  local rows
  rows=$(python3 -c '
import json
rows = [[bool(m >> i & 1) for i in range(4)] for m in range(16)]
print(json.dumps(rows))')
  curl -sf "$BASE/v1/funcs/$1/eval" -d "{\"root\":$2,\"assignments\":$rows}" |
    python3 -c 'import json,sys; print("".join("1" if v else "0" for v in json.load(sys.stdin)["values"]))'
}

echo "=== start server, build f = (x0 AND x1) OR (x2 XOR x3)"
start_server
CREATE=$(curl -sf "$BASE/v1/sessions" -d '{"vars":4,"engine":"pbf"}')
SID=$(jsonget "$CREATE" session)
S=$BASE/v1/sessions/$SID

H0=$(jsonget "$(curl -sf "$S/vars" -d '{"index":0}')" handle)
H1=$(jsonget "$(curl -sf "$S/vars" -d '{"index":1}')" handle)
H2=$(jsonget "$(curl -sf "$S/vars" -d '{"index":2}')" handle)
H3=$(jsonget "$(curl -sf "$S/vars" -d '{"index":3}')" handle)
A=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"and\",\"f\":$H0,\"g\":$H1}")" handle)
X=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"xor\",\"f\":$H2,\"g\":$H3}")" handle)
F=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"or\",\"f\":$A,\"g\":$X}")" handle)

echo "=== publish and record pre-kill answers"
PUB=$(curl -sf "$S/publish" -d "{\"name\":\"roundtrip\",\"handles\":[$F]}")
echo "published $(jsonget "$PUB" func): $(jsonget "$PUB" nodes) nodes, $(jsonget "$PUB" bytes) bytes"
VALUES_BEFORE=$(eval_batch roundtrip "$F")
WANT=$(python3 -c '
vals = []
for m in range(16):
    x = [bool(m >> i & 1) for i in range(4)]
    vals.append("1" if (x[0] and x[1]) or (x[2] != x[3]) else "0")
print("".join(vals))')
[ "$VALUES_BEFORE" = "$WANT" ] || { echo "pre-kill eval wrong: $VALUES_BEFORE != $WANT" >&2; exit 1; }
SAT_BEFORE=$(jsonget "$(curl -sf "$BASE/v1/funcs/roundtrip/query" -d "{\"kind\":\"satcount\",\"root\":$F}")" satcount)
echo "answers $VALUES_BEFORE, satcount $SAT_BEFORE"

echo "=== artifact must outlive its source session"
curl -sf -X DELETE "$S" >/dev/null
VALUES_ORPHAN=$(eval_batch roundtrip "$F")
[ "$VALUES_ORPHAN" = "$VALUES_BEFORE" ] || { echo "post-close eval drifted: $VALUES_ORPHAN" >&2; exit 1; }

echo "=== kill -9, restart, artifacts must reload"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

start_server
LIST=$(curl -sf "$BASE/v1/funcs")
python3 -c '
import json,sys
funcs = [f["func"] for f in json.loads(sys.argv[1])["funcs"]]
assert "roundtrip" in funcs, f"artifact missing after restart: {funcs}"' "$LIST"
VALUES_AFTER=$(eval_batch roundtrip "$F")
[ "$VALUES_AFTER" = "$VALUES_BEFORE" ] || { echo "post-kill eval drifted: $VALUES_AFTER != $VALUES_BEFORE" >&2; exit 1; }
SAT_AFTER=$(jsonget "$(curl -sf "$BASE/v1/funcs/roundtrip/query" -d "{\"kind\":\"satcount\",\"root\":$F}")" satcount)
[ "$SAT_AFTER" = "$SAT_BEFORE" ] || { echo "post-kill satcount drifted: $SAT_AFTER != $SAT_BEFORE" >&2; exit 1; }

echo "=== download and evaluate offline with bfbdd-compile"
curl -sf "$BASE/v1/funcs/roundtrip/download" -o "$FN"
./bfbdd-compile info "$FN"
for mask in 0 3 5 12 15; do
  BITS=$(python3 -c 'import sys; m=int(sys.argv[1]); print("".join(str(m >> i & 1) for i in range(4)))' "$mask")
  GOT=$(./bfbdd-compile eval -root "$F" "$FN" "$BITS" | awk '{print $3}')
  WANT_BIT=$(python3 -c 'import sys; v=sys.argv[1]; m=int(sys.argv[2]); print(v[m])' "$VALUES_BEFORE" "$mask")
  [ "$GOT" = "$WANT_BIT" ] || { echo "CLI eval mask $mask drifted: $GOT != $WANT_BIT" >&2; exit 1; }
done
CLI_SAT=$(./bfbdd-compile satcount -root "$F" "$FN")
[ "$CLI_SAT" = "$SAT_BEFORE" ] || { echo "CLI satcount drifted: $CLI_SAT != $SAT_BEFORE" >&2; exit 1; }

echo "=== delete must stick across restart"
curl -sf -X DELETE "$BASE/v1/funcs/roundtrip" >/dev/null
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=
start_server
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/funcs/roundtrip")
[ "$CODE" = "404" ] || { echo "deleted artifact resurrected ($CODE)" >&2; exit 1; }

kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=
echo "=== ok: artifacts survived session close and kill -9 with bit-identical answers"
