#!/usr/bin/env bash
# End-to-end checkpoint/restore exercise against a real bfbdd-serve
# process: build state, checkpoint, kill -9, restart over the same
# directory, and require bit-identical answers — plus an explicit
# snapshot-download/upload round trip through the HTTP API and the
# bfbdd-snap CLI. Run from the repo root with ./bfbdd-serve and
# ./bfbdd-snap already built (see .github/workflows/ci.yml).
set -euo pipefail

ADDR=127.0.0.1:8717
BASE=http://$ADDR
DIR=$(mktemp -d)
SNAP=$DIR/wire.snap
SERVER_PID=

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

jsonget() { # jsonget '<json>' <key>
  python3 -c 'import json,sys; print(json.loads(sys.argv[1])[sys.argv[2]])' "$1" "$2"
}

start_server() {
  ./bfbdd-serve -addr "$ADDR" -checkpoint-dir "$DIR/ckpt" -checkpoint-interval 1s &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server did not come up" >&2
  exit 1
}

echo "=== start server, build state"
start_server
CREATE=$(curl -sf "$BASE/v1/sessions" -d '{"vars":16,"engine":"pbf"}')
SID=$(jsonget "$CREATE" session)
S=$BASE/v1/sessions/$SID

# f = (x0 AND x1) OR (x2 XOR x3)
H0=$(jsonget "$(curl -sf "$S/vars" -d '{"index":0}')" handle)
H1=$(jsonget "$(curl -sf "$S/vars" -d '{"index":1}')" handle)
H2=$(jsonget "$(curl -sf "$S/vars" -d '{"index":2}')" handle)
H3=$(jsonget "$(curl -sf "$S/vars" -d '{"index":3}')" handle)
A=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"and\",\"f\":$H0,\"g\":$H1}")" handle)
X=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"xor\",\"f\":$H2,\"g\":$H3}")" handle)
F=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"or\",\"f\":$A,\"g\":$X}")" handle)
SAT_BEFORE=$(jsonget "$(curl -sf "$S/query" -d "{\"kind\":\"satcount\",\"f\":$F}")" satcount)
echo "session $SID, handle $F, satcount $SAT_BEFORE"

echo "=== wire snapshot round trip"
curl -sf -X POST "$S/snapshot" -o "$SNAP"
./bfbdd-snap info "$SNAP"
./bfbdd-snap verify "$SNAP"
RESTORED=$(curl -sf --data-binary @"$SNAP" "$BASE/v1/sessions/restore?engine=df")
SID2=$(python3 -c 'import json,sys; print(json.loads(sys.argv[1])["info"]["session"])' "$RESTORED")
SAT_WIRE=$(jsonget "$(curl -sf "$BASE/v1/sessions/$SID2/query" -d "{\"kind\":\"satcount\",\"f\":$F}")" satcount)
[ "$SAT_WIRE" = "$SAT_BEFORE" ] || { echo "wire restore satcount drifted: $SAT_WIRE != $SAT_BEFORE" >&2; exit 1; }

echo "=== checkpoint, kill -9, restart, verify recovery"
sleep 2.5 # let the 1s checkpoint loop commit both sessions
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

start_server
SAT_AFTER=$(jsonget "$(curl -sf "$S/query" -d "{\"kind\":\"satcount\",\"f\":$F}")" satcount)
[ "$SAT_AFTER" = "$SAT_BEFORE" ] || { echo "recovered satcount drifted: $SAT_AFTER != $SAT_BEFORE" >&2; exit 1; }

# Eval must agree on every one of the 16 assignments of x0..x3.
for mask in $(seq 0 15); do
  ASSIGN=$(python3 -c '
import json, sys
m = int(sys.argv[1])
print(json.dumps([bool(m >> i & 1) for i in range(4)] + [False] * 12))' "$mask")
  GOT=$(jsonget "$(curl -sf "$S/query" -d "{\"kind\":\"eval\",\"f\":$F,\"assignment\":$ASSIGN}")" value)
  WANT=$(python3 -c '
import sys
m = int(sys.argv[1])
x = [bool(m >> i & 1) for i in range(4)]
print(str((x[0] and x[1]) or (x[2] != x[3])))' "$mask")
  [ "$GOT" = "$WANT" ] || { echo "eval mask $mask drifted: $GOT != $WANT" >&2; exit 1; }
done

kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=
echo "=== ok: session survived kill -9 with bit-identical answers"
