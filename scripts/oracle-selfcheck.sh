#!/usr/bin/env bash
# Mutation-test the differential oracle: build bfbdd-fuzz with a known
# kernel bug planted behind the `oraclebug` build tag (Diff(f, f)
# returns One instead of Zero — see internal/core/oraclebug_on.go) and
# require that the oracle (a) detects it, (b) shrinks the failing
# sequence to at most 8 operations, and (c) writes a replay file that
# reproduces byte-for-byte under the same buggy build. A clean build
# must then pass the identical seeds. Run from the repo root.
set -euo pipefail

SEED=1
SEQS=200
VARS=8
OPS=40
MAX_SHRUNK_OPS=8

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

echo "oracle-selfcheck: building bfbdd-fuzz with the planted kernel bug"
go build -tags oraclebug -o "$DIR/fuzz-buggy" ./cmd/bfbdd-fuzz
go build -o "$DIR/fuzz-clean" ./cmd/bfbdd-fuzz

echo "oracle-selfcheck: fuzzing the buggy build (must detect a divergence)"
if "$DIR/fuzz-buggy" -seed "$SEED" -seqs "$SEQS" -vars "$VARS" -ops "$OPS" \
    -out "$DIR" >"$DIR/buggy.log" 2>&1; then
  echo "oracle-selfcheck: FAIL — oracle did not detect the planted bug" >&2
  cat "$DIR/buggy.log" >&2
  exit 1
fi
echo "oracle-selfcheck: planted bug detected"

REPLAY=$(ls "$DIR"/replay-*.json | head -n 1)
if [ -z "$REPLAY" ]; then
  echo "oracle-selfcheck: FAIL — no replay file written" >&2
  cat "$DIR/buggy.log" >&2
  exit 1
fi

SHRUNK_OPS=$(sed -n 's/^ *"shrunk_ops": *\([0-9]*\).*/\1/p' "$REPLAY" | head -n 1)
if [ -z "$SHRUNK_OPS" ]; then
  echo "oracle-selfcheck: FAIL — replay file has no shrunk sequence" >&2
  cat "$REPLAY" >&2
  exit 1
fi
if [ "$SHRUNK_OPS" -gt "$MAX_SHRUNK_OPS" ]; then
  echo "oracle-selfcheck: FAIL — shrunk to $SHRUNK_OPS ops, want <= $MAX_SHRUNK_OPS" >&2
  cat "$REPLAY" >&2
  exit 1
fi
echo "oracle-selfcheck: shrunk to $SHRUNK_OPS op(s) (limit $MAX_SHRUNK_OPS)"

grep -q "TestOracleRegression" "$REPLAY" || {
  echo "oracle-selfcheck: FAIL — replay file carries no regression test" >&2
  exit 1
}

echo "oracle-selfcheck: verifying the replay reproduces under the buggy build"
"$DIR/fuzz-buggy" -replay "$REPLAY"

echo "oracle-selfcheck: fuzzing a clean build on the same seeds (must pass)"
"$DIR/fuzz-clean" -seed "$SEED" -seqs "$SEQS" -vars "$VARS" -ops "$OPS" -out "$DIR"

echo "oracle-selfcheck: OK"
