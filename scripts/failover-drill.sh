#!/usr/bin/env bash
# Hot-standby failover drill against two real bfbdd-serve processes.
# A primary runs with -wal-sync=always (acknowledgements gate on both
# fsync and delivery to the connected follower), a follower bootstraps
# from its snapshots and streams the WAL tail. The drill drives
# acknowledged mutations while recording every acknowledged handle's
# canonical signature in a client-side ledger, requires the follower to
# stay ready (replication lag under -ready-max-lag 1s) during the load,
# kill -9s the primary mid-load, promotes the follower, and requires:
#   - every acknowledged handle answers with the same signature on the
#     promoted server (zero acknowledged-op loss),
#   - the promoted server is writable at a bumped epoch,
#   - the old primary, restarted as a follower of the new one, refuses
#     writes with 421 (it re-synced onto the newer timeline),
#   - bfbdd-wal verify proves the promoted history carries the new epoch.
# Run from the repo root with ./bfbdd-serve and ./bfbdd-wal already
# built (see .github/workflows/ci.yml).
set -euo pipefail

A_ADDR=127.0.0.1:8721
B_ADDR=127.0.0.1:8722
A_BASE=http://$A_ADDR
B_BASE=http://$B_ADDR
DIR=$(mktemp -d)
A_CKPT=$DIR/primary
B_CKPT=$DIR/standby
LEDGER=$DIR/ledger # lines of "<handle> <signature>"
A_PID=
B_PID=

cleanup() {
  [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
  [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

jsonget() { # jsonget '<json>' <key>
  python3 -c 'import json,sys; print(json.loads(sys.argv[1])[sys.argv[2]])' "$1" "$2"
}

wait_healthy() { # wait_healthy <base>
  for _ in $(seq 1 50); do
    curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "$1 did not come up" >&2
  exit 1
}

wait_ready() { # wait_ready <base>: readiness = bootstrap done, lag in bounds
  for _ in $(seq 1 200); do
    curl -sf "$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "$1 never became ready: $(curl -s "$1/readyz")" >&2
  exit 1
}

sig_of() { # sig_of <handle> -> canonical signature, read from $S
  jsonget "$(curl -sf "$S/query" -d "{\"kind\":\"signature\",\"f\":$1}")" signature
}

check_ledger() { # every acknowledged handle must answer identically at $S
  while read -r h want; do
    got=$(sig_of "$h")
    [ "$got" = "$want" ] || {
      echo "handle $h signature drifted after failover: $got != $want" >&2
      exit 1
    }
  done <"$LEDGER"
}

echo "=== start primary (sync acks) and hot standby"
./bfbdd-serve -addr "$A_ADDR" -checkpoint-dir "$A_CKPT" -wal-sync always \
  -checkpoint-interval 250ms -repl-sync-timeout 5s &
A_PID=$!
wait_healthy "$A_BASE"

CREATE=$(curl -sf "$A_BASE/v1/sessions" -d '{"vars":12}')
SID=$(jsonget "$CREATE" session)
S=$A_BASE/v1/sessions/$SID

./bfbdd-serve -addr "$B_ADDR" -checkpoint-dir "$B_CKPT" -wal-sync always \
  -follow "$A_BASE" -ready-max-lag 1s -checkpoint-interval 0 &
B_PID=$!
wait_healthy "$B_BASE"
wait_ready "$B_BASE"
echo "ok: follower bootstrapped and ready"

echo "=== acknowledged load, then kill -9 the primary mid-stream"
(
  i=0
  while :; do
    i=$((i + 1))
    V=$(jsonget "$(curl -sf "$S/vars" -d "{\"index\":$((i % 12))}" 2>/dev/null)" handle 2>/dev/null) || break
    sig=$(sig_of "$V" 2>/dev/null) || break
    echo "$V $sig" >>"$LEDGER"
    H=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"xor\",\"f\":$V,\"g\":$V}" 2>/dev/null)" handle 2>/dev/null) || break
    sig=$(sig_of "$H" 2>/dev/null) || break
    echo "$H $sig" >>"$LEDGER"
  done
) &
LOAD_PID=$!

# The follower must hold its lag bound while the stream is live.
sleep 1
for _ in 1 2 3; do
  curl -sf "$B_BASE/readyz" >/dev/null || {
    echo "follower fell unready under load: $(curl -s "$B_BASE/readyz")" >&2
    exit 1
  }
  sleep 0.3
done
echo "ok: follower stayed within the 1s lag bound under load"

kill -9 "$A_PID"
wait "$A_PID" 2>/dev/null || true
A_PID=
wait "$LOAD_PID" 2>/dev/null || true
ACKED=$(wc -l <"$LEDGER")
[ "$ACKED" -gt 0 ] || { echo "load produced no acknowledged ops" >&2; exit 1; }
echo "ok: primary killed with $ACKED acknowledged ops in the ledger"

echo "=== promote the follower"
PROMOTE=$(curl -sf -X POST "$B_BASE/v1/admin/promote")
EPOCH=$(jsonget "$PROMOTE" epoch)
[ "$EPOCH" -ge 2 ] || { echo "promotion did not bump the epoch: $PROMOTE" >&2; exit 1; }
[ "$(jsonget "$PROMOTE" promoted)" = "True" ] || { echo "promotion not reported: $PROMOTE" >&2; exit 1; }

S=$B_BASE/v1/sessions/$SID
check_ledger
echo "ok: all $ACKED acknowledged ops survived the failover (epoch $EPOCH)"

# Writable: the promoted server acknowledges new mutations.
NEW=$(jsonget "$(curl -sf "$S/vars" -d '{"index":3}')" handle)
echo "$NEW $(sig_of "$NEW")" >>"$LEDGER"
echo "ok: promoted server is writable"

echo "=== restart the old primary; it must come back fenced"
./bfbdd-serve -addr "$A_ADDR" -checkpoint-dir "$A_CKPT" -wal-sync always \
  -follow "$B_BASE" -ready-max-lag 1s -checkpoint-interval 0 &
A_PID=$!
wait_healthy "$A_BASE"
CODE=$(curl -s -o "$DIR/refused" -w '%{http_code}' "$A_BASE/v1/sessions/$SID/vars" -d '{"index":4}')
[ "$CODE" = "421" ] || {
  echo "old primary accepted a write after failover (HTTP $CODE): $(cat "$DIR/refused")" >&2
  exit 1
}
grep -q "$B_BASE" "$DIR/refused" || {
  echo "421 does not point at the new primary: $(cat "$DIR/refused")" >&2
  exit 1
}
echo "ok: old primary refuses writes and redirects to the new primary"

# Once re-synced onto the new timeline it serves the same ledger.
wait_ready "$A_BASE"
S=$A_BASE/v1/sessions/$SID
check_ledger
echo "ok: old primary re-synced as a follower with an identical ledger"

echo "=== the promoted history carries the bumped epoch on disk"
kill -9 "$A_PID"; wait "$A_PID" 2>/dev/null || true; A_PID=
kill -9 "$B_PID"; wait "$B_PID" 2>/dev/null || true; B_PID=
OUT=$(./bfbdd-wal verify "$B_CKPT")
python3 -c '
import json, sys
v = json.loads(sys.argv[1])
assert v["ok"], v
assert v.get("max_epoch", 0) >= 2, v
' "$OUT"
echo "ok: bfbdd-wal verify reports the promoted epoch: $OUT"

echo "=== all failover-drill checks passed"
