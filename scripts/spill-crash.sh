#!/usr/bin/env bash
# Crash safety of the memory-tiering spill store: spill files are scratch
# state, so killing the server dead while sessions are tiered to disk
# must never lose an acknowledged operation — whether the spill files
# survive the crash intact, are deleted out from under the restart, or
# are corrupted in place. Each scenario builds state in a live server
# under -wal-sync=always, waits for the idle janitor to spill the
# session, kill -9s the process, manipulates the spill directory, and
# requires every acknowledged handle to answer with its recorded
# canonical signature after recovery (which rebuilds from checkpoint +
# WAL and wipes the stale spill dir). Run from the repo root with
# ./bfbdd-serve already built (see .github/workflows/ci.yml).
set -euo pipefail

ADDR=127.0.0.1:8723
BASE=http://$ADDR
DIR=$(mktemp -d)
CKPT=$DIR/ckpt
SPILL=$CKPT/spill # bfbdd-serve's default spill dir under -checkpoint-dir
LEDGER=$DIR/ledger
SERVER_PID=

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

jsonget() { # jsonget '<json>' <key>
  python3 -c 'import json,sys; print(json.loads(sys.argv[1])[sys.argv[2]])' "$1" "$2"
}

start_server() {
  ./bfbdd-serve -addr "$ADDR" -checkpoint-dir "$CKPT" -wal-sync always \
    -checkpoint-interval 0 -session-idle-spill 200ms &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server did not come up" >&2
  exit 1
}

crash_server() {
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=
}

sig_of() { # sig_of <handle> -> canonical signature
  jsonget "$(curl -sf "$S/query" -d "{\"kind\":\"signature\",\"f\":$1}")" signature
}

record() { # record <handle>: append to the acknowledged-ops ledger
  echo "$1 $(sig_of "$1")" >>"$LEDGER"
}

check_ledger() {
  while read -r h want; do
    got=$(sig_of "$h")
    [ "$got" = "$want" ] || {
      echo "handle $h signature drifted after recovery: $got != $want" >&2
      exit 1
    }
  done <"$LEDGER"
}

build_burst() { # vars + applies, all recorded
  for i in $(seq 0 11); do
    V=$(jsonget "$(curl -sf "$S/vars" -d "{\"index\":$i}")" handle)
    record "$V"
    W=$(jsonget "$(curl -sf "$S/vars" -d "{\"index\":$(((i + 7) % 12))}")" handle)
    H=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"or\",\"f\":$V,\"g\":$W}")" handle)
    record "$H"
  done
}

wait_spilled() { # block until the idle janitor has tiered the session down
  for _ in $(seq 1 100); do
    SPILLED=$(jsonget "$(curl -sf "$S/stats")" spilled_bytes)
    [ "$SPILLED" -gt 0 ] && return 0
    sleep 0.1
  done
  echo "session never spilled (spilled_bytes stayed 0)" >&2
  exit 1
}

echo "=== setup: build, let the janitor spill the idle session"
start_server
CREATE=$(curl -sf "$BASE/v1/sessions" -d '{"vars":12}')
SID=$(jsonget "$CREATE" session)
S=$BASE/v1/sessions/$SID
build_burst
wait_spilled
ls "$SPILL/$SID"/level-*.spill >/dev/null || {
  echo "no level spill files under $SPILL/$SID despite spilled_bytes > 0" >&2
  exit 1
}
echo "ok: session $SID tiered to disk ($SPILLED bytes)"

echo "=== crash 1: spill files present across the crash"
crash_server
# A sentinel proves the startup wipe ran: spill files are scratch, so
# the restart must clear the whole dir (recovery then recreates empty
# per-session dirs — their existence alone proves nothing).
touch "$SPILL/sentinel"
start_server
[ -e "$SPILL/sentinel" ] && { echo "stale spill dir survived the restart wipe" >&2; exit 1; }
check_ledger
echo "ok: ledger intact; stale spill files were wiped, not trusted"

echo "=== crash 2: spill files deleted before recovery"
wait_spilled
crash_server
rm -rf "$SPILL"
start_server
check_ledger
echo "ok: ledger intact with the spill dir gone entirely"

echo "=== crash 3: spill files corrupted before recovery"
wait_spilled
F=$(ls "$SPILL/$SID"/level-*.spill | head -1)
crash_server
python3 - "$F" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
for off in (8, len(b) // 2, len(b) - 1):
    b[off] ^= 0xFF
open(p, "wb").write(bytes(b))
EOF
touch "$SPILL/sentinel"
start_server
[ -e "$SPILL/sentinel" ] && { echo "corrupted spill dir survived the restart wipe" >&2; exit 1; }
check_ledger
crash_server
echo "=== all spill-crash checks passed ($(wc -l <"$LEDGER") acknowledged ops)"
