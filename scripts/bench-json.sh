#!/usr/bin/env bash
# Regenerate BENCH_<n>.json: run the benchmark set the durability work
# is judged by (Manager.Eval, CompiledEvalBatch, WAL append/replay, and
# the server apply path with the WAL off/interval/always) and emit one
# machine-readable JSON file, including the computed interval-policy
# overhead against its <10% apply-latency budget.
#
# Usage: scripts/bench-json.sh [out.json]   (default BENCH_7.json)
set -euo pipefail

OUT=${1:-BENCH_7.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

echo "== core eval benchmarks" >&2
go test -run xxx -bench 'BenchmarkManagerEval|BenchmarkCompiledEvalBatch' \
  -benchtime 200x . | tee -a "$TMP" >&2
echo "== wal benchmarks" >&2
go test -run xxx -bench 'BenchmarkWALAppend|BenchmarkWALReplay' \
  -benchtime 2000x ./internal/wal/ | tee -a "$TMP" >&2
echo "== spill benchmarks" >&2
go test -run xxx -bench 'BenchmarkSpillRoundTrip' \
  -benchtime 50x ./internal/core/ | tee -a "$TMP" >&2
echo "== server apply benchmarks" >&2
# -count 5 with min-of-runs in the parser: a single run of µs-scale
# HTTP round trips is too noisy to judge a 10% overhead budget.
go test -run xxx -bench 'BenchmarkServerApply' \
  -benchtime 2000x -count 5 ./internal/server/ | tee -a "$TMP" >&2

python3 - "$TMP" "$OUT" <<'EOF'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
bench = {}
meta = {}
# Names are kept verbatim (including any -GOMAXPROCS suffix go test
# appends): stripping a trailing -N would collide sub-benchmarks whose
# own names end in a number, like ManagerEval/mult-11 vs mult-13.
line_re = re.compile(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$")
for line in open(raw):
    line = line.strip()
    for key in ("goos", "goarch", "cpu"):
        if line.startswith(key + ":"):
            meta[key] = line.split(":", 1)[1].strip()
    m = line_re.match(line)
    if not m:
        continue
    name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
    entry = {"iterations": iters}
    # rest is pairs of "<value> <unit>" separated by tabs.
    for part in re.split(r"\t+", rest):
        part = part.strip()
        pm = re.match(r"^([\d.]+)\s+(\S+)$", part)
        if not pm:
            continue
        val, unit = float(pm.group(1)), pm.group(2)
        if unit == "ns/op":
            entry["ns_per_op"] = val
        else:
            entry.setdefault("metrics", {})[unit] = val
    # Repeated names (-count > 1): keep the fastest run.
    prev = bench.get(name)
    if prev is None or entry.get("ns_per_op", 1e18) < prev.get("ns_per_op", 1e18):
        bench[name] = entry

def ns(name):
    return bench.get("BenchmarkServerApply/" + name, {}).get("ns_per_op")

def pct(base, with_wal):
    if not (base and with_wal):
        return None
    return round(max(0.0, (with_wal - base) / base * 100), 2)

# Headline: overhead on the apply latency a client observes at the
# deployed default config. Secondary: the bare apply path with
# batching disabled (raw/*), a harsher denominator.
overhead = None
if ns("default/wal=off") and ns("default/wal=interval"):
    overhead = {
        "apply_ns_wal_off": ns("default/wal=off"),
        "apply_ns_wal_interval": ns("default/wal=interval"),
        "interval_overhead_pct": pct(ns("default/wal=off"), ns("default/wal=interval")),
        "raw_apply_ns_wal_off": ns("raw/wal=off"),
        "raw_apply_ns_wal_interval": ns("raw/wal=interval"),
        "raw_apply_ns_wal_always": ns("raw/wal=always"),
        "raw_interval_overhead_pct": pct(ns("raw/wal=off"), ns("raw/wal=interval")),
        "target_pct": 10.0,
    }
    overhead["ok"] = overhead["interval_overhead_pct"] < overhead["target_pct"]

# Memory-tiering parity: the spill hooks on the hot apply path, with
# tiering configured but never triggered, must stay within noise of
# the spill-disabled server. Judged against the same 10% bar as the
# WAL interval policy (min-of-5 runs already filters scheduler noise).
spill_parity = None
if ns("default/wal=off") and ns("default/spill=on"):
    spill_parity = {
        "apply_ns_spill_off": ns("default/wal=off"),
        "apply_ns_spill_on": ns("default/spill=on"),
        "spill_on_overhead_pct": pct(ns("default/wal=off"), ns("default/spill=on")),
        "target_pct": 10.0,
    }
    spill_parity["ok"] = spill_parity["spill_on_overhead_pct"] < spill_parity["target_pct"]

doc = {
    "generated_by": "scripts/bench-json.sh",
    "environment": meta,
    "benchmarks": bench,
    "wal_overhead": overhead,
    "spill_parity": spill_parity,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}", file=sys.stderr)
if overhead and not overhead["ok"]:
    print(f"WAL interval overhead {overhead['interval_overhead_pct']}% "
          f"exceeds the {overhead['target_pct']}% budget", file=sys.stderr)
    sys.exit(1)
if spill_parity and not spill_parity["ok"]:
    print(f"spill-enabled apply overhead {spill_parity['spill_on_overhead_pct']}% "
          f"exceeds the {spill_parity['target_pct']}% parity budget", file=sys.stderr)
    sys.exit(1)
EOF
