#!/usr/bin/env bash
# Zero-loss crash recovery exercise against a real bfbdd-serve process
# running with -wal-sync=always: drive mutating traffic while recording
# every acknowledged handle's canonical signature in a client-side
# ledger, kill -9 the server at three different crash points (mid-
# traffic with no checkpoint, right after checkpoint churn, and over a
# staged leftover-segment layout mimicking a crash between rotation and
# truncation), restart over the same directory each time, and require
# that every acknowledged handle still answers with the same signature.
# Also exercises the bfbdd-wal and bfbdd-snap verifiers' JSON verdicts.
# Run from the repo root with ./bfbdd-serve, ./bfbdd-wal and
# ./bfbdd-snap already built (see .github/workflows/ci.yml).
set -euo pipefail

ADDR=127.0.0.1:8719
BASE=http://$ADDR
DIR=$(mktemp -d)
CKPT=$DIR/ckpt
LEDGER=$DIR/ledger # lines of "<handle> <signature>"
SERVER_PID=

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

jsonget() { # jsonget '<json>' <key>
  python3 -c 'import json,sys; print(json.loads(sys.argv[1])[sys.argv[2]])' "$1" "$2"
}

start_server() { # start_server [extra flags...]
  ./bfbdd-serve -addr "$ADDR" -checkpoint-dir "$CKPT" -wal-sync always "$@" &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server did not come up" >&2
  exit 1
}

crash_server() {
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=
}

sig_of() { # sig_of <handle> -> canonical signature
  jsonget "$(curl -sf "$S/query" -d "{\"kind\":\"signature\",\"f\":$1}")" signature
}

record() { # record <handle>: append to the acknowledged-ops ledger
  echo "$1 $(sig_of "$1")" >>"$LEDGER"
}

check_ledger() { # every acknowledged handle must answer identically
  while read -r h want; do
    got=$(sig_of "$h")
    [ "$got" = "$want" ] || {
      echo "handle $h signature drifted after recovery: $got != $want" >&2
      exit 1
    }
  done <"$LEDGER"
}

mutate_burst() { # mutate_burst <count>: vars + applies, all recorded
  for i in $(seq 1 "$1"); do
    V=$(jsonget "$(curl -sf "$S/vars" -d "{\"index\":$((i % 12))}")" handle)
    record "$V"
    W=$(jsonget "$(curl -sf "$S/vars" -d "{\"index\":$(((i + 5) % 12))}")" handle)
    record "$W"
    for op in and or xor; do
      H=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"$op\",\"f\":$V,\"g\":$W}")" handle)
      record "$H"
    done
  done
}

echo "=== crash point 1: mid-traffic, WAL tail only (no checkpoint ever ran)"
start_server -checkpoint-interval 0
CREATE=$(curl -sf "$BASE/v1/sessions" -d '{"vars":12}')
SID=$(jsonget "$CREATE" session)
S=$BASE/v1/sessions/$SID
mutate_burst 6
crash_server

./bfbdd-wal verify "$CKPT" || { echo "bfbdd-wal verify rejected a healthy log" >&2; exit 1; }

start_server -checkpoint-interval 0
check_ledger
echo "ok: $(wc -l <"$LEDGER") acknowledged ops survived with no checkpoint"

echo "=== crash point 2: during checkpoint churn (rotation + truncation live)"
# Frequent checkpoints race the mutation stream, so the kill lands with
# a fresh snapshot plus a short WAL tail.
crash_server
start_server -checkpoint-interval 250ms
mutate_burst 6
sleep 0.6 # let at least one checkpoint (rotate + truncate) commit
mutate_burst 3
crash_server

./bfbdd-wal verify "$CKPT" || { echo "bfbdd-wal verify rejected post-churn log" >&2; exit 1; }
SNAP=$(ls "$CKPT"/"$SID".*.snap | sort | tail -1)
./bfbdd-snap verify "$SNAP" || { echo "bfbdd-snap verify rejected the live snapshot" >&2; exit 1; }

start_server -checkpoint-interval 0
check_ledger
echo "ok: ledger intact across checkpoint churn"

echo "=== crash point 3: staged crash between rotation and truncation"
# A crash in the rotate/truncate window leaves already-covered segments
# on disk next to the fresh one. Stage that layout for real: stash the
# live segments, let a checkpoint rotate + truncate them away, kill -9,
# then copy the stashed (now snapshot-covered) segments back. Recovery
# must skip their covered records, not double-apply or reject them.
WALD=$CKPT/wal
mutate_burst 2
mkdir -p "$DIR/stash"
cp "$WALD"/"$SID".*.wal "$DIR/stash/"
crash_server
start_server -checkpoint-interval 250ms
sleep 0.8 # let a checkpoint commit, rotating and truncating the WAL
crash_server
for f in "$DIR"/stash/*.wal; do
  dst=$WALD/$(basename "$f")
  [ -e "$dst" ] || cp "$f" "$dst"
done

start_server -checkpoint-interval 0
check_ledger
crash_server
echo "=== ok: zero loss at all three crash points ($(wc -l <"$LEDGER") acknowledged ops)"

echo "=== corruption detection: verifiers must fail loudly"
# Flip a byte inside the newest segment's header (its CRC covers the
# first 20 bytes, so any flip there is a hard typed error, not a
# tolerated torn tail): verify must exit nonzero with a JSON verdict.
SEG=$(ls "$WALD"/"$SID".*.wal | sort | tail -1)
python3 - "$SEG" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
b[10] ^= 0xFF  # version/flags region of the 24-byte header
open(p, "wb").write(bytes(b))
EOF
if OUT=$(./bfbdd-wal verify "$CKPT" 2>&1); then
  echo "bfbdd-wal verify accepted a corrupted segment: $OUT" >&2
  exit 1
fi
echo "$OUT" | python3 -c 'import json,sys; v=json.loads(sys.stdin.readline()); assert v["ok"] is False, v' \
  || { echo "bfbdd-wal verify verdict is not ok:false JSON" >&2; exit 1; }
echo "ok: bfbdd-wal verify flagged the corruption"

SNAP=$(ls "$CKPT"/"$SID".*.snap | sort | tail -1)
python3 - "$SNAP" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
b[len(b) // 2] ^= 0xFF
open(p, "wb").write(bytes(b))
EOF
if OUT=$(./bfbdd-snap verify "$SNAP" 2>&1); then
  echo "bfbdd-snap verify accepted a corrupted snapshot: $OUT" >&2
  exit 1
fi
echo "$OUT" | python3 -c 'import json,sys; v=json.loads(sys.stdin.readline()); assert v["ok"] is False, v' \
  || { echo "bfbdd-snap verify verdict is not ok:false JSON" >&2; exit 1; }
echo "ok: bfbdd-snap verify flagged the corruption"

echo "=== all crash-recovery checks passed"
