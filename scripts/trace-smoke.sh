#!/usr/bin/env bash
# End-to-end tracing smoke against a real bfbdd-serve process: run a
# traced workload (forced traces and head sampling), export every
# retained trace through GET /v1/debug/traces, and validate the exports
# with the bfbdd-trace CLI — which enforces the span-tree schema (dense
# 1-based ids, single root, parents before children, non-negative
# durations) and exits nonzero on any malformed trace or empty export.
# Also checks the slow-build diagnostic log line fires. Run from the
# repo root with ./bfbdd-serve and ./bfbdd-trace already built (see
# .github/workflows/ci.yml).
set -euo pipefail

ADDR=127.0.0.1:8719
BASE=http://$ADDR
DIR=$(mktemp -d)
OUT=${TRACE_OUT:-$DIR/out}
SERVER_PID=

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

jsonget() { # jsonget '<json>' <key>
  python3 -c 'import json,sys; print(json.loads(sys.argv[1])[sys.argv[2]])' "$1" "$2"
}

mkdir -p "$OUT"

echo "=== start server with tracing, persistence, and slow-build logging"
# -slow-build-threshold 0s would disable the diagnostic; 1ns makes every
# build "slow" so the smoke can assert the log line's shape.
./bfbdd-serve -addr "$ADDR" -checkpoint-dir "$DIR/ckpt" \
  -trace-sample 1 -trace-ring 256 -slow-build-threshold 1ns \
  >"$DIR/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null

echo "=== traced workload"
CREATE=$(curl -sf "$BASE/v1/sessions" -d '{"vars":12,"engine":"pbf"}')
SID=$(jsonget "$CREATE" session)
S=$BASE/v1/sessions/$SID

H0=$(jsonget "$(curl -sf "$S/vars" -d '{"index":0}')" handle)
ACC=$H0
for i in $(seq 1 11); do
  HI=$(jsonget "$(curl -sf "$S/vars" -d "{\"index\":$i}")" handle)
  ACC=$(jsonget "$(curl -sf "$S/apply" -d "{\"op\":\"xor\",\"f\":$ACC,\"g\":$HI}")" handle)
done

# One explicitly forced request: its trace id must come back in the
# response header and its export must be fetchable directly.
FORCED_TID=$(curl -sfi "$S/apply?trace=1" -d "{\"op\":\"and\",\"f\":$ACC,\"g\":$H0}" |
  tr -d '\r' | sed -n 's/^X-Bfbdd-Trace: //p')
[ -n "$FORCED_TID" ] || { echo "forced request carried no X-Bfbdd-Trace header" >&2; exit 1; }
curl -sf "$BASE/v1/debug/traces/$FORCED_TID" -o "$OUT/forced.json"

echo "=== export the ring"
LIST=$(curl -sf "$BASE/v1/debug/traces")
COUNT=$(python3 -c 'import json,sys; print(len(json.loads(sys.argv[1])["traces"]))' "$LIST")
echo "ring holds $COUNT traces"
# vars + applies + the forced request, all at sample rate 1.
[ "$COUNT" -ge 13 ] || { echo "expected >= 13 sampled traces, got $COUNT" >&2; exit 1; }
python3 -c 'import json,sys
for t in json.loads(sys.argv[1])["traces"]:
    print(t["trace_id"])' "$LIST" |
while read -r tid; do
  curl -sf "$BASE/v1/debug/traces/$tid" >>"$OUT/ring.json"
done

echo "=== validate every export with bfbdd-trace"
./bfbdd-trace -q "$OUT/forced.json" "$OUT/ring.json"
# The forced trace must show the full pipeline: batch, kernel build,
# per-level phases, and the WAL commit (persistence is on).
./bfbdd-trace "$OUT/forced.json" | tee "$OUT/forced.txt" |
  grep -q 'kernel-build' || { echo "forced trace lacks kernel-build span" >&2; exit 1; }
for span in batch expand reduce wal-commit shannon_steps; do
  grep -q "$span" "$OUT/forced.txt" ||
    { echo "forced trace lacks $span" >&2; cat "$OUT/forced.txt" >&2; exit 1; }
done

echo "=== slow-build diagnostics"
grep -q 'server: slow build:' "$DIR/server.log" ||
  { echo "no slow-build log line despite 1ns threshold" >&2; tail "$DIR/server.log" >&2; exit 1; }
grep 'server: slow build:' "$DIR/server.log" | head -1 | tee "$OUT/slow-build.txt" |
  grep -q 'shannon_steps=' || { echo "slow-build line lacks phase breakdown" >&2; exit 1; }

kill "$SERVER_PID" && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
echo "=== trace smoke OK ($COUNT traces validated, artifacts in $OUT)"
