module bfbdd

go 1.22
