package bfbdd_test

// One benchmark per table/figure of the paper's evaluation section, plus
// the ablations listed in DESIGN.md §3. Benchmarks default to scaled-down
// circuits so `go test -bench=.` finishes in minutes; run
// `go run ./cmd/bfbdd-bench -full` for the paper-scale sweep (mult-13,
// mult-14, c2670, c3540) with the figures printed in the paper's layout.
//
// Custom metrics reported per benchmark:
//
//	Mops/build   total Shannon expansion steps (Figure 11's metric)
//	peak-MB      high-water explicit memory (Figure 9's metric)
//	speedup-mdl  modeled ideal-machine speedup (see EXPERIMENTS.md)

import (
	"fmt"
	"math/rand"
	"testing"

	"bfbdd"
	"bfbdd/internal/core"
	"bfbdd/internal/harness"
	"bfbdd/internal/netlist"
	"bfbdd/internal/order"
	"bfbdd/internal/stats"
)

// benchCircuits is the scaled-down analogue of the paper's four circuits.
var benchCircuits = []string{"c2670-7", "c3540-7", "mult-9", "mult-10"}

// benchProcs mirrors the paper's processor sweep.
var benchProcs = []int{0, 1, 2, 4, 8}

func runOne(b *testing.B, cfg harness.Config) *harness.Result {
	b.Helper()
	var last *harness.Result
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.TotalOps)/1e6, "Mops/build")
	b.ReportMetric(float64(last.PeakBytes)/(1<<20), "peak-MB")
	return last
}

// BenchmarkFig07ElapsedTime regenerates Figure 7: elapsed BDD-construction
// time for each circuit across processor counts (the benchmark's ns/op is
// the elapsed time the paper tabulates).
func BenchmarkFig07ElapsedTime(b *testing.B) {
	for _, circ := range benchCircuits {
		for _, p := range benchProcs {
			b.Run(fmt.Sprintf("%s/procs=%s", circ, harness.ProcLabel(p)), func(b *testing.B) {
				runOne(b, harness.Config{Circuit: circ, Workers: p})
			})
		}
	}
}

// BenchmarkFig08Speedup regenerates Figure 8: it reports the modeled
// ideal-machine speedup for each configuration (wall-clock speedup is the
// ns/op ratio against procs=Seq in Figure 7's benchmark).
func BenchmarkFig08Speedup(b *testing.B) {
	for _, circ := range benchCircuits[2:] { // the two multiplier circuits
		seq, err := harness.Run(harness.Config{Circuit: circ, Workers: 0})
		if err != nil {
			b.Fatal(err)
		}
		model := harness.NewModel(seq)
		base := model.Predict(seq).Total()
		for _, p := range benchProcs[1:] {
			b.Run(fmt.Sprintf("%s/procs=%d", circ, p), func(b *testing.B) {
				r := runOne(b, harness.Config{Circuit: circ, Workers: p})
				b.ReportMetric(base/model.Predict(r).Total(), "speedup-mdl")
			})
		}
	}
}

// BenchmarkFig09Memory regenerates Figure 9: peak memory per circuit and
// processor count (reported as the peak-MB metric).
func BenchmarkFig09Memory(b *testing.B) {
	for _, circ := range benchCircuits {
		for _, p := range []int{0, 1, 4, 8} {
			b.Run(fmt.Sprintf("%s/procs=%s", circ, harness.ProcLabel(p)), func(b *testing.B) {
				r := runOne(b, harness.Config{Circuit: circ, Workers: p})
				// Figure 10 plots the same series; nothing extra to run.
				_ = r
			})
		}
	}
}

// BenchmarkFig11Operations regenerates Figure 11: total operation count
// growth with processor count, caused by the unshared per-worker compute
// caches (the Mops/build metric; Figure 12 plots the same series).
func BenchmarkFig11Operations(b *testing.B) {
	for _, circ := range benchCircuits {
		for _, p := range benchProcs {
			b.Run(fmt.Sprintf("%s/procs=%s", circ, harness.ProcLabel(p)), func(b *testing.B) {
				r := runOne(b, harness.Config{Circuit: circ, Workers: p})
				b.ReportMetric(float64(r.AllWorkers.CacheHits)/1e6, "Mhits/build")
			})
		}
	}
}

// BenchmarkFig13PhaseBreakdown regenerates Figures 13/14: the expansion /
// reduction / GC phase split of the first processor on the multiplier
// workload.
func BenchmarkFig13PhaseBreakdown(b *testing.B) {
	circ := benchCircuits[len(benchCircuits)-1]
	for _, p := range benchProcs[1:] {
		b.Run(fmt.Sprintf("%s/procs=%d", circ, p), func(b *testing.B) {
			r := runOne(b, harness.Config{Circuit: circ, Workers: p})
			b.ReportMetric(r.Worker0.PhaseTime(stats.PhaseExpansion).Seconds(), "expand-s")
			b.ReportMetric(r.Worker0.PhaseTime(stats.PhaseReduction).Seconds(), "reduce-s")
			gc := r.Worker0.PhaseTime(stats.PhaseGCMark) +
				r.Worker0.PhaseTime(stats.PhaseGCFix) +
				r.Worker0.PhaseTime(stats.PhaseGCRehash)
			b.ReportMetric(gc.Seconds(), "gc-s")
		})
	}
}

// BenchmarkFig15NodeClustering regenerates Figure 15: the concentration of
// BDD nodes on very few variables, the root cause of the reduction-phase
// bottleneck. Reported as the fraction of unique-table traffic landing on
// the busiest variable.
func BenchmarkFig15NodeClustering(b *testing.B) {
	for _, circ := range benchCircuits {
		b.Run(circ, func(b *testing.B) {
			r := runOne(b, harness.Config{Circuit: circ, Workers: 1})
			var maxNodes, total uint64
			for _, n := range r.MaxNodesPerVar {
				total += n
				if n > maxNodes {
					maxNodes = n
				}
			}
			if total > 0 {
				b.ReportMetric(float64(maxNodes)/float64(total), "top-var-share")
			}
			b.ReportMetric(float64(maxNodes), "top-var-nodes")
		})
	}
}

// BenchmarkFig16LockTime regenerates Figures 16/17: unique-table lock
// acquisition wait during reduction, concentrated on the node-heavy
// variables. Reported as measured lock seconds plus the modeled
// serialization ratio.
func BenchmarkFig16LockTime(b *testing.B) {
	circ := benchCircuits[len(benchCircuits)-1]
	seq, err := harness.Run(harness.Config{Circuit: circ, Workers: 0})
	if err != nil {
		b.Fatal(err)
	}
	model := harness.NewModel(seq)
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("%s/procs=%d", circ, p), func(b *testing.B) {
			r := runOne(b, harness.Config{Circuit: circ, Workers: p})
			b.ReportMetric(r.LockWaitTotal().Seconds(), "lock-s")
			b.ReportMetric(model.LockRatio(r), "lock-ratio-mdl")
		})
	}
}

// BenchmarkFig18GCBreakdown regenerates Figures 18/19: the mark / fix /
// rehash phase split of the compacting collector on the first processor.
func BenchmarkFig18GCBreakdown(b *testing.B) {
	circ := benchCircuits[len(benchCircuits)-1]
	for _, p := range benchProcs[1:] {
		b.Run(fmt.Sprintf("%s/procs=%d", circ, p), func(b *testing.B) {
			r := runOne(b, harness.Config{Circuit: circ, Workers: p})
			b.ReportMetric(r.Worker0.PhaseTime(stats.PhaseGCMark).Seconds(), "mark-s")
			b.ReportMetric(r.Worker0.PhaseTime(stats.PhaseGCFix).Seconds(), "fix-s")
			b.ReportMetric(r.Worker0.PhaseTime(stats.PhaseGCRehash).Seconds(), "rehash-s")
		})
	}
}

// BenchmarkAblationEngines compares the five construction engines
// sequentially (DESIGN.md ablation B; §3.1's motivation for partial
// breadth-first).
func BenchmarkAblationEngines(b *testing.B) {
	engines := []struct {
		name string
		e    core.Engine
	}{
		{"df", core.EngineDF},
		{"bf", core.EngineBF},
		{"hybrid", core.EngineHybrid},
		{"pbf", core.EnginePBF},
	}
	for _, circ := range []string{"mult-9", "c3540-7"} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/%s", circ, eng.name), func(b *testing.B) {
				runOne(b, harness.Config{Circuit: circ, Engine: eng.e, UseEngine: true})
			})
		}
	}
}

// BenchmarkAblationGCPolicy compares the compacting collector against the
// free-list sweep under memory pressure (DESIGN.md ablation A; §3.4).
func BenchmarkAblationGCPolicy(b *testing.B) {
	for _, pol := range []core.GCPolicy{core.GCCompact, core.GCFreeList} {
		b.Run(pol.String(), func(b *testing.B) {
			r := runOne(b, harness.Config{Circuit: "mult-10", Workers: 0, GC: pol})
			b.ReportMetric(float64(r.GCCount), "collections")
		})
	}
}

// BenchmarkAblationThreshold sweeps the evaluation threshold (DESIGN.md
// ablation C; §3.1's working-set control).
func BenchmarkAblationThreshold(b *testing.B) {
	for _, thr := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			r := runOne(b, harness.Config{Circuit: "mult-10", Workers: 0, EvalThreshold: thr})
			b.ReportMetric(float64(r.AllWorkers.ContextPushes), "ctx-pushes")
		})
	}
}

// BenchmarkAblationStealing compares work stealing on/off in the parallel
// engine (DESIGN.md ablation D; §3.3).
func BenchmarkAblationStealing(b *testing.B) {
	for _, steal := range []bool{true, false} {
		b.Run(fmt.Sprintf("stealing=%v", steal), func(b *testing.B) {
			r := runOne(b, harness.Config{
				Circuit: "mult-10", Workers: 4,
				EvalThreshold: 1 << 12, DisableStealing: !steal,
			})
			b.ReportMetric(float64(r.AllWorkers.Steals), "steals")
			b.ReportMetric(float64(r.AllWorkers.StolenOps), "stolen-ops")
		})
	}
}

// BenchmarkAblationOrder quantifies the variable-ordering sensitivity the
// paper discusses in §2 (BDD size "can be exponentially more compact"
// under one ordering than another).
func BenchmarkAblationOrder(b *testing.B) {
	for _, m := range []order.Method{order.DFS, order.Interleave, order.Identity} {
		b.Run(m.String(), func(b *testing.B) {
			r := runOne(b, harness.Config{Circuit: "adder-12", Workers: 0, Order: m})
			b.ReportMetric(float64(r.OutputNodes), "output-nodes")
		})
	}
}

// BenchmarkApplyMicro measures single Apply operations through the public
// API (not a paper figure; a sanity baseline for library users).
func BenchmarkApplyMicro(b *testing.B) {
	configs := map[string][]bfbdd.Option{
		"df":  {bfbdd.WithEngine(bfbdd.EngineDF)},
		"pbf": {bfbdd.WithEngine(bfbdd.EnginePBF)},
		"par": {bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(4)},
	}
	for engName, opts := range configs {
		b.Run(engName, func(b *testing.B) {
			m := bfbdd.New(24, opts...)
			f := m.Var(0)
			for i := 1; i < 24; i++ {
				f = f.Xor(m.Var(i))
			}
			g := m.Var(0)
			for i := 1; i < 24; i++ {
				g = g.And(m.Var(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := f.Or(g)
				h.Free()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Compiled read-path benchmarks: Manager.Eval (the live write-path walk)
// against the frozen artifact's Eval and EvalBatch on C6288-style
// multiplier outputs. mult-11 is the quick default; mult-13 is the
// paper-scale workload the acceptance numbers in bench_report_default.txt
// are recorded on. All three report ns/assign so the per-assignment
// throughput ratio reads directly off the output.

// multEval is one multiplier workload shared by the eval benchmarks:
// the live manager, the mid output (the widest product column), the
// compiled artifact of all outputs, and a fixed pool of assignments.
type multEval struct {
	m    *bfbdd.Manager
	mid  *bfbdd.BDD
	fn   *bfbdd.CompiledFunc
	root int
	rows [][]bool
}

var multEvalCache = map[int]*multEval{}

// gateEval builds one netlist gate through the public BDD API, freeing
// folding intermediates.
func gateEval(m *bfbdd.Manager, g netlist.Gate, gateB []*bfbdd.BDD, inputPos int) *bfbdd.BDD {
	bin := func(op netlist.GateType, f, h *bfbdd.BDD) *bfbdd.BDD {
		switch op {
		case netlist.GateAnd, netlist.GateNand:
			return f.And(h)
		case netlist.GateOr, netlist.GateNor:
			return f.Or(h)
		default:
			return f.Xor(h)
		}
	}
	switch g.Type {
	case netlist.GateInput:
		return m.Var(inputPos)
	case netlist.GateConst0:
		return m.Zero()
	case netlist.GateConst1:
		return m.One()
	case netlist.GateNot:
		return gateB[g.Fanin[0]].Not()
	case netlist.GateBuf:
		b := gateB[g.Fanin[0]]
		return b.Or(b)
	}
	acc := gateB[g.Fanin[0]]
	freeAcc := false
	for _, f := range g.Fanin[1:] {
		next := bin(g.Type, acc, gateB[f])
		if freeAcc {
			acc.Free()
		}
		acc, freeAcc = next, true
	}
	switch g.Type {
	case netlist.GateNand, netlist.GateNor, netlist.GateXnor:
		next := acc.Not()
		if freeAcc {
			acc.Free()
		}
		acc = next
	}
	return acc
}

// multEvalSetup builds (once per size, shared across benchmarks) the
// n-bit multiplier's output BDDs under the DFS order and compiles every
// output into one artifact.
func multEvalSetup(b *testing.B, n int) *multEval {
	b.Helper()
	if me, ok := multEvalCache[n]; ok {
		return me
	}
	c := netlist.Multiplier(n)
	m := bfbdd.New(c.NumInputs())
	m.SetOrder(order.Compute(c, order.DFS, 0))
	inputPos := make(map[int]int, len(c.Inputs))
	for pos, gi := range c.Inputs {
		inputPos[gi] = pos
	}
	isOut := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		isOut[o] = true
	}
	gateB := make([]*bfbdd.BDD, len(c.Gates))
	for gi, g := range c.Gates {
		gateB[gi] = gateEval(m, g, gateB, inputPos[gi])
	}
	outs := make([]*bfbdd.BDD, len(c.Outputs))
	for i, o := range c.Outputs {
		outs[i] = gateB[o]
	}
	for gi, bd := range gateB {
		if !isOut[gi] {
			bd.Free()
		}
	}
	fn, err := m.Compile(outs...)
	if err != nil {
		b.Fatal(err)
	}
	mid := len(outs) / 2 // the widest product column
	root, _ := fn.RootByID(uint64(mid))
	rng := rand.New(rand.NewSource(int64(n) * 6288))
	rows := make([][]bool, 1024)
	for i := range rows {
		row := make([]bool, c.NumInputs())
		for v := range row {
			row[v] = rng.Intn(2) == 1
		}
		rows[i] = row
	}
	me := &multEval{m: m, mid: outs[mid], fn: fn, root: root, rows: rows}
	multEvalCache[n] = me
	return me
}

var multEvalSizes = []int{11, 13}

// BenchmarkManagerEval is the baseline: single-assignment evaluation
// through the live manager (per-call level translation plus a pointer
// walk over the arena store).
func BenchmarkManagerEval(b *testing.B) {
	for _, n := range multEvalSizes {
		b.Run(fmt.Sprintf("mult-%d", n), func(b *testing.B) {
			me := multEvalSetup(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				me.mid.Eval(me.rows[i%len(me.rows)])
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/assign")
		})
	}
}

// BenchmarkCompiledEval evaluates the same assignments on the frozen
// artifact: a zero-allocation walk over the packed level-major array.
func BenchmarkCompiledEval(b *testing.B) {
	for _, n := range multEvalSizes {
		b.Run(fmt.Sprintf("mult-%d", n), func(b *testing.B) {
			me := multEvalSetup(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				me.fn.Eval(me.root, me.rows[i%len(me.rows)])
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/assign")
		})
	}
}

// BenchmarkCompiledEvalBatch evaluates the whole assignment pool per
// operation; ns/assign is the artifact's amortized per-assignment cost,
// the number the acceptance ratio against BenchmarkManagerEval uses.
func BenchmarkCompiledEvalBatch(b *testing.B) {
	for _, n := range multEvalSizes {
		b.Run(fmt.Sprintf("mult-%d", n), func(b *testing.B) {
			me := multEvalSetup(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				me.fn.EvalBatch(me.root, me.rows)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(me.rows)), "ns/assign")
		})
	}
}
