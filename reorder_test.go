package bfbdd_test

import (
	"math/rand"
	"testing"

	"bfbdd"
)

// buildComparator builds the function a < b over interleavable variable
// pairs: variables 0..n-1 are the a bits, n..2n-1 the b bits.
func buildComparator(m *bfbdd.Manager, n int) *bfbdd.BDD {
	lt := m.Zero()
	eq := m.One()
	for i := n - 1; i >= 0; i-- {
		ai, bi := m.Var(i), m.Var(n+i)
		bitLt := ai.Not().And(bi)
		lt = lt.Or(eq.And(bitLt))
		eq = eq.And(ai.Xnor(bi))
	}
	return lt
}

func TestSetOrderPreservesSemantics(t *testing.T) {
	const nvars = 8
	m := bfbdd.New(nvars, bfbdd.WithEngine(bfbdd.EnginePBF), bfbdd.WithEvalThreshold(32))
	rng := rand.New(rand.NewSource(13))
	fns := []*bfbdd.BDD{m.Var(0).Xor(m.Var(5))}
	for i := 0; i < 25; i++ {
		a := fns[rng.Intn(len(fns))]
		v := m.Var(rng.Intn(nvars))
		switch rng.Intn(3) {
		case 0:
			fns = append(fns, a.And(v))
		case 1:
			fns = append(fns, a.Or(v.Not()))
		default:
			fns = append(fns, a.Xor(v))
		}
	}
	// Record semantics before reordering.
	truth := make([][]bool, len(fns))
	for i, f := range fns {
		truth[i] = make([]bool, 1<<nvars)
		for row := 0; row < 1<<nvars; row++ {
			assign := make([]bool, nvars)
			for v := 0; v < nvars; v++ {
				assign[v] = row>>v&1 == 1
			}
			truth[i][row] = f.Eval(assign)
		}
	}

	perms := [][]int{
		{7, 6, 5, 4, 3, 2, 1, 0}, // full reversal
		{1, 0, 3, 2, 5, 4, 7, 6}, // pairwise swaps
		rng.Perm(nvars),          // random
		{0, 1, 2, 3, 4, 5, 6, 7}, // identity (no-op)
	}
	for _, perm := range perms {
		m.SetOrder(perm)
		for i, f := range fns {
			for row := 0; row < 1<<nvars; row++ {
				assign := make([]bool, nvars)
				for v := 0; v < nvars; v++ {
					assign[v] = row>>v&1 == 1
				}
				if f.Eval(assign) != truth[i][row] {
					t.Fatalf("order %v changed semantics of fn %d at row %d", perm, i, row)
				}
			}
		}
		// Canonicity after reorder: rebuilding a function must hit the
		// same handle value.
		g := m.Var(0).Xor(m.Var(5))
		if !g.Equal(fns[0]) {
			t.Fatalf("order %v: rebuilt x0^x5 is not canonical with the reordered handle", perm)
		}
	}
}

func TestSetOrderChangesSize(t *testing.T) {
	const n = 7 // comparator operand width; variables: a=0..6, b=7..13
	m := bfbdd.New(2 * n)
	lt := buildComparator(m, n)
	separated := lt.Size() // a-word before b-word: the bad order

	// Interleave: a_i and b_i adjacent.
	interleaved := make([]int, 2*n)
	for i := 0; i < n; i++ {
		interleaved[i] = 2 * i
		interleaved[n+i] = 2*i + 1
	}
	m.SetOrder(interleaved)
	good := lt.Size()
	if good*2 >= separated {
		t.Fatalf("interleaving should shrink the comparator: separated=%d interleaved=%d",
			separated, good)
	}
	// And back: size returns to the original.
	identity := make([]int, 2*n)
	for i := range identity {
		identity[i] = i
	}
	m.SetOrder(identity)
	if lt.Size() != separated {
		t.Fatalf("returning to the original order: size %d want %d", lt.Size(), separated)
	}
}

func TestSetOrderVarIdentityStable(t *testing.T) {
	m := bfbdd.New(4)
	f := m.Var(2) // the function "variable 2"
	m.SetOrder([]int{3, 2, 1, 0})
	// Var(2) must still denote the same function.
	if !f.Equal(m.Var(2)) {
		t.Fatal("variable identity broken by reorder")
	}
	if m.LevelOf(2) != 1 {
		t.Fatalf("LevelOf(2) = %d want 1", m.LevelOf(2))
	}
	order := m.Order()
	want := []int{3, 2, 1, 0} // level l holds variable want[l]
	for l, v := range order {
		if v != want[l] {
			t.Fatalf("Order() = %v want %v", order, want)
		}
	}
	// Restrict/quantify by public index after reorder.
	g := m.Var(0).And(m.Var(2))
	if !g.Restrict(2, true).Equal(m.Var(0)) {
		t.Fatal("Restrict by variable index broken after reorder")
	}
	if !g.Exists(0).Equal(m.Var(2)) {
		t.Fatal("Exists by variable index broken after reorder")
	}
	sup := g.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Fatalf("Support = %v want [0 2]", sup)
	}
	if a, ok := g.AnySat(); !ok || !a[0] || !a[2] {
		t.Fatalf("AnySat after reorder = %v, %v", a, ok)
	}
}

func TestSetOrderWithFreedAndLiveHandles(t *testing.T) {
	m := bfbdd.New(6)
	keep := m.Var(0).And(m.Var(3))
	dead := m.Var(1).Or(m.Var(4))
	dead.Free()
	m.SetOrder([]int{5, 4, 3, 2, 1, 0})
	if keep.Size() != 2 {
		t.Fatalf("conjunction size after reorder = %d want 2", keep.Size())
	}
	count := keep.SatCount()
	if count.Int64() != 1<<4 {
		t.Fatalf("SatCount after reorder = %v want 16", count)
	}
}

func TestSetOrderPanics(t *testing.T) {
	m := bfbdd.New(3)
	for _, bad := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetOrder(%v) did not panic", bad)
				}
			}()
			m.SetOrder(bad)
		}()
	}
}
