package bfbdd

import (
	"context"

	"bfbdd/internal/trace"
)

// traceBuild arms the kernel with the trace carried in ctx (if any) for
// the duration of one top-level build. While armed, the workers record
// per-level expansion/reduction spans and the collector records gc spans
// as children of the returned "kernel-build" span; the finished span
// carries the paper's counters — Shannon expansion steps, cache hits,
// steal events, nodes created — as attributes, computed as Stats deltas
// across the build.
//
// The returned func must be called (deferred) when the build completes.
// For untraced requests it is a no-op and the arming costs one context
// lookup.
func (m *Manager) traceBuild(ctx context.Context) func() {
	tr, parent := trace.FromContext(ctx)
	if tr == nil {
		return func() {}
	}
	before := m.Stats()
	id := tr.Start(parent, "kernel-build")
	m.k.ArmTrace(tr, id)
	return func() {
		m.k.DisarmTrace()
		after := m.Stats()
		tr.End(id,
			trace.I("shannon_steps", int64(after.Ops-before.Ops)),
			trace.I("cache_hits", int64(after.CacheHits-before.CacheHits)),
			trace.I("terminals", int64(after.Terminals-before.Terminals)),
			trace.I("steals", int64(after.Steals-before.Steals)),
			trace.I("stolen_ops", int64(after.StolenOps-before.StolenOps)),
			trace.I("stalls", int64(after.Stalls-before.Stalls)),
			trace.I("context_pushes", int64(after.ContextPushes-before.ContextPushes)),
			trace.I("lock_wait_ns", int64(after.LockWait-before.LockWait)),
			trace.I("nodes_created", int64(after.NumNodes)-int64(before.NumNodes)),
			trace.I("expansion_ns", int64(after.ExpansionTime-before.ExpansionTime)),
			trace.I("reduction_ns", int64(after.ReductionTime-before.ReductionTime)),
		)
	}
}
