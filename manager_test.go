package bfbdd_test

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"bfbdd"
)

func allEngines() map[string][]bfbdd.Option {
	return map[string][]bfbdd.Option{
		"df":     {bfbdd.WithEngine(bfbdd.EngineDF)},
		"bf":     {bfbdd.WithEngine(bfbdd.EngineBF)},
		"hybrid": {bfbdd.WithEngine(bfbdd.EngineHybrid), bfbdd.WithEvalThreshold(16)},
		"pbf":    {bfbdd.WithEngine(bfbdd.EnginePBF), bfbdd.WithEvalThreshold(16), bfbdd.WithGroupSize(4)},
		"par": {bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(3),
			bfbdd.WithEvalThreshold(16), bfbdd.WithGroupSize(4)},
	}
}

func TestBasicAlgebra(t *testing.T) {
	for name, opts := range allEngines() {
		t.Run(name, func(t *testing.T) {
			m := bfbdd.New(4, opts...)
			a, b := m.Var(0), m.Var(1)

			if !a.And(b).Equal(b.And(a)) {
				t.Error("AND not commutative")
			}
			if !a.Or(a.Not()).IsOne() {
				t.Error("a ∨ ¬a != 1")
			}
			if !a.And(a.Not()).IsZero() {
				t.Error("a ∧ ¬a != 0")
			}
			if !a.Xor(b).Equal(a.And(b.Not()).Or(b.And(a.Not()))) {
				t.Error("XOR expansion failed")
			}
			if !a.Nand(b).Equal(a.And(b).Not()) {
				t.Error("NAND != NOT AND")
			}
			if !a.Nor(b).Equal(a.Or(b).Not()) {
				t.Error("NOR != NOT OR")
			}
			if !a.Xnor(b).Equal(a.Xor(b).Not()) {
				t.Error("XNOR != NOT XOR")
			}
			if !a.Implies(b).Equal(a.Not().Or(b)) {
				t.Error("IMPLIES expansion failed")
			}
			if !a.Diff(b).Equal(a.And(b.Not())) {
				t.Error("DIFF expansion failed")
			}
			// De Morgan.
			if !a.And(b).Not().Equal(a.Not().Or(b.Not())) {
				t.Error("De Morgan failed")
			}
		})
	}
}

func TestITE(t *testing.T) {
	m := bfbdd.New(3)
	f, g, h := m.Var(0), m.Var(1), m.Var(2)
	ite := f.ITE(g, h)
	want := f.And(g).Or(f.Not().And(h))
	if !ite.Equal(want) {
		t.Fatal("ITE != (f∧g) ∨ (¬f∧h)")
	}
	if !m.One().ITE(g, h).Equal(g) || !m.Zero().ITE(g, h).Equal(h) {
		t.Fatal("ITE constant guards wrong")
	}
}

func TestConstants(t *testing.T) {
	m := bfbdd.New(2)
	if !m.Zero().IsZero() || !m.One().IsOne() {
		t.Fatal("constants misreported")
	}
	if !m.Zero().Not().Equal(m.One()) {
		t.Fatal("¬0 != 1")
	}
	if m.NumVars() != 2 {
		t.Fatalf("NumVars = %d", m.NumVars())
	}
	if !m.NVar(0).Equal(m.Var(0).Not()) {
		t.Fatal("NVar != Not(Var)")
	}
}

func TestSatCountAndAnySat(t *testing.T) {
	m := bfbdd.New(10)
	f := m.Var(0).And(m.Var(9))
	if f.SatCount().Cmp(big.NewInt(1<<8)) != 0 {
		t.Fatalf("SatCount = %v want 256", f.SatCount())
	}
	a, ok := f.AnySat()
	if !ok || !a[0] || !a[9] {
		t.Fatalf("AnySat = %v, %v", a, ok)
	}
	if _, ok := m.Zero().AnySat(); ok {
		t.Fatal("AnySat on 0 succeeded")
	}
	assign := make([]bool, 10)
	assign[0], assign[9] = true, true
	if !f.Eval(assign) {
		t.Fatal("Eval failed on satisfying assignment")
	}
}

func TestQuantifiersPublic(t *testing.T) {
	m := bfbdd.New(4)
	f := m.Var(0).And(m.Var(1)).Or(m.Var(2))
	ex := f.Exists(0)
	want := f.Restrict(0, false).Or(f.Restrict(0, true))
	if !ex.Equal(want) {
		t.Fatal("Exists != Shannon or")
	}
	fa := f.Forall(0)
	want = f.Restrict(0, false).And(f.Restrict(0, true))
	if !fa.Equal(want) {
		t.Fatal("Forall != Shannon and")
	}
	multi := f.Exists(0, 1, 2)
	if !multi.IsOne() {
		t.Fatal("∃all of a satisfiable f should be 1")
	}
}

func TestComposePublic(t *testing.T) {
	m := bfbdd.New(4)
	f := m.Var(0).Xor(m.Var(1))
	g := m.Var(2).And(m.Var(3))
	h := f.Compose(1, g)
	want := m.Var(0).Xor(g)
	if !h.Equal(want) {
		t.Fatal("Compose failed")
	}
}

func TestSupportAndSize(t *testing.T) {
	m := bfbdd.New(6)
	f := m.Var(1).And(m.Var(4))
	sup := f.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 4 {
		t.Fatalf("Support = %v", sup)
	}
	if f.Size() != 2 {
		t.Fatalf("Size = %d", f.Size())
	}
}

func TestFreeAndGC(t *testing.T) {
	m := bfbdd.New(16, bfbdd.WithEngine(bfbdd.EnginePBF))
	f := m.Var(0)
	for i := 1; i < 16; i++ {
		f = f.And(m.Var(i)) // leaks intermediate handles deliberately below
	}
	if m.NumNodes() == 0 {
		t.Fatal("no nodes allocated")
	}
	// Free everything except the final conjunction — intermediate
	// handles were dropped but are still pinned via their BDD values...
	// in Go they are unreachable yet still registered; a production user
	// calls Free. Here: force GC with only f alive is impossible without
	// freeing, so just verify Free + GC reclaims.
	keep := f
	m.GC()
	sizeBefore := m.NumNodes()
	if sizeBefore == 0 {
		t.Fatal("GC collected pinned nodes")
	}
	keep.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("use after Free did not panic")
		}
	}()
	keep.IsZero()
}

func TestStatsSnapshot(t *testing.T) {
	m := bfbdd.New(12, bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(2),
		bfbdd.WithEvalThreshold(16), bfbdd.WithGroupSize(4))
	f := m.Var(0)
	for i := 1; i < 12; i++ {
		f = f.Xor(m.Var(i))
	}
	st := m.Stats()
	if st.Ops == 0 {
		t.Fatal("no ops recorded")
	}
	if st.NumNodes == 0 {
		t.Fatal("no nodes recorded")
	}
	if st.PeakBytes == 0 {
		t.Fatal("no memory recorded")
	}
	m.ResetStats()
	if m.Stats().Ops != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestCrossManagerPanics(t *testing.T) {
	m1, m2 := bfbdd.New(2), bfbdd.New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-manager operation did not panic")
		}
	}()
	m1.Var(0).And(m2.Var(0))
}

func TestWriteDOT(t *testing.T) {
	m := bfbdd.New(3)
	f := m.Var(0).And(m.Var(1)).Or(m.Var(2))
	var sb strings.Builder
	if err := bfbdd.WriteDOT(&sb, []string{"f"}, f); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, frag := range []string{"digraph bdd", `label="x0"`, "style=dashed", `label="f"`, "t1 [label="} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT output missing %q:\n%s", frag, dot)
		}
	}
	if err := bfbdd.WriteDOT(&sb, nil); err == nil {
		t.Fatal("WriteDOT with no BDDs should error")
	}
}

func TestEnginesAgreePublic(t *testing.T) {
	// All engines must agree on a randomized workload (compared via a
	// reference DF manager through semantics sampling).
	build := func(m *bfbdd.Manager, seed int64) *bfbdd.BDD {
		rng := rand.New(rand.NewSource(seed))
		refs := []*bfbdd.BDD{m.Zero(), m.One()}
		for i := 0; i < 8; i++ {
			refs = append(refs, m.Var(i))
		}
		for i := 0; i < 60; i++ {
			a := refs[rng.Intn(len(refs))]
			b := refs[rng.Intn(len(refs))]
			var r *bfbdd.BDD
			switch rng.Intn(4) {
			case 0:
				r = a.And(b)
			case 1:
				r = a.Or(b)
			case 2:
				r = a.Xor(b)
			default:
				r = a.Nand(b)
			}
			refs = append(refs, r)
		}
		return refs[len(refs)-1]
	}
	ref := build(bfbdd.New(8, bfbdd.WithEngine(bfbdd.EngineDF)), 5)
	for name, opts := range allEngines() {
		m := bfbdd.New(8, opts...)
		f := build(m, 5)
		for trial := 0; trial < 256; trial++ {
			assign := make([]bool, 8)
			for i := range assign {
				assign[i] = trial>>i&1 == 1
			}
			if f.Eval(assign) != ref.Eval(assign) {
				t.Fatalf("engine %s disagrees with df at assignment %08b", name, trial)
			}
		}
		if f.Size() != ref.Size() {
			t.Fatalf("engine %s: size %d != df size %d (canonicity)", name, f.Size(), ref.Size())
		}
	}
}
