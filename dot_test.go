package bfbdd_test

import (
	"strings"
	"testing"

	"bfbdd"
)

// TestWriteDOTGolden pins the exact DOT output for a known function:
// f = (x0 ∧ x1) ∨ x2. Node identifiers must be assigned in depth-first
// preorder from the root (n0 root at x0, n1 its low child at x2, n2 its
// high child at x1), never from physical arena coordinates.
func TestWriteDOTGolden(t *testing.T) {
	m := bfbdd.New(3)
	defer m.Close()
	f := m.Var(0).And(m.Var(1)).Or(m.Var(2))

	var sb strings.Builder
	if err := bfbdd.WriteDOT(&sb, []string{"f"}, f); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	want := `digraph bdd {
  rankdir=TB;
  node [shape=circle];
  t0 [label="0", shape=box];
  t1 [label="1", shape=box];
  r0 [label="f", shape=plaintext];
  r0 -> n0;
  n0 [label="x0"];
  n0 -> n1 [style=dashed];
  n0 -> n2;
  n1 [label="x2"];
  n1 -> t0 [style=dashed];
  n1 -> t1;
  n2 [label="x1"];
  n2 -> n1 [style=dashed];
  n2 -> t1;
}
`
	if sb.String() != want {
		t.Fatalf("DOT output drifted from golden.\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestWriteDOTDeterministicAcrossEngines renders the same function built
// under different engines (and thus different physical node layouts) and
// requires byte-identical output.
func TestWriteDOTDeterministicAcrossEngines(t *testing.T) {
	build := func(opts ...bfbdd.Option) string {
		m := bfbdd.New(10, opts...)
		defer m.Close()
		f := m.Zero()
		for i := 0; i < 5; i++ {
			f = f.Or(m.Var(i).And(m.Var(5 + i)))
		}
		f = f.Xor(m.Var(2).Implies(m.Var(7)))
		var sb strings.Builder
		if err := bfbdd.WriteDOT(&sb, nil, f); err != nil {
			t.Fatalf("WriteDOT: %v", err)
		}
		return sb.String()
	}
	base := build()
	for name, opts := range map[string][]bfbdd.Option{
		"df":   {bfbdd.WithEngine(bfbdd.EngineDF)},
		"bf":   {bfbdd.WithEngine(bfbdd.EngineBF)},
		"par3": {bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(3)},
	} {
		if got := build(opts...); got != base {
			t.Errorf("engine %s: DOT output differs from pbf baseline\ngot:\n%s\nwant:\n%s", name, got, base)
		}
	}
}
