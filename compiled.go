package bfbdd

import (
	"fmt"
	"io"

	"bfbdd/internal/compiled"
)

// CompiledFunc is an immutable compiled artifact of one or more BDDs:
// a flat, level-major packed node array supporting lock-free concurrent
// Eval/EvalBatch/SatCount/AnySat with no Manager involvement. A
// CompiledFunc holds no reference to the Manager it came from and stays
// valid after that manager is garbage-collected, reordered, or closed.
// See bfbdd/internal/compiled for the artifact and wire format.
type CompiledFunc = compiled.Func

// Compile freezes the subgraph reachable from the given BDDs into an
// immutable CompiledFunc; roots are labeled 0, 1, … in argument order.
// Compile only reads the manager and must be serialized against
// operations on it, like Snapshot.
func (m *Manager) Compile(roots ...*BDD) (*CompiledFunc, error) {
	labeled := make([]SnapshotRoot, len(roots))
	for i, b := range roots {
		labeled[i] = SnapshotRoot{ID: uint64(i), B: b}
	}
	return m.CompileRoots(labeled)
}

// CompileRoots is Compile with caller-chosen root IDs (the server uses
// its wire handle numbers, so artifact roots keep their public names).
func (m *Manager) CompileRoots(roots []SnapshotRoot) (*CompiledFunc, error) {
	m.checkOpen()
	crs := make([]compiled.Root, len(roots))
	for i, rt := range roots {
		if rt.B == nil {
			return nil, fmt.Errorf("bfbdd: compile root %d is nil", i)
		}
		if rt.B.m != m {
			return nil, fmt.Errorf("bfbdd: compile root %d belongs to a different manager", i)
		}
		crs[i] = compiled.Root{ID: rt.ID, Ref: rt.B.ref()}
	}
	return compiled.Compile(m.k, m.var2level, crs)
}

// LoadCompiled reads a compiled artifact stream produced by
// CompiledFunc.Serialize. Malformed input yields a typed error from
// bfbdd/internal/compiled (never a panic).
func LoadCompiled(r io.Reader) (*CompiledFunc, error) {
	return compiled.Load(r)
}
