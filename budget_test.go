package bfbdd_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bfbdd"
)

// growDNF keeps OR-ing random cubes into an accumulator until the
// manager's budget trips (returning the typed error) or maxTerms is
// reached (returning nil). Intermediates are freed as it goes, so after
// an abort the only nodes still pinned are the operands of the failing
// operation — the well-behaved-client shape the budget contract assumes.
func growDNF(m *bfbdd.Manager, rng *rand.Rand, vars, maxTerms, width int) error {
	acc := m.Zero()
	for i := 0; i < maxTerms; i++ {
		cube := m.One()
		for j := 0; j < width; j++ {
			v := rng.Intn(vars)
			var lit *bfbdd.BDD
			if rng.Intn(2) == 0 {
				lit = m.NVar(v)
			} else {
				lit = m.Var(v)
			}
			c, err := m.ApplyCtx(context.Background(), bfbdd.BatchAnd, cube, lit)
			lit.Free()
			cube.Free()
			if err != nil {
				acc.Free()
				return err
			}
			cube = c
		}
		a, err := m.ApplyCtx(context.Background(), bfbdd.BatchOr, acc, cube)
		cube.Free()
		acc.Free()
		if err != nil {
			return err
		}
		acc = a
	}
	acc.Free()
	return nil
}

// TestBudgetAbortAndReuse drives a build into a small node budget and
// checks the full abort contract: a typed ErrBudgetExceeded (never a
// panic or an OOM), a usage report, and a manager that stays fully
// usable for subsequent operations.
func TestBudgetAbortAndReuse(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts []bfbdd.Option
	}{
		{"pbf", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EnginePBF), bfbdd.WithEvalThreshold(16)}},
		{"par4", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(4),
			bfbdd.WithEvalThreshold(16), bfbdd.WithGroupSize(4)}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			const maxNodes = 4000
			opts := append([]bfbdd.Option{bfbdd.WithMaxNodes(maxNodes)}, cfg.opts...)
			m := bfbdd.New(24, opts...)
			defer m.Close()

			err := growDNF(m, rand.New(rand.NewSource(11)), 24, 4096, 8)
			if err == nil {
				t.Fatal("build finished without tripping a 4000-node budget")
			}
			if !errors.Is(err, bfbdd.ErrBudgetExceeded) {
				t.Fatalf("err = %v, want ErrBudgetExceeded", err)
			}
			var be *bfbdd.BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("err = %T, want *BudgetError", err)
			}
			if be.MaxNodes != maxNodes {
				t.Fatalf("BudgetError.MaxNodes = %d, want %d", be.MaxNodes, maxNodes)
			}
			if be.Live == 0 {
				t.Fatal("BudgetError.Live = 0, want the live count at abort")
			}
			if len(be.PerLevel) == 0 {
				t.Fatal("BudgetError.PerLevel empty, want per-variable usage")
			}

			// The manager must remain consistent and reusable.
			a, b := m.Var(0), m.Var(1)
			if !a.And(b).Equal(b.And(a)) {
				t.Fatal("manager inconsistent after budget abort")
			}
			st := m.Stats()
			if st.BudgetAborts == 0 {
				t.Fatal("Stats().BudgetAborts = 0 after an abort")
			}
			if st.MemBytes == 0 {
				t.Fatal("Stats().MemBytes = 0, want a live footprint")
			}
		})
	}
}

// TestBudgetPlainApplyPanicsTyped checks the non-Ctx path: a plain Apply
// that exhausts the budget panics with the same typed error (so callers
// that want errors use the Ctx variants, and callers that don't still
// get a diagnosable panic instead of an OOM kill).
func TestBudgetPlainApplyPanicsTyped(t *testing.T) {
	m := bfbdd.New(24,
		bfbdd.WithMaxNodes(4000),
		bfbdd.WithEngine(bfbdd.EnginePBF), bfbdd.WithEvalThreshold(16))
	defer m.Close()

	rng := rand.New(rand.NewSource(11))
	var recovered any
	var acc, cube *bfbdd.BDD
	func() {
		defer func() { recovered = recover() }()
		acc = m.Zero()
		for i := 0; i < 4096; i++ {
			cube = m.One()
			for j := 0; j < 8; j++ {
				v := rng.Intn(24)
				var lit *bfbdd.BDD
				if rng.Intn(2) == 0 {
					lit = m.NVar(v)
				} else {
					lit = m.Var(v)
				}
				next := cube.And(lit)
				lit.Free()
				cube.Free()
				cube = next
			}
			next := acc.Or(cube)
			cube.Free()
			acc.Free()
			acc, cube = next, nil
		}
	}()
	// Drop the survivors so the reuse check below runs against a mostly
	// empty manager (the budget is enforced against what stays pinned).
	if acc != nil {
		acc.Free()
	}
	if cube != nil {
		cube.Free()
	}
	if recovered == nil {
		t.Fatal("plain Apply finished without tripping the budget")
	}
	err, ok := recovered.(error)
	if !ok {
		t.Fatalf("panic value is %T, want a typed error", recovered)
	}
	if !errors.Is(err, bfbdd.ErrBudgetExceeded) {
		t.Fatalf("panic error = %v, want ErrBudgetExceeded", err)
	}
	// Reusable after the panic unwound through the public API.
	if !m.Var(2).Or(m.Var(2).Not()).IsOne() {
		t.Fatal("manager inconsistent after budget panic")
	}
}

// TestApplyBatchBudgetPartial checks the partial-completion contract:
// when a batch aborts on the budget partway through, the returned slice
// reports which operations completed, and those handles are fully
// usable. The sequential engine evaluates the batch in order, so the
// cheap leading operations deterministically finish before the
// expensive final one trips the budget.
func TestApplyBatchBudgetPartial(t *testing.T) {
	m := bfbdd.New(24,
		bfbdd.WithMaxNodes(4000),
		bfbdd.WithEngine(bfbdd.EnginePBF), bfbdd.WithEvalThreshold(16))
	defer m.Close()

	// Two cheap operand pairs plus two random DNFs over the same variable
	// range whose XOR blows well past the budget (operands pin ~2200
	// nodes together; their XOR alone is ~5600). Intermediates are freed
	// as the DNFs grow so the pinned setup fits comfortably under it.
	rng := rand.New(rand.NewSource(5))
	dnf := func() *bfbdd.BDD {
		acc := m.Zero()
		for i := 0; i < 24; i++ {
			cube := m.One()
			for j := 0; j < 8; j++ {
				v := rng.Intn(24)
				lit := m.Var(v)
				if rng.Intn(2) == 0 {
					lit = m.NVar(v)
				}
				next := cube.And(lit)
				lit.Free()
				cube.Free()
				cube = next
			}
			next := acc.Or(cube)
			cube.Free()
			acc.Free()
			acc = next
		}
		return acc
	}
	even, odd := dnf(), dnf()

	ops := []bfbdd.BatchOp{
		{Kind: bfbdd.BatchAnd, F: m.Var(0), G: m.Var(1)},
		{Kind: bfbdd.BatchOr, F: m.Var(2), G: m.Var(3)},
		{Kind: bfbdd.BatchXor, F: even, G: odd},
	}
	refs, err := m.ApplyBatchCtx(context.Background(), ops)
	if !errors.Is(err, bfbdd.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if len(refs) != len(ops) {
		t.Fatalf("partial results: len = %d, want %d", len(refs), len(ops))
	}
	if refs[0] == nil || refs[1] == nil {
		t.Fatalf("cheap leading ops not reported complete: %v %v", refs[0], refs[1])
	}
	if refs[2] != nil {
		t.Fatal("aborted op reported complete")
	}
	// The completed handles must be real, canonical BDDs.
	if !refs[0].Equal(m.Var(0).And(m.Var(1))) {
		t.Fatal("partial result 0 not canonical")
	}
	if !refs[1].Equal(m.Var(2).Or(m.Var(3))) {
		t.Fatal("partial result 1 not canonical")
	}
}

// TestBudgetDegradationSteps checks the graceful-degradation ladder: a
// single-worker build that crosses the soft threshold lowers the
// effective evaluation threshold (the paper's §3.1 memory-control knob)
// before the hard budget aborts it, and the step counters record it.
func TestBudgetDegradationSteps(t *testing.T) {
	m := bfbdd.New(24,
		bfbdd.WithMaxNodes(32000),
		bfbdd.WithEngine(bfbdd.EnginePBF), bfbdd.WithEvalThreshold(512))
	defer m.Close()

	err := growDNF(m, rand.New(rand.NewSource(3)), 24, 1<<16, 8)
	if !errors.Is(err, bfbdd.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	st := m.Stats()
	if st.BudgetThresholdDrops == 0 {
		t.Fatal("budget aborted without ever degrading the eval threshold")
	}
	// EffEvalThreshold may already be restored by a post-abort boundary
	// gate; the drop counter is the durable evidence of degradation.
	t.Logf("threshold drops %d, effective threshold now %d",
		st.BudgetThresholdDrops, st.EffEvalThreshold)
}

// TestBudgetMaxBytes exercises the byte-denominated budget.
func TestBudgetMaxBytes(t *testing.T) {
	m := bfbdd.New(24,
		bfbdd.WithMaxBytes(512<<10),
		bfbdd.WithEngine(bfbdd.EnginePBF), bfbdd.WithEvalThreshold(16))
	defer m.Close()

	err := growDNF(m, rand.New(rand.NewSource(7)), 24, 1<<16, 8)
	if !errors.Is(err, bfbdd.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *bfbdd.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BudgetError", err)
	}
	if be.MaxBytes != 512<<10 {
		t.Fatalf("BudgetError.MaxBytes = %d, want %d", be.MaxBytes, 512<<10)
	}
	if be.Bytes == 0 {
		t.Fatal("BudgetError.Bytes = 0, want the footprint at abort")
	}
	if !m.Var(0).And(m.Var(1)).Equal(m.Var(1).And(m.Var(0))) {
		t.Fatal("manager inconsistent after byte-budget abort")
	}
}
