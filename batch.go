package bfbdd

import "bfbdd/internal/core"

// BatchOpKind names a binary operation for ApplyBatch.
type BatchOpKind int

// The operations accepted by ApplyBatch.
const (
	BatchAnd BatchOpKind = iota
	BatchOr
	BatchXor
	BatchNand
	BatchNor
	BatchXnor
	BatchDiff
	BatchImplies
)

func (k BatchOpKind) op() core.Op {
	switch k {
	case BatchAnd:
		return core.OpAnd
	case BatchOr:
		return core.OpOr
	case BatchXor:
		return core.OpXor
	case BatchNand:
		return core.OpNand
	case BatchNor:
		return core.OpNor
	case BatchXnor:
		return core.OpXnor
	case BatchDiff:
		return core.OpDiff
	case BatchImplies:
		return core.OpImp
	}
	panic("bfbdd: unknown batch op kind")
}

// BatchOp is one operation of an ApplyBatch call.
type BatchOp struct {
	Kind BatchOpKind
	F, G *BDD
}

// ApplyBatch computes a set of independent operations as one unit: with
// EnginePar the operations are seeded across the workers and constructed
// cooperatively (work stealing balances the remainder), and garbage
// collection runs at the batch boundary instead of between operations —
// the paper's "set of top level operations we queued" usage mode. The
// results are returned in order.
func (m *Manager) ApplyBatch(ops []BatchOp) []*BDD {
	bin := make([]core.BinOp, len(ops))
	for i, op := range ops {
		op.F.mustShareManager(op.G)
		if op.F.m != m {
			panic("bfbdd: ApplyBatch operand from another manager")
		}
		bin[i] = core.BinOp{Op: op.Kind.op(), F: op.F.ref(), G: op.G.ref()}
	}
	refs := m.k.ApplyBatch(bin)
	out := make([]*BDD, len(refs))
	for i, r := range refs {
		out[i] = m.wrap(r)
	}
	return out
}
