package bfbdd

import (
	"context"

	"bfbdd/internal/core"
	"bfbdd/internal/node"
)

// BatchOpKind names a binary operation for ApplyBatch.
type BatchOpKind int

// The operations accepted by ApplyBatch.
const (
	BatchAnd BatchOpKind = iota
	BatchOr
	BatchXor
	BatchNand
	BatchNor
	BatchXnor
	BatchDiff
	BatchImplies
)

func (k BatchOpKind) op() core.Op {
	switch k {
	case BatchAnd:
		return core.OpAnd
	case BatchOr:
		return core.OpOr
	case BatchXor:
		return core.OpXor
	case BatchNand:
		return core.OpNand
	case BatchNor:
		return core.OpNor
	case BatchXnor:
		return core.OpXnor
	case BatchDiff:
		return core.OpDiff
	case BatchImplies:
		return core.OpImp
	}
	panic("bfbdd: unknown batch op kind")
}

// BatchOp is one operation of an ApplyBatch call.
type BatchOp struct {
	Kind BatchOpKind
	F, G *BDD
}

// ApplyBatch computes a set of independent operations as one unit: with
// EnginePar the operations are seeded across the workers and constructed
// cooperatively (work stealing balances the remainder), and garbage
// collection runs at the batch boundary instead of between operations —
// the paper's "set of top level operations we queued" usage mode. The
// results are returned in order.
func (m *Manager) ApplyBatch(ops []BatchOp) []*BDD {
	refs := m.k.ApplyBatch(m.binOps(ops))
	out := make([]*BDD, len(refs))
	for i, r := range refs {
		out[i] = m.wrap(r)
	}
	return out
}

// ApplyBatchCtx is ApplyBatch with cooperative cancellation: when ctx is
// canceled (or its deadline passes) mid-construction, the workers abandon
// the batch at their next poll point, the kernel discards the transient
// build state, and ctx's error is returned. The manager remains fully
// usable; no results are returned for a canceled batch.
//
// When the batch aborts on a typed error instead — a *BudgetError after
// the budget escalation ladder is exhausted, or an injected fault — the
// returned slice has len(ops) entries reporting which operations
// completed before the abort: a valid handle for each finished op, nil
// for the rest. The completed handles are fully usable.
func (m *Manager) ApplyBatchCtx(ctx context.Context, ops []BatchOp) ([]*BDD, error) {
	bin := m.binOps(ops)
	finish := m.traceBuild(ctx)
	refs, err := m.k.ApplyBatchCtx(ctx, bin)
	finish()
	if err != nil {
		if len(refs) == 0 {
			return nil, err
		}
		// Partial completion: wrap (pin) the finished results immediately,
		// before any later operation can trigger a collection that would
		// reclaim them.
		out := make([]*BDD, len(refs))
		for i, r := range refs {
			if r != node.Nil {
				out[i] = m.wrap(r)
			}
		}
		return out, err
	}
	out := make([]*BDD, len(refs))
	for i, r := range refs {
		out[i] = m.wrap(r)
	}
	return out, nil
}

// ApplyCtx computes f <kind> g with cooperative cancellation (see
// ApplyBatchCtx).
func (m *Manager) ApplyCtx(ctx context.Context, kind BatchOpKind, f, g *BDD) (*BDD, error) {
	f.mustShareManager(g)
	if f.m != m {
		panic("bfbdd: ApplyCtx operand from another manager")
	}
	finish := m.traceBuild(ctx)
	r, err := m.k.ApplyCtx(ctx, kind.op(), f.ref(), g.ref())
	finish()
	if err != nil {
		return nil, err
	}
	return m.wrap(r), nil
}

// binOps validates the batch and lowers it to kernel operations.
func (m *Manager) binOps(ops []BatchOp) []core.BinOp {
	bin := make([]core.BinOp, len(ops))
	for i, op := range ops {
		op.F.mustShareManager(op.G)
		if op.F.m != m {
			panic("bfbdd: ApplyBatch operand from another manager")
		}
		bin[i] = core.BinOp{Op: op.Kind.op(), F: op.F.ref(), G: op.G.ref()}
	}
	return bin
}
