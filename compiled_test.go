package bfbdd_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"bfbdd"
)

// buildMix constructs a deterministic pseudo-random pile of functions
// over numVars variables, returning the manager and the functions.
func buildMix(t testing.TB, numVars, count int, seed int64, opts ...bfbdd.Option) (*bfbdd.Manager, []*bfbdd.BDD) {
	t.Helper()
	m := bfbdd.New(numVars, opts...)
	rng := rand.New(rand.NewSource(seed))
	pool := make([]*bfbdd.BDD, 0, 2*numVars+count)
	for v := 0; v < numVars; v++ {
		pool = append(pool, m.Var(v), m.NVar(v))
	}
	var out []*bfbdd.BDD
	for len(out) < count {
		f := pool[rng.Intn(len(pool))]
		g := pool[rng.Intn(len(pool))]
		var h *bfbdd.BDD
		switch rng.Intn(5) {
		case 0:
			h = f.And(g)
		case 1:
			h = f.Or(g)
		case 2:
			h = f.Xor(g)
		case 3:
			h = f.ITE(g, pool[rng.Intn(len(pool))])
		default:
			h = f.Not()
		}
		pool = append(pool, h)
		out = append(out, h)
	}
	return m, out
}

func assignmentOf(mask uint64, numVars int) []bool {
	a := make([]bool, numVars)
	for v := 0; v < numVars; v++ {
		a[v] = mask>>uint(v)&1 == 1
	}
	return a
}

// TestCompiledMatchesManager exhaustively compares Eval, EvalBatch,
// SatCount, and AnySat of a compiled artifact against the live manager.
func TestCompiledMatchesManager(t *testing.T) {
	const numVars = 10
	m, fns := buildMix(t, numVars, 8, 42)
	defer m.Close()
	cf, err := m.Compile(fns...)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if cf.NumVars() != numVars || cf.NumRoots() != len(fns) {
		t.Fatalf("artifact shape: %d vars %d roots", cf.NumVars(), cf.NumRoots())
	}
	all := make([][]bool, 1<<numVars)
	for mask := range all {
		all[mask] = assignmentOf(uint64(mask), numVars)
	}
	for i, b := range fns {
		batch := cf.EvalBatch(i, all)
		for mask, a := range all {
			want := b.Eval(a)
			if got := cf.Eval(i, a); got != want {
				t.Fatalf("root %d mask %d: Eval=%v want %v", i, mask, got, want)
			}
			if batch[mask] != want {
				t.Fatalf("root %d mask %d: EvalBatch=%v want %v", i, mask, batch[mask], want)
			}
		}
		if got, want := cf.SatCount(i), b.SatCount(); got.Cmp(want) != 0 {
			t.Fatalf("root %d: SatCount=%v want %v", i, got, want)
		}
		asn, ok := cf.AnySat(i)
		if ok != !b.IsZero() {
			t.Fatalf("root %d: AnySat ok=%v IsZero=%v", i, ok, b.IsZero())
		}
		if ok {
			full := make([]bool, numVars)
			for v, val := range asn {
				full[v] = val
			}
			if !b.Eval(full) {
				t.Fatalf("root %d: AnySat assignment does not satisfy", i)
			}
		}
	}
}

// TestCompiledEvalBatchPaths checks the sweep and walk paths agree: a
// sub-threshold batch takes the per-assignment walk, a large batch the
// bit-parallel sweep, and a non-multiple-of-64 batch exercises the
// partial last word.
func TestCompiledEvalBatchPaths(t *testing.T) {
	const numVars = 9
	m, fns := buildMix(t, numVars, 5, 7)
	defer m.Close()
	cf, err := m.Compile(fns...)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rng := rand.New(rand.NewSource(99))
	batch := make([][]bool, 197) // sweep path, ragged final word
	for i := range batch {
		batch[i] = assignmentOf(rng.Uint64(), numVars)
	}
	for i := range fns {
		wide := cf.EvalBatch(i, batch)
		for j, a := range batch {
			if got := cf.Eval(i, a); got != wide[j] {
				t.Fatalf("root %d assignment %d: sweep %v walk %v", i, j, wide[j], got)
			}
		}
		narrow := cf.EvalBatch(i, batch[:4]) // below sweepMinBatch: walk path
		for j := range narrow {
			if narrow[j] != wide[j] {
				t.Fatalf("root %d assignment %d: narrow %v wide %v", i, j, narrow[j], wide[j])
			}
		}
	}
}

// TestCompiledCrossEngineBytes compiles the same functions on every
// engine and requires byte-identical serialized artifacts — the export
// order must be a pure function of the graph, not the engine that built
// it.
func TestCompiledCrossEngineBytes(t *testing.T) {
	build := func(opts ...bfbdd.Option) []byte {
		m, fns := buildMix(t, 8, 6, 1234, opts...)
		defer m.Close()
		cf, err := m.Compile(fns...)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		var buf bytes.Buffer
		if err := cf.Serialize(&buf); err != nil {
			t.Fatalf("Serialize: %v", err)
		}
		return buf.Bytes()
	}
	ref := build(bfbdd.WithEngine(bfbdd.EngineDF))
	for _, tc := range []struct {
		name string
		opts []bfbdd.Option
	}{
		{"bf", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EngineBF)}},
		{"hybrid", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EngineHybrid)}},
		{"pbf", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EnginePBF)}},
		{"par2", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(2)}},
	} {
		if got := build(tc.opts...); !bytes.Equal(got, ref) {
			t.Fatalf("engine %s: serialized artifact differs from df (%d vs %d bytes)",
				tc.name, len(got), len(ref))
		}
	}
}

// TestCompiledRoundTrip proves Serialize/Load (both encodings) preserve
// every answer, and that artifacts outlive their manager.
func TestCompiledRoundTrip(t *testing.T) {
	const numVars = 8
	m, fns := buildMix(t, numVars, 6, 5150)
	cf, err := m.Compile(fns...)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	type expected struct {
		values []bool
		count  string
	}
	all := make([][]bool, 1<<numVars)
	for mask := range all {
		all[mask] = assignmentOf(uint64(mask), numVars)
	}
	want := make([]expected, len(fns))
	for i := range fns {
		want[i] = expected{values: cf.EvalBatch(i, all), count: cf.SatCount(i).String()}
	}
	var delta, raw bytes.Buffer
	if err := cf.Serialize(&delta); err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	if err := cf.SerializeRaw(&raw); err != nil {
		t.Fatalf("SerializeRaw: %v", err)
	}
	if delta.Len() > raw.Len() {
		t.Errorf("delta encoding (%d bytes) larger than raw (%d bytes)", delta.Len(), raw.Len())
	}
	m.Close() // the artifact must not care

	for _, tc := range []struct {
		name string
		data []byte
	}{{"delta", delta.Bytes()}, {"raw", raw.Bytes()}} {
		lf, err := bfbdd.LoadCompiled(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%s: Load: %v", tc.name, err)
		}
		if lf.NumVars() != cf.NumVars() || lf.NumNodes() != cf.NumNodes() {
			t.Fatalf("%s: shape drifted", tc.name)
		}
		for i := range want {
			got := lf.EvalBatch(i, all)
			for mask := range all {
				if got[mask] != want[i].values[mask] {
					t.Fatalf("%s root %d mask %d: %v want %v",
						tc.name, i, mask, got[mask], want[i].values[mask])
				}
			}
			if s := lf.SatCount(i).String(); s != want[i].count {
				t.Fatalf("%s root %d: SatCount %s want %s", tc.name, i, s, want[i].count)
			}
		}
		// A reloaded artifact must re-serialize to the same bytes.
		var again bytes.Buffer
		if err := lf.Serialize(&again); err != nil {
			t.Fatalf("%s: re-serialize: %v", tc.name, err)
		}
		if !bytes.Equal(again.Bytes(), delta.Bytes()) {
			t.Fatalf("%s: re-serialized bytes differ", tc.name)
		}
	}
}

// TestCompiledRootIDs checks caller-chosen IDs survive compile and
// serialization, and terminal roots are representable.
func TestCompiledRootIDs(t *testing.T) {
	m := bfbdd.New(4)
	defer m.Close()
	f := m.Var(0).And(m.Var(2))
	cf, err := m.CompileRoots([]bfbdd.SnapshotRoot{
		{ID: 77, B: f}, {ID: 5, B: m.Zero()}, {ID: 9000, B: m.One()},
	})
	if err != nil {
		t.Fatalf("CompileRoots: %v", err)
	}
	var buf bytes.Buffer
	if err := cf.Serialize(&buf); err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	lf, err := bfbdd.LoadCompiled(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ids := lf.RootIDs()
	if len(ids) != 3 || ids[0] != 77 || ids[1] != 5 || ids[2] != 9000 {
		t.Fatalf("RootIDs: %v", ids)
	}
	if i, ok := lf.RootByID(9000); !ok || i != 2 {
		t.Fatalf("RootByID(9000): %d %v", i, ok)
	}
	if _, ok := lf.RootByID(1); ok {
		t.Fatal("RootByID(1) should not exist")
	}
	a := make([]bool, 4)
	if got := lf.Eval(1, a); got {
		t.Fatal("zero root evaluated true")
	}
	if got := lf.Eval(2, a); !got {
		t.Fatal("one root evaluated false")
	}
	if lf.SatCount(2).String() != "16" {
		t.Fatalf("one root satcount: %v", lf.SatCount(2))
	}
}

// TestCompiledErrors covers the misuse surface: nil and foreign roots
// are errors, out-of-range roots and bad assignment lengths panic with
// the bfbdd prefix (the server's panic firewall maps those to 400).
func TestCompiledErrors(t *testing.T) {
	m := bfbdd.New(4)
	defer m.Close()
	other := bfbdd.New(4)
	defer other.Close()

	if _, err := m.CompileRoots([]bfbdd.SnapshotRoot{{ID: 0, B: nil}}); err == nil {
		t.Fatal("nil root accepted")
	}
	if _, err := m.CompileRoots([]bfbdd.SnapshotRoot{{ID: 0, B: other.Var(1)}}); err == nil {
		t.Fatal("foreign root accepted")
	}
	cf, err := m.Compile(m.Var(0))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if s, ok := r.(string); !ok || !strings.HasPrefix(s, "bfbdd:") {
				t.Fatalf("%s: panic %v lacks bfbdd prefix", name, r)
			}
		}()
		fn()
	}
	mustPanic("root range", func() { cf.Eval(1, make([]bool, 4)) })
	mustPanic("neg root", func() { cf.Eval(-1, make([]bool, 4)) })
	mustPanic("assignment len", func() { cf.Eval(0, make([]bool, 3)) })
	mustPanic("batch assignment len", func() { cf.EvalBatch(0, [][]bool{make([]bool, 5)}) })
	mustPanic("satcount root", func() { cf.SatCount(9) })
}
