package bfbdd

import (
	"fmt"
	"math/big"
	"sort"
	"sync/atomic"
	"time"

	"bfbdd/internal/core"
	"bfbdd/internal/node"
	"bfbdd/internal/stats"
)

// Engine selects the BDD construction algorithm. See the package
// documentation for the trade-offs.
type Engine int

// The available engines.
const (
	EngineDF Engine = iota
	EngineBF
	EngineHybrid
	EnginePBF
	EnginePar
)

// String returns the engine name.
func (e Engine) String() string { return coreEngine(e).String() }

func coreEngine(e Engine) core.Engine {
	switch e {
	case EngineDF:
		return core.EngineDF
	case EngineBF:
		return core.EngineBF
	case EngineHybrid:
		return core.EngineHybrid
	case EnginePBF:
		return core.EnginePBF
	case EnginePar:
		return core.EnginePar
	}
	panic(fmt.Sprintf("bfbdd: unknown engine %d", int(e)))
}

// GCPolicy selects the garbage collection strategy.
type GCPolicy int

// The available GC policies.
const (
	// GCCompact is the paper's mark-and-sweep collector with memory
	// compaction (mark / fix / rehash). Default.
	GCCompact GCPolicy = iota
	// GCFreeList sweeps dead nodes onto free lists without moving
	// anything (lower pause cost, scattered allocation).
	GCFreeList
)

// Option configures a Manager.
type Option func(*core.Options)

// WithEngine selects the construction engine (default EnginePBF).
func WithEngine(e Engine) Option {
	return func(o *core.Options) { o.Engine = coreEngine(e) }
}

// WithWorkers sets the parallel worker count for EnginePar.
func WithWorkers(n int) Option {
	return func(o *core.Options) { o.Workers = n }
}

// WithEvalThreshold sets the partial breadth-first evaluation threshold:
// the number of Shannon expansions per evaluation context.
func WithEvalThreshold(n int) Option {
	return func(o *core.Options) { o.EvalThreshold = n }
}

// WithGroupSize sets the number of operations per stealable group.
func WithGroupSize(n int) Option {
	return func(o *core.Options) { o.GroupSize = n }
}

// WithCacheBits bounds each per-variable compute-cache segment at 2^bits
// entries.
func WithCacheBits(bits uint) Option {
	return func(o *core.Options) { o.CacheBits = bits }
}

// WithGCPolicy selects the collector (default GCCompact).
func WithGCPolicy(p GCPolicy) Option {
	return func(o *core.Options) {
		if p == GCFreeList {
			o.GC = core.GCFreeList
		} else {
			o.GC = core.GCCompact
		}
	}
}

// WithGCGrowth sets the heap growth factor that triggers collection.
func WithGCGrowth(f float64) Option {
	return func(o *core.Options) { o.GCGrowth = f }
}

// WithGCMinNodes suppresses collection below this live-node count.
func WithGCMinNodes(n uint64) Option {
	return func(o *core.Options) { o.GCMinNodes = n }
}

// WithStealing enables or disables work stealing (EnginePar only;
// enabled by default).
func WithStealing(enabled bool) Option {
	return func(o *core.Options) { o.Stealing = enabled }
}

// WithMaxNodes bounds the manager's live node count (0 = unlimited).
// Approaching the budget triggers graceful degradation — a forced early
// collection, compute-cache shrinking, and a lowered partial-BF
// evaluation threshold (the paper's memory-control knob) — and a build
// that still exceeds it aborts with a *BudgetError wrapping
// ErrBudgetExceeded. The manager stays consistent and reusable after an
// abort.
func WithMaxNodes(n uint64) Option {
	return func(o *core.Options) { o.MaxNodes = n }
}

// WithMaxBytes bounds the manager's approximate total memory footprint
// (nodes + operator arenas + caches + unique-table buckets) the same way
// WithMaxNodes bounds the node count.
func WithMaxBytes(n uint64) Option {
	return func(o *core.Options) { o.MaxBytes = n }
}

// WithSpillDir enables memory tiering: quiescent fully-reduced levels
// can be spilled to level-major files under dir (and are remapped
// read-only via mmap where the platform supports it, so reads keep
// working without the heap copy). The byte-budget degradation ladder
// gains a "spill coldest levels" rung before a *BudgetError, and
// SpillAll/Unspill/MemReport become meaningful. dir is scratch state
// owned by this manager: stale contents are wiped on creation and the
// directory is removed on Close. An empty dir disables tiering
// (default).
func WithSpillDir(dir string) Option {
	return func(o *core.Options) { o.SpillDir = dir }
}

// ErrBudgetExceeded is the sentinel wrapped by every *BudgetError.
// Classify budget aborts with errors.Is(err, ErrBudgetExceeded).
var ErrBudgetExceeded = core.ErrBudgetExceeded

// BudgetError reports a build aborted because the manager's node or byte
// budget was exceeded after all graceful-degradation steps. Context-free
// methods (And, ITE, ...) panic it; ApplyCtx/ApplyBatchCtx return it.
type BudgetError = core.BudgetError

// LevelUsage is the per-variable usage record carried by a BudgetError.
type LevelUsage = core.LevelUsage

// InternalError is a kernel invariant violation contained into a typed
// value instead of a raw panic. A manager that produced one must be
// considered corrupt and discarded.
type InternalError = core.InternalError

// Manager owns a BDD node space over a fixed number of variables.
//
// Variables have stable public indices 0..NumVars-1; their position in
// the variable order (their level) starts out equal to the index and can
// be changed with SetOrder. All public methods speak in variable indices.
type Manager struct {
	k         *core.Kernel
	var2level []int
	level2var []int
	closed    atomic.Bool
}

// New creates a manager with numVars Boolean variables. Initially
// variable i sits at order position (level) i; variable 0 has the highest
// precedence.
func New(numVars int, opts ...Option) *Manager {
	o := core.Options{
		Levels:   numVars,
		Engine:   core.EnginePBF,
		Stealing: true,
	}
	for _, opt := range opts {
		opt(&o)
	}
	m := &Manager{
		k:         core.NewKernel(o),
		var2level: make([]int, numVars),
		level2var: make([]int, numVars),
	}
	for i := range m.var2level {
		m.var2level[i] = i
		m.level2var[i] = i
	}
	return m
}

// checkOpen panics when the manager has been closed.
func (m *Manager) checkOpen() {
	if m.closed.Load() {
		panic("bfbdd: use of closed Manager")
	}
}

// Close releases the manager: every live BDD handle is unpinned and the
// node store, unique tables, and caches are released for reclamation.
// Outstanding handles become invalid; using them (or the manager) after
// Close panics deterministically, and closing twice panics. Freeing an
// already-obtained handle after Close is a safe no-op, so shutdown code
// need not order Free calls before Close. Close must not race with
// in-flight operations — serialize it behind the same discipline as any
// other manager call.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		panic("bfbdd: Manager closed twice")
	}
	m.k.Close()
}

// Closed reports whether Close has been called.
func (m *Manager) Closed() bool { return m.closed.Load() }

// level maps a public variable index to its current order level.
func (m *Manager) level(v int) int {
	m.checkOpen()
	if v < 0 || v >= len(m.var2level) {
		panic(fmt.Sprintf("bfbdd: variable %d out of range [0,%d)", v, len(m.var2level)))
	}
	return m.var2level[v]
}

// Order returns the current variable order: position p holds Order()[p].
func (m *Manager) Order() []int {
	return append([]int(nil), m.level2var...)
}

// LevelOf returns variable v's current position in the order.
func (m *Manager) LevelOf(v int) int { return m.level(v) }

// SetOrder changes the variable order: newLevel[v] is the desired order
// position of variable v, and must be a permutation of [0, NumVars).
// Every live BDD handle is rebuilt under the new order (see the paper's
// discussion of ordering sensitivity, §2; Rudell [22]); handles stay
// valid, sizes change with the order.
func (m *Manager) SetOrder(newLevel []int) {
	if len(newLevel) != len(m.var2level) {
		panic(fmt.Sprintf("bfbdd: SetOrder with %d entries for %d variables",
			len(newLevel), len(m.var2level)))
	}
	levelMap := make([]int, len(newLevel))
	for v, nl := range newLevel {
		if nl < 0 || nl >= len(newLevel) {
			panic("bfbdd: SetOrder is not a permutation")
		}
		levelMap[m.var2level[v]] = nl
	}
	m.k.ReorderLevels(levelMap)
	copy(m.var2level, newLevel)
	for v, l := range m.var2level {
		m.level2var[l] = v
	}
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.k.Levels() }

// NumNodes returns the current live BDD node count across all variables.
func (m *Manager) NumNodes() uint64 {
	m.checkOpen()
	return m.k.NumNodes()
}

// wrap pins a ref into a BDD handle.
func (m *Manager) wrap(r node.Ref) *BDD {
	m.checkOpen()
	return &BDD{m: m, pin: m.k.Pin(r)}
}

// Zero returns the constant-false BDD.
func (m *Manager) Zero() *BDD { return m.wrap(node.Zero) }

// One returns the constant-true BDD.
func (m *Manager) One() *BDD { return m.wrap(node.One) }

// Var returns the BDD for variable i.
func (m *Manager) Var(i int) *BDD { return m.wrap(m.k.VarRef(m.level(i))) }

// NVar returns the BDD for the negation of variable i.
func (m *Manager) NVar(i int) *BDD {
	return m.wrap(m.k.MkNode(m.level(i), node.One, node.Zero))
}

// GC forces an immediate garbage collection.
func (m *Manager) GC() {
	m.checkOpen()
	m.k.GC()
}

// BDD is a handle to a canonical binary decision diagram. Handles remain
// valid across the manager's garbage collections until Free is called.
type BDD struct {
	m   *Manager
	pin *core.Pin
}

// Manager returns the owning manager.
func (b *BDD) Manager() *Manager { return b.m }

// ref returns the current underlying ref.
func (b *BDD) ref() node.Ref {
	b.m.checkOpen()
	if b.pin == nil {
		panic("bfbdd: use of freed BDD")
	}
	return b.pin.Ref()
}

// Free releases the handle, allowing the garbage collector to reclaim the
// diagram if nothing else references it. The BDD must not be used after.
// Free after the manager's Close is a safe no-op.
func (b *BDD) Free() {
	if b.pin != nil {
		if !b.m.closed.Load() {
			b.m.k.Unpin(b.pin)
		}
		b.pin = nil
	}
}

// Equal reports whether b and c represent the same Boolean function.
// Thanks to canonicity this is a pointer-style comparison.
func (b *BDD) Equal(c *BDD) bool {
	b.mustShareManager(c)
	return b.ref() == c.ref()
}

// IsZero reports whether b is the constant false function.
func (b *BDD) IsZero() bool { return b.ref().IsZero() }

// IsOne reports whether b is the constant true function.
func (b *BDD) IsOne() bool { return b.ref().IsOne() }

func (b *BDD) mustShareManager(c *BDD) {
	if b.m != c.m {
		panic("bfbdd: operands belong to different managers")
	}
}

func (b *BDD) apply(op core.Op, c *BDD) *BDD {
	b.mustShareManager(c)
	return b.m.wrap(b.m.k.Apply(op, b.ref(), c.ref()))
}

// And returns b ∧ c.
func (b *BDD) And(c *BDD) *BDD { return b.apply(core.OpAnd, c) }

// Or returns b ∨ c.
func (b *BDD) Or(c *BDD) *BDD { return b.apply(core.OpOr, c) }

// Xor returns b ⊕ c.
func (b *BDD) Xor(c *BDD) *BDD { return b.apply(core.OpXor, c) }

// Nand returns ¬(b ∧ c).
func (b *BDD) Nand(c *BDD) *BDD { return b.apply(core.OpNand, c) }

// Nor returns ¬(b ∨ c).
func (b *BDD) Nor(c *BDD) *BDD { return b.apply(core.OpNor, c) }

// Xnor returns ¬(b ⊕ c) (equivalence).
func (b *BDD) Xnor(c *BDD) *BDD { return b.apply(core.OpXnor, c) }

// Diff returns b ∧ ¬c.
func (b *BDD) Diff(c *BDD) *BDD { return b.apply(core.OpDiff, c) }

// Implies returns ¬b ∨ c.
func (b *BDD) Implies(c *BDD) *BDD { return b.apply(core.OpImp, c) }

// Not returns ¬b.
func (b *BDD) Not() *BDD { return b.m.wrap(b.m.k.Not(b.ref())) }

// ITE returns b ? t : e (if-then-else).
func (b *BDD) ITE(t, e *BDD) *BDD {
	b.mustShareManager(t)
	b.mustShareManager(e)
	return b.m.wrap(b.m.k.ITE(b.ref(), t.ref(), e.ref()))
}

// cubeLevels maps public variable indices to levels for quantification.
func (m *Manager) cubeLevels(vars []int) []int {
	levels := make([]int, len(vars))
	for i, v := range vars {
		levels[i] = m.level(v)
	}
	return levels
}

// Exists existentially quantifies the given variables out of b.
func (b *BDD) Exists(vars ...int) *BDD {
	cube := b.m.k.CubeRef(b.m.cubeLevels(vars))
	return b.m.wrap(b.m.k.Exists(b.ref(), cube))
}

// Forall universally quantifies the given variables out of b.
func (b *BDD) Forall(vars ...int) *BDD {
	cube := b.m.k.CubeRef(b.m.cubeLevels(vars))
	return b.m.wrap(b.m.k.Forall(b.ref(), cube))
}

// Restrict fixes variable v to the given value.
func (b *BDD) Restrict(v int, value bool) *BDD {
	return b.m.wrap(b.m.k.Restrict(b.ref(), b.m.level(v), value))
}

// Compose substitutes the function g for variable v in b.
func (b *BDD) Compose(v int, g *BDD) *BDD {
	b.mustShareManager(g)
	return b.m.wrap(b.m.k.Compose(b.ref(), b.m.level(v), g.ref()))
}

// Size returns the number of internal nodes in b.
func (b *BDD) Size() int { return b.m.k.Size(b.ref()) }

// SatCount returns the exact number of satisfying assignments over all of
// the manager's variables.
func (b *BDD) SatCount() *big.Int { return b.m.k.SatCount(b.ref()) }

// AnySat returns one satisfying assignment as a map from variable index to
// value; variables absent from the map are don't-cares. ok is false when b
// is unsatisfiable.
func (b *BDD) AnySat() (assignment map[int]bool, ok bool) {
	a, ok := b.m.k.AnySat(b.ref())
	if !ok {
		return nil, false
	}
	out := make(map[int]bool)
	for lvl, val := range a {
		if lvl >= len(b.m.level2var) {
			panic(fmt.Sprintf("bfbdd: AnySat level %d out of range [0,%d)",
				lvl, len(b.m.level2var)))
		}
		if val >= 0 {
			out[b.m.level2var[lvl]] = val == 1
		}
	}
	return out, true
}

// Eval evaluates b under a complete assignment indexed by variable. The
// assignment must have exactly NumVars entries.
func (b *BDD) Eval(assignment []bool) bool {
	if len(assignment) != len(b.m.var2level) {
		panic(fmt.Sprintf("bfbdd: Eval assignment has %d entries for %d variables",
			len(assignment), len(b.m.var2level)))
	}
	byLevel := make([]bool, len(assignment))
	for v, val := range assignment {
		byLevel[b.m.var2level[v]] = val
	}
	return b.m.k.Eval(b.ref(), byLevel)
}

// Support returns the variables on which b depends, in ascending variable
// index order.
func (b *BDD) Support() []int {
	levels := b.m.k.Support(b.ref())
	vars := make([]int, len(levels))
	for i, l := range levels {
		vars[i] = b.m.level2var[l]
	}
	sort.Ints(vars)
	return vars
}

// Stats is a snapshot of the manager's instrumentation, mirroring the
// measurements reported in the paper's evaluation.
type Stats struct {
	// Ops is the total number of Shannon expansion steps across workers.
	Ops uint64
	// CacheHits counts compute-cache hits; Terminals counts operations
	// resolved as terminal cases.
	CacheHits uint64
	Terminals uint64
	// ExpansionTime / ReductionTime are summed across workers.
	ExpansionTime time.Duration
	ReductionTime time.Duration
	// GCMarkTime / GCFixTime / GCRehashTime are the collector phases.
	GCMarkTime   time.Duration
	GCFixTime    time.Duration
	GCRehashTime time.Duration
	// Steals / StolenOps / Stalls describe load-balancing activity.
	Steals    uint64
	StolenOps uint64
	Stalls    uint64
	// ContextPushes counts evaluation-context switches.
	ContextPushes uint64
	// LockWait is the total unique-table lock acquisition wait.
	LockWait time.Duration
	// GCCount is the number of collections; PeakBytes the high-water
	// explicit memory footprint (nodes + operator nodes + caches +
	// unique-table buckets).
	GCCount   uint64
	PeakBytes uint64
	// NumNodes is the current live node count.
	NumNodes uint64
	// MemBytes is the current approximate memory footprint (the figure
	// budget enforcement compares against WithMaxBytes).
	MemBytes uint64
	// EffEvalThreshold is the evaluation threshold currently in effect;
	// lower than the configured value while degraded under memory
	// pressure.
	EffEvalThreshold int
	// Budget degradation counters: forced early collections, evaluation
	// threshold drops, compute-cache shrinks, coldest-level spills, and
	// typed budget aborts.
	BudgetForcedGCs      uint64
	BudgetThresholdDrops uint64
	BudgetCacheShrinks   uint64
	BudgetSpills         uint64
	BudgetAborts         uint64
	// Memory-tiering counters (zero without WithSpillDir). MemBytes above
	// is the resident footprint: SpilledBytes live in spill files and the
	// OS page cache, not on the heap.
	ResidentBytes     uint64
	SpilledBytes      uint64
	SpilledLevels     int
	SpillOps          uint64
	UnspillOps        uint64
	SpillTime         time.Duration
	UnspillTime       time.Duration
	SpillPrefetchHits uint64
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.checkOpen()
	t := m.k.TotalStats()
	var lock time.Duration
	for l := 0; l < m.k.Levels(); l++ {
		lock += m.k.Table(l).LockWait()
	}
	mem := m.k.Memory()
	b := m.k.BudgetStats()
	sp := m.k.SpillStats()
	return Stats{
		Ops:           t.Ops,
		CacheHits:     t.CacheHits,
		Terminals:     t.Terminals,
		ExpansionTime: t.PhaseTime(stats.PhaseExpansion),
		ReductionTime: t.PhaseTime(stats.PhaseReduction),
		GCMarkTime:    t.PhaseTime(stats.PhaseGCMark),
		GCFixTime:     t.PhaseTime(stats.PhaseGCFix),
		GCRehashTime:  t.PhaseTime(stats.PhaseGCRehash),
		Steals:        t.Steals,
		StolenOps:     t.StolenOps,
		Stalls:        t.Stalls,
		ContextPushes: t.ContextPushes,
		LockWait:      lock,
		GCCount:       mem.GCCount,
		PeakBytes:     mem.PeakBytes,
		NumNodes:      m.k.NumNodes(),

		MemBytes:             m.k.MemBytes(),
		EffEvalThreshold:     m.k.EffEvalThreshold(),
		BudgetForcedGCs:      b.ForcedGCs,
		BudgetThresholdDrops: b.ThresholdDrops,
		BudgetCacheShrinks:   b.CacheShrinks,
		BudgetSpills:         b.Spills,
		BudgetAborts:         b.Aborts,

		ResidentBytes:     m.k.Store().ResidentBytes(),
		SpilledBytes:      sp.SpilledBytes,
		SpilledLevels:     sp.SpilledLevels,
		SpillOps:          sp.SpillOps,
		UnspillOps:        sp.UnspillOps,
		SpillTime:         time.Duration(sp.SpillNS),
		UnspillTime:       time.Duration(sp.UnspillNS),
		SpillPrefetchHits: sp.PrefetchHits,
	}
}

// ResetStats zeroes the counters (memory peak and GC count are kept).
func (m *Manager) ResetStats() { m.k.ResetStats() }

// MemReport is the manager's memory-tiering breakdown: heap-resident
// bytes, spilled bytes, and where each variable's nodes live. LevelMem
// entries are keyed by order position (level); Var gives the public
// variable index currently at that position.
type MemReport struct {
	ResidentBytes uint64     `json:"resident_bytes"`
	SpilledBytes  uint64     `json:"spilled_bytes"`
	Levels        []LevelMem `json:"levels"`
}

// LevelMem describes one level's node storage.
type LevelMem struct {
	Level   int    `json:"level"`
	Var     int    `json:"var"`
	Nodes   uint64 `json:"nodes"`
	Bytes   uint64 `json:"bytes"`
	Spilled bool   `json:"spilled"`
}

// MemReport returns the tiering breakdown. Without WithSpillDir every
// level is resident and SpilledBytes is zero. Like all manager calls it
// must be serialized against in-flight operations.
func (m *Manager) MemReport() MemReport {
	m.checkOpen()
	kr := m.k.MemReport()
	r := MemReport{ResidentBytes: kr.ResidentBytes, SpilledBytes: kr.SpilledBytes}
	for _, lm := range kr.Levels {
		r.Levels = append(r.Levels, LevelMem{
			Level:   lm.Level,
			Var:     m.level2var[lm.Level],
			Nodes:   lm.Nodes,
			Bytes:   lm.Bytes,
			Spilled: lm.Spilled,
		})
	}
	return r
}

// SpillAll tiers the whole node store down to the spill directory,
// releasing the heap blocks of every level that holds nodes. A no-op
// without WithSpillDir. The manager must be quiescent (no operation in
// flight); subsequent operations transparently unspill what they touch.
func (m *Manager) SpillAll() error {
	m.checkOpen()
	return m.k.SpillAll()
}

// Unspill brings every spilled level back onto the heap and deletes its
// spill file. A no-op without WithSpillDir or with nothing spilled.
func (m *Manager) Unspill() error {
	m.checkOpen()
	return m.k.Unspill()
}

// Kernel exposes the internal kernel for the benchmark harness and
// examples living in this module. External users should ignore it.
func (m *Manager) Kernel() *core.Kernel { return m.k }

// Ref exposes the handle's current canonical node reference for the
// in-module differential oracle and harness (paired with Kernel(), e.g.
// for Kernel().CanonicalSignature). The value goes stale across garbage
// collections — re-read it rather than caching it. External users should
// ignore it.
func (b *BDD) Ref() node.Ref { return b.ref() }
