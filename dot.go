package bfbdd

import (
	"bufio"
	"fmt"
	"io"

	"bfbdd/internal/node"
)

// WriteDOT renders the given BDDs as a Graphviz DOT graph. Dashed edges
// are 0-branches, solid edges 1-branches, matching the paper's figures.
// Shared subgraphs are emitted once. names labels the roots; pass nil for
// automatic f0, f1, … labels.
//
// The output is deterministic: node identifiers are assigned in
// first-reference (depth-first preorder) order from the roots, so two
// structurally equal BDDs render byte-identically regardless of which
// engine, worker, or allocation history produced them. Snapshots and DOT
// dumps of the same function therefore diff cleanly.
func WriteDOT(w io.Writer, names []string, bdds ...*BDD) error {
	if len(bdds) == 0 {
		return fmt.Errorf("bfbdd: WriteDOT needs at least one BDD")
	}
	m := bdds[0].m
	for _, b := range bdds {
		if b.m != m {
			return fmt.Errorf("bfbdd: WriteDOT across managers")
		}
	}
	m.k.EnsureReadable() // the emitter traverses the store directly
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph bdd {")
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, `  node [shape=circle];`)
	fmt.Fprintln(bw, `  t0 [label="0", shape=box];`)
	fmt.Fprintln(bw, `  t1 [label="1", shape=box];`)

	// ids maps refs to stable sequence numbers in first-reference order;
	// the physical (level, worker, index) identity never leaks into the
	// output, where it would vary run to run under the parallel engine.
	ids := make(map[node.Ref]int)
	id := func(r node.Ref) string {
		switch {
		case r.IsZero():
			return "t0"
		case r.IsOne():
			return "t1"
		}
		n, ok := ids[r]
		if !ok {
			n = len(ids)
			ids[r] = n
		}
		return fmt.Sprintf("n%d", n)
	}
	seen := make(map[node.Ref]bool)
	var emit func(r node.Ref)
	emit = func(r node.Ref) {
		if r.IsTerminal() || seen[r] {
			return
		}
		seen[r] = true
		nd := m.k.Store().Node(r)
		fmt.Fprintf(bw, "  %s [label=\"x%d\"];\n", id(r), m.level2var[r.Level()])
		fmt.Fprintf(bw, "  %s -> %s [style=dashed];\n", id(r), id(nd.Low))
		fmt.Fprintf(bw, "  %s -> %s;\n", id(r), id(nd.High))
		emit(nd.Low)
		emit(nd.High)
	}
	for i, b := range bdds {
		label := fmt.Sprintf("f%d", i)
		if i < len(names) && names[i] != "" {
			label = names[i]
		}
		root := fmt.Sprintf("r%d", i)
		fmt.Fprintf(bw, "  %s [label=%q, shape=plaintext];\n", root, label)
		fmt.Fprintf(bw, "  %s -> %s;\n", root, id(b.ref()))
		emit(b.ref())
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
