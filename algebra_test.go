package bfbdd_test

// Property-based tests of the Boolean algebra over randomly constructed
// BDDs: because diagrams are canonical, every algebraic law is checked by
// handle equality, which makes these properties sharp (any internal
// canonicity bug fails them immediately).

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bfbdd"
)

// randBDD derives a pseudo-random function over m's variables from seed
// material supplied by testing/quick.
func randBDD(m *bfbdd.Manager, seed uint64) *bfbdd.BDD {
	rng := rand.New(rand.NewSource(int64(seed)))
	f := m.Var(rng.Intn(m.NumVars()))
	for i := 0; i < 6; i++ {
		g := m.Var(rng.Intn(m.NumVars()))
		switch rng.Intn(4) {
		case 0:
			f = f.And(g)
		case 1:
			f = f.Or(g.Not())
		case 2:
			f = f.Xor(g)
		default:
			f = f.Implies(g)
		}
	}
	return f
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 40}
}

func TestAlgebraLawsQuick(t *testing.T) {
	m := bfbdd.New(8, bfbdd.WithEngine(bfbdd.EnginePBF), bfbdd.WithEvalThreshold(64))
	laws := map[string]func(a, b, c uint64) bool{
		"and-commutative": func(a, b, _ uint64) bool {
			x, y := randBDD(m, a), randBDD(m, b)
			return x.And(y).Equal(y.And(x))
		},
		"or-associative": func(a, b, c uint64) bool {
			x, y, z := randBDD(m, a), randBDD(m, b), randBDD(m, c)
			return x.Or(y).Or(z).Equal(x.Or(y.Or(z)))
		},
		"and-distributes-over-or": func(a, b, c uint64) bool {
			x, y, z := randBDD(m, a), randBDD(m, b), randBDD(m, c)
			return x.And(y.Or(z)).Equal(x.And(y).Or(x.And(z)))
		},
		"absorption": func(a, b, _ uint64) bool {
			x, y := randBDD(m, a), randBDD(m, b)
			return x.Or(x.And(y)).Equal(x) && x.And(x.Or(y)).Equal(x)
		},
		"de-morgan": func(a, b, _ uint64) bool {
			x, y := randBDD(m, a), randBDD(m, b)
			return x.And(y).Not().Equal(x.Not().Or(y.Not()))
		},
		"xor-via-or-and": func(a, b, _ uint64) bool {
			x, y := randBDD(m, a), randBDD(m, b)
			return x.Xor(y).Equal(x.Or(y).And(x.And(y).Not()))
		},
		"implication-transitivity-is-tautology": func(a, b, c uint64) bool {
			x, y, z := randBDD(m, a), randBDD(m, b), randBDD(m, c)
			chain := x.Implies(y).And(y.Implies(z))
			return chain.Implies(x.Implies(z)).IsOne()
		},
		"shannon-expansion": func(a, _, _ uint64) bool {
			x := randBDD(m, a)
			v := m.Var(0)
			return v.And(x.Restrict(0, true)).Or(v.Not().And(x.Restrict(0, false))).Equal(x)
		},
		"ite-consensus": func(a, b, c uint64) bool {
			f, g, h := randBDD(m, a), randBDD(m, b), randBDD(m, c)
			return f.ITE(g, h).Equal(f.And(g).Or(f.Not().And(h)))
		},
		"quantifier-duality": func(a, _, _ uint64) bool {
			x := randBDD(m, a)
			return x.Exists(2, 5).Not().Equal(x.Not().Forall(2, 5))
		},
	}
	for name, law := range laws {
		t.Run(name, func(t *testing.T) {
			if err := quick.Check(law, quickCfg()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSatCountComplementQuick(t *testing.T) {
	m := bfbdd.New(8)
	total := int64(1) << 8
	f := func(a uint64) bool {
		x := randBDD(m, a)
		return x.SatCount().Int64()+x.Not().SatCount().Int64() == total
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchPublic(t *testing.T) {
	m := bfbdd.New(10,
		bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(3),
		bfbdd.WithEvalThreshold(32), bfbdd.WithGroupSize(8))
	rng := rand.New(rand.NewSource(5))
	var ops []bfbdd.BatchOp
	var want []*bfbdd.BDD
	kinds := []bfbdd.BatchOpKind{
		bfbdd.BatchAnd, bfbdd.BatchOr, bfbdd.BatchXor, bfbdd.BatchNand,
		bfbdd.BatchNor, bfbdd.BatchXnor, bfbdd.BatchDiff, bfbdd.BatchImplies,
	}
	for i := 0; i < 24; i++ {
		f := randBDD(m, uint64(rng.Int63()))
		g := randBDD(m, uint64(rng.Int63()))
		kind := kinds[i%len(kinds)]
		ops = append(ops, bfbdd.BatchOp{Kind: kind, F: f, G: g})
		var w *bfbdd.BDD
		switch kind {
		case bfbdd.BatchAnd:
			w = f.And(g)
		case bfbdd.BatchOr:
			w = f.Or(g)
		case bfbdd.BatchXor:
			w = f.Xor(g)
		case bfbdd.BatchNand:
			w = f.Nand(g)
		case bfbdd.BatchNor:
			w = f.Nor(g)
		case bfbdd.BatchXnor:
			w = f.Xnor(g)
		case bfbdd.BatchDiff:
			w = f.Diff(g)
		case bfbdd.BatchImplies:
			w = f.Implies(g)
		}
		want = append(want, w)
	}
	got := m.ApplyBatch(ops)
	if len(got) != len(want) {
		t.Fatalf("batch returned %d results for %d ops", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("batch result %d differs from individual apply", i)
		}
	}
}

func TestApplyBatchCrossManagerPanics(t *testing.T) {
	m1, m2 := bfbdd.New(2), bfbdd.New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-manager batch did not panic")
		}
	}()
	m1.ApplyBatch([]bfbdd.BatchOp{{Kind: bfbdd.BatchAnd, F: m2.Var(0), G: m2.Var(1)}})
}
