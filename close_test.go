package bfbdd

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// mustPanic runs f and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

func TestManagerCloseUnpinsHandles(t *testing.T) {
	m := New(8)
	a := m.Var(0).And(m.Var(1))
	b := m.Var(2).Or(a)
	_ = b
	if m.Kernel().NumPins() == 0 {
		t.Fatal("expected live pins before Close")
	}
	m.Close()
	if !m.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if m.Kernel().NumPins() != 0 {
		t.Fatalf("Close left %d pins registered", m.Kernel().NumPins())
	}
}

func TestManagerDoubleClosePanics(t *testing.T) {
	m := New(4)
	m.Close()
	mustPanic(t, "bfbdd: Manager closed twice", m.Close)
}

func TestManagerUseAfterClosePanics(t *testing.T) {
	m := New(4)
	x := m.Var(0)
	y := m.Var(1)
	m.Close()
	mustPanic(t, "bfbdd: use of closed Manager", func() { m.Var(0) })
	mustPanic(t, "bfbdd: use of closed Manager", func() { x.And(y) })
	mustPanic(t, "bfbdd: use of closed Manager", func() { x.Eval(make([]bool, 4)) })
	mustPanic(t, "bfbdd: use of closed Manager", func() { m.Stats() })
	mustPanic(t, "bfbdd: use of closed Manager", func() { m.GC() })
	mustPanic(t, "bfbdd: use of closed Manager", func() { m.NumNodes() })
	// Free after Close is explicitly a safe no-op (shutdown code need not
	// order handle frees before the manager close).
	x.Free()
	y.Free()
}

func TestEvalValidatesAssignmentLength(t *testing.T) {
	m := New(4)
	defer m.Close()
	f := m.Var(0).Or(m.Var(3))
	if !f.Eval([]bool{true, false, false, false}) {
		t.Fatal("Eval(x0=1) = false, want true")
	}
	mustPanic(t, "bfbdd: Eval assignment has 2 entries for 4 variables", func() {
		f.Eval([]bool{true, false})
	})
	mustPanic(t, "bfbdd: Eval assignment has 6 entries for 4 variables", func() {
		f.Eval(make([]bool, 6))
	})
}

func TestApplyBatchCtxManagerLevel(t *testing.T) {
	m := New(8, WithEngine(EnginePar), WithWorkers(2))
	defer m.Close()
	a, b := m.Var(0), m.Var(1)
	res, err := m.ApplyBatchCtx(context.Background(), []BatchOp{
		{Kind: BatchAnd, F: a, G: b},
		{Kind: BatchXor, F: a, G: b},
	})
	if err != nil {
		t.Fatalf("ApplyBatchCtx: %v", err)
	}
	if !res[0].Equal(a.And(b)) || !res[1].Equal(a.Xor(b)) {
		t.Fatal("ApplyBatchCtx results not canonical")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ApplyBatchCtx(ctx, []BatchOp{{Kind: BatchOr, F: a, G: b}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyBatchCtx on canceled ctx: err = %v", err)
	}
	if _, err := m.ApplyCtx(ctx, BatchOr, a, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyCtx on canceled ctx: err = %v", err)
	}
	r, err := m.ApplyCtx(context.Background(), BatchOr, a, b)
	if err != nil || !r.Equal(a.Or(b)) {
		t.Fatalf("ApplyCtx: r=%v err=%v", r, err)
	}
}
