package walreplay

import (
	"reflect"
	"strings"
	"testing"

	"bfbdd"
	"bfbdd/internal/node"
	"bfbdd/internal/wal"
)

// history is a short session over 4 variables exercising every
// state-bearing record kind: f = (x0 ∧ x1) ∨ ¬x2, then quantify,
// restrict, compose, an ITE, a free, and a collection.
func history() []wal.Record {
	return []wal.Record{
		wal.CreateRec{Options: []byte(`{"vars":4}`)},
		wal.VarRec{Index: 0, Handle: 1},
		wal.VarRec{Index: 1, Handle: 2},
		wal.VarRec{Index: 2, Negated: true, Handle: 3},
		wal.ApplyRec{Op: uint8(bfbdd.BatchAnd), F: 1, G: 2, Handle: 4},
		wal.ApplyRec{Op: uint8(bfbdd.BatchOr), F: 4, G: 3, Handle: 5},
		wal.BatchRec{Ops: []wal.ApplyRec{
			{Op: uint8(bfbdd.BatchXor), F: 5, G: 1, Handle: 6},
			{Op: uint8(bfbdd.BatchNand), F: 5, G: 2, Handle: 7},
		}},
		wal.ITERec{F: 5, G: 6, H: 7, Handle: 8},
		wal.NotRec{F: 8, Handle: 9},
		wal.QuantifyRec{F: 5, Vars: []int{0, 2}, Handle: 10},
		wal.QuantifyRec{Forall: true, F: 5, Vars: []int{1}, Handle: 11},
		wal.RestrictRec{F: 5, Var: 1, Value: true, Handle: 12},
		wal.ComposeRec{F: 5, G: 6, Var: 0, Handle: 13},
		wal.ConstRec{Value: true, Handle: 14},
		wal.FreeRec{Handles: []uint64{6, 7}},
		wal.GCRec{},
		wal.SetOrderRec{Levels: []int{3, 2, 1, 0}},
		wal.SnapshotRec{},
		wal.PublishRec{Name: "f-x", Handles: []uint64{5}},
	}
}

func replayAll(t *testing.T, recs []wal.Record) *State {
	t.Helper()
	st := NewState(bfbdd.New(4))
	for i, r := range recs {
		if err := st.Apply(r); err != nil {
			t.Fatalf("record %d (%s): %v", i, r.Kind(), err)
		}
	}
	return st
}

func TestReplayRebuildsState(t *testing.T) {
	st := replayAll(t, history())
	defer st.Mgr.Close()

	// Freed handles are gone, everything else is live.
	for _, h := range []uint64{6, 7} {
		if _, ok := st.Handles[h]; ok {
			t.Errorf("freed handle %d still bound", h)
		}
	}
	want := []uint64{1, 2, 3, 4, 5, 8, 9, 10, 11, 12, 13, 14}
	for _, h := range want {
		if _, ok := st.Handles[h]; !ok {
			t.Errorf("handle %d missing", h)
		}
	}
	if len(st.Handles) != len(want) {
		t.Errorf("%d handles, want %d", len(st.Handles), len(want))
	}
	if st.NextHandle != 14 {
		t.Errorf("NextHandle = %d, want 14", st.NextHandle)
	}
	if st.Closed {
		t.Error("Closed latched without a close record")
	}

	// Semantic spot checks against direct construction.
	m := st.Mgr
	x0, x1 := m.Var(0), m.Var(1)
	nx2 := m.NVar(2)
	f := x0.And(x1).Or(nx2)
	if !st.Handles[5].Equal(f) {
		t.Error("handle 5 is not (x0∧x1)∨¬x2")
	}
	if !st.Handles[9].Equal(st.Handles[8].Not()) {
		t.Error("handle 9 is not ¬handle8")
	}
	if !st.Handles[10].Equal(f.Exists(0, 2)) {
		t.Error("handle 10 is not ∃(x0,x2)f")
	}
	if !st.Handles[11].Equal(f.Forall(1)) {
		t.Error("handle 11 is not ∀(x1)f")
	}
	if !st.Handles[12].Equal(f.Restrict(1, true)) {
		t.Error("handle 12 is not f|x1=1")
	}
	if !st.Handles[14].Equal(m.One()) {
		t.Error("handle 14 is not the one constant")
	}
}

// TestReplayDeterminism replays the same history twice and requires
// structurally identical results — the property that makes "snapshot +
// tail" a faithful reconstruction.
func TestReplayDeterminism(t *testing.T) {
	a := replayAll(t, history())
	defer a.Mgr.Close()
	b := replayAll(t, history())
	defer b.Mgr.Close()
	if len(a.Handles) != len(b.Handles) {
		t.Fatalf("handle counts diverged: %d vs %d", len(a.Handles), len(b.Handles))
	}
	for h, ba := range a.Handles {
		bb, ok := b.Handles[h]
		if !ok {
			t.Fatalf("handle %d missing from second replay", h)
		}
		sa := a.Mgr.Kernel().CanonicalSignature([]node.Ref{ba.Ref()})
		sb := b.Mgr.Kernel().CanonicalSignature([]node.Ref{bb.Ref()})
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("handle %d: canonical signatures diverged", h)
		}
	}
}

func TestCloseLatches(t *testing.T) {
	st := NewState(bfbdd.New(2))
	defer st.Mgr.Close()
	if err := st.Apply(wal.CloseRec{}); err != nil {
		t.Fatal(err)
	}
	if !st.Closed {
		t.Fatal("close record did not latch Closed")
	}
}

// TestHandleOverwriteFreesOld proves last-write-wins handle reuse: a
// rolled-back op whose record survived on disk may be followed by a
// fresh op acknowledged under the same handle.
func TestHandleOverwriteFreesOld(t *testing.T) {
	st := NewState(bfbdd.New(2))
	defer st.Mgr.Close()
	if err := st.Apply(wal.VarRec{Index: 0, Handle: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(wal.VarRec{Index: 1, Handle: 1}); err != nil {
		t.Fatal(err)
	}
	if len(st.Handles) != 1 {
		t.Fatalf("%d handles after overwrite", len(st.Handles))
	}
	if !st.Handles[1].Equal(st.Mgr.Var(1)) {
		t.Fatal("overwrite did not win")
	}
}

// TestReplayRejectsInvalidHistories: records a valid server never writes
// must fail replay with a descriptive error instead of panicking or
// silently diverging.
func TestReplayRejectsInvalidHistories(t *testing.T) {
	cases := []struct {
		name string
		recs []wal.Record
		want string
	}{
		{"unknown operand", []wal.Record{
			wal.ApplyRec{Op: 0, F: 99, G: 99, Handle: 1}}, "no handle"},
		{"op out of range", []wal.Record{
			wal.VarRec{Index: 0, Handle: 1},
			wal.ApplyRec{Op: wal.NumOps, F: 1, G: 1, Handle: 2}}, "out of range"},
		{"var out of range", []wal.Record{
			wal.VarRec{Index: 7, Handle: 1}}, "out of range"},
		{"quantify var out of range", []wal.Record{
			wal.VarRec{Index: 0, Handle: 1},
			wal.QuantifyRec{F: 1, Vars: []int{9}, Handle: 2}}, "out of range"},
		{"restrict var out of range", []wal.Record{
			wal.VarRec{Index: 0, Handle: 1},
			wal.RestrictRec{F: 1, Var: -1, Handle: 2}}, "out of range"},
		{"free unknown handle", []wal.Record{
			wal.FreeRec{Handles: []uint64{5}}}, "no handle"},
		{"order wrong arity", []wal.Record{
			wal.SetOrderRec{Levels: []int{0}}}, "levels"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := NewState(bfbdd.New(2))
			defer st.Mgr.Close()
			var err error
			for _, r := range tc.recs {
				if err = st.Apply(r); err != nil {
					break
				}
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
