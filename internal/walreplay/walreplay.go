// Package walreplay applies write-ahead-log records to a live manager
// and wire-handle table. It is the single deterministic-replay engine
// shared by server startup recovery and the bfbdd-wal CLI: every record
// carries the wire handle its result was acknowledged under, so replay
// rebuilds the exact handle numbering regardless of how the original
// operations were coalesced or batched.
package walreplay

import (
	"fmt"

	"bfbdd"
	"bfbdd/internal/wal"
)

// State is the session state a replay mutates. Handles and NextHandle
// mirror the server session's wire-handle table; Closed latches when a
// close record is replayed (the caller must then discard the session
// instead of resurrecting it).
type State struct {
	Mgr        *bfbdd.Manager
	Handles    map[uint64]*bfbdd.BDD
	NextHandle uint64
	Closed     bool
}

// NewState wraps a fresh manager.
func NewState(m *bfbdd.Manager) *State {
	return &State{Mgr: m, Handles: make(map[uint64]*bfbdd.BDD)}
}

func (st *State) get(h uint64) (*bfbdd.BDD, error) {
	b, ok := st.Handles[h]
	if !ok {
		return nil, fmt.Errorf("walreplay: no handle %d", h)
	}
	return b, nil
}

// set installs b under wire handle h. An existing binding is released
// first: a sync failure after a durable append can roll an operation back
// in memory while its record survives on disk, so a later operation may
// legitimately reuse the handle — last write wins, like the live session.
func (st *State) set(h uint64, b *bfbdd.BDD) {
	if old, ok := st.Handles[h]; ok {
		old.Free()
	}
	st.Handles[h] = b
	if h > st.NextHandle {
		st.NextHandle = h
	}
}

// batchKind validates a journaled op code against the engine alphabet.
func batchKind(op uint8) (bfbdd.BatchOpKind, error) {
	if op >= wal.NumOps {
		return 0, fmt.Errorf("walreplay: op code %d out of range", op)
	}
	return bfbdd.BatchOpKind(op), nil
}

// Apply replays one record. Records that carry no session state (create,
// snapshot, publish) are skipped; a close record latches Closed. Errors
// mean the log does not describe a valid history for this state — the
// caller should refuse the recovery rather than serve a diverged session.
func (st *State) Apply(rec wal.Record) error {
	switch r := rec.(type) {
	case wal.CreateRec:
		// Session construction is the caller's job (it needs the full
		// server option surface); by the time records replay the manager
		// already exists.
		return nil
	case wal.VarRec:
		if r.Index < 0 || r.Index >= st.Mgr.NumVars() {
			return fmt.Errorf("walreplay: variable %d out of range [0,%d)", r.Index, st.Mgr.NumVars())
		}
		if r.Negated {
			st.set(r.Handle, st.Mgr.NVar(r.Index))
		} else {
			st.set(r.Handle, st.Mgr.Var(r.Index))
		}
		return nil
	case wal.ConstRec:
		if r.Value {
			st.set(r.Handle, st.Mgr.One())
		} else {
			st.set(r.Handle, st.Mgr.Zero())
		}
		return nil
	case wal.ApplyRec:
		return st.applyOps([]wal.ApplyRec{r})
	case wal.BatchRec:
		return st.applyOps(r.Ops)
	case wal.ITERec:
		f, err := st.get(r.F)
		if err != nil {
			return err
		}
		g, err := st.get(r.G)
		if err != nil {
			return err
		}
		h, err := st.get(r.H)
		if err != nil {
			return err
		}
		st.set(r.Handle, f.ITE(g, h))
		return nil
	case wal.NotRec:
		f, err := st.get(r.F)
		if err != nil {
			return err
		}
		st.set(r.Handle, f.Not())
		return nil
	case wal.QuantifyRec:
		f, err := st.get(r.F)
		if err != nil {
			return err
		}
		for _, v := range r.Vars {
			if v < 0 || v >= st.Mgr.NumVars() {
				return fmt.Errorf("walreplay: quantified variable %d out of range", v)
			}
		}
		if r.Forall {
			st.set(r.Handle, f.Forall(r.Vars...))
		} else {
			st.set(r.Handle, f.Exists(r.Vars...))
		}
		return nil
	case wal.RestrictRec:
		f, err := st.get(r.F)
		if err != nil {
			return err
		}
		if r.Var < 0 || r.Var >= st.Mgr.NumVars() {
			return fmt.Errorf("walreplay: restricted variable %d out of range", r.Var)
		}
		st.set(r.Handle, f.Restrict(r.Var, r.Value))
		return nil
	case wal.ComposeRec:
		f, err := st.get(r.F)
		if err != nil {
			return err
		}
		g, err := st.get(r.G)
		if err != nil {
			return err
		}
		if r.Var < 0 || r.Var >= st.Mgr.NumVars() {
			return fmt.Errorf("walreplay: composed variable %d out of range", r.Var)
		}
		st.set(r.Handle, f.Compose(r.Var, g))
		return nil
	case wal.FreeRec:
		for _, h := range r.Handles {
			b, err := st.get(h)
			if err != nil {
				return err
			}
			delete(st.Handles, h)
			b.Free()
		}
		return nil
	case wal.GCRec:
		st.Mgr.GC()
		return nil
	case wal.SetOrderRec:
		if len(r.Levels) != st.Mgr.NumVars() {
			return fmt.Errorf("walreplay: order has %d levels for %d vars", len(r.Levels), st.Mgr.NumVars())
		}
		st.Mgr.SetOrder(r.Levels)
		return nil
	case wal.SnapshotRec, wal.PublishRec:
		return nil // audit records; no session state
	case wal.CloseRec:
		st.Closed = true
		return nil
	}
	return fmt.Errorf("walreplay: unhandled record kind %v", rec.Kind())
}

// applyOps replays a group of binary applies as one engine batch, the
// same path the live server uses.
func (st *State) applyOps(recs []wal.ApplyRec) error {
	ops := make([]bfbdd.BatchOp, len(recs))
	for i, r := range recs {
		kind, err := batchKind(r.Op)
		if err != nil {
			return err
		}
		f, err := st.get(r.F)
		if err != nil {
			return err
		}
		g, err := st.get(r.G)
		if err != nil {
			return err
		}
		ops[i] = bfbdd.BatchOp{Kind: kind, F: f, G: g}
	}
	results := st.Mgr.ApplyBatch(ops)
	for i, b := range results {
		st.set(recs[i].Handle, b)
	}
	return nil
}
