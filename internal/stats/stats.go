// Package stats collects the measurements the paper reports: per-phase
// elapsed times (expansion, reduction, and the three GC sub-phases),
// Shannon-expansion operation counts, work-stealing activity, and memory
// high-water marks. Each worker owns a Worker value and updates it without
// synchronization; aggregation happens after the workers quiesce.
package stats

import "time"

// Phase identifies one of the instrumented execution phases.
type Phase int

// The instrumented phases. Expansion and Reduction correspond to the
// paper's Figure 13; the GC sub-phases to Figure 18.
const (
	PhaseExpansion Phase = iota
	PhaseReduction
	PhaseGCMark
	PhaseGCFix
	PhaseGCRehash
	NumPhases
)

var phaseNames = [NumPhases]string{"expansion", "reduction", "gc-mark", "gc-fix", "gc-rehash"}

// String returns the phase name.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Worker accumulates one worker's counters. Not safe for concurrent use;
// each worker goroutine owns exactly one Worker.
type Worker struct {
	PhaseNs [NumPhases]int64

	// Ops counts Shannon expansion steps (the paper's Figure 11 metric).
	Ops uint64
	// ReducedOps counts operator nodes this worker reduced (resolved and,
	// when not eliminated by the reduction rule, inserted into a unique
	// table). The analytic multiprocessor model uses the per-worker
	// distribution of this counter.
	ReducedOps uint64
	// Terminals counts operations resolved as terminal cases.
	Terminals uint64
	// CacheHits counts compute-cache hits during preprocessing.
	CacheHits uint64

	// Steals counts operation groups successfully stolen; StealFailures
	// counts scan rounds that found nothing stealable.
	Steals        uint64
	StealFailures uint64
	// StolenOps counts individual operations claimed from stolen groups.
	StolenOps uint64
	// Stalls counts reduction passes that had to defer at least one
	// operation because a thief had not yet returned its result.
	Stalls uint64
	// ForcedOps counts operator nodes whose results a stalled reducer
	// computed itself (depth-first) after repeated steal-less rounds,
	// breaking potential cross-worker wait cycles.
	ForcedOps uint64
	// StallNs accumulates time spent waiting (including helping) for
	// thief results during reduction.
	StallNs int64

	// ContextPushes / ContextPops count evaluation-context stack traffic.
	ContextPushes uint64
	ContextPops   uint64
}

// AddPhase accrues elapsed time to a phase.
func (w *Worker) AddPhase(p Phase, d time.Duration) { w.PhaseNs[p] += int64(d) }

// PhaseTime returns the accumulated time in a phase.
func (w *Worker) PhaseTime(p Phase) time.Duration { return time.Duration(w.PhaseNs[p]) }

// Reset zeroes all counters.
func (w *Worker) Reset() { *w = Worker{} }

// Add accumulates other into w (for cross-worker totals).
func (w *Worker) Add(other *Worker) {
	for i := range w.PhaseNs {
		w.PhaseNs[i] += other.PhaseNs[i]
	}
	w.Ops += other.Ops
	w.ReducedOps += other.ReducedOps
	w.Terminals += other.Terminals
	w.CacheHits += other.CacheHits
	w.Steals += other.Steals
	w.StealFailures += other.StealFailures
	w.StolenOps += other.StolenOps
	w.Stalls += other.Stalls
	w.ForcedOps += other.ForcedOps
	w.StallNs += other.StallNs
	w.ContextPushes += other.ContextPushes
	w.ContextPops += other.ContextPops
}

// Memory tracks byte-level memory accounting with a high-water mark,
// reproducing the paper's Figure 9/10 memory-usage measurements.
type Memory struct {
	// Current components, updated at sampling points.
	NodeBytes   uint64
	OpBytes     uint64
	CacheBytes  uint64
	TableBytes  uint64
	PeakBytes   uint64
	GCCount     uint64
	GCPauseNs   int64
	LastLiveNds uint64
}

// Total returns the current total footprint.
func (m *Memory) Total() uint64 {
	return m.NodeBytes + m.OpBytes + m.CacheBytes + m.TableBytes
}

// Sample records the current component sizes and updates the peak.
func (m *Memory) Sample(nodeB, opB, cacheB, tableB uint64) {
	m.NodeBytes, m.OpBytes, m.CacheBytes, m.TableBytes = nodeB, opB, cacheB, tableB
	if t := m.Total(); t > m.PeakBytes {
		m.PeakBytes = t
	}
}
