package stats

import (
	"testing"
	"time"
)

func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseExpansion: "expansion",
		PhaseReduction: "reduction",
		PhaseGCMark:    "gc-mark",
		PhaseGCFix:     "gc-fix",
		PhaseGCRehash:  "gc-rehash",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q want %q", p, p.String(), name)
		}
	}
	if Phase(99).String() != "unknown" {
		t.Error("out-of-range phase should be unknown")
	}
}

func TestWorkerPhaseAccumulation(t *testing.T) {
	var w Worker
	w.AddPhase(PhaseExpansion, time.Second)
	w.AddPhase(PhaseExpansion, 2*time.Second)
	w.AddPhase(PhaseReduction, time.Millisecond)
	if w.PhaseTime(PhaseExpansion) != 3*time.Second {
		t.Fatalf("expansion = %v", w.PhaseTime(PhaseExpansion))
	}
	if w.PhaseTime(PhaseReduction) != time.Millisecond {
		t.Fatalf("reduction = %v", w.PhaseTime(PhaseReduction))
	}
	if w.PhaseTime(PhaseGCMark) != 0 {
		t.Fatal("untouched phase nonzero")
	}
}

func TestWorkerAddAndReset(t *testing.T) {
	a := Worker{Ops: 10, ReducedOps: 5, CacheHits: 3, Steals: 1, StolenOps: 7,
		Stalls: 2, ForcedOps: 3, ContextPushes: 4, ContextPops: 4, Terminals: 9,
		StealFailures: 6, StallNs: 100}
	a.AddPhase(PhaseGCFix, time.Second)
	b := Worker{Ops: 1, ReducedOps: 1, CacheHits: 1, Steals: 1, StolenOps: 1,
		Stalls: 1, ForcedOps: 1, ContextPushes: 1, ContextPops: 1, Terminals: 1,
		StealFailures: 1, StallNs: 1}
	b.Add(&a)
	if b.Ops != 11 || b.ReducedOps != 6 || b.CacheHits != 4 || b.Steals != 2 ||
		b.StolenOps != 8 || b.Stalls != 3 || b.ForcedOps != 4 ||
		b.ContextPushes != 5 || b.ContextPops != 5 || b.Terminals != 10 ||
		b.StealFailures != 7 || b.StallNs != 101 {
		t.Fatalf("Add result wrong: %+v", b)
	}
	if b.PhaseTime(PhaseGCFix) != time.Second {
		t.Fatal("phase not added")
	}
	b.Reset()
	if b != (Worker{}) {
		t.Fatalf("Reset incomplete: %+v", b)
	}
}

func TestMemorySample(t *testing.T) {
	var m Memory
	m.Sample(100, 50, 25, 25)
	if m.Total() != 200 {
		t.Fatalf("Total = %d", m.Total())
	}
	if m.PeakBytes != 200 {
		t.Fatalf("Peak = %d", m.PeakBytes)
	}
	m.Sample(10, 10, 10, 10)
	if m.Total() != 40 {
		t.Fatalf("Total after shrink = %d", m.Total())
	}
	if m.PeakBytes != 200 {
		t.Fatal("peak must be monotone")
	}
	m.Sample(300, 0, 0, 0)
	if m.PeakBytes != 300 {
		t.Fatalf("peak not raised: %d", m.PeakBytes)
	}
}
