//go:build faultinject

package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestCheckDisarmedIsClean(t *testing.T) {
	Reset()
	defer Reset()
	for i := 0; i < 5; i++ {
		if err := Check(ArenaAlloc); err != nil {
			t.Fatalf("disarmed point fired: %v", err)
		}
	}
	if got := Calls(ArenaAlloc); got != 5 {
		t.Fatalf("Calls = %d, want 5", got)
	}
	if got := Fired(ArenaAlloc); got != 0 {
		t.Fatalf("Fired = %d, want 0", got)
	}
}

func TestArmNilPredicateFiresEveryCall(t *testing.T) {
	Reset()
	defer Reset()
	Arm(UniqueAdd, nil)
	for i := 1; i <= 3; i++ {
		err := Check(UniqueAdd)
		if err == nil {
			t.Fatalf("armed point did not fire on call %d", i)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
		var fe *Error
		if !errors.As(err, &fe) {
			t.Fatalf("err = %T, want *Error", err)
		}
		if fe.Point != UniqueAdd || fe.Call != uint64(i) {
			t.Fatalf("fired %v call %d, want %v call %d", fe.Point, fe.Call, UniqueAdd, i)
		}
	}
	Disarm(UniqueAdd)
	if err := Check(UniqueAdd); err != nil {
		t.Fatalf("disarmed point still fires: %v", err)
	}
	// Disarm keeps the call counter; Reset zeroes it.
	if got := Calls(UniqueAdd); got != 4 {
		t.Fatalf("Calls = %d, want 4 after Disarm", got)
	}
	Reset()
	if got := Calls(UniqueAdd); got != 0 {
		t.Fatalf("Calls = %d, want 0 after Reset", got)
	}
}

func TestFailNth(t *testing.T) {
	Reset()
	defer Reset()
	Arm(CheckpointWrite, FailNth(2, 4))
	var fired []int
	for i := 1; i <= 5; i++ {
		if Check(CheckpointWrite) != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("FailNth(2,4) fired on %v", fired)
	}
}

func TestFailFirstAndFailAfter(t *testing.T) {
	Reset()
	defer Reset()
	Arm(CheckpointSync, FailFirst(2))
	for i := 1; i <= 4; i++ {
		got := Check(CheckpointSync) != nil
		if want := i <= 2; got != want {
			t.Fatalf("FailFirst(2): call %d fired=%v, want %v", i, got, want)
		}
	}
	Reset()
	Arm(CheckpointSync, FailAfter(2))
	for i := 1; i <= 4; i++ {
		got := Check(CheckpointSync) != nil
		if want := i > 2; got != want {
			t.Fatalf("FailAfter(2): call %d fired=%v, want %v", i, got, want)
		}
	}
}

func TestFailRateDeterministic(t *testing.T) {
	// The same (seed, call) stream must decide identically across runs,
	// and the hit rate must be in the right ballpark.
	run := func() []bool {
		p := FailRate(1234, 1, 4)
		out := make([]bool, 1000)
		for i := range out {
			out[i] = p(uint64(i + 1))
		}
		return out
	}
	a, b := run(), run()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("FailRate not deterministic at call %d", i+1)
		}
		if a[i] {
			hits++
		}
	}
	if hits < 150 || hits > 350 {
		t.Fatalf("FailRate(1/4) hit %d of 1000 calls, want roughly 250", hits)
	}
}

func TestStallDelaysWithoutFailing(t *testing.T) {
	Reset()
	defer Reset()
	ArmStall(GCStall, 10*time.Millisecond, FailNth(2))
	t0 := time.Now()
	Stall(GCStall) // call 1: predicate rejects, no delay
	fast := time.Since(t0)
	t0 = time.Now()
	Stall(GCStall) // call 2: delays
	slow := time.Since(t0)
	if slow < 10*time.Millisecond {
		t.Fatalf("armed stall returned in %v, want >= 10ms", slow)
	}
	if fast > 5*time.Millisecond {
		t.Fatalf("unselected stall took %v, want instant", fast)
	}
	if got := Fired(GCStall); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}
