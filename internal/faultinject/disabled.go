//go:build !faultinject

package faultinject

// Enabled reports whether fault injection is compiled in. It is a
// constant so `if faultinject.Enabled { ... }` guards cost nothing in
// production builds.
const Enabled = false

// Check never fires in production builds.
func Check(Point) error { return nil }

// Stall never delays in production builds.
func Stall(Point) {}
