//go:build faultinject

package faultinject

import (
	"sync"
	"time"
)

// Enabled reports whether fault injection is compiled in.
const Enabled = true

// Predicate decides, given the 1-based call count of a point, whether
// the armed fault fires on this call. A nil predicate fires on every
// call. Predicates must be deterministic for reproducible tests.
type Predicate func(call uint64) bool

type site struct {
	armed bool
	pred  Predicate
	delay time.Duration // for Stall points
	calls uint64
	fired uint64
}

var (
	mu    sync.Mutex
	sites [NumPoints]site
)

// Arm makes the error point p fail (Check returns a *Error) on every
// call for which pred returns true; nil means every call. Arming
// replaces any previous configuration but keeps the call counter.
func Arm(p Point, pred Predicate) {
	mu.Lock()
	defer mu.Unlock()
	sites[p].armed = true
	sites[p].pred = pred
	sites[p].delay = 0
}

// ArmStall makes the stall point p sleep for d on every call for which
// pred returns true; nil means every call.
func ArmStall(p Point, d time.Duration, pred Predicate) {
	mu.Lock()
	defer mu.Unlock()
	sites[p].armed = true
	sites[p].pred = pred
	sites[p].delay = d
}

// Disarm deactivates point p, keeping its call counter.
func Disarm(p Point) {
	mu.Lock()
	defer mu.Unlock()
	sites[p].armed = false
	sites[p].pred = nil
	sites[p].delay = 0
}

// Reset disarms every point and zeroes all counters. Tests should call
// it (deferred) before arming anything, since the registry is global.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = [NumPoints]site{}
}

// Calls returns how many times point p has been reached.
func Calls(p Point) uint64 {
	mu.Lock()
	defer mu.Unlock()
	return sites[p].calls
}

// Fired returns how many times point p has injected its fault.
func Fired(p Point) uint64 {
	mu.Lock()
	defer mu.Unlock()
	return sites[p].fired
}

// Check counts a visit to error point p and returns a *Error if the
// point is armed and its predicate selects this call.
func Check(p Point) error {
	mu.Lock()
	defer mu.Unlock()
	s := &sites[p]
	s.calls++
	if !s.armed || (s.pred != nil && !s.pred(s.calls)) {
		return nil
	}
	s.fired++
	return &Error{Point: p, Call: s.calls}
}

// Stall counts a visit to stall point p and sleeps for the armed delay
// if the predicate selects this call. Stall points never fail.
func Stall(p Point) {
	mu.Lock()
	s := &sites[p]
	s.calls++
	var d time.Duration
	if s.armed && (s.pred == nil || s.pred(s.calls)) {
		d = s.delay
		s.fired++
	}
	mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// FailNth fires exactly on the listed 1-based call numbers.
func FailNth(ns ...uint64) Predicate {
	set := make(map[uint64]bool, len(ns))
	for _, n := range ns {
		set[n] = true
	}
	return func(call uint64) bool { return set[call] }
}

// FailFirst fires on the first n calls and never again.
func FailFirst(n uint64) Predicate {
	return func(call uint64) bool { return call <= n }
}

// FailAfter fires on every call strictly after the first n.
func FailAfter(n uint64) Predicate {
	return func(call uint64) bool { return call > n }
}

// FailRate fires pseudo-randomly on roughly num-in-den calls, using a
// deterministic splitmix64 stream keyed by seed and the call number, so
// a given (seed, call) pair always decides the same way.
func FailRate(seed, num, den uint64) Predicate {
	return func(call uint64) bool {
		return splitmix64(seed+call)%den < num
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
