// Package faultinject provides deterministic, seedable fault points for
// robustness testing. A fault point is a named site in the engine or the
// server where a test can arm an injected failure (a typed error) or a
// stall (a delay). In normal builds the package compiles to no-ops —
// Enabled is a constant false, Check and Stall are empty leaf functions,
// and the call sites are guarded by `if faultinject.Enabled`, so the
// entire mechanism is removed by dead-code elimination. Building with
// `-tags=faultinject` swaps in the live implementation (see enabled.go).
//
// The fault-point catalog, with the layer each point lives in:
//
//	ArenaAlloc        node:   node-arena allocation (unique.FindOrAdd path)
//	OpAlloc           core:   operator-node arena allocation (preprocess)
//	UniqueAdd         unique: unique-table insert (FindOrAdd entry)
//	KernelInvariant   core:   MkNode invariant wall (panics *InternalError)
//	WorkerStall       core:   per-poll worker delay (evaluation loop)
//	GCStall           core:   delay inside the mark phase of a collection
//	CheckpointCreate  server: temp-file creation for a checkpoint
//	CheckpointWrite   server: buffered snapshot write/flush
//	CheckpointSync    server: fsync of the staged snapshot
//	CheckpointRename  server: rename-into-place commit step
//	WALAppend         wal:    record append (before the frame write)
//	WALSync           wal:    fsync of the active WAL segment
//	WALRotate         wal:    opening a fresh segment at a checkpoint
//	WALTruncate       wal:    deleting checkpoint-covered segments
//	ReplShip          server: replication WAL shipping (fires truncate the
//	                          batch body mid-frame, simulating a connection
//	                          severed while frames were in flight)
//	SpillWrite        spill:  level spill-file write (tier-down path); a
//	                          fired point must leave the Manager fully
//	                          resident and consistent
//
// Error-injecting points (everything except the stalls) return a typed
// *Error wrapping ErrInjected; engine call sites panic it into the
// existing buildAborted unwinding machinery, server call sites return it
// as a plain I/O error. Stall points only ever delay — they never fail —
// because they sit inside phases (GC barriers) where an injected panic
// would deadlock real goroutines rather than exercise error paths.
package faultinject

import (
	"errors"
	"fmt"
)

// Point identifies one fault-injection site.
type Point uint8

const (
	ArenaAlloc Point = iota
	OpAlloc
	UniqueAdd
	KernelInvariant
	WorkerStall
	GCStall
	CheckpointCreate
	CheckpointWrite
	CheckpointSync
	CheckpointRename
	WALAppend
	WALSync
	WALRotate
	WALTruncate
	ReplShip
	SpillWrite
	NumPoints
)

var pointNames = [NumPoints]string{
	"arena-alloc",
	"op-alloc",
	"unique-add",
	"kernel-invariant",
	"worker-stall",
	"gc-stall",
	"checkpoint-create",
	"checkpoint-write",
	"checkpoint-sync",
	"checkpoint-rename",
	"wal-append",
	"wal-sync",
	"wal-rotate",
	"wal-truncate",
	"repl-ship",
	"spill-write",
}

func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("faultinject.Point(%d)", uint8(p))
}

// ErrInjected is the sentinel every injected fault wraps; classify with
// errors.Is(err, faultinject.ErrInjected). Injected faults are synthetic
// resource-exhaustion events: recoverable, and never grounds for marking
// a session poisoned.
var ErrInjected = errors.New("injected fault")

// Error is the typed error produced when an armed fault point fires.
type Error struct {
	Point Point
	Call  uint64 // 1-based call count at which the point fired
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s failed (call %d): %v", e.Point, e.Call, ErrInjected)
}

func (e *Error) Unwrap() error { return ErrInjected }
