package harness

import (
	"strings"
	"testing"

	"bfbdd/internal/stats"
)

// syntheticResult fabricates a Result with a controlled work profile.
func syntheticResult(workers int, ops, red uint64, serPerVar []uint64) *Result {
	r := &Result{Workers: workers}
	r.AllWorkers.Ops = ops
	r.AllWorkers.ReducedOps = red
	r.SerializedPerVar = serPerVar
	r.InsertsPerVar = make([]uint64, len(serPerVar))
	for i, n := range serPerVar {
		r.InsertsPerVar[i] = n / 2
	}
	return r
}

func calibrated() *Model {
	seq := syntheticResult(0, 1_000_000, 800_000, []uint64{100_000, 200_000, 100_000})
	seq.AllWorkers.PhaseNs[stats.PhaseExpansion] = int64(1e9) // 1s expansion
	seq.AllWorkers.PhaseNs[stats.PhaseReduction] = int64(8e8) // 0.8s reduction
	seq.AllWorkers.PhaseNs[stats.PhaseGCMark] = int64(8e7)
	seq.AllWorkers.PhaseNs[stats.PhaseGCFix] = int64(4e7)
	seq.AllWorkers.PhaseNs[stats.PhaseGCRehash] = int64(8e7)
	return NewModel(seq)
}

func TestModelSequentialIdentity(t *testing.T) {
	seq := syntheticResult(0, 1_000_000, 800_000, []uint64{100_000, 200_000, 100_000})
	seq.AllWorkers.PhaseNs[stats.PhaseExpansion] = int64(1e9)
	seq.AllWorkers.PhaseNs[stats.PhaseReduction] = int64(8e8)
	m := NewModel(seq)
	p := m.Predict(seq)
	if p.Expansion < 0.99 || p.Expansion > 1.01 {
		t.Fatalf("sequential expansion modeled as %.3fs want ~1s", p.Expansion)
	}
	if p.Reduction < 0.79 || p.Reduction > 0.81 {
		t.Fatalf("sequential reduction modeled as %.3fs want ~0.8s", p.Reduction)
	}
}

func TestModelExpansionScalesLinearly(t *testing.T) {
	m := calibrated()
	// No per-variable bottleneck: reduction work spread thinly.
	flat := []uint64{50_000, 50_000, 50_000, 50_000}
	t1 := m.Predict(syntheticResult(1, 1_000_000, 800_000, flat))
	t8 := m.Predict(syntheticResult(8, 1_000_000, 800_000, flat))
	if ratio := t1.Expansion / t8.Expansion; ratio < 7.9 || ratio > 8.1 {
		t.Fatalf("expansion speedup = %.2f want ~8", ratio)
	}
}

func TestModelReductionSaturates(t *testing.T) {
	m := calibrated()
	// One variable holds 40% of the serialized traffic: reduction speedup
	// must cap near 1/0.4 = 2.5 regardless of processor count.
	clustered := []uint64{320_000, 100_000, 50_000}
	t1 := m.Predict(syntheticResult(1, 1_000_000, 800_000, clustered))
	t8 := m.Predict(syntheticResult(8, 1_000_000, 800_000, clustered))
	t16 := m.Predict(syntheticResult(16, 1_000_000, 800_000, clustered))
	s8 := t1.Reduction / t8.Reduction
	if s8 < 2.4 || s8 > 2.6 {
		t.Fatalf("clustered reduction speedup at 8 procs = %.2f want ~2.5", s8)
	}
	s16 := t1.Reduction / t16.Reduction
	if s16 > s8*1.01 {
		t.Fatalf("reduction speedup should saturate: s8=%.2f s16=%.2f", s8, s16)
	}
	// Expansion keeps scaling even when reduction saturates.
	if e := t1.Expansion / t16.Expansion; e < 15 {
		t.Fatalf("expansion speedup at 16 = %.2f want ~16", e)
	}
}

func TestModelOpInflationSlowsExpansion(t *testing.T) {
	m := calibrated()
	flat := []uint64{50_000, 50_000}
	base := m.Predict(syntheticResult(4, 1_000_000, 800_000, flat))
	// 20% more operations (unshared caches) at the same processor count.
	inflated := m.Predict(syntheticResult(4, 1_200_000, 800_000, flat))
	if inflated.Expansion <= base.Expansion {
		t.Fatal("op inflation must increase modeled expansion time")
	}
}

func TestLockRatio(t *testing.T) {
	m := calibrated()
	flat := []uint64{50_000, 50_000}
	if r := m.LockRatio(syntheticResult(1, 1e6, 800_000, flat)); r != 0 {
		t.Fatalf("1-proc lock ratio = %f want 0", r)
	}
	// maxVar = 320k; at 8 procs balanced share = 100k → ratio = 220/320.
	clustered := []uint64{320_000, 100_000}
	got := m.LockRatio(syntheticResult(8, 1e6, 800_000, clustered))
	want := (320_000.0 - 100_000.0) / 320_000.0
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("lock ratio = %.3f want %.3f", got, want)
	}
}

func TestModeledSpeedupsEndToEnd(t *testing.T) {
	// Real runs: sequential and 4-worker on a mid-size multiplier.
	byProc, err := Sweep("mult-6", []int{0, 1, 4}, Config{EvalThreshold: 256, GroupSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	sp := ModeledSpeedups(byProc)
	if sp[0] < 0.99 || sp[0] > 1.01 {
		t.Fatalf("seq modeled speedup = %.3f want 1", sp[0])
	}
	if sp[4] < 1.5 {
		t.Fatalf("4-proc modeled speedup = %.2f want > 1.5", sp[4])
	}
	if sp[4] > 4.2 {
		t.Fatalf("4-proc modeled speedup = %.2f exceeds processor count", sp[4])
	}
}

func TestModeledFigureFormatting(t *testing.T) {
	byProc, err := Sweep("mult-5", []int{0, 1, 2}, Config{EvalThreshold: 128, GroupSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	rs := ResultSet{"mult-5": byProc}
	var sb strings.Builder
	Fig8Modeled(&sb, rs)
	Fig13Modeled(&sb, "mult-5", byProc)
	Fig14Modeled(&sb, "mult-5", byProc)
	Fig17Modeled(&sb, "mult-5", byProc)
	Fig19Modeled(&sb, "mult-5", byProc)
	out := sb.String()
	for _, frag := range []string{"modeled", "ideal", "# Procs", "ratio"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("modeled figures missing %q:\n%s", frag, out)
		}
	}
}

func TestHostParallel(t *testing.T) {
	if HostParallel(1) || !HostParallel(2) {
		t.Fatal("HostParallel misclassifies")
	}
}
