package harness

import (
	"fmt"
	"io"
	"time"

	"bfbdd/internal/stats"
)

// This file implements the analytic multiprocessor model used when the
// host cannot provide real parallel hardware (the paper's experiments ran
// on a 12-processor SGI Power Challenge; see DESIGN.md §2, substitution
// 1). The parallel engine still runs for real — goroutines, per-variable
// locks, work stealing and all — so every *structural* quantity is
// genuinely measured: how many Shannon expansions each worker performed,
// how many operator nodes each worker reduced, and how many unique-table
// insertions landed on each variable. On a single-core host those
// measurements are valid but wall-clock speedup is physically impossible,
// so the model converts the measured work distributions into the elapsed
// times an ideal P-processor machine would see:
//
//   - Expansion is lock-free (per-worker caches and operator arenas), so
//     its modeled time is the *maximum* per-worker expansion work — the
//     paper's near-linear phase.
//   - Reduction serializes unique-table insertions per variable, so its
//     modeled time is bounded below by both the maximum per-worker
//     reduction work and the maximum per-variable insertion count — the
//     clustering of nodes on few variables (Figure 15) is exactly what
//     makes the second bound dominate at higher processor counts,
//     reproducing the paper's reduction bottleneck (Figures 16/17).
//   - GC mark and fix distribute with the creators of the nodes (modeled
//     by the per-worker reduction shares); rehash serializes per variable
//     like reduction.
//
// Unit costs (seconds per operation) are calibrated from the measured
// sequential run, so modeled sequential time ≈ measured sequential time.
type Model struct {
	// Calibrated unit costs from the sequential run.
	expCostPerOp float64
	redCostPerOp float64
	gcMarkCost   float64 // per reduced op (proxy for nodes owned)
	gcFixCost    float64
	gcRehashCost float64
}

// NewModel calibrates unit costs from the sequential result.
func NewModel(seq *Result) *Model {
	m := &Model{}
	w := seq.AllWorkers
	if w.Ops > 0 {
		m.expCostPerOp = w.PhaseTime(stats.PhaseExpansion).Seconds() / float64(w.Ops)
	}
	if w.ReducedOps > 0 {
		r := float64(w.ReducedOps)
		m.redCostPerOp = w.PhaseTime(stats.PhaseReduction).Seconds() / r
		m.gcMarkCost = w.PhaseTime(stats.PhaseGCMark).Seconds() / r
		m.gcFixCost = w.PhaseTime(stats.PhaseGCFix).Seconds() / r
		m.gcRehashCost = w.PhaseTime(stats.PhaseGCRehash).Seconds() / r
	}
	return m
}

// PhaseTimes is the modeled per-phase elapsed time on an ideal
// P-processor machine.
type PhaseTimes struct {
	Expansion float64
	Reduction float64
	GCMark    float64
	GCFix     float64
	GCRehash  float64
}

// Total returns the summed modeled elapsed time.
func (p PhaseTimes) Total() float64 {
	return p.Expansion + p.Reduction + p.GCMark + p.GCFix + p.GCRehash
}

// GC returns the summed modeled collector time.
func (p PhaseTimes) GC() float64 { return p.GCMark + p.GCFix + p.GCRehash }

// Predict computes modeled phase times for a run. Two quantities are
// taken from the run's real measurements: the total operation counts
// (which grow with P because compute caches are private — the paper's
// Figure 11 effect) and the per-variable insertion counts (whose
// clustering is the paper's reduction bottleneck). Work distribution
// across workers is assumed balanced, which is what dynamic stealing is
// for and what the paper observed for the expansion phase; on a 1-core
// host the raw per-worker split cannot be used because the Go scheduler
// starves the thieves.
func (m *Model) Predict(r *Result) PhaseTimes {
	procs := r.Workers
	if procs == 0 {
		procs = 1
	}
	P := float64(procs)
	totalOps := float64(r.AllWorkers.Ops)
	totalRed := float64(r.AllWorkers.ReducedOps)
	var maxVarSer, maxVarIns, totalIns float64
	for l, n := range r.SerializedPerVar {
		maxVarSer = max(maxVarSer, float64(n))
		maxVarIns = max(maxVarIns, float64(r.InsertsPerVar[l]))
		totalIns += float64(r.InsertsPerVar[l])
	}
	// Reduction's critical path: the balanced per-worker share or the
	// busiest variable's lock-serialized unique-table traffic, whichever
	// is longer.
	redCritical := max(totalRed/P, maxVarSer)
	// Rehash reinserts live nodes; its per-variable serialization follows
	// the insertion distribution. Scale to the reduction-op unit via the
	// insert share of reduced ops.
	rehashCritical := max(totalIns/P, maxVarIns)
	return PhaseTimes{
		Expansion: m.expCostPerOp * totalOps / P,
		Reduction: m.redCostPerOp * redCritical,
		GCMark:    m.gcMarkCost * totalRed / P,
		GCFix:     m.gcFixCost * totalRed / P,
		GCRehash:  m.gcRehashCost * totalRed * (rehashCritical / max(totalIns, 1)),
	}
}

// LockRatio returns the modeled fraction of the reduction phase spent
// waiting on per-variable unique-table locks: the serialization excess
// over the balanced share (the paper's Figure 17 metric).
func (m *Model) LockRatio(r *Result) float64 {
	procs := r.Workers
	if procs == 0 {
		procs = 1
	}
	P := float64(procs)
	totalRed := float64(r.AllWorkers.ReducedOps)
	var maxVar float64
	for _, n := range r.SerializedPerVar {
		maxVar = max(maxVar, float64(n))
	}
	crit := max(totalRed/P, maxVar)
	if crit == 0 {
		return 0
	}
	return (crit - totalRed/P) / crit
}

// Fig17Modeled prints the modeled lock-wait fraction of the reduction
// phase per processor count.
func Fig17Modeled(w io.Writer, circuit string, byProc map[int]*Result) {
	seq := byProc[0]
	if seq == nil {
		return
	}
	m := NewModel(seq)
	header(w, fmt.Sprintf("Figure 17 (modeled): Lock wait / reduction time, %s", circuit))
	fmt.Fprintf(w, "%-8s%10s\n", "# Procs", "ratio")
	for _, p := range procsOf(byProc) {
		if p == 0 {
			continue
		}
		fmt.Fprintf(w, "%-8d%10.3f\n", p, m.LockRatio(byProc[p]))
	}
}

// ModeledSpeedups returns, for every processor count in byProc, the
// modeled overall speedup over the sequential run.
func ModeledSpeedups(byProc map[int]*Result) map[int]float64 {
	seq := byProc[0]
	if seq == nil {
		return nil
	}
	m := NewModel(seq)
	base := m.Predict(seq).Total()
	out := make(map[int]float64, len(byProc))
	for p, r := range byProc {
		t := m.Predict(r).Total()
		if t > 0 {
			out[p] = base / t
		}
	}
	return out
}

// Fig8Modeled prints the modeled speedup table: the single-core-host
// substitute for the paper's Figure 8 (see the comment at the top of this
// file and EXPERIMENTS.md).
func Fig8Modeled(w io.Writer, rs ResultSet) {
	header(w, "Figure 8 (modeled): Speedup over sequential on an ideal P-processor machine")
	circuits := rs.Circuits()
	speed := make(map[string]map[int]float64, len(circuits))
	for _, c := range circuits {
		speed[c] = ModeledSpeedups(rs[c])
	}
	fmt.Fprintf(w, "%-8s", "# Procs")
	for _, c := range circuits {
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
	var procs []int
	for _, c := range circuits {
		procs = procsOf(rs[c])
		break
	}
	for _, p := range procs {
		fmt.Fprintf(w, "%-8s", ProcLabel(p))
		for _, c := range circuits {
			if s, ok := speed[c][p]; ok {
				fmt.Fprintf(w, "%12.2f", s)
			} else {
				fmt.Fprintf(w, "%12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Fig13Modeled prints the modeled per-phase breakdown for one circuit
// (single-core-host substitute for the measured Figure 13).
func Fig13Modeled(w io.Writer, circuit string, byProc map[int]*Result) {
	seq := byProc[0]
	if seq == nil {
		return
	}
	m := NewModel(seq)
	header(w, fmt.Sprintf("Figure 13 (modeled): Phase breakdown of %s on an ideal machine (seconds)", circuit))
	fmt.Fprintf(w, "%-8s%12s%12s%10s\n", "# Procs", "Expansion", "Reduction", "GC")
	for _, p := range procsOf(byProc) {
		if p == 0 {
			continue
		}
		t := m.Predict(byProc[p])
		fmt.Fprintf(w, "%-8d%12.2f%12.2f%10.2f\n", p, t.Expansion, t.Reduction, t.GC())
	}
}

// Fig14Modeled prints modeled phase speedups over the 1-processor run.
func Fig14Modeled(w io.Writer, circuit string, byProc map[int]*Result) {
	seq, one := byProc[0], byProc[1]
	if seq == nil || one == nil {
		return
	}
	m := NewModel(seq)
	base := m.Predict(one)
	header(w, fmt.Sprintf("Figure 14 (modeled): Phase speedups of %s over 1 processor", circuit))
	fmt.Fprintf(w, "%-8s%12s%12s%10s\n", "# Procs", "Expansion", "Reduction", "GC")
	for _, p := range procsOf(byProc) {
		if p == 0 {
			continue
		}
		t := m.Predict(byProc[p])
		ratio := func(num, den float64) string {
			if den == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", num/den)
		}
		fmt.Fprintf(w, "%-8d%12s%12s%10s\n", p,
			ratio(base.Expansion, t.Expansion),
			ratio(base.Reduction, t.Reduction),
			ratio(base.GC(), t.GC()))
	}
}

// Fig19Modeled prints modeled GC phase speedups over the 1-processor run.
func Fig19Modeled(w io.Writer, circuit string, byProc map[int]*Result) {
	seq, one := byProc[0], byProc[1]
	if seq == nil || one == nil {
		return
	}
	m := NewModel(seq)
	base := m.Predict(one)
	header(w, fmt.Sprintf("Figure 19 (modeled): GC phase speedups of %s over 1 processor", circuit))
	fmt.Fprintf(w, "%-8s%10s%10s%10s\n", "# Procs", "Mark", "Fix", "Rehash")
	for _, p := range procsOf(byProc) {
		if p == 0 {
			continue
		}
		t := m.Predict(byProc[p])
		ratio := func(num, den float64) string {
			if den == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", num/den)
		}
		fmt.Fprintf(w, "%-8d%10s%10s%10s\n", p,
			ratio(base.GCMark, t.GCMark),
			ratio(base.GCFix, t.GCFix),
			ratio(base.GCRehash, t.GCRehash))
	}
}

// HostParallel reports whether the host can execute workers in parallel,
// deciding whether measured or modeled speedups are meaningful.
func HostParallel(gomaxprocs int) bool { return gomaxprocs > 1 }

// FormatDuration renders a duration at millisecond precision for reports.
func FormatDuration(d time.Duration) string { return d.Round(time.Millisecond).String() }
