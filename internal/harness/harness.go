// Package harness runs the paper's experiments: it builds the BDDs for
// the evaluation circuits across processor counts and collects the
// measurements behind every figure in the results section (elapsed time,
// speedup, memory, operation counts, phase breakdowns, per-variable node
// clustering, unique-table lock contention, and GC phase behaviour).
package harness

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"bfbdd/internal/core"
	"bfbdd/internal/netlist"
	"bfbdd/internal/order"
	"bfbdd/internal/stats"
)

// MakeCircuit instantiates an evaluation circuit by name. Recognized
// names: "c2670" (synthetic C2670-like, see DESIGN.md §2), "c3540"
// (synthetic C3540-like) — both accepting a "-N" suffix that scales the
// embedded multiply unit (e.g. "c2670-8" for quick runs) — plus "mult-N",
// "adder-N", "cla-N", "cmp-N", "parity-N", "alu-N".
func MakeCircuit(name string) (*netlist.Circuit, error) {
	switch name {
	case "c2670":
		return netlist.C2670Like(), nil
	case "c3540":
		return netlist.C3540Like(), nil
	}
	dash := strings.LastIndex(name, "-")
	if dash > 0 {
		n, err := strconv.Atoi(name[dash+1:])
		if err == nil && n > 0 {
			switch name[:dash] {
			case "mult":
				return netlist.Multiplier(n), nil
			case "adder":
				return netlist.RippleAdder(n), nil
			case "cla":
				return netlist.CarryLookaheadAdder(n), nil
			case "cmp":
				return netlist.Comparator(n), nil
			case "parity":
				return netlist.Parity(n), nil
			case "alu":
				return netlist.ALU(n), nil
			case "c2670":
				return netlist.C2670LikeScaled(n), nil
			case "c3540":
				return netlist.C3540LikeScaled(n), nil
			}
		}
	}
	return nil, fmt.Errorf("harness: unknown circuit %q", name)
}

// Config describes one experiment run.
type Config struct {
	// Circuit is a name accepted by MakeCircuit.
	Circuit string
	// Workers is the processor count; 0 requests the sequential
	// configuration (the paper's "Seq" row: partial breadth-first with no
	// unique-table locking and more aggressive GC checks).
	Workers int
	// Engine overrides the engine when UseEngine is set (ablations);
	// otherwise EnginePBF is used for Workers == 0 and EnginePar above.
	Engine    core.Engine
	UseEngine bool
	// EvalThreshold, GroupSize, CacheBits tune the partial breadth-first
	// machinery (defaults applied by the kernel when zero).
	EvalThreshold int
	GroupSize     int
	CacheBits     uint
	// GC selects the collector policy.
	GC core.GCPolicy
	// DisableStealing turns work stealing off (ablation).
	DisableStealing bool
	// Order selects the variable ordering (default order.DFS, as the
	// paper uses SIS order_dfs).
	Order order.Method
	// OrderSeed seeds order.Shuffle.
	OrderSeed int64
}

// engineFor resolves the effective engine.
func (c Config) engineFor() core.Engine {
	if c.UseEngine {
		return c.Engine
	}
	if c.Workers > 0 {
		return core.EnginePar
	}
	return core.EnginePBF
}

// Result holds the measurements of one run.
type Result struct {
	Config  Config
	Circuit string
	Workers int

	Elapsed time.Duration

	// TotalOps is the number of Shannon expansion steps summed over all
	// workers (the paper's Figure 11 metric).
	TotalOps uint64
	// PeakBytes is the high-water explicit memory footprint (Figure 9).
	PeakBytes uint64

	// Worker0 carries the first processor's phase breakdown (Figures 13
	// and 18 report the first processor's workload).
	Worker0 stats.Worker
	// AllWorkers sums counters across workers; PerWorker keeps each
	// worker's counters (the analytic multiprocessor model needs the
	// distribution — see model.go).
	AllWorkers stats.Worker
	PerWorker  []stats.Worker

	// SerializedPerVar counts unique-table FindOrAdd operations (hits and
	// insertions) per variable: the work serialized by that variable's
	// lock during reduction. InsertsPerVar counts only the insertions,
	// the proxy for the rehash phase's per-variable serialization.
	SerializedPerVar []uint64
	InsertsPerVar    []uint64

	// LockWaitPerVar is each variable's total unique-table lock
	// acquisition wait (Figure 16).
	LockWaitPerVar []time.Duration
	// MaxNodesPerVar is each variable's high-water unique-table node
	// count (Figure 15).
	MaxNodesPerVar []uint64

	// OutputNodes is the total size of the output BDDs; LiveNodes the
	// final live node count; GCCount the number of collections.
	OutputNodes int
	LiveNodes   uint64
	GCCount     uint64
}

// LockWaitTotal sums the per-variable lock waits.
func (r *Result) LockWaitTotal() time.Duration {
	var total time.Duration
	for _, d := range r.LockWaitPerVar {
		total += d
	}
	return total
}

// Run executes one experiment configuration.
func Run(cfg Config) (*Result, error) {
	circ, err := MakeCircuit(cfg.Circuit)
	if err != nil {
		return nil, err
	}
	levels := order.Compute(circ, cfg.Order, cfg.OrderSeed)

	opts := core.Options{
		Levels:        circ.NumInputs(),
		Engine:        cfg.engineFor(),
		Workers:       cfg.Workers,
		EvalThreshold: cfg.EvalThreshold,
		GroupSize:     cfg.GroupSize,
		CacheBits:     cfg.CacheBits,
		GC:            cfg.GC,
		Stealing:      !cfg.DisableStealing,
	}
	if opts.EvalThreshold == 0 {
		// The paper sets the evaluation threshold to a small fraction of
		// physical memory; scale it to a small fraction of the workload
		// instead so the partial breadth-first machinery (context pushes,
		// stealing) engages on the scaled-down benchmark circuits too.
		opts.EvalThreshold = 8192
	}
	if cfg.Workers == 0 {
		// The paper's sequential configuration checks the GC condition
		// more aggressively than the parallel one (after each reduction
		// phase rather than at top-level barriers); model that with a
		// lower growth factor (DESIGN.md §2, substitution 4).
		opts.GCGrowth = 1.6
	} else {
		opts.GCGrowth = 2.0
	}

	k := core.NewKernel(opts)
	start := time.Now()
	res, err := netlist.Build(k, circ, levels)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	r := &Result{
		Config:    cfg,
		Circuit:   cfg.Circuit,
		Workers:   cfg.Workers,
		Elapsed:   elapsed,
		Worker0:   *k.WorkerStats(0),
		LiveNodes: k.NumNodes(),
		GCCount:   k.Memory().GCCount,
	}
	r.AllWorkers = k.TotalStats()
	r.TotalOps = r.AllWorkers.Ops
	r.PeakBytes = k.Memory().PeakBytes
	workers := cfg.Workers
	if workers == 0 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		r.PerWorker = append(r.PerWorker, *k.WorkerStats(w))
	}
	for l := 0; l < k.Levels(); l++ {
		t := k.Table(l)
		r.LockWaitPerVar = append(r.LockWaitPerVar, t.LockWait())
		r.MaxNodesPerVar = append(r.MaxNodesPerVar, t.MaxCount())
		r.SerializedPerVar = append(r.SerializedPerVar, t.Hits()+t.Misses())
		r.InsertsPerVar = append(r.InsertsPerVar, t.Misses())
	}
	r.OutputNodes = k.SizeMulti(res.Refs())
	res.Release()
	return r, nil
}

// Sweep runs a circuit across processor counts (0 meaning Seq).
func Sweep(circuit string, procs []int, base Config) (map[int]*Result, error) {
	out := make(map[int]*Result, len(procs))
	for _, p := range procs {
		cfg := base
		cfg.Circuit = circuit
		cfg.Workers = p
		r, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s @ %d procs: %w", circuit, p, err)
		}
		out[p] = r
	}
	return out, nil
}

// ProcLabel renders a processor count the way the paper's tables do.
func ProcLabel(p int) string {
	if p == 0 {
		return "Seq"
	}
	return strconv.Itoa(p)
}
