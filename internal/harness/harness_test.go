package harness

import (
	"strings"
	"testing"

	"bfbdd/internal/core"
	"bfbdd/internal/order"
)

func TestMakeCircuit(t *testing.T) {
	for _, name := range []string{"c2670", "c3540", "c2670-4", "c3540-4", "mult-4", "adder-5", "cla-4", "cmp-3", "parity-7", "alu-4"} {
		c, err := MakeCircuit(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, bad := range []string{"nope", "mult-", "mult-x", "mult-0", ""} {
		if _, err := MakeCircuit(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestRunSequentialAndParallelAgree(t *testing.T) {
	base := Config{EvalThreshold: 256, GroupSize: 32}
	seq, err := Run(Config{Circuit: "mult-5", Workers: 0, EvalThreshold: 256, GroupSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Config{Circuit: "mult-5", Workers: 3, EvalThreshold: 256, GroupSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	// Canonical output sizes must match across configurations.
	if seq.OutputNodes != par.OutputNodes {
		t.Fatalf("output sizes differ: seq=%d par=%d", seq.OutputNodes, par.OutputNodes)
	}
	if seq.TotalOps == 0 || par.TotalOps == 0 {
		t.Fatal("no operations recorded")
	}
	if seq.PeakBytes == 0 || par.PeakBytes == 0 {
		t.Fatal("no memory recorded")
	}
	if len(seq.MaxNodesPerVar) != 10 {
		t.Fatalf("MaxNodesPerVar has %d entries want 10", len(seq.MaxNodesPerVar))
	}
}

func TestRunEngineOverride(t *testing.T) {
	for _, e := range []core.Engine{core.EngineDF, core.EngineBF, core.EngineHybrid} {
		r, err := Run(Config{Circuit: "adder-4", Engine: e, UseEngine: true, EvalThreshold: 64})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if r.OutputNodes == 0 {
			t.Fatalf("%v: empty output", e)
		}
	}
}

func TestRunOrderMethods(t *testing.T) {
	sizes := map[order.Method]int{}
	for _, m := range []order.Method{order.DFS, order.Identity, order.Interleave} {
		r, err := Run(Config{Circuit: "adder-8", Order: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		sizes[m] = r.OutputNodes
	}
	if sizes[order.Identity] <= sizes[order.Interleave] {
		t.Fatalf("identity order (%d nodes) should be worse than interleave (%d)",
			sizes[order.Identity], sizes[order.Interleave])
	}
}

func TestSweepAndFigures(t *testing.T) {
	rs := ResultSet{}
	for _, circ := range []string{"mult-4", "adder-6"} {
		m, err := Sweep(circ, []int{0, 1, 2}, Config{EvalThreshold: 128, GroupSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		rs[circ] = m
	}

	var sb strings.Builder
	Fig7(&sb, rs)
	Fig8(&sb, rs)
	Fig9(&sb, rs)
	Fig9DSM(&sb, rs)
	Fig10(&sb, rs)
	Fig11(&sb, rs)
	Fig12(&sb, rs)
	Fig13(&sb, "mult-4", rs["mult-4"])
	Fig14(&sb, "mult-4", rs["mult-4"])
	Fig15(&sb, "mult-4", rs["mult-4"][1])
	Fig16(&sb, "mult-4", rs["mult-4"])
	Fig17(&sb, "mult-4", rs["mult-4"])
	Fig18(&sb, "mult-4", rs["mult-4"])
	Fig19(&sb, "mult-4", rs["mult-4"])
	Summary(&sb, rs)
	out := sb.String()

	for _, frag := range []string{
		"Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
		"Figure 12", "Figure 13", "Figure 14", "Figure 15", "Figure 16",
		"Figure 17", "Figure 18", "Figure 19",
		"Seq", "mult-4", "adder-6", "Expansion", "Reduction",
		"Mark", "Fix", "Rehash", "max nodes", "DSM pooling",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("figure output missing %q\n%s", frag, out)
		}
	}
}

func TestProcLabel(t *testing.T) {
	if ProcLabel(0) != "Seq" || ProcLabel(4) != "4" {
		t.Fatal("ProcLabel wrong")
	}
}
