package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"bfbdd/internal/stats"
)

// ResultSet holds sweep results for several circuits: results[circuit][procs].
type ResultSet map[string]map[int]*Result

// Circuits returns the circuit names in a stable order.
func (rs ResultSet) Circuits() []string {
	names := make([]string, 0, len(rs))
	for n := range rs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// procsOf returns the sorted processor counts present for a circuit
// (Seq = 0 first).
func procsOf(m map[int]*Result) []int {
	ps := make([]int, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	return ps
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, dashes(len(title)))
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// matrix prints a procs × circuits table with a per-cell formatter.
func (rs ResultSet) matrix(w io.Writer, cell func(*Result) string) {
	circuits := rs.Circuits()
	fmt.Fprintf(w, "%-8s", "# Procs")
	for _, c := range circuits {
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
	var procs []int
	for _, c := range circuits {
		procs = procsOf(rs[c])
		break
	}
	for _, p := range procs {
		fmt.Fprintf(w, "%-8s", ProcLabel(p))
		for _, c := range circuits {
			r := rs[c][p]
			if r == nil {
				fmt.Fprintf(w, "%12s", "-")
				continue
			}
			fmt.Fprintf(w, "%12s", cell(r))
		}
		fmt.Fprintln(w)
	}
}

// Fig7 prints elapsed time per circuit and processor count
// (paper Figure 7: "Elapsed Time for building BDDs for each circuit").
func Fig7(w io.Writer, rs ResultSet) {
	header(w, "Figure 7: Elapsed time (seconds)")
	rs.matrix(w, func(r *Result) string {
		return fmt.Sprintf("%.2f", r.Elapsed.Seconds())
	})
}

// Fig8 prints speedups over the sequential run (paper Figure 8).
func Fig8(w io.Writer, rs ResultSet) {
	header(w, "Figure 8: Speedup over sequential")
	rs.matrix(w, func(r *Result) string {
		seq := rs[r.Circuit][0]
		if seq == nil || r.Elapsed == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", seq.Elapsed.Seconds()/r.Elapsed.Seconds())
	})
}

// Fig9 prints peak memory per run in MBytes (paper Figure 9).
func Fig9(w io.Writer, rs ResultSet) {
	header(w, "Figure 9: Memory usage (MBytes)")
	rs.matrix(w, func(r *Result) string {
		return fmt.Sprintf("%.1f", float64(r.PeakBytes)/(1<<20))
	})
}

// Fig10 prints the Figure 9 data as series suitable for plotting
// (paper Figure 10 plots the same numbers).
func Fig10(w io.Writer, rs ResultSet) {
	header(w, "Figure 10: Memory usage vs processors (plot series)")
	for _, c := range rs.Circuits() {
		fmt.Fprintf(w, "%s:", c)
		for _, p := range procsOf(rs[c]) {
			fmt.Fprintf(w, " (%s, %.1fMB)", ProcLabel(p), float64(rs[c][p].PeakBytes)/(1<<20))
		}
		fmt.Fprintln(w)
	}
}

// Fig11 prints total Shannon-expansion operation counts in millions
// (paper Figure 11: "Total Number of Operations").
func Fig11(w io.Writer, rs ResultSet) {
	header(w, "Figure 11: Total operations (millions)")
	rs.matrix(w, func(r *Result) string {
		return fmt.Sprintf("%.2f", float64(r.TotalOps)/1e6)
	})
}

// Fig12 prints the Figure 11 data as plot series (paper Figure 12).
func Fig12(w io.Writer, rs ResultSet) {
	header(w, "Figure 12: Total operations vs processors (plot series)")
	for _, c := range rs.Circuits() {
		fmt.Fprintf(w, "%s:", c)
		for _, p := range procsOf(rs[c]) {
			fmt.Fprintf(w, " (%s, %.2fM)", ProcLabel(p), float64(rs[c][p].TotalOps)/1e6)
		}
		fmt.Fprintln(w)
	}
}

// Fig13 prints the first processor's per-phase time breakdown for one
// circuit (paper Figure 13, reported for mult-14).
func Fig13(w io.Writer, circuit string, byProc map[int]*Result) {
	header(w, fmt.Sprintf("Figure 13: Phase breakdown of %s, first processor (seconds)", circuit))
	fmt.Fprintf(w, "%-8s%12s%12s%10s\n", "# Procs", "Expansion", "Reduction", "GC")
	for _, p := range procsOf(byProc) {
		if p == 0 {
			continue // the paper's Figure 13 starts at 1 processor
		}
		r := byProc[p]
		gc := r.Worker0.PhaseTime(stats.PhaseGCMark) +
			r.Worker0.PhaseTime(stats.PhaseGCFix) +
			r.Worker0.PhaseTime(stats.PhaseGCRehash)
		fmt.Fprintf(w, "%-8d%12.2f%12.2f%10.2f\n", p,
			r.Worker0.PhaseTime(stats.PhaseExpansion).Seconds(),
			r.Worker0.PhaseTime(stats.PhaseReduction).Seconds(),
			gc.Seconds())
	}
}

// Fig14 prints the phase speedups over the one-processor run
// (paper Figure 14).
func Fig14(w io.Writer, circuit string, byProc map[int]*Result) {
	header(w, fmt.Sprintf("Figure 14: Phase speedups of %s over 1 processor", circuit))
	one := byProc[1]
	if one == nil {
		fmt.Fprintln(w, "(no 1-processor run)")
		return
	}
	phase := func(r *Result, ps ...stats.Phase) time.Duration {
		var total time.Duration
		for _, p := range ps {
			total += r.Worker0.PhaseTime(p)
		}
		return total
	}
	fmt.Fprintf(w, "%-8s%12s%12s%10s\n", "# Procs", "Expansion", "Reduction", "GC")
	for _, p := range procsOf(byProc) {
		if p == 0 {
			continue
		}
		r := byProc[p]
		ratio := func(ps ...stats.Phase) string {
			num, den := phase(one, ps...), phase(r, ps...)
			if den == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", num.Seconds()/den.Seconds())
		}
		fmt.Fprintf(w, "%-8d%12s%12s%10s\n", p,
			ratio(stats.PhaseExpansion),
			ratio(stats.PhaseReduction),
			ratio(stats.PhaseGCMark, stats.PhaseGCFix, stats.PhaseGCRehash))
	}
}

// Fig15 prints each variable's maximum unique-table node count for a
// one-processor run (paper Figure 15, showing the clustering of BDD
// nodes on very few variables).
func Fig15(w io.Writer, circuit string, r *Result) {
	header(w, fmt.Sprintf("Figure 15: Max BDD nodes per variable, %s (1 processor)", circuit))
	fmt.Fprintf(w, "%-10s%14s\n", "variable", "max nodes")
	for v, n := range r.MaxNodesPerVar {
		fmt.Fprintf(w, "%-10d%14d\n", v, n)
	}
	top, topVar := uint64(0), 0
	var total uint64
	for v, n := range r.MaxNodesPerVar {
		total += n
		if n > top {
			top, topVar = n, v
		}
	}
	if total > 0 {
		fmt.Fprintf(w, "peak: variable %d with %d nodes (%.0f%% of the per-variable maxima sum)\n",
			topVar, top, 100*float64(top)/float64(total))
	}
}

// Fig16 prints each variable's total unique-table lock acquisition wait
// for several processor counts (paper Figure 16).
func Fig16(w io.Writer, circuit string, byProc map[int]*Result) {
	header(w, fmt.Sprintf("Figure 16: Lock acquisition wait per variable, %s (seconds)", circuit))
	procs := procsOf(byProc)
	fmt.Fprintf(w, "%-10s", "variable")
	for _, p := range procs {
		if p >= 2 {
			fmt.Fprintf(w, "%14s", fmt.Sprintf("%d procs", p))
		}
	}
	fmt.Fprintln(w)
	var nvars int
	for _, p := range procs {
		nvars = len(byProc[p].LockWaitPerVar)
		break
	}
	for v := 0; v < nvars; v++ {
		fmt.Fprintf(w, "%-10d", v)
		for _, p := range procs {
			if p >= 2 {
				fmt.Fprintf(w, "%14.4f", byProc[p].LockWaitPerVar[v].Seconds())
			}
		}
		fmt.Fprintln(w)
	}
}

// Fig17 prints the lock wait as a fraction of the reduction phase time
// (paper Figure 17).
func Fig17(w io.Writer, circuit string, byProc map[int]*Result) {
	header(w, fmt.Sprintf("Figure 17: Lock wait / reduction time, %s", circuit))
	fmt.Fprintf(w, "%-8s%14s%14s%10s\n", "# Procs", "lock (s)", "reduce (s)", "ratio")
	for _, p := range procsOf(byProc) {
		if p == 0 {
			continue
		}
		r := byProc[p]
		lock := r.LockWaitTotal()
		// Reduction time summed across workers, matching the total lock
		// wait which is also summed across workers.
		reduce := r.AllWorkers.PhaseTime(stats.PhaseReduction)
		ratio := "-"
		if reduce > 0 {
			ratio = fmt.Sprintf("%.3f", lock.Seconds()/reduce.Seconds())
		}
		fmt.Fprintf(w, "%-8d%14.4f%14.4f%10s\n", p, lock.Seconds(), reduce.Seconds(), ratio)
	}
}

// Fig18 prints the garbage collector's phase breakdown on the first
// processor (paper Figure 18).
func Fig18(w io.Writer, circuit string, byProc map[int]*Result) {
	header(w, fmt.Sprintf("Figure 18: GC phase breakdown of %s, first processor (seconds)", circuit))
	fmt.Fprintf(w, "%-8s%10s%10s%10s\n", "# Procs", "Mark", "Fix", "Rehash")
	for _, p := range procsOf(byProc) {
		if p == 0 {
			continue
		}
		r := byProc[p]
		fmt.Fprintf(w, "%-8d%10.3f%10.3f%10.3f\n", p,
			r.Worker0.PhaseTime(stats.PhaseGCMark).Seconds(),
			r.Worker0.PhaseTime(stats.PhaseGCFix).Seconds(),
			r.Worker0.PhaseTime(stats.PhaseGCRehash).Seconds())
	}
}

// Fig19 prints the GC phase speedups over the one-processor run
// (paper Figure 19).
func Fig19(w io.Writer, circuit string, byProc map[int]*Result) {
	header(w, fmt.Sprintf("Figure 19: GC phase speedups of %s over 1 processor", circuit))
	one := byProc[1]
	if one == nil {
		fmt.Fprintln(w, "(no 1-processor run)")
		return
	}
	fmt.Fprintf(w, "%-8s%10s%10s%10s\n", "# Procs", "Mark", "Fix", "Rehash")
	for _, p := range procsOf(byProc) {
		if p == 0 {
			continue
		}
		r := byProc[p]
		ratio := func(ph stats.Phase) string {
			den := r.Worker0.PhaseTime(ph)
			if den == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", one.Worker0.PhaseTime(ph).Seconds()/den.Seconds())
		}
		fmt.Fprintf(w, "%-8d%10s%10s%10s\n", p,
			ratio(stats.PhaseGCMark), ratio(stats.PhaseGCFix), ratio(stats.PhaseGCRehash))
	}
}

// Fig9DSM prints the paper's DSM memory-pooling reading of the Figure 9
// data (§4.1: on a DSM with 8 processors the 8-processor footprint is
// equivalent to having several times the single machine's memory): for
// each run, the per-processor footprint if the total were pooled across P
// machines, and the pooling factor relative to the 1-processor run.
func Fig9DSM(w io.Writer, rs ResultSet) {
	header(w, "Figure 9 (DSM pooling view): per-machine MB if pooled across P machines")
	circuits := rs.Circuits()
	fmt.Fprintf(w, "%-8s", "# Procs")
	for _, c := range circuits {
		fmt.Fprintf(w, "  %20s", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "")
	for range circuits {
		fmt.Fprintf(w, "  %20s", "MB/machine (gain)")
	}
	fmt.Fprintln(w)
	var procs []int
	for _, c := range circuits {
		procs = procsOf(rs[c])
		break
	}
	for _, p := range procs {
		if p == 0 {
			continue
		}
		fmt.Fprintf(w, "%-8d", p)
		for _, c := range circuits {
			r := rs[c][p]
			one := rs[c][1]
			if r == nil || one == nil {
				fmt.Fprintf(w, "  %20s", "-")
				continue
			}
			perMachine := float64(r.PeakBytes) / float64(p) / (1 << 20)
			gain := float64(one.PeakBytes) / (float64(r.PeakBytes) / float64(p))
			fmt.Fprintf(w, "  %20s", fmt.Sprintf("%.1f (%.1fx)", perMachine, gain))
		}
		fmt.Fprintln(w)
	}
}

// Summary prints a one-line digest per run (not a paper figure; used by
// the CLI for orientation).
func Summary(w io.Writer, rs ResultSet) {
	header(w, "Run summary")
	for _, c := range rs.Circuits() {
		for _, p := range procsOf(rs[c]) {
			r := rs[c][p]
			fmt.Fprintf(w, "%-10s %4s procs: %8.2fs  %8.1fMB  %7.2fM ops  %6d steals  %4d GCs  out=%d nodes\n",
				c, ProcLabel(p), r.Elapsed.Seconds(), float64(r.PeakBytes)/(1<<20),
				float64(r.TotalOps)/1e6, r.AllWorkers.Steals, r.GCCount, r.OutputNodes)
		}
	}
}
