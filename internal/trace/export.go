package trace

import (
	"errors"
	"fmt"
	"time"
)

// The export schema is the stable wire shape of a completed trace:
// struct-ordered JSON fields, attributes as ordered key/value pairs (no
// maps), span ids dense from 1 in creation order. bfbdd-trace validates
// and pretty-prints this shape; golden tests pin it.

// ExportedAttr is one attribute of an exported span.
type ExportedAttr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// ExportedSpan is one span of an exported trace. Parent 0 denotes a root
// span. Times are Unix nanoseconds so the schema has no timezone or
// formatting variance.
type ExportedSpan struct {
	Span        int            `json:"span"`
	Parent      int            `json:"parent"`
	Name        string         `json:"name"`
	StartUnixNs int64          `json:"start_unix_ns"`
	DurationNs  int64          `json:"duration_ns"`
	Attrs       []ExportedAttr `json:"attrs,omitempty"`
}

// Exported is one completed trace in the export schema.
type Exported struct {
	TraceID      string         `json:"trace_id"`
	Root         string         `json:"root"`
	StartUnixNs  int64          `json:"start_unix_ns"`
	DurationNs   int64          `json:"duration_ns"`
	Forced       bool           `json:"forced,omitempty"`
	DroppedSpans int            `json:"dropped_spans,omitempty"`
	Spans        []ExportedSpan `json:"spans"`
}

// FormatTraceID renders a numeric trace id in the export form.
func FormatTraceID(id uint64) string { return fmt.Sprintf("t-%016x", id) }

// Export converts a finished trace to the export schema. The trace should
// be sealed (Finish) first; Export does not seal it.
func (t *Trace) Export() *Exported {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ex := &Exported{
		TraceID:      FormatTraceID(t.id),
		Forced:       t.forced,
		DroppedSpans: t.dropped,
		Spans:        make([]ExportedSpan, len(t.spans)),
	}
	for i := range t.spans {
		sp := &t.spans[i]
		es := ExportedSpan{
			Span:        int(sp.ID),
			Parent:      int(sp.Parent),
			Name:        sp.Name,
			StartUnixNs: sp.Start.UnixNano(),
		}
		if !sp.End.IsZero() {
			es.DurationNs = sp.End.Sub(sp.Start).Nanoseconds()
		}
		if len(sp.Attrs) > 0 {
			es.Attrs = make([]ExportedAttr, len(sp.Attrs))
			for j, a := range sp.Attrs {
				es.Attrs[j] = ExportedAttr{Key: a.Key, Value: a.Value}
			}
		}
		ex.Spans[i] = es
	}
	if len(ex.Spans) > 0 {
		ex.Root = ex.Spans[0].Name
		ex.StartUnixNs = ex.Spans[0].StartUnixNs
		ex.DurationNs = ex.Spans[0].DurationNs
	}
	return ex
}

// Validate checks an exported trace against the schema's structural
// invariants: non-empty id, dense 1-based span ids in order, parents
// referring to an earlier span (or 0), non-negative durations, and
// span 1 being the single root. It is the check bfbdd-trace -validate
// and the CI trace-smoke job run on server exports.
func (ex *Exported) Validate() error {
	if ex == nil {
		return errors.New("nil trace")
	}
	if ex.TraceID == "" {
		return errors.New("empty trace_id")
	}
	if len(ex.Spans) == 0 {
		return fmt.Errorf("trace %s has no spans", ex.TraceID)
	}
	for i, sp := range ex.Spans {
		if sp.Span != i+1 {
			return fmt.Errorf("trace %s: span at index %d has id %d (want %d)", ex.TraceID, i, sp.Span, i+1)
		}
		if sp.Name == "" {
			return fmt.Errorf("trace %s: span %d has empty name", ex.TraceID, sp.Span)
		}
		if sp.Parent < 0 || sp.Parent >= sp.Span {
			return fmt.Errorf("trace %s: span %d has invalid parent %d", ex.TraceID, sp.Span, sp.Parent)
		}
		if sp.Parent == 0 && sp.Span != 1 {
			return fmt.Errorf("trace %s: span %d is a second root", ex.TraceID, sp.Span)
		}
		if sp.DurationNs < 0 {
			return fmt.Errorf("trace %s: span %d has negative duration %d", ex.TraceID, sp.Span, sp.DurationNs)
		}
		for _, a := range sp.Attrs {
			if a.Key == "" {
				return fmt.Errorf("trace %s: span %d has an attribute with empty key", ex.TraceID, sp.Span)
			}
		}
	}
	return nil
}

// FindSpan returns the first span with the given name, or nil.
func (ex *Exported) FindSpan(name string) *ExportedSpan {
	for i := range ex.Spans {
		if ex.Spans[i].Name == name {
			return &ex.Spans[i]
		}
	}
	return nil
}

// Attr returns the value of the named attribute of a span, if present.
func (es *ExportedSpan) Attr(key string) (int64, bool) {
	for _, a := range es.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

// Duration returns the span duration as a time.Duration.
func (es *ExportedSpan) Duration() time.Duration { return time.Duration(es.DurationNs) }
