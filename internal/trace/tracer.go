package trace

import (
	"context"
	"math"
	"sync/atomic"
)

// Ring is a lock-free ring buffer of the last N exported traces. Writers
// claim a slot with one atomic increment and publish with one atomic
// pointer store; readers snapshot with atomic loads. A reader racing a
// writer sees either the evicted or the new trace in the contended slot —
// never a torn value — which is the right trade for a debug surface.
type Ring struct {
	slots []atomic.Pointer[Exported]
	head  atomic.Uint64
}

// NewRing creates a ring retaining the last size traces (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Exported], size)}
}

// Put records one exported trace, evicting the oldest when full.
func (r *Ring) Put(ex *Exported) {
	if ex == nil {
		return
	}
	slot := (r.head.Add(1) - 1) % uint64(len(r.slots))
	r.slots[slot].Store(ex)
}

// Len returns the number of traces currently retained.
func (r *Ring) Len() int {
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Snapshot returns the retained traces, newest first.
func (r *Ring) Snapshot() []*Exported {
	head := r.head.Load()
	n := uint64(len(r.slots))
	out := make([]*Exported, 0, n)
	// Walk backwards from the most recently claimed slot.
	for i := uint64(0); i < n; i++ {
		slot := (head + n - 1 - i) % n
		if ex := r.slots[slot].Load(); ex != nil {
			out = append(out, ex)
		}
	}
	return out
}

// Get returns the retained trace with the given id, or nil.
func (r *Ring) Get(id string) *Exported {
	for i := range r.slots {
		if ex := r.slots[i].Load(); ex != nil && ex.TraceID == id {
			return ex
		}
	}
	return nil
}

// Tracer is the per-process tracing control plane: head-based sampling
// decisions, trace id allocation, and the completed-trace ring.
type Tracer struct {
	ring *Ring
	ids  atomic.Uint64
	ctr  atomic.Uint64

	// sampleEvery selects every Nth request for tracing; 0 disables
	// sampling entirely (forced traces still record).
	sampleEvery uint64
}

// NewTracer creates a tracer that head-samples the given fraction of
// requests (clamped to [0,1]; 0 disables sampling) into a ring of
// ringSize completed traces.
func NewTracer(sampleRate float64, ringSize int) *Tracer {
	t := &Tracer{ring: NewRing(ringSize)}
	switch {
	case sampleRate <= 0 || math.IsNaN(sampleRate):
		t.sampleEvery = 0
	case sampleRate >= 1:
		t.sampleEvery = 1
	default:
		t.sampleEvery = uint64(math.Round(1 / sampleRate))
	}
	return t
}

// SamplingEnabled reports whether the head sampler selects any requests
// at all (forced traces bypass it).
func (tr *Tracer) SamplingEnabled() bool { return tr != nil && tr.sampleEvery > 0 }

// Sample makes the head-based decision for one request: a forced request
// always gets a trace, otherwise every sampleEvery-th request does. The
// returned trace is nil for unselected requests — the nil flows through
// every hook unchanged, which is the disabled fast path.
func (tr *Tracer) Sample(forced bool) *Trace {
	if tr == nil {
		return nil
	}
	if !forced {
		if tr.sampleEvery == 0 {
			return nil
		}
		if tr.ctr.Add(1)%tr.sampleEvery != 0 {
			return nil
		}
	}
	return &Trace{id: tr.ids.Add(1), forced: forced}
}

// Collect seals a trace and retains its export in the ring. Nil-safe.
func (tr *Tracer) Collect(t *Trace) *Exported {
	if tr == nil || t == nil {
		return nil
	}
	t.Finish()
	ex := t.Export()
	tr.ring.Put(ex)
	return ex
}

// Ring exposes the completed-trace ring (export endpoints, tests).
func (tr *Tracer) Ring() *Ring { return tr.ring }

// Context plumbing: a trace and the current parent span travel down the
// request path inside the context, so layers that only see a context
// (Manager.ApplyBatchCtx, for one) can still attach child spans.

type ctxKey struct{}

type ctxVal struct {
	t      *Trace
	parent SpanID
}

// NewContext returns ctx carrying the trace and parent span.
func NewContext(ctx context.Context, t *Trace, parent SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, parent: parent})
}

// FromContext extracts the trace and parent span from ctx; (nil, 0) when
// the request is untraced.
func FromContext(ctx context.Context) (*Trace, SpanID) {
	if ctx == nil {
		return nil, 0
	}
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.t, v.parent
	}
	return nil, 0
}
