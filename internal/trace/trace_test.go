package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	id := tr.Start(0, "root")
	if id != 0 {
		t.Fatalf("nil trace Start returned %d, want 0", id)
	}
	tr.End(id)
	tr.Annotate(id, I("k", 1))
	tr.Add(0, "x", time.Now(), time.Now())
	if tr.Finish() != 0 || tr.Export() != nil || tr.ID() != 0 || tr.Forced() {
		t.Fatal("nil trace methods must be no-ops")
	}
}

func TestSpanLifecycleAndExport(t *testing.T) {
	tc := NewTracer(1, 4)
	tr := tc.Sample(false)
	if tr == nil {
		t.Fatal("rate-1 sampler must select every request")
	}
	root := tr.Start(0, "root")
	child := tr.Start(root, "child")
	tr.End(child, I("ops", 7))
	grand := tr.Add(child, "grand", time.Now(), time.Now().Add(time.Millisecond), I("level", 3))
	tr.End(root, I("status", 200))
	if grand == 0 {
		t.Fatal("Add returned zero id")
	}
	if n := tr.Finish(); n != 0 {
		t.Fatalf("Finish force-ended %d spans, want 0", n)
	}
	ex := tc.Collect(tr)
	if err := ex.Validate(); err != nil {
		t.Fatalf("export invalid: %v", err)
	}
	if ex.Root != "root" || len(ex.Spans) != 3 {
		t.Fatalf("unexpected export shape: root=%q spans=%d", ex.Root, len(ex.Spans))
	}
	if ex.Spans[1].Parent != int(root) || ex.Spans[2].Parent != int(child) {
		t.Fatalf("parentage wrong: %+v", ex.Spans)
	}
	if v, ok := ex.Spans[1].Attr("ops"); !ok || v != 7 {
		t.Fatalf("child attrs wrong: %+v", ex.Spans[1].Attrs)
	}
	if got := tc.Ring().Get(ex.TraceID); got != ex {
		t.Fatal("ring did not retain the collected trace")
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	tr := NewTracer(1, 1).Sample(false)
	root := tr.Start(0, "root")
	tr.Start(root, "abandoned")
	if n := tr.Finish(); n != 2 {
		t.Fatalf("Finish force-ended %d spans, want 2", n)
	}
	for _, sp := range tr.Spans() {
		if sp.End.IsZero() {
			t.Fatalf("span %q still open after Finish", sp.Name)
		}
		if v, ok := spanAttr(sp, "unfinished"); !ok || v != 1 {
			t.Fatalf("span %q missing unfinished attr", sp.Name)
		}
	}
	// A sealed trace accepts no further spans.
	if id := tr.Start(0, "late"); id != 0 {
		t.Fatalf("sealed trace accepted span %d", id)
	}
}

func spanAttr(sp Span, key string) (int64, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer(1, 1).Sample(false)
	root := tr.Start(0, "root")
	for i := 0; i < maxSpans+10; i++ {
		id := tr.Add(root, "s", time.Now(), time.Now())
		if i < maxSpans-1 && id == 0 {
			t.Fatalf("span %d dropped below the cap", i)
		}
	}
	tr.Finish()
	ex := tr.Export()
	if len(ex.Spans) != maxSpans {
		t.Fatalf("retained %d spans, want %d", len(ex.Spans), maxSpans)
	}
	if ex.DroppedSpans != 11 {
		t.Fatalf("dropped %d spans, want 11", ex.DroppedSpans)
	}
}

func TestSamplerCadence(t *testing.T) {
	tc := NewTracer(0.25, 4)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr := tc.Sample(false); tr != nil {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("rate 0.25 sampled %d of 100, want 25", sampled)
	}

	off := NewTracer(0, 4)
	for i := 0; i < 50; i++ {
		if off.Sample(false) != nil {
			t.Fatal("rate-0 sampler selected a request")
		}
	}
	if tr := off.Sample(true); tr == nil || !tr.Forced() {
		t.Fatal("forced request must be traced even at rate 0")
	}
	if off.SamplingEnabled() {
		t.Fatal("rate-0 tracer reports sampling enabled")
	}
}

func TestRingEviction(t *testing.T) {
	tc := NewTracer(1, 3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := tc.Sample(false)
		tr.Start(0, fmt.Sprintf("t%d", i))
		ex := tc.Collect(tr)
		ids = append(ids, ex.TraceID)
	}
	ring := tc.Ring()
	if ring.Len() != 3 {
		t.Fatalf("ring holds %d traces, want 3", ring.Len())
	}
	snap := ring.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d traces, want 3", len(snap))
	}
	// Newest first: t4, t3, t2.
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if snap[i].TraceID != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, snap[i].TraceID, want)
		}
	}
	if ring.Get(ids[0]) != nil {
		t.Fatal("evicted trace still retrievable")
	}
	if ring.Get(ids[4]) == nil {
		t.Fatal("newest trace not retrievable")
	}
}

func TestConcurrentSpansAndRing(t *testing.T) {
	tc := NewTracer(1, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := tc.Sample(false)
				root := tr.Start(0, "root")
				var inner sync.WaitGroup
				for w := 0; w < 4; w++ {
					inner.Add(1)
					go func(w int) {
						defer inner.Done()
						id := tr.Start(root, "worker")
						tr.End(id, I("w", int64(w)))
					}(w)
				}
				inner.Wait()
				tr.End(root)
				ex := tc.Collect(tr)
				if err := ex.Validate(); err != nil {
					t.Errorf("concurrent trace invalid: %v", err)
					return
				}
				// Reads race writes by design; they must still be sane.
				tc.Ring().Snapshot()
			}
		}(g)
	}
	wg.Wait()
}

func TestExportJSONStableSchema(t *testing.T) {
	tr := NewTracer(1, 1).Sample(false)
	root := tr.Start(0, "root")
	tr.End(root, I("a", 1))
	tr.Finish()
	b, err := json.Marshal(tr.Export())
	if err != nil {
		t.Fatal(err)
	}
	// Struct-ordered keys: trace_id first, spans last.
	s := string(b)
	if got := s[:12]; got != `{"trace_id":` {
		t.Fatalf("trace_id is not the first field: %s", s)
	}
}

func TestContextPlumbing(t *testing.T) {
	if tr, p := FromContext(context.Background()); tr != nil || p != 0 {
		t.Fatal("empty context must carry no trace")
	}
	tr := NewTracer(1, 1).Sample(false)
	root := tr.Start(0, "root")
	ctx := NewContext(context.Background(), tr, root)
	got, parent := FromContext(ctx)
	if got != tr || parent != root {
		t.Fatal("context round-trip lost the trace")
	}
	// A nil trace does not pollute the context.
	if ctx2 := NewContext(context.Background(), nil, 0); ctx2 != context.Background() {
		t.Fatal("NewContext with nil trace must return ctx unchanged")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	mk := func() *Exported {
		return &Exported{
			TraceID: "t-1",
			Spans: []ExportedSpan{
				{Span: 1, Name: "root"},
				{Span: 2, Parent: 1, Name: "child"},
			},
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("well-formed trace rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Exported)
	}{
		{"empty id", func(ex *Exported) { ex.TraceID = "" }},
		{"no spans", func(ex *Exported) { ex.Spans = nil }},
		{"gap in ids", func(ex *Exported) { ex.Spans[1].Span = 3 }},
		{"forward parent", func(ex *Exported) { ex.Spans[1].Parent = 2 }},
		{"second root", func(ex *Exported) { ex.Spans[1].Parent = 0 }},
		{"negative duration", func(ex *Exported) { ex.Spans[0].DurationNs = -1 }},
		{"empty name", func(ex *Exported) { ex.Spans[1].Name = "" }},
		{"empty attr key", func(ex *Exported) { ex.Spans[1].Attrs = []ExportedAttr{{Key: ""}} }},
	}
	for _, c := range cases {
		ex := mk()
		c.mut(ex)
		if err := ex.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed trace", c.name)
		}
	}
}
