// Package trace is a zero-dependency, allocation-frugal span tracer for
// request-scoped diagnostics: one Trace per sampled request, a tree of
// Spans recorded live from every layer the request crosses (HTTP handler,
// executor queue, coalescer batch, kernel build phases, WAL commit,
// replication gate), and a process-wide lock-free ring buffer retaining
// the last N completed traces for export.
//
// Design constraints, in order:
//
//  1. Disabled cost ≈ zero. Every hook site guards on a plain nil check
//     (untraced requests carry a nil *Trace; all methods are nil-safe),
//     so the instrumented hot paths pay one pointer compare when tracing
//     is off.
//  2. No dependencies beyond the standard library, and no dependency on
//     any other bfbdd package — the kernel imports this package, so it
//     must sit at the bottom of the graph.
//  3. Stable export schema. Exported traces serialize with fixed field
//     ordering (struct-ordered JSON, attribute slices instead of maps) so
//     golden tests and external consumers can rely on byte shape.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within its trace: 1-based index into the
// trace's span slice. The zero SpanID means "no span" — it is both the
// root's parent and the id returned once the per-trace span cap is hit,
// and every method accepts it as a no-op target.
type SpanID uint32

// Attr is one int64-valued span attribute. Attributes carry the paper's
// counters (Shannon steps, cache hits, steal events, nodes created), so
// integers cover the domain; keeping the value type flat avoids
// interface boxing on the hot path.
type Attr struct {
	Key   string
	Value int64
}

// I constructs an Attr (shorthand for call sites).
func I(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Span is one timed operation within a trace.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	End    time.Time // zero until ended
	Attrs  []Attr
}

// maxSpans bounds one trace's span count: a huge build emitting per-level
// spans across many evaluation cycles must not grow a trace without
// bound. Further Start calls return SpanID 0 and bump the dropped
// counter, which the export reports.
const maxSpans = 4096

// Trace is one request's span tree. All methods are safe for concurrent
// use (kernel workers record per-level spans from multiple goroutines)
// and safe on a nil receiver (the untraced fast path).
type Trace struct {
	id     uint64
	forced bool

	mu      sync.Mutex
	spans   []Span
	open    int // spans started but not yet ended
	dropped int
	sealed  bool
}

// ID returns the trace's process-unique numeric id.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Forced reports whether the trace was forced by the request (?trace=1)
// rather than selected by the sampler.
func (t *Trace) Forced() bool { return t != nil && t.forced }

// Start opens a span under parent (0 for a root span) and returns its id.
// Nil-safe: a nil trace returns 0.
func (t *Trace) Start(parent SpanID, name string) SpanID {
	return t.StartAt(parent, name, time.Now())
}

// StartAt is Start with an explicit start time, for callers that captured
// the instant before reaching for the trace (queue-wait reconstruction).
func (t *Trace) StartAt(parent SpanID, name string, at time.Time) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed || len(t.spans) >= maxSpans {
		t.dropped++
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: at})
	t.open++
	return id
}

// End closes the span, attaching attrs. Ending the zero span, an already
// ended span, or any span of a nil trace is a no-op.
func (t *Trace) End(id SpanID, attrs ...Attr) { t.EndAt(id, time.Now(), attrs...) }

// EndAt is End with an explicit end time.
func (t *Trace) EndAt(id SpanID, at time.Time, attrs ...Attr) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &t.spans[id-1]
	if !sp.End.IsZero() {
		return
	}
	sp.End = at
	if len(attrs) > 0 {
		sp.Attrs = append(sp.Attrs, attrs...)
	}
	t.open--
}

// Add records an already-completed span in one call (one lock
// acquisition) — the shape the kernel's per-level phase hooks use.
func (t *Trace) Add(parent SpanID, name string, start, end time.Time, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed || len(t.spans) >= maxSpans {
		t.dropped++
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	s := Span{ID: id, Parent: parent, Name: name, Start: start, End: end}
	if len(attrs) > 0 {
		s.Attrs = append(s.Attrs, attrs...)
	}
	t.spans = append(t.spans, s)
	return id
}

// Annotate appends attributes to an open or closed span.
func (t *Trace) Annotate(id SpanID, attrs ...Attr) {
	if t == nil || id == 0 || len(attrs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &t.spans[id-1]
	sp.Attrs = append(sp.Attrs, attrs...)
}

// Finish seals the trace: any span still open is force-ended at now with
// an unfinished=1 attribute (a span can be abandoned legitimately when
// its request's context expires before the executor reaches the task).
// After Finish the trace accepts no further spans. Returns the number of
// spans that had to be force-ended.
func (t *Trace) Finish() int {
	if t == nil {
		return 0
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return 0
	}
	t.sealed = true
	forced := 0
	if t.open > 0 {
		for i := range t.spans {
			sp := &t.spans[i]
			if sp.End.IsZero() {
				sp.End = now
				sp.Attrs = append(sp.Attrs, Attr{Key: "unfinished", Value: 1})
				forced++
			}
		}
		t.open = 0
	}
	return forced
}

// OpenSpans returns the number of started-but-unended spans (test hook).
func (t *Trace) OpenSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// Spans returns a copy of the recorded spans (test hook; attribute slices
// are shared, callers must not mutate them).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// batchIDs numbers coalescer batches process-wide so every trace touched
// by one flush can carry the same batch_id attribute without any shared
// wiring between sessions.
var batchIDs atomic.Uint64

// NextBatchID returns a process-unique batch identifier.
func NextBatchID() uint64 { return batchIDs.Add(1) }
