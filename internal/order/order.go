// Package order computes variable orderings for circuit inputs. The
// paper's experiments use the order produced by order_dfs in SIS; DFS here
// implements that heuristic (depth-first traversal of the output cones,
// variables ordered by first visit). BDD sizes are extremely sensitive to
// this choice, so alternative orders are provided for comparison.
package order

import (
	"fmt"
	"math/rand"
	"strings"

	"bfbdd/internal/netlist"
)

// Method selects an ordering heuristic.
type Method int

// The available ordering methods.
const (
	// DFS is the SIS order_dfs heuristic: depth-first traversal of the
	// fanin cones from the primary outputs (outputs in declaration order,
	// fanins in gate order); inputs are ordered by first visit.
	DFS Method = iota
	// Identity keeps the declaration order of the inputs.
	Identity
	// Interleave groups inputs by their alphabetic name prefix (e.g. the
	// a… and b… operand words of an arithmetic circuit) and interleaves
	// the groups bit by bit — the classic good order for adders and
	// comparators.
	Interleave
	// Reverse reverses the declaration order.
	Reverse
	// Shuffle is a seeded random permutation (worst-case baseline).
	Shuffle
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case DFS:
		return "dfs"
	case Identity:
		return "identity"
	case Interleave:
		return "interleave"
	case Reverse:
		return "reverse"
	case Shuffle:
		return "shuffle"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Compute returns inputLevel: for each primary input (by position in
// c.Inputs), the BDD variable level it is assigned. The result is always
// a permutation of [0, NumInputs).
func Compute(c *netlist.Circuit, m Method, seed int64) []int {
	n := len(c.Inputs)
	levels := make([]int, n)
	switch m {
	case Identity:
		for i := range levels {
			levels[i] = i
		}
	case Reverse:
		for i := range levels {
			levels[i] = n - 1 - i
		}
	case Shuffle:
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		copy(levels, perm)
	case Interleave:
		return interleave(c)
	case DFS:
		return dfs(c)
	default:
		panic("order: unknown method " + m.String())
	}
	return levels
}

// dfs assigns levels by first visit in a depth-first traversal from the
// outputs.
func dfs(c *netlist.Circuit) []int {
	inputPos := make(map[int]int, len(c.Inputs)) // gate index -> input position
	for pos, gi := range c.Inputs {
		inputPos[gi] = pos
	}
	levels := make([]int, len(c.Inputs))
	for i := range levels {
		levels[i] = -1
	}
	next := 0
	visited := make([]bool, len(c.Gates))
	// Iterative DFS preserving fanin order (stack of frames).
	var visit func(gi int)
	visit = func(gi int) {
		if visited[gi] {
			return
		}
		visited[gi] = true
		g := &c.Gates[gi]
		if g.Type == netlist.GateInput {
			levels[inputPos[gi]] = next
			next++
			return
		}
		for _, f := range g.Fanin {
			visit(f)
		}
	}
	for _, o := range c.Outputs {
		visit(o)
	}
	// Inputs not in any output cone get the remaining levels.
	for pos := range levels {
		if levels[pos] == -1 {
			levels[pos] = next
			next++
		}
	}
	return levels
}

// interleave orders inputs round-robin across name-prefix groups.
func interleave(c *netlist.Circuit) []int {
	type group struct {
		prefix    string
		positions []int
	}
	var groups []group
	index := make(map[string]int)
	for pos, gi := range c.Inputs {
		p := prefixOf(c.Gates[gi].Name)
		g, ok := index[p]
		if !ok {
			g = len(groups)
			index[p] = g
			groups = append(groups, group{prefix: p})
		}
		groups[g].positions = append(groups[g].positions, pos)
	}
	levels := make([]int, len(c.Inputs))
	next := 0
	for i := 0; ; i++ {
		advanced := false
		for _, g := range groups {
			if i < len(g.positions) {
				levels[g.positions[i]] = next
				next++
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}
	return levels
}

// prefixOf strips a trailing decimal index from an input name.
func prefixOf(name string) string {
	return strings.TrimRight(name, "0123456789")
}
