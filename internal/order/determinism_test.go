package order

import (
	"reflect"
	"testing"

	"bfbdd/internal/netlist"
)

// builtinCircuits instantiates every built-in generated circuit family
// at a small width, plus the two synthetic ISCAS-like benchmarks.
func builtinCircuits(t *testing.T) map[string]*netlist.Circuit {
	t.Helper()
	cs := map[string]*netlist.Circuit{
		"adder-8":  netlist.RippleAdder(8),
		"cla-8":    netlist.CarryLookaheadAdder(8),
		"mult-5":   netlist.Multiplier(5),
		"cmp-8":    netlist.Comparator(8),
		"parity-9": netlist.Parity(9),
		"penc-8":   netlist.PriorityEncoder(8),
		"alu-4":    netlist.ALU(4),
		"c2670":    netlist.C2670Like(),
		"c3540":    netlist.C3540Like(),
		"random":   netlist.Random(10, 40, 1),
	}
	for name, c := range cs {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: invalid circuit: %v", name, err)
		}
	}
	return cs
}

// TestComputeDeterministic re-runs every deterministic ordering method on
// every built-in circuit and requires bit-identical results: variable
// orders feed directly into BDD construction, so any run-to-run drift
// would make whole-system results unreproducible.
func TestComputeDeterministic(t *testing.T) {
	methods := []Method{DFS, Identity, Interleave, Reverse}
	for name, c := range builtinCircuits(t) {
		for _, m := range methods {
			first := Compute(c, m, 0)
			for run := 1; run < 5; run++ {
				if got := Compute(c, m, 0); !reflect.DeepEqual(got, first) {
					t.Errorf("%s/%s: run %d differs from run 0\n got %v\nwant %v",
						name, m, run, got, first)
					break
				}
			}
		}
	}
}

// TestComputeSeededShuffleDeterministic checks that Shuffle is a pure
// function of its seed: same seed, same permutation; different seeds,
// (almost surely) different permutations on non-trivial circuits.
func TestComputeSeededShuffleDeterministic(t *testing.T) {
	for name, c := range builtinCircuits(t) {
		a := Compute(c, Shuffle, 7)
		b := Compute(c, Shuffle, 7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: Shuffle with equal seeds diverged", name)
		}
		if len(c.Inputs) >= 8 {
			if other := Compute(c, Shuffle, 8); reflect.DeepEqual(a, other) {
				t.Errorf("%s: Shuffle ignored its seed", name)
			}
		}
	}
}

// TestComputeIsPermutation requires every method to produce a total
// permutation of the input positions on every built-in circuit.
func TestComputeIsPermutation(t *testing.T) {
	methods := []Method{DFS, Identity, Interleave, Reverse, Shuffle}
	for name, c := range builtinCircuits(t) {
		for _, m := range methods {
			levels := Compute(c, m, 3)
			if len(levels) != len(c.Inputs) {
				t.Fatalf("%s/%s: %d levels for %d inputs", name, m, len(levels), len(c.Inputs))
			}
			seen := make([]bool, len(levels))
			for pos, lv := range levels {
				if lv < 0 || lv >= len(levels) {
					t.Fatalf("%s/%s: input %d assigned level %d (out of range)", name, m, pos, lv)
				}
				if seen[lv] {
					t.Fatalf("%s/%s: level %d assigned twice", name, m, lv)
				}
				seen[lv] = true
			}
		}
	}
}
