package order

import (
	"testing"

	"bfbdd/internal/core"
	"bfbdd/internal/netlist"
)

func isPermutation(t *testing.T, levels []int) {
	t.Helper()
	seen := make([]bool, len(levels))
	for _, l := range levels {
		if l < 0 || l >= len(levels) || seen[l] {
			t.Fatalf("not a permutation: %v", levels)
		}
		seen[l] = true
	}
}

func TestAllMethodsArePermutations(t *testing.T) {
	circuits := []*netlist.Circuit{
		netlist.Multiplier(5),
		netlist.RippleAdder(6),
		netlist.C2670Like(),
		netlist.C3540Like(),
		netlist.Random(12, 80, 5),
	}
	for _, c := range circuits {
		for _, m := range []Method{DFS, Identity, Interleave, Reverse, Shuffle} {
			levels := Compute(c, m, 1)
			if len(levels) != c.NumInputs() {
				t.Fatalf("%s/%s: %d levels for %d inputs", c.Name, m, len(levels), c.NumInputs())
			}
			isPermutation(t, levels)
		}
	}
}

func TestIdentityAndReverse(t *testing.T) {
	c := netlist.Parity(5)
	id := Compute(c, Identity, 0)
	rev := Compute(c, Reverse, 0)
	for i := range id {
		if id[i] != i {
			t.Fatalf("identity[%d] = %d", i, id[i])
		}
		if rev[i] != len(rev)-1-i {
			t.Fatalf("reverse[%d] = %d", i, rev[i])
		}
	}
}

func TestShuffleSeeded(t *testing.T) {
	c := netlist.Multiplier(6)
	a := Compute(c, Shuffle, 42)
	b := Compute(c, Shuffle, 42)
	d := Compute(c, Shuffle, 43)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
		if a[i] != d[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical shuffle")
	}
}

func TestInterleaveAdder(t *testing.T) {
	// For the ripple adder (inputs a0..aw-1, b0..bw-1, cin) interleaving
	// alternates a and b bits.
	c := netlist.RippleAdder(4)
	levels := Compute(c, Interleave, 0)
	isPermutation(t, levels)
	// a0 and b0 must be adjacent, a1 and b1 adjacent, etc.
	for i := 0; i < 4; i++ {
		la, lb := levels[i], levels[4+i]
		if lb-la != 1 {
			t.Fatalf("a%d at %d, b%d at %d: not interleaved", i, la, i, lb)
		}
	}
}

func TestDFSRespectsConeOrder(t *testing.T) {
	// Build a circuit where output 1's cone contains input c only:
	// DFS must order inputs of the first output's cone first.
	c := netlist.New("cones")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(netlist.GateAnd, "g1", a, b)
	g2 := c.AddGate(netlist.GateNot, "g2", d)
	c.MarkOutput(g1)
	c.MarkOutput(g2)
	levels := Compute(c, DFS, 0)
	// a visited first, then b, then d.
	if levels[0] != 0 || levels[1] != 1 || levels[2] != 2 {
		t.Fatalf("dfs levels = %v", levels)
	}
}

func TestDFSUnreachableInputs(t *testing.T) {
	c := netlist.New("dead")
	a := c.AddInput("a")
	_ = c.AddInput("deadwood")
	c.MarkOutput(c.AddGate(netlist.GateNot, "n", a))
	levels := Compute(c, DFS, 0)
	isPermutation(t, levels)
	if levels[0] != 0 {
		t.Fatalf("live input should get level 0, got %v", levels)
	}
	if levels[1] != 1 {
		t.Fatalf("dead input should get trailing level, got %v", levels)
	}
}

func TestOrderQualityOnAdder(t *testing.T) {
	// The whole point of ordering: interleaved/DFS orders give linear-size
	// adder BDDs, while the identity (a-word then b-word) order is
	// exponential. Verify the size gap on an 8-bit adder.
	c := netlist.RippleAdder(8)
	sizeWith := func(m Method) int {
		k := core.NewKernel(core.Options{Levels: c.NumInputs(), Engine: core.EnginePBF})
		res, err := netlist.Build(k, c, Compute(c, m, 0))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Release()
		total := 0
		for _, r := range res.Refs() {
			total += k.Size(r)
		}
		return total
	}
	good := sizeWith(Interleave)
	dfsSize := sizeWith(DFS)
	bad := sizeWith(Identity)
	if bad <= 2*good {
		t.Fatalf("expected identity order to blow up: interleave=%d identity=%d", good, bad)
	}
	// DFS on a ripple adder discovers an interleaved-ish order and must
	// stay far below the bad order.
	if dfsSize >= bad {
		t.Fatalf("dfs order (%d) not better than identity (%d)", dfsSize, bad)
	}
}
