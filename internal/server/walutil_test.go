package server

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// latestSnapshot returns the path of id's newest committed snapshot in
// dir, or "" when none exists. Snapshots carry their WAL sequence in the
// file name, so tests cannot hard-code `<id>.snap` any more.
func latestSnapshot(dir, id string) string {
	c := &checkpointer{dir: dir}
	snaps := c.snapshotsFor(id)
	if len(snaps) == 0 {
		return ""
	}
	return snaps[len(snaps)-1].path
}

// copyDurabilityDir clones a checkpoint directory (snapshots, meta
// sidecars, and the wal/ subtree) into a fresh temp dir. Recovery tests
// boot their second in-process server over the clone: pointing it at the
// live server's directory would have the two servers sharing active WAL
// segment files — the clone is the process-crash equivalent of reading
// the dir after the writer is gone.
func copyDurabilityDir(t *testing.T, dir string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		src, err := os.Open(path)
		if err != nil {
			return err
		}
		defer src.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, src); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copy durability dir: %v", err)
	}
	return dst
}
