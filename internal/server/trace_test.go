package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bfbdd/internal/trace"
)

// tracedApply posts one apply with ?trace=1 and returns the result
// handle and the trace id from the response header.
func tracedApply(t *testing.T, base, sid, op string, f, g uint64) (uint64, string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"op": op, "f": f, "g": g})
	resp, err := http.Post(base+"/v1/sessions/"+sid+"/apply?trace=1",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced apply -> %d: %s", resp.StatusCode, raw)
	}
	tid := resp.Header.Get("X-Bfbdd-Trace")
	if tid == "" {
		t.Fatal("forced request missing X-Bfbdd-Trace header")
	}
	var out struct {
		Handle uint64 `json:"handle"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unmarshal %q: %v", raw, err)
	}
	return out.Handle, tid
}

// fetchTrace retrieves and validates one exported trace by id.
func fetchTrace(t *testing.T, base, tid string) *trace.Exported {
	t.Helper()
	resp, err := http.Get(base + "/v1/debug/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace %s -> %d: %s", tid, resp.StatusCode, raw)
	}
	var ex trace.Exported
	if err := json.Unmarshal(raw, &ex); err != nil {
		t.Fatalf("unmarshal trace: %v", err)
	}
	if err := ex.Validate(); err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, raw)
	}
	return &ex
}

// spanByName returns the first span with the given name, failing the
// test when absent.
func spanByName(t *testing.T, ex *trace.Exported, name string) *trace.ExportedSpan {
	t.Helper()
	sp := ex.FindSpan(name)
	if sp == nil {
		var names []string
		for _, s := range ex.Spans {
			names = append(names, s.Name)
		}
		t.Fatalf("no %q span in trace (have %v)", name, names)
	}
	return sp
}

// TestTraceEndToEndApply asserts the full span tree of one traced
// coalesced apply on a persistent session: handler root → queue-wait +
// batch → kernel-build (with per-level expansion/reduction children and
// the paper's counters) + wal-commit + repl-await, with correct
// parentage throughout.
func TestTraceEndToEndApply(t *testing.T) {
	_, ts := testServer(t, Config{
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: -1,
	})
	sid := createSession(t, ts.URL, SessionOptions{Vars: 6})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)

	_, tid := tracedApply(t, ts.URL, sid, "and", v0, v1)
	ex := fetchTrace(t, ts.URL, tid)

	root := spanByName(t, ex, "POST /v1/sessions/{sid}/apply")
	if root.Span != 1 || root.Parent != 0 {
		t.Fatalf("handler span is not the root: %+v", root)
	}
	if st, ok := root.Attr("status"); !ok || st != http.StatusOK {
		t.Fatalf("root status attr = %v", root.Attrs)
	}
	if ex.Root != root.Name {
		t.Fatalf("export root %q != root span name %q", ex.Root, root.Name)
	}

	qw := spanByName(t, ex, "queue-wait")
	if qw.Parent != root.Span {
		t.Fatalf("queue-wait parented to %d, want root %d", qw.Parent, root.Span)
	}
	batch := spanByName(t, ex, "batch")
	if batch.Parent != root.Span {
		t.Fatalf("batch parented to %d, want root %d", batch.Parent, root.Span)
	}
	if ops, ok := batch.Attr("ops"); !ok || ops != 1 {
		t.Fatalf("batch ops attr = %v", batch.Attrs)
	}
	if _, ok := batch.Attr("batch_id"); !ok {
		t.Fatalf("batch missing batch_id: %v", batch.Attrs)
	}

	build := spanByName(t, ex, "kernel-build")
	if build.Parent != batch.Span {
		t.Fatalf("kernel-build parented to %d, want batch %d", build.Parent, batch.Span)
	}
	for _, key := range []string{
		"shannon_steps", "cache_hits", "terminals", "steals", "stolen_ops",
		"stalls", "context_pushes", "lock_wait_ns", "nodes_created",
	} {
		if _, ok := build.Attr(key); !ok {
			t.Errorf("kernel-build missing %s attr: %v", key, build.Attrs)
		}
	}
	if steps, _ := build.Attr("shannon_steps"); steps <= 0 {
		t.Fatalf("kernel-build shannon_steps = %d, want > 0", steps)
	}

	var expands, reduces int
	for i := range ex.Spans {
		sp := &ex.Spans[i]
		switch sp.Name {
		case "expand", "reduce":
			if sp.Parent != build.Span {
				t.Fatalf("%s span parented to %d, want kernel-build %d", sp.Name, sp.Parent, build.Span)
			}
			if _, ok := sp.Attr("level"); !ok {
				t.Fatalf("%s span missing level attr: %v", sp.Name, sp.Attrs)
			}
			if sp.Name == "expand" {
				expands++
			} else {
				reduces++
			}
		}
	}
	if expands == 0 || reduces == 0 {
		t.Fatalf("per-level phase spans missing: %d expand, %d reduce", expands, reduces)
	}

	wc := spanByName(t, ex, "wal-commit")
	if wc.Parent != batch.Span {
		t.Fatalf("wal-commit parented to %d, want batch %d", wc.Parent, batch.Span)
	}
	if n, ok := wc.Attr("records"); !ok || n != 1 {
		t.Fatalf("wal-commit records attr = %v", wc.Attrs)
	}
	ra := spanByName(t, ex, "repl-await")
	if ra.Parent != batch.Span {
		t.Fatalf("repl-await parented to %d, want batch %d", ra.Parent, batch.Span)
	}
	if seq, ok := ra.Attr("seq"); !ok || seq <= 0 {
		t.Fatalf("repl-await seq attr = %v", ra.Attrs)
	}
}

// TestTraceCoalescedBatchMembership asserts that two applies coalesced
// into one engine batch produce one owner trace carrying the batch span
// and one member trace carrying a batch-join marker with the same
// batch_id.
func TestTraceCoalescedBatchMembership(t *testing.T) {
	_, ts := testServer(t, Config{CoalesceWindow: 50 * time.Millisecond})
	sid := createSession(t, ts.URL, SessionOptions{Vars: 6})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)

	var wg sync.WaitGroup
	tids := make([]string, 2)
	for i := range tids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, tids[i] = tracedApply(t, ts.URL, sid, "or", v0, v1)
		}(i)
	}
	wg.Wait()

	var owners, members []*trace.Exported
	for _, tid := range tids {
		ex := fetchTrace(t, ts.URL, tid)
		switch {
		case ex.FindSpan("batch") != nil:
			owners = append(owners, ex)
		case ex.FindSpan("batch-join") != nil:
			members = append(members, ex)
		default:
			t.Fatalf("trace %s has neither batch nor batch-join", ex.TraceID)
		}
	}
	if len(owners) != 1 || len(members) != 1 {
		// The two requests raced past each other's window: both became
		// owners of singleton batches. Legal, but not what this test is
		// about — with a 50ms window it should be vanishingly rare.
		t.Fatalf("got %d owners / %d members, want 1/1", len(owners), len(members))
	}
	ownerID, _ := owners[0].FindSpan("batch").Attr("batch_id")
	memberID, _ := members[0].FindSpan("batch-join").Attr("batch_id")
	if ownerID != memberID {
		t.Fatalf("batch_id mismatch: owner %d, member %d", ownerID, memberID)
	}
	if ops, _ := owners[0].FindSpan("batch").Attr("ops"); ops != 2 {
		t.Fatalf("owner batch ops = %d, want 2", ops)
	}
	// Both traces recorded their queue wait; only the owner carries the
	// kernel build.
	for _, ex := range append(owners, members...) {
		if ex.FindSpan("queue-wait") == nil {
			t.Fatalf("trace %s missing queue-wait span", ex.TraceID)
		}
	}
	if owners[0].FindSpan("kernel-build") == nil {
		t.Fatal("owner trace missing kernel-build span")
	}
	if members[0].FindSpan("kernel-build") != nil {
		t.Fatal("member trace must not carry the kernel build")
	}
}

// TestTraceCountersMatchStats is the parity check: the kernel-build
// span's counter attributes must equal the Manager.Stats deltas across
// the traced build.
func TestTraceCountersMatchStats(t *testing.T) {
	srv, ts := testServer(t, Config{})
	sid := createSession(t, ts.URL, SessionOptions{Vars: 10})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	acc := v0
	for i := 1; i < 10; i++ {
		vi := mkVar(t, ts.URL, sid, i, false)
		acc = apply(t, ts.URL, sid, "xor", acc, vi)
	}

	sess, err := srv.reg.get(sid)
	if err != nil {
		t.Fatal(err)
	}
	// Quiesce: the noop stats task drains every prior executor task, so
	// the direct Stats read below cannot race engine work.
	mustCall(t, "GET", ts.URL+"/v1/sessions/"+sid+"/stats", nil, http.StatusOK)
	before := sess.mgr.Stats()

	_, tid := tracedApply(t, ts.URL, sid, "and", acc, v0)
	mustCall(t, "GET", ts.URL+"/v1/sessions/"+sid+"/stats", nil, http.StatusOK)
	after := sess.mgr.Stats()

	build := spanByName(t, fetchTrace(t, ts.URL, tid), "kernel-build")
	checks := []struct {
		attr string
		want int64
	}{
		{"shannon_steps", int64(after.Ops - before.Ops)},
		{"cache_hits", int64(after.CacheHits - before.CacheHits)},
		{"terminals", int64(after.Terminals - before.Terminals)},
		{"steals", int64(after.Steals - before.Steals)},
		{"stolen_ops", int64(after.StolenOps - before.StolenOps)},
		{"stalls", int64(after.Stalls - before.Stalls)},
		{"context_pushes", int64(after.ContextPushes - before.ContextPushes)},
		{"lock_wait_ns", int64(after.LockWait - before.LockWait)},
		{"nodes_created", int64(after.NumNodes) - int64(before.NumNodes)},
	}
	for _, c := range checks {
		got, ok := build.Attr(c.attr)
		if !ok {
			t.Errorf("kernel-build missing %s", c.attr)
			continue
		}
		if got != c.want {
			t.Errorf("kernel-build %s = %d, stats delta = %d", c.attr, got, c.want)
		}
	}
	if steps, _ := build.Attr("shannon_steps"); steps == 0 {
		t.Error("parity check exercised a build with zero Shannon steps")
	}
}

// TestTraceDebugEndpoints covers the listing surface: empty when
// sampling is off and nothing was forced, 404 for unknown ids, newest-
// first ordering, and eviction once the ring wraps.
func TestTraceDebugEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{TraceRingSize: 2})
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)

	out := mustCall(t, "GET", ts.URL+"/v1/debug/traces", nil, http.StatusOK)
	if sampling, _ := out["sampling"].(bool); sampling {
		t.Fatal("sampling reported enabled at rate 0")
	}
	if traces, _ := out["traces"].([]any); len(traces) != 0 {
		t.Fatalf("expected empty trace list with sampling off, got %v", traces)
	}
	mustCall(t, "GET", ts.URL+"/v1/debug/traces/t-00000000deadbeef", nil, http.StatusNotFound)

	var tids []string
	for i := 0; i < 3; i++ {
		_, tid := tracedApply(t, ts.URL, sid, "and", v0, v1)
		tids = append(tids, tid)
	}
	out = mustCall(t, "GET", ts.URL+"/v1/debug/traces", nil, http.StatusOK)
	traces, _ := out["traces"].([]any)
	if len(traces) != 2 {
		t.Fatalf("ring of 2 retains %d traces", len(traces))
	}
	first, _ := traces[0].(map[string]any)
	second, _ := traces[1].(map[string]any)
	if first["trace_id"] != tids[2] || second["trace_id"] != tids[1] {
		t.Fatalf("listing not newest-first: %v vs %v", traces, tids)
	}
	// The evicted trace 404s; the retained ones export fully.
	mustCall(t, "GET", ts.URL+"/v1/debug/traces/"+tids[0], nil, http.StatusNotFound)
	fetchTrace(t, ts.URL, tids[2])
}

// TestTraceHeadSampling asserts rate-1 sampling traces every request
// without the force flag.
func TestTraceHeadSampling(t *testing.T) {
	_, ts := testServer(t, Config{TraceSample: 1})
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	_ = apply(t, ts.URL, sid, "and", v0, v0)

	out := mustCall(t, "GET", ts.URL+"/v1/debug/traces", nil, http.StatusOK)
	if sampling, _ := out["sampling"].(bool); !sampling {
		t.Fatal("sampling reported disabled at rate 1")
	}
	traces, _ := out["traces"].([]any)
	// Session create, var, apply — at least three sampled traces.
	if len(traces) < 3 {
		t.Fatalf("rate-1 sampler retained only %d traces", len(traces))
	}
}

// normalizeTrace zeroes everything host- or run-dependent (timestamps,
// durations, global ids) while keeping the structural content the
// golden file locks down: span names, parentage, and the deterministic
// counter attributes.
func normalizeTrace(ex *trace.Exported) {
	ex.TraceID = "t-0000000000000000"
	ex.StartUnixNs = 0
	ex.DurationNs = 0
	for i := range ex.Spans {
		sp := &ex.Spans[i]
		sp.StartUnixNs = 0
		sp.DurationNs = 0
		for j := range sp.Attrs {
			a := &sp.Attrs[j]
			if strings.HasSuffix(a.Key, "_ns") || a.Key == "batch_id" {
				a.Value = 0
			}
		}
	}
}

// TestTraceGoldenExport locks the export schema and the span tree of a
// canonical traced apply against a golden file: stable field ordering,
// stable span names and parentage, and stable values for every
// deterministic counter attribute. Regenerate with UPDATE_GOLDEN=1.
func TestTraceGoldenExport(t *testing.T) {
	_, ts := testServer(t, Config{
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: -1,
	})
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)
	_, tid := tracedApply(t, ts.URL, sid, "and", v0, v1)

	ex := fetchTrace(t, ts.URL, tid)
	normalizeTrace(ex)
	got, err := json.MarshalIndent(ex, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("exported trace deviates from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The golden bytes double as the wire-schema contract: field order
	// comes from the struct, so trace_id must lead and spans must close.
	compact := &bytes.Buffer{}
	if err := json.Compact(compact, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(compact.Bytes(), []byte(`{"trace_id":`)) {
		t.Fatalf("golden does not start with trace_id: %.60s", compact.Bytes())
	}
}

// TestTraceOffCostsNothingVisible asserts the untraced path leaves no
// observable residue: no header, nothing in the ring.
func TestTraceOffCostsNothingVisible(t *testing.T) {
	srv, ts := testServer(t, Config{})
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})
	v0 := mkVar(t, ts.URL, sid, 0, false)

	body, _ := json.Marshal(map[string]any{"op": "and", "f": v0, "g": v0})
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sid+"/apply",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h := resp.Header.Get("X-Bfbdd-Trace"); h != "" {
		t.Fatalf("untraced request got trace header %q", h)
	}
	if n := srv.tracer.Ring().Len(); n != 0 {
		t.Fatalf("untraced workload left %d traces in the ring", n)
	}
}
