package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"bfbdd/internal/wal"
)

// walConfig is the durability configuration the WAL tests run under:
// persistence on, periodic checkpoints off (tests checkpoint explicitly),
// fsync per op so in-process "crashes" (directory copies) lose nothing.
func walConfig(dir string) Config {
	return Config{CheckpointDir: dir, CheckpointInterval: -1, WALSync: "always"}
}

// sigOf fetches a handle's canonical signature over the wire — the
// cross-process equality oracle.
func sigOf(t *testing.T, base, sid string, h uint64) string {
	t.Helper()
	out := mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "signature", "f": h}, http.StatusOK)
	s, _ := out["signature"].(string)
	if s == "" {
		t.Fatalf("no signature in %v", out)
	}
	return s
}

// buildMixedWorkload drives one of every mutating operation through the
// HTTP surface and returns the client's ledger: every acknowledged
// handle mapped to its signature.
func buildMixedWorkload(t *testing.T, base, sid string) map[uint64]string {
	t.Helper()
	v0 := mkVar(t, base, sid, 0, false)
	v1 := mkVar(t, base, sid, 1, false)
	nv2 := mkVar(t, base, sid, 2, true)
	one := handleOf(t, mustCall(t, "POST", base+"/v1/sessions/"+sid+"/const",
		map[string]any{"value": true}, http.StatusOK))
	and := apply(t, base, sid, "and", v0, v1)
	or := apply(t, base, sid, "or", and, nv2)

	bout := mustCall(t, "POST", base+"/v1/sessions/"+sid+"/batch",
		map[string]any{"ops": []map[string]any{
			{"op": "xor", "f": or, "g": v0},
			{"op": "nand", "f": or, "g": v1},
		}}, http.StatusOK)
	bhandles, _ := bout["handles"].([]any)
	if len(bhandles) != 2 {
		t.Fatalf("batch answered %v", bout)
	}
	bx := uint64(bhandles[0].(float64))
	bn := uint64(bhandles[1].(float64))

	ite := handleOf(t, mustCall(t, "POST", base+"/v1/sessions/"+sid+"/ite",
		map[string]any{"f": or, "g": bx, "h": bn}, http.StatusOK))
	not := handleOf(t, mustCall(t, "POST", base+"/v1/sessions/"+sid+"/not",
		map[string]any{"f": ite}, http.StatusOK))
	ex := handleOf(t, mustCall(t, "POST", base+"/v1/sessions/"+sid+"/quantify",
		map[string]any{"kind": "exists", "f": or, "vars": []int{0, 2}}, http.StatusOK))
	re := handleOf(t, mustCall(t, "POST", base+"/v1/sessions/"+sid+"/restrict",
		map[string]any{"f": or, "var": 1, "value": true}, http.StatusOK))
	co := handleOf(t, mustCall(t, "POST", base+"/v1/sessions/"+sid+"/compose",
		map[string]any{"f": or, "var": 0, "g": ex}, http.StatusOK))

	// Free two handles, then collect: both must replay faithfully.
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/free",
		map[string]any{"handles": []uint64{bx, bn}}, http.StatusOK)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/gc", nil, http.StatusOK)

	ledger := make(map[uint64]string)
	for _, h := range []uint64{v0, v1, nv2, one, and, or, ite, not, ex, re, co} {
		ledger[h] = sigOf(t, base, sid, h)
	}
	return ledger
}

// assertRecovered boots a fresh server over a copy of the durability
// directory and checks the session came back with exactly the ledger's
// handles, each carrying the same signature the original acknowledged.
func assertRecovered(t *testing.T, cfg Config, dir, sid string, ledger map[uint64]string) {
	t.Helper()
	cfg2 := cfg
	cfg2.CheckpointDir = copyDurabilityDir(t, dir)
	srv2, ts2 := testServer(t, cfg2)
	_ = srv2
	base2 := ts2.URL

	mustCall(t, "GET", base2+"/v1/sessions/"+sid, nil, http.StatusOK)
	stats := mustCall(t, "GET", base2+"/v1/sessions/"+sid+"/stats", nil, http.StatusOK)
	if n := int(stats["handles"].(float64)); n != len(ledger) {
		t.Fatalf("recovered %d handles, want %d", n, len(ledger))
	}
	for h, want := range ledger {
		if got := sigOf(t, base2, sid, h); got != want {
			t.Errorf("handle %d: signature %s after recovery, want %s", h, got, want)
		}
	}
}

// TestWALTailRecoveryWithoutCheckpoint is the pure-journal path: no
// checkpoint ever ran, so recovery rebuilds the session solely from the
// creation record and the operation tail.
func TestWALTailRecoveryWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	_, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 8})
	ledger := buildMixedWorkload(t, ts.URL, sid)
	if len(ledger) == 0 {
		t.Fatal("empty ledger")
	}
	assertRecovered(t, cfg, dir, sid, ledger)
}

// TestWALCheckpointPlusTailRecovery is the combined path: a checkpoint
// commits mid-history (rotating the log and truncating covered
// segments), more operations follow, and recovery must splice snapshot
// and tail back together.
func TestWALCheckpointPlusTailRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	srv, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 8})

	ledger := make(map[uint64]string)
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)
	a := apply(t, ts.URL, sid, "and", v0, v1)
	for _, h := range []uint64{v0, v1, a} {
		ledger[h] = sigOf(t, ts.URL, sid, h)
	}

	srv.CheckpointNow()
	if latestSnapshot(dir, sid) == "" {
		t.Fatal("checkpoint did not commit")
	}
	// The checkpoint rotated the log; the pre-checkpoint segment is
	// covered and was truncated away.
	segs, err := wal.ListSegments(wal.Dir(dir), sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Base == 0 {
		t.Fatalf("segments after checkpoint = %+v, want one rotated segment", segs)
	}

	// Journal a tail past the checkpoint.
	x := apply(t, ts.URL, sid, "xor", a, v0)
	o := apply(t, ts.URL, sid, "or", x, v1)
	ledger[x] = sigOf(t, ts.URL, sid, x)
	ledger[o] = sigOf(t, ts.URL, sid, o)

	assertRecovered(t, cfg, dir, sid, ledger)
}

// TestWALChainRejectsStaleSnapshot deletes the newest committed snapshot
// out from under its meta sidecar: the sidecar's WAL base now points
// past the best snapshot on disk, and the journal below it was truncated
// — acknowledged history is unreachable. Recovery must refuse the
// session (counting a chain reject) rather than silently serve the stale
// state.
func TestWALChainRejectsStaleSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	srv, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})

	mkVar(t, ts.URL, sid, 0, false)
	srv.CheckpointNow()
	first := latestSnapshot(dir, sid)
	if first == "" {
		t.Fatal("first checkpoint missing")
	}
	mkVar(t, ts.URL, sid, 1, false)
	srv.CheckpointNow()
	second := latestSnapshot(dir, sid)
	if second == "" || second == first {
		t.Fatalf("second checkpoint did not supersede: %q vs %q", first, second)
	}

	crash := copyDurabilityDir(t, dir)
	// The first snapshot was swept by the second commit; resurrect a
	// stale one by renaming the newest away... simplest faithful
	// corruption: delete the newest snapshot. The sidecar still chains
	// from the second checkpoint's sequence.
	if err := os.Remove(latestSnapshot(crash, sid)); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.CheckpointDir = crash
	srv2, ts2 := testServer(t, cfg2)
	mustCall(t, "GET", ts2.URL+"/v1/sessions/"+sid, nil, http.StatusNotFound)
	if got := srv2.metrics.wal.ChainRejects.Load(); got == 0 {
		t.Error("chain reject not counted")
	}
	if got := srv2.metrics.sessionsRecovered.Load(); got != 0 {
		t.Errorf("sessionsRecovered = %d, want 0", got)
	}
}

// TestWALRecoveryHonorsCloseRecord: a journaled close must keep recovery
// from resurrecting the session even when its files survive (the crash
// window between the close ack and the purge).
func TestWALRecoveryHonorsCloseRecord(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	srv, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})
	mkVar(t, ts.URL, sid, 0, false)

	// Stop the server cleanly (files stay), then forge the crash window:
	// append the close record the delete path would have journaled right
	// before the purge that never happened.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	sess := struct{ seq uint64 }{}
	segs, err := wal.ListSegments(wal.Dir(dir), sid)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v err=%v", segs, err)
	}
	for _, sg := range segs {
		st, err := wal.ScanSegmentFile(sg.Path, func(wal.Entry) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if st.LastSeq > sess.seq {
			sess.seq = st.LastSeq
		}
	}
	lg, err := wal.Open(wal.Dir(dir), sid, sess.seq, wal.Options{Policy: wal.SyncAlways, Epoch: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(wal.CloseRec{}); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.CheckpointDir = dir
	_, ts2 := testServer(t, cfg2)
	mustCall(t, "GET", ts2.URL+"/v1/sessions/"+sid, nil, http.StatusNotFound)
}

// TestRestoreEndpointDurability: a session restored from a client
// snapshot is acknowledged only after a synchronous checkpoint, so a
// crash immediately after the 201 must still recover it.
func TestRestoreEndpointDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	_, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)
	a := apply(t, ts.URL, sid, "and", v0, v1)
	wantSig := sigOf(t, ts.URL, sid, a)

	// Export the session and restore it under a fresh id.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sid+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	rout := mustCallRaw(t, ts.URL+"/v1/sessions/restore", snap, http.StatusCreated)
	rinfo, _ := rout["info"].(map[string]any)
	rid, _ := rinfo["session"].(string)
	if rid == "" {
		t.Fatalf("restore answered %v", rout)
	}
	// Mutate the restored session past its restore checkpoint.
	rv := mkVar(t, ts.URL, rid, 2, false)
	rSig := sigOf(t, ts.URL, rid, rv)

	cfg2 := cfg
	cfg2.CheckpointDir = copyDurabilityDir(t, dir)
	_, ts2 := testServer(t, cfg2)
	if got := sigOf(t, ts2.URL, rid, a); got != wantSig {
		t.Errorf("restored handle %d: signature %s, want %s", a, got, wantSig)
	}
	if got := sigOf(t, ts2.URL, rid, rv); got != rSig {
		t.Errorf("post-restore mutation: signature %s, want %s", got, rSig)
	}
}

// TestConcurrentApplyVsCheckpoint races live mutations against
// checkpoint-triggered rotation and truncation (run under -race for the
// interleaving check), then proves recovery sees every acknowledged
// operation regardless of which checkpoint each one landed around.
func TestConcurrentApplyVsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	srv, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 8})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)

	const mutations = 60
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			srv.CheckpointNow()
		}
	}()
	handles := make([]uint64, 0, mutations)
	for i := 0; i < mutations; i++ {
		op := []string{"and", "or", "xor"}[i%3]
		handles = append(handles, apply(t, ts.URL, sid, op, v0, v1))
	}
	wg.Wait()

	ledger := map[uint64]string{v0: sigOf(t, ts.URL, sid, v0), v1: sigOf(t, ts.URL, sid, v1)}
	for _, h := range handles {
		ledger[h] = sigOf(t, ts.URL, sid, h)
	}
	assertRecovered(t, cfg, dir, sid, ledger)
}

// readAll drains a snapshot response.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// mustCallRaw posts an opaque body (a snapshot stream) and decodes the
// JSON response.
func mustCallRaw(t *testing.T, url string, body []byte, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: got %d want %d (%v)", url, resp.StatusCode, wantCode, out)
	}
	return out
}
