//go:build faultinject

package server

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/wal"
)

// TestInjectedKernelPanicPoisonsSession is the containment acceptance
// test: an injected kernel invariant violation inside one session's build
// answers 500, poisons exactly that session (subsequent operations 409,
// still inspectable, deletable), and leaves every other session on the
// server serving normally.
func TestInjectedKernelPanicPoisonsSession(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	srv, ts := testServer(t, Config{})
	base := ts.URL
	a := createSession(t, base, SessionOptions{Vars: 8})
	b := createSession(t, base, SessionOptions{Vars: 8})
	hb := mkVar(t, base, b, 0, false)

	// nil predicate: fires on every MkNode while armed; disarmed right
	// after the one poisoned request.
	faultinject.Arm(faultinject.KernelInvariant, nil)
	code, out := call(t, "POST", base+"/v1/sessions/"+a+"/vars", map[string]any{"index": 0})
	faultinject.Disarm(faultinject.KernelInvariant)
	if code != http.StatusInternalServerError {
		t.Fatalf("injected invariant violation answered %d (%v), want 500", code, out)
	}
	// The response is scrubbed: no stack, no internal detail.
	if msg, _ := out["error"].(string); msg != "internal engine fault" {
		t.Fatalf("500 body leaks internals: %q", msg)
	}

	// The session is poisoned: refused with 409 until deleted.
	out = mustCall(t, "POST", base+"/v1/sessions/"+a+"/vars",
		map[string]any{"index": 1}, http.StatusConflict)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "poisoned") {
		t.Fatalf("409 body does not explain the poisoning: %v", out)
	}
	info := mustCall(t, "GET", base+"/v1/sessions/"+a, nil, http.StatusOK)["info"].(map[string]any)
	if p, _ := info["poisoned"].(bool); !p {
		t.Fatalf("session info does not report poisoned: %v", info)
	}
	if got := srv.metrics.sessionsPoisoned.Load(); got != 1 {
		t.Fatalf("sessionsPoisoned = %d, want 1", got)
	}

	// The other session never noticed.
	apply(t, base, b, "and", hb, mkVar(t, base, b, 1, false))

	// The wreck can be reclaimed, and its id answers 404 afterwards.
	mustCall(t, "DELETE", base+"/v1/sessions/"+a, nil, http.StatusOK)
	mustCall(t, "GET", base+"/v1/sessions/"+a, nil, http.StatusNotFound)
	mkVar(t, base, b, 2, false)
}

// TestCheckpointCrashConsistency fails every stage of the checkpoint
// write path in turn — temp creation, snapshot write, fsync, and each of
// the two commit renames — and proves the invariant the staged-rename
// protocol plus the write-ahead log are designed for: no failure ever
// leaves a torn checkpoint, and no failure loses an acknowledged
// operation. A fresh server pointed at (a copy of) the directory always
// recovers the full mutated handle table: the committed snapshot plus
// the journaled tail, no matter where the checkpoint died.
func TestCheckpointCrashConsistency(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	dir := filepath.Join(t.TempDir(), "cp")
	cfg := Config{CheckpointDir: dir, CheckpointInterval: -1}
	srv, ts := testServer(t, cfg)
	base := ts.URL
	sid := createSession(t, base, SessionOptions{Vars: 16})
	v0 := mkVar(t, base, sid, 0, false)
	v1 := mkVar(t, base, sid, 1, false)
	apply(t, base, sid, "and", v0, v1)
	const baselineHandles = 3

	sess, err := srv.reg.get(sid)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	srv.CheckpointNow()
	if latestSnapshot(dir, sid) == "" {
		t.Fatalf("baseline checkpoint missing")
	}

	// recoveredHandles boots a fresh server process-equivalent on a COPY
	// of the checkpoint directory (the original's WAL segments are still
	// live in this process) and reports the recovered session's handle
	// count, verifying every handle resolves to a live BDD.
	recoveredHandles := func(t *testing.T) int {
		t.Helper()
		cfg2 := cfg
		cfg2.CheckpointDir = copyDurabilityDir(t, dir)
		srv2 := New(cfg2)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv2.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown of recovery server: %v", err)
			}
		}()
		sess2, err := srv2.reg.get(sid)
		if err != nil {
			t.Fatalf("session not recoverable: %v", err)
		}
		var n int
		err = sess2.exec.submit(context.Background(), func(context.Context) error {
			n = len(sess2.handles)
			for h := range sess2.handles {
				if _, err := sess2.bdd(h); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("recovered handle table broken: %v", err)
		}
		return n
	}

	mutations := 0
	for _, tc := range []struct {
		name  string
		point faultinject.Point
		nth   uint64
	}{
		{"create", faultinject.CheckpointCreate, 1},
		{"write", faultinject.CheckpointWrite, 1},
		{"sync", faultinject.CheckpointSync, 1},
		// Rename call 1 commits the snapshot, call 2 the meta sidecar;
		// failing between them is the torn window the rename ordering
		// must survive (new snapshot committed and authoritative — its
		// name carries its sequence — stale sidecar with an older, still
		// chaining base).
		{"rename-snap", faultinject.CheckpointRename, 1},
		{"rename-meta", faultinject.CheckpointRename, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Mutate the live session so a committed checkpoint would
			// differ from the baseline on disk.
			mkVar(t, base, sid, 2+mutations, false)
			mutations++

			faultinject.Reset()
			faultinject.Arm(tc.point, faultinject.FailNth(tc.nth))
			err := srv.ckpt.checkpointSession(sess)
			faultinject.Reset()
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("checkpoint err = %v, want ErrInjected", err)
			}
			if sess.isPoisoned() {
				t.Fatal("checkpoint failure poisoned the session")
			}

			// No torn or leftover state: the directory holds only committed
			// snapshots of this session, its meta sidecar, and the wal/
			// subtree (staged temps are cleaned by the failed attempt
			// itself). A failure between the two renames legitimately
			// leaves TWO committed snapshots — the newest wins, the stale
			// one is swept by the next successful commit.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() && name == "wal" {
					continue
				}
				if id, _, ok := wal.ParseSnapshotName(name); ok && id == sid {
					continue
				}
				if name != sid+metaSuffix {
					t.Fatalf("unexpected file after failed checkpoint: %s", name)
				}
			}

			// Whatever the failure point, recovery loses nothing: the last
			// committed snapshot plus the journaled tail reproduce every
			// acknowledged operation, including the mutations no checkpoint
			// has committed yet.
			if n := recoveredHandles(t); n != baselineHandles+mutations {
				t.Fatalf("recovered %d handles, want %d (baseline %d + %d journaled mutations)",
					n, baselineHandles+mutations, baselineHandles, mutations)
			}
		})
	}

	// The retry loop heals a transient fault by itself: the first attempt
	// fails, the backoff retry commits, and a restart now sees the mutated
	// handle table.
	faultinject.Reset()
	faultinject.Arm(faultinject.CheckpointCreate, faultinject.FailFirst(1))
	retriesBefore := srv.metrics.checkpointRetries.Load()
	if err := srv.ckpt.checkpointWithRetry(sess); err != nil {
		t.Fatalf("retry did not recover from a one-shot fault: %v", err)
	}
	faultinject.Reset()
	if got := srv.metrics.checkpointRetries.Load(); got != retriesBefore+1 {
		t.Fatalf("checkpointRetries = %d, want %d", got, retriesBefore+1)
	}
	if n := recoveredHandles(t); n != baselineHandles+mutations {
		t.Fatalf("recovered %d handles after committed retry, want %d", n, baselineHandles+mutations)
	}
}
