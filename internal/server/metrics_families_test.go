package server

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrapeMetrics fetches /metrics and returns every sample keyed by
// metric family name (label sets and histogram suffixes collapse onto
// their family), with all parsed values per family.
func scrapeMetrics(t *testing.T, base string) map[string][]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics -> %d", resp.StatusCode)
	}
	families := make(map[string][]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "name{labels} value" or "name value".
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("metric %s has non-numeric value in %q: %v", name, line, err)
		}
		// Histogram series roll up into their family so one table row
		// covers bucket/sum/count.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok &&
				(base == "bfbdd_func_eval_batch_size" || base == "bfbdd_http_request_duration_seconds") {
				name = base
			}
		}
		families[name] = append(families[name], v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families
}

// TestMetricsFamiliesComplete runs a scripted workload touching every
// server subsystem and then asserts that every documented bfbdd_*
// family is present on /metrics with sane values — in particular the
// names the README commits to (bfbdd_sessions_recovered_total,
// bfbdd_checkpoints_written_total, bfbdd_checkpoint_errors_total, the
// bfbdd_repl_* group, bfbdd_coalesced_*, and the per-session engine
// counters). The follower-only bfbdd_repl_lag_* pair is exempt: it is
// emitted only when the process runs with -follow.
func TestMetricsFamiliesComplete(t *testing.T) {
	_, ts := testServer(t, Config{
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: -1, // checkpoints only on demand/shutdown
	})

	// Workload: session lifecycle, engine ops (coalesced + batch), GC,
	// queries, a snapshot export, a published artifact, and evals.
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)
	and := apply(t, ts.URL, sid, "and", v0, v1)
	mustCall(t, "POST", ts.URL+"/v1/sessions/"+sid+"/batch", map[string]any{
		"ops": []map[string]any{
			{"op": "or", "f": v0, "g": v1},
			{"op": "xor", "f": v0, "g": v1},
		},
	}, http.StatusOK)
	mustCall(t, "POST", ts.URL+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "satcount", "f": and}, http.StatusOK)
	mustCall(t, "POST", ts.URL+"/v1/sessions/"+sid+"/gc", nil, http.StatusOK)
	mustCall(t, "POST", ts.URL+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "mfam", "handles": []uint64{and}}, http.StatusCreated)
	mustCall(t, "POST", ts.URL+"/v1/funcs/mfam/eval", map[string]any{
		"assignments": [][]bool{
			{true, true, false, false},
			{true, false, false, false},
		},
	}, http.StatusOK)
	mustCall(t, "POST", ts.URL+"/v1/sessions/"+sid+"/free",
		map[string]any{"handle": and}, http.StatusOK)
	// One rejected request so error-path counters have been exercised.
	mustCall(t, "GET", ts.URL+"/v1/sessions/nope", nil, http.StatusNotFound)

	families := scrapeMetrics(t, ts.URL)

	cases := []struct {
		family       string
		wantPositive bool // the workload above guarantees a nonzero value
	}{
		// Server/session lifecycle.
		{"bfbdd_sessions_open", true},
		{"bfbdd_sessions_poisoned", false},
		{"bfbdd_pool_live_bytes", true},
		{"bfbdd_sessions_created_total", true},
		{"bfbdd_sessions_expired_total", false},
		{"bfbdd_sessions_recovered_total", false},
		{"bfbdd_sessions_poisoned_total", false},
		// Memory tiering. The workload runs without a spill dir, so the
		// activity counters exist but stay zero.
		{"bfbdd_pool_resident_bytes", true},
		{"bfbdd_pool_spilled_bytes", false},
		{"bfbdd_sessions_spilled_total", false},
		{"bfbdd_spill_ops_total", false},
		{"bfbdd_unspill_ops_total", false},
		{"bfbdd_spill_prefetch_hits_total", false},
		{"bfbdd_spill_seconds_total", false},
		{"bfbdd_unspill_seconds_total", false},
		// Checkpoints.
		{"bfbdd_checkpoints_written_total", false},
		{"bfbdd_checkpoint_errors_total", false},
		{"bfbdd_checkpoint_failures_total", false},
		{"bfbdd_checkpoint_retries_total", false},
		// Coalescer and admission.
		{"bfbdd_coalesced_batches_total", true},
		{"bfbdd_coalesced_ops_total", true},
		{"bfbdd_http_inflight_requests", false}, // /metrics is outside admission
		{"bfbdd_http_rejected_total", false},
		{"bfbdd_http_rejected_over_budget_total", false},
		// Compiled-function artifacts.
		{"bfbdd_funcs_open", true},
		{"bfbdd_funcs_bytes", true},
		{"bfbdd_funcs_published_total", true},
		{"bfbdd_funcs_recovered_total", false},
		{"bfbdd_funcs_reload_errors_total", false},
		{"bfbdd_funcs_published_bytes_total", true},
		{"bfbdd_func_eval_requests_total", true},
		{"bfbdd_func_eval_assignments_total", true},
		{"bfbdd_func_eval_batch_size", true},
		// Write-ahead log.
		{"bfbdd_wal_appended_records_total", true},
		{"bfbdd_wal_append_errors_total", false},
		{"bfbdd_wal_fsyncs_total", false},
		{"bfbdd_wal_rotations_total", false},
		{"bfbdd_wal_segments_truncated_total", false},
		{"bfbdd_wal_replayed_records_total", false},
		{"bfbdd_wal_torn_tail_discards_total", false},
		{"bfbdd_wal_chain_rejects_total", false},
		{"bfbdd_wal_recovery_seconds", false},
		// Replication (primary side; persistence is on, so the whole
		// group must be exported even with no follower connected).
		{"bfbdd_repl_epoch", false},
		{"bfbdd_repl_writable", true},
		{"bfbdd_repl_followers", false},
		{"bfbdd_repl_batches_shipped_total", false},
		{"bfbdd_repl_bytes_shipped_total", false},
		{"bfbdd_repl_snapshots_served_total", false},
		{"bfbdd_repl_snapshot_bytes_served_total", false},
		{"bfbdd_repl_sync_stalls_total", false},
		{"bfbdd_repl_records_applied_total", false},
		{"bfbdd_repl_bytes_received_total", false},
		{"bfbdd_repl_reconnects_total", false},
		{"bfbdd_repl_bootstraps_total", false},
		{"bfbdd_repl_stale_epoch_refusals_total", false},
		// HTTP route series.
		{"bfbdd_http_requests_total", true},
		{"bfbdd_http_request_duration_seconds", true},
		// Per-session engine counters (the paper's instrumentation).
		{"bfbdd_session_ops_total", true},
		{"bfbdd_session_cache_hits_total", false},
		{"bfbdd_session_terminals_total", true},
		{"bfbdd_session_steals_total", false},
		{"bfbdd_session_stolen_ops_total", false},
		{"bfbdd_session_stalls_total", false},
		{"bfbdd_session_context_pushes_total", false},
		{"bfbdd_session_lock_wait_seconds_total", false},
		{"bfbdd_session_expansion_seconds_total", false},
		{"bfbdd_session_reduction_seconds_total", false},
		{"bfbdd_session_gc_mark_seconds_total", false},
		{"bfbdd_session_gc_fix_seconds_total", false},
		{"bfbdd_session_gc_rehash_seconds_total", false},
		{"bfbdd_session_gc_runs_total", true},
		{"bfbdd_session_peak_bytes", true},
		{"bfbdd_session_mem_bytes", true},
		{"bfbdd_session_eval_threshold", false},
		{"bfbdd_session_budget_forced_gcs_total", false},
		{"bfbdd_session_budget_threshold_drops_total", false},
		{"bfbdd_session_budget_cache_shrinks_total", false},
		{"bfbdd_session_budget_aborts_total", false},
		{"bfbdd_session_budget_spills_total", false},
		{"bfbdd_session_resident_bytes", true},
		{"bfbdd_session_spilled_bytes", false},
		{"bfbdd_session_spilled_levels", false},
		{"bfbdd_session_live_nodes", true},
		{"bfbdd_session_pins", true},
		{"bfbdd_session_handles", true},
	}
	for _, c := range cases {
		vals, ok := families[c.family]
		if !ok {
			t.Errorf("family %s missing from /metrics", c.family)
			continue
		}
		var max float64
		for _, v := range vals {
			if v < 0 {
				t.Errorf("family %s has negative sample %g", c.family, v)
			}
			if v > max {
				max = v
			}
		}
		if c.wantPositive && max == 0 {
			t.Errorf("family %s is all-zero after the workload", c.family)
		}
	}

	// Inverse direction: nothing bfbdd_* shows up on the scrape that the
	// table (and thus the documentation) does not know about. A new
	// metric must land here and in the README together.
	known := make(map[string]bool, len(cases))
	for _, c := range cases {
		known[c.family] = true
	}
	for fam := range families {
		if strings.HasPrefix(fam, "bfbdd_") && !known[fam] {
			t.Errorf("undocumented family %s exported on /metrics; add it to this table and the README", fam)
		}
	}
}
