package server

import (
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"time"
)

// limits is the server-wide admission control: a global in-flight request
// cap (reject with 429 rather than queue — overload sheds instead of
// melting), the per-request deadline, and the panic firewall that turns
// engine validation panics into client errors so bad input can never take
// the process down.
type limits struct {
	slots   chan struct{}
	timeout time.Duration
	m       *metrics
}

func newLimits(cfg Config, m *metrics) *limits {
	return &limits{
		slots:   make(chan struct{}, cfg.MaxInflight),
		timeout: cfg.RequestTimeout,
		m:       m,
	}
}

// admit wraps a handler with the full admission pipeline:
// in-flight cap → per-request deadline → panic firewall.
func (l *limits) admit(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case l.slots <- struct{}{}:
		default:
			l.m.rejectedInflight.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at max in-flight requests")
			return
		}
		l.m.inflight.Add(1)
		defer func() {
			l.m.inflight.Add(-1)
			<-l.slots
		}()

		ctx, cancel := context.WithTimeout(r.Context(), l.timeout)
		defer cancel()
		r = r.WithContext(ctx)

		defer func() {
			if rec := recover(); rec != nil {
				handlePanic(w, r, rec)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// handlePanic converts panics escaping a handler into HTTP errors. The
// engine reports misuse (bad variable index, freed handle, wrong
// assignment length, closed manager …) as "bfbdd:"-prefixed panics; those
// are client errors. Anything else is a server bug: logged with a stack
// and answered 500 — the process itself never dies on a request.
func handlePanic(w http.ResponseWriter, r *http.Request, rec any) {
	if msg, ok := rec.(string); ok && strings.HasPrefix(msg, "bfbdd: ") {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
	writeError(w, http.StatusInternalServerError, "internal error")
}
