package server

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bfbdd"
	"bfbdd/internal/faultinject"
	"bfbdd/internal/snapshot"
	"bfbdd/internal/trace"
	"bfbdd/internal/wal"
)

var (
	errBadRequest      = errors.New("bad request")
	errNoSession       = errors.New("no such session")
	errSessionClosing  = errors.New("session is mid-close")
	errSessionExists   = errors.New("session already exists")
	errTooManySessions = errors.New("session limit reached")
	errServerClosed    = errors.New("server is shutting down")
	errNoHandle        = errors.New("no such handle")
	// errSessionPoisoned marks a session whose engine hit an internal
	// fault: its in-memory state can no longer be trusted, so every
	// subsequent operation is refused until the client deletes it (or
	// restores a fresh session from the last good checkpoint).
	errSessionPoisoned = errors.New("session poisoned by internal engine fault")
)

// SessionOptions is the wire shape of a session-creation request: the
// full option surface of bfbdd.New.
type SessionOptions struct {
	Vars          int     `json:"vars"`
	Engine        string  `json:"engine,omitempty"`         // df|bf|hybrid|pbf|par (default pbf)
	Workers       int     `json:"workers,omitempty"`        // par only
	GCPolicy      string  `json:"gc_policy,omitempty"`      // compact|freelist
	CacheBits     uint    `json:"cache_bits,omitempty"`     // 2^bits compute-cache entries per level
	EvalThreshold int     `json:"eval_threshold,omitempty"` // partial-BF evaluation threshold
	GroupSize     int     `json:"group_size,omitempty"`     // ops per stealable group
	GCGrowth      float64 `json:"gc_growth,omitempty"`
	GCMinNodes    uint64  `json:"gc_min_nodes,omitempty"`
	NoStealing    bool    `json:"no_stealing,omitempty"`
	// MaxNodes / MaxBytes are the session's engine budget (see
	// bfbdd.WithMaxNodes / WithMaxBytes): a build that would exceed them
	// degrades and then aborts with a budget error instead of taking the
	// process down. Both are clamped to the server-wide per-session caps
	// (Config.SessionMaxNodes / SessionMaxBytes), which also apply when
	// the request asks for no budget at all.
	MaxNodes uint64 `json:"max_nodes,omitempty"`
	MaxBytes uint64 `json:"max_bytes,omitempty"`
}

func parseEngine(name string) (bfbdd.Engine, error) {
	switch name {
	case "", "pbf":
		return bfbdd.EnginePBF, nil
	case "df":
		return bfbdd.EngineDF, nil
	case "bf":
		return bfbdd.EngineBF, nil
	case "hybrid":
		return bfbdd.EngineHybrid, nil
	case "par":
		return bfbdd.EnginePar, nil
	}
	return 0, fmt.Errorf("%w: unknown engine %q", errBadRequest, name)
}

// options validates the request against the server's limits and lowers it
// to bfbdd options. Validation happens before any allocation so a
// malformed request cannot cost the server memory.
func (o SessionOptions) options(cfg Config) (engine bfbdd.Engine, opts []bfbdd.Option, err error) {
	if o.Vars <= 0 || o.Vars > cfg.MaxVars {
		return 0, nil, fmt.Errorf("%w: vars %d out of range [1,%d]", errBadRequest, o.Vars, cfg.MaxVars)
	}
	return o.engineOptions(cfg)
}

// engineOptions is options without the Vars check, for the restore path
// where the variable count comes from the snapshot stream (and is
// validated against cfg.MaxVars by peeking the stream header before any
// manager is built).
func (o SessionOptions) engineOptions(cfg Config) (engine bfbdd.Engine, opts []bfbdd.Option, err error) {
	engine, err = parseEngine(o.Engine)
	if err != nil {
		return 0, nil, err
	}
	opts = append(opts, bfbdd.WithEngine(engine))
	if o.Workers != 0 {
		if o.Workers < 0 || o.Workers > cfg.MaxWorkers {
			return 0, nil, fmt.Errorf("%w: workers %d out of range [1,%d]", errBadRequest, o.Workers, cfg.MaxWorkers)
		}
		opts = append(opts, bfbdd.WithWorkers(o.Workers))
	}
	switch o.GCPolicy {
	case "":
	case "compact":
		opts = append(opts, bfbdd.WithGCPolicy(bfbdd.GCCompact))
	case "freelist":
		opts = append(opts, bfbdd.WithGCPolicy(bfbdd.GCFreeList))
	default:
		return 0, nil, fmt.Errorf("%w: unknown gc_policy %q", errBadRequest, o.GCPolicy)
	}
	if o.CacheBits != 0 {
		if o.CacheBits > 24 {
			return 0, nil, fmt.Errorf("%w: cache_bits %d out of range [1,24]", errBadRequest, o.CacheBits)
		}
		opts = append(opts, bfbdd.WithCacheBits(o.CacheBits))
	}
	if o.EvalThreshold != 0 {
		if o.EvalThreshold < 0 {
			return 0, nil, fmt.Errorf("%w: eval_threshold must be positive", errBadRequest)
		}
		opts = append(opts, bfbdd.WithEvalThreshold(o.EvalThreshold))
	}
	if o.GroupSize != 0 {
		if o.GroupSize < 0 {
			return 0, nil, fmt.Errorf("%w: group_size must be positive", errBadRequest)
		}
		opts = append(opts, bfbdd.WithGroupSize(o.GroupSize))
	}
	if o.GCGrowth != 0 {
		if o.GCGrowth < 1 {
			return 0, nil, fmt.Errorf("%w: gc_growth must be > 1", errBadRequest)
		}
		opts = append(opts, bfbdd.WithGCGrowth(o.GCGrowth))
	}
	if o.GCMinNodes != 0 {
		opts = append(opts, bfbdd.WithGCMinNodes(o.GCMinNodes))
	}
	if o.NoStealing {
		opts = append(opts, bfbdd.WithStealing(false))
	}
	// Budgets: the effective limit is the tighter of what the client asked
	// for and the server-wide per-session cap. A cap with no client budget
	// still applies — sessions cannot opt out of the server's ceiling.
	maxNodes := clampBudget(o.MaxNodes, cfg.SessionMaxNodes)
	maxBytes := clampBudget(o.MaxBytes, cfg.SessionMaxBytes)
	if maxNodes != 0 {
		opts = append(opts, bfbdd.WithMaxNodes(maxNodes))
	}
	if maxBytes != 0 {
		opts = append(opts, bfbdd.WithMaxBytes(maxBytes))
	}
	return engine, opts, nil
}

// clampBudget combines a requested budget with a server cap; zero means
// unlimited on both sides.
func clampBudget(req, cap uint64) uint64 {
	switch {
	case cap == 0:
		return req
	case req == 0 || req > cap:
		return cap
	default:
		return req
	}
}

// sessionStats is the snapshot the executor refreshes after every task;
// the metrics endpoint reads it lock-free so a scrape never blocks behind
// a long build.
type sessionStats struct {
	bfbdd.Stats
	Pins    int
	Handles int
}

// session owns one bfbdd.Manager, its wire-visible handle table, its
// serialized executor, and its apply coalescer. The handle table is
// touched only on the executor goroutine.
type session struct {
	id      string
	engine  bfbdd.Engine
	vars    int
	created time.Time

	// opts is the wire request the session was created (or restored)
	// with; the checkpointer persists it as the meta sidecar so recovery
	// rebuilds the session under the same engine configuration.
	opts SessionOptions

	mgr  *bfbdd.Manager
	exec *executor
	coal *coalescer
	m    *metrics

	// wal, when non-nil, is the session's write-ahead operation log:
	// every mutating handler journals its operation (with the wire handle
	// it produced) before acknowledging, so startup recovery can rebuild
	// the session as newest checkpoint + replayed tail. Appends are
	// serialized by the log's own mutex; most come from the executor
	// goroutine, close and publish records from handler goroutines.
	wal *wal.Log

	// ship, when non-nil, runs after every successful journal append with
	// the log's new chain head. The server points it at the replication
	// hub so long-polling followers wake the moment records commit (and,
	// under -wal-sync=always, so the acknowledgment can gate on delivery
	// to every connected follower). Set wherever wal is attached, before
	// the session serves requests.
	ship func(seq uint64)

	// poisoned latches when the engine reports an internal fault (an
	// invariant violation or an unclassifiable panic). A poisoned session
	// keeps serving 409s so the client sees a stable, diagnosable state,
	// is skipped by the checkpointer (its last good checkpoint must stay
	// authoritative), and is only ever reclaimed by an explicit delete or
	// idle expiry. Budget aborts and cancellations do NOT poison: the
	// kernel unwinds those to a consistent, reusable manager.
	poisoned atomic.Bool

	// slowThreshold, when positive, logs a per-phase breakdown of any
	// engine build that takes longer (Config.SlowBuildThreshold). It is
	// independent of trace sampling: slow-build detection works from
	// stats deltas alone, so it catches unsampled requests too.
	slowThreshold time.Duration

	// lastUsed is the unix-nano time of the last request (idle expiry).
	lastUsed atomic.Int64

	// handles maps wire handle IDs to live BDDs; executor goroutine only.
	handles    map[uint64]*bfbdd.BDD
	nextHandle uint64

	snap atomic.Pointer[sessionStats]

	closeOnce sync.Once
}

func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: session id entropy unavailable: " + err.Error())
	}
	return "s-" + hex.EncodeToString(b[:])
}

// validSessionID reports whether id matches the generated format ("s-"
// plus 16 lowercase hex digits). Explicit ids supplied by clients are
// held to the same shape: the checkpointer embeds ids in file names, so
// anything looser (path separators, "..", NULs) must never get that far.
func validSessionID(id string) bool {
	if len(id) != 18 || id[0] != 's' || id[1] != '-' {
		return false
	}
	for i := 2; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

func (s *session) idleSince() time.Time {
	return time.Unix(0, s.lastUsed.Load())
}

// poison latches the session into the poisoned state (idempotent).
func (s *session) poison(cause error) {
	if s.poisoned.CompareAndSwap(false, true) {
		if s.m != nil {
			s.m.sessionsPoisoned.Add(1)
		}
		log.Printf("server: session %s poisoned: %v", s.id, cause)
	}
}

func (s *session) isPoisoned() bool { return s.poisoned.Load() }

// noteFailure classifies a failed task's error and poisons the session
// when the failure implies the engine's in-memory state can no longer be
// trusted:
//
//   - a *bfbdd.InternalError (kernel invariant violation) poisons;
//   - a panic on the executor goroutine poisons, unless it is engine
//     misuse (a "bfbdd: " string — the caller's fault, state intact), a
//     budget abort, or an injected fault (both unwind to a consistent
//     manager by design);
//   - every ordinary service or engine error (bad handle, cancellation,
//     budget exhaustion, queue full, ...) leaves the session healthy.
func (s *session) noteFailure(err error) {
	if err == nil {
		return
	}
	var ie *bfbdd.InternalError
	if errors.As(err, &ie) {
		s.poison(err)
		return
	}
	var pe *panicError
	if !errors.As(err, &pe) {
		return
	}
	if msg, ok := pe.val.(string); ok && strings.HasPrefix(msg, "bfbdd: ") {
		return
	}
	var be *bfbdd.BudgetError
	if errors.As(err, &be) || errors.Is(err, faultinject.ErrInjected) {
		return
	}
	s.poison(err)
}

// refreshStats runs on the executor goroutine after every task.
func (s *session) refreshStats() {
	snap := &sessionStats{
		Stats:   s.mgr.Stats(),
		Pins:    s.mgr.Kernel().NumPins(),
		Handles: len(s.handles),
	}
	s.snap.Store(snap)
}

// stats returns the latest lock-free snapshot.
func (s *session) stats() *sessionStats { return s.snap.Load() }

// bdd resolves a wire handle; executor goroutine only.
func (s *session) bdd(h uint64) (*bfbdd.BDD, error) {
	b, ok := s.handles[h]
	if !ok {
		return nil, fmt.Errorf("%w: handle %d", errNoHandle, h)
	}
	return b, nil
}

// put registers a BDD and returns its wire handle; executor goroutine only.
func (s *session) put(b *bfbdd.BDD) uint64 {
	s.nextHandle++
	s.handles[s.nextHandle] = b
	return s.nextHandle
}

// unput rolls back a put whose journal append failed: the handle was
// never acknowledged, so memory must not get ahead of the log. Executor
// goroutine only; roll back the most recent put first so handle
// numbering rewinds exactly.
func (s *session) unput(h uint64, b *bfbdd.BDD) {
	delete(s.handles, h)
	b.Free()
	if h == s.nextHandle {
		s.nextHandle--
	}
}

// journal appends recs to the session's WAL as one commit group and
// makes them durable per the configured sync policy before returning.
// With no WAL (persistence disabled) it is a no-op.
func (s *session) journal(recs ...wal.Record) error {
	return s.journalT(nil, 0, recs...)
}

// journalCtx is journal with the request trace (if any) extracted from
// ctx, so a traced mutation records its durability cost.
func (s *session) journalCtx(ctx context.Context, recs ...wal.Record) error {
	t, parent := trace.FromContext(ctx)
	return s.journalT(t, parent, recs...)
}

// journalT is journal under an explicit trace: the group-commit append
// (including the policy's fsync) is recorded as a "wal-commit" span and
// the replication gate — commit notification, plus the wait for
// follower delivery under -wal-sync=always — as a "repl-await" span.
// Both spans are children of parent; t may be nil (untraced).
func (s *session) journalT(t *trace.Trace, parent trace.SpanID, recs ...wal.Record) error {
	if s.wal == nil || len(recs) == 0 {
		return nil
	}
	ws := t.Start(parent, "wal-commit")
	err := s.wal.Append(recs...)
	t.End(ws, trace.I("records", int64(len(recs))))
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if s.ship != nil {
		// Seq() may already reflect a racing later append; shipping a
		// higher watermark is harmless (commit notifications are
		// monotonic and the frames behind it are equally durable).
		seq := s.wal.Seq()
		rs := t.Start(parent, "repl-await")
		s.ship(seq)
		t.End(rs, trace.I("seq", int64(seq)))
	}
	return nil
}

// noteSlowBuild logs the phase breakdown of a build that exceeded the
// session's slow-build threshold. before must be the Stats snapshot
// taken just before the build (the caller only takes it when the
// threshold is set). Executor goroutine only.
func (s *session) noteSlowBuild(op string, elapsed time.Duration, before bfbdd.Stats) {
	if s.slowThreshold <= 0 || elapsed < s.slowThreshold {
		return
	}
	after := s.mgr.Stats()
	log.Printf("server: slow build: session=%s op=%s wall=%v shannon_steps=%d cache_hits=%d "+
		"expansion=%v reduction=%v gc_mark=%v gc_fix=%v gc_rehash=%v lock_wait=%v "+
		"steals=%d stalls=%d nodes_delta=%d",
		s.id, op, elapsed.Round(time.Microsecond),
		after.Ops-before.Ops, after.CacheHits-before.CacheHits,
		after.ExpansionTime-before.ExpansionTime, after.ReductionTime-before.ReductionTime,
		after.GCMarkTime-before.GCMarkTime, after.GCFixTime-before.GCFixTime,
		after.GCRehashTime-before.GCRehashTime, after.LockWait-before.LockWait,
		after.Steals-before.Steals, after.Stalls-before.Stalls,
		int64(after.NumNodes)-int64(before.NumNodes))
}

// free releases a wire handle; executor goroutine only.
func (s *session) free(h uint64) error {
	b, ok := s.handles[h]
	if !ok {
		return fmt.Errorf("%w: handle %d", errNoHandle, h)
	}
	delete(s.handles, h)
	b.Free()
	return nil
}

// snapshotTo streams the whole session — every wire handle and the
// manager's variable order — in the bfbdd snapshot format. Executor
// goroutine only. Handles are written in ascending order so identical
// session states serialize byte-identically.
func (s *session) snapshotTo(w io.Writer) error {
	ids := make([]uint64, 0, len(s.handles))
	for h := range s.handles {
		ids = append(ids, h)
	}
	slices.Sort(ids)
	roots := make([]bfbdd.SnapshotRoot, len(ids))
	for i, h := range ids {
		roots[i] = bfbdd.SnapshotRoot{ID: h, B: s.handles[h]}
	}
	return s.mgr.SnapshotRoots(w, roots)
}

// close drains the executor and releases the manager: every pin the
// session created is dropped by Manager.Close, so a closed session can
// never leak nodes. Idempotent.
func (s *session) close() {
	s.closeOnce.Do(func() {
		s.coal.close()
		s.exec.close()
		// The executor goroutine has exited; the handle table and manager
		// are now exclusively ours.
		s.handles = nil
		s.mgr.Close()
		if s.wal != nil {
			if err := s.wal.Close(); err != nil {
				log.Printf("server: closing wal of session %s: %v", s.id, err)
			}
		}
	})
}

// registry is the session pool: creation against the session cap, lookup,
// idle expiry, and shutdown.
type registry struct {
	cfg Config
	m   *metrics

	// onClose, if set, runs after a session is fully closed by an explicit
	// delete or idle expiry (not by server shutdown — a graceful shutdown
	// must leave checkpoints on disk). The checkpointer uses it to remove
	// the session's files.
	onClose func(id string)

	// walCreate, if set, opens a write-ahead log for a freshly created
	// session and journals its creation record before the session is
	// committed; a failure fails the creation (a session the durability
	// layer cannot journal must not be acknowledged).
	walCreate func(s *session) error
	// walAdopt, if set, attaches a fresh write-ahead log to a session
	// restored from a client-supplied snapshot, first purging any stale
	// on-disk state a previous holder of the id left behind. The restored
	// state itself is made durable by the synchronous checkpoint the
	// restore handler takes before acknowledging.
	walAdopt func(s *session) error

	mu       sync.Mutex
	sessions map[string]*session
	// closing holds ids whose close() is still running outside the lock.
	// An id in this set is neither live nor reusable: get() misses it, and
	// create/restore with that explicit id is refused with
	// errSessionClosing rather than racing the teardown. Without it, an
	// idle-expired session could be "resurrected" by a concurrent restore
	// while its manager is mid-Close.
	closing map[string]struct{}
	closed  bool
}

func newRegistry(cfg Config, m *metrics) *registry {
	return &registry{
		cfg:      cfg,
		m:        m,
		sessions: make(map[string]*session),
		closing:  make(map[string]struct{}),
	}
}

func (r *registry) create(o SessionOptions) (*session, error) {
	return r.createAt("", o, true)
}

// createAt is create with an explicit session id (empty generates one);
// startup recovery uses it to rebuild a never-checkpointed session from
// its WAL creation record under the original id. openWAL selects whether
// the walCreate hook runs: live creation journals a fresh log, but
// recovery MUST pass false — opening a log at base zero truncates the
// very segment the recovery is about to replay (the caller attaches the
// log itself, after the replay, at the replayed sequence).
func (r *registry) createAt(id string, o SessionOptions, openWAL bool) (*session, error) {
	engine, opts, err := o.options(r.cfg)
	if err != nil {
		return nil, err
	}
	// Reserve the registry slot before building the manager so a burst of
	// creations cannot overshoot the cap, but allocate outside the lock.
	id, err = r.reserve(id)
	if err != nil {
		return nil, err
	}
	opts = r.spillOpts(opts, id)

	s := &session{
		id:            id,
		engine:        engine,
		vars:          o.Vars,
		opts:          o,
		created:       time.Now(),
		mgr:           bfbdd.New(o.Vars, opts...),
		m:             r.m,
		handles:       make(map[uint64]*bfbdd.BDD),
		slowThreshold: r.cfg.SlowBuildThreshold,
	}
	s.exec = newExecutor(r.cfg.MaxQueuedPerSession, s.refreshStats)
	s.coal = newCoalescer(s, r.cfg, r.m)
	s.touch()
	s.refreshStats()
	if openWAL && r.walCreate != nil {
		if err := r.walCreate(s); err != nil {
			s.close()
			r.release(id)
			return nil, fmt.Errorf("session wal: %w", err)
		}
	}
	if err := r.commit(s); err != nil {
		return nil, err
	}
	return s, nil
}

// commit fills the reserved slot with the finished session, unless the
// registry shut down while the session was being built (closeAll already
// dropped the placeholder, so the session must be torn down here or it
// would outlive the server).
func (r *registry) commit(s *session) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		s.close()
		return errServerClosed
	}
	r.sessions[s.id] = s
	r.mu.Unlock()
	r.m.sessionsCreated.Add(1)
	return nil
}

// reserve claims a registry slot for id (generating one if empty) under
// the session cap, refusing ids that are live or mid-close. The caller
// must either fill the slot or release() it.
func (r *registry) reserve(id string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return "", errServerClosed
	}
	if id == "" {
		id = newSessionID()
	} else {
		if !validSessionID(id) {
			return "", fmt.Errorf("%w: malformed session id %q", errBadRequest, id)
		}
		if _, ok := r.sessions[id]; ok {
			return "", fmt.Errorf("%w: %s", errSessionExists, id)
		}
		if _, ok := r.closing[id]; ok {
			return "", fmt.Errorf("%w: %s", errSessionClosing, id)
		}
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		return "", fmt.Errorf("%w (max %d)", errTooManySessions, r.cfg.MaxSessions)
	}
	r.sessions[id] = nil // placeholder holds the slot
	return id, nil
}

// spillOpts appends the session's per-id spill directory when memory
// tiering is on: every manager owns <SpillDir>/<id> for its level files,
// created lazily by the kernel and removed when the manager closes. The
// id must be reserved first so two sessions can never share a dir.
func (r *registry) spillOpts(opts []bfbdd.Option, id string) []bfbdd.Option {
	if r.cfg.SpillDir == "" {
		return opts
	}
	return append(opts, bfbdd.WithSpillDir(filepath.Join(r.cfg.SpillDir, id)))
}

func (r *registry) release(id string) {
	r.mu.Lock()
	delete(r.sessions, id)
	r.mu.Unlock()
}

// restore builds a session (under the explicit id, if non-empty) from a
// snapshot stream: the variable count and order and every wire handle
// come from the stream, the engine configuration from o. The stream
// header is peeked and vetted against the server's limits before any
// manager memory is committed. attach, when non-nil, runs on the fully
// built session just before it is committed to the registry — the
// client-restore path passes the registry's walAdopt hook (purge stale
// on-disk state, open a fresh log), replication bootstrap opens a log at
// the snapshot's base sequence. Attaching before commit means the
// session is never visible without its log: no goroutine can observe
// s.wal or s.ship being written. Startup recovery passes nil and
// attaches the recovered log itself before serving begins.
func (r *registry) restore(id string, o SessionOptions, src io.Reader, attach func(*session) error) (*session, error) {
	engine, opts, err := o.engineOptions(r.cfg)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(src, snapshot.HeaderSize)
	hb, err := br.Peek(snapshot.HeaderSize)
	if err != nil {
		return nil, fmt.Errorf("%w: short snapshot header: %v", errBadRequest, err)
	}
	hdr, err := snapshot.ParseHeader(hb)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if hdr.NumVars > r.cfg.MaxVars {
		return nil, fmt.Errorf("%w: snapshot has %d vars, server limit is %d",
			errBadRequest, hdr.NumVars, r.cfg.MaxVars)
	}

	id, err = r.reserve(id)
	if err != nil {
		return nil, err
	}
	mgr, roots, err := bfbdd.RestoreManager(br, r.spillOpts(opts, id)...)
	if err != nil {
		r.release(id)
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}

	o.Vars = mgr.NumVars()
	s := &session{
		id:            id,
		engine:        engine,
		vars:          mgr.NumVars(),
		opts:          o,
		created:       time.Now(),
		mgr:           mgr,
		m:             r.m,
		handles:       make(map[uint64]*bfbdd.BDD, len(roots)),
		slowThreshold: r.cfg.SlowBuildThreshold,
	}
	for _, rt := range roots {
		if _, dup := s.handles[rt.ID]; dup {
			mgr.Close()
			r.release(id)
			return nil, fmt.Errorf("%w: duplicate handle %d in snapshot", errBadRequest, rt.ID)
		}
		// nextHandle starts at the largest restored id; an id near the
		// uint64 ceiling would make the next put() wrap to a restored
		// handle and silently replace it. No legitimate snapshot gets
		// anywhere close — handles are allocated sequentially from 1.
		if rt.ID >= 1<<62 {
			mgr.Close()
			r.release(id)
			return nil, fmt.Errorf("%w: handle %d out of range in snapshot", errBadRequest, rt.ID)
		}
		s.handles[rt.ID] = rt.B
		s.nextHandle = max(s.nextHandle, rt.ID)
	}
	s.exec = newExecutor(r.cfg.MaxQueuedPerSession, s.refreshStats)
	s.coal = newCoalescer(s, r.cfg, r.m)
	s.touch()
	s.refreshStats()
	if attach != nil {
		if err := attach(s); err != nil {
			s.close()
			r.release(id)
			return nil, fmt.Errorf("session wal: %w", err)
		}
	}
	if err := r.commit(s); err != nil {
		return nil, err
	}
	return s, nil
}

func (r *registry) get(id string) (*session, error) {
	r.mu.Lock()
	s, ok := r.sessions[id]
	r.mu.Unlock()
	if !ok || s == nil {
		return nil, fmt.Errorf("%w: %s", errNoSession, id)
	}
	return s, nil
}

// list returns the live sessions (stable order not guaranteed).
func (r *registry) list() []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// live reports whether id is a committed session that is neither closing
// nor closed. The checkpointer consults it under its commit lock before
// renaming checkpoint files into place, so a checkpoint that raced a
// delete/expiry is discarded instead of resurrecting the session.
func (r *registry) live(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, closing := r.closing[id]; closing {
		return false
	}
	s, ok := r.sessions[id]
	return ok && s != nil
}

// finish completes a teardown started under the closing set: run the
// close, fire the onClose hook, then retire the id so it becomes
// reusable again.
func (r *registry) finish(s *session) {
	s.close()
	if r.onClose != nil {
		r.onClose(s.id)
	}
	r.mu.Lock()
	delete(r.closing, s.id)
	r.mu.Unlock()
}

// discard removes and closes one session without firing the onClose
// hook: startup recovery uses it to tear down a session whose WAL replay
// failed while leaving the on-disk evidence in place for forensics.
func (r *registry) discard(id string) {
	r.mu.Lock()
	s, ok := r.sessions[id]
	if ok && s != nil {
		delete(r.sessions, id)
		r.closing[id] = struct{}{}
	}
	r.mu.Unlock()
	if !ok || s == nil {
		return
	}
	s.close()
	r.mu.Lock()
	delete(r.closing, id)
	r.mu.Unlock()
}

// closeSession removes and closes one session.
func (r *registry) closeSession(id string) error {
	r.mu.Lock()
	s, ok := r.sessions[id]
	if ok && s != nil {
		delete(r.sessions, id)
		r.closing[id] = struct{}{}
	}
	r.mu.Unlock()
	if !ok || s == nil {
		return fmt.Errorf("%w: %s", errNoSession, id)
	}
	r.finish(s)
	return nil
}

// expireIdle closes sessions idle longer than ttl.
func (r *registry) expireIdle(ttl time.Duration) {
	cutoff := time.Now().Add(-ttl)
	var victims []*session
	r.mu.Lock()
	for id, s := range r.sessions {
		if s != nil && s.idleSince().Before(cutoff) {
			delete(r.sessions, id)
			r.closing[id] = struct{}{}
			victims = append(victims, s)
		}
	}
	r.mu.Unlock()
	for _, s := range victims {
		r.finish(s)
		r.m.sessionsExpired.Add(1)
	}
}

// closeAll shuts every session down, draining queued work. It bypasses
// the closing set and the onClose hook on purpose: closed=true already
// blocks every resurrection path, and a graceful shutdown must leave
// checkpoint files on disk for the next process to recover from.
func (r *registry) closeAll(ctx context.Context) error {
	r.mu.Lock()
	r.closed = true
	all := make([]*session, 0, len(r.sessions))
	for id, s := range r.sessions {
		delete(r.sessions, id)
		if s != nil {
			all = append(all, s)
		}
	}
	r.mu.Unlock()
	for _, s := range all {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.close()
	}
	return nil
}
