package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/url"
	"testing"

	"bfbdd"
)

// emptySessionStream builds a minimal valid snapshot (4 vars, no roots)
// so validation tests fail on the field under test, not on the stream.
func emptySessionStream(t *testing.T) []byte {
	t.Helper()
	m := bfbdd.New(4)
	defer m.Close()
	var buf bytes.Buffer
	if err := m.SnapshotRoots(&buf, nil); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestRestoreRejectsMalformedSessionID pins the explicit-id surface: the
// checkpointer embeds session ids in file names (remove() does
// filepath.Join(dir, id+".snap")), so an id like "../../victim" must be
// refused at the registry before it can name a path — and the HTTP layer
// must surface that as 400, never echo it into file operations.
func TestRestoreRejectsMalformedSessionID(t *testing.T) {
	srv, ts := testServer(t, Config{})
	stream := emptySessionStream(t)

	bad := []string{
		"../../etc/passwd",
		"..",
		"a/b",
		`a\b`,
		"s-0123456789abcdeg",  // non-hex digit
		"s-0123456789abcde",   // too short
		"s-0123456789abcdef0", // too long
		"S-0123456789ABCDEF",  // wrong case
		"plain",
		"s-../../0123456789",
	}
	for _, id := range bad {
		if _, err := srv.reg.restore(id, SessionOptions{}, bytes.NewReader(stream), nil); !errors.Is(err, errBadRequest) {
			t.Errorf("restore(%q): err = %v, want errBadRequest", id, err)
		}
	}

	// Over the wire: a traversal id must come back 400 with no session
	// created.
	resp, err := http.Post(ts.URL+"/v1/sessions/restore?session="+url.QueryEscape("../../victim"),
		"application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal session id: status %d, want 400", resp.StatusCode)
	}
	if n := srv.reg.count(); n != 0 {
		t.Fatalf("traversal session id left %d registry entries", n)
	}

	// A well-formed explicit id is still accepted.
	sess, err := srv.reg.restore("s-00000000deadbeef", SessionOptions{}, bytes.NewReader(stream), nil)
	if err != nil {
		t.Fatalf("restore with well-formed id: %v", err)
	}
	if sess.id != "s-00000000deadbeef" {
		t.Fatalf("restored under id %q", sess.id)
	}
}

// TestRestoreRejectsHugeHandleID: nextHandle starts at the largest
// restored handle id, so a snapshot claiming an id at the uint64 ceiling
// would make the next put() wrap to a restored handle and silently
// replace it. Such snapshots are refused outright.
func TestRestoreRejectsHugeHandleID(t *testing.T) {
	srv := New(Config{})
	defer srv.Shutdown(context.Background())

	m := bfbdd.New(4)
	defer m.Close()
	f := m.Var(0).And(m.Var(1))
	var buf bytes.Buffer
	if err := m.SnapshotRoots(&buf, []bfbdd.SnapshotRoot{{ID: math.MaxUint64, B: f}}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := srv.reg.restore("", SessionOptions{}, bytes.NewReader(buf.Bytes()), nil); !errors.Is(err, errBadRequest) {
		t.Fatalf("restore with handle MaxUint64: err = %v, want errBadRequest", err)
	}
	if n := srv.reg.count(); n != 0 {
		t.Fatalf("rejected restore left %d registry entries", n)
	}
}
