package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// Service-level errors mapped to HTTP statuses by the handlers.
var (
	errSessionClosed = errors.New("session is closed")
	errQueueFull     = errors.New("session queue is full")
)

// panicError carries a panic out of a session task as an ordinary error.
// Tasks run engine calls on the executor goroutine, where a raw panic
// would kill the whole process instead of tripping the HTTP-layer panic
// firewall; the executor converts it here and the handler's error path
// maps it (engine "bfbdd:" misuse → 400, anything else → logged 500).
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprint(e.val) }

// Unwrap exposes a panic value that was itself an error: the kernel's
// typed aborts (budget errors, internal errors, injected faults) travel
// as panics through the plain, non-Ctx engine calls, and errors.As /
// errors.Is classification in the handlers must reach them.
func (e *panicError) Unwrap() error {
	if err, ok := e.val.(error); ok {
		return err
	}
	return nil
}

// task is one unit of serialized session work. fn runs on the executor
// goroutine; ctx is the submitting request's context (deadline included),
// which fn threads into cancellable kernel operations.
type task struct {
	ctx  context.Context
	fn   func(ctx context.Context) error
	err  error
	done chan struct{}
}

// executor serializes all engine access for one session. The bfbdd
// Manager is single-writer by design (the paper's engine parallelizes
// inside one top-level operation, not across them), so the service layer
// pins each session's operations to one goroutine; concurrency across
// sessions comes from each session having its own executor, and
// concurrency within a session comes from the engine's own workers.
//
// The task queue is bounded: a full queue rejects immediately
// (errQueueFull → 429) instead of building an invisible backlog — the
// per-session half of the server's admission control.
type executor struct {
	mu     sync.Mutex
	tasks  chan *task
	closed bool

	// after runs on the executor goroutine after every task (the session
	// uses it to refresh its stats snapshot without racing the engine).
	after func()

	loopDone chan struct{}
}

func newExecutor(queue int, after func()) *executor {
	e := &executor{
		tasks:    make(chan *task, queue),
		after:    after,
		loopDone: make(chan struct{}),
	}
	go e.loop()
	return e
}

func (e *executor) loop() {
	defer close(e.loopDone)
	for t := range e.tasks {
		// A submitter that already gave up (deadline, disconnect) gets its
		// task skipped entirely rather than charged to the session.
		if err := t.ctx.Err(); err != nil {
			t.err = err
			close(t.done)
			continue
		}
		t.err = runTask(t)
		close(t.done)
		if e.after != nil {
			e.after()
		}
	}
}

// runTask executes one task's fn, converting a panic into a panicError.
func runTask(t *task) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &panicError{val: rec, stack: debug.Stack()}
		}
	}()
	return t.fn(t.ctx)
}

// start enqueues fn without waiting for it. A non-nil error means the
// task was rejected and will never run; once accepted, it is guaranteed
// to either run or (if ctx expires before its turn) complete with ctx's
// error.
func (e *executor) start(ctx context.Context, fn func(ctx context.Context) error) (*task, error) {
	t := &task{ctx: ctx, fn: fn, done: make(chan struct{})}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errSessionClosed
	}
	select {
	case e.tasks <- t:
		e.mu.Unlock()
		return t, nil
	default:
		e.mu.Unlock()
		return nil, errQueueFull
	}
}

// submit enqueues fn and waits for it to finish (or for ctx to expire
// while waiting; the task itself still runs and aborts via its own ctx).
func (e *executor) submit(ctx context.Context, fn func(ctx context.Context) error) error {
	t, err := e.start(ctx, fn)
	if err != nil {
		return err
	}
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops intake and waits for the queue to drain: every task already
// accepted still runs (graceful shutdown semantics), then the executor
// goroutine exits. Idempotent.
func (e *executor) close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.tasks)
	}
	e.mu.Unlock()
	<-e.loopDone
}
