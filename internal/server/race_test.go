package server

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bfbdd"
)

// TestExecutorSharedManagerRace has many goroutines driving one session's
// Manager exclusively through the session executor and coalescer —
// building, applying, querying, freeing, and collecting garbage
// concurrently. The Manager itself is single-writer; this test (run under
// -race in CI) proves the serving layer really does serialize all engine
// access while letting the engine's own workers parallelize each batch.
func TestExecutorSharedManagerRace(t *testing.T) {
	srv := New(Config{CoalesceWindow: time.Millisecond})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	const vars = 16
	sess, err := srv.reg.create(SessionOptions{Vars: vars, Engine: "par", Workers: 2})
	if err != nil {
		t.Fatalf("create session: %v", err)
	}

	// Seed a pool of shared operand handles through the executor.
	var seeds []uint64
	err = sess.exec.submit(context.Background(), func(context.Context) error {
		for i := 0; i < vars; i++ {
			seeds = append(seeds, sess.put(sess.mgr.Var(i)))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("seed: %v", err)
	}

	const (
		goroutines = 8
		iters      = 40
	)
	kinds := []bfbdd.BatchOpKind{bfbdd.BatchAnd, bfbdd.BatchOr, bfbdd.BatchXor}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			ctx := context.Background()
			var mine []uint64 // handles this goroutine owns and may free
			for i := 0; i < iters; i++ {
				f := seeds[rng.Intn(len(seeds))]
				h := seeds[rng.Intn(len(seeds))]
				switch i % 5 {
				case 0, 1: // coalesced apply — the contended hot path
					res, err := sess.coal.submit(ctx, kinds[rng.Intn(len(kinds))], f, h)
					if err != nil {
						t.Errorf("g%d apply: %v", g, err)
						return
					}
					mine = append(mine, res.handle)
				case 2: // direct executor batch
					err := sess.exec.submit(ctx, func(ctx context.Context) error {
						bf, err := sess.bdd(f)
						if err != nil {
							return err
						}
						bg, err := sess.bdd(h)
						if err != nil {
							return err
						}
						out, err := sess.mgr.ApplyBatchCtx(ctx, []bfbdd.BatchOp{
							{Kind: bfbdd.BatchXor, F: bf, G: bg},
							{Kind: bfbdd.BatchAnd, F: bf, G: bg},
						})
						if err != nil {
							return err
						}
						for _, b := range out {
							mine = append(mine, sess.put(b))
						}
						return nil
					})
					if err != nil {
						t.Errorf("g%d batch: %v", g, err)
						return
					}
				case 3: // queries + occasional GC
					err := sess.exec.submit(ctx, func(context.Context) error {
						b, err := sess.bdd(f)
						if err != nil {
							return err
						}
						_ = b.Size()
						_, _ = b.AnySat()
						if rng.Intn(8) == 0 {
							sess.mgr.GC()
						}
						return nil
					})
					if err != nil {
						t.Errorf("g%d query: %v", g, err)
						return
					}
				case 4: // free half of what we built; read stats lock-free
					if len(mine) > 4 {
						toFree := mine[:2]
						mine = mine[2:]
						err := sess.exec.submit(ctx, func(context.Context) error {
							for _, fh := range toFree {
								if err := sess.free(fh); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							t.Errorf("g%d free: %v", g, err)
							return
						}
					}
					if st := sess.stats(); st == nil {
						t.Errorf("g%d: nil stats snapshot", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The engine must have done real coalesced work, and the structure must
	// still be internally consistent: cross-check a sample result against a
	// fresh single-threaded manager.
	if srv.metrics.coalescedOps.Load() == 0 {
		t.Fatalf("no ops went through the coalescer")
	}
	ref := bfbdd.New(vars)
	defer ref.Close()
	err = sess.exec.submit(context.Background(), func(context.Context) error {
		a, err := sess.bdd(seeds[0])
		if err != nil {
			return err
		}
		b, err := sess.bdd(seeds[1])
		if err != nil {
			return err
		}
		got := a.Xor(b)
		want := ref.Var(0).Xor(ref.Var(1))
		for trial := 0; trial < 32; trial++ {
			assign := make([]bool, vars)
			for i := range assign {
				assign[i] = trial&(1<<uint(i%8)) != 0 || i*trial%3 == 0
			}
			if got.Eval(assign) != want.Eval(assign) {
				return fmt.Errorf("post-race xor disagrees with reference on %v", assign)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("cross-check: %v", err)
	}
}

// TestExecutorQueueBound checks the per-session admission half: a full
// queue rejects instead of blocking.
func TestExecutorQueueBound(t *testing.T) {
	e := newExecutor(2, nil)
	defer e.close()

	block := make(chan struct{})
	var unblockOnce sync.Once
	unblock := func() { unblockOnce.Do(func() { close(block) }) }
	defer unblock() // keep e.close() from hanging if an assertion fails

	started := make(chan struct{})
	// Occupy the loop goroutine.
	running, err := e.start(context.Background(), func(context.Context) error {
		close(started)
		<-block
		return nil
	})
	if err != nil {
		t.Fatalf("start blocker: %v", err)
	}
	// Wait until the loop has dequeued the blocker so the queue is empty.
	<-started
	// Fill the queue.
	for i := 0; i < 2; i++ {
		if _, err := e.start(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// Next one must be rejected, not queued.
	if _, err := e.start(context.Background(), func(context.Context) error { return nil }); err != errQueueFull {
		t.Fatalf("overflow start: err = %v, want errQueueFull", err)
	}
	unblock()
	<-running.done

	// A task whose submitter's context is already dead gets skipped.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err = e.submit(ctx, func(context.Context) error { ran = true; return nil })
	if err != context.Canceled {
		t.Fatalf("dead-ctx submit: err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatalf("task with dead submitter context was executed")
	}
}
