package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchServer is testServer for benchmarks: same wiring, b-flavored
// cleanup.
func benchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Errorf("Shutdown: %v", err)
		}
	})
	return srv, ts
}

func benchPost(b *testing.B, url string, body string) map[string]any {
	b.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		b.Fatalf("%s -> %d: %v", url, resp.StatusCode, out)
	}
	return out
}

// BenchmarkServerApply measures the end-to-end latency of one /apply
// round trip — the denominator for the WAL's durability-overhead
// budget. The default/* variants run the server as deployed (2ms
// coalesce window), which is the p50 apply latency a client actually
// observes; the interval-policy delta there is the headline overhead
// exported into BENCH_7.json. The raw/* variants floor the coalesce
// window at 1ns to expose the journaling cost on the bare apply path,
// without batching slack — a harsher, secondary number.
func BenchmarkServerApply(b *testing.B) {
	mk := func(window time.Duration, sync string) func(b *testing.B) Config {
		return func(b *testing.B) Config {
			cfg := Config{CoalesceWindow: window}
			if sync != "" {
				cfg.CheckpointDir = b.TempDir()
				cfg.CheckpointInterval = -1
				cfg.WALSync = sync
			}
			return cfg
		}
	}
	// default/spill=on runs with memory tiering configured but never
	// triggered (no idle threshold, no resident cap): the cost of the
	// tiering hooks on the hot apply path, which must stay within noise
	// of default/wal=off.
	spillCfg := func(b *testing.B) Config {
		return Config{CoalesceWindow: 0, SpillDir: b.TempDir()}
	}
	variants := []struct {
		name string
		cfg  func(b *testing.B) Config
	}{
		{"default/wal=off", mk(0, "")},
		{"default/wal=interval", mk(0, "interval")},
		{"default/spill=on", spillCfg},
		{"raw/wal=off", mk(time.Nanosecond, "")},
		{"raw/wal=interval", mk(time.Nanosecond, "interval")},
		{"raw/wal=always", mk(time.Nanosecond, "always")},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			_, ts := benchServer(b, v.cfg(b))
			sout := benchPost(b, ts.URL+"/v1/sessions", `{"vars":16}`)
			sid := sout["session"].(string)
			s := ts.URL + "/v1/sessions/" + sid
			var handles [8]uint64
			for i := range handles {
				hout := benchPost(b, s+"/vars", fmt.Sprintf(`{"index":%d}`, i))
				handles[i] = uint64(hout["handle"].(float64))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := handles[i%len(handles)]
				g := handles[(i+3)%len(handles)]
				benchPost(b, s+"/apply", fmt.Sprintf(`{"op":"xor","f":%d,"g":%d}`, f, g))
			}
		})
	}
}
