package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/retry"
	"bfbdd/internal/wal"
	"bfbdd/internal/walreplay"
)

// Durability file layout, per session, inside Config.CheckpointDir:
//
//	<id>.<seq>.snap      session snapshot: the state after applying every
//	                     WAL record with sequence <= seq
//	<id>.meta.json       the SessionOptions the session was created with,
//	                     plus the WAL base of the newest checkpoint
//	wal/<id>.<base>.wal  write-ahead log segments (bfbdd/internal/wal)
//
// A session's durable state is snapshot base + WAL tail. Checkpoint
// writes are crash-safe: each file is produced as a same-directory temp
// file, fsynced, and moved into place with os.Rename. The snapshot is
// renamed before the meta sidecar, and the snapshot's sequence lives in
// its name — so the newest <id>.<seq>.snap is authoritative no matter
// where a crash lands between the two renames. Recovery restores the
// newest snapshot, checks that the meta sidecar's recorded base does not
// exceed it (a newer sidecar means the matching snapshot is gone — the
// pair does not chain and is refused), then replays WAL records with
// sequence > seq. Rotation happens inside the checkpoint's executor task,
// immediately after the snapshot is produced, so segment boundaries
// coincide exactly with snapshot bases; truncation deletes fully covered
// segments only after the checkpoint commits.
const (
	snapSuffix = ".snap" // also the legacy unversioned name <id>.snap (= seq 0)
	metaSuffix = ".meta.json"
)

// sessionMeta is the sidecar JSON: the wire options the session was
// created with, plus the WAL sequence its newest checkpoint was taken
// at. Sidecars written before the WAL existed carry no wal_base_seq and
// parse as base 0, which chains from any snapshot.
type sessionMeta struct {
	SessionOptions
	WalBaseSeq uint64 `json:"wal_base_seq,omitempty"`
	// Epoch is the replication epoch the checkpoint was taken under.
	// Promotion bumps the epoch and re-checkpoints, so a fenced old
	// primary's sidecars are recognizably stale next to its segments.
	Epoch uint64 `json:"epoch,omitempty"`
}

// checkpointer periodically persists every live session to disk and
// removes the files of sessions that are deleted or expire. It is created
// only when Config.CheckpointDir is set.
type checkpointer struct {
	dir      string
	walDir   string
	walOpts  wal.Options
	interval time.Duration
	reg      *registry
	m        *metrics

	// commitMu serializes the rename-into-place step of checkpointSession
	// against remove. Without it, a session closed between its executor
	// snapshot and the renames would have its files deleted by the onClose
	// hook first and then resurrected by the stale renames, bringing the
	// deleted session back on the next startup.
	commitMu sync.Mutex

	// failing tracks sessions whose last checkpoint round failed after
	// exhausting its retries, so the log carries one line at the first
	// failure and one at recovery instead of a line per interval.
	failingMu sync.Mutex
	failing   map[string]struct{}

	// Replication hooks, all optional (nil outside replicated
	// deployments) and set by the server after newCheckpointer but
	// before recover()/run() starts:
	//
	//	epoch     current replication epoch, stamped into WAL segment
	//	          headers on open/rotate and into meta sidecars
	//	ship      commit notification per journal append, wired into
	//	          recovered sessions (created sessions get it from the
	//	          registry's wal hooks)
	//	minAcked  lowest sequence acked by any connected follower, a
	//	          truncation floor so shipping never races deletion
	//	retention how far behind snapSeq the floor may hold segments
	//	          back (records) before laggards are cut loose
	epoch     func() uint64
	ship      func(sid string, seq uint64)
	minAcked  func(sid string) (uint64, bool)
	retention uint64

	stop chan struct{}
	done chan struct{}
}

// Retry policy for transient checkpoint failures: capped exponential
// backoff with jitter, bounded so one wedged disk cannot stall the
// checkpoint loop for more than a few seconds per session per round.
const (
	checkpointRetryBase = 50 * time.Millisecond
	checkpointRetryCap  = 2 * time.Second
	checkpointAttempts  = 5
)

// errCheckpointSkipped reports that a session was closed between its
// snapshot and the rename commit point; the checkpoint was correctly
// discarded, so it is neither a write nor a failure.
var errCheckpointSkipped = errors.New("session closed mid-checkpoint")

func newCheckpointer(cfg Config, walOpts wal.Options, reg *registry, m *metrics) *checkpointer {
	c := &checkpointer{
		dir:      cfg.CheckpointDir,
		walDir:   wal.Dir(cfg.CheckpointDir),
		walOpts:  walOpts,
		interval: cfg.CheckpointInterval,
		reg:      reg,
		m:        m,
		failing:  make(map[string]struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// A deleted or expired session must not be resurrected by recovery.
	reg.onClose = c.remove
	return c
}

// run is the periodic checkpoint loop; interval <= 0 disables it (only
// explicit CheckpointNow calls and the final shutdown pass write then).
func (c *checkpointer) run() {
	defer close(c.done)
	if c.interval <= 0 {
		<-c.stop
		return
	}
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.checkpointAll()
		}
	}
}

func (c *checkpointer) shutdown() {
	close(c.stop)
	<-c.done
}

// checkpointAll snapshots every live session; one session's failure never
// blocks the others.
func (c *checkpointer) checkpointAll() {
	for _, s := range c.reg.list() {
		if s.isPoisoned() {
			// A poisoned session's in-memory state is suspect; its last
			// good checkpoint on disk stays authoritative.
			continue
		}
		switch err := c.checkpointWithRetry(s); {
		case errors.Is(err, errCheckpointSkipped):
			// Benign race with delete/expiry; the close path owns cleanup.
		case err != nil:
			c.m.checkpointErrors.Add(1)
			c.m.checkpointFailures.Add(1)
			c.noteFailing(s.id, err)
		default:
			c.m.checkpointsWritten.Add(1)
			c.noteRecovered(s.id)
		}
	}
}

// checkpointWithRetry drives one session's checkpoint through the shared
// retry policy: transient failures back off exponentially (with jitter,
// so many sessions hitting the same sick disk don't retry in lockstep)
// up to checkpointAttempts; shutdown aborts the backoff wait
// immediately. The staged-temp-then-rename protocol makes every attempt
// independent — a failed attempt leaves only a temp file (cleaned by its
// own defer), never a torn committed checkpoint.
func (c *checkpointer) checkpointWithRetry(s *session) error {
	attempt := 0
	return retry.Do(c.stop, retry.Policy{
		Base:     checkpointRetryBase,
		Cap:      checkpointRetryCap,
		Attempts: checkpointAttempts,
	}, func() error {
		attempt++
		err := c.checkpointSession(s)
		if errors.Is(err, errCheckpointSkipped) {
			// Benign race with delete/expiry; retrying would only
			// re-discover the session is gone.
			return retry.Permanent(err)
		}
		if err != nil && attempt < checkpointAttempts {
			c.m.checkpointRetries.Add(1)
		}
		return err
	})
}

// noteFailing logs the first failure of a session's checkpoint stream.
func (c *checkpointer) noteFailing(id string, err error) {
	c.failingMu.Lock()
	_, already := c.failing[id]
	if !already {
		c.failing[id] = struct{}{}
	}
	c.failingMu.Unlock()
	if !already {
		log.Printf("server: checkpoint of session %s failing: %v (retrying every interval)", id, err)
	}
}

// noteRecovered logs the end of a session's checkpoint failure streak.
func (c *checkpointer) noteRecovered(id string) {
	c.failingMu.Lock()
	_, was := c.failing[id]
	delete(c.failing, id)
	c.failingMu.Unlock()
	if was {
		log.Printf("server: checkpoint of session %s recovered", id)
	}
}

// checkpointSession writes one session's snapshot + meta sidecar with
// atomic-rename semantics. The snapshot is produced on the session's
// executor, so it sees a quiescent manager; the same executor task
// captures the WAL sequence the snapshot covers and rotates the log, so
// the new segment's base coincides exactly with the snapshot's sequence
// (executor serialization guarantees no append lands in between). File
// finalization happens back on the caller to keep the executor stall
// minimal. Both files are staged as temps first; the renames run under
// commitMu with a registry liveness re-check, so a session deleted or
// expired while its snapshot was being written is discarded
// (errCheckpointSkipped) instead of renamed into place after the onClose
// hook already removed its files. After a successful commit, snapshots
// the new one supersedes and WAL segments it fully covers are deleted.
func (c *checkpointer) checkpointSession(s *session) error {
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointCreate); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(c.dir, "."+s.id+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	var snapSeq uint64
	bw := bufio.NewWriterSize(tmp, 1<<20)
	err = s.exec.submit(context.Background(), func(context.Context) error {
		if s.wal != nil {
			snapSeq = s.wal.Seq()
		}
		if err := s.snapshotTo(bw); err != nil {
			return err
		}
		if s.wal != nil {
			// Rotate here, not after the commit: any append between the
			// snapshot and a later rotation would land in the old segment
			// and be stranded by truncation. A failed rotation is benign —
			// the old segment stays active and recovery just replays a
			// longer tail — so it must not fail the checkpoint.
			if rerr := s.wal.Rotate(); rerr != nil {
				log.Printf("server: wal rotation of session %s failed: %v", s.id, rerr)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointWrite); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointSync); err != nil {
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}

	metaTmp, err := c.writeMetaTemp(s, snapSeq)
	if err != nil {
		return err
	}
	defer os.Remove(metaTmp) // no-op once renamed away

	c.commitMu.Lock()
	unlock := true
	defer func() {
		if unlock {
			c.commitMu.Unlock()
		}
	}()
	if !c.reg.live(s.id) {
		return fmt.Errorf("%w: %s", errCheckpointSkipped, s.id)
	}
	// Each rename has its own fault point call so crash-consistency tests
	// can fail the commit between the snapshot and the sidecar: the
	// snapshot lands first, and its name carries its sequence, so a crash
	// in between leaves the new snapshot authoritative with a stale (but
	// older, therefore chaining) sidecar.
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointRename); err != nil {
			return err
		}
	}
	if err := os.Rename(tmpName, filepath.Join(c.dir, wal.SnapshotName(s.id, snapSeq))); err != nil {
		return err
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointRename); err != nil {
			return err
		}
	}
	if err := os.Rename(metaTmp, filepath.Join(c.dir, s.id+metaSuffix)); err != nil {
		return err
	}
	committed = true // both renames landed; nothing to clean up
	// Superseded snapshots go away under the same commitMu hold, so a
	// concurrent remove() cannot interleave.
	for _, sn := range c.snapshotsFor(s.id) {
		if sn.seq < snapSeq {
			os.Remove(sn.path)
		}
	}
	unlock = false
	c.commitMu.Unlock()

	// The snapshot now covers every record at or below snapSeq; segments
	// that end there are dead weight — except those a connected follower
	// still needs. The truncation point is held back to the slowest
	// follower's acked sequence, bounded by the retention budget so one
	// wedged follower cannot pin segments forever (past the budget it is
	// cut loose and re-bootstraps from a snapshot). Failure is benign
	// (recovery skips covered records), so log and carry on.
	if s.wal != nil {
		trunc := snapSeq
		if c.minAcked != nil {
			if acked, ok := c.minAcked(s.id); ok {
				floor := uint64(0)
				if snapSeq > c.retention {
					floor = snapSeq - c.retention
				}
				if acked < floor {
					acked = floor
				}
				if acked < trunc {
					trunc = acked
				}
			}
		}
		if terr := s.wal.TruncateTo(trunc); terr != nil {
			log.Printf("server: wal truncation of session %s failed: %v", s.id, terr)
		}
	}
	return nil
}

// writeMetaTemp stages the session's meta sidecar as a temp file and
// returns its path; the caller renames it into place (or removes it).
func (c *checkpointer) writeMetaTemp(s *session, snapSeq uint64) (string, error) {
	meta := sessionMeta{SessionOptions: s.opts, WalBaseSeq: snapSeq}
	if c.epoch != nil {
		meta.Epoch = c.epoch()
	}
	data, err := json.Marshal(meta)
	if err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(c.dir, "."+s.id+".meta-*")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	return tmpName, nil
}

// snapFile is one on-disk snapshot of a session.
type snapFile struct {
	path string
	seq  uint64
}

// snapshotsFor lists id's snapshots in ascending sequence order,
// including a legacy unversioned <id>.snap (sequence 0).
func (c *checkpointer) snapshotsFor(id string) []snapFile {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil
	}
	var snaps []snapFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if name == id+snapSuffix {
			snaps = append(snaps, snapFile{path: filepath.Join(c.dir, name)})
			continue
		}
		if sid, seq, ok := wal.ParseSnapshotName(name); ok && sid == id {
			snaps = append(snaps, snapFile{path: filepath.Join(c.dir, name), seq: seq})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	return snaps
}

// purge deletes every durability file of id: snapshots (versioned and
// legacy), the meta sidecar, and all WAL segments.
func (c *checkpointer) purge(id string) {
	for _, sn := range c.snapshotsFor(id) {
		os.Remove(sn.path)
	}
	os.Remove(filepath.Join(c.dir, id+metaSuffix))
	wal.RemoveAll(c.walDir, id)
}

// remove deletes a session's durability files (registry onClose hook).
// It takes commitMu so it cannot interleave with checkpointSession's
// rename commit: either the renames land first and the files are deleted
// here, or the delete lands first and the liveness re-check discards the
// stale checkpoint.
func (c *checkpointer) remove(id string) {
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	c.purge(id)
}

// recover rebuilds sessions from the durability directory at startup:
// newest snapshot first, then the WAL tail replayed on the session's
// executor under the original handle numbering, torn tails discarded.
// Sessions that never reached a checkpoint are rebuilt from their WAL
// alone (the creation record carries the engine configuration). Leftover
// temp files from a crash mid-checkpoint are swept. Individual failures
// are logged and counted, never fatal — a server with one corrupt
// session still starts with the others.
func (c *checkpointer) recover() {
	start := time.Now()
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		log.Printf("server: cannot read checkpoint dir %s: %v", c.dir, err)
		return
	}
	ids := make(map[string]struct{})
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, ".") {
			// Unrenamed temp file: the checkpoint it belonged to never
			// committed.
			os.Remove(filepath.Join(c.dir, name))
			continue
		}
		if id, ok := strings.CutSuffix(name, snapSuffix); ok {
			if sid, _, versioned := wal.ParseSnapshotName(name); versioned {
				id = sid
			}
			if validSessionID(id) {
				ids[id] = struct{}{}
			}
		}
	}
	walIDs, err := wal.SessionIDs(c.walDir)
	if err != nil {
		log.Printf("server: cannot read wal dir %s: %v", c.walDir, err)
	}
	for _, id := range walIDs {
		if validSessionID(id) {
			ids[id] = struct{}{}
		}
	}
	ordered := make([]string, 0, len(ids))
	for id := range ids {
		ordered = append(ordered, id)
	}
	sort.Strings(ordered)
	for _, id := range ordered {
		if err := c.recoverSession(id); err != nil {
			c.m.checkpointErrors.Add(1)
			log.Printf("server: recovery of session %s failed: %v", id, err)
		} else {
			c.m.sessionsRecovered.Add(1)
		}
	}
	c.m.walRecoveryNs.Store(time.Since(start).Nanoseconds())
}

// recoverSession rebuilds one session: restore the newest snapshot (or
// recreate from the WAL creation record), verify the checkpoint/WAL pair
// chains, replay the tail, and attach a live log at the end of the
// replayed history. A replayed close record means the session's deletion
// was acknowledged — it is torn back down instead of resurrected.
func (c *checkpointer) recoverSession(id string) error {
	snaps := c.snapshotsFor(id)
	var base uint64
	var snapPath string
	if n := len(snaps); n > 0 {
		base, snapPath = snaps[n-1].seq, snaps[n-1].path
	}
	meta, metaErr := c.readMeta(id)
	if metaErr == nil && meta.WalBaseSeq > base {
		// The sidecar was written by a checkpoint whose snapshot is gone
		// (deleted, or never landed). Restoring the older snapshot under
		// a WAL whose tail chains from the newer one would silently lose
		// the difference — refuse the pair instead.
		c.m.wal.ChainRejects.Add(1)
		return fmt.Errorf("checkpoint/WAL chain broken: sidecar records base %d, newest snapshot is %d", meta.WalBaseSeq, base)
	}

	var s *session
	if snapPath != "" {
		if metaErr != nil {
			return fmt.Errorf("meta sidecar: %w", metaErr)
		}
		f, err := os.Open(snapPath)
		if err != nil {
			return err
		}
		s, err = c.reg.restore(id, meta.SessionOptions, f, nil)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		// No snapshot: the session is reconstructible only if its WAL
		// reaches back to the creation record.
		opts, err := c.createOptions(id)
		if err != nil {
			return err
		}
		s, err = c.reg.createAt(id, opts, false)
		if err != nil {
			return err
		}
	}

	stats, closed, err := c.replayInto(s, base)
	if err != nil {
		c.reg.discard(id)
		return fmt.Errorf("wal replay: %w", err)
	}
	c.m.wal.Replayed.Add(stats.Replayed)
	c.m.wal.TornTails.Add(uint64(stats.TornTails))
	if stats.Gap {
		// Records beyond the reachable chain exist but cannot be applied:
		// acknowledged history would be silently missing from the
		// recovered state. Refuse, like a broken checkpoint pair.
		c.m.wal.ChainRejects.Add(1)
		c.reg.discard(id)
		return fmt.Errorf("wal chain broken: records reachable only from base %d, replay ends at %d", stats.GapBase, stats.LastSeq)
	}
	if closed {
		// The close was acknowledged; finishing it (and removing the
		// files via onClose) is the correct recovery.
		_ = c.reg.closeSession(id)
		return nil
	}
	o := c.walOpts
	if c.epoch != nil {
		o.Epoch = c.epoch()
	}
	lg, err := wal.Open(c.walDir, id, stats.LastSeq, o, &c.m.wal)
	if err != nil {
		c.reg.discard(id)
		return fmt.Errorf("wal attach: %w", err)
	}
	s.wal = lg
	if c.ship != nil {
		sid := s.id
		s.ship = func(seq uint64) { c.ship(sid, seq) }
	}
	return nil
}

func (c *checkpointer) readMeta(id string) (sessionMeta, error) {
	var meta sessionMeta
	data, err := os.ReadFile(filepath.Join(c.dir, id+metaSuffix))
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return meta, fmt.Errorf("bad meta sidecar: %v", err)
	}
	return meta, nil
}

// errStopScan aborts a WAL scan early once the wanted record was seen.
var errStopScan = errors.New("stop scan")

// createOptions digs the session-creation record (sequence 1) out of the
// WAL for a session that never reached a checkpoint.
func (c *checkpointer) createOptions(id string) (SessionOptions, error) {
	var opts SessionOptions
	found := false
	_, err := wal.ReplayTail(c.walDir, id, 0, func(e wal.Entry) error {
		cr, ok := e.Rec.(wal.CreateRec)
		if !ok {
			return fmt.Errorf("first wal record is %v, want create", e.Rec.Kind())
		}
		if err := json.Unmarshal(cr.Options, &opts); err != nil {
			return fmt.Errorf("bad creation record: %v", err)
		}
		found = true
		return errStopScan
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return opts, err
	}
	if !found {
		return opts, errors.New("no snapshot and no wal creation record")
	}
	return opts, nil
}

// replayInto replays id's WAL records with sequence > base into the
// session's manager and handle table, on the session's executor.
func (c *checkpointer) replayInto(s *session, base uint64) (stats wal.ReplayStats, closed bool, err error) {
	err = s.exec.submit(context.Background(), func(context.Context) error {
		st := &walreplay.State{Mgr: s.mgr, Handles: s.handles, NextHandle: s.nextHandle}
		var ferr error
		stats, ferr = wal.ReplayTail(c.walDir, s.id, base, func(e wal.Entry) error {
			return st.Apply(e.Rec)
		})
		s.nextHandle = st.NextHandle
		closed = st.Closed
		return ferr
	})
	return stats, closed, err
}
