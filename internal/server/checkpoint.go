package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"bfbdd/internal/faultinject"
)

// Checkpoint file layout, per session, inside Config.CheckpointDir:
//
//	<id>.snap       the session snapshot (bfbdd/internal/snapshot format)
//	<id>.meta.json  the SessionOptions the session was created with
//
// Writes are crash-safe: each file is produced as a same-directory temp
// file, fsynced, and moved into place with os.Rename; the meta sidecar is
// renamed before the snapshot so the snapshot rename is the commit point.
// Recovery requires both files — an orphaned sidecar (crash between the
// two renames) leaves the previous snapshot, if any, authoritative.
const (
	snapSuffix = ".snap"
	metaSuffix = ".meta.json"
)

// checkpointer periodically persists every live session to disk and
// removes the files of sessions that are deleted or expire. It is created
// only when Config.CheckpointDir is set.
type checkpointer struct {
	dir      string
	interval time.Duration
	reg      *registry
	m        *metrics

	// commitMu serializes the rename-into-place step of checkpointSession
	// against remove. Without it, a session closed between its executor
	// snapshot and the renames would have its files deleted by the onClose
	// hook first and then resurrected by the stale renames, bringing the
	// deleted session back on the next startup.
	commitMu sync.Mutex

	// failing tracks sessions whose last checkpoint round failed after
	// exhausting its retries, so the log carries one line at the first
	// failure and one at recovery instead of a line per interval.
	failingMu sync.Mutex
	failing   map[string]struct{}

	stop chan struct{}
	done chan struct{}
}

// Retry policy for transient checkpoint failures: capped exponential
// backoff with jitter, bounded so one wedged disk cannot stall the
// checkpoint loop for more than a few seconds per session per round.
const (
	checkpointRetryBase = 50 * time.Millisecond
	checkpointRetryCap  = 2 * time.Second
	checkpointAttempts  = 5
)

// errCheckpointSkipped reports that a session was closed between its
// snapshot and the rename commit point; the checkpoint was correctly
// discarded, so it is neither a write nor a failure.
var errCheckpointSkipped = errors.New("session closed mid-checkpoint")

func newCheckpointer(cfg Config, reg *registry, m *metrics) *checkpointer {
	c := &checkpointer{
		dir:      cfg.CheckpointDir,
		interval: cfg.CheckpointInterval,
		reg:      reg,
		m:        m,
		failing:  make(map[string]struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// A deleted or expired session must not be resurrected by recovery.
	reg.onClose = c.remove
	return c
}

// run is the periodic checkpoint loop; interval <= 0 disables it (only
// explicit CheckpointNow calls and the final shutdown pass write then).
func (c *checkpointer) run() {
	defer close(c.done)
	if c.interval <= 0 {
		<-c.stop
		return
	}
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.checkpointAll()
		}
	}
}

func (c *checkpointer) shutdown() {
	close(c.stop)
	<-c.done
}

// checkpointAll snapshots every live session; one session's failure never
// blocks the others.
func (c *checkpointer) checkpointAll() {
	for _, s := range c.reg.list() {
		if s.isPoisoned() {
			// A poisoned session's in-memory state is suspect; its last
			// good checkpoint on disk stays authoritative.
			continue
		}
		switch err := c.checkpointWithRetry(s); {
		case errors.Is(err, errCheckpointSkipped):
			// Benign race with delete/expiry; the close path owns cleanup.
		case err != nil:
			c.m.checkpointErrors.Add(1)
			c.m.checkpointFailures.Add(1)
			c.noteFailing(s.id, err)
		default:
			c.m.checkpointsWritten.Add(1)
			c.noteRecovered(s.id)
		}
	}
}

// checkpointWithRetry drives one session's checkpoint through the retry
// policy: transient failures back off exponentially (with full jitter, so
// many sessions hitting the same sick disk don't retry in lockstep) up to
// checkpointAttempts; shutdown aborts the backoff wait immediately. The
// staged-temp-then-rename protocol makes every attempt independent — a
// failed attempt leaves only a temp file (cleaned by its own defer), never
// a torn committed checkpoint.
func (c *checkpointer) checkpointWithRetry(s *session) error {
	delay := checkpointRetryBase
	for attempt := 1; ; attempt++ {
		err := c.checkpointSession(s)
		if err == nil || errors.Is(err, errCheckpointSkipped) || attempt == checkpointAttempts {
			return err
		}
		c.m.checkpointRetries.Add(1)
		sleep := delay/2 + rand.N(delay)
		select {
		case <-c.stop:
			return err
		case <-time.After(sleep):
		}
		if delay *= 2; delay > checkpointRetryCap {
			delay = checkpointRetryCap
		}
	}
}

// noteFailing logs the first failure of a session's checkpoint stream.
func (c *checkpointer) noteFailing(id string, err error) {
	c.failingMu.Lock()
	_, already := c.failing[id]
	if !already {
		c.failing[id] = struct{}{}
	}
	c.failingMu.Unlock()
	if !already {
		log.Printf("server: checkpoint of session %s failing: %v (retrying every interval)", id, err)
	}
}

// noteRecovered logs the end of a session's checkpoint failure streak.
func (c *checkpointer) noteRecovered(id string) {
	c.failingMu.Lock()
	_, was := c.failing[id]
	delete(c.failing, id)
	c.failingMu.Unlock()
	if was {
		log.Printf("server: checkpoint of session %s recovered", id)
	}
}

// checkpointSession writes one session's snapshot + meta sidecar with
// atomic-rename semantics. The snapshot itself is produced on the
// session's executor, so it sees a quiescent manager; file finalization
// happens back on the caller to keep the executor stall minimal. Both
// files are staged as temps first; the renames run under commitMu with a
// registry liveness re-check, so a session deleted or expired while its
// snapshot was being written is discarded (errCheckpointSkipped) instead
// of renamed into place after the onClose hook already removed its files.
func (c *checkpointer) checkpointSession(s *session) error {
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointCreate); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(c.dir, "."+s.id+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	bw := bufio.NewWriterSize(tmp, 1<<20)
	err = s.exec.submit(context.Background(), func(context.Context) error {
		return s.snapshotTo(bw)
	})
	if err != nil {
		return err
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointWrite); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointSync); err != nil {
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}

	metaTmp, err := c.writeMetaTemp(s)
	if err != nil {
		return err
	}
	defer os.Remove(metaTmp) // no-op once renamed away

	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	if !c.reg.live(s.id) {
		return fmt.Errorf("%w: %s", errCheckpointSkipped, s.id)
	}
	// Each rename has its own fault point call so crash-consistency tests
	// can fail the commit between the sidecar and the snapshot: that is
	// the torn window the rename ordering is designed to survive.
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointRename); err != nil {
			return err
		}
	}
	if err := os.Rename(metaTmp, filepath.Join(c.dir, s.id+metaSuffix)); err != nil {
		return err
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.CheckpointRename); err != nil {
			return err
		}
	}
	if err := os.Rename(tmpName, filepath.Join(c.dir, s.id+snapSuffix)); err != nil {
		return err
	}
	committed = true // both renames landed; nothing to clean up
	return nil
}

// writeMetaTemp stages the session's meta sidecar as a temp file and
// returns its path; the caller renames it into place (or removes it).
func (c *checkpointer) writeMetaTemp(s *session) (string, error) {
	data, err := json.Marshal(s.opts)
	if err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(c.dir, "."+s.id+".meta-*")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	return tmpName, nil
}

// remove deletes a session's checkpoint files (registry onClose hook).
// It takes commitMu so it cannot interleave with checkpointSession's
// rename commit: either the renames land first and the files are deleted
// here, or the delete lands first and the liveness re-check discards the
// stale checkpoint.
func (c *checkpointer) remove(id string) {
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	os.Remove(filepath.Join(c.dir, id+snapSuffix))
	os.Remove(filepath.Join(c.dir, id+metaSuffix))
}

// recover rebuilds sessions from the checkpoint directory at startup:
// every id with both a meta sidecar and a snapshot is restored under its
// original id and engine configuration. Leftover temp files from a crash
// mid-checkpoint are swept. Individual failures are logged and counted,
// never fatal — a server with a corrupt checkpoint still starts.
func (c *checkpointer) recover() {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		log.Printf("server: cannot read checkpoint dir %s: %v", c.dir, err)
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, ".") {
			// Unrenamed temp file: the checkpoint it belonged to never
			// committed.
			os.Remove(filepath.Join(c.dir, name))
			continue
		}
		id, ok := strings.CutSuffix(name, snapSuffix)
		if !ok {
			continue
		}
		if err := c.recoverSession(id); err != nil {
			c.m.checkpointErrors.Add(1)
			log.Printf("server: recovery of session %s failed: %v", id, err)
		} else {
			c.m.sessionsRecovered.Add(1)
		}
	}
}

func (c *checkpointer) recoverSession(id string) error {
	meta, err := os.ReadFile(filepath.Join(c.dir, id+metaSuffix))
	if err != nil {
		return fmt.Errorf("meta sidecar: %w", err)
	}
	var opts SessionOptions
	if err := json.Unmarshal(meta, &opts); err != nil {
		return fmt.Errorf("bad meta sidecar: %v", err)
	}
	f, err := os.Open(filepath.Join(c.dir, id+snapSuffix))
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = c.reg.restore(id, opts, f)
	return err
}
