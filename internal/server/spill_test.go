package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"bfbdd/internal/node"
)

// blockBytes is the spill/residency granule: one arena block of nodes.
const blockBytes = node.BlockSize * node.NodeBytes

// disjunction builds x0 | x1 | ... | x(vars-1) on a session and returns
// the final handle. On the default pbf engine the result occupies one
// arena block per level, so its resident footprint is vars*blockBytes.
func disjunction(t *testing.T, base, sid string, vars int) uint64 {
	t.Helper()
	acc := mkVar(t, base, sid, 0, false)
	for i := 1; i < vars; i++ {
		acc = apply(t, base, sid, "or", acc, mkVar(t, base, sid, i, false))
	}
	return acc
}

// sessionSpill reads one session's tiering split from its stats route.
func sessionSpill(t *testing.T, base, sid string) (resident, spilled uint64) {
	t.Helper()
	out := mustCall(t, "GET", base+"/v1/sessions/"+sid+"/stats", nil, http.StatusOK)
	r, _ := out["resident_bytes"].(float64)
	s, _ := out["spilled_bytes"].(float64)
	return uint64(r), uint64(s)
}

// satcountOf runs a satcount query and returns the decimal string.
func satcountOf(t *testing.T, base, sid string, h uint64) string {
	t.Helper()
	out := mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "satcount", "f": h}, http.StatusOK)
	s, _ := out["satcount"].(string)
	return s
}

// TestServerSessionMemReport checks that GET /v1/sessions/{sid} carries
// the per-level memory report when tiering is configured, and that the
// report's totals agree with the stats snapshot.
func TestServerSessionMemReport(t *testing.T) {
	_, ts := testServer(t, Config{SpillDir: t.TempDir()})
	const vars = 8
	sid := createSession(t, ts.URL, SessionOptions{Vars: vars})
	disjunction(t, ts.URL, sid, vars)

	out := mustCall(t, "GET", ts.URL+"/v1/sessions/"+sid, nil, http.StatusOK)
	mem, ok := out["mem"].(map[string]any)
	if !ok {
		t.Fatalf("no mem report in %v", out)
	}
	resident, _ := mem["resident_bytes"].(float64)
	if resident == 0 {
		t.Fatal("mem report shows nothing resident after a build")
	}
	levels, ok := mem["levels"].([]any)
	if !ok || len(levels) != vars {
		t.Fatalf("mem report has %d levels, want %d", len(levels), vars)
	}
	for _, l := range levels {
		lm := l.(map[string]any)
		if sp, _ := lm["spilled"].(bool); sp {
			t.Fatalf("level %v spilled without any spill trigger", lm)
		}
	}
}

// TestServerIdleSpill checks the janitor's idle tiering: a session left
// alone past SessionIdleSpill is spilled to disk in the background, and
// the next query transparently reads the spilled levels and still
// answers correctly.
func TestServerIdleSpill(t *testing.T) {
	_, ts := testServer(t, Config{
		SpillDir:         t.TempDir(),
		SessionIdleSpill: 50 * time.Millisecond,
	})
	const vars = 12
	sid := createSession(t, ts.URL, SessionOptions{Vars: vars})
	h := disjunction(t, ts.URL, sid, vars)
	want := satcountOf(t, ts.URL, sid, h) // touches the session; idle clock restarts here

	deadline := time.Now().Add(5 * time.Second)
	var spilled uint64
	for {
		// The stats route does not touch the idle clock, so polling it
		// cannot keep the session hot.
		_, spilled = sessionSpill(t, ts.URL, sid)
		if spilled > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if spilled == 0 {
		t.Fatal("janitor never spilled the idle session")
	}

	if got := satcountOf(t, ts.URL, sid, h); got != want {
		t.Fatalf("satcount over spilled session = %s, want %s", got, want)
	}

	out := mustCall(t, "GET", ts.URL+"/v1/sessions/"+sid+"/stats", nil, http.StatusOK)
	spill, ok := out["spill"].(map[string]any)
	if !ok {
		t.Fatalf("no spill section in stats %v", out)
	}
	if ops, _ := spill["ops"].(float64); ops == 0 {
		t.Fatal("stats spill.ops is zero after an idle spill")
	}
}

// TestServerResidentCapAcceptance is the larger-than-RAM acceptance
// test: N sessions whose combined node bytes exceed MaxResidentBytes by
// at least 2x are built back to back; the resident cap must hold (to
// one level granule) by spilling the coldest sessions, and every
// session — resident or spilled — must still answer applies and evals
// with oracle-verified results.
func TestServerResidentCapAcceptance(t *testing.T) {
	const (
		sessions = 8
		vars     = 24
		capBytes = 8 << 20
	)
	_, ts := testServer(t, Config{
		SpillDir:         t.TempDir(),
		MaxResidentBytes: capBytes,
	})

	sids := make([]string, sessions)
	handles := make([]uint64, sessions)
	for i := range sids {
		sids[i] = createSession(t, ts.URL, SessionOptions{Vars: vars})
		handles[i] = disjunction(t, ts.URL, sids[i], vars)
	}
	// One more allocating request runs the admission-time cap enforcement
	// after the last build's growth.
	mkVar(t, ts.URL, sids[sessions-1], 0, true)

	var resident, spilled uint64
	for _, sid := range sids {
		r, s := sessionSpill(t, ts.URL, sid)
		resident += r
		spilled += s
	}
	total := resident + spilled
	if total < 2*capBytes {
		t.Fatalf("workload too small for the acceptance bar: %d total node bytes, need >= %d",
			total, 2*capBytes)
	}
	if resident > capBytes+blockBytes {
		t.Fatalf("resident pool %d bytes exceeds cap %d by more than one level granule (%d)",
			resident, capBytes, blockBytes)
	}
	if spilled == 0 {
		t.Fatal("nothing spilled despite the pool being over the resident cap")
	}

	// Oracle check on every session, hot or spilled: the disjunction of
	// all vars satisfies every assignment except all-false, so satcount
	// is 2^vars - 1, the all-false eval is false, and any single-true
	// eval is true. Reading a spilled session faults its levels back in
	// transparently.
	wantCount := fmt.Sprint((uint64(1) << vars) - 1)
	for i, sid := range sids {
		if got := satcountOf(t, ts.URL, sid, handles[i]); got != wantCount {
			t.Fatalf("session %d: satcount = %s, want %s", i, got, wantCount)
		}
		assignment := make([]bool, vars)
		out := mustCall(t, "POST", ts.URL+"/v1/sessions/"+sid+"/query",
			map[string]any{"kind": "eval", "f": handles[i], "assignment": assignment}, http.StatusOK)
		if v, _ := out["value"].(bool); v {
			t.Fatalf("session %d: all-false eval = true, want false", i)
		}
		assignment[i%vars] = true
		out = mustCall(t, "POST", ts.URL+"/v1/sessions/"+sid+"/query",
			map[string]any{"kind": "eval", "f": handles[i], "assignment": assignment}, http.StatusOK)
		if v, _ := out["value"].(bool); !v {
			t.Fatalf("session %d: single-true eval = false, want true", i)
		}
	}
}

// TestServerSpillConcurrency drives applies, queries, GCs, stats reads,
// and session-info reads against a tiny resident cap, an aggressive
// idle-spill janitor, and a fast checkpointer, so background spills
// race foreground work and checkpoint serialization on every session.
// Run under -race this is the interleaving suite for
// spill-vs-apply-vs-GC-vs-checkpoint; correctness of answers is checked
// by the oracle tests above, this one is about data races and liveness.
func TestServerSpillConcurrency(t *testing.T) {
	_, ts := testServer(t, Config{
		SpillDir:           t.TempDir(),
		SessionIdleSpill:   30 * time.Millisecond,
		MaxResidentBytes:   blockBytes, // every allocating request spills the coldest sessions
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: 50 * time.Millisecond,
	})
	const (
		sessions = 3
		vars     = 10
		workers  = 4
		opsEach  = 40
	)
	sids := make([]string, sessions)
	for i := range sids {
		sids[i] = createSession(t, ts.URL, SessionOptions{Vars: vars})
		disjunction(t, ts.URL, sids[i], vars)
	}

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sid string, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsEach; i++ {
					switch rng.Intn(5) {
					case 0:
						f := mkVar(t, ts.URL, sid, rng.Intn(vars), rng.Intn(2) == 0)
						g := mkVar(t, ts.URL, sid, rng.Intn(vars), rng.Intn(2) == 0)
						apply(t, ts.URL, sid, "xor", f, g)
					case 1:
						h := mkVar(t, ts.URL, sid, rng.Intn(vars), false)
						satcountOf(t, ts.URL, sid, h)
					case 2:
						mustCall(t, "POST", ts.URL+"/v1/sessions/"+sid+"/gc", nil, http.StatusOK)
					case 3:
						sessionSpill(t, ts.URL, sid)
					case 4:
						mustCall(t, "GET", ts.URL+"/v1/sessions/"+sid, nil, http.StatusOK)
					}
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
					}
				}
			}(sids[s], int64(s*workers+w+1))
		}
	}
	wg.Wait()

	// Every session must end the storm alive and consistent.
	for i, sid := range sids {
		out := mustCall(t, "GET", ts.URL+"/v1/sessions/"+sid, nil, http.StatusOK)
		info := out["info"].(map[string]any)
		if poisoned, _ := info["poisoned"].(bool); poisoned {
			t.Fatalf("session %d poisoned by the spill storm", i)
		}
	}
}
