package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"bfbdd/internal/wal"
)

// TestSnapshotRestoreHTTP exercises the wire surface: build a function in
// one session, snapshot it over HTTP, restore the stream into a new
// session, and check the restored handle computes the same function.
func TestSnapshotRestoreHTTP(t *testing.T) {
	_, ts := testServer(t, Config{})

	out := mustCall(t, "POST", ts.URL+"/v1/sessions", SessionOptions{Vars: 6}, http.StatusCreated)
	sid := out["session"].(string)
	base := ts.URL + "/v1/sessions/" + sid

	// f = (x0 AND x1) XOR x5
	h0 := mustCall(t, "POST", base+"/vars", map[string]any{"index": 0}, http.StatusOK)["handle"]
	h1 := mustCall(t, "POST", base+"/vars", map[string]any{"index": 1}, http.StatusOK)["handle"]
	h5 := mustCall(t, "POST", base+"/vars", map[string]any{"index": 5}, http.StatusOK)["handle"]
	and := mustCall(t, "POST", base+"/apply", map[string]any{"op": "and", "f": h0, "g": h1}, http.StatusOK)["handle"]
	f := mustCall(t, "POST", base+"/apply", map[string]any{"op": "xor", "f": and, "g": h5}, http.StatusOK)["handle"]

	resp, err := http.Post(base+"/snapshot", "", nil)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	stream, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d, err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("snapshot content type %q", ct)
	}

	resp, err = http.Post(ts.URL+"/v1/sessions/restore?engine=df", "application/octet-stream",
		bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	var restored struct {
		Info    sessionInfo `json:"info"`
		Handles []uint64    `json:"handles"`
	}
	if err := jsonDecode(resp, &restored); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore: status %d, err %v", resp.StatusCode, err)
	}
	if restored.Info.Vars != 6 || restored.Info.Engine != "df" {
		t.Fatalf("restored info = %+v", restored.Info)
	}
	if len(restored.Handles) != 5 {
		t.Fatalf("restored handles = %v, want the 5 originals", restored.Handles)
	}
	base2 := ts.URL + "/v1/sessions/" + restored.Info.Session

	// The restored f must agree with the original on every assignment.
	for mask := 0; mask < 64; mask++ {
		a := make([]bool, 6)
		for i := range a {
			a[i] = mask>>i&1 == 1
		}
		q := map[string]any{"kind": "eval", "f": f, "assignment": a}
		want := mustCall(t, "POST", base+"/query", q, http.StatusOK)["value"]
		got := mustCall(t, "POST", base2+"/query", q, http.StatusOK)["value"]
		if got != want {
			t.Fatalf("assignment %06b: restored=%v original=%v", mask, got, want)
		}
	}

	// Restoring under an id that is already live must 409.
	resp, err = http.Post(ts.URL+"/v1/sessions/restore?session="+sid, "application/octet-stream",
		bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("dup restore: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("restore onto live id: status %d, want 409", resp.StatusCode)
	}

	// Garbage must 400 with a typed message, not 500.
	resp, err = http.Post(ts.URL+"/v1/sessions/restore", "application/octet-stream",
		strings.NewReader("definitely not a snapshot stream"))
	if err != nil {
		t.Fatalf("garbage restore: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore: status %d, want 400", resp.StatusCode)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// buildAchilles constructs f = OR of (a_i AND b_i) over pairs pairs with
// all a variables ordered before all b variables — the classic
// order-sensitive function whose BDD has ~2^(pairs+1) nodes, used to push
// a session past the acceptance threshold.
func buildAchilles(t *testing.T, sess *session, pairs int) (handle uint64) {
	t.Helper()
	err := sess.exec.submit(context.Background(), func(context.Context) error {
		m := sess.mgr
		f := m.Zero()
		for i := 0; i < pairs; i++ {
			f = f.Or(m.Var(i).And(m.Var(pairs + i)))
		}
		handle = sess.put(f)
		return nil
	})
	if err != nil {
		t.Fatalf("build achilles: %v", err)
	}
	return handle
}

// TestCheckpointCrashRecovery is the acceptance scenario: a session with
// well over 10^5 live nodes is checkpointed, the server dies without any
// graceful shutdown, and a new server over the same directory recovers
// the session — same id, same handle, bit-identical Eval and SatCount —
// with no more live nodes than before the snapshot.
func TestCheckpointCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a quarter-million-node BDD")
	}
	dir := t.TempDir()
	const pairs = 17 // ~2^18 = 262144 nodes under the a…ab…b order

	srv1 := New(Config{CheckpointDir: dir})
	sess, err := srv1.reg.create(SessionOptions{Vars: 2 * pairs})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := sess.id
	h := buildAchilles(t, sess, pairs)

	var (
		preNodes uint64
		satCount string
		samples  [][]bool
		values   []bool
	)
	rng := rand.New(rand.NewSource(1))
	err = sess.exec.submit(context.Background(), func(context.Context) error {
		b := sess.handles[h]
		preNodes = sess.mgr.NumNodes()
		satCount = b.SatCount().String()
		for i := 0; i < 64; i++ {
			a := make([]bool, 2*pairs)
			for j := range a {
				a[j] = rng.Intn(2) == 0
			}
			samples = append(samples, a)
			values = append(values, b.Eval(a))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("record pre-crash state: %v", err)
	}
	if preNodes < 1e5 {
		t.Fatalf("test function too small: %d live nodes, need >= 1e5", preNodes)
	}

	srv1.CheckpointNow()
	if srv1.metrics.checkpointsWritten.Load() == 0 || srv1.metrics.checkpointErrors.Load() != 0 {
		t.Fatalf("checkpoint counters: written=%d errors=%d",
			srv1.metrics.checkpointsWritten.Load(), srv1.metrics.checkpointErrors.Load())
	}

	// Crash: tear the process state down with no graceful shutdown and no
	// final checkpoint pass — only what CheckpointNow committed survives.
	if err := srv1.reg.closeAll(context.Background()); err != nil {
		t.Fatalf("simulated crash teardown: %v", err)
	}
	close(srv1.janitorStop)
	if srv1.ckpt != nil {
		srv1.ckpt.shutdown()
	}

	srv2 := New(Config{CheckpointDir: dir})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv2.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	if got := srv2.metrics.sessionsRecovered.Load(); got != 1 {
		t.Fatalf("recovered %d sessions, want 1", got)
	}
	sess2, err := srv2.reg.get(id)
	if err != nil {
		t.Fatalf("recovered session not found under original id: %v", err)
	}

	err = sess2.exec.submit(context.Background(), func(context.Context) error {
		b, err := sess2.bdd(h)
		if err != nil {
			return fmt.Errorf("original handle gone: %w", err)
		}
		if got := sess2.mgr.NumNodes(); got > preNodes {
			return fmt.Errorf("restore grew the store: %d > %d live nodes", got, preNodes)
		}
		if got := b.SatCount().String(); got != satCount {
			return fmt.Errorf("SatCount drifted: %s != %s", got, satCount)
		}
		for i, a := range samples {
			if b.Eval(a) != values[i] {
				return fmt.Errorf("Eval(sample %d) drifted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRemovedOnDelete checks the lifecycle hooks: deleting or
// expiring a session removes its checkpoint files so recovery cannot
// resurrect it, while graceful shutdown leaves files in place.
func TestCheckpointRemovedOnDelete(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{CheckpointDir: dir})

	sessA, err := srv.reg.create(SessionOptions{Vars: 4})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	sessB, err := srv.reg.create(SessionOptions{Vars: 4})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	srv.CheckpointNow()

	exists := func(id string) bool {
		return latestSnapshot(dir, id) != ""
	}
	if !exists(sessA.id) || !exists(sessB.id) {
		t.Fatalf("checkpoints missing after CheckpointNow")
	}

	if err := srv.reg.closeSession(sessA.id); err != nil {
		t.Fatalf("close: %v", err)
	}
	if exists(sessA.id) {
		t.Fatalf("deleted session's checkpoint survived")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !exists(sessB.id) {
		t.Fatalf("graceful shutdown removed the checkpoint")
	}

	// A new server recovers only the surviving session.
	srv2 := New(Config{CheckpointDir: dir})
	defer srv2.Shutdown(context.Background())
	if _, err := srv2.reg.get(sessB.id); err != nil {
		t.Fatalf("surviving session not recovered: %v", err)
	}
	if _, err := srv2.reg.get(sessA.id); err == nil {
		t.Fatalf("deleted session came back from the dead")
	}
}

// TestCheckpointCannotResurrectClosedSession pins the checkpoint/delete
// TOCTOU window: a session closed after its executor snapshot completes
// but before the files are renamed into place must NOT have the stale
// checkpoint committed — the onClose deletion is final, and the next
// startup must not recover the session. The window is forced open by
// wedging the executor so the id sits mid-close while a checkpoint runs.
func TestCheckpointCannotResurrectClosedSession(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{CheckpointDir: dir})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	sess, err := srv.reg.create(SessionOptions{Vars: 4})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := sess.id
	srv.CheckpointNow()
	snapPath := latestSnapshot(dir, id)
	if snapPath == "" {
		t.Fatalf("checkpoint missing after CheckpointNow")
	}

	// Wedge the executor so close() blocks draining, holding the id in the
	// closing set while the checkpoint below races it.
	gate := make(chan struct{})
	if _, err := sess.exec.start(context.Background(), func(context.Context) error {
		<-gate
		return nil
	}); err != nil {
		t.Fatalf("gate task: %v", err)
	}
	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.reg.closeSession(id) }()
	for {
		if _, err := srv.reg.get(id); err != nil {
			break
		}
		runtime.Gosched()
	}

	// Checkpoint the session that is now mid-close. If the executor still
	// accepts the snapshot task it runs during the drain — before the
	// onClose hook deletes the files — which is exactly the race: the
	// commit-time liveness re-check must discard the result either way.
	ckptDone := make(chan error, 1)
	go func() { ckptDone <- srv.ckpt.checkpointSession(sess) }()
	close(gate)
	if err := <-closeDone; err != nil {
		t.Fatalf("closeSession: %v", err)
	}
	if err := <-ckptDone; err == nil {
		t.Fatalf("checkpoint of a mid-close session reported success")
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatalf("deleted session's checkpoint resurrected (stat: %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, id+metaSuffix)); !os.IsNotExist(err) {
		t.Fatalf("deleted session's meta sidecar resurrected")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read dir: %v", err)
	}
	for _, e := range entries {
		// The wal/ subdirectory persists (it holds other sessions' logs in
		// general); the deleted session's own files must all be gone.
		if e.Name() != "wal" {
			t.Fatalf("checkpoint dir not clean after discarded checkpoint: %v", entries)
		}
	}
	if segs, _ := os.ReadDir(filepath.Join(dir, "wal")); len(segs) != 0 {
		t.Fatalf("deleted session's wal segments survived: %v", segs)
	}
}

// TestRecoverySurvivesCorruptCheckpoint: a truncated checkpoint must not
// stop the server from starting or from recovering its healthy siblings.
func TestRecoverySurvivesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{CheckpointDir: dir})
	sess, err := srv.reg.create(SessionOptions{Vars: 4})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	srv.CheckpointNow()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Truncate a copy of the good checkpoint under a second id, at the
	// same snapshot sequence its meta sidecar records so the pair chains
	// and recovery reaches the corrupt bytes themselves.
	goodSnap := latestSnapshot(dir, sess.id)
	if goodSnap == "" {
		t.Fatal("no committed snapshot to corrupt")
	}
	good, err := os.ReadFile(goodSnap)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	meta, err := os.ReadFile(filepath.Join(dir, sess.id+metaSuffix))
	if err != nil {
		t.Fatalf("read meta: %v", err)
	}
	var mm struct {
		WalBaseSeq uint64 `json:"wal_base_seq"`
	}
	if err := json.Unmarshal(meta, &mm); err != nil {
		t.Fatalf("parse meta: %v", err)
	}
	badID := "s-c044c044c044c044"
	os.WriteFile(filepath.Join(dir, wal.SnapshotName(badID, mm.WalBaseSeq)), good[:len(good)/2], 0o644)
	os.WriteFile(filepath.Join(dir, badID+metaSuffix), meta, 0o644)
	// And an orphaned temp file from a "crash mid-checkpoint".
	os.WriteFile(filepath.Join(dir, ".s-x.tmp-123"), []byte("partial"), 0o644)

	srv2 := New(Config{CheckpointDir: dir})
	defer srv2.Shutdown(context.Background())
	if _, err := srv2.reg.get(sess.id); err != nil {
		t.Fatalf("healthy session not recovered: %v", err)
	}
	if _, err := srv2.reg.get(badID); err == nil {
		t.Fatalf("corrupt checkpoint produced a session")
	}
	if srv2.metrics.checkpointErrors.Load() == 0 {
		t.Fatalf("corrupt checkpoint not counted as an error")
	}
	if _, err := os.Stat(filepath.Join(dir, ".s-x.tmp-123")); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file not swept")
	}
}
