//go:build faultinject

package server

import (
	"net/http"
	"testing"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/wal"
)

// TestWALAppendFailureRefusesOperation is the write-ahead contract under
// a failing disk: an operation whose journal append fails must be
// refused (500) with its handle rolled back — never acknowledged-but-
// unjournaled — and the session must keep serving once the disk heals.
// Recovery then reproduces exactly the acknowledged operations.
func TestWALAppendFailureRefusesOperation(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	dir := t.TempDir()
	cfg := walConfig(dir)
	srv, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 8})
	v0 := mkVar(t, ts.URL, sid, 0, false)

	// Reset zeroes the per-point call counters (session creation and the
	// first var already visited WALAppend), so FailFirst(1) hits exactly
	// the next append.
	faultinject.Reset()
	faultinject.Arm(faultinject.WALAppend, faultinject.FailFirst(1))
	code, out := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/vars", map[string]any{"index": 1})
	faultinject.Reset()
	if code != http.StatusInternalServerError {
		t.Fatalf("journal-failed op answered %d (%v), want 500", code, out)
	}
	if got := srv.metrics.wal.AppendErrors.Load(); got != 1 {
		t.Fatalf("AppendErrors = %d, want 1", got)
	}

	// The refused operation's handle was rolled back: the next op gets
	// the number the failed one would have had, and the session is not
	// poisoned.
	v1 := mkVar(t, ts.URL, sid, 1, false)
	if v1 != v0+1 {
		t.Fatalf("handle after rollback = %d, want %d", v1, v0+1)
	}
	a := apply(t, ts.URL, sid, "and", v0, v1)
	ledger := map[uint64]string{
		v0: sigOf(t, ts.URL, sid, v0),
		v1: sigOf(t, ts.URL, sid, v1),
		a:  sigOf(t, ts.URL, sid, a),
	}
	assertRecovered(t, cfg, dir, sid, ledger)
}

// TestWALRotateCrashWindow kills the checkpoint's log rotation: the
// snapshot still commits, the un-rotated segment stays active, and a
// crash-restart must lose nothing — recovery replays the journaled tail
// from whichever segment layout the failure left behind.
func TestWALRotateCrashWindow(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	dir := t.TempDir()
	cfg := walConfig(dir)
	srv, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 8})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)

	faultinject.Arm(faultinject.WALRotate, faultinject.FailNth(1))
	srv.CheckpointNow()
	faultinject.Reset()
	if latestSnapshot(dir, sid) == "" {
		t.Fatal("checkpoint did not commit despite benign rotate failure")
	}
	// Rotation failed: the original segment is still the active one.
	segs, err := wal.ListSegments(wal.Dir(dir), sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Base != 0 {
		t.Fatalf("segments after failed rotate = %+v, want the base-0 segment", segs)
	}

	// Mutate past the checkpoint, then crash.
	a := apply(t, ts.URL, sid, "xor", v0, v1)
	ledger := map[uint64]string{
		v0: sigOf(t, ts.URL, sid, v0),
		v1: sigOf(t, ts.URL, sid, v1),
		a:  sigOf(t, ts.URL, sid, a),
	}
	assertRecovered(t, cfg, dir, sid, ledger)
}

// TestWALTruncateCrashWindow kills the post-commit truncation: covered
// segments survive on disk, and recovery must skip their already-
// snapshotted records rather than double-apply or lose anything.
func TestWALTruncateCrashWindow(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	dir := t.TempDir()
	cfg := walConfig(dir)
	srv, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 8})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)

	faultinject.Arm(faultinject.WALTruncate, faultinject.FailNth(1))
	srv.CheckpointNow()
	faultinject.Reset()
	if latestSnapshot(dir, sid) == "" {
		t.Fatal("checkpoint did not commit despite benign truncate failure")
	}
	// Truncation failed mid-checkpoint: the covered pre-checkpoint
	// segment AND the rotated fresh one both remain.
	segs, err := wal.ListSegments(wal.Dir(dir), sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments after failed truncate = %+v, want covered + active", segs)
	}

	a := apply(t, ts.URL, sid, "or", v0, v1)
	ledger := map[uint64]string{
		v0: sigOf(t, ts.URL, sid, v0),
		v1: sigOf(t, ts.URL, sid, v1),
		a:  sigOf(t, ts.URL, sid, a),
	}
	assertRecovered(t, cfg, dir, sid, ledger)

	// The next successful checkpoint sweeps the leftover segment.
	srv.CheckpointNow()
	segs, err = wal.ListSegments(wal.Dir(dir), sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after healed checkpoint = %+v, want just the active one", segs)
	}
}

// TestWALSyncFailureBreaksLog: under -wal-sync=always a failed fsync
// means the group's durability is unknown; the log must latch broken and
// refuse every later operation rather than let acknowledged and
// recoverable state diverge silently.
func TestWALSyncFailureBreaksLog(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	dir := t.TempDir()
	cfg := walConfig(dir)
	_, ts := testServer(t, cfg)
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})
	mkVar(t, ts.URL, sid, 0, false)

	faultinject.Reset() // zero WALSync's counter from earlier appends
	faultinject.Arm(faultinject.WALSync, faultinject.FailFirst(1))
	code, _ := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/vars", map[string]any{"index": 1})
	faultinject.Reset()
	if code != http.StatusInternalServerError {
		t.Fatalf("sync-failed op answered %d, want 500", code)
	}
	// The log is broken: every further mutation is refused even though
	// the fault is gone.
	code, out := call(t, "POST", ts.URL+"/v1/sessions/"+sid+"/vars", map[string]any{"index": 2})
	if code != http.StatusInternalServerError {
		t.Fatalf("op on broken log answered %d (%v), want 500", code, out)
	}
}
