//go:build faultinject

package server

import (
	"net/http"
	"testing"
	"time"

	"bfbdd/internal/faultinject"
)

// TestReplicationShipTornBatchInjected severs the WAL stream mid-batch
// at the shipping fault point: the primary sends only half the frame
// bytes of one batch, cutting inside a frame. The follower must apply
// the intact prefix, back off if nothing parsed, refetch the tail on the
// next poll, and converge to the primary's exact functions — the same
// recovery path a real connection death mid-body exercises.
func TestReplicationShipTornBatchInjected(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	_, ts1 := testServer(t, walConfig(t.TempDir()))
	sid := createSession(t, ts1.URL, SessionOptions{Vars: 8})
	mkVar(t, ts1.URL, sid, 0, false)

	_, ts2 := testServer(t, followConfig(t.TempDir(), ts1.URL))
	waitUntil(t, 30*time.Second, "follower readiness", func() bool {
		return readyzCode(t, ts2.URL) == http.StatusOK
	})

	// Tear the next two non-empty batches, then ship cleanly.
	faultinject.Arm(faultinject.ReplShip, faultinject.FailFirst(2))

	// A burst of acknowledged mutations forms the batches that get torn.
	ledger := map[uint64]string{}
	for i := 1; i < 8; i++ {
		h := mkVar(t, ts1.URL, sid, i, i%2 == 0)
		ledger[h] = sigOf(t, ts1.URL, sid, h)
	}

	for h, want := range ledger {
		h, want := h, want
		waitUntil(t, 30*time.Second, "torn-batch convergence", func() bool {
			c, o := call(t, "POST", ts2.URL+"/v1/sessions/"+sid+"/query",
				map[string]any{"kind": "signature", "f": h})
			s, _ := o["signature"].(string)
			return c == http.StatusOK && s == want
		})
	}
	if faultinject.Fired(faultinject.ReplShip) == 0 {
		t.Fatal("the shipping fault never fired; the test tore nothing")
	}
}
