package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestTraceConcurrentAppliesRace hammers the coalescer with concurrent
// forced-trace applies and then audits every retained trace: valid
// per the export schema, exactly one batch-owner per batch_id, member
// join markers consistent with their owner, no span leaked open, and
// the batch ops attributes accounting for every request exactly once.
// Run under -race this doubles as the data-race check on the trace
// ring, the coalescer's owner handoff, and the kernel's arm/disarm.
func TestTraceConcurrentAppliesRace(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20
		total      = goroutines * perG
	)
	baseline := runtime.NumGoroutine()

	srv := New(Config{
		CoalesceWindow: 3 * time.Millisecond,
		TraceRingSize:  4 * total,
	})
	ts := httptest.NewServer(srv.Handler())

	sid := createSession(t, ts.URL, SessionOptions{Vars: 8})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)

	tids := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := [...]string{"and", "or", "xor"}
			for i := 0; i < perG; i++ {
				body, _ := json.Marshal(map[string]any{
					"op": ops[(g+i)%len(ops)], "f": v0, "g": v1,
				})
				resp, err := http.Post(
					ts.URL+"/v1/sessions/"+sid+"/apply?trace=1",
					"application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("goroutine %d apply %d: %v", g, i, err)
					return
				}
				tid := resp.Header.Get("X-Bfbdd-Trace")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d apply %d: status %d", g, i, resp.StatusCode)
					return
				}
				if tid == "" {
					t.Errorf("goroutine %d apply %d: no trace header", g, i)
					return
				}
				tids[g] = append(tids[g], tid)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every forced trace must have been retained: the ring was sized
	// for the full workload plus the session-setup traces... which were
	// not forced, so the count is exactly the applies.
	if n := srv.tracer.Ring().Len(); n != total {
		t.Fatalf("ring holds %d traces, want %d", n, total)
	}

	type ownerInfo struct {
		ops    int64
		traces int
	}
	owners := make(map[int64]*ownerInfo) // batch_id -> owner batch span info
	members := make(map[int64]int)       // batch_id -> join markers seen
	for g := range tids {
		for _, tid := range tids[g] {
			ex := srv.tracer.Ring().Get(tid)
			if ex == nil {
				t.Fatalf("trace %s fell out of an oversized ring", tid)
			}
			if err := ex.Validate(); err != nil {
				t.Fatalf("trace %s invalid: %v", tid, err)
			}
			for i := range ex.Spans {
				if _, leaked := ex.Spans[i].Attr("unfinished"); leaked {
					t.Fatalf("trace %s span %q force-closed at seal time", tid, ex.Spans[i].Name)
				}
			}
			if ex.FindSpan("queue-wait") == nil {
				t.Fatalf("trace %s missing queue-wait", tid)
			}
			batch, join := ex.FindSpan("batch"), ex.FindSpan("batch-join")
			switch {
			case batch != nil && join == nil:
				id, ok := batch.Attr("batch_id")
				if !ok {
					t.Fatalf("trace %s batch span lacks batch_id", tid)
				}
				if owners[id] != nil {
					t.Fatalf("batch_id %d claimed by two owner traces", id)
				}
				ops, _ := batch.Attr("ops")
				owners[id] = &ownerInfo{ops: ops, traces: 1}
				if ex.FindSpan("kernel-build") == nil {
					t.Fatalf("owner trace %s missing kernel-build", tid)
				}
				if ex.FindSpan("wal-commit") != nil {
					// WAL is off in this config; no stray spans.
					t.Fatalf("owner trace %s has wal-commit without a WAL", tid)
				}
			case join != nil && batch == nil:
				id, ok := join.Attr("batch_id")
				if !ok {
					t.Fatalf("trace %s batch-join lacks batch_id", tid)
				}
				members[id]++
				if ex.FindSpan("kernel-build") != nil {
					t.Fatalf("member trace %s carries a kernel-build", tid)
				}
			default:
				t.Fatalf("trace %s: batch=%v batch-join=%v, want exactly one",
					tid, batch != nil, join != nil)
			}
		}
	}

	var opsSum, ownerCount int64
	for id, o := range owners {
		opsSum += o.ops
		ownerCount++
		if got := int64(members[id]) + 1; got != o.ops {
			t.Errorf("batch %d: owner says ops=%d, traces account for %d", id, o.ops, got)
		}
	}
	for id := range members {
		if owners[id] == nil {
			t.Errorf("batch %d has members but no owner trace", id)
		}
	}
	if opsSum != total {
		t.Fatalf("owner batches account for %d ops, want %d", opsSum, total)
	}
	if batches := int64(srv.metrics.coalescedBatches.Load()); batches != ownerCount {
		t.Fatalf("coalescedBatches metric = %d, owner batch spans = %d", batches, ownerCount)
	}

	// Shut down and confirm the tracing machinery leaked no goroutines:
	// the tracer is hook-based (no background collector), so the count
	// must return to the pre-server baseline.
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > baseline %d after shutdown\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
