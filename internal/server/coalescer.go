package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bfbdd"
	"bfbdd/internal/trace"
	"bfbdd/internal/wal"
)

// applyResult carries one coalesced operation's outcome back to its
// waiting request.
type applyResult struct {
	handle uint64
	nodes  int
	err    error
}

// applyCall is one client apply waiting to be batched.
type applyCall struct {
	kind bfbdd.BatchOpKind
	f, g uint64 // wire handles, resolved on the executor goroutine
	resp chan applyResult

	// tr/parent carry the submitting request's trace (nil when the
	// request is unsampled); enq is when the call joined the forming
	// batch, the start of its queue-wait span.
	tr     *trace.Trace
	parent trace.SpanID
	enq    time.Time
}

// coalescer gathers independent binary applies that arrive within a short
// window and drives them through the engine's batch path as ONE top-level
// unit — the serving-layer realization of the paper's §4.1 usage mode
// ("users queue a set of top level operations"): with EnginePar the batch
// is seeded round-robin across the workers and work stealing balances the
// remainder, so concurrent client requests become intra-batch parallelism
// instead of a lock convoy. The window opens when the first apply arrives
// and closes CoalesceWindow later (or immediately at CoalesceMaxBatch);
// the flush runs as a single executor task.
type coalescer struct {
	sess    *session
	m       *metrics
	window  time.Duration
	maxOps  int
	timeout time.Duration

	mu      sync.Mutex
	pending []*applyCall
	timer   *time.Timer
	closed  bool
}

func newCoalescer(s *session, cfg Config, m *metrics) *coalescer {
	return &coalescer{
		sess:    s,
		m:       m,
		window:  cfg.CoalesceWindow,
		maxOps:  cfg.CoalesceMaxBatch,
		timeout: cfg.RequestTimeout,
	}
}

// submit queues one apply and waits for its batch to flush through the
// engine. ctx bounds only this caller's wait; the batch build itself runs
// under the flush task's deadline so one abandoned request cannot cancel
// its batch-mates' work.
func (c *coalescer) submit(ctx context.Context, kind bfbdd.BatchOpKind, f, g uint64) (applyResult, error) {
	call := &applyCall{kind: kind, f: f, g: g, resp: make(chan applyResult, 1)}
	if tr, parent := trace.FromContext(ctx); tr != nil {
		call.tr, call.parent, call.enq = tr, parent, time.Now()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return applyResult{}, errSessionClosed
	}
	c.pending = append(c.pending, call)
	n := len(c.pending)
	if n == 1 && c.window > 0 {
		c.timer = time.AfterFunc(c.window, c.flush)
	}
	full := n >= c.maxOps
	c.mu.Unlock()
	if full || c.window <= 0 {
		c.flush()
	}
	select {
	case res := <-call.resp:
		return res, res.err
	case <-ctx.Done():
		return applyResult{}, ctx.Err()
	}
}

// flush takes the pending calls and submits them as one executor task.
func (c *coalescer) flush() {
	c.mu.Lock()
	calls := c.pending
	c.pending = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.mu.Unlock()
	if len(calls) == 0 {
		return
	}

	// The batch runs under its own deadline, decoupled from any single
	// waiter (one abandoned request must not cancel its batch-mates'
	// work): the deadline starts when the batch reaches the engine and is
	// plumbed through ApplyBatchCtx into the kernel's cancellable build
	// checks. The flush task itself always answers every call; only an
	// outright rejection (queue full, session closed) is reported here.
	_, err := c.sess.exec.start(context.Background(), func(context.Context) error {
		bctx, cancel := context.WithTimeout(context.Background(), c.timeout)
		defer cancel()
		c.runBatch(bctx, calls)
		return nil
	})
	if err != nil {
		for _, call := range calls {
			call.resp <- applyResult{err: err}
		}
	}
}

// runBatch executes one coalesced batch on the executor goroutine:
// resolve handles, ApplyBatchCtx, register results.
//
// Trace shape: every traced call gets a "queue-wait" span covering the
// interval from submit to the batch reaching the executor. The first
// traced call owns the batch — its trace carries the "batch" span
// under which the kernel build and the WAL commit record their child
// spans — and every other traced call gets a "batch-join" marker
// instead; all of them share a batch_id attribute, so an exported
// member trace can be correlated with the owner's full breakdown.
func (c *coalescer) runBatch(ctx context.Context, calls []*applyCall) {
	var (
		owner     *applyCall
		batchSpan trace.SpanID
		batchID   int64
	)
	started := time.Now()
	for _, call := range calls {
		if call.tr == nil {
			continue
		}
		call.tr.Add(call.parent, "queue-wait", call.enq, started)
		if owner == nil {
			owner = call
			batchID = int64(trace.NextBatchID())
			batchSpan = call.tr.Start(call.parent, "batch")
		} else {
			call.tr.Add(call.parent, "batch-join", started, started,
				trace.I("batch_id", batchID))
		}
	}
	if owner != nil {
		ctx = trace.NewContext(ctx, owner.tr, batchSpan)
		defer func() {
			owner.tr.End(batchSpan,
				trace.I("batch_id", batchID), trace.I("ops", int64(len(calls))))
		}()
	}

	ops := make([]bfbdd.BatchOp, 0, len(calls))
	live := make([]*applyCall, 0, len(calls))
	for _, call := range calls {
		f, errF := c.sess.bdd(call.f)
		if errF != nil {
			call.resp <- applyResult{err: errF}
			continue
		}
		g, errG := c.sess.bdd(call.g)
		if errG != nil {
			call.resp <- applyResult{err: errG}
			continue
		}
		ops = append(ops, bfbdd.BatchOp{Kind: call.kind, F: f, G: g})
		live = append(live, call)
	}
	if len(live) == 0 {
		return
	}
	var before bfbdd.Stats
	if c.sess.slowThreshold > 0 {
		before = c.sess.mgr.Stats()
	}
	results, err := c.sess.mgr.ApplyBatchCtx(ctx, ops)
	c.sess.noteSlowBuild("apply", time.Since(started), before)
	if err != nil {
		c.sess.noteFailure(err)
		err = fmt.Errorf("batch build aborted: %w", err)
		// A partially completed batch (budget abort, injected fault) still
		// produced some results; their callers get real handles — which
		// means those operations are acknowledged and must hit the journal
		// first, as one commit group. If the journal refuses, every caller
		// sees the failure and the puts are rolled back.
		var recs []wal.ApplyRec
		var kept []*bfbdd.BDD
		var keptIdx []int
		for i, b := range results {
			if b == nil {
				continue
			}
			h := c.sess.put(b)
			recs = append(recs, wal.ApplyRec{Op: uint8(live[i].kind), F: live[i].f, G: live[i].g, Handle: h})
			kept = append(kept, b)
			keptIdx = append(keptIdx, i)
		}
		if jerr := journalAppliesT(c.sess, ownerTrace(owner), batchSpan, recs); jerr != nil {
			for i := len(kept) - 1; i >= 0; i-- {
				c.sess.unput(recs[i].Handle, kept[i])
			}
			for _, call := range live {
				call.resp <- applyResult{err: jerr}
			}
			return
		}
		done := make(map[int]int, len(keptIdx)) // live index -> recs index
		for ri, i := range keptIdx {
			done[i] = ri
		}
		for i, call := range live {
			if ri, ok := done[i]; ok {
				call.resp <- applyResult{handle: recs[ri].Handle, nodes: kept[ri].Size()}
				continue
			}
			call.resp <- applyResult{err: err}
		}
		return
	}
	handles := make([]uint64, len(live))
	recs := make([]wal.ApplyRec, len(live))
	for i, call := range live {
		handles[i] = c.sess.put(results[i])
		recs[i] = wal.ApplyRec{Op: uint8(call.kind), F: call.f, G: call.g, Handle: handles[i]}
	}
	if jerr := journalAppliesT(c.sess, ownerTrace(owner), batchSpan, recs); jerr != nil {
		for i := len(live) - 1; i >= 0; i-- {
			c.sess.unput(handles[i], results[i])
		}
		for _, call := range live {
			call.resp <- applyResult{err: jerr}
		}
		return
	}
	c.m.coalescedBatches.Add(1)
	c.m.coalescedOps.Add(uint64(len(live)))
	for i, call := range live {
		call.resp <- applyResult{handle: handles[i], nodes: results[i].Size()}
	}
}

// ownerTrace returns the owning call's trace, nil when the batch has no
// traced member.
func ownerTrace(owner *applyCall) *trace.Trace {
	if owner == nil {
		return nil
	}
	return owner.tr
}

// close rejects future submits and fails any batch still forming. Queued
// flush tasks already in the executor drain normally.
func (c *coalescer) close() {
	c.mu.Lock()
	c.closed = true
	calls := c.pending
	c.pending = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.mu.Unlock()
	for _, call := range calls {
		call.resp <- applyResult{err: errSessionClosed}
	}
}
