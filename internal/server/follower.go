package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"bfbdd"
	"bfbdd/internal/replication"
	"bfbdd/internal/retry"
	"bfbdd/internal/wal"
	"bfbdd/internal/walreplay"
)

// The follower side of hot-standby replication: a reconcile loop that
// mirrors the primary's session set and published functions, plus one
// puller goroutine per session that bootstraps from a snapshot and then
// applies the streamed WAL tail into the live read-only session. The
// primary-side endpoints it consumes live in repl.go.

// replPrimarySilence is how long the reconcile loop may fail to reach
// the primary before /readyz reports the follower unready.
const replPrimarySilence = 15 * time.Second

// Follower reconnect backoff (shared shape with the checkpointer's
// retry policy, via internal/retry).
const (
	followRetryBase = 100 * time.Millisecond
	followRetryCap  = 5 * time.Second
	followInterval  = time.Second // reconcile cadence when healthy
	followPollWait  = 10 * time.Second
)

// Typed puller outcomes that change the loop's shape rather than just
// triggering a backoff.
var (
	// errReplDiverged means the local copy no longer chains onto the
	// primary's stream (sequence gap, failed apply, failed append):
	// the only safe continuation is a fresh snapshot bootstrap.
	errReplDiverged = errors.New("replica diverged from primary stream")
	// errReplClosed means a replicated close record was applied: the
	// primary acknowledged the session's deletion, so the replica is
	// torn down too.
	errReplClosed = errors.New("session closed by replicated record")
)

type follower struct {
	s      *Server
	client *replication.Client

	ctx    context.Context // cancels in-flight polls on shutdown/promote
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}

	stopOnce sync.Once

	mu      sync.Mutex
	pullers map[string]*puller

	// promoted flips exactly once, after replication is sealed and the
	// bumped epoch is durable; isFollower (and with it the write fence)
	// reads it on every mutation.
	promoted  atomic.Bool
	promoteMu sync.Mutex

	// bootstrapped latches true once every known session has a ready
	// puller; /readyz gates on it.
	bootstrapped atomic.Bool

	// lastContact is the UnixNano of the last successful status fetch.
	lastContact atomic.Int64
}

func newFollower(s *Server) (*follower, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return nil, err
	}
	client, err := replication.NewClient(s.cfg.FollowURL, "f-"+hex.EncodeToString(b[:]))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &follower{
		s:       s,
		client:  client,
		ctx:     ctx,
		cancel:  cancel,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		pullers: make(map[string]*puller),
	}, nil
}

// shutdown seals the following machinery: cancels in-flight polls,
// stops the reconcile loop, and waits for it (and, via its deferred
// stopPullers, every puller) to exit. Idempotent; shared by graceful
// shutdown and promotion.
func (f *follower) shutdown() {
	f.stopOnce.Do(func() {
		f.cancel()
		close(f.stop)
	})
	<-f.done
}

// run is the reconcile loop: poll the primary's status, mirror its
// session set and function registry, back off (with jitter, via the
// shared retry policy's shape) while it is unreachable.
func (f *follower) run() {
	defer close(f.done)
	defer f.stopPullers()
	delay := followRetryBase
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		ctx, cancel := context.WithTimeout(f.ctx, 10*time.Second)
		st, err := f.client.Status(ctx)
		cancel()
		if err != nil {
			f.s.metrics.replReconnects.Add(1)
			select {
			case <-f.stop:
				return
			case <-time.After(retry.Jitter(delay)):
			}
			if delay *= 2; delay > followRetryCap {
				delay = followRetryCap
			}
			continue
		}
		delay = followRetryBase
		f.reconcile(st)
		select {
		case <-f.stop:
			return
		case <-time.After(followInterval):
		}
	}
}

// reconcile diffs the primary's status against local state: adopt a
// newer epoch, mirror the function registry, start pullers for new
// sessions, tear down replicas of sessions the primary no longer has.
func (f *follower) reconcile(st *replication.Status) {
	f.lastContact.Store(time.Now().UnixNano())
	f.s.adoptEpoch(st.Epoch)
	f.syncFuncs(st.Funcs)

	remote := make(map[string]uint64, len(st.Sessions))
	for _, ss := range st.Sessions {
		remote[ss.Session] = ss.LastSeq
	}
	var gone []*puller
	f.mu.Lock()
	for sid, seq := range remote {
		if p := f.pullers[sid]; p != nil {
			if seq > p.remoteSeq.Load() {
				p.remoteSeq.Store(seq)
			}
			p.noteLag()
			continue
		}
		p := newPuller(f, sid, seq)
		f.pullers[sid] = p
		go p.run()
	}
	for sid, p := range f.pullers {
		if _, ok := remote[sid]; !ok {
			gone = append(gone, p)
			delete(f.pullers, sid)
		}
	}
	ready := true
	for _, p := range f.pullers {
		if !p.ready.Load() {
			ready = false
			break
		}
	}
	f.mu.Unlock()
	for _, p := range gone {
		p.shutdown()
		_ = f.s.reg.closeSession(p.sid)
		f.s.hub.Forget(p.sid)
	}
	if ready {
		f.bootstrapped.Store(true)
	}
}

// syncFuncs mirrors the primary's published-function registry:
// downloads artifacts it lacks, removes artifacts the primary dropped.
func (f *follower) syncFuncs(ids []string) {
	want := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		want[id] = struct{}{}
	}
	for _, a := range f.s.funcs.list() {
		if _, ok := want[a.id]; !ok {
			_ = f.s.funcs.remove(a.id)
		}
	}
	for _, id := range ids {
		if _, err := f.s.funcs.get(id); err == nil {
			continue
		}
		ctx, cancel := context.WithTimeout(f.ctx, time.Minute)
		data, err := f.client.DownloadFunc(ctx, id)
		cancel()
		if err != nil {
			log.Printf("server: follower: downloading function %s: %v", id, err)
			continue
		}
		fn, err := bfbdd.LoadCompiled(bytes.NewReader(data))
		if err != nil {
			log.Printf("server: follower: bad artifact %s from primary: %v", id, err)
			continue
		}
		if _, err := f.s.funcs.publish(id, "", fn); err != nil {
			log.Printf("server: follower: publishing %s: %v", id, err)
			continue
		}
		f.s.metrics.replBytesReceived.Add(uint64(len(data)))
	}
}

func (f *follower) stopPullers() {
	f.mu.Lock()
	ps := make([]*puller, 0, len(f.pullers))
	for _, p := range f.pullers {
		ps = append(ps, p)
	}
	f.pullers = make(map[string]*puller)
	f.mu.Unlock()
	for _, p := range ps {
		p.shutdown()
	}
}

// lag reports the follower's replication lag: the total record delta
// across sessions, and the wall time the most-behind session has been
// behind (zero when fully caught up).
func (f *follower) lag() (records uint64, wall time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	for _, p := range f.pullers {
		local, remote := p.localSeq.Load(), p.remoteSeq.Load()
		if remote > local {
			records += remote - local
		}
		if since := p.behindSince.Load(); since != 0 {
			if d := now.Sub(time.Unix(0, since)); d > wall {
				wall = d
			}
		}
	}
	return records, wall
}

// sincePrimaryContact is how long ago the primary last answered a
// status poll; effectively infinite before the first success.
func (f *follower) sincePrimaryContact() time.Duration {
	t := f.lastContact.Load()
	if t == 0 {
		return time.Duration(1<<63 - 1)
	}
	return time.Since(time.Unix(0, t))
}

// promote seals replication and flips the follower writable with a
// bumped, durably persisted fencing epoch. The ordering is what makes
// the fence airtight: no replicated record can land after the epoch
// bump (pullers are already down), and the write fence stays closed
// until the new epoch is on disk, stamped into every live WAL, and
// re-checkpointed — so nothing mutates in the window where a crash
// could roll the epoch back.
func (f *follower) promote() (uint64, bool, error) {
	f.promoteMu.Lock()
	defer f.promoteMu.Unlock()
	s := f.s
	if f.promoted.Load() {
		return s.epoch.Load(), true, nil
	}
	f.shutdown()
	epoch := s.epoch.Load() + 1
	if err := replication.StoreEpoch(s.cfg.CheckpointDir, epoch); err != nil {
		return s.epoch.Load(), false, fmt.Errorf("persisting epoch %d: %w", epoch, err)
	}
	s.epoch.Store(epoch)
	// Stamp the new epoch into every live log: the next segment each
	// session writes carries it, so a restarted old primary (whose
	// on-disk history is at the old epoch) is refused on open if it
	// ever sees this directory, and bfbdd-wal verify can prove which
	// timeline a segment belongs to.
	for _, sess := range s.reg.list() {
		if sess.wal == nil {
			continue
		}
		if err := sess.wal.SetEpoch(epoch); err != nil {
			log.Printf("server: promote: stamping epoch %d on session %s: %v", epoch, sess.id, err)
		}
	}
	// Re-checkpoint so the meta sidecars carry the new epoch too.
	s.ckpt.checkpointAll()
	f.promoted.Store(true)
	log.Printf("server: promoted at epoch %d (was following %s)", epoch, f.client.PrimaryURL())
	return epoch, false, nil
}

// puller replicates one session: bootstrap (or resume) and then a
// long-poll apply loop.
type puller struct {
	f   *follower
	sid string

	ctx    context.Context
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}

	// ready means the replica session exists locally and is serving
	// reads (it may still be catching up on the tail).
	ready atomic.Bool
	// localSeq is the last sequence applied locally; remoteSeq is the
	// primary's chain head as last observed. Their delta is the lag.
	localSeq    atomic.Uint64
	remoteSeq   atomic.Uint64
	behindSince atomic.Int64 // UnixNano when the replica fell behind; 0 = caught up
}

func newPuller(f *follower, sid string, remote uint64) *puller {
	p := &puller{
		f:    f,
		sid:  sid,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.ctx, p.cancel = context.WithCancel(f.ctx)
	p.remoteSeq.Store(remote)
	return p
}

func (p *puller) shutdown() {
	p.cancel()
	close(p.stop)
	<-p.done
}

func (p *puller) run() {
	defer close(p.done)
	delay := followRetryBase
	var sess *session
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		var err error
		if sess == nil {
			if sess, err = p.attach(); err == nil {
				p.ready.Store(true)
			}
		}
		if err == nil {
			err = p.poll(sess)
		}
		switch {
		case err == nil:
			delay = followRetryBase
		case errors.Is(err, replication.ErrSnapshotRequired), errors.Is(err, errReplDiverged):
			// The local copy cannot chain onto the primary's stream any
			// more; only a fresh bootstrap can. No backoff — the very
			// next attach does the snapshot transfer (its own failures
			// take the default branch).
			sess = nil
			p.ready.Store(false)
		case errors.Is(err, replication.ErrSessionGone), errors.Is(err, errReplClosed):
			// Deletion acknowledged by the primary; mirror it and stop.
			_ = p.f.s.reg.closeSession(p.sid)
			p.f.s.hub.Forget(p.sid)
			return
		case errors.Is(err, context.Canceled):
			// Shutdown or promotion cancelled the in-flight request; the
			// loop top exits via p.stop.
		default:
			p.f.s.metrics.replReconnects.Add(1)
			select {
			case <-p.stop:
				return
			case <-time.After(retry.Jitter(delay)):
			}
			if delay *= 2; delay > followRetryCap {
				delay = followRetryCap
			}
		}
	}
}

// attach produces the live replica session: resuming the locally
// recovered copy when it is a strict prefix of the primary's chain
// (restart-friendly — no snapshot re-transfer), bootstrapping from a
// snapshot otherwise. A local copy ahead of the primary's head (an old
// primary restarted as a follower, with unacknowledged extra records)
// does not chain and is re-bootstrapped.
func (p *puller) attach() (*session, error) {
	if sess, err := p.f.s.reg.get(p.sid); err == nil &&
		sess.wal != nil && sess.wal.Seq() <= p.remoteSeq.Load() {
		p.localSeq.Store(sess.wal.Seq())
		return sess, nil
	}
	return p.bootstrap()
}

// countingReader counts the bytes a snapshot bootstrap pulls.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(b []byte) (int, error) {
	n, err := c.r.Read(b)
	c.n += int64(n)
	return n, err
}

// bootstrap transfers a snapshot from the primary and builds the
// replica session on top of it, with a WAL opened at the snapshot's
// base sequence so the streamed tail chains exactly. The bootstrap is
// checkpointed immediately so a follower restart resumes from disk
// instead of re-transferring.
func (p *puller) bootstrap() (*session, error) {
	s := p.f.s
	s.metrics.replBootstraps.Add(1)
	// Drop whatever stale local copy exists: a live session (close it;
	// onClose purges its files) or just leftover files.
	if _, err := s.reg.get(p.sid); err == nil {
		_ = s.reg.closeSession(p.sid)
	} else {
		s.ckpt.remove(p.sid)
	}
	ctx, cancel := context.WithTimeout(p.ctx, 10*time.Minute)
	defer cancel()
	rc, info, err := p.f.client.Snapshot(ctx, p.sid)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	s.adoptEpoch(info.Epoch)
	var opts SessionOptions
	if len(info.Options) > 0 {
		if err := json.Unmarshal(info.Options, &opts); err != nil {
			return nil, fmt.Errorf("bad session options from primary: %v", err)
		}
	}
	cr := &countingReader{r: rc}
	sess, err := s.reg.restore(p.sid, opts, cr, func(sess *session) error {
		o := s.ckpt.walOpts
		o.Epoch = s.epoch.Load()
		lg, werr := wal.Open(s.ckpt.walDir, sess.id, info.BaseSeq, o, &s.metrics.wal)
		if werr != nil {
			return werr
		}
		sess.wal = lg
		sid := sess.id
		sess.ship = func(seq uint64) { s.replCommit(sid, seq) }
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.metrics.replBytesReceived.Add(uint64(cr.n))
	if cerr := s.ckpt.checkpointWithRetry(sess); cerr != nil {
		// Not fatal: the replica is correct in memory; only the
		// restart-resume shortcut is lost until a later checkpoint lands.
		log.Printf("server: follower: checkpoint after bootstrap of %s: %v", p.sid, cerr)
	}
	p.localSeq.Store(info.BaseSeq)
	p.noteLag()
	return sess, nil
}

// poll long-polls the primary for the next batch and applies it.
func (p *puller) poll(sess *session) error {
	// The overall deadline comfortably exceeds the long-poll window, so
	// it only fires on a dead-but-open connection.
	ctx, cancel := context.WithTimeout(p.ctx, followPollWait+replWaitMax)
	defer cancel()
	batch, err := p.f.client.PollWAL(ctx, p.sid, p.localSeq.Load(), followPollWait)
	if err != nil {
		return err
	}
	if batch == nil {
		p.noteLag()
		return nil
	}
	return p.apply(sess, batch)
}

// apply appends and replays one shipped batch on the session's
// executor. Frames at or below the local head are duplicate deliveries
// after a reconnect and skip idempotently; a gap or failed apply is
// divergence; a torn final frame (connection severed mid-batch) is
// fine — the parsed prefix is applied and the next poll refetches the
// tail. Records land in the local WAL in one group append (one fsync
// per batch under -wal-sync=always, mirroring the primary's group
// commit) before they touch the manager, so the replica's durable
// state never trails its served state.
func (p *puller) apply(sess *session, batch *replication.WALBatch) error {
	s := p.f.s
	if cur := s.epoch.Load(); batch.Epoch < cur {
		s.metrics.replStaleEpochRefusals.Add(1)
		return fmt.Errorf("%w: batch at stale epoch %d, local epoch %d", errReplDiverged, batch.Epoch, cur)
	}
	s.adoptEpoch(batch.Epoch)

	var applied uint64
	err := sess.exec.submit(context.Background(), func(context.Context) error {
		local := p.localSeq.Load()
		var recs []wal.Record
		_, serr := wal.ScanFrames(batch.Frames, func(e wal.Entry) error {
			switch {
			case e.Seq <= local:
				return nil
			case e.Seq != local+uint64(len(recs))+1:
				return fmt.Errorf("%w: seq %d after %d", errReplDiverged, e.Seq, local+uint64(len(recs)))
			}
			recs = append(recs, e.Rec)
			return nil
		})
		torn := false
		if serr != nil && !errors.Is(serr, errReplDiverged) {
			// A torn or corrupt tail frame: the clean prefix in recs is
			// exactly what the primary managed to flush; apply it and let
			// the next poll refetch the rest.
			serr, torn = nil, true
		}
		if serr != nil {
			return serr
		}
		if len(recs) == 0 {
			if torn {
				// No parseable prefix at all; backing off before the
				// refetch keeps a persistently bad batch from spinning.
				return fmt.Errorf("torn batch carried no complete frame")
			}
			return nil
		}
		if aerr := sess.wal.Append(recs...); aerr != nil {
			return fmt.Errorf("%w: local append: %v", errReplDiverged, aerr)
		}
		want := local + uint64(len(recs))
		if got := sess.wal.Seq(); got != want {
			return fmt.Errorf("%w: local log at %d after appending through %d", errReplDiverged, got, want)
		}
		st := &walreplay.State{Mgr: sess.mgr, Handles: sess.handles, NextHandle: sess.nextHandle}
		for _, rec := range recs {
			if aerr := st.Apply(rec); aerr != nil {
				sess.nextHandle = st.NextHandle
				return fmt.Errorf("%w: applying record: %v", errReplDiverged, aerr)
			}
		}
		sess.nextHandle = st.NextHandle
		applied = uint64(len(recs))
		p.localSeq.Store(want)
		if st.Closed {
			return errReplClosed
		}
		return nil
	})
	if batch.LastSeq > p.remoteSeq.Load() {
		p.remoteSeq.Store(batch.LastSeq)
	}
	s.metrics.replRecordsApplied.Add(applied)
	s.metrics.replBytesReceived.Add(uint64(len(batch.Frames)))
	p.noteLag()
	return err
}

// noteLag updates the wall-clock lag latch from the sequence delta.
func (p *puller) noteLag() {
	if p.localSeq.Load() >= p.remoteSeq.Load() {
		p.behindSince.Store(0)
	} else if p.behindSince.Load() == 0 {
		p.behindSince.Store(time.Now().UnixNano())
	}
}
