package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"bfbdd"
	"bfbdd/internal/faultinject"
	"bfbdd/internal/node"
	"bfbdd/internal/replication"
	"bfbdd/internal/trace"
	"bfbdd/internal/wal"
)

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// errStatus maps service errors to HTTP statuses.
func errStatus(err error) int {
	switch {
	case errors.Is(err, errBadRequest), errors.Is(err, errNoHandle):
		return http.StatusBadRequest
	case errors.Is(err, errNoSession), errors.Is(err, errNoFunc):
		return http.StatusNotFound
	case errors.Is(err, errSessionClosing), errors.Is(err, errSessionExists),
		errors.Is(err, errSessionPoisoned), errors.Is(err, errFuncExists):
		return http.StatusConflict
	case errors.Is(err, errEvalTooLarge), errors.Is(err, errFuncPoolFull):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, errTooManySessions), errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, errSessionClosed):
		return http.StatusGone
	case errors.Is(err, errServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func fail(w http.ResponseWriter, err error) {
	// Typed engine aborts come first: they arrive either as returned
	// errors (the Ctx paths) or as panic values captured on the executor
	// goroutine (the plain calls) — panicError.Unwrap makes both shapes
	// classify identically here.
	var be *bfbdd.BudgetError
	if errors.As(err, &be) {
		// Budget exhaustion is a client-visible resource limit, not a
		// server fault: 413 with the full per-variable usage report.
		writeError(w, http.StatusRequestEntityTooLarge, be.Error())
		return
	}
	var ie *bfbdd.InternalError
	if errors.As(err, &ie) {
		// Kernel invariant violation: the session was poisoned by
		// noteFailure; answer 500 without leaking the internal stack.
		log.Printf("server: internal engine fault: %v", ie)
		writeError(w, http.StatusInternalServerError, "internal engine fault")
		return
	}
	if errors.Is(err, faultinject.ErrInjected) {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// A remaining panic captured on the executor goroutine gets the same
	// treatment the HTTP-layer firewall gives handler-goroutine panics:
	// engine misuse ("bfbdd:" prefix) is the client's fault, anything
	// else is a server bug — logged with its stack and answered 500.
	var pe *panicError
	if errors.As(err, &pe) {
		if msg, ok := pe.val.(string); ok && strings.HasPrefix(msg, "bfbdd: ") {
			writeError(w, http.StatusBadRequest, msg)
			return
		}
		log.Printf("server: panic in session task: %v\n%s", pe.val, pe.stack)
		writeError(w, http.StatusInternalServerError, "internal error")
		return
	}
	writeError(w, errStatus(err), err.Error())
}

// decode reads the request body as JSON into v, bounding its size.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return nil
}

// parseOp maps a wire operation name to a batch op kind.
func parseOp(name string) (bfbdd.BatchOpKind, error) {
	switch name {
	case "and":
		return bfbdd.BatchAnd, nil
	case "or":
		return bfbdd.BatchOr, nil
	case "xor":
		return bfbdd.BatchXor, nil
	case "nand":
		return bfbdd.BatchNand, nil
	case "nor":
		return bfbdd.BatchNor, nil
	case "xnor":
		return bfbdd.BatchXnor, nil
	case "diff":
		return bfbdd.BatchDiff, nil
	case "implies":
		return bfbdd.BatchImplies, nil
	}
	return 0, fmt.Errorf("%w: unknown op %q", errBadRequest, name)
}

// routes registers the API surface; every route runs behind the admission
// pipeline and per-route instrumentation.
func (s *Server) routes(mux *http.ServeMux) {
	// Trace middleware sits inside admission: a request shed by the
	// in-flight cap never consumes a sampling slot or a ring entry.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.metrics.instrument(pattern, s.limits.admit(s.traced(pattern, h))))
	}
	handle("POST /v1/sessions", s.handleCreateSession)
	handle("POST /v1/sessions/restore", s.handleRestoreSession)
	handle("GET /v1/sessions", s.handleListSessions)
	handle("GET /v1/sessions/{sid}", s.handleGetSession)
	handle("DELETE /v1/sessions/{sid}", s.handleCloseSession)
	handle("POST /v1/sessions/{sid}/vars", s.handleVar)
	handle("POST /v1/sessions/{sid}/const", s.handleConst)
	handle("POST /v1/sessions/{sid}/apply", s.handleApply)
	handle("POST /v1/sessions/{sid}/batch", s.handleBatch)
	handle("POST /v1/sessions/{sid}/ite", s.handleITE)
	handle("POST /v1/sessions/{sid}/not", s.handleNot)
	handle("POST /v1/sessions/{sid}/quantify", s.handleQuantify)
	handle("POST /v1/sessions/{sid}/restrict", s.handleRestrict)
	handle("POST /v1/sessions/{sid}/compose", s.handleCompose)
	handle("POST /v1/sessions/{sid}/free", s.handleFree)
	handle("POST /v1/sessions/{sid}/query", s.handleQuery)
	handle("POST /v1/sessions/{sid}/gc", s.handleGC)
	handle("GET /v1/sessions/{sid}/stats", s.handleStats)
	handle("GET /v1/sessions/{sid}/bdds/{handle}/dot", s.handleDOT)
	handle("POST /v1/sessions/{sid}/snapshot", s.handleSnapshot)
	handle("POST /v1/sessions/{sid}/publish", s.handlePublish)
	handle("GET /v1/funcs", s.handleListFuncs)
	handle("GET /v1/funcs/{fid}", s.handleGetFunc)
	handle("GET /v1/funcs/{fid}/download", s.handleDownloadFunc)
	handle("DELETE /v1/funcs/{fid}", s.handleDeleteFunc)
	handle("POST /v1/funcs/{fid}/eval", s.handleEvalFunc)
	handle("POST /v1/funcs/{fid}/query", s.handleQueryFunc)
	handle("GET /v1/debug/traces", s.handleListTraces)
	handle("GET /v1/debug/traces/{tid}", s.handleGetTrace)
	handle("GET "+replication.StatusPath, s.handleReplStatus)
	handle("GET "+replication.SnapshotPathPrefix+"{sid}", s.handleReplSnapshot)
	handle("GET "+replication.WALPathPrefix+"{sid}", s.handleReplWAL)
	handle("POST /v1/admin/promote", s.handlePromote)
}

// sessionOf resolves the {sid} path segment and touches the session's
// idle clock. Poisoned sessions are refused with 409 — their engine
// state cannot be trusted, so no operation (not even a read) runs
// against them; DELETE and the info/stats routes bypass this gate so a
// poisoned session can still be inspected and reclaimed.
func (s *Server) sessionOf(r *http.Request) (*session, error) {
	sess, err := s.reg.get(r.PathValue("sid"))
	if err != nil {
		return nil, err
	}
	if sess.isPoisoned() {
		return nil, fmt.Errorf("%w: %s", errSessionPoisoned, sess.id)
	}
	sess.touch()
	return sess, nil
}

// run executes fn serialized on the session's executor under the request
// context and deadline, routing any failure through the session's
// poison classifier. A traced request gets a "queue-wait" span covering
// the time its task sat in the executor queue; a task abandoned before
// running leaves the span open, and trace collection closes it with an
// unfinished marker — exactly what happened.
func run(r *http.Request, sess *session, fn func(ctx context.Context) error) error {
	ctx := r.Context()
	if t, parent := trace.FromContext(ctx); t != nil {
		qs := t.Start(parent, "queue-wait")
		inner := fn
		fn = func(ctx context.Context) error {
			t.End(qs)
			return inner(ctx)
		}
	}
	err := sess.exec.submit(ctx, fn)
	sess.noteFailure(err)
	return err
}

// journalApplies journals a group of binary applies as one commit group:
// a bare apply record for a single operation, one batch record otherwise.
func journalApplies(sess *session, recs []wal.ApplyRec) error {
	return journalAppliesT(sess, nil, 0, recs)
}

// journalAppliesT is journalApplies under an explicit trace (the
// coalescer threads the batch owner's trace; nil when untraced).
func journalAppliesT(sess *session, t *trace.Trace, parent trace.SpanID, recs []wal.ApplyRec) error {
	switch len(recs) {
	case 0:
		return nil
	case 1:
		return sess.journalT(t, parent, recs[0])
	default:
		return sess.journalT(t, parent, wal.BatchRec{Ops: recs})
	}
}

// poolBytes sums the engine memory footprint of every live session from
// the lock-free stats snapshots (a scrape-safe approximation: snapshots
// refresh after each executor task). With memory tiering on, the engine
// samples count only heap-resident store bytes, so a spilled session
// contributes its caches and tables but not its on-disk levels.
func (s *Server) poolBytes() uint64 {
	var total uint64
	for _, sess := range s.reg.list() {
		if st := sess.stats(); st != nil {
			total += st.MemBytes
		}
	}
	return total
}

// poolSpill sums the node-store tiering split across live sessions:
// resident is heap bytes held by node arenas, spilled is bytes parked in
// level spill files. resident+spilled is the pool's total node footprint
// regardless of where it lives.
func (s *Server) poolSpill() (resident, spilled uint64) {
	for _, sess := range s.reg.list() {
		if st := sess.stats(); st != nil {
			resident += st.ResidentBytes
			spilled += st.SpilledBytes
		}
	}
	return resident, spilled
}

// shed is the global memory-pressure valve for allocating routes. With
// memory tiering configured, pressure is first relieved by spilling the
// coldest sessions to disk (MaxResidentBytes); only if the pool's
// heap bytes still exceed Config.MaxTotalBytes is the request answered
// 429 with a Retry-After hint instead of being admitted to grow the pool
// further. Reads, frees, GC, and deletes always pass — they are how a
// client relieves the pressure.
func (s *Server) shed(w http.ResponseWriter, r *http.Request) bool {
	s.enforceResidentCap(r.Context())
	if s.cfg.MaxTotalBytes <= 0 {
		return false
	}
	used := s.poolBytes()
	if used <= uint64(s.cfg.MaxTotalBytes) {
		return false
	}
	s.metrics.rejectedOverBudget.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests,
		fmt.Sprintf("server over memory budget: %d bytes live, budget %d", used, s.cfg.MaxTotalBytes))
	return true
}

type sessionInfo struct {
	Session  string `json:"session"`
	Vars     int    `json:"vars"`
	Engine   string `json:"engine"`
	Workers  int    `json:"workers"`
	Created  string `json:"created"`
	IdleFor  string `json:"idle_for"`
	Poisoned bool   `json:"poisoned,omitempty"`
}

func (s *Server) info(sess *session) sessionInfo {
	return sessionInfo{
		Session:  sess.id,
		Vars:     sess.vars,
		Engine:   sess.engine.String(),
		Workers:  sess.mgr.Kernel().Options().Workers,
		Created:  sess.created.UTC().Format(time.RFC3339Nano),
		IdleFor:  time.Since(sess.idleSince()).Round(time.Millisecond).String(),
		Poisoned: sess.isPoisoned(),
	}
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	var req SessionOptions
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	sess, err := s.reg.create(req)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.info(sess))
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.list()
	out := make([]sessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, s.info(sess))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.reg.get(r.PathValue("sid"))
	if err != nil {
		fail(w, err)
		return
	}
	out := map[string]any{
		"info":  s.info(sess),
		"stats": statsJSON(sess.stats()),
	}
	// The per-level memory report needs the manager quiescent, so it runs
	// on the executor; a poisoned session skips it (its engine state is
	// untrusted) and a busy or broken executor just omits the key rather
	// than failing an otherwise-cheap info read.
	if !sess.isPoisoned() {
		var mem bfbdd.MemReport
		if err := sess.exec.submit(r.Context(), func(context.Context) error {
			mem = sess.mgr.MemReport()
			return nil
		}); err == nil {
			out["mem"] = mem
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) {
		return
	}
	id := r.PathValue("sid")
	// Journal the close before tearing down: the normal path removes every
	// durability file anyway, but a crash between this acknowledgment and
	// the file removal leaves the WAL ending in a close record — recovery
	// then finishes the deletion instead of resurrecting a session the
	// client was told is gone. Best-effort by design: a broken log must not
	// make a session undeletable.
	if sess, err := s.reg.get(id); err == nil {
		_ = sess.journal(wal.CloseRec{})
	}
	if err := s.reg.closeSession(id); err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": id})
}

type handleResp struct {
	Handle uint64 `json:"handle"`
	Nodes  int    `json:"nodes"`
}

func (s *Server) handleVar(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		Index   int  `json:"index"`
		Negated bool `json:"negated,omitempty"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	if req.Index < 0 || req.Index >= sess.vars {
		fail(w, fmt.Errorf("%w: variable %d out of range [0,%d)", errBadRequest, req.Index, sess.vars))
		return
	}
	var resp handleResp
	err = run(r, sess, func(ctx context.Context) error {
		var b *bfbdd.BDD
		if req.Negated {
			b = sess.mgr.NVar(req.Index)
		} else {
			b = sess.mgr.Var(req.Index)
		}
		h := sess.put(b)
		if err := sess.journalCtx(ctx, wal.VarRec{Index: req.Index, Negated: req.Negated, Handle: h}); err != nil {
			sess.unput(h, b)
			return err
		}
		resp = handleResp{Handle: h, Nodes: b.Size()}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleConst(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		Value bool `json:"value"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	var resp handleResp
	err = run(r, sess, func(ctx context.Context) error {
		var b *bfbdd.BDD
		if req.Value {
			b = sess.mgr.One()
		} else {
			b = sess.mgr.Zero()
		}
		h := sess.put(b)
		if err := sess.journalCtx(ctx, wal.ConstRec{Value: req.Value, Handle: h}); err != nil {
			sess.unput(h, b)
			return err
		}
		resp = handleResp{Handle: h}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleApply is the coalesced binary-apply endpoint: concurrent applies
// landing within the coalescing window ride one engine batch.
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		Op string `json:"op"`
		F  uint64 `json:"f"`
		G  uint64 `json:"g"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	kind, err := parseOp(req.Op)
	if err != nil {
		fail(w, err)
		return
	}
	res, err := sess.coal.submit(r.Context(), kind, req.F, req.G)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, handleResp{Handle: res.handle, Nodes: res.nodes})
}

// handleBatch submits an explicit batch of independent operations as one
// engine unit (the client-side variant of what the coalescer does
// implicitly).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		Ops []struct {
			Op string `json:"op"`
			F  uint64 `json:"f"`
			G  uint64 `json:"g"`
		} `json:"ops"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	if len(req.Ops) == 0 {
		fail(w, fmt.Errorf("%w: empty batch", errBadRequest))
		return
	}
	kinds := make([]bfbdd.BatchOpKind, len(req.Ops))
	for i, op := range req.Ops {
		if kinds[i], err = parseOp(op.Op); err != nil {
			fail(w, err)
			return
		}
	}
	var resp struct {
		Handles []uint64 `json:"handles"`
		Nodes   []int    `json:"nodes"`
	}
	// completed reports, for a batch that aborted partway (budget
	// exhaustion, injected fault), which operations finished first: their
	// results are registered as real handles so the client keeps the work
	// already paid for.
	type completedOp struct {
		Index  int    `json:"index"`
		Handle uint64 `json:"handle"`
		Nodes  int    `json:"nodes"`
	}
	var completed []completedOp
	err = run(r, sess, func(ctx context.Context) error {
		btr, bparent := trace.FromContext(ctx)
		ops := make([]bfbdd.BatchOp, len(req.Ops))
		for i, op := range req.Ops {
			f, err := sess.bdd(op.F)
			if err != nil {
				return err
			}
			g, err := sess.bdd(op.G)
			if err != nil {
				return err
			}
			ops[i] = bfbdd.BatchOp{Kind: kinds[i], F: f, G: g}
		}
		var before bfbdd.Stats
		if sess.slowThreshold > 0 {
			before = sess.mgr.Stats()
		}
		t0 := time.Now()
		results, err := sess.mgr.ApplyBatchCtx(ctx, ops)
		sess.noteSlowBuild("batch", time.Since(t0), before)
		if err != nil {
			// The operations that did finish are acknowledged as real
			// handles, so they must be journaled like any success — as one
			// commit group. If the journal refuses, nothing was acknowledged:
			// roll the puts back (newest first, so handle numbering rewinds)
			// and surface the journal error alone.
			var recs []wal.ApplyRec
			var kept []*bfbdd.BDD
			for i, b := range results {
				if b == nil {
					continue
				}
				h := sess.put(b)
				completed = append(completed, completedOp{Index: i, Handle: h, Nodes: b.Size()})
				recs = append(recs, wal.ApplyRec{Op: uint8(kinds[i]), F: req.Ops[i].F, G: req.Ops[i].G, Handle: h})
				kept = append(kept, b)
			}
			if jerr := journalAppliesT(sess, btr, bparent, recs); jerr != nil {
				for i := len(kept) - 1; i >= 0; i-- {
					sess.unput(recs[i].Handle, kept[i])
				}
				completed = nil
				return jerr
			}
			return err
		}
		resp.Handles = make([]uint64, len(results))
		resp.Nodes = make([]int, len(results))
		recs := make([]wal.ApplyRec, len(results))
		for i, b := range results {
			resp.Handles[i] = sess.put(b)
			resp.Nodes[i] = b.Size()
			recs[i] = wal.ApplyRec{Op: uint8(kinds[i]), F: req.Ops[i].F, G: req.Ops[i].G, Handle: resp.Handles[i]}
		}
		if jerr := journalAppliesT(sess, btr, bparent, recs); jerr != nil {
			for i := len(results) - 1; i >= 0; i-- {
				sess.unput(resp.Handles[i], results[i])
			}
			return jerr
		}
		return nil
	})
	if err != nil {
		if len(completed) > 0 {
			code := http.StatusInternalServerError
			var be *bfbdd.BudgetError
			if errors.As(err, &be) {
				code = http.StatusRequestEntityTooLarge
			}
			writeJSON(w, code, map[string]any{
				"error":     err.Error(),
				"completed": completed,
			})
			return
		}
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleITE(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		F uint64 `json:"f"`
		G uint64 `json:"g"`
		H uint64 `json:"h"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	var resp handleResp
	err = run(r, sess, func(ctx context.Context) error {
		f, err := sess.bdd(req.F)
		if err != nil {
			return err
		}
		g, err := sess.bdd(req.G)
		if err != nil {
			return err
		}
		h, err := sess.bdd(req.H)
		if err != nil {
			return err
		}
		b := f.ITE(g, h)
		hn := sess.put(b)
		if err := sess.journalCtx(ctx, wal.ITERec{F: req.F, G: req.G, H: req.H, Handle: hn}); err != nil {
			sess.unput(hn, b)
			return err
		}
		resp = handleResp{Handle: hn, Nodes: b.Size()}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleNot(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		F uint64 `json:"f"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	var resp handleResp
	err = run(r, sess, func(ctx context.Context) error {
		f, err := sess.bdd(req.F)
		if err != nil {
			return err
		}
		b := f.Not()
		h := sess.put(b)
		if err := sess.journalCtx(ctx, wal.NotRec{F: req.F, Handle: h}); err != nil {
			sess.unput(h, b)
			return err
		}
		resp = handleResp{Handle: h, Nodes: b.Size()}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuantify(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		Kind string `json:"kind"` // exists | forall
		F    uint64 `json:"f"`
		Vars []int  `json:"vars"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	if req.Kind != "exists" && req.Kind != "forall" {
		fail(w, fmt.Errorf("%w: unknown quantifier %q", errBadRequest, req.Kind))
		return
	}
	var resp handleResp
	err = run(r, sess, func(ctx context.Context) error {
		f, err := sess.bdd(req.F)
		if err != nil {
			return err
		}
		var b *bfbdd.BDD
		if req.Kind == "exists" {
			b = f.Exists(req.Vars...)
		} else {
			b = f.Forall(req.Vars...)
		}
		h := sess.put(b)
		if err := sess.journalCtx(ctx, wal.QuantifyRec{Forall: req.Kind == "forall", F: req.F, Vars: req.Vars, Handle: h}); err != nil {
			sess.unput(h, b)
			return err
		}
		resp = handleResp{Handle: h, Nodes: b.Size()}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRestrict(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		F     uint64 `json:"f"`
		Var   int    `json:"var"`
		Value bool   `json:"value"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	var resp handleResp
	err = run(r, sess, func(ctx context.Context) error {
		f, err := sess.bdd(req.F)
		if err != nil {
			return err
		}
		b := f.Restrict(req.Var, req.Value)
		h := sess.put(b)
		if err := sess.journalCtx(ctx, wal.RestrictRec{F: req.F, Var: req.Var, Value: req.Value, Handle: h}); err != nil {
			sess.unput(h, b)
			return err
		}
		resp = handleResp{Handle: h, Nodes: b.Size()}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCompose(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		F   uint64 `json:"f"`
		Var int    `json:"var"`
		G   uint64 `json:"g"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	var resp handleResp
	err = run(r, sess, func(ctx context.Context) error {
		f, err := sess.bdd(req.F)
		if err != nil {
			return err
		}
		g, err := sess.bdd(req.G)
		if err != nil {
			return err
		}
		b := f.Compose(req.Var, g)
		h := sess.put(b)
		if err := sess.journalCtx(ctx, wal.ComposeRec{F: req.F, G: req.G, Var: req.Var, Handle: h}); err != nil {
			sess.unput(h, b)
			return err
		}
		resp = handleResp{Handle: h, Nodes: b.Size()}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFree(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		Handles []uint64 `json:"handles"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	var freed int
	err = run(r, sess, func(ctx context.Context) error {
		// Validate the whole list before journaling anything: the free is
		// acknowledged all-or-nothing, and its record must describe only
		// frees that then actually happen (replay treats a missing handle
		// as divergence). Duplicates in one request hit the seen-check the
		// same way a double free across requests hits the handle table.
		seen := make(map[uint64]struct{}, len(req.Handles))
		for _, h := range req.Handles {
			if _, err := sess.bdd(h); err != nil {
				return err
			}
			if _, dup := seen[h]; dup {
				return fmt.Errorf("%w: handle %d freed twice", errNoHandle, h)
			}
			seen[h] = struct{}{}
		}
		if err := sess.journalCtx(ctx, wal.FreeRec{Handles: req.Handles}); err != nil {
			return err
		}
		for _, h := range req.Handles {
			if err := sess.free(h); err != nil {
				return err
			}
			freed++
		}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"freed": freed})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		Kind       string `json:"kind"` // size|satcount|anysat|eval|support|equal|signature
		F          uint64 `json:"f"`
		G          uint64 `json:"g,omitempty"`
		Assignment []bool `json:"assignment,omitempty"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	var resp any
	err = run(r, sess, func(context.Context) error {
		f, err := sess.bdd(req.F)
		if err != nil {
			return err
		}
		switch req.Kind {
		case "size":
			resp = map[string]int{"nodes": f.Size()}
		case "satcount":
			resp = map[string]string{"satcount": f.SatCount().String()}
		case "anysat":
			a, ok := f.AnySat()
			out := make(map[string]bool, len(a))
			for v, val := range a {
				out[fmt.Sprint(v)] = val
			}
			resp = map[string]any{"sat": ok, "assignment": out}
		case "eval":
			if len(req.Assignment) != sess.vars {
				return fmt.Errorf("%w: assignment has %d entries for %d variables",
					errBadRequest, len(req.Assignment), sess.vars)
			}
			resp = map[string]bool{"value": f.Eval(req.Assignment)}
		case "support":
			vars := f.Support()
			if vars == nil {
				vars = []int{}
			}
			resp = map[string][]int{"vars": vars}
		case "equal":
			g, err := sess.bdd(req.G)
			if err != nil {
				return err
			}
			resp = map[string]bool{"equal": f.Equal(g)}
		case "signature":
			// Order- and layout-independent structural fingerprint: the
			// kernel's canonical signature hashed to one hex word. Two
			// handles denote the same boolean function iff their signatures
			// match, across sessions, processes, and crash recoveries — the
			// equality oracle the crash-recovery harness checks survivors
			// against.
			sig := sess.mgr.Kernel().CanonicalSignature([]node.Ref{f.Ref()})
			h := fnv.New64a()
			var word [8]byte
			for _, v := range sig {
				binary.LittleEndian.PutUint64(word[:], v)
				_, _ = h.Write(word[:])
			}
			resp = map[string]string{"signature": fmt.Sprintf("%016x", h.Sum64())}
		default:
			return fmt.Errorf("%w: unknown query kind %q", errBadRequest, req.Kind)
		}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var nodes uint64
	err = run(r, sess, func(ctx context.Context) error {
		// Journal before collecting: a GC compaction rewrites node indices,
		// so replay must run it at the same point in the operation stream to
		// keep downstream structure identical. GC itself cannot fail, so
		// journal-first never records a GC that didn't happen.
		if err := sess.journalCtx(ctx, wal.GCRec{}); err != nil {
			return err
		}
		sess.mgr.GC()
		nodes = sess.mgr.NumNodes()
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"live_nodes": nodes})
}

// statsJSON is the wire shape of a session stats snapshot.
func statsJSON(st *sessionStats) map[string]any {
	if st == nil {
		return nil
	}
	return map[string]any{
		"ops":               st.Ops,
		"cache_hits":        st.CacheHits,
		"terminals":         st.Terminals,
		"expansion_seconds": st.ExpansionTime.Seconds(),
		"reduction_seconds": st.ReductionTime.Seconds(),
		"gc_mark_seconds":   st.GCMarkTime.Seconds(),
		"gc_fix_seconds":    st.GCFixTime.Seconds(),
		"gc_rehash_seconds": st.GCRehashTime.Seconds(),
		"steals":            st.Steals,
		"stolen_ops":        st.StolenOps,
		"stalls":            st.Stalls,
		"context_pushes":    st.ContextPushes,
		"lock_wait_seconds": st.LockWait.Seconds(),
		"gc_count":          st.GCCount,
		"peak_bytes":        st.PeakBytes,
		"live_nodes":        st.NumNodes,
		"pins":              st.Pins,
		"handles":           st.Handles,
		"mem_bytes":         st.MemBytes,
		"eval_threshold":    st.EffEvalThreshold,
		"resident_bytes":    st.ResidentBytes,
		"spilled_bytes":     st.SpilledBytes,
		"spilled_levels":    st.SpilledLevels,
		"spill": map[string]any{
			"ops":             st.SpillOps,
			"unspill_ops":     st.UnspillOps,
			"seconds":         st.SpillTime.Seconds(),
			"unspill_seconds": st.UnspillTime.Seconds(),
			"prefetch_hits":   st.SpillPrefetchHits,
		},
		"budget": map[string]uint64{
			"forced_gcs":      st.BudgetForcedGCs,
			"threshold_drops": st.BudgetThresholdDrops,
			"cache_shrinks":   st.BudgetCacheShrinks,
			"aborts":          st.BudgetAborts,
			"spills":          st.BudgetSpills,
		},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sess, err := s.reg.get(r.PathValue("sid"))
	if err != nil {
		fail(w, err)
		return
	}
	// Refresh synchronously when the session is idle (cheap), falling
	// back to the executor-maintained snapshot when it is busy.
	_ = sess.exec.submit(r.Context(), func(context.Context) error { return nil })
	writeJSON(w, http.StatusOK, statsJSON(sess.stats()))
}

func (s *Server) handleDOT(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var h uint64
	if _, err := fmt.Sscanf(r.PathValue("handle"), "%d", &h); err != nil {
		fail(w, fmt.Errorf("%w: bad handle %q", errBadRequest, r.PathValue("handle")))
		return
	}
	var buf bytes.Buffer
	err = run(r, sess, func(context.Context) error {
		b, err := sess.bdd(h)
		if err != nil {
			return err
		}
		return bfbdd.WriteDOT(&buf, []string{fmt.Sprintf("h%d", h)}, b)
	})
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

// handleSnapshot serializes the whole session (every live wire handle
// plus the variable order) in the versioned snapshot format. The stream
// is buffered before any byte hits the wire so an encoding failure still
// gets a clean JSON error response.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var buf bytes.Buffer
	err = run(r, sess, func(context.Context) error {
		if err := sess.snapshotTo(&buf); err != nil {
			return err
		}
		// Audit record only — it carries no session state, so a journal
		// failure must not fail the export the client already has bytes
		// for. Skipped on a follower: a locally minted sequence would
		// collide with the primary's replicated stream.
		if !s.isFollower() {
			_ = sess.journal(wal.SnapshotRec{})
		}
		return nil
	})
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.Header().Set("X-Bfbdd-Session", sess.id)
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

// handleRestoreSession creates a session from a snapshot stream in the
// request body. The variable count, order, and handle table come from the
// stream; the engine configuration comes from query parameters (engine,
// workers, gc_policy), and ?session= asks for a specific session id —
// refused with 409 if that id is live or still being torn down.
func (s *Server) handleRestoreSession(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) || s.shed(w, r) {
		return
	}
	q := r.URL.Query()
	opts := SessionOptions{
		Engine:   q.Get("engine"),
		GCPolicy: q.Get("gc_policy"),
	}
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil {
			fail(w, fmt.Errorf("%w: bad workers %q", errBadRequest, ws))
			return
		}
		opts.Workers = n
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSnapshotBytes)
	sess, err := s.reg.restore(q.Get("session"), opts, body, s.reg.walAdopt)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			fail(w, fmt.Errorf("%w: snapshot exceeds %d bytes", errBadRequest, s.cfg.MaxSnapshotBytes))
			return
		}
		fail(w, err)
		return
	}
	if s.ckpt != nil {
		// The restored state exists only in memory and its fresh WAL holds
		// no creation record to rebuild from, so the 201 below would be a
		// durability lie until a checkpoint lands. Take one synchronously;
		// if even the retried checkpoint fails, tear the session down and
		// report the failure rather than acknowledge state a crash would
		// silently lose.
		if cerr := s.ckpt.checkpointWithRetry(sess); cerr != nil {
			_ = s.reg.closeSession(sess.id)
			fail(w, fmt.Errorf("restored session could not be persisted: %w", cerr))
			return
		}
	}
	handles := make([]uint64, 0, len(sess.handles))
	// The session was just committed and has served nothing yet, but reads
	// still go through the executor: another client that guessed the id
	// could already be mutating the handle table. If the executor refuses
	// (queue full, session concurrently closed) the restored state cannot
	// be reported accurately, so fail the request; the session itself may
	// still exist and is discoverable via GET /v1/sessions.
	if err := run(r, sess, func(context.Context) error {
		for h := range sess.handles {
			handles = append(handles, h)
		}
		slices.Sort(handles)
		return nil
	}); err != nil {
		fail(w, fmt.Errorf("session %s restored, but listing its handles failed: %w", sess.id, err))
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"info":    s.info(sess),
		"handles": handles,
	})
}
