// Package server is the concurrent service layer over the bfbdd engine:
// an HTTP/JSON API that owns a pool of session-scoped BDD managers and
// exposes the full public construction and query API over the wire.
//
// The serving core maps client concurrency onto the engine the way the
// paper's §4.1 usage mode intends: each session's operations are
// serialized through a per-session executor (one slow build never blocks
// other sessions, and the single-writer discipline the Manager requires is
// enforced structurally), while independent binary applies that arrive
// within a short coalescing window are gathered into one ApplyBatch call,
// which the parallel engine seeds across its workers and balances by work
// stealing. Admission control (session cap, global in-flight cap,
// per-request deadlines plumbed to the kernel's cancellable build checks),
// idle-session expiry, session persistence (checkpoint loop + crash
// recovery over the bfbdd/internal/snapshot format), and
// Prometheus-format observability ride along.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bfbdd/internal/replication"
	"bfbdd/internal/trace"
	"bfbdd/internal/wal"
)

// walOptions translates the wire-level durability knobs into WAL options.
func walOptions(cfg Config) (wal.Options, error) {
	policy, err := wal.ParseSyncPolicy(cfg.WALSync)
	if err != nil {
		return wal.Options{}, fmt.Errorf("bad WALSync: %w", err)
	}
	return wal.Options{Policy: policy, Interval: cfg.WALSyncInterval}, nil
}

// Config tunes the service layer. The zero value is usable; unset fields
// take the defaults below.
type Config struct {
	// MaxSessions bounds the number of concurrently open sessions.
	MaxSessions int
	// MaxInflight bounds concurrently served HTTP requests; excess
	// requests are rejected with 429 rather than queued.
	MaxInflight int
	// RequestTimeout is the per-request deadline. It is plumbed into the
	// kernel's cancellable build checks, so a deadline that expires
	// mid-construction aborts the build cooperatively.
	RequestTimeout time.Duration
	// SessionIdleExpiry closes sessions with no requests for this long.
	SessionIdleExpiry time.Duration
	// CoalesceWindow is how long the first apply of a forming batch waits
	// for companions before the batch is flushed to the engine.
	CoalesceWindow time.Duration
	// CoalesceMaxBatch flushes a forming batch early once it holds this
	// many operations.
	CoalesceMaxBatch int
	// MaxQueuedPerSession bounds each session executor's task queue.
	MaxQueuedPerSession int
	// MaxVars bounds the variable count a session may be created with.
	MaxVars int
	// MaxWorkers bounds the per-session parallel worker count.
	MaxWorkers int
	// MaxSnapshotBytes bounds the request body of a session restore.
	MaxSnapshotBytes int64
	// MaxTotalBytes, when positive, is the server-wide memory budget:
	// allocating requests (session creation, construction operations) are
	// shed with 429 + Retry-After while the pool's live engine bytes
	// exceed it. Frees, GC, queries, and deletes always pass. With
	// SpillDir set the comparison counts only heap-resident bytes —
	// spilled levels live on disk and do not press on the budget.
	MaxTotalBytes int64
	// SpillDir, when set, enables memory tiering: every session's manager
	// gets a per-session spill directory under it (bfbdd.WithSpillDir),
	// so idle or over-budget sessions can have their fully reduced levels
	// written to level-major spill files and their heap blocks released.
	// The directory is scratch state scoped to this process: it is wiped
	// at startup and per-session dirs are removed when sessions close.
	// bfbdd-serve defaults it to <checkpoint-dir>/spill when persistence
	// is on.
	SpillDir string
	// SessionIdleSpill, when positive (and SpillDir is set), tiers down
	// sessions idle for this long: the janitor spills their node stores
	// to disk so a quiet session costs file pages instead of heap. The
	// next operation transparently unspills what it touches. Should be
	// shorter than SessionIdleExpiry to be useful.
	SessionIdleSpill time.Duration
	// MaxResidentBytes, when positive (and SpillDir is set), caps the
	// pool's combined heap-resident node bytes: instead of shedding with
	// 429, allocating requests first spill the coldest sessions
	// (least-recently used first) until the pool is back under the cap.
	// The janitor enforces it in the background too.
	MaxResidentBytes int64
	// SessionMaxNodes / SessionMaxBytes, when positive, cap every
	// session's engine budget (bfbdd.WithMaxNodes / WithMaxBytes): a
	// client-requested budget is clamped to them, and a session created
	// with no budget of its own still gets the cap. A build that would
	// exceed the budget degrades (forced GC, cache flush, lower
	// evaluation threshold) and then aborts with 413 instead of taking
	// the process down.
	SessionMaxNodes uint64
	SessionMaxBytes uint64
	// CheckpointDir, when set, enables session persistence: every live
	// session is periodically serialized there (atomic rename, per-session
	// snapshot + meta sidecar), deleted/expired sessions have their files
	// removed, a final pass runs on graceful shutdown, and New recovers
	// every checkpointed session — same id, same engine configuration,
	// same wire handles — before serving.
	CheckpointDir string
	// CheckpointInterval is the periodic checkpoint cadence. Zero or
	// negative disables the loop; CheckpointNow and the shutdown pass
	// still write.
	CheckpointInterval time.Duration
	// WALSync selects the write-ahead-log durability policy when
	// CheckpointDir is set: "always" fsyncs before every acknowledgment
	// (zero loss even on power failure), "interval" (the default) writes
	// through to the OS per operation and fsyncs on a timer (zero loss on
	// process crash, bounded loss on power failure), "none" leaves syncing
	// to the OS entirely.
	WALSync string
	// WALSyncInterval is the fsync cadence under WALSync "interval".
	WALSyncInterval time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// MaxFuncBytes, when positive, caps the published-function artifact
	// pool. Artifacts live in this pool, never in session budgets; a
	// publish that would exceed it is refused with 413.
	MaxFuncBytes int64
	// MaxEvalBodyBytes bounds the request body of the artifact eval
	// endpoint; oversized bodies are refused with 413.
	MaxEvalBodyBytes int64
	// MaxEvalBatch caps the assignments accepted per eval request; larger
	// batches are refused with 413.
	MaxEvalBatch int
	// FollowURL, when set, starts the server as a hot-standby follower
	// of the primary at that base URL: sessions are bootstrapped from
	// the primary's snapshots, kept current by streaming its WAL, and
	// served read-only (mutations get 421 + the primary's URL) until
	// promotion. Requires CheckpointDir.
	FollowURL string
	// PromoteOnStart bumps the replication epoch before recovery and
	// serves writable from the first request — the flag a failover
	// runbook sets when restarting a follower as the new primary. It
	// takes precedence over FollowURL.
	PromoteOnStart bool
	// ReadyMaxLag is the replication lag (wall time behind the primary)
	// beyond which a follower's /readyz reports unready.
	ReadyMaxLag time.Duration
	// ReplRetention bounds how many records behind the newest checkpoint
	// WAL truncation will hold segments for a lagging follower before
	// cutting it loose (it re-bootstraps from a snapshot).
	ReplRetention uint64
	// ReplSyncTimeout bounds, under WALSync "always", how long an
	// acknowledgment waits for the committed records to reach every
	// connected follower's socket before dropping the laggards.
	ReplSyncTimeout time.Duration
	// TraceSample is the head-based build-trace sampling rate in [0,1]:
	// that fraction of requests records a full span tree (handler →
	// queue wait → batch → per-level kernel phases → WAL commit →
	// replication gate), retained in an in-process ring served by
	// GET /v1/debug/traces. Zero (the default) disables sampling; a
	// request carrying ?trace=1 is traced regardless.
	TraceSample float64
	// TraceRingSize is how many completed traces the ring retains.
	TraceRingSize int
	// SlowBuildThreshold, when positive, logs a per-phase breakdown of
	// any engine build whose wall time exceeds it. Works without
	// sampling: detection is driven by engine stats deltas.
	SlowBuildThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.SessionIdleExpiry <= 0 {
		c.SessionIdleExpiry = 10 * time.Minute
	}
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = 2 * time.Millisecond
	}
	if c.CoalesceMaxBatch <= 0 {
		c.CoalesceMaxBatch = 64
	}
	if c.MaxQueuedPerSession <= 0 {
		c.MaxQueuedPerSession = 128
	}
	if c.MaxVars <= 0 {
		c.MaxVars = 1 << 14
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 2 * runtime.NumCPU()
	}
	if c.MaxSnapshotBytes <= 0 {
		c.MaxSnapshotBytes = 1 << 30
	}
	if c.MaxEvalBodyBytes <= 0 {
		c.MaxEvalBodyBytes = 4 << 20
	}
	if c.MaxEvalBatch <= 0 {
		c.MaxEvalBatch = 8192
	}
	if c.WALSyncInterval <= 0 {
		c.WALSyncInterval = 100 * time.Millisecond
	}
	if c.ReadyMaxLag <= 0 {
		c.ReadyMaxLag = 2 * time.Second
	}
	if c.ReplRetention == 0 {
		c.ReplRetention = 65536
	}
	if c.ReplSyncTimeout <= 0 {
		c.ReplSyncTimeout = 2 * time.Second
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 128
	}
	return c
}

// Server owns the session registry, the admission limits, and the metrics
// surface. Create one with New, mount Handler on an http.Server, and call
// Shutdown when done.
type Server struct {
	cfg     Config
	reg     *registry
	funcs   *funcRegistry
	metrics *metrics
	limits  *limits
	tracer  *trace.Tracer
	ckpt    *checkpointer // nil unless cfg.CheckpointDir is set

	// Replication state. hub is the primary-side commit/delivery
	// rendezvous (nil without a checkpointer); fol is non-nil when this
	// process started as a follower (it stays non-nil after promotion —
	// writability is fol.promoted). epoch is the fencing epoch stamped
	// into WAL segment headers and checkpoint sidecars; walPolicy
	// mirrors the parsed WALSync so acknowledgments know whether to
	// gate on follower delivery; draining flips /readyz unready ahead
	// of a graceful stop.
	hub       *replication.Hub
	fol       *follower
	epoch     atomic.Uint64
	walPolicy wal.SyncPolicy
	draining  atomic.Bool

	janitorStop chan struct{}
	janitorDone chan struct{}

	shutdownOnce sync.Once
}

// New creates a server with the given configuration. If CheckpointDir is
// set, sessions checkpointed by a previous process are recovered before
// New returns, so the returned server already holds them.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.SpillDir != "" {
		// Spill files are same-process scratch (checkpoints and WALs are
		// the durable state), so stale dirs from a previous process are
		// garbage: wipe and recreate. An unusable dir disables tiering but
		// never fails startup — spilling is capacity, not correctness.
		if err := os.RemoveAll(cfg.SpillDir); err != nil {
			log.Printf("server: cannot clear spill dir %s: %v", cfg.SpillDir, err)
		}
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			log.Printf("server: cannot create spill dir %s: %v (memory tiering disabled)", cfg.SpillDir, err)
			cfg.SpillDir = ""
		}
	}
	m := newMetrics()
	s := &Server{
		cfg:         cfg,
		metrics:     m,
		limits:      newLimits(cfg, m),
		reg:         newRegistry(cfg, m),
		funcs:       newFuncRegistry(cfg, m),
		tracer:      trace.NewTracer(cfg.TraceSample, cfg.TraceRingSize),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.funcs.reload()
	s.epoch.Store(1)
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			log.Printf("server: cannot create checkpoint dir %s: %v (persistence disabled)",
				cfg.CheckpointDir, err)
		} else if walOpts, err := walOptions(cfg); err != nil {
			log.Printf("server: %v (persistence disabled)", err)
		} else {
			s.walPolicy = walOpts.Policy
			// The fencing epoch must be settled before recovery opens any
			// WAL: a promote-on-start restart opens every recovered log at
			// the bumped epoch, so the old primary's stale-epoch appends
			// are refused from the first segment header it writes.
			epoch, eerr := replication.LoadEpoch(cfg.CheckpointDir)
			if eerr != nil {
				log.Printf("server: cannot load replication epoch: %v (starting at 1)", eerr)
				epoch = 1
			}
			if cfg.PromoteOnStart {
				epoch++
				if serr := replication.StoreEpoch(cfg.CheckpointDir, epoch); serr != nil {
					log.Printf("server: cannot persist promoted epoch %d: %v", epoch, serr)
				}
				log.Printf("server: promote-on-start: serving writable at epoch %d", epoch)
			}
			s.epoch.Store(epoch)
			s.hub = replication.NewHub(0)

			s.ckpt = newCheckpointer(cfg, walOpts, s.reg, m)
			s.ckpt.epoch = s.epoch.Load
			s.ckpt.ship = s.replCommit
			s.ckpt.minAcked = s.hub.MinAcked
			s.ckpt.retention = cfg.ReplRetention
			// Every session created over the API gets a WAL opened at
			// sequence 0 whose first record is the creation itself, so a
			// session is reconstructible even before its first checkpoint.
			// Acknowledgment of the creation implies the record is durable,
			// so a failed open or append fails the creation.
			s.reg.walCreate = func(sess *session) error {
				data, err := json.Marshal(sess.opts)
				if err != nil {
					return err
				}
				o := walOpts
				o.Epoch = s.epoch.Load()
				lg, err := wal.Open(s.ckpt.walDir, sess.id, 0, o, &m.wal)
				if err != nil {
					return err
				}
				if err := lg.Append(wal.CreateRec{Options: data}); err != nil {
					lg.Close()
					return err
				}
				sess.wal = lg
				sid := sess.id
				sess.ship = func(seq uint64) { s.replCommit(sid, seq) }
				// The creation record committed before ship was attached;
				// notify it by hand so followers see sequence 1 promptly.
				sess.ship(lg.Seq())
				return nil
			}
			// A session restored over the API replaces any previous history
			// under the same id: stale snapshots and segments would outrank
			// or garble the new timeline, so they go first.
			s.reg.walAdopt = func(sess *session) error {
				s.ckpt.purge(sess.id)
				o := walOpts
				o.Epoch = s.epoch.Load()
				lg, err := wal.Open(s.ckpt.walDir, sess.id, 0, o, &m.wal)
				if err != nil {
					return err
				}
				sess.wal = lg
				sid := sess.id
				sess.ship = func(seq uint64) { s.replCommit(sid, seq) }
				return nil
			}
			s.ckpt.recover()
			go s.ckpt.run()

			if cfg.FollowURL != "" {
				if cfg.PromoteOnStart {
					log.Printf("server: -promote-on-start set; ignoring -follow=%s and serving as primary", cfg.FollowURL)
				} else if f, ferr := newFollower(s); ferr != nil {
					log.Printf("server: cannot follow %s: %v (serving standalone)", cfg.FollowURL, ferr)
				} else {
					s.fol = f
					go f.run()
				}
			}
		}
	}
	if cfg.FollowURL != "" && s.ckpt == nil {
		log.Printf("server: -follow requires a checkpoint dir; ignoring -follow=%s", cfg.FollowURL)
	}
	go s.janitor()
	return s
}

// CheckpointNow synchronously checkpoints every live session. It is a
// no-op without a checkpoint directory.
func (s *Server) CheckpointNow() {
	if s.ckpt != nil {
		s.ckpt.checkpointAll()
	}
}

// janitor expires idle sessions in the background; with memory tiering
// enabled it also spills long-idle sessions to disk and keeps the pool's
// resident bytes under the configured cap.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	period := s.cfg.SessionIdleExpiry / 4
	if period < time.Second {
		period = time.Second
	}
	if s.cfg.SessionIdleSpill > 0 {
		if p := s.cfg.SessionIdleSpill / 4; p < period {
			period = max(p, 100*time.Millisecond)
		}
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			if s.isFollower() {
				// The primary owns session lifecycle; an idle replica
				// session just mirrors an idle primary session, and
				// expiring it here would diverge the two.
				continue
			}
			s.reg.expireIdle(s.cfg.SessionIdleExpiry)
			s.spillIdle()
			s.enforceResidentCap(context.Background())
		}
	}
}

// spillIdle tiers down sessions whose idle time exceeds SessionIdleSpill:
// their node stores move to spill files and the heap blocks are released.
// The spill runs serialized on each session's executor (enqueue-only, so
// a busy session — which by definition is not idle — is never blocked),
// and deliberately does not touch the idle clock.
func (s *Server) spillIdle() {
	if s.cfg.SpillDir == "" || s.cfg.SessionIdleSpill <= 0 {
		return
	}
	cutoff := time.Now().Add(-s.cfg.SessionIdleSpill)
	for _, sess := range s.reg.list() {
		if sess.isPoisoned() || !sess.idleSince().Before(cutoff) {
			continue
		}
		st := sess.stats()
		if st == nil || st.ResidentBytes == 0 {
			continue
		}
		sess := sess
		if _, err := sess.exec.start(context.Background(), func(context.Context) error {
			return sess.mgr.SpillAll()
		}); err == nil {
			s.metrics.sessionsSpilled.Add(1)
		}
	}
}

// enforceResidentCap is the resident-byte valve: while the pool's
// combined heap-resident node bytes exceed MaxResidentBytes, the coldest
// sessions (least recently used first) are spilled to disk, synchronously
// through their executors, until the pool fits. The requesting session
// may itself be spilled if it is the coldest — its next operation
// unspills on demand. ctx bounds the wait on each session's executor.
func (s *Server) enforceResidentCap(ctx context.Context) {
	if s.cfg.SpillDir == "" || s.cfg.MaxResidentBytes <= 0 {
		return
	}
	capacity := uint64(s.cfg.MaxResidentBytes)
	resident, _ := s.poolSpill()
	if resident <= capacity {
		return
	}
	sessions := s.reg.list()
	sort.Slice(sessions, func(i, j int) bool {
		return sessions[i].lastUsed.Load() < sessions[j].lastUsed.Load()
	})
	for _, sess := range sessions {
		if resident <= capacity {
			return
		}
		if sess.isPoisoned() {
			continue
		}
		st := sess.stats()
		if st == nil || st.ResidentBytes == 0 {
			continue
		}
		sess := sess
		if err := sess.exec.submit(ctx, func(context.Context) error {
			return sess.mgr.SpillAll()
		}); err == nil {
			s.metrics.sessionsSpilled.Add(1)
		}
		resident, _ = s.poolSpill()
	}
}

// Handler returns the routed HTTP handler for the whole API surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.routes(mux)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// Like healthz, readyz bypasses instrumentation and admission: a
	// load balancer's probe must not be shed by the in-flight cap.
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.metricsHandler())
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Shutdown closes every session, draining each session executor's queued
// work first, and stops the janitor. The HTTP listener itself is drained
// by http.Server.Shutdown before this is called (see cmd/bfbdd-serve).
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutdownOnce.Do(func() {
		s.StartDrain()
		if s.fol != nil {
			s.fol.shutdown()
		}
		close(s.janitorStop)
		select {
		case <-s.janitorDone:
		case <-ctx.Done():
			err = ctx.Err()
			return
		}
		if s.ckpt != nil {
			// Final pass while sessions are still live, so a graceful stop
			// persists the latest state; closeAll below deliberately leaves
			// the files for the next process.
			s.ckpt.shutdown()
			s.ckpt.checkpointAll()
		}
		err = s.reg.closeAll(ctx)
	})
	return err
}
