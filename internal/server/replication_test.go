package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bfbdd/internal/replication"
	"bfbdd/internal/wal"
)

// followConfig is walConfig plus the hot-standby knobs pointed at primary.
func followConfig(dir, primary string) Config {
	cfg := walConfig(dir)
	cfg.FollowURL = primary
	return cfg
}

// waitUntil polls cond every 25ms until it returns true or the deadline
// passes; the follower machinery is asynchronous (status reconcile every
// second, bootstrap on a puller goroutine), so tests converge on state
// instead of sleeping fixed amounts.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// readyzCode fetches /readyz without asserting a status.
func readyzCode(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestReplicationFollowerServesReadsAndPromotes is the end-to-end
// lifecycle: a follower bootstraps a primary's session from a snapshot,
// serves every read with identical signatures, refuses writes with 421
// and the primary's URL, streams new records within the lag bound,
// promotes into a writable primary at a bumped epoch, and leaves behind
// a WAL history that fences stale-epoch openers.
func TestReplicationFollowerServesReadsAndPromotes(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	_, ts1 := testServer(t, walConfig(dir1))
	sid := createSession(t, ts1.URL, SessionOptions{Vars: 6})
	ledger := buildMixedWorkload(t, ts1.URL, sid)

	srv2, ts2 := testServer(t, followConfig(dir2, ts1.URL))
	if !srv2.isFollower() {
		t.Fatal("server with FollowURL did not come up as a follower")
	}
	waitUntil(t, 30*time.Second, "follower readiness", func() bool {
		return readyzCode(t, ts2.URL) == http.StatusOK
	})

	// Every handle the primary acknowledged reads back with the same
	// canonical signature on the follower.
	for h, want := range ledger {
		if got := sigOf(t, ts2.URL, sid, h); got != want {
			t.Errorf("handle %d: follower signature %s, primary acknowledged %s", h, got, want)
		}
	}

	// Mutations are misdirected to the primary.
	code, out := call(t, "POST", ts2.URL+"/v1/sessions/"+sid+"/vars",
		map[string]any{"index": 5})
	if code != http.StatusMisdirectedRequest {
		t.Fatalf("follower mutation: got %d want 421 (body %v)", code, out)
	}
	if p, _ := out["primary"].(string); p != ts1.URL {
		t.Fatalf("421 body points at %q, want the primary %q", out["primary"], ts1.URL)
	}
	code, _ = call(t, "POST", ts2.URL+"/v1/sessions", SessionOptions{Vars: 2})
	if code != http.StatusMisdirectedRequest {
		t.Fatalf("follower session create: got %d want 421", code)
	}

	// New records stream across: a fresh mutation on the primary becomes
	// readable on the follower.
	nh := mkVar(t, ts1.URL, sid, 5, false)
	want := sigOf(t, ts1.URL, sid, nh)
	waitUntil(t, 15*time.Second, "tail replication", func() bool {
		c, o := call(t, "POST", ts2.URL+"/v1/sessions/"+sid+"/query",
			map[string]any{"kind": "signature", "f": nh})
		s, _ := o["signature"].(string)
		return c == http.StatusOK && s == want
	})

	// Promote: writable at epoch 2, durably persisted, idempotent.
	out = mustCall(t, "POST", ts2.URL+"/v1/admin/promote", nil, http.StatusOK)
	if e, _ := out["epoch"].(float64); e != 2 {
		t.Fatalf("promote epoch = %v, want 2", out["epoch"])
	}
	if p, _ := out["promoted"].(bool); !p {
		t.Fatalf("promote did not report promoted: %v", out)
	}
	if srv2.isFollower() {
		t.Fatal("still a follower after promote")
	}
	ph := mkVar(t, ts2.URL, sid, 4, true)
	if sigOf(t, ts2.URL, sid, ph) == "" {
		t.Fatal("post-promote mutation did not produce a signature")
	}
	out = mustCall(t, "POST", ts2.URL+"/v1/admin/promote", nil, http.StatusOK)
	if a, _ := out["already_primary"].(bool); !a {
		t.Fatalf("second promote not idempotent: %v", out)
	}
	if e, err := replication.LoadEpoch(dir2); err != nil || e != 2 {
		t.Fatalf("persisted epoch = %d, %v; want 2", e, err)
	}

	// The promoted history is stamped with the new epoch: an opener still
	// at epoch 1 — a restarted old primary adopting this directory — is
	// fenced off instead of appending to the newer timeline.
	cp := copyDurabilityDir(t, dir2)
	cs, err := wal.VerifyChain(wal.Dir(cp), sid)
	if err != nil {
		t.Fatalf("verify promoted chain: %v", err)
	}
	if cs.MaxEpoch < 2 {
		t.Fatalf("promoted chain max epoch = %d, want >= 2", cs.MaxEpoch)
	}
	if _, err := wal.Open(wal.Dir(cp), sid, cs.LastSeq,
		wal.Options{Policy: wal.SyncAlways, Epoch: 1}, nil); !errors.Is(err, wal.ErrFenced) {
		t.Fatalf("stale-epoch open: got %v, want ErrFenced", err)
	}
	if lg, err := wal.Open(wal.Dir(cp), sid, cs.LastSeq,
		wal.Options{Policy: wal.SyncAlways, Epoch: 2}, nil); err != nil {
		t.Fatalf("current-epoch open refused: %v", err)
	} else {
		lg.Close()
	}
}

// TestReplicationFollowerReadyzTransitions: a follower with an
// unreachable primary never reports ready; a draining primary flips
// unready while staying alive on /healthz.
func TestReplicationFollowerReadyzTransitions(t *testing.T) {
	srv, ts := testServer(t, followConfig(t.TempDir(), "http://127.0.0.1:1")) // nothing listens there
	if code := readyzCode(t, ts.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("unbootstrapped follower readyz = %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz on follower: %v %v", resp, err)
	}
	resp.Body.Close()

	srv2, ts2 := testServer(t, Config{})
	if code := readyzCode(t, ts2.URL); code != http.StatusOK {
		t.Fatalf("primary readyz = %d, want 200", code)
	}
	srv2.StartDrain()
	if code := readyzCode(t, ts2.URL); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", code)
	}
	_ = srv
}

// TestReplicationPrimaryEndpoints exercises the wire surface a follower
// consumes — status coordinates, snapshot chaining, long-poll batches,
// the 204 idle answer — plus the truncation coordination: an attached
// follower's acked watermark holds WAL truncation back, and only after
// the follower is forgotten does the chain recede to "410, re-bootstrap".
func TestReplicationPrimaryEndpoints(t *testing.T) {
	dir := t.TempDir()
	srv, ts := testServer(t, walConfig(dir))
	sid := createSession(t, ts.URL, SessionOptions{Vars: 4})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	v1 := mkVar(t, ts.URL, sid, 1, false)
	apply(t, ts.URL, sid, "and", v0, v1)

	client, err := replication.NewClient(ts.URL, "f-test")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Writable || st.Epoch != 1 {
		t.Fatalf("status = %+v, want writable at epoch 1", st)
	}
	var head uint64
	for _, ss := range st.Sessions {
		if ss.Session == sid {
			head = ss.LastSeq
		}
	}
	if head == 0 {
		t.Fatalf("session %s missing from status %+v", sid, st)
	}

	rc, info, err := client.Snapshot(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if info.BaseSeq != head || info.Epoch != 1 {
		t.Fatalf("snapshot info = %+v, want base %d at epoch 1", info, head)
	}

	batch, err := client.PollWAL(ctx, sid, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if batch == nil || batch.LastSeq != head || batch.Epoch != 1 {
		t.Fatalf("full-history batch = %+v, want through seq %d", batch, head)
	}
	n := 0
	if _, err := wal.ScanFrames(batch.Frames, func(wal.Entry) error { n++; return nil }); err != nil {
		t.Fatalf("shipped frames do not scan: %v", err)
	}
	if uint64(n) != head {
		t.Fatalf("batch carries %d frames, want %d", n, head)
	}

	// The follower's acked watermark is still 0 (it only ever polled from
	// 0), so a checkpoint must not truncate the history it still needs.
	srv.ckpt.checkpointAll()
	if batch, err = client.PollWAL(ctx, sid, 0, 0); err != nil || batch == nil || batch.LastSeq != head {
		t.Fatalf("post-checkpoint poll with attached follower: %+v, %v", batch, err)
	}

	// Caught up: the long poll answers 204 (nil batch) once the wait
	// window expires with nothing new. Polling from head also raises the
	// follower's acked watermark there.
	batch, err = client.PollWAL(ctx, sid, head, 50*time.Millisecond)
	if err != nil || batch != nil {
		t.Fatalf("idle poll = %+v, %v; want nil, nil", batch, err)
	}

	// With everything acked, the next checkpoint truncates below the
	// snapshot and a full-history poll now demands a bootstrap.
	srv.ckpt.checkpointAll()
	if _, err = client.PollWAL(ctx, sid, 0, 0); !errors.Is(err, replication.ErrSnapshotRequired) {
		t.Fatalf("poll into truncated range: %v, want ErrSnapshotRequired", err)
	}

	if _, err = client.PollWAL(ctx, "s-nonexistent", 0, 0); !errors.Is(err, replication.ErrSessionGone) {
		t.Fatalf("poll for unknown session: %v, want ErrSessionGone", err)
	}
}

// TestReplicationApplyDedupTornAndStaleEpoch drives the follower's batch
// apply path directly with crafted wire batches: duplicate delivery
// after a reconnect skips idempotently, a torn final frame applies the
// clean prefix, a wholly torn batch errors (backoff, not spin), a
// sequence gap and a stale-epoch batch both read as divergence.
func TestReplicationApplyDedupTornAndStaleEpoch(t *testing.T) {
	srv, ts := testServer(t, walConfig(t.TempDir()))
	sid := createSession(t, ts.URL, SessionOptions{Vars: 8})
	v0 := mkVar(t, ts.URL, sid, 0, false)
	sess, err := srv.reg.get(sid)
	if err != nil {
		t.Fatal(err)
	}
	base := sess.wal.Seq()

	f := &follower{s: srv}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	defer f.cancel()
	p := newPuller(f, sid, base)
	p.localSeq.Store(base)

	frame := func(seq uint64, idx int) []byte {
		return wal.AppendFrame(nil, wal.EncodeRecord(seq, wal.VarRec{Handle: v0 + uint64(idx), Index: idx}))
	}
	batch := func(frames []byte, last uint64) *replication.WALBatch {
		return &replication.WALBatch{Epoch: 1, LastSeq: last, Frames: frames}
	}

	// A clean single-record batch applies and advances the local head.
	if err := p.apply(sess, batch(frame(base+1, 1), base+1)); err != nil {
		t.Fatalf("clean apply: %v", err)
	}
	if got := sess.wal.Seq(); got != base+1 {
		t.Fatalf("local head = %d after apply, want %d", got, base+1)
	}
	sig1 := sigOf(t, ts.URL, sid, v0+1)

	// Duplicate delivery (a reconnect re-fetching from an older from):
	// no error, no new append, no signature change.
	if err := p.apply(sess, batch(frame(base+1, 1), base+1)); err != nil {
		t.Fatalf("duplicate apply: %v", err)
	}
	if got := sess.wal.Seq(); got != base+1 {
		t.Fatalf("duplicate delivery advanced the log to %d", got)
	}
	if got := sigOf(t, ts.URL, sid, v0+1); got != sig1 {
		t.Fatalf("duplicate delivery changed the function: %s -> %s", sig1, got)
	}

	// Torn final frame: two records shipped, the last one cut mid-frame.
	// The intact prefix applies; the refetch then completes the pair
	// (record one deduped, record two applied).
	two := append(frame(base+2, 2), frame(base+3, 3)...)
	if err := p.apply(sess, batch(two[:len(two)-3], base+3)); err != nil {
		t.Fatalf("torn-tail apply: %v", err)
	}
	if got := sess.wal.Seq(); got != base+2 {
		t.Fatalf("torn tail applied through %d, want the prefix %d", got, base+2)
	}
	if err := p.apply(sess, batch(two, base+3)); err != nil {
		t.Fatalf("refetch after tear: %v", err)
	}
	if got := sess.wal.Seq(); got != base+3 {
		t.Fatalf("refetch applied through %d, want %d", got, base+3)
	}
	if sigOf(t, ts.URL, sid, v0+3) == "" {
		t.Fatal("record after the tear never became readable")
	}

	// A batch torn inside its first frame carries nothing applicable and
	// must error so the puller backs off instead of spinning.
	head := sess.wal.Seq()
	if err := p.apply(sess, batch(frame(head+1, 4)[:3], head+1)); err == nil {
		t.Fatal("wholly torn batch applied silently")
	}
	if got := sess.wal.Seq(); got != head {
		t.Fatalf("wholly torn batch advanced the log to %d", got)
	}

	// A sequence gap is divergence: only a re-bootstrap can continue.
	if err := p.apply(sess, batch(frame(head+5, 5), head+5)); !errors.Is(err, errReplDiverged) {
		t.Fatalf("gapped batch: %v, want errReplDiverged", err)
	}

	// A batch from a fenced-off epoch is refused and counted.
	srv.epoch.Store(7)
	before := srv.metrics.replStaleEpochRefusals.Load()
	err = p.apply(sess, &replication.WALBatch{Epoch: 1, LastSeq: head + 1, Frames: frame(head+1, 6)})
	if !errors.Is(err, errReplDiverged) || !strings.Contains(fmt.Sprint(err), "stale epoch") {
		t.Fatalf("stale-epoch batch: %v, want stale-epoch divergence", err)
	}
	if got := srv.metrics.replStaleEpochRefusals.Load(); got != before+1 {
		t.Fatalf("stale-epoch refusals %d -> %d, want +1", before, got)
	}
	if got := sess.wal.Seq(); got != head {
		t.Fatalf("stale-epoch batch advanced the log to %d", got)
	}
}

// TestReplicationFollowerRestartResumesWithoutBootstrap: a follower
// checkpoints what it bootstrapped, so a restarted follower resumes the
// tail from its own durable copy — zero snapshot re-transfers — and
// still catches up on records minted while it was down.
func TestReplicationFollowerRestartResumesWithoutBootstrap(t *testing.T) {
	dir2 := t.TempDir()
	_, ts1 := testServer(t, walConfig(t.TempDir()))
	sid := createSession(t, ts1.URL, SessionOptions{Vars: 4})
	mkVar(t, ts1.URL, sid, 0, false)

	srvA := New(followConfig(dir2, ts1.URL))
	tsA := httptest.NewServer(srvA.Handler())
	waitUntil(t, 30*time.Second, "first follower readiness", func() bool {
		return readyzCode(t, tsA.URL) == http.StatusOK
	})
	if srvA.metrics.replBootstraps.Load() == 0 {
		t.Fatal("first follower never bootstrapped")
	}
	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := srvA.Shutdown(ctx)
	cancel()
	if err != nil {
		t.Fatalf("first follower shutdown: %v", err)
	}

	// Records minted while the follower is down form the tail the
	// restarted follower must pull on top of its local checkpoint.
	nh := mkVar(t, ts1.URL, sid, 1, false)
	want := sigOf(t, ts1.URL, sid, nh)

	srvB, tsB := testServer(t, followConfig(dir2, ts1.URL))
	waitUntil(t, 30*time.Second, "restarted follower readiness", func() bool {
		return readyzCode(t, tsB.URL) == http.StatusOK
	})
	waitUntil(t, 15*time.Second, "tail catch-up after restart", func() bool {
		c, o := call(t, "POST", tsB.URL+"/v1/sessions/"+sid+"/query",
			map[string]any{"kind": "signature", "f": nh})
		s, _ := o["signature"].(string)
		return c == http.StatusOK && s == want
	})
	if n := srvB.metrics.replBootstraps.Load(); n != 0 {
		t.Fatalf("restarted follower re-bootstrapped %d times; want resume from the local checkpoint", n)
	}
}
