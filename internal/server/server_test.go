package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// testServer spins up the full handler stack on an httptest listener.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, ts
}

// call performs one JSON round trip and decodes the response body.
func call(t *testing.T, method, url string, req any) (int, map[string]any) {
	t.Helper()
	var body io.Reader
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		body = bytes.NewReader(b)
	}
	hreq, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	out := map[string]any{}
	if len(raw) > 0 && strings.Contains(resp.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("unmarshal %q: %v", raw, err)
		}
	} else {
		out["raw"] = string(raw)
	}
	return resp.StatusCode, out
}

// mustCall is call asserting an expected status.
func mustCall(t *testing.T, method, url string, req any, wantCode int) map[string]any {
	t.Helper()
	code, out := call(t, method, url, req)
	if code != wantCode {
		t.Fatalf("%s %s: got %d want %d (body %v)", method, url, code, wantCode, out)
	}
	return out
}

func createSession(t *testing.T, base string, opts SessionOptions) string {
	t.Helper()
	out := mustCall(t, "POST", base+"/v1/sessions", opts, http.StatusCreated)
	id, _ := out["session"].(string)
	if id == "" {
		t.Fatalf("no session id in %v", out)
	}
	return id
}

func handleOf(t *testing.T, out map[string]any) uint64 {
	t.Helper()
	h, ok := out["handle"].(float64)
	if !ok {
		t.Fatalf("no handle in %v", out)
	}
	return uint64(h)
}

// mkVar declares variable i and returns its wire handle.
func mkVar(t *testing.T, base, sid string, i int, neg bool) uint64 {
	t.Helper()
	out := mustCall(t, "POST", base+"/v1/sessions/"+sid+"/vars",
		map[string]any{"index": i, "negated": neg}, http.StatusOK)
	return handleOf(t, out)
}

// apply runs one coalesced binary op and returns the result handle.
func apply(t *testing.T, base, sid, op string, f, g uint64) uint64 {
	t.Helper()
	out := mustCall(t, "POST", base+"/v1/sessions/"+sid+"/apply",
		map[string]any{"op": op, "f": f, "g": g}, http.StatusOK)
	return handleOf(t, out)
}

// buildDNF constructs an OR of random conjunctions of literals over the
// session — enough real engine work to light up the worker counters.
func buildDNF(t *testing.T, base, sid string, rng *rand.Rand, vars, terms, width int) uint64 {
	t.Helper()
	acc := uint64(0)
	for i := 0; i < terms; i++ {
		cube := mkVar(t, base, sid, rng.Intn(vars), rng.Intn(2) == 0)
		for j := 1; j < width; j++ {
			lit := mkVar(t, base, sid, rng.Intn(vars), rng.Intn(2) == 0)
			cube = apply(t, base, sid, "and", cube, lit)
		}
		if acc == 0 {
			acc = cube
		} else {
			acc = apply(t, base, sid, "or", acc, cube)
		}
	}
	return acc
}

// metricValue extracts one sample value from Prometheus text exposition.
func metricValue(t *testing.T, body, name, labels string) float64 {
	t.Helper()
	pat := regexp.QuoteMeta(name)
	if labels != "" {
		pat += `\{[^}]*` + regexp.QuoteMeta(labels) + `[^}]*\}`
	}
	re := regexp.MustCompile(`(?m)^` + pat + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s{%s} not found", name, labels)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: bad value %q", name, m[1])
	}
	return v
}

// TestServerSessionLifecycle drives a full session end to end over HTTP:
// create on the parallel engine, build, query every read endpoint, check
// the metrics surface, close, and verify the session is really gone.
func TestServerSessionLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL
	rng := rand.New(rand.NewSource(7))

	mustCall(t, "GET", base+"/healthz", nil, http.StatusOK)

	const vars = 18
	sid := createSession(t, base, SessionOptions{Vars: vars, Engine: "par", Workers: 2})

	f := buildDNF(t, base, sid, rng, vars, 20, 6)
	g := buildDNF(t, base, sid, rng, vars, 20, 6)
	fg := apply(t, base, sid, "xor", f, g)

	// ITE(f, g, f xor g) — exercises the ternary path.
	out := mustCall(t, "POST", base+"/v1/sessions/"+sid+"/ite",
		map[string]any{"f": f, "g": g, "h": fg}, http.StatusOK)
	ite := handleOf(t, out)

	out = mustCall(t, "POST", base+"/v1/sessions/"+sid+"/not",
		map[string]any{"f": fg}, http.StatusOK)
	nfg := handleOf(t, out)

	out = mustCall(t, "POST", base+"/v1/sessions/"+sid+"/quantify",
		map[string]any{"kind": "exists", "f": fg, "vars": []int{0, 1, 2}}, http.StatusOK)
	ex := handleOf(t, out)

	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/restrict",
		map[string]any{"f": fg, "var": 3, "value": true}, http.StatusOK)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/compose",
		map[string]any{"f": fg, "var": 2, "g": g}, http.StatusOK)

	// not(f xor g) must differ from f xor g, and exists must not equal zero
	// unless fg itself was constant.
	out = mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "equal", "f": fg, "g": nfg}, http.StatusOK)
	if eq, _ := out["equal"].(bool); eq {
		t.Fatalf("fg and not(fg) reported equal")
	}
	_ = ite
	_ = ex

	out = mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "size", "f": fg}, http.StatusOK)
	if n, _ := out["nodes"].(float64); n < 2 {
		t.Fatalf("fg size %v, want >= 2", out["nodes"])
	}
	out = mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "satcount", "f": fg}, http.StatusOK)
	if sc, _ := out["satcount"].(string); sc == "" || sc == "0" {
		t.Fatalf("satcount %v, want nonzero", out["satcount"])
	}
	out = mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "anysat", "f": fg}, http.StatusOK)
	if sat, _ := out["sat"].(bool); !sat {
		t.Fatalf("anysat found no assignment for a non-constant BDD")
	}
	// Evaluate the assignment anysat produced: must be true.
	assign := make([]bool, vars)
	for k, v := range out["assignment"].(map[string]any) {
		idx, err := strconv.Atoi(k)
		if err != nil {
			t.Fatalf("bad var key %q", k)
		}
		assign[idx] = v.(bool)
	}
	out = mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "eval", "f": fg, "assignment": assign}, http.StatusOK)
	if val, _ := out["value"].(bool); !val {
		t.Fatalf("eval of anysat witness is false")
	}
	out = mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "support", "f": fg}, http.StatusOK)
	if sup, _ := out["vars"].([]any); len(sup) == 0 {
		t.Fatalf("empty support for non-constant BDD")
	}

	// DOT export.
	resp, err := http.Get(base + "/v1/sessions/" + sid + "/bdds/" + fmt.Sprint(fg) + "/dot")
	if err != nil {
		t.Fatalf("dot: %v", err)
	}
	dot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(dot), "digraph") {
		t.Fatalf("dot: code %d body %.80s", resp.StatusCode, dot)
	}

	// GC endpoint and stats.
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/gc", nil, http.StatusOK)
	stats := mustCall(t, "GET", base+"/v1/sessions/"+sid+"/stats", nil, http.StatusOK)
	if ops, _ := stats["ops"].(float64); ops <= 0 {
		t.Fatalf("session stats ops = %v, want > 0", stats["ops"])
	}

	// Session listing and info.
	out = mustCall(t, "GET", base+"/v1/sessions", nil, http.StatusOK)
	if n := len(out["sessions"].([]any)); n != 1 {
		t.Fatalf("listed %d sessions, want 1", n)
	}
	mustCall(t, "GET", base+"/v1/sessions/"+sid, nil, http.StatusOK)

	// Metrics: the parallel engine must have done real work on behalf of
	// this session, and the serving layer must have counted the traffic.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(mb)
	lbl := `session="` + sid + `"`
	if v := metricValue(t, body, "bfbdd_session_ops_total", lbl); v <= 0 {
		t.Fatalf("bfbdd_session_ops_total = %g, want > 0", v)
	}
	if v := metricValue(t, body, "bfbdd_session_live_nodes", lbl); v <= 0 {
		t.Fatalf("bfbdd_session_live_nodes = %g, want > 0", v)
	}
	if v := metricValue(t, body, "bfbdd_sessions_open", ""); v != 1 {
		t.Fatalf("bfbdd_sessions_open = %g, want 1", v)
	}
	if v := metricValue(t, body, "bfbdd_session_gc_runs_total", lbl); v <= 0 {
		t.Fatalf("bfbdd_session_gc_runs_total = %g, want > 0", v)
	}
	// Latency series for at least the apply route.
	if !strings.Contains(body, `bfbdd_http_request_duration_seconds_count{route="POST /v1/sessions/{sid}/apply"}`) {
		t.Fatalf("missing apply route latency series")
	}

	// Free a handle, then confirm it is gone.
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/free",
		map[string]any{"handles": []uint64{ite}}, http.StatusOK)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "size", "f": ite}, http.StatusBadRequest)

	// Close: first succeeds, second 404s, subsequent use 404s.
	mustCall(t, "DELETE", base+"/v1/sessions/"+sid, nil, http.StatusOK)
	mustCall(t, "DELETE", base+"/v1/sessions/"+sid, nil, http.StatusNotFound)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/vars",
		map[string]any{"index": 0}, http.StatusNotFound)
}

// TestServerCoalescing fires a burst of concurrent applies and checks the
// coalescer actually merged them into fewer engine batches.
func TestServerCoalescing(t *testing.T) {
	srv, ts := testServer(t, Config{CoalesceWindow: 25 * time.Millisecond})
	base := ts.URL
	rng := rand.New(rand.NewSource(11))

	const vars = 16
	sid := createSession(t, base, SessionOptions{Vars: vars, Engine: "par", Workers: 2})
	f := buildDNF(t, base, sid, rng, vars, 8, 5)
	g := buildDNF(t, base, sid, rng, vars, 8, 5)

	const burst = 16
	ops := []string{"and", "or", "xor", "nand", "nor", "xnor", "diff", "implies"}
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			code, out := call(t, "POST", base+"/v1/sessions/"+sid+"/apply",
				map[string]any{"op": ops[i%len(ops)], "f": f, "g": g})
			if code != http.StatusOK {
				errs <- fmt.Errorf("apply %d: code %d body %v", i, code, out)
			}
		}(i)
	}
	before := srv.metrics.coalescedBatches.Load()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	batches := srv.metrics.coalescedBatches.Load() - before
	if batches == 0 {
		t.Fatalf("no coalesced batches recorded")
	}
	if batches >= burst {
		t.Fatalf("burst of %d applies ran as %d batches; expected coalescing", burst, batches)
	}
	t.Logf("%d applies coalesced into %d batches", burst, batches)
}

// TestServerErrors checks the error mapping, including the panic firewall
// that turns engine misuse panics into 400s without killing the server.
func TestServerErrors(t *testing.T) {
	_, ts := testServer(t, Config{MaxSessions: 1})
	base := ts.URL

	// Bad session options.
	mustCall(t, "POST", base+"/v1/sessions", SessionOptions{Vars: 0}, http.StatusBadRequest)
	mustCall(t, "POST", base+"/v1/sessions",
		SessionOptions{Vars: 4, Engine: "quantum"}, http.StatusBadRequest)

	sid := createSession(t, base, SessionOptions{Vars: 4})

	// Session cap.
	mustCall(t, "POST", base+"/v1/sessions", SessionOptions{Vars: 4}, http.StatusTooManyRequests)

	// Unknown session, unknown handle, malformed JSON, unknown op.
	mustCall(t, "POST", base+"/v1/sessions/s-nope/vars",
		map[string]any{"index": 0}, http.StatusNotFound)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "size", "f": 999}, http.StatusBadRequest)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/apply",
		map[string]any{"op": "xorish", "f": 1, "g": 2}, http.StatusBadRequest)
	resp, err := http.Post(base+"/v1/sessions/"+sid+"/vars", "application/json",
		strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("malformed post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: code %d, want 400", resp.StatusCode)
	}

	// Out-of-range variable index is caught by handler validation.
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/vars",
		map[string]any{"index": 99}, http.StatusBadRequest)

	// Wrong-length eval assignment is caught before reaching the engine.
	h := mkVar(t, base, sid, 0, false)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "eval", "f": h, "assignment": []bool{true}}, http.StatusBadRequest)

	// Panic firewall: quantifying over an out-of-range variable reaches the
	// engine, which panics with a "bfbdd:"-prefixed message; the server must
	// answer 400 and stay alive.
	out := mustCall(t, "POST", base+"/v1/sessions/"+sid+"/quantify",
		map[string]any{"kind": "exists", "f": h, "vars": []int{99}}, http.StatusBadRequest)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "bfbdd:") {
		t.Fatalf("firewall error %q does not carry the engine message", out["error"])
	}
	// Still alive and serving.
	mustCall(t, "GET", base+"/healthz", nil, http.StatusOK)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "size", "f": h}, http.StatusOK)
}

// TestServerGracefulShutdown checks that Shutdown drains accepted session
// work and closes every manager.
func TestServerGracefulShutdown(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	base := ts.URL
	rng := rand.New(rand.NewSource(3))

	sid := createSession(t, base, SessionOptions{Vars: 14, Engine: "par", Workers: 2})
	f := buildDNF(t, base, sid, rng, 14, 6, 4)
	g := buildDNF(t, base, sid, rng, 14, 6, 4)
	apply(t, base, sid, "xor", f, g)

	sess, err := srv.reg.get(sid)
	if err != nil {
		t.Fatalf("get session: %v", err)
	}

	ts.Close() // drain HTTP first, as cmd/bfbdd-serve does
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if n := srv.reg.count(); n != 0 {
		t.Fatalf("%d sessions survived shutdown", n)
	}
	if !sess.mgr.Closed() {
		t.Fatalf("session manager not closed by shutdown")
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestServerIdleExpiry checks the janitor path via a tiny TTL.
func TestServerIdleExpiry(t *testing.T) {
	srv, ts := testServer(t, Config{SessionIdleExpiry: 50 * time.Millisecond})
	base := ts.URL
	sid := createSession(t, base, SessionOptions{Vars: 4})

	deadline := time.Now().Add(5 * time.Second)
	for srv.reg.count() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session %s not expired", sid)
		}
		// The janitor ticks at 1s minimum; help it along directly.
		srv.reg.expireIdle(srv.cfg.SessionIdleExpiry)
		time.Sleep(10 * time.Millisecond)
	}
	mustCall(t, "GET", base+"/v1/sessions/"+sid, nil, http.StatusNotFound)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if v := metricValue(t, string(mb), "bfbdd_sessions_expired_total", ""); v < 1 {
		t.Fatalf("bfbdd_sessions_expired_total = %g, want >= 1", v)
	}
}
