package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bfbdd"
	"bfbdd/internal/wal"
)

// Published-function errors.
var (
	errNoFunc     = errors.New("no such function")
	errFuncExists = errors.New("function already exists")
	// errFuncPoolFull means publishing would push the artifact registry
	// past its byte pool; artifacts have their own pool and never count
	// against session budgets, so this maps to 413 like a budget abort.
	errFuncPoolFull = errors.New("published-function byte pool exhausted")
	// errEvalTooLarge is the eval endpoint's 413: request body over the
	// size limit or batch over the assignment cap.
	errEvalTooLarge = errors.New("eval request too large")
)

// artifact is one published compiled function plus its bookkeeping. The
// Func itself is immutable, so the read path touches only it and the
// atomic counters — no locks.
type artifact struct {
	id      string
	fn      *bfbdd.CompiledFunc
	bytes   int64
	created time.Time
	source  string // session the artifact was published from; "" after reload

	evals       atomic.Uint64 // eval requests served
	assignments atomic.Uint64 // assignments evaluated
}

// funcRegistry owns the published artifacts: a lock-free lookup table
// for the eval hot path, a mutex serializing publish/delete/pool
// accounting, and optional disk persistence beside the checkpoints.
type funcRegistry struct {
	maxBytes int64  // 0 = unlimited
	dir      string // "" = memory only
	m        *metrics

	funcs sync.Map // string -> *artifact; the eval path reads only this
	mu    sync.Mutex
	total atomic.Int64 // bytes across all published artifacts
	count atomic.Int64
}

func newFuncRegistry(cfg Config, m *metrics) *funcRegistry {
	fr := &funcRegistry{maxBytes: cfg.MaxFuncBytes, m: m}
	if cfg.CheckpointDir != "" {
		fr.dir = filepath.Join(cfg.CheckpointDir, "funcs")
	}
	return fr
}

func newFuncID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: cannot read random bytes: " + err.Error())
	}
	return "f-" + hex.EncodeToString(b[:])
}

// validFuncID accepts caller-chosen artifact names: short, path-safe,
// and usable verbatim as a file stem.
func validFuncID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// get resolves an artifact id. Lock-free: eval traffic never contends
// with publishes or deletes.
func (fr *funcRegistry) get(id string) (*artifact, error) {
	if v, ok := fr.funcs.Load(id); ok {
		return v.(*artifact), nil
	}
	return nil, fmt.Errorf("%w: %s", errNoFunc, id)
}

// list returns every artifact sorted by id.
func (fr *funcRegistry) list() []*artifact {
	var out []*artifact
	fr.funcs.Range(func(_, v any) bool {
		out = append(out, v.(*artifact))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// publish registers fn under id, persisting it to disk first when a
// directory is configured: an artifact is only visible once it would
// also survive a crash.
func (fr *funcRegistry) publish(id, source string, fn *bfbdd.CompiledFunc) (*artifact, error) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if _, ok := fr.funcs.Load(id); ok {
		return nil, fmt.Errorf("%w: %s", errFuncExists, id)
	}
	a := &artifact{id: id, fn: fn, bytes: fn.MemBytes(), created: time.Now(), source: source}
	if fr.maxBytes > 0 && fr.total.Load()+a.bytes > fr.maxBytes {
		return nil, fmt.Errorf("%w: %d bytes live, %d requested, pool %d",
			errFuncPoolFull, fr.total.Load(), a.bytes, fr.maxBytes)
	}
	if fr.dir != "" {
		if err := fr.persist(a); err != nil {
			return nil, fmt.Errorf("persisting function %s: %w", id, err)
		}
	}
	fr.funcs.Store(id, a)
	fr.total.Add(a.bytes)
	fr.count.Add(1)
	fr.m.funcsPublished.Add(1)
	return a, nil
}

// remove unpublishes id and deletes its file.
func (fr *funcRegistry) remove(id string) error {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	v, ok := fr.funcs.LoadAndDelete(id)
	if !ok {
		return fmt.Errorf("%w: %s", errNoFunc, id)
	}
	a := v.(*artifact)
	fr.total.Add(-a.bytes)
	fr.count.Add(-1)
	if fr.dir != "" {
		if err := os.Remove(fr.path(id)); err != nil && !os.IsNotExist(err) {
			log.Printf("server: removing artifact file for %s: %v", id, err)
		}
	}
	return nil
}

func (fr *funcRegistry) path(id string) string {
	return filepath.Join(fr.dir, id+".fn")
}

// persist writes the artifact with the same temp + fsync + rename
// discipline as the checkpointer, so a crash leaves either the old file
// or the new one, never a torn write.
func (fr *funcRegistry) persist(a *artifact) error {
	if err := os.MkdirAll(fr.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(fr.dir, "."+a.id+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := a.fn.Serialize(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, fr.path(a.id)); err != nil {
		return err
	}
	tmpName = ""
	return nil
}

// reload restores every persisted artifact at startup, sweeping
// leftover temp files. Artifacts that fail to decode are renamed aside
// (never deleted — the bytes may still be recoverable) and skipped.
func (fr *funcRegistry) reload() {
	if fr.dir == "" {
		return
	}
	entries, err := os.ReadDir(fr.dir)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("server: reading artifact dir %s: %v", fr.dir, err)
		}
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".") {
			os.Remove(filepath.Join(fr.dir, name))
			continue
		}
		id, ok := strings.CutSuffix(name, ".fn")
		if !ok || !validFuncID(id) {
			continue
		}
		full := filepath.Join(fr.dir, name)
		f, err := os.Open(full)
		if err != nil {
			log.Printf("server: opening artifact %s: %v", full, err)
			continue
		}
		fn, err := bfbdd.LoadCompiled(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			log.Printf("server: artifact %s is corrupt, setting aside: %v", full, err)
			os.Rename(full, full+".corrupt")
			fr.m.funcReloadErrors.Add(1)
			continue
		}
		info, _ := e.Info()
		a := &artifact{id: id, fn: fn, bytes: fn.MemBytes(), created: time.Now()}
		if info != nil {
			a.created = info.ModTime()
		}
		fr.funcs.Store(id, a)
		fr.total.Add(a.bytes)
		fr.count.Add(1)
		fr.m.funcsRecovered.Add(1)
	}
}

// funcInfo is the wire shape of one published function.
type funcInfo struct {
	Func    string   `json:"func"`
	Vars    int      `json:"vars"`
	Nodes   int      `json:"nodes"`
	Roots   []uint64 `json:"roots"`
	Bytes   int64    `json:"bytes"`
	Created string   `json:"created"`
	Source  string   `json:"source,omitempty"`
	Evals   uint64   `json:"evals"`
}

func (a *artifact) info() funcInfo {
	return funcInfo{
		Func:    a.id,
		Vars:    a.fn.NumVars(),
		Nodes:   a.fn.NumNodes(),
		Roots:   a.fn.RootIDs(),
		Bytes:   a.bytes,
		Created: a.created.UTC().Format(time.RFC3339Nano),
		Source:  a.source,
		Evals:   a.evals.Load(),
	}
}

// handlePublish compiles session handles into a named immutable artifact.
// The compile itself runs on the session executor (it reads the live
// kernel), but the published artifact is independent of the session: it
// survives session close, expiry, and poisoning, and its bytes live in
// the artifact pool, not the session budget.
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) {
		return
	}
	sess, err := s.sessionOf(r)
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		// Name is the artifact id; generated when empty.
		Name string `json:"name,omitempty"`
		// Handles selects the roots; empty publishes every live handle.
		Handles []uint64 `json:"handles,omitempty"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	id := req.Name
	if id == "" {
		id = newFuncID()
	} else if !validFuncID(id) {
		fail(w, fmt.Errorf("%w: function name must be 1-64 characters of [a-zA-Z0-9_-]", errBadRequest))
		return
	}
	// Refuse early (and again under the publish lock) so a long compile is
	// not wasted on a name collision.
	if _, ok := s.funcs.funcs.Load(id); ok {
		fail(w, fmt.Errorf("%w: %s", errFuncExists, id))
		return
	}
	var fn *bfbdd.CompiledFunc
	err = run(r, sess, func(context.Context) error {
		handles := req.Handles
		if len(handles) == 0 {
			handles = make([]uint64, 0, len(sess.handles))
			for h := range sess.handles {
				handles = append(handles, h)
			}
			slices.Sort(handles)
		}
		if len(handles) == 0 {
			return fmt.Errorf("%w: session has no handles to publish", errBadRequest)
		}
		roots := make([]bfbdd.SnapshotRoot, len(handles))
		for i, h := range handles {
			b, err := sess.bdd(h)
			if err != nil {
				return err
			}
			roots[i] = bfbdd.SnapshotRoot{ID: h, B: b}
		}
		var cerr error
		fn, cerr = sess.mgr.CompileRoots(roots)
		return cerr
	})
	if err != nil {
		fail(w, err)
		return
	}
	a, err := s.funcs.publish(id, sess.id, fn)
	if err != nil {
		fail(w, err)
		return
	}
	// Audit record: the artifact has its own durable file, so the journal
	// entry only documents provenance in the session's history — a failure
	// must not unpublish what the artifact registry already committed.
	_ = sess.journal(wal.PublishRec{Name: id, Handles: req.Handles})
	s.metrics.funcBytesPublished.Add(uint64(a.bytes))
	writeJSON(w, http.StatusCreated, a.info())
}

func (s *Server) handleListFuncs(w http.ResponseWriter, r *http.Request) {
	arts := s.funcs.list()
	out := make([]funcInfo, 0, len(arts))
	for _, a := range arts {
		out = append(out, a.info())
	}
	writeJSON(w, http.StatusOK, map[string]any{"funcs": out})
}

func (s *Server) handleGetFunc(w http.ResponseWriter, r *http.Request) {
	a, err := s.funcs.get(r.PathValue("fid"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, a.info())
}

func (s *Server) handleDeleteFunc(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) {
		return
	}
	id := r.PathValue("fid")
	if err := s.funcs.remove(id); err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// handleEvalFunc is the lock-free batch evaluation endpoint: it never
// touches a session, an executor, or any lock — artifact lookup is a
// sync.Map read and evaluation runs on the immutable Func, so any number
// of eval requests proceed fully in parallel. Oversized bodies and
// over-cap batches are refused with 413.
func (s *Server) handleEvalFunc(w http.ResponseWriter, r *http.Request) {
	a, err := s.funcs.get(r.PathValue("fid"))
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		// Root selects the published root by its handle ID; defaults to
		// the artifact's first root.
		Root        *uint64  `json:"root,omitempty"`
		Assignments [][]bool `json:"assignments"`
	}
	// Not decode(): the eval endpoint has its own body limit, and hitting
	// it must map to 413, not 400.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxEvalBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			fail(w, fmt.Errorf("%w: body exceeds %d bytes", errEvalTooLarge, s.cfg.MaxEvalBodyBytes))
			return
		}
		fail(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if len(req.Assignments) == 0 {
		fail(w, fmt.Errorf("%w: no assignments", errBadRequest))
		return
	}
	if len(req.Assignments) > s.cfg.MaxEvalBatch {
		fail(w, fmt.Errorf("%w: batch of %d assignments exceeds cap %d",
			errEvalTooLarge, len(req.Assignments), s.cfg.MaxEvalBatch))
		return
	}
	root := 0
	if req.Root != nil {
		var ok bool
		if root, ok = a.fn.RootByID(*req.Root); !ok {
			fail(w, fmt.Errorf("%w: artifact has no root %d", errBadRequest, *req.Root))
			return
		}
	} else if a.fn.NumRoots() == 0 {
		fail(w, fmt.Errorf("%w: artifact has no roots", errBadRequest))
		return
	}
	for i, asn := range req.Assignments {
		if len(asn) != a.fn.NumVars() {
			fail(w, fmt.Errorf("%w: assignment %d has %d entries for %d variables",
				errBadRequest, i, len(asn), a.fn.NumVars()))
			return
		}
	}
	values := a.fn.EvalBatch(root, req.Assignments)
	a.evals.Add(1)
	a.assignments.Add(uint64(len(values)))
	s.metrics.funcEvalRequests.Add(1)
	s.metrics.funcEvalAssignments.Add(uint64(len(values)))
	s.metrics.funcBatchSizes.observe(len(values))
	writeJSON(w, http.StatusOK, map[string]any{"values": values})
}

// handleQueryFunc serves the artifact's analytical queries (satcount,
// anysat). Like eval, it runs entirely on the immutable artifact.
func (s *Server) handleQueryFunc(w http.ResponseWriter, r *http.Request) {
	a, err := s.funcs.get(r.PathValue("fid"))
	if err != nil {
		fail(w, err)
		return
	}
	var req struct {
		Kind string  `json:"kind"` // satcount | anysat
		Root *uint64 `json:"root,omitempty"`
	}
	if err := decode(w, r, &req); err != nil {
		fail(w, err)
		return
	}
	root := 0
	if req.Root != nil {
		var ok bool
		if root, ok = a.fn.RootByID(*req.Root); !ok {
			fail(w, fmt.Errorf("%w: artifact has no root %d", errBadRequest, *req.Root))
			return
		}
	} else if a.fn.NumRoots() == 0 {
		fail(w, fmt.Errorf("%w: artifact has no roots", errBadRequest))
		return
	}
	switch req.Kind {
	case "satcount":
		writeJSON(w, http.StatusOK, map[string]string{"satcount": a.fn.SatCount(root).String()})
	case "anysat":
		asn, ok := a.fn.AnySat(root)
		out := make(map[string]bool, len(asn))
		for v, val := range asn {
			out[fmt.Sprint(v)] = val
		}
		writeJSON(w, http.StatusOK, map[string]any{"sat": ok, "assignment": out})
	default:
		fail(w, fmt.Errorf("%w: unknown query kind %q", errBadRequest, req.Kind))
	}
}

// handleDownloadFunc streams the artifact in its wire format, so a
// client (or bfbdd-compile) can evaluate it offline.
func (s *Server) handleDownloadFunc(w http.ResponseWriter, r *http.Request) {
	a, err := s.funcs.get(r.PathValue("fid"))
	if err != nil {
		fail(w, err)
		return
	}
	var buf bytes.Buffer
	if err := a.fn.Serialize(&buf); err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}
