package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/replication"
	"bfbdd/internal/wal"
)

// Primary-side replication surface: the status/snapshot/WAL endpoints a
// follower consumes, the promotion entry point, the follower write
// fence, and the readiness probe. The follower side lives in
// follower.go.

// replMaxBatchBytes bounds one WAL long-poll response. A bootstrapping
// follower catches up in successive polls rather than one giant body,
// so a slow link never pins a multi-gigabyte buffer on the primary.
const replMaxBatchBytes = 4 << 20

// replWaitMax caps the client-requested long-poll window; it must stay
// below the hub's staleness bound or idle followers would flap out of
// the sync set between polls.
const replWaitMax = 30 * time.Second

// isFollower reports whether the server is currently a read-only
// replica: started with Config.FollowURL and not yet promoted.
func (s *Server) isFollower() bool {
	return s.fol != nil && !s.fol.promoted.Load()
}

// StartDrain flips /readyz unready so load balancers stop routing new
// work here ahead of a graceful stop. Serving itself continues.
func (s *Server) StartDrain() { s.draining.Store(true) }

// refuseWrites answers a mutation on a follower with 421 (misdirected
// request) and the primary's URL, and reports whether it did. Every
// mutating handler calls it first; read paths stay open.
func (s *Server) refuseWrites(w http.ResponseWriter) bool {
	if !s.isFollower() {
		return false
	}
	writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
		"error":   fmt.Sprintf("read-only follower at epoch %d: writes must go to the primary", s.epoch.Load()),
		"primary": s.cfg.FollowURL,
	})
	return true
}

// replCommit is the per-session ship hook: it wakes long-polling
// followers after every journal append and, under -wal-sync=always,
// holds the acknowledgment until the committed records have reached
// every connected follower's socket (or the sync timeout drops the
// laggards — counted, never silently absorbed).
func (s *Server) replCommit(sid string, seq uint64) {
	if s.hub == nil {
		return
	}
	s.hub.NotifyCommit(sid, seq)
	if s.walPolicy == wal.SyncAlways {
		if stalled := s.hub.AwaitDelivery(sid, seq, s.cfg.ReplSyncTimeout); stalled > 0 {
			s.metrics.replSyncStalls.Add(uint64(stalled))
		}
	}
}

// adoptEpoch raises the server's fencing epoch to epoch (never lowers
// it) and persists it. Followers call it when the primary's responses
// carry a newer epoch than their own.
func (s *Server) adoptEpoch(epoch uint64) {
	for {
		cur := s.epoch.Load()
		if epoch <= cur {
			return
		}
		if s.epoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	if s.cfg.CheckpointDir != "" {
		if err := replication.StoreEpoch(s.cfg.CheckpointDir, epoch); err != nil {
			log.Printf("server: cannot persist adopted epoch %d: %v", epoch, err)
		}
	}
}

// Promote seals replication and makes this server writable at a bumped
// epoch. On a server that never followed anyone it reports
// already-primary without touching the epoch. It returns the serving
// epoch and whether the server was already writable.
func (s *Server) Promote() (epoch uint64, already bool, err error) {
	if s.fol == nil {
		return s.epoch.Load(), true, nil
	}
	return s.fol.promote()
}

// handleReplStatus reports the replication coordinates a follower
// reconciles against: epoch, writability, every live session with its
// WAL chain head, and the published function ids.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if s.ckpt == nil {
		writeError(w, http.StatusServiceUnavailable, "replication requires a checkpoint dir")
		return
	}
	st := replication.Status{
		Epoch:    s.epoch.Load(),
		Writable: !s.isFollower(),
		Sessions: []replication.SessionStatus{},
		Funcs:    []string{},
	}
	for _, sess := range s.reg.list() {
		if sess.wal == nil {
			continue
		}
		st.Sessions = append(st.Sessions, replication.SessionStatus{
			Session: sess.id,
			LastSeq: sess.wal.Seq(),
		})
	}
	for _, a := range s.funcs.list() {
		st.Funcs = append(st.Funcs, a.id)
	}
	writeJSON(w, http.StatusOK, st)
}

// handleReplSnapshot streams a bootstrap snapshot of one session. The
// executor task captures the WAL sequence the snapshot covers, so the
// (snapshot, base) pair chains exactly: the follower applies records
// with sequence > base on top and misses nothing. Deliberately not
// journaled as an audit record — a replicated sequence consumed by a
// bootstrap would collide with the stream the follower applies.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.ckpt == nil {
		writeError(w, http.StatusServiceUnavailable, "replication requires a checkpoint dir")
		return
	}
	// reg.get, not sessionOf: replication traffic must not reset the
	// session's idle clock (followers would keep every session alive
	// forever) — but a poisoned session's state is still untrustworthy.
	sess, err := s.reg.get(r.PathValue("sid"))
	if err != nil {
		fail(w, err)
		return
	}
	if sess.isPoisoned() {
		fail(w, fmt.Errorf("%w: %s", errSessionPoisoned, sess.id))
		return
	}
	var buf bytes.Buffer
	var base uint64
	err = sess.exec.submit(r.Context(), func(context.Context) error {
		if sess.wal != nil {
			base = sess.wal.Seq()
		}
		return sess.snapshotTo(&buf)
	})
	if err != nil {
		fail(w, err)
		return
	}
	opts, err := json.Marshal(sess.opts)
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.Header().Set(replication.HeaderEpoch, strconv.FormatUint(s.epoch.Load(), 10))
	w.Header().Set(replication.HeaderBaseSeq, strconv.FormatUint(base, 10))
	w.Header().Set(replication.HeaderOptions, string(opts))
	w.WriteHeader(http.StatusOK)
	n, _ := buf.WriteTo(w)
	s.metrics.replSnapshotsServed.Add(1)
	s.metrics.replSnapshotBytesServed.Add(uint64(n))
}

// handleReplWAL is the long-poll WAL shipping endpoint: raw frames with
// sequence in (from, head], straight off the on-disk segments (which
// hold exactly the committed, fsynced-per-policy history — shipping
// never outruns durability). 204 when nothing new arrived within the
// wait window; 410 when the range was truncated away and the follower
// must re-bootstrap from a snapshot.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if s.ckpt == nil {
		writeError(w, http.StatusServiceUnavailable, "replication requires a checkpoint dir")
		return
	}
	sid := r.PathValue("sid")
	sess, err := s.reg.get(sid)
	if err != nil {
		fail(w, err)
		return
	}
	q := r.URL.Query()
	var from uint64
	if v := q.Get("from"); v != "" {
		if from, err = strconv.ParseUint(v, 10, 64); err != nil {
			fail(w, fmt.Errorf("%w: bad from %q", errBadRequest, v))
			return
		}
	}
	fid := q.Get("follower")
	wait := 10 * time.Second
	if v := q.Get("wait"); v != "" {
		if d, perr := time.ParseDuration(v); perr == nil && d >= 0 {
			wait = d
		}
	}
	if wait > replWaitMax {
		wait = replWaitMax
	}
	if fid != "" {
		// from doubles as the follower's acked watermark: it owns
		// everything at or below it, which is what the checkpointer's
		// truncation floor protects.
		s.hub.Seen(fid, sid, from)
	}

	head := uint64(0)
	if sess.wal != nil {
		head = sess.wal.Seq()
	}
	if head <= from {
		s.hub.WaitCommit(r.Context(), sid, from, wait)
		if sess.wal != nil {
			head = sess.wal.Seq()
		}
		if head <= from {
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}

	frames, last, err := wal.CollectFrames(s.ckpt.walDir, sid, from, head, replMaxBatchBytes)
	if err != nil {
		if errors.Is(err, wal.ErrNoChain) {
			writeError(w, http.StatusGone,
				fmt.Sprintf("records after %d truncated away; bootstrap from a snapshot", from))
			return
		}
		fail(w, err)
		return
	}
	if len(frames) == 0 {
		// head > from yet the chain produced nothing: the range was
		// truncated into a snapshot (the post-truncation segment is still
		// empty, so CollectFrames sees no gap to report). Only a
		// bootstrap can continue from here.
		writeError(w, http.StatusGone,
			fmt.Sprintf("records after %d truncated away; bootstrap from a snapshot", from))
		return
	}
	if faultinject.Enabled {
		if ferr := faultinject.Check(faultinject.ReplShip); ferr != nil {
			// Simulate a connection severed mid-body: ship a torn prefix.
			// The follower's frame scan stops at the tear, applies the
			// clean prefix, and repolls from there — exactly the real
			// disconnect recovery path.
			frames = frames[:len(frames)/2]
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(frames)))
	w.Header().Set(replication.HeaderEpoch, strconv.FormatUint(s.epoch.Load(), 10))
	w.Header().Set(replication.HeaderLastSeq, strconv.FormatUint(last, 10))
	w.WriteHeader(http.StatusOK)
	if _, werr := w.Write(frames); werr != nil {
		return // connection died; the follower applies the prefix it got
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	if fid != "" {
		s.hub.Delivered(fid, sid, last)
	}
	s.metrics.replBatchesShipped.Add(1)
	s.metrics.replBytesShipped.Add(uint64(len(frames)))
}

// handlePromote is POST /v1/admin/promote: seal replication, bump and
// persist the fencing epoch, stamp it into every live WAL, and serve
// writable. Idempotent — promoting a primary reports already_primary.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	epoch, already, err := s.Promote()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("promotion failed: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":           epoch,
		"promoted":        !already,
		"already_primary": already,
	})
}

// handleReadyz is the readiness probe: 503 while draining, while a
// follower is still bootstrapping, when its primary has gone silent,
// or when its replication lag exceeds Config.ReadyMaxLag. Liveness
// stays on /healthz, which never flips.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readiness struct {
		Ready      bool    `json:"ready"`
		Role       string  `json:"role"`
		Epoch      uint64  `json:"epoch"`
		Reason     string  `json:"reason,omitempty"`
		LagRecords uint64  `json:"lag_records,omitempty"`
		LagSeconds float64 `json:"lag_seconds,omitempty"`
	}
	resp := readiness{Ready: true, Role: "primary", Epoch: s.epoch.Load()}
	if s.isFollower() {
		resp.Role = "follower"
		records, wall := s.fol.lag()
		resp.LagRecords, resp.LagSeconds = records, wall.Seconds()
		switch {
		case !s.fol.bootstrapped.Load():
			resp.Ready, resp.Reason = false, "bootstrap in progress"
		case s.fol.sincePrimaryContact() > replPrimarySilence:
			resp.Ready, resp.Reason = false, "primary unreachable"
		case wall > s.cfg.ReadyMaxLag:
			resp.Ready, resp.Reason = false,
				fmt.Sprintf("replication lag %s exceeds %s", wall.Round(time.Millisecond), s.cfg.ReadyMaxLag)
		}
	}
	if s.draining.Load() {
		resp.Ready, resp.Reason = false, "draining"
	}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}
