package server

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// snapshotOf serializes a session's current state for restore tests.
func snapshotOf(t *testing.T, sess *session) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := sess.exec.submit(context.Background(), func(context.Context) error {
		return sess.snapshotTo(&buf)
	})
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

// TestRestoreRefusedMidClose pins the teardown window semantics: while a
// session's close is draining (after it left the registry, before its
// manager is released), a restore under the same id must be refused with
// errSessionClosing — never allowed to resurrect the id mid-teardown —
// and must succeed once the teardown completes.
func TestRestoreRefusedMidClose(t *testing.T) {
	srv := New(Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	sess, err := srv.reg.create(SessionOptions{Vars: 4})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := sess.id
	err = sess.exec.submit(context.Background(), func(context.Context) error {
		sess.put(sess.mgr.Var(0).And(sess.mgr.Var(1)))
		return nil
	})
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	stream := snapshotOf(t, sess)

	// Wedge the executor so close() blocks draining, holding the session
	// in the closing set.
	gate := make(chan struct{})
	if _, err := sess.exec.start(context.Background(), func(context.Context) error {
		<-gate
		return nil
	}); err != nil {
		t.Fatalf("gate task: %v", err)
	}
	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.reg.closeSession(id) }()

	// Wait until closeSession has removed the id from the live map; from
	// that instant until closeDone, the id is mid-close.
	for {
		if _, err := srv.reg.get(id); err != nil {
			break
		}
		runtime.Gosched()
	}
	if _, err := srv.reg.restore(id, SessionOptions{}, bytes.NewReader(stream), nil); !errors.Is(err, errSessionClosing) {
		t.Fatalf("restore mid-close: err = %v, want errSessionClosing", err)
	}

	close(gate)
	if err := <-closeDone; err != nil {
		t.Fatalf("closeSession: %v", err)
	}
	restored, err := srv.reg.restore(id, SessionOptions{}, bytes.NewReader(stream), nil)
	if err != nil {
		t.Fatalf("restore after close: %v", err)
	}
	if restored.id != id {
		t.Fatalf("restored under id %s, want %s", restored.id, id)
	}
	if len(restored.handles) != 1 {
		t.Fatalf("restored %d handles, want 1", len(restored.handles))
	}
}

// TestRestoreExpiryRaceStress hammers the expiry/restore/delete collision
// under the race detector: many goroutines restoring a fixed session id
// while others expire and delete it. Every outcome must be one of the
// defined ones (success, exists, closing, no-session), the registry must
// never hold two sessions for the id, and no access may race.
func TestRestoreExpiryRaceStress(t *testing.T) {
	srv := New(Config{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	seed, err := srv.reg.create(SessionOptions{Vars: 4})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	err = seed.exec.submit(context.Background(), func(context.Context) error {
		seed.put(seed.mgr.Var(0).Or(seed.mgr.Var(3)))
		return nil
	})
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	stream := snapshotOf(t, seed)
	id := seed.id

	const (
		restorers = 4
		rounds    = 50
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < restorers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := srv.reg.restore(id, SessionOptions{}, bytes.NewReader(stream), nil)
				switch {
				case err == nil,
					errors.Is(err, errSessionExists),
					errors.Is(err, errSessionClosing),
					errors.Is(err, errServerClosed):
				default:
					t.Errorf("restore: unexpected error %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			// Expire everything currently idle (ttl 0 = everything), and
			// also exercise the explicit-delete path.
			srv.reg.expireIdle(0)
			err := srv.reg.closeSession(id)
			if err != nil && !errors.Is(err, errNoSession) {
				t.Errorf("closeSession: unexpected error %v", err)
				return
			}
			runtime.Gosched()
		}
		close(stop)
	}()
	wg.Wait()

	// The registry must be consistent: the id is either absent or one live
	// session, and a fresh restore eventually succeeds again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := srv.reg.restore(id, SessionOptions{}, bytes.NewReader(stream), nil)
		if err == nil || errors.Is(err, errSessionExists) {
			break
		}
		if !errors.Is(err, errSessionClosing) {
			t.Fatalf("post-stress restore: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("id stuck in closing state after stress")
		}
		runtime.Gosched()
	}
	if _, err := srv.reg.get(id); err != nil {
		t.Fatalf("final get: %v", err)
	}
}
