package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTS / closeTS split testServer's lifecycle so a test can stop one
// server and start another over the same checkpoint directory.
func newTS(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(srv.Handler())
}

func closeTS(t *testing.T, srv *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// publishFixture builds f = (x0 AND x1) OR (x2 XOR x3) in a fresh
// session and returns (sid, handle). Truth: (a&b) | (c^d).
func publishFixture(t *testing.T, base string) (string, uint64) {
	t.Helper()
	sid := createSession(t, base, SessionOptions{Vars: 6})
	h0 := mkVar(t, base, sid, 0, false)
	h1 := mkVar(t, base, sid, 1, false)
	h2 := mkVar(t, base, sid, 2, false)
	h3 := mkVar(t, base, sid, 3, false)
	a := apply(t, base, sid, "and", h0, h1)
	x := apply(t, base, sid, "xor", h2, h3)
	f := apply(t, base, sid, "or", a, x)
	return sid, f
}

func fixtureTruth(a []bool) bool {
	return (a[0] && a[1]) || (a[2] != a[3])
}

func allAssignments6(t *testing.T) [][]bool {
	t.Helper()
	out := make([][]bool, 64)
	for mask := range out {
		a := make([]bool, 6)
		for v := 0; v < 6; v++ {
			a[v] = mask>>uint(v)&1 == 1
		}
		out[mask] = a
	}
	return out
}

func evalValues(t *testing.T, out map[string]any) []bool {
	t.Helper()
	raw, ok := out["values"].([]any)
	if !ok {
		t.Fatalf("no values in %v", out)
	}
	vs := make([]bool, len(raw))
	for i, v := range raw {
		vs[i] = v.(bool)
	}
	return vs
}

// TestPublishEvalLifecycle is the subsystem happy path: publish named
// and anonymous artifacts, evaluate them, list/get/download/delete, and
// keep serving after the source session is gone.
func TestPublishEvalLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL
	sid, f := publishFixture(t, base)

	out := mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "fixture", "handles": []uint64{f}}, http.StatusCreated)
	if out["func"] != "fixture" {
		t.Fatalf("publish: %v", out)
	}
	if nodes := out["nodes"].(float64); nodes <= 0 {
		t.Fatalf("publish reported %v nodes", nodes)
	}

	// Anonymous publish of every handle gets a generated name.
	out = mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{}, http.StatusCreated)
	anon := out["func"].(string)
	if !strings.HasPrefix(anon, "f-") {
		t.Fatalf("generated name %q", anon)
	}
	if roots := out["roots"].([]any); len(roots) != 7 {
		t.Fatalf("anonymous publish took %d roots, want all 7 handles", len(roots))
	}

	all := allAssignments6(t)
	check := func(url string, root uint64) {
		t.Helper()
		out := mustCall(t, "POST", url,
			map[string]any{"root": root, "assignments": all}, http.StatusOK)
		vs := evalValues(t, out)
		for mask, a := range all {
			if vs[mask] != fixtureTruth(a) {
				t.Fatalf("%s mask %d: got %v want %v", url, mask, vs[mask], fixtureTruth(a))
			}
		}
	}
	check(base+"/v1/funcs/fixture/eval", f)
	check(base+"/v1/funcs/"+anon+"/eval", f)

	// Default root on the single-root artifact.
	out = mustCall(t, "POST", base+"/v1/funcs/fixture/eval",
		map[string]any{"assignments": all[:1]}, http.StatusOK)
	if vs := evalValues(t, out); vs[0] != fixtureTruth(all[0]) {
		t.Fatalf("default-root eval: %v", vs)
	}

	// satcount: (a&b)|(c^d) has 40 satisfying rows over 6 vars.
	out = mustCall(t, "POST", base+"/v1/funcs/fixture/query",
		map[string]any{"kind": "satcount", "root": f}, http.StatusOK)
	if out["satcount"] != "40" {
		t.Fatalf("satcount: %v", out)
	}
	out = mustCall(t, "POST", base+"/v1/funcs/fixture/query",
		map[string]any{"kind": "anysat", "root": f}, http.StatusOK)
	if out["sat"] != true {
		t.Fatalf("anysat: %v", out)
	}

	// List and get.
	out = mustCall(t, "GET", base+"/v1/funcs", nil, http.StatusOK)
	if funcs := out["funcs"].([]any); len(funcs) != 2 {
		t.Fatalf("list: %v", out)
	}
	out = mustCall(t, "GET", base+"/v1/funcs/fixture", nil, http.StatusOK)
	if out["source"] != sid {
		t.Fatalf("get: source %v want %v", out["source"], sid)
	}

	// The artifact must outlive its source session.
	mustCall(t, "DELETE", base+"/v1/sessions/"+sid, nil, http.StatusOK)
	check(base+"/v1/funcs/fixture/eval", f)

	// Download yields a loadable stream (content sanity only here; the
	// CLI round trip is exercised by scripts/compiled-roundtrip.sh).
	code, out := call(t, "GET", base+"/v1/funcs/fixture/download", nil)
	if code != http.StatusOK || !strings.HasPrefix(out["raw"].(string), "BFBDFUNC") {
		t.Fatalf("download: %d %.20q", code, out["raw"])
	}

	mustCall(t, "DELETE", base+"/v1/funcs/fixture", nil, http.StatusOK)
	mustCall(t, "POST", base+"/v1/funcs/fixture/eval",
		map[string]any{"assignments": all[:1]}, http.StatusNotFound)
}

// TestPublishValidation covers the publish misuse surface.
func TestPublishValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL
	sid, f := publishFixture(t, base)

	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "bad name!"}, http.StatusBadRequest)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": strings.Repeat("x", 65)}, http.StatusBadRequest)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "dup", "handles": []uint64{f}}, http.StatusCreated)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "dup", "handles": []uint64{f}}, http.StatusConflict)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"handles": []uint64{99999}}, http.StatusBadRequest)

	empty := createSession(t, base, SessionOptions{Vars: 2})
	mustCall(t, "POST", base+"/v1/sessions/"+empty+"/publish",
		map[string]any{}, http.StatusBadRequest)
}

// TestEvalHardening is the satellite's 413 coverage: a request body over
// MaxEvalBodyBytes and a batch over MaxEvalBatch must both be refused
// with 413, and well-formed requests right at the caps must pass.
func TestEvalHardening(t *testing.T) {
	_, ts := testServer(t, Config{MaxEvalBodyBytes: 16 << 10, MaxEvalBatch: 8})
	base := ts.URL
	sid, f := publishFixture(t, base)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "hard", "handles": []uint64{f}}, http.StatusCreated)

	asn := make([]bool, 6)
	batch := func(n int) [][]bool {
		b := make([][]bool, n)
		for i := range b {
			b[i] = asn
		}
		return b
	}
	// At the batch cap: fine.
	mustCall(t, "POST", base+"/v1/funcs/hard/eval",
		map[string]any{"root": f, "assignments": batch(8)}, http.StatusOK)
	// One over the batch cap: 413.
	mustCall(t, "POST", base+"/v1/funcs/hard/eval",
		map[string]any{"root": f, "assignments": batch(9)}, http.StatusRequestEntityTooLarge)
	// A body over the byte limit: 413. 16KiB of padding in an otherwise
	// valid request; json decoding hits the MaxBytesReader first.
	big := map[string]any{"root": f, "assignments": batch(1),
		"pad": strings.Repeat("x", 17<<10)}
	mustCall(t, "POST", base+"/v1/funcs/hard/eval", big, http.StatusRequestEntityTooLarge)

	// Residual 400s: wrong assignment width, unknown root, empty batch.
	mustCall(t, "POST", base+"/v1/funcs/hard/eval",
		map[string]any{"root": f, "assignments": [][]bool{make([]bool, 5)}}, http.StatusBadRequest)
	mustCall(t, "POST", base+"/v1/funcs/hard/eval",
		map[string]any{"root": 123456, "assignments": batch(1)}, http.StatusBadRequest)
	mustCall(t, "POST", base+"/v1/funcs/hard/eval",
		map[string]any{"root": f, "assignments": [][]bool{}}, http.StatusBadRequest)
}

// TestFuncPool enforces the artifact byte pool with 413 and checks
// deletes return capacity.
func TestFuncPool(t *testing.T) {
	_, ts := testServer(t, Config{MaxFuncBytes: 4096})
	base := ts.URL
	sid, f := publishFixture(t, base)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "one", "handles": []uint64{f}}, http.StatusCreated)
	// The fixture artifact is a few hundred bytes; publishing until the
	// 4KiB pool fills must eventually yield 413.
	full := false
	for i := 0; i < 64 && !full; i++ {
		code, _ := call(t, "POST", base+"/v1/sessions/"+sid+"/publish",
			map[string]any{"name": fmt.Sprintf("fill-%d", i), "handles": []uint64{f}})
		switch code {
		case http.StatusCreated:
		case http.StatusRequestEntityTooLarge:
			full = true
		default:
			t.Fatalf("publish fill-%d: %d", i, code)
		}
	}
	if !full {
		t.Fatal("pool never filled")
	}
	mustCall(t, "DELETE", base+"/v1/funcs/one", nil, http.StatusOK)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "after-delete", "handles": []uint64{f}}, http.StatusCreated)
}

// TestFuncPersistenceReload publishes artifacts with a checkpoint dir,
// starts a second server over the same directory, and requires the
// artifacts back — same names, same answers. Deleted artifacts must not
// resurrect, and a corrupt file is set aside rather than fatal.
func TestFuncPersistenceReload(t *testing.T) {
	dir := t.TempDir()
	srv1 := New(Config{CheckpointDir: dir})
	ts1 := newTS(t, srv1)
	base := ts1.URL
	sid, f := publishFixture(t, base)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "keeper", "handles": []uint64{f}}, http.StatusCreated)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "goner", "handles": []uint64{f}}, http.StatusCreated)
	mustCall(t, "DELETE", base+"/v1/funcs/goner", nil, http.StatusOK)

	all := allAssignments6(t)
	want := evalValues(t, mustCall(t, "POST", base+"/v1/funcs/keeper/eval",
		map[string]any{"root": f, "assignments": all}, http.StatusOK))
	closeTS(t, srv1, ts1) // no graceful artifact work needed: persisted at publish

	// A stray corrupt file must be survivable.
	if err := os.WriteFile(filepath.Join(dir, "funcs", "junk.fn"), []byte("BFBDFUNCgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := New(Config{CheckpointDir: dir})
	ts2 := newTS(t, srv2)
	defer closeTS(t, srv2, ts2)
	base = ts2.URL

	got := evalValues(t, mustCall(t, "POST", base+"/v1/funcs/keeper/eval",
		map[string]any{"root": f, "assignments": all}, http.StatusOK))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reloaded artifact drifted at %d", i)
		}
	}
	mustCall(t, "GET", base+"/v1/funcs/goner", nil, http.StatusNotFound)
	mustCall(t, "GET", base+"/v1/funcs/junk", nil, http.StatusNotFound)
	if _, err := os.Stat(filepath.Join(dir, "funcs", "junk.fn.corrupt")); err != nil {
		t.Fatalf("corrupt file not set aside: %v", err)
	}
	if srv2.metrics.funcsRecovered.Load() != 1 {
		t.Fatalf("funcsRecovered = %d", srv2.metrics.funcsRecovered.Load())
	}
}

// TestEvalConcurrentWithDelete hammers the lock-free eval path from many
// goroutines racing a delete: every response is either a correct answer
// or a clean 404.
func TestEvalConcurrentWithDelete(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL
	sid, f := publishFixture(t, base)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/publish",
		map[string]any{"name": "racy", "handles": []uint64{f}}, http.StatusCreated)
	all := allAssignments6(t)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				code, out := call(t, "POST", base+"/v1/funcs/racy/eval",
					map[string]any{"root": f, "assignments": all})
				switch code {
				case http.StatusOK:
					vs := evalValues(t, out)
					for mask, a := range all {
						if vs[mask] != fixtureTruth(a) {
							t.Errorf("eval drifted at mask %d", mask)
							return
						}
					}
				case http.StatusNotFound:
					return
				default:
					t.Errorf("eval: unexpected status %d", code)
					return
				}
			}
		}()
	}
	mustCall(t, "DELETE", base+"/v1/funcs/racy", nil, http.StatusOK)
	wg.Wait()
}
