package server

import (
	"bufio"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bfbdd/internal/wal"
)

// latencyBuckets are the per-route request-duration histogram bounds, in
// seconds.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numLatencyBuckets must equal len(latencyBuckets); checked in init.
const numLatencyBuckets = 14

func init() {
	if len(latencyBuckets) != numLatencyBuckets {
		panic("server: numLatencyBuckets out of sync with latencyBuckets")
	}
}

// routeStats accumulates one route's request counters and latency
// histogram. All fields are updated atomically on the hot path.
type routeStats struct {
	codes   sync.Map // int (status code) -> *atomic.Uint64
	buckets [numLatencyBuckets + 1]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
}

func (rs *routeStats) observe(code int, d time.Duration) {
	cp, _ := rs.codes.LoadOrStore(code, new(atomic.Uint64))
	cp.(*atomic.Uint64).Add(1)
	rs.count.Add(1)
	rs.sumNs.Add(int64(d))
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			rs.buckets[i].Add(1)
			return
		}
	}
	rs.buckets[numLatencyBuckets].Add(1)
}

// metrics is the server-wide observability registry.
type metrics struct {
	sessionsCreated    atomic.Uint64
	sessionsExpired    atomic.Uint64
	sessionsRecovered  atomic.Uint64
	sessionsPoisoned   atomic.Uint64
	checkpointsWritten atomic.Uint64
	checkpointErrors   atomic.Uint64
	checkpointFailures atomic.Uint64
	checkpointRetries  atomic.Uint64
	coalescedBatches   atomic.Uint64
	coalescedOps       atomic.Uint64
	sessionsSpilled    atomic.Uint64
	inflight           atomic.Int64
	rejectedInflight   atomic.Uint64
	rejectedOverBudget atomic.Uint64

	funcsPublished      atomic.Uint64
	funcsRecovered      atomic.Uint64
	funcReloadErrors    atomic.Uint64
	funcBytesPublished  atomic.Uint64
	funcEvalRequests    atomic.Uint64
	funcEvalAssignments atomic.Uint64
	funcBatchSizes      batchHistogram

	// Replication counters. The primary side counts what it ships and
	// how often acknowledgments stalled on follower delivery; the
	// follower side counts what it applied, received, bootstrapped,
	// reconnected, and refused for carrying a stale epoch.
	replBatchesShipped      atomic.Uint64
	replBytesShipped        atomic.Uint64
	replSnapshotsServed     atomic.Uint64
	replSnapshotBytesServed atomic.Uint64
	replSyncStalls          atomic.Uint64
	replRecordsApplied      atomic.Uint64
	replBytesReceived       atomic.Uint64
	replReconnects          atomic.Uint64
	replBootstraps          atomic.Uint64
	replStaleEpochRefusals  atomic.Uint64

	// wal aggregates the write-ahead-log counters across every session's
	// log (the wal package updates them directly; ChainRejects also from
	// the recovery path).
	wal wal.Counters
	// walRecoveryNs is the wall time of the last startup recovery pass.
	walRecoveryNs atomic.Int64

	mu     sync.Mutex
	routes map[string]*routeStats
}

// batchSizeBuckets are the eval batch-size histogram bounds
// (assignments per request).
var batchSizeBuckets = [...]int{1, 4, 16, 64, 256, 1024, 4096}

// batchHistogram is a fixed-bucket histogram of eval batch sizes; with
// the per-route latency series it gives the artifact eval throughput
// picture (assignments/request over time/request).
type batchHistogram struct {
	buckets [len(batchSizeBuckets) + 1]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

func (h *batchHistogram) observe(n int) {
	h.count.Add(1)
	h.sum.Add(uint64(n))
	for i, ub := range batchSizeBuckets {
		if n <= ub {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(batchSizeBuckets)].Add(1)
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeStats)}
}

// route returns (creating on first use) the stats bucket for a route
// pattern. Routes are registered statically, so cardinality is bounded.
func (m *metrics) route(pattern string) *routeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[pattern]
	if !ok {
		rs = &routeStats{}
		m.routes[pattern] = rs
	}
	return rs
}

// statusRecorder captures the response code for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency histogram
// collection for one route pattern.
func (m *metrics) instrument(pattern string, h http.Handler) http.Handler {
	rs := m.route(pattern)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sr, r)
		rs.observe(sr.code, time.Since(start))
	})
}

// metricsHandler serves GET /metrics in Prometheus text exposition format:
// server-level counters, per-route request/latency series, and every
// Manager.Stats() counter of every live session (from the sessions'
// lock-free snapshots, so a scrape never blocks behind a build).
func (s *Server) metricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		defer bw.Flush()

		counter := func(name, help string, v uint64) {
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}

		m := s.metrics
		var poisonedNow int64
		for _, sess := range s.reg.list() {
			if sess.isPoisoned() {
				poisonedNow++
			}
		}
		gauge("bfbdd_sessions_open", "Currently open sessions.", int64(s.reg.count()))
		gauge("bfbdd_sessions_poisoned", "Currently open sessions refusing work after an internal engine fault.", poisonedNow)
		gauge("bfbdd_pool_live_bytes", "Engine memory footprint summed over all live sessions.", int64(s.poolBytes()))
		resident, spilled := s.poolSpill()
		gauge("bfbdd_pool_resident_bytes", "Heap-resident node-store bytes summed over all live sessions.", int64(resident))
		gauge("bfbdd_pool_spilled_bytes", "Node-store bytes parked in level spill files, summed over all live sessions.", int64(spilled))
		counter("bfbdd_sessions_created_total", "Sessions created since start.", m.sessionsCreated.Load())
		counter("bfbdd_sessions_expired_total", "Sessions closed by idle expiry.", m.sessionsExpired.Load())
		counter("bfbdd_sessions_recovered_total", "Sessions rebuilt from checkpoints at startup.", m.sessionsRecovered.Load())
		counter("bfbdd_sessions_poisoned_total", "Sessions poisoned by internal engine faults since start.", m.sessionsPoisoned.Load())
		counter("bfbdd_checkpoints_written_total", "Session checkpoints committed to disk.", m.checkpointsWritten.Load())
		counter("bfbdd_checkpoint_errors_total", "Failed checkpoint writes or recoveries.", m.checkpointErrors.Load())
		counter("bfbdd_checkpoint_failures_total", "Checkpoint attempts that failed after exhausting retries.", m.checkpointFailures.Load())
		counter("bfbdd_checkpoint_retries_total", "Checkpoint attempts retried after a transient failure.", m.checkpointRetries.Load())
		counter("bfbdd_coalesced_batches_total", "Apply batches flushed by the request coalescer.", m.coalescedBatches.Load())
		counter("bfbdd_coalesced_ops_total", "Apply operations carried by coalesced batches.", m.coalescedOps.Load())
		gauge("bfbdd_http_inflight_requests", "Requests currently being served.", m.inflight.Load())
		counter("bfbdd_http_rejected_total", "Requests rejected by the in-flight admission limit.", m.rejectedInflight.Load())
		counter("bfbdd_http_rejected_over_budget_total", "Requests shed because the pool exceeded the global memory budget.", m.rejectedOverBudget.Load())
		counter("bfbdd_sessions_spilled_total", "Session-level spill passes triggered by idle tiering or the resident cap.", m.sessionsSpilled.Load())
		s.writeSpillTotals(bw)

		gauge("bfbdd_funcs_open", "Currently published compiled-function artifacts.", s.funcs.count.Load())
		gauge("bfbdd_funcs_bytes", "Resident bytes of published artifacts (their own pool, outside session budgets).", s.funcs.total.Load())
		counter("bfbdd_funcs_published_total", "Artifacts published since start.", m.funcsPublished.Load())
		counter("bfbdd_funcs_recovered_total", "Artifacts reloaded from disk at startup.", m.funcsRecovered.Load())
		counter("bfbdd_funcs_reload_errors_total", "Corrupt artifact files set aside at startup.", m.funcReloadErrors.Load())
		counter("bfbdd_funcs_published_bytes_total", "Bytes of artifacts published since start.", m.funcBytesPublished.Load())
		counter("bfbdd_func_eval_requests_total", "Artifact eval requests served.", m.funcEvalRequests.Load())
		counter("bfbdd_func_eval_assignments_total", "Assignments evaluated across artifact eval requests.", m.funcEvalAssignments.Load())
		s.writeFuncEvalHistogram(bw)

		counter("bfbdd_wal_appended_records_total", "Records journaled to write-ahead logs.", m.wal.Appended.Load())
		counter("bfbdd_wal_append_errors_total", "WAL append failures (the operation was refused).", m.wal.AppendErrors.Load())
		counter("bfbdd_wal_fsyncs_total", "Explicit WAL fsyncs.", m.wal.Fsyncs.Load())
		counter("bfbdd_wal_rotations_total", "WAL segment rotations at checkpoints.", m.wal.Rotations.Load())
		counter("bfbdd_wal_segments_truncated_total", "Checkpoint-covered WAL segments deleted.", m.wal.Truncated.Load())
		counter("bfbdd_wal_replayed_records_total", "Records replayed during startup recovery.", m.wal.Replayed.Load())
		counter("bfbdd_wal_torn_tail_discards_total", "Half-written WAL tails discarded during recovery.", m.wal.TornTails.Load())
		counter("bfbdd_wal_chain_rejects_total", "Recoveries refused because the checkpoint and WAL did not chain.", m.wal.ChainRejects.Load())
		fmt.Fprintf(bw, "# HELP bfbdd_wal_recovery_seconds Wall time of the last startup recovery pass.\n# TYPE bfbdd_wal_recovery_seconds gauge\nbfbdd_wal_recovery_seconds %g\n",
			float64(m.walRecoveryNs.Load())/1e9)

		if s.ckpt != nil {
			gauge("bfbdd_repl_epoch", "Current replication fencing epoch.", int64(s.epoch.Load()))
			writable := int64(1)
			if s.isFollower() {
				writable = 0
			}
			gauge("bfbdd_repl_writable", "1 when this server accepts mutations, 0 on a read-only follower.", writable)
			gauge("bfbdd_repl_followers", "Recently-connected followers.", int64(s.hub.Followers()))
			counter("bfbdd_repl_batches_shipped_total", "WAL batches shipped to followers.", m.replBatchesShipped.Load())
			counter("bfbdd_repl_bytes_shipped_total", "WAL bytes shipped to followers.", m.replBytesShipped.Load())
			counter("bfbdd_repl_snapshots_served_total", "Bootstrap snapshots served to followers.", m.replSnapshotsServed.Load())
			counter("bfbdd_repl_snapshot_bytes_served_total", "Bootstrap snapshot bytes served to followers.", m.replSnapshotBytesServed.Load())
			counter("bfbdd_repl_sync_stalls_total", "Followers dropped from the sync set after stalling an acknowledgment.", m.replSyncStalls.Load())
			counter("bfbdd_repl_records_applied_total", "Replicated WAL records applied locally.", m.replRecordsApplied.Load())
			counter("bfbdd_repl_bytes_received_total", "Bytes received from the primary (WAL, snapshots, artifacts).", m.replBytesReceived.Load())
			counter("bfbdd_repl_reconnects_total", "Reconnect attempts after a replication stream or status failure.", m.replReconnects.Load())
			counter("bfbdd_repl_bootstraps_total", "Snapshot bootstraps started.", m.replBootstraps.Load())
			counter("bfbdd_repl_stale_epoch_refusals_total", "Batches refused for carrying an epoch below the local one.", m.replStaleEpochRefusals.Load())
			if s.fol != nil {
				records, wall := s.fol.lag()
				gauge("bfbdd_repl_lag_records", "Records the follower trails the primary by, summed over sessions.", int64(records))
				fmt.Fprintf(bw, "# HELP bfbdd_repl_lag_seconds Wall time the most-behind session has been behind.\n# TYPE bfbdd_repl_lag_seconds gauge\nbfbdd_repl_lag_seconds %g\n",
					wall.Seconds())
			}
		}

		s.writeRouteMetrics(bw)
		s.writeSessionMetrics(bw)
	})
}

// writeSpillTotals exports the memory-tiering activity counters summed
// over session snapshots. They are derived series — each session's
// contribution vanishes when it closes — but in aggregate they track the
// spill subsystem's churn well enough to alert on thrash.
func (s *Server) writeSpillTotals(bw *bufio.Writer) {
	var ops, unspills, hits uint64
	var spillNs, unspillNs int64
	for _, sess := range s.reg.list() {
		st := sess.stats()
		if st == nil {
			continue
		}
		ops += st.SpillOps
		unspills += st.UnspillOps
		hits += st.SpillPrefetchHits
		spillNs += int64(st.SpillTime)
		unspillNs += int64(st.UnspillTime)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	seconds := func(name, help string, ns int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, float64(ns)/1e9)
	}
	counter("bfbdd_spill_ops_total", "Level spill writes across live sessions.", ops)
	counter("bfbdd_unspill_ops_total", "Level unspill reads across live sessions.", unspills)
	counter("bfbdd_spill_prefetch_hits_total", "Sweep prefetches that found the level already mapped.", hits)
	seconds("bfbdd_spill_seconds_total", "Wall time writing level spill files across live sessions.", spillNs)
	seconds("bfbdd_unspill_seconds_total", "Wall time restoring spilled levels across live sessions.", unspillNs)
}

// writeFuncEvalHistogram exports the eval batch-size histogram.
func (s *Server) writeFuncEvalHistogram(bw *bufio.Writer) {
	h := &s.metrics.funcBatchSizes
	fmt.Fprintf(bw, "# HELP bfbdd_func_eval_batch_size Assignments per artifact eval request.\n")
	fmt.Fprintf(bw, "# TYPE bfbdd_func_eval_batch_size histogram\n")
	var cum uint64
	for i, ub := range batchSizeBuckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(bw, "bfbdd_func_eval_batch_size_bucket{le=\"%d\"} %d\n", ub, cum)
	}
	cum += h.buckets[len(batchSizeBuckets)].Load()
	fmt.Fprintf(bw, "bfbdd_func_eval_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(bw, "bfbdd_func_eval_batch_size_sum %d\n", h.sum.Load())
	fmt.Fprintf(bw, "bfbdd_func_eval_batch_size_count %d\n", h.count.Load())
}

func (s *Server) writeRouteMetrics(bw *bufio.Writer) {
	m := s.metrics
	m.mu.Lock()
	patterns := make([]string, 0, len(m.routes))
	for p := range m.routes {
		patterns = append(patterns, p)
	}
	m.mu.Unlock()
	sort.Strings(patterns)

	fmt.Fprintf(bw, "# HELP bfbdd_http_requests_total Served requests by route and status code.\n")
	fmt.Fprintf(bw, "# TYPE bfbdd_http_requests_total counter\n")
	for _, p := range patterns {
		rs := m.route(p)
		type cc struct {
			code int
			n    uint64
		}
		var codes []cc
		rs.codes.Range(func(k, v any) bool {
			codes = append(codes, cc{k.(int), v.(*atomic.Uint64).Load()})
			return true
		})
		sort.Slice(codes, func(i, j int) bool { return codes[i].code < codes[j].code })
		for _, c := range codes {
			fmt.Fprintf(bw, "bfbdd_http_requests_total{route=%q,code=\"%d\"} %d\n", p, c.code, c.n)
		}
	}

	fmt.Fprintf(bw, "# HELP bfbdd_http_request_duration_seconds Request latency by route.\n")
	fmt.Fprintf(bw, "# TYPE bfbdd_http_request_duration_seconds histogram\n")
	for _, p := range patterns {
		rs := m.route(p)
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += rs.buckets[i].Load()
			fmt.Fprintf(bw, "bfbdd_http_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", p, ub, cum)
		}
		cum += rs.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(bw, "bfbdd_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", p, cum)
		fmt.Fprintf(bw, "bfbdd_http_request_duration_seconds_sum{route=%q} %g\n", p, float64(rs.sumNs.Load())/1e9)
		fmt.Fprintf(bw, "bfbdd_http_request_duration_seconds_count{route=%q} %d\n", p, rs.count.Load())
	}
}

// writeSessionMetrics exports every Manager.Stats() counter per session.
func (s *Server) writeSessionMetrics(bw *bufio.Writer) {
	sessions := s.reg.list()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })

	type series struct {
		name, help, typ string
		value           func(*sessionStats) string
	}
	secs := func(d time.Duration) string { return fmt.Sprintf("%g", d.Seconds()) }
	all := []series{
		{"bfbdd_session_ops_total", "Shannon expansion steps across workers.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.Ops) }},
		{"bfbdd_session_cache_hits_total", "Compute-cache hits.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.CacheHits) }},
		{"bfbdd_session_terminals_total", "Operations resolved as terminal cases.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.Terminals) }},
		{"bfbdd_session_steals_total", "Work-stealing group thefts.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.Steals) }},
		{"bfbdd_session_stolen_ops_total", "Operations claimed from stolen groups.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.StolenOps) }},
		{"bfbdd_session_stalls_total", "Reduction passes stalled on thief results.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.Stalls) }},
		{"bfbdd_session_context_pushes_total", "Evaluation-context switches.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.ContextPushes) }},
		{"bfbdd_session_lock_wait_seconds_total", "Unique-table lock acquisition wait.", "counter",
			func(st *sessionStats) string { return secs(st.LockWait) }},
		{"bfbdd_session_expansion_seconds_total", "Time in the expansion phase.", "counter",
			func(st *sessionStats) string { return secs(st.ExpansionTime) }},
		{"bfbdd_session_reduction_seconds_total", "Time in the reduction phase.", "counter",
			func(st *sessionStats) string { return secs(st.ReductionTime) }},
		{"bfbdd_session_gc_mark_seconds_total", "Time in the GC mark phase.", "counter",
			func(st *sessionStats) string { return secs(st.GCMarkTime) }},
		{"bfbdd_session_gc_fix_seconds_total", "Time in the GC fix phase.", "counter",
			func(st *sessionStats) string { return secs(st.GCFixTime) }},
		{"bfbdd_session_gc_rehash_seconds_total", "Time in the GC rehash phase.", "counter",
			func(st *sessionStats) string { return secs(st.GCRehashTime) }},
		{"bfbdd_session_gc_runs_total", "Garbage collections.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.GCCount) }},
		{"bfbdd_session_peak_bytes", "High-water explicit memory footprint.", "gauge",
			func(st *sessionStats) string { return fmt.Sprint(st.PeakBytes) }},
		{"bfbdd_session_mem_bytes", "Current explicit memory footprint.", "gauge",
			func(st *sessionStats) string { return fmt.Sprint(st.MemBytes) }},
		{"bfbdd_session_eval_threshold", "Effective partial-BF evaluation threshold (drops under memory pressure).", "gauge",
			func(st *sessionStats) string { return fmt.Sprint(st.EffEvalThreshold) }},
		{"bfbdd_session_budget_forced_gcs_total", "Collections forced by the budget's degradation ladder.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.BudgetForcedGCs) }},
		{"bfbdd_session_budget_threshold_drops_total", "Eval-threshold reductions forced by the budget.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.BudgetThresholdDrops) }},
		{"bfbdd_session_budget_cache_shrinks_total", "Compute-cache flushes forced by the budget.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.BudgetCacheShrinks) }},
		{"bfbdd_session_budget_aborts_total", "Builds aborted with a budget error.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.BudgetAborts) }},
		{"bfbdd_session_budget_spills_total", "Spill passes forced by the budget's degradation ladder.", "counter",
			func(st *sessionStats) string { return fmt.Sprint(st.BudgetSpills) }},
		{"bfbdd_session_resident_bytes", "Heap-resident node-store bytes.", "gauge",
			func(st *sessionStats) string { return fmt.Sprint(st.ResidentBytes) }},
		{"bfbdd_session_spilled_bytes", "Node-store bytes parked in level spill files.", "gauge",
			func(st *sessionStats) string { return fmt.Sprint(st.SpilledBytes) }},
		{"bfbdd_session_spilled_levels", "Variable levels currently tiered to disk.", "gauge",
			func(st *sessionStats) string { return fmt.Sprint(st.SpilledLevels) }},
		{"bfbdd_session_live_nodes", "Current live BDD node count.", "gauge",
			func(st *sessionStats) string { return fmt.Sprint(st.NumNodes) }},
		{"bfbdd_session_pins", "Registered external roots (pins).", "gauge",
			func(st *sessionStats) string { return fmt.Sprint(st.Pins) }},
		{"bfbdd_session_handles", "Wire-visible BDD handles.", "gauge",
			func(st *sessionStats) string { return fmt.Sprint(st.Handles) }},
	}
	for _, sr := range all {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", sr.name, sr.help, sr.name, sr.typ)
		for _, sess := range sessions {
			st := sess.stats()
			if st == nil {
				continue
			}
			fmt.Fprintf(bw, "%s{session=%q,engine=%q} %s\n", sr.name, sess.id, sess.engine, sr.value(st))
		}
	}
}
