package server

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bfbdd"
	"bfbdd/internal/faultinject"
)

// freeHandles releases wire handles via the free endpoint.
func freeHandles(t *testing.T, base, sid string, hs ...uint64) {
	t.Helper()
	if len(hs) == 0 {
		return
	}
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/free",
		map[string]any{"handles": hs}, http.StatusOK)
}

// growDNFOverHTTP ORs random cubes into an accumulator over the wire,
// freeing intermediate handles as it goes (the well-behaved-client shape
// the session budget assumes), until an operation fails — returning its
// status code and body — or maxTerms is reached (returning 0, nil).
func growDNFOverHTTP(t *testing.T, base, sid string, rng *rand.Rand, vars, maxTerms, width int) (int, map[string]any) {
	t.Helper()
	varsURL := base + "/v1/sessions/" + sid + "/vars"
	applyURL := base + "/v1/sessions/" + sid + "/apply"
	var acc uint64
	var haveAcc bool
	for i := 0; i < maxTerms; i++ {
		var cube uint64
		var haveCube bool
		for j := 0; j < width; j++ {
			code, out := call(t, "POST", varsURL,
				map[string]any{"index": rng.Intn(vars), "negated": rng.Intn(2) == 0})
			if code != http.StatusOK {
				return code, out
			}
			lit := handleOf(t, out)
			if !haveCube {
				cube, haveCube = lit, true
				continue
			}
			code, out = call(t, "POST", applyURL,
				map[string]any{"op": "and", "f": cube, "g": lit})
			if code != http.StatusOK {
				freeHandles(t, base, sid, cube, lit)
				if haveAcc {
					freeHandles(t, base, sid, acc)
				}
				return code, out
			}
			next := handleOf(t, out)
			freeHandles(t, base, sid, cube, lit)
			cube = next
		}
		if !haveAcc {
			acc, haveAcc = cube, true
			continue
		}
		code, out := call(t, "POST", applyURL,
			map[string]any{"op": "or", "f": acc, "g": cube})
		if code != http.StatusOK {
			freeHandles(t, base, sid, acc, cube)
			return code, out
		}
		next := handleOf(t, out)
		freeHandles(t, base, sid, acc, cube)
		acc = next
	}
	if haveAcc {
		freeHandles(t, base, sid, acc)
	}
	return 0, nil
}

// TestNoteFailureClassification pins down exactly which failures poison a
// session: kernel invariant violations and unclassifiable executor panics
// do; engine misuse, budget aborts, injected faults, and ordinary service
// errors leave the session healthy (their unwind paths are designed to
// leave the manager consistent).
func TestNoteFailureClassification(t *testing.T) {
	srv, _ := testServer(t, Config{})
	cases := []struct {
		name       string
		err        error
		wantPoison bool
	}{
		{"nil", nil, false},
		{"ordinary service error", errors.New("no such handle"), false},
		{"engine misuse panic", &panicError{val: "bfbdd: handle used after Free"}, false},
		{"budget abort panic", &panicError{val: &bfbdd.BudgetError{Kind: "nodes"}}, false},
		{"injected fault panic", &panicError{val: fmt.Errorf("boom: %w", faultinject.ErrInjected)}, false},
		{"internal error", &bfbdd.InternalError{Op: "MkNode", Cause: "bad ref"}, true},
		{"internal error panic", &panicError{val: &bfbdd.InternalError{Op: "GC", Cause: "bad mark"}}, true},
		{"unclassifiable panic", &panicError{val: "runtime error: index out of range"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := srv.reg.create(SessionOptions{Vars: 4})
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			sess.noteFailure(tc.err)
			if got := sess.isPoisoned(); got != tc.wantPoison {
				t.Fatalf("poisoned = %v, want %v", got, tc.wantPoison)
			}
		})
	}
}

// TestPoisonedSessionIsolation poisons one session and checks the full
// containment contract over HTTP: its operations answer 409, its info and
// stats stay inspectable, it is skipped by the checkpointer (the last
// good checkpoint on disk stays authoritative), it can be deleted — and a
// second session on the same server is completely unaffected.
func TestPoisonedSessionIsolation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cp")
	srv, ts := testServer(t, Config{CheckpointDir: dir, CheckpointInterval: -1})
	base := ts.URL

	a := createSession(t, base, SessionOptions{Vars: 8})
	b := createSession(t, base, SessionOptions{Vars: 8})
	ha := mkVar(t, base, a, 0, false)
	mkVar(t, base, b, 0, false)

	sess, err := srv.reg.get(a)
	if err != nil {
		t.Fatalf("get %s: %v", a, err)
	}
	sess.poison(errors.New("poisoned by test"))

	// Every operation on the poisoned session is refused with 409,
	// including reads that would touch the engine.
	for _, req := range []struct {
		url  string
		body any
	}{
		{base + "/v1/sessions/" + a + "/vars", map[string]any{"index": 1}},
		{base + "/v1/sessions/" + a + "/apply", map[string]any{"op": "and", "f": ha, "g": ha}},
		{base + "/v1/sessions/" + a + "/query", map[string]any{"kind": "size", "f": ha}},
		{base + "/v1/sessions/" + a + "/free", map[string]any{"handles": []uint64{ha}}},
	} {
		out := mustCall(t, "POST", req.url, req.body, http.StatusConflict)
		if msg, _ := out["error"].(string); !strings.Contains(msg, "poisoned") {
			t.Fatalf("409 body does not explain the poisoning: %v", out)
		}
	}

	// Info and stats bypass the gate so the wreck can be inspected.
	out := mustCall(t, "GET", base+"/v1/sessions/"+a, nil, http.StatusOK)
	info, _ := out["info"].(map[string]any)
	if p, _ := info["poisoned"].(bool); !p {
		t.Fatalf("session info does not report poisoned: %v", out)
	}
	mustCall(t, "GET", base+"/v1/sessions/"+a+"/stats", nil, http.StatusOK)

	// The other session is untouched.
	hb := mkVar(t, base, b, 1, false)
	apply(t, base, b, "or", hb, hb)

	// The metrics surface records the poisoning.
	body := mustCall(t, "GET", base+"/metrics", nil, http.StatusOK)["raw"].(string)
	if v := metricValue(t, body, "bfbdd_sessions_poisoned", ""); v != 1 {
		t.Fatalf("bfbdd_sessions_poisoned = %v, want 1", v)
	}
	if v := metricValue(t, body, "bfbdd_sessions_poisoned_total", ""); v != 1 {
		t.Fatalf("bfbdd_sessions_poisoned_total = %v, want 1", v)
	}

	// The checkpointer skips the poisoned session (its in-memory state is
	// suspect) but still persists the healthy one.
	srv.CheckpointNow()
	if p := latestSnapshot(dir, a); p != "" {
		t.Fatalf("poisoned session was checkpointed: %s", p)
	}
	if p := latestSnapshot(dir, b); p == "" {
		t.Fatalf("healthy session not checkpointed")
	}

	// Deletion reclaims the poisoned session.
	mustCall(t, "DELETE", base+"/v1/sessions/"+a, nil, http.StatusOK)
	mustCall(t, "GET", base+"/v1/sessions/"+a, nil, http.StatusNotFound)
	mkVar(t, base, b, 2, false)
}

// TestSessionBudgetOverHTTP drives a session into its own node budget and
// checks the wire contract: the offending build answers 413 with the
// budget report, the session is NOT poisoned (a budget abort leaves the
// manager consistent by design), and subsequent operations succeed.
func TestSessionBudgetOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL
	sid := createSession(t, base, SessionOptions{
		Vars: 24, Engine: "pbf", EvalThreshold: 16, MaxNodes: 4000,
	})

	code, out := growDNFOverHTTP(t, base, sid, rand.New(rand.NewSource(11)), 24, 4096, 8)
	if code == 0 {
		t.Fatal("build finished without tripping a 4000-node session budget")
	}
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("budget trip answered %d (%v), want 413", code, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "budget") {
		t.Fatalf("413 body does not carry the budget report: %v", out)
	}

	// Not poisoned, and immediately usable again.
	info := mustCall(t, "GET", base+"/v1/sessions/"+sid, nil, http.StatusOK)["info"].(map[string]any)
	if p, _ := info["poisoned"].(bool); p {
		t.Fatal("budget abort poisoned the session")
	}
	h0 := mkVar(t, base, sid, 0, false)
	h1 := mkVar(t, base, sid, 1, false)
	apply(t, base, sid, "and", h0, h1)

	// The abort is visible in the session's budget counters.
	st := mustCall(t, "GET", base+"/v1/sessions/"+sid+"/stats", nil, http.StatusOK)
	budget, _ := st["budget"].(map[string]any)
	if aborts, _ := budget["aborts"].(float64); aborts == 0 {
		t.Fatalf("stats budget.aborts = %v, want > 0", st["budget"])
	}
}

// TestBatchBudgetPartialOverHTTP checks the batch endpoint's partial-
// completion contract: a batch aborted by the budget partway through
// answers 413 with a "completed" list whose handles are real, registered
// BDDs — the client keeps the work already paid for.
func TestBatchBudgetPartialOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL
	sid := createSession(t, base, SessionOptions{
		Vars: 24, Engine: "pbf", EvalThreshold: 16, MaxNodes: 4000,
	})

	// Two random DNFs over the session's variables whose XOR blows well
	// past the budget, while the DNFs themselves (intermediates freed as
	// they grow) fit comfortably under it.
	rng := rand.New(rand.NewSource(5))
	dnf := func() uint64 {
		varsURL := base + "/v1/sessions/" + sid + "/vars"
		acc := uint64(0)
		for i := 0; i < 24; i++ {
			out := mustCall(t, "POST", varsURL,
				map[string]any{"index": rng.Intn(24), "negated": rng.Intn(2) == 0}, http.StatusOK)
			cube := handleOf(t, out)
			for j := 1; j < 8; j++ {
				out := mustCall(t, "POST", varsURL,
					map[string]any{"index": rng.Intn(24), "negated": rng.Intn(2) == 0}, http.StatusOK)
				lit := handleOf(t, out)
				next := apply(t, base, sid, "and", cube, lit)
				freeHandles(t, base, sid, cube, lit)
				cube = next
			}
			if acc == 0 {
				acc = cube
				continue
			}
			next := apply(t, base, sid, "or", acc, cube)
			freeHandles(t, base, sid, acc, cube)
			acc = next
		}
		return acc
	}
	even, odd := dnf(), dnf()
	v0, v1 := mkVar(t, base, sid, 0, false), mkVar(t, base, sid, 1, false)
	v2, v3 := mkVar(t, base, sid, 2, false), mkVar(t, base, sid, 3, false)

	code, out := call(t, "POST", base+"/v1/sessions/"+sid+"/batch", map[string]any{
		"ops": []map[string]any{
			{"op": "and", "f": v0, "g": v1},
			{"op": "or", "f": v2, "g": v3},
			{"op": "xor", "f": even, "g": odd},
		},
	})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("batch answered %d (%v), want 413", code, out)
	}
	completed, _ := out["completed"].([]any)
	if len(completed) != 2 {
		t.Fatalf("completed = %v, want the two cheap leading ops", out["completed"])
	}
	for i, c := range completed {
		op, _ := c.(map[string]any)
		if idx, _ := op["index"].(float64); int(idx) != i {
			t.Fatalf("completed[%d].index = %v, want %d", i, op["index"], i)
		}
		h, ok := op["handle"].(float64)
		if !ok {
			t.Fatalf("completed[%d] has no handle: %v", i, c)
		}
		// The partial handle must be a real, canonical BDD.
		want := [][2]uint64{{v0, v1}, {v2, v3}}[i]
		wantOp := []string{"and", "or"}[i]
		ref := apply(t, base, sid, wantOp, want[0], want[1])
		eq := mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
			map[string]any{"kind": "equal", "f": uint64(h), "g": ref}, http.StatusOK)
		if e, _ := eq["equal"].(bool); !e {
			t.Fatalf("completed[%d] handle is not the expected result", i)
		}
	}
}

// TestBudgetRaceTwoSessions is the isolation acceptance test: one session
// repeatedly slams into a tiny node budget while a second session on the
// same server completes all of its work, concurrently. Run with -race —
// the budget's degradation ladder, the abort unwind, and the other
// session's builds all share server state.
func TestBudgetRaceTwoSessions(t *testing.T) {
	_, ts := testServer(t, Config{})
	base := ts.URL
	small := createSession(t, base, SessionOptions{
		Vars: 24, Engine: "pbf", EvalThreshold: 16, MaxNodes: 4000,
	})
	big := createSession(t, base, SessionOptions{Vars: 24, Engine: "pbf"})

	// Goroutine-safe helpers: no t.Fatal off the test goroutine.
	post := func(url string, body any) (int, map[string]any) {
		return call(t, "POST", url, body)
	}
	mkvar := func(sid string, rng *rand.Rand) (uint64, int) {
		code, out := post(base+"/v1/sessions/"+sid+"/vars",
			map[string]any{"index": rng.Intn(24), "negated": rng.Intn(2) == 0})
		if code != http.StatusOK {
			return 0, code
		}
		return uint64(out["handle"].(float64)), 0
	}
	combine := func(sid, op string, f, g uint64) (uint64, int) {
		code, out := post(base+"/v1/sessions/"+sid+"/apply",
			map[string]any{"op": op, "f": f, "g": g})
		if code != http.StatusOK {
			return 0, code
		}
		h := uint64(out["handle"].(float64))
		post(base+"/v1/sessions/"+sid+"/free", map[string]any{"handles": []uint64{f, g}})
		return h, 0
	}

	var wg sync.WaitGroup
	var hits413 int
	var smallErr, bigErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		// Two full budget-trip rounds: trip, then prove the session still
		// works by tripping it again from a clean start.
		for round := 0; round < 2; round++ {
			acc := uint64(0)
		grow:
			for term := 0; term < 4096; term++ {
				cube, code := mkvar(small, rng)
				if code != 0 {
					smallErr = fmt.Errorf("round %d: var answered %d", round, code)
					return
				}
				for j := 1; j < 8; j++ {
					lit, code := mkvar(small, rng)
					if code != 0 {
						smallErr = fmt.Errorf("round %d: var answered %d", round, code)
						return
					}
					if cube, code = combine(small, "and", cube, lit); code != 0 {
						if code != http.StatusRequestEntityTooLarge {
							smallErr = fmt.Errorf("round %d: apply answered %d, want 413", round, code)
							return
						}
						hits413++
						break grow
					}
				}
				if acc == 0 {
					acc = cube
					continue
				}
				if acc, code = combine(small, "or", acc, cube); code != 0 {
					if code != http.StatusRequestEntityTooLarge {
						smallErr = fmt.Errorf("round %d: apply answered %d, want 413", round, code)
						return
					}
					hits413++
					break grow
				}
			}
			if acc != 0 {
				post(base+"/v1/sessions/"+small+"/free", map[string]any{"handles": []uint64{acc}})
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(23))
		acc := uint64(0)
		for term := 0; term < 24; term++ {
			cube, code := mkvar(big, rng)
			if code != 0 {
				bigErr = fmt.Errorf("var answered %d", code)
				return
			}
			for j := 1; j < 6; j++ {
				lit, code := mkvar(big, rng)
				if code != 0 {
					bigErr = fmt.Errorf("var answered %d", code)
					return
				}
				if cube, code = combine(big, "and", cube, lit); code != 0 {
					bigErr = fmt.Errorf("apply answered %d", code)
					return
				}
			}
			if acc == 0 {
				acc = cube
				continue
			}
			if acc, code = combine(big, "or", acc, cube); code != 0 {
				bigErr = fmt.Errorf("apply answered %d", code)
				return
			}
		}
	}()
	wg.Wait()
	if smallErr != nil {
		t.Fatalf("budget-capped session: %v", smallErr)
	}
	if bigErr != nil {
		t.Fatalf("uncapped session hit an error while its neighbor aborted: %v", bigErr)
	}
	if hits413 == 0 {
		t.Fatal("budget-capped session never answered 413")
	}
}

// TestGlobalShedOverBudget checks the server-wide overload valve: once the
// pool's live engine bytes exceed Config.MaxTotalBytes, allocating
// requests are shed with 429 + Retry-After, while reads, frees, and
// deletes — the pressure-relief valves — always pass.
func TestGlobalShedOverBudget(t *testing.T) {
	_, ts := testServer(t, Config{MaxTotalBytes: 1})
	base := ts.URL

	// The pool is empty, so creation and the first build are admitted;
	// after them the pool is decidedly over a one-byte budget.
	sid := createSession(t, base, SessionOptions{Vars: 8})
	h := mkVar(t, base, sid, 0, false)

	// Allocating routes shed. Check the raw response for Retry-After.
	resp, err := http.Post(base+"/v1/sessions/"+sid+"/vars", "application/json",
		strings.NewReader(`{"index":1}`))
	if err != nil {
		t.Fatalf("vars: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("allocating request answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After hint")
	}
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/apply",
		map[string]any{"op": "and", "f": h, "g": h}, http.StatusTooManyRequests)
	mustCall(t, "POST", base+"/v1/sessions", SessionOptions{Vars: 8}, http.StatusTooManyRequests)

	// The metrics surface shows both the pressure and the shedding while
	// the pool is still over budget.
	body := mustCall(t, "GET", base+"/metrics", nil, http.StatusOK)["raw"].(string)
	if v := metricValue(t, body, "bfbdd_http_rejected_over_budget_total", ""); v < 3 {
		t.Fatalf("bfbdd_http_rejected_over_budget_total = %v, want >= 3", v)
	}
	if v := metricValue(t, body, "bfbdd_pool_live_bytes", ""); v <= 1 {
		t.Fatalf("bfbdd_pool_live_bytes = %v, want the live footprint", v)
	}

	// Reads and relief valves pass.
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/query",
		map[string]any{"kind": "size", "f": h}, http.StatusOK)
	mustCall(t, "GET", base+"/v1/sessions/"+sid, nil, http.StatusOK)
	freeHandles(t, base, sid, h)
	mustCall(t, "POST", base+"/v1/sessions/"+sid+"/gc", nil, http.StatusOK)

	// Deleting the hog relieves the pressure; new work is admitted again.
	mustCall(t, "DELETE", base+"/v1/sessions/"+sid, nil, http.StatusOK)
	createSession(t, base, SessionOptions{Vars: 8})
}

// TestCheckpointRetryExhaustionAndRecovery drives the checkpoint retry
// policy end to end without fault injection by yanking the checkpoint
// directory out from under the writer: every attempt fails (retried with
// backoff up to the attempt cap, counted), the failure is latched for
// one-line-per-streak logging, and restoring the directory heals the
// stream on the next round.
func TestCheckpointRetryExhaustionAndRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cp")
	srv, ts := testServer(t, Config{CheckpointDir: dir, CheckpointInterval: -1})
	base := ts.URL
	sid := createSession(t, base, SessionOptions{Vars: 8})
	mkVar(t, base, sid, 0, false)

	srv.CheckpointNow()
	if got := srv.metrics.checkpointsWritten.Load(); got != 1 {
		t.Fatalf("baseline checkpointsWritten = %d, want 1", got)
	}
	if latestSnapshot(dir, sid) == "" {
		t.Fatalf("baseline snapshot missing")
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	srv.CheckpointNow()
	elapsed := time.Since(start)
	if got := srv.metrics.checkpointFailures.Load(); got != 1 {
		t.Fatalf("checkpointFailures = %d, want 1", got)
	}
	if got := srv.metrics.checkpointRetries.Load(); got != checkpointAttempts-1 {
		t.Fatalf("checkpointRetries = %d, want %d", got, checkpointAttempts-1)
	}
	// The backoff must actually have waited between attempts (base/2 jitter
	// floor summed over the retries), and the failure must be latched so
	// the next round logs recovery.
	if elapsed < checkpointRetryBase {
		t.Fatalf("retries completed in %v; backoff never waited", elapsed)
	}
	srv.ckpt.failingMu.Lock()
	_, failing := srv.ckpt.failing[sid]
	srv.ckpt.failingMu.Unlock()
	if !failing {
		t.Fatal("exhausted checkpoint not recorded in the failing set")
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	srv.CheckpointNow()
	if got := srv.metrics.checkpointsWritten.Load(); got != 2 {
		t.Fatalf("checkpointsWritten after recovery = %d, want 2", got)
	}
	if latestSnapshot(dir, sid) == "" {
		t.Fatalf("recovered snapshot missing")
	}
	srv.ckpt.failingMu.Lock()
	_, failing = srv.ckpt.failing[sid]
	srv.ckpt.failingMu.Unlock()
	if failing {
		t.Fatal("recovered session still in the failing set")
	}
}
