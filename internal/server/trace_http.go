package server

import (
	"net/http"
	"strings"

	"bfbdd/internal/trace"
)

// traced wraps one route with build tracing. The head sampler (or an
// explicit ?trace=1 in the query string) selects the request; a selected
// request gets a root span named after the route pattern, the trace and
// root travel down the request context into the executor, coalescer,
// kernel, and WAL hooks, and the completed trace is sealed into the
// tracer's ring where GET /v1/debug/traces serves it. The response
// carries the trace id in an X-Bfbdd-Trace header so a client can fetch
// its own trace directly.
//
// An unselected request pays one substring probe of the raw query and
// one atomic increment — every downstream hook then short-circuits on a
// nil trace.
func (s *Server) traced(pattern string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// RawQuery is probed directly (no url.Values allocation); a
		// false positive like x=trace=1 merely traces one extra request.
		forced := r.URL.RawQuery != "" && strings.Contains(r.URL.RawQuery, "trace=1")
		t := s.tracer.Sample(forced)
		if t == nil {
			h.ServeHTTP(w, r)
			return
		}
		w.Header().Set("X-Bfbdd-Trace", trace.FormatTraceID(t.ID()))
		root := t.Start(0, pattern)
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sr, r.WithContext(trace.NewContext(r.Context(), t, root)))
		t.End(root, trace.I("status", int64(sr.code)))
		s.tracer.Collect(t)
	})
}

// traceSummary is one row of the trace listing.
type traceSummary struct {
	TraceID     string `json:"trace_id"`
	Root        string `json:"root"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurationNs  int64  `json:"duration_ns"`
	Spans       int    `json:"spans"`
	Forced      bool   `json:"forced,omitempty"`
}

// handleListTraces lists the retained traces, newest first.
func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	snap := s.tracer.Ring().Snapshot()
	out := make([]traceSummary, 0, len(snap))
	for _, ex := range snap {
		out = append(out, traceSummary{
			TraceID:     ex.TraceID,
			Root:        ex.Root,
			StartUnixNs: ex.StartUnixNs,
			DurationNs:  ex.DurationNs,
			Spans:       len(ex.Spans),
			Forced:      ex.Forced,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sampling": s.tracer.SamplingEnabled(),
		"traces":   out,
	})
}

// handleGetTrace serves one retained trace's full export by id.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	tid := r.PathValue("tid")
	ex := s.tracer.Ring().Get(tid)
	if ex == nil {
		writeError(w, http.StatusNotFound, "no such trace: "+tid)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}
