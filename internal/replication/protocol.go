package replication

import "encoding/json"

// Wire paths and headers shared by the primary's handlers and the
// follower's client.
const (
	// StatusPath reports the primary's epoch, writability, live
	// sessions with their chain heads, and published function ids.
	StatusPath = "/v1/repl/status"
	// SnapshotPathPrefix + {sid} streams a bootstrap snapshot; the
	// response headers carry the epoch, wal base sequence, and session
	// options.
	SnapshotPathPrefix = "/v1/repl/snapshot/"
	// WALPathPrefix + {sid}?from=N&follower=ID&wait=D long-polls for
	// raw WAL frames with sequence > N.
	WALPathPrefix = "/v1/repl/wal/"

	// HeaderEpoch carries the primary's replication epoch on snapshot
	// and WAL responses.
	HeaderEpoch = "X-Bfbdd-Repl-Epoch"
	// HeaderBaseSeq carries the snapshot's wal base sequence: the
	// snapshot reflects every record with sequence <= base.
	HeaderBaseSeq = "X-Bfbdd-Repl-Base-Seq"
	// HeaderLastSeq carries the sequence of the last frame in a WAL
	// batch response.
	HeaderLastSeq = "X-Bfbdd-Repl-Last-Seq"
	// HeaderOptions carries the session's wire SessionOptions JSON on a
	// snapshot response, so the follower rebuilds the session under the
	// primary's engine configuration.
	HeaderOptions = "X-Bfbdd-Repl-Options"
)

// SessionStatus is one session's replication coordinates.
type SessionStatus struct {
	Session string `json:"session"`
	LastSeq uint64 `json:"last_seq"`
}

// Status is the /v1/repl/status response body.
type Status struct {
	Epoch    uint64          `json:"epoch"`
	Writable bool            `json:"writable"`
	Sessions []SessionStatus `json:"sessions"`
	Funcs    []string        `json:"funcs"`
}

// SnapshotInfo is the header metadata of a bootstrap snapshot stream.
type SnapshotInfo struct {
	Epoch   uint64
	BaseSeq uint64
	Options json.RawMessage
}

// WALBatch is one long-poll result: raw WAL frames (decode with
// wal.ScanFrames) covering sequences (From, LastSeq].
type WALBatch struct {
	Epoch   uint64
	LastSeq uint64
	Frames  []byte
	// Truncated reports that the connection died mid-body: Frames is a
	// prefix of what the primary sent (possibly ending in a torn frame)
	// and the caller should apply what parses, then reconnect.
	Truncated bool
}
