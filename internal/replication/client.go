package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Typed client failures the follower branches on.
var (
	// ErrSnapshotRequired means the primary truncated the requested
	// range away (410): re-bootstrap from a snapshot.
	ErrSnapshotRequired = errors.New("replication: requested range truncated, snapshot required")
	// ErrSessionGone means the primary no longer has the session (404).
	ErrSessionGone = errors.New("replication: session gone on primary")
)

// Client talks to a primary's replication endpoints. It is safe for
// concurrent use by the per-session pullers.
type Client struct {
	base       string
	followerID string
	hc         *http.Client
}

// NewClient validates primaryURL and returns a client identifying
// itself as followerID on WAL polls. The underlying http.Client has no
// global timeout — long-polls and snapshot streams are bounded by the
// per-request contexts the pullers pass in.
func NewClient(primaryURL, followerID string) (*Client, error) {
	u, err := url.Parse(primaryURL)
	if err != nil {
		return nil, fmt.Errorf("replication: bad primary url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("replication: primary url %q must be http(s)", primaryURL)
	}
	return &Client{
		base:       strings.TrimRight(u.String(), "/"),
		followerID: followerID,
		hc:         &http.Client{},
	}, nil
}

// PrimaryURL returns the base URL this client follows.
func (c *Client) PrimaryURL() string { return c.base }

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}

// httpError drains and summarizes a non-OK response.
func httpError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("replication: primary returned %d: %s", resp.StatusCode, msg)
}

// Status fetches the primary's replication status.
func (c *Client) Status(ctx context.Context) (*Status, error) {
	resp, err := c.get(ctx, StatusPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var st Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&st); err != nil {
		return nil, fmt.Errorf("replication: bad status body: %w", err)
	}
	return &st, nil
}

// Snapshot opens a bootstrap snapshot stream for sid. The caller owns
// the returned body and must Close it.
func (c *Client) Snapshot(ctx context.Context, sid string) (io.ReadCloser, SnapshotInfo, error) {
	resp, err := c.get(ctx, SnapshotPathPrefix+url.PathEscape(sid))
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return nil, SnapshotInfo{}, ErrSessionGone
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, SnapshotInfo{}, httpError(resp)
	}
	var info SnapshotInfo
	if info.Epoch, err = headerUint(resp, HeaderEpoch); err != nil {
		resp.Body.Close()
		return nil, SnapshotInfo{}, err
	}
	if info.BaseSeq, err = headerUint(resp, HeaderBaseSeq); err != nil {
		resp.Body.Close()
		return nil, SnapshotInfo{}, err
	}
	if opts := resp.Header.Get(HeaderOptions); opts != "" {
		info.Options = json.RawMessage(opts)
	}
	return resp.Body, info, nil
}

// PollWAL long-polls sid's WAL for frames beyond from, waiting up to
// wait on the primary for new commits. It returns nil (no error) when
// the primary had nothing within the window, ErrSnapshotRequired when
// the range was truncated away, and a batch — possibly Truncated, with
// a partial frame prefix — when the connection died mid-body: frames
// already flushed by the primary may back acknowledged operations, so
// the caller must apply what parses rather than discard the body.
func (c *Client) PollWAL(ctx context.Context, sid string, from uint64, wait time.Duration) (*WALBatch, error) {
	q := url.Values{
		"from":     {strconv.FormatUint(from, 10)},
		"follower": {c.followerID},
		"wait":     {wait.String()},
	}
	resp, err := c.get(ctx, WALPathPrefix+url.PathEscape(sid)+"?"+q.Encode())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusGone:
		return nil, ErrSnapshotRequired
	case http.StatusNotFound:
		return nil, ErrSessionGone
	case http.StatusOK:
	default:
		return nil, httpError(resp)
	}
	b := &WALBatch{}
	if b.Epoch, err = headerUint(resp, HeaderEpoch); err != nil {
		return nil, err
	}
	if b.LastSeq, err = headerUint(resp, HeaderLastSeq); err != nil {
		return nil, err
	}
	b.Frames, err = io.ReadAll(resp.Body)
	if err != nil {
		// The primary flushes before acknowledging, so a torn body can
		// still carry acknowledged frames; deliver the prefix.
		b.Truncated = true
	}
	return b, nil
}

// DownloadFunc fetches a published compiled-function artifact.
func (c *Client) DownloadFunc(ctx context.Context, fid string) ([]byte, error) {
	resp, err := c.get(ctx, "/v1/funcs/"+url.PathEscape(fid)+"/download")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrSessionGone
	}
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	return io.ReadAll(resp.Body)
}

func headerUint(resp *http.Response, name string) (uint64, error) {
	v := resp.Header.Get(name)
	if v == "" {
		return 0, fmt.Errorf("replication: response missing %s", name)
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replication: bad %s %q", name, v)
	}
	return n, nil
}
