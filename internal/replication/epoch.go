// Package replication implements hot-standby support for bfbdd-serve:
// the primary-side hub that tracks committed sequences and connected
// followers (semi-synchronous shipping under -wal-sync=always), the
// long-poll wire protocol shared by the primary's handlers and the
// follower's client, and the persisted replication epoch that fences a
// deposed primary.
//
// The protocol is deliberately thin: three idempotent GETs. A follower
// discovers sessions and the current epoch from /v1/repl/status,
// bootstraps each session from a snapshot stream whose headers carry
// the wal base sequence, then long-polls /v1/repl/wal/{sid}?from=N for
// raw WAL frames. Everything the follower applies is also journaled to
// its own WAL first, so a follower restart recovers locally and
// resumes from its own chain head — the primary never tracks follower
// durability, only delivery.
package replication

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// epochFile is the sidecar in the checkpoint directory that persists
// the replication epoch across restarts.
const epochFile = "epoch.json"

type epochState struct {
	Epoch uint64 `json:"epoch"`
}

// LoadEpoch reads the persisted replication epoch from dir. A missing
// file is epoch 1 (the pre-replication default), not an error.
func LoadEpoch(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, epochFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 1, nil
		}
		return 0, err
	}
	var st epochState
	if err := json.Unmarshal(data, &st); err != nil {
		return 0, err
	}
	if st.Epoch == 0 {
		st.Epoch = 1
	}
	return st.Epoch, nil
}

// StoreEpoch durably persists epoch in dir (temp file, fsync, rename),
// the same commit discipline as checkpoint metadata: a crash leaves
// either the old epoch or the new one, never a torn file.
func StoreEpoch(dir string, epoch uint64) error {
	data, err := json.Marshal(epochState{Epoch: epoch})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".epoch-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, epochFile))
}
