package replication

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestHubCommitWakesWaiters(t *testing.T) {
	h := NewHub(time.Minute)
	done := make(chan bool, 1)
	go func() {
		done <- h.WaitCommit(context.Background(), "s-a", 5, 10*time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	h.NotifyCommit("s-a", 6)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("WaitCommit returned false after a commit beyond the watermark")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitCommit did not wake")
	}
	if got := h.Committed("s-a"); got != 6 {
		t.Fatalf("Committed = %d, want 6", got)
	}
	// Already-satisfied waits return immediately.
	if !h.WaitCommit(context.Background(), "s-a", 0, 0) {
		t.Fatal("satisfied WaitCommit returned false")
	}
	// Timeouts return false without a commit.
	if h.WaitCommit(context.Background(), "s-a", 100, 10*time.Millisecond) {
		t.Fatal("WaitCommit invented a commit")
	}
}

func TestHubDeliveryGate(t *testing.T) {
	h := NewHub(time.Minute)
	// No follower attached: acknowledgements must not stall.
	if stalled := h.AwaitDelivery("s-a", 3, time.Millisecond); stalled != 0 {
		t.Fatalf("AwaitDelivery with no followers stalled %d", stalled)
	}

	h.Seen("f1", "s-a", 0)
	// f1 is attached but has not received seq 3: a bounded wait times out
	// and drops it from the sync set.
	if stalled := h.AwaitDelivery("s-a", 3, 10*time.Millisecond); stalled != 1 {
		t.Fatalf("AwaitDelivery should have dropped 1 laggard, got %d", stalled)
	}
	if n := h.Followers(); n != 0 {
		t.Fatalf("laggard not dropped: %d followers", n)
	}

	// Delivery during the wait releases the gate with no stall.
	h.Seen("f1", "s-a", 0)
	var wg sync.WaitGroup
	wg.Add(1)
	var stalled int
	go func() {
		defer wg.Done()
		stalled = h.AwaitDelivery("s-a", 3, 10*time.Second)
	}()
	time.Sleep(10 * time.Millisecond)
	h.Delivered("f1", "s-a", 3)
	wg.Wait()
	if stalled != 0 {
		t.Fatalf("AwaitDelivery stalled %d after timely delivery", stalled)
	}

	// A follower attached to a different session does not gate s-a.
	h.Seen("f2", "s-b", 0)
	if stalled := h.AwaitDelivery("s-a", 4, time.Millisecond); stalled != 1 {
		// f1 is still attached at delivered=3 < 4.
		t.Fatalf("stalled = %d, want 1 (only f1 gates s-a)", stalled)
	}
}

func TestHubMinAcked(t *testing.T) {
	h := NewHub(time.Minute)
	if _, ok := h.MinAcked("s-a"); ok {
		t.Fatal("MinAcked invented a follower")
	}
	h.Seen("f1", "s-a", 7)
	h.Seen("f2", "s-a", 3)
	if min, ok := h.MinAcked("s-a"); !ok || min != 3 {
		t.Fatalf("MinAcked = %d,%v want 3,true", min, ok)
	}
	// Acked watermarks are monotonic per follower.
	h.Seen("f2", "s-a", 2)
	if min, _ := h.MinAcked("s-a"); min != 3 {
		t.Fatalf("MinAcked regressed to %d", min)
	}
	h.Seen("f2", "s-a", 9)
	if min, _ := h.MinAcked("s-a"); min != 7 {
		t.Fatalf("MinAcked = %d, want 7", min)
	}
}

func TestHubStaleFollowersIgnored(t *testing.T) {
	h := NewHub(20 * time.Millisecond)
	h.Seen("f1", "s-a", 5)
	time.Sleep(50 * time.Millisecond)
	if _, ok := h.MinAcked("s-a"); ok {
		t.Fatal("stale follower still holds the truncation floor")
	}
	if n := h.Followers(); n != 0 {
		t.Fatalf("Followers = %d, want 0", n)
	}
	if stalled := h.AwaitDelivery("s-a", 100, time.Millisecond); stalled != 0 {
		t.Fatalf("stale follower gated delivery: %d", stalled)
	}
}

func TestEpochPersistence(t *testing.T) {
	dir := t.TempDir()
	if e, err := LoadEpoch(dir); err != nil || e != 1 {
		t.Fatalf("fresh LoadEpoch = %d, %v (want 1)", e, err)
	}
	if err := StoreEpoch(dir, 7); err != nil {
		t.Fatal(err)
	}
	if e, err := LoadEpoch(dir); err != nil || e != 7 {
		t.Fatalf("LoadEpoch = %d, %v (want 7)", e, err)
	}
}
