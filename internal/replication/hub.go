package replication

import (
	"context"
	"sync"
	"time"
)

// Hub is the primary-side rendezvous between committing sessions and
// long-polling followers. Sessions report committed sequences after
// their WAL append (and fsync, per policy) succeeds; poll handlers wait
// here for new commits and report delivery after the response is
// flushed to the follower's socket. Under -wal-sync=always the server
// also blocks acknowledgements on delivery (AwaitDelivery), which is
// what makes "zero acknowledged-op loss on promotion" literal: an op is
// acked only after its frames reached every attached follower's socket.
type Hub struct {
	// staleAfter bounds how long a follower stays "connected" without
	// polling; it must exceed the long-poll wait or idle followers
	// flap in and out of the sync set between polls.
	staleAfter time.Duration

	mu        sync.Mutex
	sessions  map[string]*hubSession
	followers map[string]*hubFollower
	delivered chan struct{} // closed and replaced on every delivery
}

type hubSession struct {
	committed uint64
	ch        chan struct{} // closed and replaced on every commit
}

type hubFollower struct {
	lastSeen  time.Time
	acked     map[string]uint64 // per session: has everything <= seq
	delivered map[string]uint64 // per session: flushed to its socket
}

// NewHub returns a hub that treats followers silent for staleAfter as
// disconnected (<= 0 selects 30s, comfortably above the poll wait).
func NewHub(staleAfter time.Duration) *Hub {
	if staleAfter <= 0 {
		staleAfter = 30 * time.Second
	}
	return &Hub{
		staleAfter: staleAfter,
		sessions:   make(map[string]*hubSession),
		followers:  make(map[string]*hubFollower),
		delivered:  make(chan struct{}),
	}
}

func (h *Hub) session(sid string) *hubSession {
	s := h.sessions[sid]
	if s == nil {
		s = &hubSession{ch: make(chan struct{})}
		h.sessions[sid] = s
	}
	return s
}

// NotifyCommit records that sid's records up to seq are committed and
// wakes every long-poll waiting on the session.
func (h *Hub) NotifyCommit(sid string, seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.session(sid)
	if seq <= s.committed {
		return
	}
	s.committed = seq
	close(s.ch)
	s.ch = make(chan struct{})
}

// Committed returns sid's last committed sequence known to the hub.
func (h *Hub) Committed(sid string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.sessions[sid]; s != nil {
		return s.committed
	}
	return 0
}

// Forget drops sid's commit state (session deleted).
func (h *Hub) Forget(sid string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.sessions, sid)
}

// WaitCommit blocks until sid has a committed sequence beyond after,
// the context expires, or timeout elapses. It reports whether new
// records are available.
func (h *Hub) WaitCommit(ctx context.Context, sid string, after uint64, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		h.mu.Lock()
		s := h.session(sid)
		if s.committed > after {
			h.mu.Unlock()
			return true
		}
		ch := s.ch
		h.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return false
		case <-deadline.C:
			return false
		}
	}
}

// Seen registers (or refreshes) follower fid as attached to sid with
// everything up to acked already applied on its side. Poll handlers
// call it on every request, so acked doubles as the truncation floor.
func (h *Hub) Seen(fid, sid string, acked uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f := h.followers[fid]
	if f == nil {
		f = &hubFollower{
			acked:     make(map[string]uint64),
			delivered: make(map[string]uint64),
		}
		h.followers[fid] = f
	}
	f.lastSeen = time.Now()
	// Always materialize the keys: holding them is what marks the
	// follower as attached to sid, even at acked 0.
	if cur, ok := f.acked[sid]; !ok || acked > cur {
		f.acked[sid] = acked
	}
	if cur, ok := f.delivered[sid]; !ok || acked > cur {
		f.delivered[sid] = acked
	}
}

// Delivered records that sid's frames up to seq were flushed to fid's
// socket and wakes AwaitDelivery waiters.
func (h *Hub) Delivered(fid, sid string, seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f := h.followers[fid]
	if f == nil {
		return
	}
	f.lastSeen = time.Now()
	if seq > f.delivered[sid] {
		f.delivered[sid] = seq
	}
	close(h.delivered)
	h.delivered = make(chan struct{})
}

// connectedLocked reports the follower ids attached to sid (polled it
// at least once) and seen recently. A follower that never polled a
// session does not gate its acknowledgements: new sessions must not
// stall behind a puller that has not discovered them yet — the
// follower picks them up via its snapshot bootstrap instead.
func (h *Hub) connectedLocked(sid string, now time.Time) []string {
	var ids []string
	for fid, f := range h.followers {
		if now.Sub(f.lastSeen) > h.staleAfter {
			continue
		}
		if _, attached := f.acked[sid]; attached {
			ids = append(ids, fid)
		}
	}
	return ids
}

// AwaitDelivery blocks until every connected follower attached to sid
// has sid's frames up to seq flushed to its socket, or timeout. On
// timeout the followers still behind are dropped from the hub — they
// rejoin (and re-gate acknowledgements) on their next poll — and their
// count is returned so the server can export it as a sync stall.
func (h *Hub) AwaitDelivery(sid string, seq uint64, timeout time.Duration) (stalled int) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		h.mu.Lock()
		now := time.Now()
		behind := 0
		for _, fid := range h.connectedLocked(sid, now) {
			if h.followers[fid].delivered[sid] < seq {
				behind++
			}
		}
		if behind == 0 {
			h.mu.Unlock()
			return 0
		}
		ch := h.delivered
		h.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			h.mu.Lock()
			dropped := 0
			for _, fid := range h.connectedLocked(sid, time.Now()) {
				if h.followers[fid].delivered[sid] < seq {
					delete(h.followers, fid)
					dropped++
				}
			}
			h.mu.Unlock()
			return dropped
		}
	}
}

// MinAcked returns the lowest acked sequence for sid across connected
// followers, and whether any follower is attached to sid at all. The
// checkpointer uses it as a truncation floor so shipping never races
// segment deletion for a live follower.
func (h *Hub) MinAcked(sid string) (uint64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	min, any := uint64(0), false
	for _, fid := range h.connectedLocked(sid, now) {
		a := h.followers[fid].acked[sid]
		if !any || a < min {
			min, any = a, true
		}
	}
	return min, any
}

// Followers returns the number of recently-seen followers.
func (h *Hub) Followers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	n := 0
	for _, f := range h.followers {
		if now.Sub(f.lastSeen) <= h.staleAfter {
			n++
		}
	}
	return n
}
