package cache

import (
	"testing"
	"testing/quick"

	"bfbdd/internal/node"
)

func mkRef(level int, idx uint64) node.Ref { return node.MakeRef(level, 0, idx) }

func TestTaggedRoundTrip(t *testing.T) {
	r := mkRef(5, 99)
	v := FromRef(r)
	if v.IsOpHandle() {
		t.Fatal("ref tagged as op handle")
	}
	if v.Ref() != r {
		t.Fatalf("Ref() = %v", v.Ref())
	}
	h := Tagged(1<<63 | 12345)
	if !h.IsOpHandle() {
		t.Fatal("op handle not recognized")
	}
}

func TestTaggedQuick(t *testing.T) {
	f := func(level uint16, idx uint64) bool {
		r := mkRef(int(level)%node.TermLevel, idx&((1<<40)-1))
		v := FromRef(r)
		return !v.IsOpHandle() && v.Ref() == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLookupInsert(t *testing.T) {
	c := New(4, 10)
	f, g := mkRef(1, 0), mkRef(2, 3)
	if _, ok := c.Lookup(0, 1, f, g); ok {
		t.Fatal("hit on empty cache")
	}
	want := FromRef(mkRef(3, 7))
	c.Insert(0, 1, f, g, want)
	got, ok := c.Lookup(0, 1, f, g)
	if !ok || got != want {
		t.Fatalf("Lookup = %v,%v", got, ok)
	}
	// Different op, same operands: miss.
	if _, ok := c.Lookup(0, 2, f, g); ok {
		t.Fatal("hit with wrong op")
	}
	// Different level segment: miss.
	if _, ok := c.Lookup(1, 1, f, g); ok {
		t.Fatal("hit in wrong segment")
	}
	if c.Hits() != 1 || c.Misses() != 3 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestEviction(t *testing.T) {
	c := New(1, initialBits) // fixed-size segment, no growth
	// Fill far beyond capacity; the cache must remain lossy but correct.
	n := uint64(4 << initialBits)
	for i := uint64(0); i < n; i++ {
		c.Insert(0, 1, mkRef(1, i), mkRef(2, i), FromRef(mkRef(0, i)))
	}
	hits := 0
	for i := uint64(0); i < n; i++ {
		if v, ok := c.Lookup(0, 1, mkRef(1, i), mkRef(2, i)); ok {
			if v.Ref().Index() != i {
				t.Fatalf("wrong value for key %d: %v", i, v.Ref())
			}
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("all entries evicted — hash must be degenerate")
	}
	if hits == int(n) {
		t.Fatal("no evictions in an over-filled direct-mapped cache")
	}
}

func TestGrowthKeepsEntries(t *testing.T) {
	c := New(1, 16)
	keys := make([]node.Ref, 0, 1<<initialBits)
	for i := uint64(0); i < 1<<initialBits; i++ {
		k := mkRef(1, i)
		keys = append(keys, k)
		c.Insert(0, 1, k, node.One, FromRef(mkRef(0, i)))
	}
	before := 0
	for _, k := range keys {
		if _, ok := c.Lookup(0, 1, k, node.One); ok {
			before++
		}
	}
	// Trigger growth with more inserts.
	for i := uint64(1 << initialBits); i < 1<<(initialBits+2); i++ {
		c.Insert(0, 1, mkRef(1, i), node.One, FromRef(mkRef(0, i)))
	}
	if c.Bytes() <= uint64(1<<initialBits)*32 {
		t.Fatalf("segment did not grow: %d bytes", c.Bytes())
	}
	after := 0
	for _, k := range keys {
		if v, ok := c.Lookup(0, 1, k, node.One); ok {
			if v.Ref().Index() != k.Index() {
				t.Fatalf("wrong value after growth for %v", k)
			}
			after++
		}
	}
	if after == 0 {
		t.Fatal("growth lost every early entry")
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New(2, 10)
	f, g := mkRef(1, 1), mkRef(1, 2)
	bddVal := FromRef(mkRef(0, 9))
	opVal := Tagged(1<<63 | 42)

	c.Insert(0, 1, f, g, bddVal)
	c.Insert(1, 1, f, g, opVal)

	// InvalidateOps kills op-handle entries only.
	c.InvalidateOps()
	if _, ok := c.Lookup(1, 1, f, g); ok {
		t.Fatal("op-handle entry survived InvalidateOps")
	}
	if v, ok := c.Lookup(0, 1, f, g); !ok || v != bddVal {
		t.Fatal("BDD entry should survive InvalidateOps")
	}

	// InvalidateBDD kills everything.
	c.Insert(1, 1, f, g, opVal)
	c.InvalidateBDD()
	if _, ok := c.Lookup(0, 1, f, g); ok {
		t.Fatal("BDD entry survived InvalidateBDD")
	}
	if _, ok := c.Lookup(1, 1, f, g); ok {
		t.Fatal("op entry survived InvalidateBDD")
	}

	// Fresh inserts after invalidation work.
	c.Insert(0, 1, f, g, bddVal)
	if _, ok := c.Lookup(0, 1, f, g); !ok {
		t.Fatal("insert after invalidation not visible")
	}
}

func TestUpdate(t *testing.T) {
	c := New(1, 10)
	f, g := mkRef(1, 1), mkRef(1, 2)
	opVal := Tagged(1<<63 | 7)
	c.Insert(0, 3, f, g, opVal)
	final := FromRef(mkRef(0, 5))
	c.Update(0, 3, f, g, final)
	v, ok := c.Lookup(0, 3, f, g)
	if !ok || v != final {
		t.Fatalf("after Update: %v,%v", v, ok)
	}
	// Update of an absent key is a no-op.
	c.Update(0, 3, mkRef(1, 99), g, final)
	if _, ok := c.Lookup(0, 3, mkRef(1, 99), g); ok {
		t.Fatal("Update created an entry")
	}
}

func TestStaleSlotReusable(t *testing.T) {
	c := New(1, 10)
	f, g := mkRef(1, 1), mkRef(1, 2)
	c.Insert(0, 1, f, g, Tagged(1<<63|1))
	c.InvalidateOps()
	// Same slot, new value: must win and be visible.
	c.Insert(0, 1, f, g, FromRef(mkRef(0, 3)))
	v, ok := c.Lookup(0, 1, f, g)
	if !ok || v.IsOpHandle() {
		t.Fatalf("reinsert into stale slot failed: %v,%v", v, ok)
	}
}
