// Package cache implements the compute cache of the hybrid/partial
// breadth-first algorithm: a lossy, direct-mapped table that stores both
// computed operations (result is a BDD ref) and uncomputed operations
// (result is a handle to an operator node still awaiting its reduction).
//
// Following the paper (§3.2), the cache is private to a worker — sharing
// would require synchronization on every lookup — and, following the
// per-variable data layout (§3.1), it is segmented by the operation's top
// variable so that cache probes during the expansion of variable x touch
// only x's segment.
//
// Entries are invalidated lazily with generation numbers:
//
//   - entries holding a BDD ref die when the BDD generation advances
//     (garbage collection moves or frees nodes);
//   - entries holding an operator-node handle die when the op generation
//     advances (operator arenas are recycled once a top-level operation
//     completes).
package cache

import "bfbdd/internal/node"

// Tagged is a tagged result word: either a node.Ref (bit 63 clear) or an
// operator-node handle (bit 63 set). The core package defines the handle
// encoding; the cache only preserves the tag.
type Tagged uint64

// IsOpHandle reports whether v holds an operator-node handle.
func (v Tagged) IsOpHandle() bool { return v>>63 == 1 }

// Ref returns the BDD ref stored in v. Only valid when !IsOpHandle.
func (v Tagged) Ref() node.Ref { return node.Ref(v) }

// FromRef wraps a BDD ref as a tagged word.
func FromRef(r node.Ref) Tagged { return Tagged(r) }

type entry struct {
	f, g node.Ref
	val  Tagged
	op   uint8
	gen  uint32
}

const (
	emptyF = node.Nil // sentinel: entry unused

	// initialBits sizes a fresh per-variable segment at 2^initialBits.
	initialBits = 8
)

type segment struct {
	entries []entry
	mask    uint64
	// pressure counts inserts since the last resize; when it exceeds the
	// segment size the segment doubles (up to the cache's max bits). This
	// keeps small builds small while letting hot variables grow.
	pressure uint64
}

// Cache is one worker's compute cache, segmented by variable level.
type Cache struct {
	segs    []segment
	maxBits uint

	bddGen uint32
	opGen  uint32

	hits, misses, inserts uint64
}

// New creates a cache with one segment per level. maxBits bounds each
// segment at 2^maxBits entries.
func New(levels int, maxBits uint) *Cache {
	if maxBits < initialBits {
		maxBits = initialBits
	}
	return &Cache{segs: make([]segment, levels), maxBits: maxBits}
}

// Levels returns the number of per-variable segments.
func (c *Cache) Levels() int { return len(c.segs) }

// Hits, Misses and Inserts return lookup/insert counters.
func (c *Cache) Hits() uint64    { return c.hits }
func (c *Cache) Misses() uint64  { return c.misses }
func (c *Cache) Inserts() uint64 { return c.inserts }

// InvalidateBDD advances the BDD generation: every entry whose value is a
// BDD ref becomes stale. Called after garbage collection.
func (c *Cache) InvalidateBDD() { c.bddGen++; c.opGen++ }

// InvalidateOps advances the op generation: every entry whose value is an
// operator-node handle becomes stale. Called when operator arenas are
// recycled at the end of a top-level operation.
func (c *Cache) InvalidateOps() { c.opGen++ }

// Bytes returns the cache's approximate memory footprint.
func (c *Cache) Bytes() uint64 {
	var total uint64
	for i := range c.segs {
		total += uint64(len(c.segs[i].entries)) * 32
	}
	return total
}

// Shrink releases every segment's storage and returns the bytes freed.
// It is the memory-pressure escalation step between an early GC and a
// budget abort: the cache is lossy by contract, so dropping it entirely
// only costs recomputation. Safe only while the owning worker is
// quiescent (top-level-operation boundaries) — segments holding
// operator-node handles for an in-flight build must not disappear
// mid-reduction.
func (c *Cache) Shrink() uint64 {
	freed := c.Bytes()
	for i := range c.segs {
		c.segs[i] = segment{}
	}
	return freed
}

func hash3(op uint8, f, g node.Ref) uint64 {
	h := uint64(f)*0x9E3779B97F4A7C15 + uint64(g)*0xC2B2AE3D27D4EB4F + uint64(op)*0x165667B19E3779F9
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 29
	return h
}

func (c *Cache) genFor(v Tagged) uint32 {
	if v.IsOpHandle() {
		return c.opGen
	}
	return c.bddGen
}

// Lookup returns the cached result for (op, f, g) at the given level, if
// present and current.
func (c *Cache) Lookup(level int, op uint8, f, g node.Ref) (Tagged, bool) {
	s := &c.segs[level]
	if s.entries == nil {
		c.misses++
		return 0, false
	}
	e := &s.entries[hash3(op, f, g)&s.mask]
	if e.f == f && e.g == g && e.op == op && e.f != emptyF && e.gen == c.genFor(e.val) {
		c.hits++
		return e.val, true
	}
	c.misses++
	return 0, false
}

// Insert records the result for (op, f, g) at the given level, evicting
// whatever occupied the slot. Direct-mapped and lossy by design: the
// hybrid algorithm deliberately bounds cache memory rather than keeping a
// complete table of uncomputed operations.
func (c *Cache) Insert(level int, op uint8, f, g node.Ref, val Tagged) {
	s := &c.segs[level]
	if s.entries == nil {
		s.entries = make([]entry, 1<<initialBits)
		s.mask = 1<<initialBits - 1
		for i := range s.entries {
			s.entries[i].f = emptyF
		}
	} else if s.pressure > uint64(len(s.entries)) && uint64(len(s.entries)) < 1<<c.maxBits {
		c.growSegment(s)
	}
	s.pressure++
	c.inserts++
	e := &s.entries[hash3(op, f, g)&s.mask]
	e.op, e.f, e.g, e.val, e.gen = op, f, g, val, c.genFor(val)
}

// growSegment doubles a segment, rehashing current entries.
func (c *Cache) growSegment(s *segment) {
	old := s.entries
	s.entries = make([]entry, len(old)*2)
	s.mask = uint64(len(s.entries)) - 1
	s.pressure = 0
	for i := range s.entries {
		s.entries[i].f = emptyF
	}
	for i := range old {
		e := &old[i]
		if e.f == emptyF || e.gen != c.genFor(e.val) {
			continue
		}
		s.entries[hash3(e.op, e.f, e.g)&s.mask] = *e
	}
}

// Update rewrites the cached value for (op, f, g) if the entry is still
// present, e.g. to replace an uncomputed op handle with its final BDD ref
// so later probes skip the operator node.
func (c *Cache) Update(level int, op uint8, f, g node.Ref, val Tagged) {
	s := &c.segs[level]
	if s.entries == nil {
		return
	}
	e := &s.entries[hash3(op, f, g)&s.mask]
	if e.f == f && e.g == g && e.op == op {
		e.val, e.gen = val, c.genFor(val)
	}
}
