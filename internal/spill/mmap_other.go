//go:build !linux

package spill

// mmapEnabled selects the portable fallback: spilling a level releases
// its heap blocks outright, and any read of that level requires an
// explicit unspill (the kernel's ensure-readable hooks do this).
const mmapEnabled = false

func mmapFile(path string) ([]byte, error) { return nil, nil }

func munmapFile(data []byte) {}

func advise(data []byte, off, n uint64) {}
