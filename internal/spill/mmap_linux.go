//go:build linux

package spill

import (
	"os"
	"syscall"
)

// mmapEnabled selects the zero-copy read path: spilled levels stay
// readable through a private read-only mapping of the spill file, and
// page faults do the fault-in.
const mmapEnabled = true

// mmapFile maps the whole file read-only and shared (the file is never
// written after rename, so shared vs. private is equivalent; shared
// lets the kernel discard clean pages without swap).
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return data, nil
}

func munmapFile(data []byte) {
	if data != nil {
		syscall.Munmap(data)
	}
}

// advise issues MADV_WILLNEED for the payload region so the kernel
// starts readahead before the sweep reaches the level.
func advise(data []byte, off, n uint64) {
	if off+n > uint64(len(data)) || n == 0 {
		return
	}
	syscall.Madvise(data[off:off+n], syscall.MADV_WILLNEED)
}
