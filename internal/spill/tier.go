// Package spill implements the memory-tiering backend: a spillable store
// for per-(worker,variable) arena blocks. A fully-reduced level of a
// quiescent Manager — no build in flight, so post-reduction nodes are
// immutable until the next GC — can be written to a level-major spill
// file and its heap blocks released. On Linux the spilled run is then
// remapped read-only via mmap, so the Ref-resolution hot path is
// unchanged: loads through the mapped block table fault pages in on
// demand and the OS page cache, not the Go heap, owns the bytes. On
// other platforms (no mmap backend) a spilled level is unreadable until
// it is explicitly unspilled, and the kernel unspills before any read.
//
// Layout: one file per level, `level-%04d.spill`, holding every
// worker's blocks for that level back to back (worker-major) — the
// level-major framing of the snapshot segment encoding, but with raw
// block images instead of varint deltas, because a delta stream cannot
// be memory-mapped in place. Spill files are same-machine scratch state
// (native endianness, native Node layout), not a portable interchange
// format; snapshots remain the durable format, and stale spill files
// are wiped on Open.
//
// Each block is BlockSize*NodeBytes = 98304 bytes = 24 OS pages, and
// the header is padded to a page multiple, so every block in the file
// is page-aligned — a requirement for handing mmap'd subslices to the
// arena block table.
//
// Concurrency contract: Spill/Unspill/Prefetch/Close are serialized by
// the tier's mutex and must only run while the owning kernel guarantees
// no writer touches the affected arenas (quiescent boundary, or the
// kernel's per-level pin path). Readers need no coordination: arena
// block tables are swapped atomically and old tables stay valid until
// ReleaseRetired unmaps them at the next quiescent point. The atomic
// getters (SpilledLevelCount, SpilledBytes) are safe from any
// goroutine and are the fast "is tiering even active" gate on hot
// paths.
package spill

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/node"
)

const (
	magic      = "BFBDSPL1"
	version    = 1
	pageSize   = 4096
	blockBytes = node.BlockSize * node.NodeBytes // 98304, a page multiple
	segSize    = 32                              // per-worker segment table entry
	fixedHdr   = 48                              // bytes before the segment table
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segment records one worker's allocator state for a spilled level.
type segment struct {
	n, free, nFree uint64
	nBlocks        uint64
}

// spilledLevel is the in-memory record of one level currently on disk.
type spilledLevel struct {
	path         string
	segs         []segment
	payloadBytes uint64
	mapping      []byte // whole-file mapping; nil on platforms without mmap
	prefetched   bool   // a WILLNEED advice was issued and not yet consumed
}

// Stats is a point-in-time snapshot of tier activity counters.
type Stats struct {
	SpilledLevels int
	SpilledBytes  uint64
	SpillOps      uint64
	UnspillOps    uint64
	SpillNS       uint64
	UnspillNS     uint64
	PrefetchHits  uint64
}

// Tier manages the spill files and mappings for one Manager's node
// store.
type Tier struct {
	dir string

	mu     sync.Mutex
	levels map[int]*spilledLevel

	// retired holds mappings whose level has been unspilled (heap blocks
	// swapped back in) but whose pages may still be referenced by readers
	// that loaded the old block table mid-build. They are unmapped by
	// ReleaseRetired at the next quiescent boundary.
	retired [][]byte

	spilledLevelN atomic.Int64
	spilledBytes  atomic.Uint64
	spillOps      atomic.Uint64
	unspillOps    atomic.Uint64
	spillNS       atomic.Uint64
	unspillNS     atomic.Uint64
	prefetchHits  atomic.Uint64
}

// Open creates (or reuses) the spill directory and returns a Tier over
// it. Any stale *.spill files — leftovers from a crash, possibly
// truncated or corrupt — are removed: spill files are scratch state and
// the heap (or a checkpoint+WAL recovery) is always the source of
// truth.
func Open(dir string) (*Tier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: create dir: %w", err)
	}
	stale, err := filepath.Glob(filepath.Join(dir, "*.spill"))
	if err != nil {
		return nil, fmt.Errorf("spill: scan dir: %w", err)
	}
	for _, p := range stale {
		if err := os.Remove(p); err != nil {
			return nil, fmt.Errorf("spill: remove stale file: %w", err)
		}
	}
	return &Tier{dir: dir, levels: make(map[int]*spilledLevel)}, nil
}

// Dir returns the directory holding this tier's spill files.
func (t *Tier) Dir() string { return t.dir }

// IsSpilled reports whether level is currently spilled.
func (t *Tier) IsSpilled(level int) bool {
	if t.spilledLevelN.Load() == 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.levels[level]
	return ok
}

// SpilledLevelCount returns the number of levels currently spilled. It
// is the lock-free fast gate hot paths consult before taking any lock.
func (t *Tier) SpilledLevelCount() int { return int(t.spilledLevelN.Load()) }

// SpilledBytes returns the total payload bytes currently on disk.
func (t *Tier) SpilledBytes() uint64 { return t.spilledBytes.Load() }

// LevelBytes returns the on-disk payload bytes of one spilled level
// (zero when the level is resident).
func (t *Tier) LevelBytes(level int) uint64 {
	if t.spilledLevelN.Load() == 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec, ok := t.levels[level]; ok {
		return rec.payloadBytes
	}
	return 0
}

// MmapEnabled reports whether this platform serves spilled levels
// through read-only file mappings (reads need no unspill).
const MmapEnabled = mmapEnabled

// SpilledLevels returns the spilled level numbers in ascending order.
func (t *Tier) SpilledLevels() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.levels))
	for l := range t.levels {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Stats returns a snapshot of the tier's activity counters.
func (t *Tier) Stats() Stats {
	return Stats{
		SpilledLevels: int(t.spilledLevelN.Load()),
		SpilledBytes:  t.spilledBytes.Load(),
		SpillOps:      t.spillOps.Load(),
		UnspillOps:    t.unspillOps.Load(),
		SpillNS:       t.spillNS.Load(),
		UnspillNS:     t.unspillNS.Load(),
		PrefetchHits:  t.prefetchHits.Load(),
	}
}

func levelPath(dir string, level int) string {
	return filepath.Join(dir, fmt.Sprintf("level-%04d.spill", level))
}

func headerLen(workers int) uint64 {
	raw := uint64(fixedHdr + workers*segSize + 4) // +4 for the header CRC
	return (raw + pageSize - 1) &^ (pageSize - 1)
}

// nodesAsBytes reinterprets a block's node slice as its raw byte image.
// Node is three uint64 fields with no padding (NodeBytes == 24), so the
// image is exactly the in-memory representation.
func nodesAsBytes(b []Node) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&b[0])), len(b)*node.NodeBytes)
}

// Node aliases node.Node so the unsafe helpers read naturally.
type Node = node.Node

// bytesAsNodes reinterprets a page-aligned byte slice as a node block.
func bytesAsNodes(b []byte) []Node {
	return unsafe.Slice((*Node)(unsafe.Pointer(&b[0])), len(b)/node.NodeBytes)
}

// SpillLevel writes every worker's blocks for level to the level's
// spill file and swaps the arenas' heap blocks for the on-disk copy:
// a read-only mapping of the file where mmap is available, or nothing
// at all (reads then require UnspillLevel) otherwise. It is a no-op if
// the level is already spilled or holds no blocks. On any error the
// arenas are left untouched and fully resident: block adoption happens
// only after the file is durably renamed into place.
func (t *Tier) SpillLevel(st *node.Store, level int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.levels[level]; ok {
		return nil
	}
	workers := st.Workers()
	segs := make([]segment, workers)
	tables := make([][][]Node, workers)
	var payload uint64
	for w := 0; w < workers; w++ {
		blocks, n, free, nFree := st.Arena(w, level).ExportBlocks()
		segs[w] = segment{n: n, free: free, nFree: nFree, nBlocks: uint64(len(blocks))}
		tables[w] = blocks
		payload += uint64(len(blocks)) * blockBytes
	}
	if payload == 0 {
		return nil // nothing resident at this level; not worth a file
	}

	start := time.Now()
	path := levelPath(t.dir, level)
	if err := writeLevelFile(path, level, segs, tables, payload); err != nil {
		return err
	}

	rec := &spilledLevel{path: path, segs: segs, payloadBytes: payload}
	if mmapEnabled {
		data, err := mmapFile(path)
		if err != nil {
			// The file is written but unusable; drop it and stay resident.
			os.Remove(path)
			return fmt.Errorf("spill: map level %d: %w", level, err)
		}
		rec.mapping = data
		hdr := headerLen(workers)
		off := hdr
		for w := 0; w < workers; w++ {
			nb := int(segs[w].nBlocks)
			if nb == 0 {
				st.Arena(w, level).AdoptBlocks(nil, segs[w].n, segs[w].free, segs[w].nFree, true)
				continue
			}
			mblocks := make([][]Node, nb)
			for b := 0; b < nb; b++ {
				mblocks[b] = bytesAsNodes(data[off : off+blockBytes])
				off += blockBytes
			}
			st.Arena(w, level).AdoptBlocks(mblocks, segs[w].n, segs[w].free, segs[w].nFree, true)
		}
	} else {
		// Portable fallback: heap blocks are simply released; the level
		// must be unspilled before any read.
		for w := 0; w < workers; w++ {
			st.Arena(w, level).AdoptBlocks(nil, segs[w].n, segs[w].free, segs[w].nFree, true)
		}
	}

	t.levels[level] = rec
	t.spilledLevelN.Add(1)
	t.spilledBytes.Add(payload)
	t.spillOps.Add(1)
	t.spillNS.Add(uint64(time.Since(start).Nanoseconds()))
	return nil
}

// writeLevelFile stages the spill file next to its final path and
// renames it into place after an fsync, so a crash mid-spill leaves
// either no file or a complete one (and Open wipes both kinds anyway).
func writeLevelFile(path string, level int, segs []segment, tables [][][]Node, payload uint64) (err error) {
	if faultinject.Enabled {
		if ferr := faultinject.Check(faultinject.SpillWrite); ferr != nil {
			return ferr
		}
	}
	workers := len(segs)
	hdr := make([]byte, headerLen(workers))
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(level))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(workers))
	binary.LittleEndian.PutUint32(hdr[20:], node.BlockSize)
	binary.LittleEndian.PutUint32(hdr[24:], node.NodeBytes)
	binary.LittleEndian.PutUint64(hdr[32:], payload)

	payloadCRC := crc32.New(castagnoli)
	for w := range tables {
		for _, blk := range tables[w] {
			payloadCRC.Write(nodesAsBytes(blk))
		}
		base := fixedHdr + w*segSize
		binary.LittleEndian.PutUint64(hdr[base:], segs[w].n)
		binary.LittleEndian.PutUint64(hdr[base+8:], segs[w].free)
		binary.LittleEndian.PutUint64(hdr[base+16:], segs[w].nFree)
		binary.LittleEndian.PutUint64(hdr[base+24:], segs[w].nBlocks)
	}
	binary.LittleEndian.PutUint32(hdr[40:], payloadCRC.Sum32())
	crcOff := fixedHdr + workers*segSize
	binary.LittleEndian.PutUint32(hdr[crcOff:], crc32.Checksum(hdr[:crcOff], castagnoli))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("spill: create: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(hdr); err != nil {
		return fmt.Errorf("spill: write header: %w", err)
	}
	for w := range tables {
		for _, blk := range tables[w] {
			if _, err = f.Write(nodesAsBytes(blk)); err != nil {
				return fmt.Errorf("spill: write payload: %w", err)
			}
		}
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("spill: sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("spill: close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("spill: rename: %w", err)
	}
	return nil
}

// UnspillLevel copies level's blocks back onto the heap, swaps them
// into the arenas, retires the file mapping (actual munmap is deferred
// to ReleaseRetired so mid-build readers holding the old block table
// stay safe), and deletes the spill file.
func (t *Tier) UnspillLevel(st *node.Store, level int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.unspillLocked(st, level)
}

// UnspillAll brings every spilled level back to the heap.
func (t *Tier) UnspillAll(st *node.Store) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for level := range t.levels {
		if err := t.unspillLocked(st, level); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tier) unspillLocked(st *node.Store, level int) error {
	rec, ok := t.levels[level]
	if !ok {
		return nil
	}
	start := time.Now()

	var src []byte
	if rec.mapping != nil {
		src = rec.mapping
	} else {
		data, err := os.ReadFile(rec.path)
		if err != nil {
			return fmt.Errorf("spill: read back level %d: %w", level, err)
		}
		src = data
	}
	if err := verifyLevelFile(src, level, rec); err != nil {
		return err
	}

	hdr := headerLen(len(rec.segs))
	off := hdr
	for w := range rec.segs {
		seg := rec.segs[w]
		nb := int(seg.nBlocks)
		var heap [][]Node
		if nb > 0 {
			heap = make([][]Node, nb)
			for b := 0; b < nb; b++ {
				blk := make([]Node, node.BlockSize)
				copy(nodesAsBytes(blk), src[off:off+blockBytes])
				heap[b] = blk
				off += blockBytes
			}
		}
		st.Arena(w, level).AdoptBlocks(heap, seg.n, seg.free, seg.nFree, false)
	}

	if rec.mapping != nil {
		t.retired = append(t.retired, rec.mapping)
	}
	os.Remove(rec.path)
	delete(t.levels, level)
	t.spilledLevelN.Add(-1)
	t.spilledBytes.Add(^(rec.payloadBytes - 1)) // subtract
	t.unspillOps.Add(1)
	t.unspillNS.Add(uint64(time.Since(start).Nanoseconds()))
	if rec.prefetched {
		t.prefetchHits.Add(1)
	}
	return nil
}

// verifyLevelFile validates the header and payload checksums of a spill
// image before its contents are adopted back onto the heap.
func verifyLevelFile(data []byte, level int, rec *spilledLevel) error {
	workers := len(rec.segs)
	hdr := headerLen(workers)
	if uint64(len(data)) < hdr+rec.payloadBytes {
		return fmt.Errorf("spill: level %d file truncated: %d < %d", level, len(data), hdr+rec.payloadBytes)
	}
	if string(data[:8]) != magic {
		return fmt.Errorf("spill: level %d bad magic", level)
	}
	crcOff := fixedHdr + workers*segSize
	if got, want := crc32.Checksum(data[:crcOff], castagnoli), binary.LittleEndian.Uint32(data[crcOff:]); got != want {
		return fmt.Errorf("spill: level %d header checksum mismatch", level)
	}
	wantPayload := binary.LittleEndian.Uint32(data[40:])
	got := crc32.Checksum(data[hdr:hdr+rec.payloadBytes], castagnoli)
	if got != wantPayload {
		return fmt.Errorf("spill: level %d payload checksum mismatch", level)
	}
	return nil
}

// Prefetch advises the OS that the given levels will be read soon, in
// the order given — the breadth-first sweep passes the next k levels in
// sweep order. On platforms without madvise this only marks the levels
// so prefetch-hit accounting still works. Unknown or resident levels
// are skipped.
func (t *Tier) Prefetch(levels []int) {
	if t.spilledLevelN.Load() == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, l := range levels {
		rec, ok := t.levels[l]
		if !ok {
			continue
		}
		if rec.mapping != nil {
			advise(rec.mapping, headerLen(len(rec.segs)), rec.payloadBytes)
		}
		rec.prefetched = true
	}
}

// Touch records a read-side touch of level. If the level was prefetched
// and is still mapped, the prefetch counted: the advice warmed pages a
// reader actually needed.
func (t *Tier) Touch(level int) {
	if t.spilledLevelN.Load() == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec, ok := t.levels[level]; ok && rec.prefetched {
		rec.prefetched = false
		t.prefetchHits.Add(1)
	}
}

// ReleaseRetired unmaps mappings retired by unspills. Callers must be
// at a quiescent boundary: no reader may still hold a block table that
// aliases a retired mapping.
func (t *Tier) ReleaseRetired() {
	t.mu.Lock()
	retired := t.retired
	t.retired = nil
	t.mu.Unlock()
	for _, m := range retired {
		munmapFile(m)
	}
}

// Close unmaps every live and retired mapping and, when removeFiles is
// set, deletes the spill directory. The owning store must never be read
// again through tables that alias tier mappings (the kernel unspills or
// discards the store first).
func (t *Tier) Close(removeFiles bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rec := range t.levels {
		if rec.mapping != nil {
			munmapFile(rec.mapping)
		}
	}
	t.levels = make(map[int]*spilledLevel)
	t.spilledLevelN.Store(0)
	t.spilledBytes.Store(0)
	for _, m := range t.retired {
		munmapFile(m)
	}
	t.retired = nil
	if removeFiles {
		return os.RemoveAll(t.dir)
	}
	return nil
}
