package spill

import (
	"os"
	"path/filepath"
	"testing"

	"bfbdd/internal/node"
)

// fillLevel allocates count nodes at (worker, level) with deterministic
// payloads and returns the refs.
func fillLevel(st *node.Store, worker, level, count int) []node.Ref {
	refs := make([]node.Ref, count)
	for i := 0; i < count; i++ {
		lo := node.MakeRef(level+1, 0, uint64(i))
		hi := node.MakeRef(level+2, 0, uint64(i*2))
		refs[i] = st.NewNode(worker, level, lo, hi)
	}
	return refs
}

func TestSpillRoundTrip(t *testing.T) {
	st := node.NewStore(2, 4)
	refs0 := fillLevel(st, 0, 1, 3*node.BlockSize/2) // spans two blocks
	refs1 := fillLevel(st, 1, 1, 10)
	want := make(map[node.Ref]node.Node)
	for _, r := range append(append([]node.Ref{}, refs0...), refs1...) {
		want[r] = *st.Node(r)
	}

	tier, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close(true)

	before := st.ResidentBytes()
	if before == 0 {
		t.Fatal("expected resident bytes before spill")
	}
	if err := tier.SpillLevel(st, 1); err != nil {
		t.Fatal(err)
	}
	if !tier.IsSpilled(1) || tier.SpilledLevelCount() != 1 {
		t.Fatalf("level 1 not recorded as spilled")
	}
	if got := st.ResidentBytes(); got != 0 {
		t.Fatalf("resident bytes after spilling the only level = %d, want 0", got)
	}
	if tier.SpilledBytes() == 0 {
		t.Fatal("spilled bytes not accounted")
	}
	if _, err := os.Stat(filepath.Join(tier.Dir(), "level-0001.spill")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	if mmapEnabled {
		// Mapped reads resolve identically through the swapped table.
		for r, n := range want {
			if got := *st.Node(r); got != n {
				t.Fatalf("mapped read of %v = %+v, want %+v", r, got, n)
			}
		}
	}

	if err := tier.UnspillLevel(st, 1); err != nil {
		t.Fatal(err)
	}
	tier.ReleaseRetired()
	if tier.IsSpilled(1) || tier.SpilledBytes() != 0 {
		t.Fatal("level still recorded after unspill")
	}
	if got := st.ResidentBytes(); got != before {
		t.Fatalf("resident bytes after unspill = %d, want %d", got, before)
	}
	for r, n := range want {
		if got := *st.Node(r); got != n {
			t.Fatalf("read after unspill of %v = %+v, want %+v", r, got, n)
		}
	}
	if _, err := os.Stat(filepath.Join(tier.Dir(), "level-0001.spill")); !os.IsNotExist(err) {
		t.Fatalf("spill file not deleted after unspill: %v", err)
	}

	// Allocation into the unspilled level works again.
	fillLevel(st, 0, 1, 5)

	s := tier.Stats()
	if s.SpillOps != 1 || s.UnspillOps != 1 {
		t.Fatalf("ops = %+v, want one spill and one unspill", s)
	}
}

func TestSpillEmptyLevelIsNoop(t *testing.T) {
	st := node.NewStore(1, 3)
	tier, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close(true)
	if err := tier.SpillLevel(st, 2); err != nil {
		t.Fatal(err)
	}
	if tier.SpilledLevelCount() != 0 {
		t.Fatal("empty level should not spill")
	}
}

func TestOpenWipesStaleFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "level-0007.spill")
	if err := os.WriteFile(stale, []byte("garbage from a previous crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	tier, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close(true)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale spill file survived Open")
	}
}

func TestMappedArenaAllocPanics(t *testing.T) {
	if !mmapEnabled {
		t.Skip("portable spill leaves no mapped arenas with blocks")
	}
	st := node.NewStore(1, 2)
	fillLevel(st, 0, 0, 4)
	tier, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close(true)
	if err := tier.SpillLevel(st, 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc into mapped arena did not panic")
		}
	}()
	st.Arena(0, 0).Alloc(node.Zero, node.One)
}

func TestPrefetchHitAccounting(t *testing.T) {
	st := node.NewStore(1, 3)
	fillLevel(st, 0, 0, 8)
	fillLevel(st, 0, 1, 8)
	tier, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close(true)
	for _, l := range []int{0, 1} {
		if err := tier.SpillLevel(st, l); err != nil {
			t.Fatal(err)
		}
	}
	tier.Prefetch([]int{0, 1, 2}) // 2 is resident: skipped
	tier.Touch(0)                 // read-side touch consumes the mark
	if err := tier.UnspillLevel(st, 1); err != nil {
		t.Fatal(err)
	}
	if got := tier.Stats().PrefetchHits; got != 2 {
		t.Fatalf("prefetch hits = %d, want 2", got)
	}
	tier.Touch(0) // mark already consumed: no double count
	if got := tier.Stats().PrefetchHits; got != 2 {
		t.Fatalf("prefetch hits after re-touch = %d, want 2", got)
	}
}
