// Package node provides the packed BDD node references and the
// per-(worker, variable) block arenas that implement the paper's
// specialized BDD-node managers.
//
// A Ref identifies a BDD node without using a Go pointer, which is what
// allows the garbage collector in internal/core to compact arenas and
// rehash unique tables exactly as the paper describes: nodes of the same
// variable are clustered in blocks, and a node's identity is
// (level, worker, index) rather than a machine address.
package node

import "fmt"

// Ref is a packed reference to a BDD node or terminal.
//
// Layout (most significant bit first):
//
//	bit 63      : always 0 for a Ref (bit 63 set marks an operator-node
//	              handle in the tagged branch words used by internal/core)
//	bits 48..62 : level (15 bits); level 0 is the top variable, i.e. the
//	              variable with the highest precedence in the ordering
//	bits 40..47 : worker that owns the node's arena (8 bits)
//	bits  0..39 : index within that worker's arena for the level (40 bits)
//
// The two terminal nodes use the reserved level TermLevel so that the
// Shannon "top variable" of two refs is simply the minimum of their levels.
type Ref uint64

const (
	levelShift  = 48
	workerShift = 40
	indexBits   = 40
	indexMask   = (1 << indexBits) - 1
	workerMask  = 0xFF
	levelMask   = 0x7FFF

	// TermLevel is the pseudo-level of the constant nodes 0 and 1. It is
	// strictly greater than every real variable level, so min-of-levels
	// picks the correct top variable during Shannon expansion.
	TermLevel = 0x7FFF

	// MaxLevels is the maximum number of distinct variable levels.
	MaxLevels = TermLevel

	// MaxWorkers is the maximum number of per-worker arena sets.
	MaxWorkers = 256
)

// Zero and One are the two terminal (constant) BDDs.
const (
	Zero Ref = Ref(TermLevel) << levelShift
	One  Ref = Ref(TermLevel)<<levelShift | 1
)

// Nil is an invalid sentinel Ref used to terminate unique-table hash
// chains. Its bit 63 is set, so it can never collide with a valid Ref.
const Nil Ref = ^Ref(0)

// MakeRef packs (level, worker, index) into a Ref.
func MakeRef(level, worker int, index uint64) Ref {
	return Ref(level)<<levelShift | Ref(worker)<<workerShift | Ref(index)
}

// Level returns the variable level of r (TermLevel for terminals).
func (r Ref) Level() int { return int(r>>levelShift) & levelMask }

// Worker returns the worker whose arena holds r.
func (r Ref) Worker() int { return int(r>>workerShift) & workerMask }

// Index returns r's index within its (worker, level) arena.
func (r Ref) Index() uint64 { return uint64(r) & indexMask }

// IsTerminal reports whether r is one of the constants Zero or One.
func (r Ref) IsTerminal() bool { return r.Level() == TermLevel }

// IsZero reports whether r is the constant-false terminal.
func (r Ref) IsZero() bool { return r == Zero }

// IsOne reports whether r is the constant-true terminal.
func (r Ref) IsOne() bool { return r == One }

// Valid reports whether r is a structurally valid reference (terminal or
// in-range node reference). It does not check that the node exists.
func (r Ref) Valid() bool { return r>>63 == 0 }

// String renders r for debugging.
func (r Ref) String() string {
	switch {
	case r == Zero:
		return "0"
	case r == One:
		return "1"
	case r == Nil:
		return "nil"
	default:
		return fmt.Sprintf("v%d/w%d/%d", r.Level(), r.Worker(), r.Index())
	}
}

// TopLevel returns the smaller (higher-precedence) of the two refs'
// levels: the variable on which Shannon expansion of a binary operation
// over f and g splits.
func TopLevel(f, g Ref) int {
	lf, lg := f.Level(), g.Level()
	if lf < lg {
		return lf
	}
	return lg
}
