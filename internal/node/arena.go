package node

import "sync/atomic"

// Node is one BDD internal vertex. Low is the 0-branch child and High the
// 1-branch child. Next chains nodes of the same unique-table bucket; the
// chain may cross worker arenas because the unique table for a variable is
// shared among all workers while node storage is per worker.
//
// The node deliberately carries no variable field: a node's variable is
// implied by the arena (and thus the Ref) that holds it, which is how the
// paper's per-variable node managers cluster same-variable nodes.
type Node struct {
	Low, High Ref
	Next      Ref
}

const (
	// BlockShift determines the arena block size (nodes per block).
	BlockShift = 12
	// BlockSize is the number of nodes allocated per block.
	BlockSize = 1 << BlockShift
	blockMask = BlockSize - 1
)

// NodeBytes is the in-memory footprint of one Node, used for the memory
// accounting that reproduces the paper's Figure 9/10.
const NodeBytes = 24

// Arena is a block-structured allocator for the nodes of one
// (worker, variable) pair. Nodes are allocated contiguously within blocks
// so that walking an arena touches memory sequentially — the paper's
// "allocating memory in terms of blocks and allocat[ing] BDD nodes
// contiguously within each block".
//
// Concurrency contract: exactly one worker (the owner) allocates; any
// worker may concurrently read nodes whose refs were published to it
// through a synchronizing channel (a unique-table lock, an operator
// node's atomic state word, or a context registration mutex). To make
// owner appends safe against concurrent reads, the block table is
// immutable and replaced copy-on-write through an atomic pointer — a
// reader holding an old table can still resolve every ref published to
// it. The remaining fields (n, free lists, marks) are touched only by the
// owner or at phase barriers.
type Arena struct {
	blocks atomic.Pointer[[][]Node]
	n      uint64

	// marks is the GC mark bitmap, one bit per node slot. It is sized by
	// PrepareMarks before a collection and accessed with atomic word
	// operations by the collector (nodes of one arena can be marked by any
	// worker whose nodes point at them).
	marks []uint64

	// free is the head of the free list (index+1, 0 = empty) used by the
	// non-compacting free-list GC policy. Freed slots chain through the
	// Next field, reinterpreted as an index+1 value.
	free uint64

	// nFree counts slots currently on the free list.
	nFree uint64

	// mapped is set while the arena's blocks alias a read-only file
	// mapping installed by the spill tier. A mapped arena serves reads
	// (At/Low/High traversal) exactly like a heap arena, but allocation
	// and free-list writes are forbidden until the tier swaps heap blocks
	// back in. Read by any goroutine (resident-byte accounting, alloc
	// guards), written only under the tier's spill serialization.
	mapped atomic.Bool
}

// Len returns the number of slots ever allocated (including freed slots
// when the free-list policy is in use).
func (a *Arena) Len() uint64 { return a.n }

// Live returns the number of allocated, non-freed slots.
func (a *Arena) Live() uint64 { return a.n - a.nFree }

// loadBlocks returns the current immutable block table (may be nil).
func (a *Arena) loadBlocks() [][]Node {
	if p := a.blocks.Load(); p != nil {
		return *p
	}
	return nil
}

// Bytes returns the memory footprint of the arena's node storage,
// whether the blocks are heap-resident or a spill-file mapping.
func (a *Arena) Bytes() uint64 {
	return uint64(len(a.loadBlocks())) * BlockSize * NodeBytes
}

// Mapped reports whether the arena's blocks currently alias a read-only
// spill-file mapping rather than heap memory.
func (a *Arena) Mapped() bool { return a.mapped.Load() }

// ResidentBytes returns the heap footprint of the arena's node storage:
// zero while the blocks alias a spill mapping (those bytes are the OS
// page cache's to keep or drop), Bytes() otherwise.
func (a *Arena) ResidentBytes() uint64 {
	if a.mapped.Load() {
		return 0
	}
	return a.Bytes()
}

// ExportBlocks hands the spill tier the arena's current block table and
// allocator state. The returned slice is the live table — callers must
// treat it as read-only. Only valid at a quiescent boundary (no build in
// flight) under the tier's serialization.
func (a *Arena) ExportBlocks() (blocks [][]Node, n, free, nFree uint64) {
	return a.loadBlocks(), a.n, a.free, a.nFree
}

// AdoptBlocks installs a replacement block table — either a read-only
// spill mapping (mapped=true) or heap blocks copied back from a spill
// file (mapped=false) — while preserving the allocator state captured by
// ExportBlocks. The table is swapped atomically, so concurrent readers
// that loaded the old table keep resolving refs through it; both tables
// hold identical node payloads, which is what makes the swap safe
// mid-traversal. Marks are dropped: GC always re-prepares them, and a
// mapped arena must never be collected anyway.
func (a *Arena) AdoptBlocks(blocks [][]Node, n, free, nFree uint64, mapped bool) {
	if len(blocks) == 0 {
		a.blocks.Store(nil)
	} else {
		a.blocks.Store(&blocks)
	}
	a.n = n
	a.free = free
	a.nFree = nFree
	a.marks = nil
	a.mapped.Store(mapped)
}

// At returns the node at index i. It panics (via slice bounds) if i was
// never allocated.
func (a *Arena) At(i uint64) *Node {
	return &a.loadBlocks()[i>>BlockShift][i&blockMask]
}

// Alloc allocates a new node slot initialized to (low, high, Nil) and
// returns its index. If the free-list has entries they are reused first.
// Only the owning worker may call Alloc.
func (a *Arena) Alloc(low, high Ref) uint64 {
	if a.mapped.Load() {
		panic("node: allocation into mapped (spilled) arena")
	}
	if a.free != 0 {
		i := a.free - 1
		nd := a.At(i)
		a.free = uint64(nd.Next)
		a.nFree--
		nd.Low, nd.High, nd.Next = low, high, Nil
		return i
	}
	i := a.n
	bs := a.loadBlocks()
	if i>>BlockShift == uint64(len(bs)) {
		// Copy-on-write: concurrent readers keep resolving old indices
		// through the table they already loaded.
		nb := make([][]Node, len(bs)+1)
		copy(nb, bs)
		nb[len(bs)] = make([]Node, BlockSize)
		a.blocks.Store(&nb)
		bs = nb
	}
	a.n++
	nd := &bs[i>>BlockShift][i&blockMask]
	nd.Low, nd.High, nd.Next = low, high, Nil
	return i
}

// Free pushes slot i onto the free list (free-list GC policy only). The
// slot's fields are overwritten; callers must have already unlinked the
// node from its unique table.
func (a *Arena) Free(i uint64) {
	if a.mapped.Load() {
		panic("node: free into mapped (spilled) arena")
	}
	nd := a.At(i)
	nd.Low, nd.High = Nil, Nil
	nd.Next = Ref(a.free)
	a.free = i + 1
	a.nFree++
}

// Reset drops all nodes but keeps the allocated blocks for reuse.
func (a *Arena) Reset() {
	a.n = 0
	a.free = 0
	a.nFree = 0
}

// ReleaseBlocks drops node storage entirely, returning memory to the Go
// runtime. Used after compaction replaces an arena.
func (a *Arena) ReleaseBlocks() {
	a.blocks.Store(nil)
	a.n = 0
	a.free = 0
	a.nFree = 0
	a.marks = nil
	a.mapped.Store(false)
}

// ReplaceWith moves b's storage into a (and resets b), used by the
// compacting collector to swap in a freshly built arena. Arenas contain
// an atomic field and must not be copied by value.
func (a *Arena) ReplaceWith(b *Arena) {
	a.blocks.Store(b.blocks.Load())
	a.n = b.n
	a.free = b.free
	a.nFree = b.nFree
	a.marks = b.marks
	a.mapped.Store(b.mapped.Load())
	b.ReleaseBlocks()
}

// PrepareMarks (re)sizes and clears the mark bitmap for a collection.
func (a *Arena) PrepareMarks() {
	words := int((a.n + 63) / 64)
	if cap(a.marks) < words {
		a.marks = make([]uint64, words)
		return
	}
	a.marks = a.marks[:words]
	for i := range a.marks {
		a.marks[i] = 0
	}
}

// Marked reports whether slot i is marked. Safe for concurrent use with
// MarkAtomic on distinct or equal slots.
func (a *Arena) Marked(i uint64) bool {
	return a.marks[i>>6]&(1<<(i&63)) != 0
}

// MarkWord exposes the mark bitmap word containing slot i and the bit
// within it, for the collector's atomic mark operation.
func (a *Arena) MarkWord(i uint64) (word *uint64, bit uint64) {
	return &a.marks[i>>6], 1 << (i & 63)
}
