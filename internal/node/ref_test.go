package node

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRefPackUnpack(t *testing.T) {
	cases := []struct {
		level, worker int
		index         uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 0},
		{100, 7, 123456},
		{TermLevel - 1, MaxWorkers - 1, indexMask},
	}
	for _, c := range cases {
		r := MakeRef(c.level, c.worker, c.index)
		if r.Level() != c.level {
			t.Errorf("MakeRef(%d,%d,%d).Level() = %d", c.level, c.worker, c.index, r.Level())
		}
		if r.Worker() != c.worker {
			t.Errorf("MakeRef(%d,%d,%d).Worker() = %d", c.level, c.worker, c.index, r.Worker())
		}
		if r.Index() != c.index {
			t.Errorf("MakeRef(%d,%d,%d).Index() = %d", c.level, c.worker, c.index, r.Index())
		}
		if !r.Valid() {
			t.Errorf("MakeRef(%d,%d,%d) not Valid", c.level, c.worker, c.index)
		}
		if r.IsTerminal() {
			t.Errorf("MakeRef(%d,%d,%d) claims terminal", c.level, c.worker, c.index)
		}
	}
}

func TestRefPackUnpackQuick(t *testing.T) {
	f := func(level uint16, worker uint8, index uint64) bool {
		l := int(level) % (TermLevel - 1)
		idx := index & indexMask
		r := MakeRef(l, int(worker), idx)
		return r.Level() == l && r.Worker() == int(worker) && r.Index() == idx && r.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTerminals(t *testing.T) {
	if !Zero.IsTerminal() || !Zero.IsZero() || Zero.IsOne() {
		t.Errorf("Zero misclassified: %v", Zero)
	}
	if !One.IsTerminal() || !One.IsOne() || One.IsZero() {
		t.Errorf("One misclassified: %v", One)
	}
	if Zero == One {
		t.Error("Zero == One")
	}
	if Zero.Level() != TermLevel || One.Level() != TermLevel {
		t.Errorf("terminal levels: %d, %d", Zero.Level(), One.Level())
	}
	if !Zero.Valid() || !One.Valid() {
		t.Error("terminals must be Valid")
	}
	if Nil.Valid() {
		t.Error("Nil must not be Valid")
	}
}

func TestTopLevel(t *testing.T) {
	a := MakeRef(3, 0, 0)
	b := MakeRef(7, 0, 0)
	if got := TopLevel(a, b); got != 3 {
		t.Errorf("TopLevel(3,7) = %d", got)
	}
	if got := TopLevel(b, a); got != 3 {
		t.Errorf("TopLevel(7,3) = %d", got)
	}
	if got := TopLevel(a, Zero); got != 3 {
		t.Errorf("TopLevel(3,terminal) = %d", got)
	}
	if got := TopLevel(Zero, One); got != TermLevel {
		t.Errorf("TopLevel(terminals) = %d", got)
	}
}

func TestRefString(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || Nil.String() != "nil" {
		t.Errorf("terminal strings: %q %q %q", Zero.String(), One.String(), Nil.String())
	}
	r := MakeRef(2, 1, 42)
	if r.String() != "v2/w1/42" {
		t.Errorf("ref string: %q", r.String())
	}
}

func TestArenaAllocAt(t *testing.T) {
	var a Arena
	const n = 3*BlockSize + 17
	for i := uint64(0); i < n; i++ {
		idx := a.Alloc(Zero, One)
		if idx != i {
			t.Fatalf("Alloc #%d returned index %d", i, idx)
		}
	}
	if a.Len() != n || a.Live() != n {
		t.Fatalf("Len=%d Live=%d want %d", a.Len(), a.Live(), n)
	}
	for i := uint64(0); i < n; i++ {
		nd := a.At(i)
		if nd.Low != Zero || nd.High != One || nd.Next != Nil {
			t.Fatalf("node %d = %+v", i, *nd)
		}
	}
	wantBlocks := uint64(4) // ceil((3*BlockSize+17)/BlockSize)
	if a.Bytes() != wantBlocks*BlockSize*NodeBytes {
		t.Fatalf("Bytes = %d", a.Bytes())
	}
}

func TestArenaFreeListReuse(t *testing.T) {
	var a Arena
	for i := 0; i < 10; i++ {
		a.Alloc(Zero, One)
	}
	a.Free(3)
	a.Free(7)
	if a.Live() != 8 {
		t.Fatalf("Live = %d after 2 frees", a.Live())
	}
	// LIFO reuse: last freed first.
	if idx := a.Alloc(One, Zero); idx != 7 {
		t.Fatalf("reuse alloc got %d want 7", idx)
	}
	if idx := a.Alloc(One, Zero); idx != 3 {
		t.Fatalf("reuse alloc got %d want 3", idx)
	}
	if idx := a.Alloc(One, Zero); idx != 10 {
		t.Fatalf("fresh alloc got %d want 10", idx)
	}
	if a.Live() != 11 || a.Len() != 11 {
		t.Fatalf("Live=%d Len=%d", a.Live(), a.Len())
	}
	nd := a.At(7)
	if nd.Low != One || nd.High != Zero || nd.Next != Nil {
		t.Fatalf("reused node = %+v", *nd)
	}
}

func TestArenaReset(t *testing.T) {
	var a Arena
	for i := 0; i < 100; i++ {
		a.Alloc(Zero, One)
	}
	a.Free(5)
	a.Reset()
	if a.Len() != 0 || a.Live() != 0 {
		t.Fatalf("after Reset: Len=%d Live=%d", a.Len(), a.Live())
	}
	if a.Bytes() == 0 {
		t.Fatal("Reset should retain blocks")
	}
	if idx := a.Alloc(Zero, One); idx != 0 {
		t.Fatalf("post-reset alloc = %d", idx)
	}
	a.ReleaseBlocks()
	if a.Bytes() != 0 {
		t.Fatal("ReleaseBlocks should drop storage")
	}
}

func TestArenaMarks(t *testing.T) {
	var a Arena
	const n = 200
	for i := 0; i < n; i++ {
		a.Alloc(Zero, One)
	}
	a.PrepareMarks()
	for i := uint64(0); i < n; i++ {
		if a.Marked(i) {
			t.Fatalf("slot %d marked before any mark", i)
		}
	}
	rng := rand.New(rand.NewSource(1))
	want := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		slot := uint64(rng.Intn(n))
		want[slot] = true
		word, bit := a.MarkWord(slot)
		*word |= bit
	}
	for i := uint64(0); i < n; i++ {
		if a.Marked(i) != want[i] {
			t.Fatalf("slot %d marked=%v want %v", i, a.Marked(i), want[i])
		}
	}
	// PrepareMarks must clear previous marks.
	a.PrepareMarks()
	for i := uint64(0); i < n; i++ {
		if a.Marked(i) {
			t.Fatalf("slot %d still marked after PrepareMarks", i)
		}
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore(2, 4)
	if s.Workers() != 2 || s.Levels() != 4 {
		t.Fatalf("dims: %d,%d", s.Workers(), s.Levels())
	}
	r := s.NewNode(1, 2, Zero, One)
	if r.Worker() != 1 || r.Level() != 2 || r.Index() != 0 {
		t.Fatalf("NewNode ref = %v", r)
	}
	nd := s.Node(r)
	if nd.Low != Zero || nd.High != One {
		t.Fatalf("node = %+v", *nd)
	}
	if s.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	if s.NodesAtLevel(2) != 1 || s.NodesAtLevel(0) != 0 {
		t.Fatalf("NodesAtLevel: %d, %d", s.NodesAtLevel(2), s.NodesAtLevel(0))
	}
	if s.Bytes() == 0 {
		t.Fatal("Bytes = 0 after allocation")
	}
}

func TestStoreCofactors(t *testing.T) {
	s := NewStore(1, 4)
	r := s.NewNode(0, 1, Zero, One) // node at level 1
	if got := s.Low(r, 1); got != Zero {
		t.Errorf("Low at own level = %v", got)
	}
	if got := s.High(r, 1); got != One {
		t.Errorf("High at own level = %v", got)
	}
	// Cofactor w.r.t. a higher-precedence variable leaves r unchanged.
	if got := s.Low(r, 0); got != r {
		t.Errorf("Low at level 0 = %v", got)
	}
	if got := s.High(r, 0); got != r {
		t.Errorf("High at level 0 = %v", got)
	}
	// Terminals are fixed points of cofactoring.
	if got := s.Low(One, 0); got != One {
		t.Errorf("Low(One) = %v", got)
	}
}

func TestStorePanicsOnBadDims(t *testing.T) {
	for _, c := range []struct{ w, l int }{{0, 1}, {MaxWorkers + 1, 1}, {1, MaxLevels}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStore(%d,%d) did not panic", c.w, c.l)
				}
			}()
			NewStore(c.w, c.l)
		}()
	}
}
