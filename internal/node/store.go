package node

import (
	"fmt"
	"sync/atomic"
)

// Store owns all BDD node storage for one manager: a matrix of arenas
// indexed by (worker, level). Worker 0 exists even in sequential mode; the
// parallel engine gives each of its P workers its own arena row so that
// node creation during the reduction phase allocates from worker-local
// memory (the paper's per-process BDD-node managers).
//
// The store also keeps a per-worker approximate live-node counter so that
// budget enforcement can poll total usage in O(workers) instead of walking
// the full worker×level arena matrix. Allocation sites bump the counter of
// the allocating worker (own-cacheline slot, no contention); SyncLive
// recomputes the exact figure from the arenas at collection boundaries.
type Store struct {
	workers int
	levels  int
	arenas  [][]Arena // [worker][level]
	live    []liveCounter
}

// liveCounter is padded to its own cache line so per-worker allocation
// bursts do not false-share.
type liveCounter struct {
	n atomic.Uint64
	_ [7]uint64
}

// NewStore creates a store for the given worker count and variable count.
func NewStore(workers, levels int) *Store {
	if workers < 1 || workers > MaxWorkers {
		panic(fmt.Sprintf("node: worker count %d out of range [1,%d]", workers, MaxWorkers))
	}
	if levels < 0 || levels >= MaxLevels {
		panic(fmt.Sprintf("node: level count %d out of range [0,%d)", levels, MaxLevels))
	}
	s := &Store{workers: workers, levels: levels}
	s.arenas = make([][]Arena, workers)
	for w := range s.arenas {
		s.arenas[w] = make([]Arena, levels)
	}
	s.live = make([]liveCounter, workers)
	return s
}

// NoteAlloc records one node allocation by worker in the approximate
// live counter. Call sites that allocate through an Arena directly (the
// unique tables, NewNode) must pair every Alloc with a NoteAlloc.
func (s *Store) NoteAlloc(worker int) { s.live[worker].n.Add(1) }

// ApproxLive returns the approximate live node count maintained by
// NoteAlloc/SyncLive. It can drift above the true figure between
// collections (freed nodes are only reconciled by SyncLive), which is
// the safe direction for budget enforcement.
func (s *Store) ApproxLive() uint64 {
	var total uint64
	for w := range s.live {
		total += s.live[w].n.Load()
	}
	return total
}

// SyncLive recomputes the per-worker live counters exactly from the
// arenas. Callers must be quiescent with respect to allocation (it runs
// at GC and top-level-operation boundaries).
func (s *Store) SyncLive() {
	for w := range s.arenas {
		var n uint64
		for l := range s.arenas[w] {
			n += s.arenas[w][l].Live()
		}
		s.live[w].n.Store(n)
	}
}

// Workers returns the number of worker arena rows.
func (s *Store) Workers() int { return s.workers }

// Levels returns the number of variable levels.
func (s *Store) Levels() int { return s.levels }

// Arena returns the arena for (worker, level).
func (s *Store) Arena(worker, level int) *Arena { return &s.arenas[worker][level] }

// Node resolves a non-terminal Ref to its node. The caller must ensure r
// is a valid non-terminal reference.
func (s *Store) Node(r Ref) *Node {
	return s.arenas[r.Worker()][r.Level()].At(r.Index())
}

// Low returns the 0-branch cofactor of r with respect to level: r's low
// child if r's root is at level, else r itself (the variable does not
// appear in r, so both cofactors are r).
func (s *Store) Low(r Ref, level int) Ref {
	if r.Level() == level {
		return s.Node(r).Low
	}
	return r
}

// High returns the 1-branch cofactor of r with respect to level.
func (s *Store) High(r Ref, level int) Ref {
	if r.Level() == level {
		return s.Node(r).High
	}
	return r
}

// NewNode allocates a node at (worker, level) and returns its Ref. It does
// not consult any unique table; that is the caller's responsibility.
func (s *Store) NewNode(worker, level int, low, high Ref) Ref {
	idx := s.arenas[worker][level].Alloc(low, high)
	s.NoteAlloc(worker)
	return MakeRef(level, worker, idx)
}

// Bytes returns the total node-storage footprint across all arenas.
func (s *Store) Bytes() uint64 {
	var total uint64
	for w := range s.arenas {
		for l := range s.arenas[w] {
			total += s.arenas[w][l].Bytes()
		}
	}
	return total
}

// ResidentBytes returns the heap node-storage footprint across all
// arenas, excluding levels whose blocks currently alias a read-only
// spill mapping.
func (s *Store) ResidentBytes() uint64 {
	var total uint64
	for w := range s.arenas {
		for l := range s.arenas[w] {
			total += s.arenas[w][l].ResidentBytes()
		}
	}
	return total
}

// LevelBytes returns the node-storage footprint of one variable level
// summed across workers, and whether any of its arenas are mapped to a
// spill file. All workers' arenas at a level spill together, so mapped
// is uniform across the level in practice.
func (s *Store) LevelBytes(level int) (bytes uint64, mapped bool) {
	for w := 0; w < s.workers; w++ {
		bytes += s.arenas[w][level].Bytes()
		mapped = mapped || s.arenas[w][level].Mapped()
	}
	return bytes, mapped
}

// NumNodes returns the total count of live nodes across all arenas.
func (s *Store) NumNodes() uint64 {
	var total uint64
	for w := range s.arenas {
		for l := range s.arenas[w] {
			total += s.arenas[w][l].Live()
		}
	}
	return total
}

// NodesAtLevel returns the live node count for one variable level summed
// across workers.
func (s *Store) NodesAtLevel(level int) uint64 {
	var total uint64
	for w := 0; w < s.workers; w++ {
		total += s.arenas[w][level].Live()
	}
	return total
}
