package retry

import (
	"errors"
	"testing"
	"time"
)

func TestDoSucceedsAfterFailures(t *testing.T) {
	calls := 0
	err := Do(nil, Policy{Base: time.Microsecond, Cap: time.Millisecond, Attempts: 5}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("always fails")
	calls := 0
	err := Do(nil, Policy{Base: time.Microsecond, Cap: time.Millisecond, Attempts: 4}, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	sentinel := errors.New("bad request")
	calls := 0
	err := Do(nil, Policy{Base: time.Hour, Cap: time.Hour, Attempts: 10}, func() error {
		calls++
		return Permanent(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retries after Permanent)", calls)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
}

func TestDoStopAbortsSleep(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	sentinel := errors.New("transient")
	calls := 0
	// The first sleep would be ~an hour; the closed stop channel must
	// abort it immediately.
	done := make(chan error, 1)
	go func() {
		done <- Do(stop, Policy{Base: time.Hour, Cap: time.Hour, Attempts: 3}, func() error {
			calls++
			return sentinel
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) || !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want ErrStopped joined with %v", err, sentinel)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not honor stop channel")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestDoUnlimitedAttempts(t *testing.T) {
	calls := 0
	err := Do(nil, Policy{Base: time.Microsecond, Cap: time.Microsecond}, func() error {
		calls++
		if calls < 20 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 20 {
		t.Fatalf("err=%v calls=%d, want nil/20", err, calls)
	}
}

func TestJitterBounds(t *testing.T) {
	for i := 0; i < 100; i++ {
		d := Jitter(100 * time.Millisecond)
		if d < 50*time.Millisecond || d >= 200*time.Millisecond {
			t.Fatalf("Jitter out of [d/2, 3d/2): %v", d)
		}
	}
	if Jitter(0) != 0 {
		t.Fatal("Jitter(0) must be 0")
	}
}
