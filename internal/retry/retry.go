// Package retry implements capped exponential backoff with full
// jitter, the retry discipline shared by the checkpointer and the
// replication follower's reconnect loop.
//
// The jitter follows the "equal jitter" variant: each sleep is half
// the current deterministic delay plus a uniformly random amount up to
// the full delay, so concurrent retriers decorrelate without ever
// sleeping less than half the intended backoff. The delay doubles
// after every attempt until it reaches the cap.
package retry

import (
	"errors"
	"math/rand/v2"
	"time"
)

// Policy describes a backoff schedule. The zero value is not useful;
// construct one explicitly or take a package-level default.
type Policy struct {
	// Base is the first delay. Subsequent delays double until Cap.
	Base time.Duration
	// Cap bounds the deterministic component of the delay.
	Cap time.Duration
	// Attempts is the maximum number of calls to the function. Zero
	// or negative means retry forever (until stop fires or the
	// function succeeds or returns a permanent error).
	Attempts int
}

// permanent wraps an error that must not be retried.
type permanent struct{ err error }

func (p permanent) Error() string { return p.err.Error() }
func (p permanent) Unwrap() error { return p.err }

// Permanent marks err as non-retryable: Do returns the underlying
// error immediately instead of sleeping and retrying. A nil err is
// returned as nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanent{err}
}

// ErrStopped is returned by Do when the stop channel fires before the
// function succeeds.
var ErrStopped = errors.New("retry: stopped")

// Do calls fn until it returns nil or a Permanent-wrapped error, the
// attempt budget is exhausted, or stop fires mid-sleep. It returns
// the last error from fn (unwrapped if permanent), except that a stop
// during the backoff sleep returns ErrStopped joined with the last
// error so callers can distinguish shutdown from exhaustion.
func Do(stop <-chan struct{}, p Policy, fn func() error) error {
	delay := p.Base
	if delay <= 0 {
		delay = time.Millisecond
	}
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		var perm permanent
		if errors.As(err, &perm) {
			return perm.err
		}
		if p.Attempts > 0 && attempt >= p.Attempts {
			return err
		}
		select {
		case <-stop:
			return errors.Join(ErrStopped, err)
		case <-time.After(Jitter(delay)):
		}
		if delay *= 2; p.Cap > 0 && delay > p.Cap {
			delay = p.Cap
		}
	}
}

// Jitter returns the randomized sleep for a deterministic delay:
// delay/2 plus a uniform draw in [0, delay).
func Jitter(delay time.Duration) time.Duration {
	if delay <= 0 {
		return 0
	}
	return delay/2 + rand.N(delay)
}
