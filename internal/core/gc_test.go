package core

import (
	"math/rand"
	"testing"

	"bfbdd/internal/node"
)

// buildParityChain builds xor-chains and returns pins for a kept subset,
// leaving plenty of dead intermediate nodes behind.
func buildParityChain(k *Kernel, n int) []*Pin {
	var pins []*Pin
	f := node.Zero
	for v := 0; v < n; v++ {
		f = k.Apply(OpXor, f, k.VarRef(v))
		if v%4 == 3 {
			pins = append(pins, k.Pin(f))
		}
	}
	return pins
}

func gcEngines() []Options {
	return []Options{
		{Levels: 24, Engine: EnginePBF, EvalThreshold: 16, GroupSize: 4, GC: GCCompact},
		{Levels: 24, Engine: EnginePBF, EvalThreshold: 16, GroupSize: 4, GC: GCFreeList},
		{Levels: 24, Engine: EnginePar, Workers: 3, EvalThreshold: 16, GroupSize: 4, Stealing: true, GC: GCCompact},
		{Levels: 24, Engine: EnginePar, Workers: 3, EvalThreshold: 16, GroupSize: 4, Stealing: true, GC: GCFreeList},
		{Levels: 24, Engine: EngineDF, GC: GCCompact},
	}
}

func TestGCPreservesSemantics(t *testing.T) {
	for _, opts := range gcEngines() {
		opts := opts
		t.Run(optName(opts)+"-"+opts.GC.String(), func(t *testing.T) {
			k := NewKernel(opts)
			pins := buildParityChain(k, 24)

			// Record semantics before collection.
			rng := rand.New(rand.NewSource(5))
			type sample struct {
				assign []bool
				want   []bool
			}
			var samples []sample
			for s := 0; s < 32; s++ {
				a := make([]bool, 24)
				for i := range a {
					a[i] = rng.Intn(2) == 1
				}
				want := make([]bool, len(pins))
				for i, p := range pins {
					want[i] = k.Eval(p.Ref(), a)
				}
				samples = append(samples, sample{a, want})
			}

			before := k.NumNodes()
			k.GC()
			after := k.NumNodes()
			if after > before {
				t.Fatalf("GC grew the heap: %d -> %d", before, after)
			}
			if after == 0 {
				t.Fatal("GC collected pinned nodes")
			}

			roots := make([]node.Ref, len(pins))
			for i, p := range pins {
				roots[i] = p.Ref()
			}
			checkInvariants(t, k, roots)
			for _, s := range samples {
				for i, p := range pins {
					if got := k.Eval(p.Ref(), s.assign); got != s.want[i] {
						t.Fatalf("pin %d changed semantics after GC", i)
					}
				}
			}

			// The kernel must remain fully usable: new operations must
			// agree with pre-GC structures.
			x := k.Apply(OpXor, pins[0].Ref(), pins[0].Ref())
			if x != node.Zero {
				t.Fatalf("f XOR f = %v after GC", x)
			}
			recon := node.Zero
			for v := 0; v < 8; v++ {
				recon = k.Apply(OpXor, recon, k.VarRef(v))
			}
			if recon != pins[1].Ref() {
				t.Fatalf("rebuilt prefix %v != pinned %v (canonicity lost after GC)", recon, pins[1].Ref())
			}
		})
	}
}

func TestGCCollectsGarbage(t *testing.T) {
	for _, policy := range []GCPolicy{GCCompact, GCFreeList} {
		t.Run(policy.String(), func(t *testing.T) {
			k := NewKernel(Options{Levels: 16, Engine: EnginePBF, GC: policy})
			// Build a moderately large dead structure.
			f := node.One
			for v := 0; v < 16; v++ {
				g := k.Apply(OpOr, k.VarRef(v), k.VarRef((v+3)%16))
				f = k.Apply(OpAnd, f, g)
			}
			keep := k.Pin(k.VarRef(0))
			before := k.NumNodes()
			k.GC()
			after := k.NumNodes()
			if after >= before {
				t.Fatalf("nothing collected: %d -> %d", before, after)
			}
			if after != 1 {
				t.Fatalf("live nodes after GC = %d want 1 (just the pinned var)", after)
			}
			if !keep.Ref().Valid() || keep.Ref().IsTerminal() {
				t.Fatalf("pin damaged: %v", keep.Ref())
			}
			nd := k.Store().Node(keep.Ref())
			if nd.Low != node.Zero || nd.High != node.One {
				t.Fatalf("pinned var node corrupted: %+v", *nd)
			}
		})
	}
}

func TestGCUnpinnedCollected(t *testing.T) {
	k := NewKernel(Options{Levels: 8, Engine: EnginePBF})
	f := node.One
	for v := 0; v < 8; v++ {
		f = k.Apply(OpAnd, f, k.VarRef(v))
	}
	p := k.Pin(f)
	k.GC()
	if k.NumNodes() != 8 {
		t.Fatalf("pinned conjunction: %d nodes want 8", k.NumNodes())
	}
	k.Unpin(p)
	k.GC()
	if k.NumNodes() != 0 {
		t.Fatalf("after unpin: %d nodes want 0", k.NumNodes())
	}
}

func TestGCRepeatedStability(t *testing.T) {
	// Collections must be idempotent when nothing dies in between.
	k := NewKernel(Options{Levels: 12, Engine: EnginePar, Workers: 2, EvalThreshold: 32, Stealing: true})
	pins := buildParityChain(k, 12)
	k.GC()
	live := k.NumNodes()
	for i := 0; i < 3; i++ {
		k.GC()
		if k.NumNodes() != live {
			t.Fatalf("GC #%d changed live count: %d -> %d", i+2, live, k.NumNodes())
		}
	}
	roots := make([]node.Ref, len(pins))
	for i, p := range pins {
		roots[i] = p.Ref()
	}
	checkInvariants(t, k, roots)
}

func TestGCFreeListReusesSlots(t *testing.T) {
	k := NewKernel(Options{Levels: 8, Engine: EnginePBF, GC: GCFreeList})
	f := node.One
	for v := 0; v < 8; v++ {
		f = k.Apply(OpAnd, f, k.VarRef(v))
	}
	bytesBefore := k.Store().Bytes()
	k.GC() // everything dead
	if k.NumNodes() != 0 {
		t.Fatalf("live = %d", k.NumNodes())
	}
	// Free-list policy keeps the blocks...
	if k.Store().Bytes() != bytesBefore {
		t.Fatalf("free-list GC changed block storage: %d -> %d", bytesBefore, k.Store().Bytes())
	}
	// ...and rebuilding reuses freed slots without growing storage.
	g := node.One
	for v := 0; v < 8; v++ {
		g = k.Apply(OpAnd, g, k.VarRef(v))
	}
	if k.Store().Bytes() != bytesBefore {
		t.Fatalf("rebuild grew storage: %d -> %d", bytesBefore, k.Store().Bytes())
	}
	if k.Size(g) != 8 {
		t.Fatalf("rebuilt size = %d", k.Size(g))
	}
}

func TestGCCompactReleasesStorage(t *testing.T) {
	k := NewKernel(Options{Levels: 16, Engine: EnginePBF, GC: GCCompact})
	f := node.One
	for v := 0; v < 16; v++ {
		g := k.Apply(OpXor, k.VarRef(v), k.VarRef((v+1)%16))
		f = k.Apply(OpAnd, f, g)
	}
	bytesBefore := k.Store().Bytes()
	k.GC() // all dead
	if k.Store().Bytes() >= bytesBefore {
		t.Fatalf("compacting GC kept storage: %d -> %d", bytesBefore, k.Store().Bytes())
	}
}

func TestAutoGCTriggers(t *testing.T) {
	k := NewKernel(Options{
		Levels: 20, Engine: EnginePBF,
		GCMinNodes: 64, GCGrowth: 1.2,
	})
	// Repeatedly build and drop parity functions; auto-GC must keep the
	// heap bounded.
	for round := 0; round < 10; round++ {
		f := node.Zero
		for v := 0; v < 20; v++ {
			f = k.Apply(OpXor, f, k.VarRef(v))
		}
	}
	if k.Memory().GCCount == 0 {
		t.Fatal("automatic GC never triggered")
	}
	if n := k.NumNodes(); n > 10000 {
		t.Fatalf("heap unbounded despite auto-GC: %d nodes", n)
	}
}

func TestInhibitGC(t *testing.T) {
	k := NewKernel(Options{
		Levels: 8, Engine: EnginePBF,
		GCMinNodes: 1, GCGrowth: 1.01,
	})
	k.InhibitGC()
	for v := 0; v < 8; v++ {
		k.Apply(OpAnd, k.VarRef(v), k.VarRef((v+1)%8))
	}
	if k.Memory().GCCount != 0 {
		t.Fatal("GC ran while inhibited")
	}
	k.ReleaseGC()
	k.Apply(OpOr, k.VarRef(0), k.VarRef(1))
	if k.Memory().GCCount == 0 {
		t.Fatal("GC did not resume after release")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced ReleaseGC did not panic")
		}
	}()
	k.ReleaseGC()
}

func TestGCWithOracleAfterwards(t *testing.T) {
	// Full semantic check on a kernel that garbage-collected between
	// operations (compaction exercising remapped refs in later applies).
	opts := Options{
		Levels: 6, Engine: EnginePar, Workers: 2,
		EvalThreshold: 8, GroupSize: 4, Stealing: true,
		GCMinNodes: 16, GCGrowth: 1.1,
	}
	k := NewKernel(opts)
	o := newTruthOracle(k, 6, 11)
	// Pin every stored ref so the oracle's refs survive collections; the
	// oracle reads o.refs, so refresh them from the pins after each step.
	var pins []*Pin
	for _, r := range o.refs {
		pins = append(pins, k.Pin(r))
	}
	for i := 0; i < 120; i++ {
		o.step()
		pins = append(pins, k.Pin(o.refs[len(o.refs)-1]))
		for j, p := range pins {
			o.refs[j] = p.Ref()
		}
	}
	if k.Memory().GCCount == 0 {
		t.Fatal("test intended to exercise mid-sequence GC but none ran")
	}
	o.verify(t)
	checkInvariants(t, k, o.refs)
}
