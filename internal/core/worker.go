package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bfbdd/internal/cache"
	"bfbdd/internal/faultinject"
	"bfbdd/internal/node"
	"bfbdd/internal/stats"
	"bfbdd/internal/trace"
)

// evalContext is a pushed evaluation context: the paper's unit of both
// memory control (§3.1) and load distribution (§3.3). It holds the groups
// of not-yet-expanded operator nodes that remained when the evaluation
// threshold was reached. The owner drains groups from the back (newest);
// thieves steal from the front (oldest), maximizing the stolen subtree.
//
// Group membership alone does not confer ownership: every operator node is
// individually claimed with a CAS (opQueued → opClaimed), because an
// operator node sitting in a group can also be claimed by its creator
// through a compute-cache hit.
type evalContext struct {
	groups [][]opRef
}

// ownerCtx pairs a pushed evalContext with the reduce queues that were
// accumulated before the push; only the pushing worker touches the reduce
// queues (when the context is popped).
type ownerCtx struct {
	ec     *evalContext
	reduce [][]opRef
}

// worker is one construction process: it owns per-variable operator-node
// arenas (which double as operator and reduce queues), a private compute
// cache, a row of BDD-node arenas in the shared store, and a stack of
// stealable evaluation contexts.
type worker struct {
	id int
	k  *Kernel

	cache *cache.Cache
	ops   []opArena // per level

	pending      [][]opRef // per level: claimed ops awaiting expansion
	pendingTotal int
	curReduce    [][]opRef // per level: expanded ops awaiting reduction

	nOps          int // Shannon steps since the last context push
	checkCounter  int // countdown to the next steal-request poll
	cancelCounter int // countdown to the next interrupt-probe poll

	ctxMu sync.Mutex
	ctxs  []*evalContext // registered stealable contexts, oldest first

	// opAllocBytes mirrors the operator-arena footprint of the build in
	// flight for the cheap mid-build budget poll; exact accounting stays
	// in opBytes. Atomic because peers read it from checkBudget.
	opAllocBytes atomic.Uint64

	st  stats.Worker
	rng uint64
}

func newWorker(k *Kernel, id int) *worker {
	L := k.opts.Levels
	w := &worker{
		id:        id,
		k:         k,
		cache:     cache.New(L, k.opts.CacheBits),
		ops:       make([]opArena, L),
		pending:   make([][]opRef, L),
		curReduce: make([][]opRef, L),
		rng:       uint64(id)*0x9E3779B97F4A7C15 + 0x853C49E6748FEA9B,
	}
	return w
}

func (w *worker) opBytes() uint64 {
	var total uint64
	for i := range w.ops {
		total += w.ops[i].bytes()
	}
	return total
}

func (w *worker) resetOps() {
	for i := range w.ops {
		w.ops[i].reset()
	}
	w.opAllocBytes.Store(0)
}

// opAt resolves an operator-node handle, which may belong to any worker.
func (w *worker) opAt(h opRef) *opNode {
	return w.k.workers[h.worker()].ops[h.level()].at(h.index())
}

// enqueue adds a claimed operator node to the pending (operator) queue of
// its level.
func (w *worker) enqueue(lvl int, h opRef) {
	w.pending[lvl] = append(w.pending[lvl], h)
	w.pendingTotal++
}

// preprocess implements the paper's preprocess_op (Fig 4): terminal test,
// compute-cache probe, and otherwise creation + queueing of an operator
// node. It returns a tagged word holding either the finished BDD or an
// operator-node handle whose result materializes during reduction.
func (w *worker) preprocess(op Op, f, g node.Ref) cache.Tagged {
	if r, ok := terminal(op, f, g); ok {
		w.st.Terminals++
		return cache.FromRef(r)
	}
	if op.Commutative() && g < f {
		f, g = g, f
	}
	lvl := node.TopLevel(f, g)
	if v, ok := w.cache.Lookup(lvl, uint8(op), f, g); ok {
		w.st.CacheHits++
		if !v.IsOpHandle() {
			return v
		}
		h := opRef(v)
		o := w.opAt(h)
		switch o.state.Load() {
		case opDone:
			res := o.resultRef()
			w.cache.Update(lvl, uint8(op), f, g, cache.FromRef(res))
			return cache.FromRef(res)
		case opQueued:
			// The operator node was released into a context group; claim
			// it into our own pending queue so the current context can
			// not deadlock waiting on an outer context's group.
			if o.state.CompareAndSwap(opQueued, opClaimed) {
				w.enqueue(lvl, h)
			}
			return v
		default: // opClaimed: someone (possibly a thief) will produce it
			return v
		}
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.OpAlloc); err != nil {
			panic(err)
		}
	}
	idx := w.ops[lvl].alloc(op, f, g)
	w.opAllocBytes.Add(opNodeBytes)
	h := makeOpRef(w.id, lvl, idx)
	w.enqueue(lvl, h)
	w.cache.Insert(lvl, uint8(op), f, g, h.tagged())
	return h.tagged()
}

// shareRequested reports (with low polling overhead) whether idle workers
// are waiting for stealable work.
func (w *worker) shareRequested() bool {
	if !w.k.opts.Stealing || len(w.k.workers) == 1 {
		return false
	}
	w.checkCounter--
	if w.checkCounter > 0 {
		return false
	}
	w.checkCounter = 256
	return w.k.stealWanted.Load() > 0
}

// expand is the paper's expansion phase (Fig 5): process operator queues
// from the highest- to the lowest-precedence variable, Shannon-expanding
// every queued operation. When the evaluation threshold is exceeded — or
// when idle workers request sharable work — the remaining operators are
// partitioned into groups and the current context is pushed.
//
// Returns the pushed context, or nil if the queues drained completely.
// allowPush=false (hybrid engine) reports overflow instead of pushing.
func (w *worker) expand(allowPush bool) (pushed *ownerCtx, overflow bool) {
	k := w.k
	// The effective threshold can drop mid-build under memory pressure
	// (budget degradation); re-read it at the poll cadence so a running
	// expansion adopts the lower value promptly without an atomic load on
	// every Shannon step.
	threshold := int(k.effThreshold.Load())
	btr := k.btr // nil unless this build is traced
	for lvl := 0; lvl < k.opts.Levels; lvl++ {
		q := w.pending[lvl]
		var lvlStart time.Time
		if btr != nil && len(q) > 0 {
			lvlStart = time.Now()
		}
		for i := 0; i < len(q); i++ {
			h := q[i]
			o := w.opAt(h)
			fl, gl := k.store.Low(o.f, lvl), k.store.Low(o.g, lvl)
			o.b0 = w.preprocess(o.op, fl, gl)
			fh, gh := k.store.High(o.f, lvl), k.store.High(o.g, lvl)
			o.b1 = w.preprocess(o.op, fh, gh)
			w.curReduce[lvl] = append(w.curReduce[lvl], h)
			w.pendingTotal--
			w.st.Ops++
			w.nOps++
			w.pollCancel()
			if w.cancelCounter == cancelPollInterval {
				threshold = int(k.effThreshold.Load())
			}
			if w.nOps >= threshold || (w.shareRequested() && w.pendingTotal > k.opts.GroupSize) {
				w.nOps = 0
				if btr != nil {
					btr.Add(k.btrParent, "expand", lvlStart, time.Now(),
						trace.I("level", int64(lvl)), trace.I("ops", int64(i+1)), trace.I("worker", int64(w.id)))
				}
				if !allowPush {
					w.pending[lvl] = q[i+1:]
					return nil, true
				}
				return w.pushContext(lvl, q[i+1:]), false
			}
		}
		if btr != nil && len(q) > 0 {
			btr.Add(k.btrParent, "expand", lvlStart, time.Now(),
				trace.I("level", int64(lvl)), trace.I("ops", int64(len(q))), trace.I("worker", int64(w.id)))
		}
		w.pending[lvl] = q[:0]
	}
	return nil, false
}

// pushContext implements Fig 5 lines 9–14: the remaining operators (the
// unprocessed tail of the current level plus everything at lower
// precedence) are released (opClaimed → opQueued), partitioned into small
// groups, and published as a stealable context. The reduce queues built so
// far move into the context, to be reduced when it is popped.
func (w *worker) pushContext(lvl int, tail []opRef) *ownerCtx {
	k := w.k
	groupSize := k.opts.GroupSize
	var groups [][]opRef
	cur := make([]opRef, 0, groupSize)
	release := func(h opRef) {
		o := w.opAt(h)
		o.state.Store(opQueued)
		cur = append(cur, h)
		if len(cur) == groupSize {
			groups = append(groups, cur)
			cur = make([]opRef, 0, groupSize)
		}
	}
	for _, h := range tail {
		release(h)
	}
	w.pending[lvl] = w.pending[lvl][:0]
	for l := lvl + 1; l < k.opts.Levels; l++ {
		for _, h := range w.pending[l] {
			release(h)
		}
		w.pending[l] = w.pending[l][:0]
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	w.pendingTotal = 0

	ec := &evalContext{groups: groups}
	oc := &ownerCtx{ec: ec, reduce: w.curReduce}
	w.curReduce = make([][]opRef, k.opts.Levels)
	w.registerCtx(ec)
	w.st.ContextPushes++
	return oc
}

func (w *worker) registerCtx(ec *evalContext) {
	w.ctxMu.Lock()
	w.ctxs = append(w.ctxs, ec)
	w.ctxMu.Unlock()
}

func (w *worker) unregisterCtx(ec *evalContext) {
	w.ctxMu.Lock()
	for i, c := range w.ctxs {
		if c == ec {
			w.ctxs = append(w.ctxs[:i], w.ctxs[i+1:]...)
			break
		}
	}
	w.ctxMu.Unlock()
}

// takeOwnGroup removes the newest group of ec, or nil when drained.
func (w *worker) takeOwnGroup(ec *evalContext) []opRef {
	w.ctxMu.Lock()
	defer w.ctxMu.Unlock()
	n := len(ec.groups)
	if n == 0 {
		return nil
	}
	g := ec.groups[n-1]
	ec.groups = ec.groups[:n-1]
	return g
}

// stealFrom removes the oldest group of any of victim's registered
// contexts, or nil.
func (w *worker) stealFrom(victim *worker) []opRef {
	victim.ctxMu.Lock()
	defer victim.ctxMu.Unlock()
	for _, ec := range victim.ctxs {
		if len(ec.groups) > 0 {
			g := ec.groups[0]
			ec.groups = ec.groups[1:]
			return g
		}
	}
	return nil
}

// stealAny scans all workers (victim order randomized, self last) for a
// stealable group. With stealing disabled (ablation) only self-stealing
// remains: a worker may always drain its own contexts' groups.
func (w *worker) stealAny() []opRef {
	if w.k.opts.Stealing {
		ws := w.k.workers
		n := len(ws)
		w.rng = w.rng*6364136223846793005 + 1442695040888963407
		start := int(w.rng>>33) % n
		for i := 0; i < n; i++ {
			v := ws[(start+i)%n]
			if v == w {
				continue
			}
			if g := w.stealFrom(v); g != nil {
				return g
			}
		}
	}
	// Self-steal: processing our own outer contexts' groups is useful
	// work while stalled.
	if g := w.stealFrom(w); g != nil {
		return g
	}
	return nil
}

// claimGroup claims each operator node of g into the pending queues.
// Nodes already claimed elsewhere (cache-hit claims or races) are skipped.
func (w *worker) claimGroup(g []opRef) {
	for _, h := range g {
		o := w.opAt(h)
		if o.state.CompareAndSwap(opQueued, opClaimed) {
			w.enqueue(h.level(), h)
		}
	}
}

// evalCycle runs the pbf_op loop (Fig 4) for whatever is in the pending
// queues: expand; if a context was pushed, drain its groups (each drained
// group recursing through evalCycle), then pop it and reduce its queues;
// otherwise reduce the current queues.
func (w *worker) evalCycle() {
	t0 := time.Now()
	oc, _ := w.expand(true)
	w.st.AddPhase(stats.PhaseExpansion, time.Since(t0))
	if oc == nil {
		w.reduceAll(w.curReduce)
		return
	}
	for {
		g := w.takeOwnGroup(oc.ec)
		if g == nil {
			break
		}
		w.claimGroup(g)
		if w.pendingTotal > 0 {
			w.evalCycle()
		}
	}
	w.unregisterCtx(oc.ec)
	w.st.ContextPops++
	// Pop: restore the context's reduce queues and reduce them. Stolen
	// groups may still be in flight; reduceAll stalls (and helps) until
	// their results arrive.
	saved := w.curReduce
	w.curReduce = oc.reduce
	w.reduceAll(w.curReduce)
	w.curReduce = saved
}

// reduceAll is the reduction phase (Fig 6): bottom-up over the variables,
// resolving each expanded operator node's branches and creating canonical
// BDD nodes in the per-variable unique tables. A pass over one variable
// acquires that variable's lock once and produces all of this worker's new
// nodes for the variable under it (§3.2).
func (w *worker) reduceAll(rq [][]opRef) {
	t0 := time.Now()
	k := w.k
	btr := k.btr // nil unless this build is traced
	for lvl := k.opts.Levels - 1; lvl >= 0; lvl-- {
		q := rq[lvl]
		if len(q) == 0 {
			continue
		}
		// This pass allocates at lvl: bring it home if spilled, and warm
		// the next levels of the sweep (two atomic loads when no tier or
		// nothing spilled).
		k.pinLevel(lvl)
		k.prefetchAhead(lvl)
		var lvlStart time.Time
		lvlOps := len(q)
		if btr != nil {
			lvlStart = time.Now()
		}
		emptyRounds := 0
		for {
			d := w.reducePass(lvl, q)
			if len(d) == 0 {
				break
			}
			if len(d) == len(q) && len(k.workers) == 1 {
				// With a single worker there is no thief to wait for:
				// an unresolvable branch is an engine bug, not a stall.
				panic(internalf("reduceAll", "sequential reduction made no progress at level %d", lvl))
			}
			if len(d) < len(q) {
				emptyRounds = 0
			}
			q = d
			// Results owed by thieves have not arrived: stall, becoming
			// a thief ourselves (§3.3). A stalled reducer must also poll
			// for cancellation: the thief it waits on may already have
			// unwound from an aborted build.
			w.checkCancelNow()
			w.st.Stalls++
			if w.stallHelp() {
				emptyRounds = 0
				continue
			}
			emptyRounds++
			if emptyRounds >= stallEscalateRounds {
				// Nothing is stealable and the blockers are not
				// finishing: group-granularity stealing can park an
				// expanded operator node inside another worker's pushed
				// (unpopped) context, and such waits can form cycles
				// across workers. Break the cycle by computing the
				// blocked branches directly, depth-first — duplicated
				// work, guaranteed progress.
				w.forceResolve(q)
				emptyRounds = 0
			}
		}
		rq[lvl] = rq[lvl][:0]
		if btr != nil {
			btr.Add(k.btrParent, "reduce", lvlStart, time.Now(),
				trace.I("level", int64(lvl)), trace.I("ops", int64(lvlOps)), trace.I("worker", int64(w.id)))
		}
		// Reduction is where nodes are actually allocated, and a build
		// whose expansion phase has finished never reaches the expansion
		// poll again — without a poll here the final reduction could
		// overrun the budget by its entire allocation. The level lock is
		// released between passes, so this is a safe unwind point.
		w.checkCancelNow()
		k.checkBudget()
	}
	w.st.AddPhase(stats.PhaseReduction, time.Since(t0))
}

// reducePass reduces every ready operator node in q, returning the ones
// whose branch results are still being produced elsewhere. The
// unique-table unlock is deferred so a panic out of FindOrAdd (injected
// allocation failure, invariant violation) unwinds without leaking the
// level's lock — peers quiescing from the same aborted build still need
// to acquire it.
func (w *worker) reducePass(lvl int, q []opRef) (deferred []opRef) {
	k := w.k
	t := &k.tables[lvl]
	locking := k.opts.Locking
	locked := false
	defer func() {
		if locked {
			t.Unlock()
		}
	}()
	for _, h := range q {
		o := w.opAt(h)
		r0, ok0 := w.resolve(o.b0)
		if !ok0 {
			deferred = append(deferred, h)
			continue
		}
		r1, ok1 := w.resolve(o.b1)
		if !ok1 {
			deferred = append(deferred, h)
			continue
		}
		var res node.Ref
		if r0 == r1 {
			res = r0
		} else {
			if locking && !locked {
				t.Lock()
				locked = true
			}
			res = t.FindOrAdd(k.store, w.id, lvl, r0, r1)
		}
		o.setResult(res)
		w.st.ReducedOps++
	}
	return deferred
}

// resolve turns a tagged branch word into a BDD ref, reporting false when
// it references an operator node whose result is not yet available.
func (w *worker) resolve(v cache.Tagged) (node.Ref, bool) {
	if !v.IsOpHandle() {
		return v.Ref(), true
	}
	o := w.opAt(opRef(v))
	if o.state.Load() == opDone {
		return o.resultRef(), true
	}
	return node.Nil, false
}

// stallEscalateRounds is the number of consecutive steal-less stall
// rounds after which a blocked reducer computes its blockers itself.
const stallEscalateRounds = 64

// stallHelp is invoked when reduction is blocked on thief results: try to
// steal (and fully process) a group; otherwise yield. Reports whether any
// work was found.
func (w *worker) stallHelp() bool {
	t0 := time.Now()
	found := false
	if g := w.stealAny(); g != nil {
		w.st.Steals++
		w.runIsolated(g)
		found = true
	} else {
		runtime.Gosched()
	}
	w.st.StallNs += int64(time.Since(t0))
	return found
}

// forceResolve computes the unresolved branches of the deferred operator
// nodes depth-first, without waiting for their claimants. The depth-first
// evaluation reuses this worker's compute cache and the shared unique
// tables, so results are canonical; the claimant may later publish the
// identical result again, which the atomic result/state protocol allows.
func (w *worker) forceResolve(deferred []opRef) {
	for _, h := range deferred {
		o := w.opAt(h)
		for _, branch := range [2]cache.Tagged{o.b0, o.b1} {
			if !branch.IsOpHandle() {
				continue
			}
			bo := w.opAt(opRef(branch))
			if bo.state.Load() == opDone {
				continue
			}
			res := w.dfApply(bo.op, bo.f, bo.g)
			bo.setResult(res)
			w.st.ForcedOps++
		}
	}
}

// runIsolated processes a stolen group to completion in a fresh queue
// environment, leaving the worker's in-progress state untouched. Stolen
// operator nodes get their results written and published via their state
// word, which is how they return to their owner (§3.3).
func (w *worker) runIsolated(g []opRef) {
	savedPending, savedTotal := w.pending, w.pendingTotal
	savedReduce, savedNOps := w.curReduce, w.nOps
	L := w.k.opts.Levels
	w.pending = make([][]opRef, L)
	w.curReduce = make([][]opRef, L)
	w.pendingTotal, w.nOps = 0, 0

	before := w.pendingTotal
	w.claimGroup(g)
	w.st.StolenOps += uint64(w.pendingTotal - before)
	if w.pendingTotal > 0 {
		w.evalCycle()
	}

	w.pending, w.pendingTotal = savedPending, savedTotal
	w.curReduce, w.nOps = savedReduce, savedNOps
}

// pbfApply runs one top-level operation with the (sequential) partial
// breadth-first engine. With an unbounded threshold this is the pure
// breadth-first algorithm.
func (w *worker) pbfApply(op Op, f, g node.Ref) node.Ref {
	w.nOps = 0
	root := w.preprocess(op, f, g)
	if !root.IsOpHandle() {
		return root.Ref()
	}
	w.evalCycle()
	o := w.opAt(opRef(root))
	if o.state.Load() != opDone {
		panic(internalf("pbfApply", "root not reduced"))
	}
	res := o.resultRef()
	w.k.endTopLevel()
	return res
}

// idleLoop is the life of a non-seeding worker during a parallel
// top-level operation: steal groups and process them until the operation
// completes. When nothing is stealable it raises stealWanted, prompting
// busy workers to context-switch and create sharable work.
func (w *worker) idleLoop() {
	k := w.k
	wanting := false
	failures := 0
	for !k.opDone.Load() && !k.aborted() {
		if g := w.stealAny(); g != nil {
			if wanting {
				k.stealWanted.Add(-1)
				wanting = false
			}
			failures = 0
			w.st.Steals++
			w.runIsolated(g)
			continue
		}
		w.st.StealFailures++
		if !wanting {
			k.stealWanted.Add(1)
			wanting = true
		}
		// Back off after repeated failures: a brief sleep keeps spinning
		// thieves from starving the busy workers of scheduler time
		// (particularly on hosts with fewer cores than workers).
		failures++
		if failures > 64 {
			time.Sleep(20 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
	if wanting {
		k.stealWanted.Add(-1)
	}
}

// parApply runs one top-level operation with the parallel engine.
func (k *Kernel) parApply(op Op, f, g node.Ref) node.Ref {
	w0 := k.workers[0]
	w0.nOps = 0
	root := w0.preprocess(op, f, g)
	if !root.IsOpHandle() {
		return root.Ref()
	}
	k.opDone.Store(false)
	var wg sync.WaitGroup
	for _, w := range k.workers[1:] {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			// A canceled build unwinds thief goroutines with the
			// buildAborted sentinel; swallow it here (the driver
			// re-raises it after all workers have quiesced).
			defer k.catchAbort()
			w.idleLoop()
		}(w)
	}
	func() {
		// The driving worker's unwind must still release the thieves and
		// wait for them before propagating, so no goroutine outlives the
		// top-level operation.
		defer func() {
			if r := recover(); r != nil {
				k.opDone.Store(true)
				wg.Wait()
				panic(r)
			}
		}()
		w0.evalCycle()
	}()
	k.opDone.Store(true)
	wg.Wait()
	if k.aborted() {
		panic(buildAborted{})
	}
	o := w0.opAt(opRef(root))
	if o.state.Load() != opDone {
		panic(internalf("parApply", "root not reduced"))
	}
	res := o.resultRef()
	k.endTopLevel()
	return res
}

// dfApply is the conventional depth-first algorithm (Fig 3). It shares
// the worker's compute cache; a cache hit on a not-yet-reduced operator
// node (possible in the hybrid engine's depth-first phase) computes the
// operation immediately and publishes the operator node's result.
func (w *worker) dfApply(op Op, f, g node.Ref) node.Ref {
	w.pollCancel()
	if r, ok := terminal(op, f, g); ok {
		w.st.Terminals++
		return r
	}
	if op.Commutative() && g < f {
		f, g = g, f
	}
	lvl := node.TopLevel(f, g)
	if v, ok := w.cache.Lookup(lvl, uint8(op), f, g); ok {
		w.st.CacheHits++
		if !v.IsOpHandle() {
			return v.Ref()
		}
		o := w.opAt(opRef(v))
		if o.state.Load() == opDone {
			return o.resultRef()
		}
		res := w.dfExpandOnce(op, f, g, lvl)
		o.setResult(res)
		w.cache.Update(lvl, uint8(op), f, g, cache.FromRef(res))
		return res
	}
	res := w.dfExpandOnce(op, f, g, lvl)
	w.cache.Insert(lvl, uint8(op), f, g, cache.FromRef(res))
	return res
}

// dfExpandOnce performs one Shannon expansion step depth-first.
func (w *worker) dfExpandOnce(op Op, f, g node.Ref, lvl int) node.Ref {
	k := w.k
	r0 := w.dfApply(op, k.store.Low(f, lvl), k.store.Low(g, lvl))
	r1 := w.dfApply(op, k.store.High(f, lvl), k.store.High(g, lvl))
	w.st.Ops++
	return k.mkNode(w.id, lvl, r0, r1)
}

// hybridApply is the hybrid engine of [8]: breadth-first expansion until
// the evaluation threshold, then depth-first evaluation of the remaining
// queued operations, then the normal breadth-first reduction.
func (w *worker) hybridApply(op Op, f, g node.Ref) node.Ref {
	w.nOps = 0
	root := w.preprocess(op, f, g)
	if !root.IsOpHandle() {
		return root.Ref()
	}
	for {
		t0 := time.Now()
		_, overflow := w.expand(false)
		w.st.AddPhase(stats.PhaseExpansion, time.Since(t0))
		if !overflow {
			break
		}
		// Depth-first drain of everything still pending.
		for lvl := 0; lvl < w.k.opts.Levels; lvl++ {
			q := w.pending[lvl]
			for _, h := range q {
				o := w.opAt(h)
				if o.state.Load() == opDone {
					continue
				}
				res := w.dfApply(o.op, o.f, o.g)
				o.setResult(res)
			}
			w.pendingTotal -= len(q)
			w.pending[lvl] = q[:0]
		}
	}
	w.reduceAll(w.curReduce)
	o := w.opAt(opRef(root))
	if o.state.Load() != opDone {
		panic(internalf("hybridApply", "root not reduced"))
	}
	res := o.resultRef()
	w.k.endTopLevel()
	return res
}

// checkQuiescent panics if the worker has queued work (debug aid).
func (w *worker) checkQuiescent() {
	if w.pendingTotal != 0 {
		panic(internalf("checkQuiescent", "worker %d has %d pending ops at quiescence", w.id, w.pendingTotal))
	}
}
