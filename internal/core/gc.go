package core

import (
	"sync"
	"sync/atomic"
	"time"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/node"
	"bfbdd/internal/stats"
	"bfbdd/internal/trace"
)

// barrier is a reusable P-party synchronization barrier for the GC's
// per-variable mark synchronization (§3.4: "each process will synchronize
// at each variable").
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	gen := b.gen
	for b.gen == gen {
		b.cond.Wait()
	}
}

// markBit sets the mark bit for r with a CAS loop; nodes at one level can
// be marked concurrently by every worker whose nodes reference them.
func markBit(st *node.Store, r node.Ref) {
	if r.IsTerminal() {
		return
	}
	a := st.Arena(r.Worker(), r.Level())
	word, bit := a.MarkWord(r.Index())
	for {
		old := atomic.LoadUint64(word)
		if old&bit != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(word, old, old|bit) {
			return
		}
	}
}

// GC runs a full collection with the configured policy. It must be called
// only at top-level-operation boundaries, with all workers quiescent and
// every live external BDD protected in the root registry.
func (k *Kernel) GC() {
	// Collection mutates arenas (compaction replaces them; the free-list
	// sweep writes Next fields), so every spilled level must come home
	// first. Quiescent here, so retired mappings can be released too.
	k.ensureAllResident("GC")
	t0 := time.Now()
	// Phase-time snapshot for the gc span of a traced build: the delta
	// across the collection attributes the three sub-phase times (summed
	// over workers) to this specific collection.
	var gcBefore [stats.NumPhases]int64
	if k.btr != nil {
		for _, w := range k.workers {
			for p := stats.PhaseGCMark; p <= stats.PhaseGCRehash; p++ {
				gcBefore[p] += w.st.PhaseNs[p]
			}
		}
	}
	if k.opts.GC == GCFreeList {
		k.gcFreeList()
	} else {
		k.gcCompact()
	}
	for _, w := range k.workers {
		w.cache.InvalidateBDD()
	}
	// Reconcile the approximate live counters with post-collection truth
	// (frees and compaction moves are invisible to NoteAlloc).
	k.store.SyncLive()
	k.gcLiveAfter = k.store.NumNodes()
	k.mem.GCCount++
	k.mem.GCPauseNs += int64(time.Since(t0))
	k.mem.LastLiveNds = k.gcLiveAfter
	k.sampleMemory()
	if k.btr != nil {
		var gcAfter [stats.NumPhases]int64
		for _, w := range k.workers {
			for p := stats.PhaseGCMark; p <= stats.PhaseGCRehash; p++ {
				gcAfter[p] += w.st.PhaseNs[p]
			}
		}
		k.btr.Add(k.btrParent, "gc", t0, time.Now(),
			trace.I("mark_ns", gcAfter[stats.PhaseGCMark]-gcBefore[stats.PhaseGCMark]),
			trace.I("fix_ns", gcAfter[stats.PhaseGCFix]-gcBefore[stats.PhaseGCFix]),
			trace.I("rehash_ns", gcAfter[stats.PhaseGCRehash]-gcBefore[stats.PhaseGCRehash]),
			trace.I("live_after", int64(k.gcLiveAfter)))
	}
}

// prepareMarksAndRoots sizes the mark bitmaps and marks the externally
// referenced roots.
func (k *Kernel) prepareMarksAndRoots() {
	st := k.store
	for w := 0; w < st.Workers(); w++ {
		for l := 0; l < st.Levels(); l++ {
			st.Arena(w, l).PrepareMarks()
		}
	}
	k.pinsMu.Lock()
	for p := range k.pins {
		markBit(st, p.ref)
	}
	k.pinsMu.Unlock()
}

// gcCompact is the paper's three-phase collector: (1) top-down
// breadth-first mark, one variable at a time with a barrier per variable,
// fused with sliding compaction of each worker's own marked nodes; (2) a
// fully parallel fix phase rewriting child references through the
// forwarding tables; (3) a rehash phase rebuilding every per-variable
// unique table, with workers visiting variables in trylock order to dodge
// held locks.
func (k *Kernel) gcCompact() {
	st := k.store
	W, L := st.Workers(), st.Levels()
	k.prepareMarksAndRoots()

	// Per-(worker, level) replacement arenas and old→new index forwarding.
	newArenas := make([][]node.Arena, W)
	fwd := make([][][]uint32, W)
	for w := 0; w < W; w++ {
		newArenas[w] = make([]node.Arena, L)
		fwd[w] = make([][]uint32, L)
	}

	bar := newBarrier(W)
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := k.workers[w]

			// Phase 1: mark + compact, level by level, barrier per level.
			tMark := time.Now()
			for lvl := 0; lvl < L; lvl++ {
				if faultinject.Enabled {
					// Stall only: an injected failure inside the barrier
					// protocol would deadlock the other mark goroutines.
					// The delay widens the mid-collection window for
					// cancel-during-GC tests.
					faultinject.Stall(faultinject.GCStall)
				}
				old := st.Arena(w, lvl)
				n := old.Len()
				f := make([]uint32, n)
				na := &newArenas[w][lvl]
				for i := uint64(0); i < n; i++ {
					if !old.Marked(i) {
						continue
					}
					nd := old.At(i)
					markBit(st, nd.Low)
					markBit(st, nd.High)
					f[i] = uint32(na.Alloc(nd.Low, nd.High))
				}
				fwd[w][lvl] = f
				bar.wait()
			}
			wk.st.AddPhase(stats.PhaseGCMark, time.Since(tMark))

			// Phase 2: fix references, fully parallel (each worker
			// rewrites only nodes it owns).
			tFix := time.Now()
			for lvl := 0; lvl < L; lvl++ {
				na := &newArenas[w][lvl]
				for i := uint64(0); i < na.Len(); i++ {
					nd := na.At(i)
					nd.Low = forward(fwd, nd.Low)
					nd.High = forward(fwd, nd.High)
					nd.Next = node.Nil
				}
			}
			wk.st.AddPhase(stats.PhaseGCFix, time.Since(tFix))
		}(w)
	}
	wg.Wait()

	// Swap in the compacted arenas and remap the root registry (serial,
	// cheap relative to the parallel phases).
	for w := 0; w < W; w++ {
		for lvl := 0; lvl < L; lvl++ {
			st.Arena(w, lvl).ReplaceWith(&newArenas[w][lvl])
		}
	}
	k.pinsMu.Lock()
	for p := range k.pins {
		p.ref = forward(fwd, p.ref)
	}
	k.pinsMu.Unlock()

	// Phase 3: rehash. Reset buckets serially (sized for the survivors),
	// then each worker inserts its own nodes, preferring unlocked
	// variables first (§3.4).
	for lvl := 0; lvl < L; lvl++ {
		k.tables[lvl].ResetBuckets(st.NodesAtLevel(lvl))
	}
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			k.rehashWorker(w)
			k.workers[w].st.AddPhase(stats.PhaseGCRehash, time.Since(t0))
		}(w)
	}
	wg.Wait()
}

// forward remaps a pre-compaction ref through the forwarding tables.
func forward(fwd [][][]uint32, r node.Ref) node.Ref {
	if r.IsTerminal() {
		return r
	}
	return node.MakeRef(r.Level(), r.Worker(), uint64(fwd[r.Worker()][r.Level()][r.Index()]))
}

// rehashWorker inserts worker w's nodes into the per-variable unique
// tables. Variables whose lock is momentarily held by another worker are
// deferred and retried, exactly as the paper describes for the rehash
// phase; if a full scan makes no progress the worker blocks on the first
// remaining variable.
func (k *Kernel) rehashWorker(w int) {
	st := k.store
	var remaining []int
	for lvl := 0; lvl < st.Levels(); lvl++ {
		if st.Arena(w, lvl).Len() > 0 {
			remaining = append(remaining, lvl)
		}
	}
	insert := func(lvl int) {
		t := &k.tables[lvl]
		a := st.Arena(w, lvl)
		for i := uint64(0); i < a.Len(); i++ {
			t.Insert(st, node.MakeRef(lvl, w, i))
		}
	}
	for len(remaining) > 0 {
		progressed := false
		kept := remaining[:0]
		for _, lvl := range remaining {
			if k.tables[lvl].TryLock() {
				insert(lvl)
				k.tables[lvl].Unlock()
				progressed = true
			} else {
				kept = append(kept, lvl)
			}
		}
		remaining = kept
		if !progressed && len(remaining) > 0 {
			lvl := remaining[0]
			k.tables[lvl].Lock()
			insert(lvl)
			k.tables[lvl].Unlock()
			remaining = remaining[1:]
		}
	}
}

// gcFreeList is the non-compacting ablation policy: mark exactly as the
// compacting collector does, then sweep unmarked nodes out of the unique
// tables onto per-arena free lists. Nodes never move, so no fix or rehash
// phase is needed — at the cost of the scattered allocation the paper's
// §3.4 argues against.
func (k *Kernel) gcFreeList() {
	st := k.store
	W, L := st.Workers(), st.Levels()
	k.prepareMarksAndRoots()

	bar := newBarrier(W)
	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wk := k.workers[w]
			tMark := time.Now()
			for lvl := 0; lvl < L; lvl++ {
				a := st.Arena(w, lvl)
				for i := uint64(0); i < a.Len(); i++ {
					if !a.Marked(i) {
						continue
					}
					nd := a.At(i)
					markBit(st, nd.Low)
					markBit(st, nd.High)
				}
				bar.wait()
			}
			wk.st.AddPhase(stats.PhaseGCMark, time.Since(tMark))

			// Sweep: levels are striped across workers; a level's unique
			// chain spans all workers' arenas but distinct levels touch
			// disjoint arenas, so the striping is race free.
			tSweep := time.Now()
			for lvl := w; lvl < L; lvl += W {
				k.tables[lvl].RemoveUnmarked(st, func(r node.Ref) {
					st.Arena(r.Worker(), r.Level()).Free(r.Index())
				})
			}
			wk.st.AddPhase(stats.PhaseGCFix, time.Since(tSweep))
		}(w)
	}
	wg.Wait()
}
