package core

import (
	"math/rand"
	"reflect"
	"testing"

	"bfbdd/internal/node"
	"bfbdd/internal/spill"
)

// buildDisjunction builds OR of several two-variable conjunctions, a
// shape with nodes at every level.
func buildDisjunction(k *Kernel, levels int) node.Ref {
	f := node.Zero
	for i := 0; i+1 < levels; i += 2 {
		a := k.VarRef(i)
		b := k.VarRef(i + 1)
		ab := k.Apply(OpAnd, a, b)
		f = k.Apply(OpOr, f, ab)
	}
	return f
}

func TestKernelSpillRoundTripSignature(t *testing.T) {
	const L = 10
	k := NewKernel(Options{Levels: L, Engine: EnginePBF, SpillDir: t.TempDir()})
	defer k.Close()
	if !k.SpillEnabled() {
		t.Fatal("spill tier not attached")
	}
	f := buildDisjunction(k, L)
	p := k.Pin(f)
	defer k.Unpin(p)

	sigBefore := k.CanonicalSignature([]node.Ref{p.Ref()})
	if err := k.SpillAll(); err != nil {
		t.Fatal(err)
	}
	rep := k.MemReport()
	if rep.SpilledBytes == 0 {
		t.Fatal("nothing spilled")
	}
	if rep.ResidentBytes != 0 {
		t.Fatalf("resident bytes after SpillAll = %d, want 0", rep.ResidentBytes)
	}
	var spilledLevels int
	for _, lm := range rep.Levels {
		if lm.Spilled {
			spilledLevels++
		}
	}
	if spilledLevels == 0 {
		t.Fatal("MemReport shows no spilled levels")
	}

	// Reads while spilled (mmap platforms read through the mapping;
	// others unspill transparently).
	sigSpilled := k.CanonicalSignature([]node.Ref{p.Ref()})
	if !reflect.DeepEqual(sigBefore, sigSpilled) {
		t.Fatal("signature changed while spilled")
	}

	// A build touching spilled levels unspills them on demand.
	g := k.Apply(OpAnd, p.Ref(), k.VarRef(0))
	pg := k.Pin(g)
	defer k.Unpin(pg)

	if err := k.Unspill(); err != nil {
		t.Fatal(err)
	}
	if got := k.SpillStats().SpilledBytes; got != 0 {
		t.Fatalf("spilled bytes after Unspill = %d, want 0", got)
	}
	sigAfter := k.CanonicalSignature([]node.Ref{p.Ref()})
	if !reflect.DeepEqual(sigBefore, sigAfter) {
		t.Fatal("signature changed across spill round trip")
	}
}

func TestKernelSpillThenGC(t *testing.T) {
	for _, policy := range []GCPolicy{GCCompact, GCFreeList} {
		k := NewKernel(Options{Levels: 12, Engine: EnginePBF, GC: policy, SpillDir: t.TempDir()})
		f := buildDisjunction(k, 12)
		p := k.Pin(f)
		sig := k.CanonicalSignature([]node.Ref{p.Ref()})
		if err := k.SpillAll(); err != nil {
			t.Fatal(err)
		}
		// GC must unspill everything first (compaction replaces arenas,
		// the free-list sweep writes Next fields).
		k.GC()
		if got := k.SpillStats().SpilledBytes; got != 0 {
			t.Fatalf("%v: spilled bytes after GC = %d, want 0", policy, got)
		}
		if got := k.CanonicalSignature([]node.Ref{p.Ref()}); !reflect.DeepEqual(sig, got) {
			t.Fatalf("%v: signature changed across spill+GC", policy)
		}
		k.Unpin(p)
		k.Close()
	}
}

func TestBudgetSpillRung(t *testing.T) {
	k := NewKernel(Options{Levels: 20, Engine: EnginePBF, SpillDir: t.TempDir()})
	defer k.Close()
	f := buildDisjunction(k, 20)
	p := k.Pin(f)
	defer k.Unpin(p)
	k.GC() // settle live state
	liveBytes := k.NumNodes() * node.NodeBytes
	if liveBytes == 0 {
		t.Fatal("no live bytes to pressure")
	}
	// A byte budget below even the pinned live-node bytes: GC and cache
	// shrink cannot relieve it, so without the spill rung the next Apply
	// would refuse with *BudgetError. With it, the coldest levels tier
	// down instead and the build proceeds.
	k.SetBudget(0, liveBytes/2)
	g := k.Apply(OpAnd, p.Ref(), k.VarRef(1))
	_ = g
	bs := k.BudgetStats()
	if bs.Spills == 0 {
		t.Fatalf("budget ladder did not reach the spill rung: %+v", bs)
	}
	if bs.Aborts != 0 {
		t.Fatalf("build aborted despite spill rung: %+v", bs)
	}
	if k.SpillStats().SpilledBytes == 0 {
		t.Fatal("spill rung recorded but nothing on disk")
	}
}

func TestSpillDisabledIsInert(t *testing.T) {
	k := NewKernel(Options{Levels: 8, Engine: EnginePBF})
	defer k.Close()
	f := buildDisjunction(k, 8)
	p := k.Pin(f)
	defer k.Unpin(p)
	if k.SpillEnabled() {
		t.Fatal("tier attached without SpillDir")
	}
	if err := k.SpillAll(); err != nil {
		t.Fatal(err)
	}
	rep := k.MemReport()
	if rep.SpilledBytes != 0 || rep.ResidentBytes == 0 {
		t.Fatalf("unexpected report without tier: %+v", rep)
	}
	if !reflect.DeepEqual(k.SpillStats(), spill.Stats{}) {
		t.Fatal("non-zero spill stats without tier")
	}
}

func TestSpillParallelEngine(t *testing.T) {
	const L = 14
	k := NewKernel(Options{Levels: L, Engine: EnginePar, Workers: 4, SpillDir: t.TempDir()})
	defer k.Close()
	f := buildDisjunction(k, L)
	p := k.Pin(f)
	defer k.Unpin(p)
	sig := k.CanonicalSignature([]node.Ref{p.Ref()})
	if err := k.SpillAll(); err != nil {
		t.Fatal(err)
	}
	// Parallel builds pin spilled levels from worker goroutines.
	g := k.Apply(OpXor, p.Ref(), k.VarRef(L-1))
	pg := k.Pin(g)
	defer k.Unpin(pg)
	if got := k.CanonicalSignature([]node.Ref{p.Ref()}); !reflect.DeepEqual(sig, got) {
		t.Fatal("operand signature changed after parallel build over spilled store")
	}
}

// BenchmarkSpillRoundTrip measures one full tier-down/tier-up cycle of a
// realistically-sized store: every level written to its spill file and
// released, then restored to the heap. The per-op figure is the latency
// a session pays to be parked and revived.
func BenchmarkSpillRoundTrip(b *testing.B) {
	const L = 20
	k := NewKernel(Options{
		Levels: L, Engine: EnginePBF,
		EvalThreshold: 256, GroupSize: 64,
		SpillDir: b.TempDir(),
	})
	defer k.Close()
	rng := rand.New(rand.NewSource(5))
	p := k.Pin(randomDNF(k, rng, L, 64, 9))
	defer k.Unpin(p)
	bytes := k.Store().ResidentBytes()
	b.SetBytes(int64(bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.SpillAll(); err != nil {
			b.Fatal(err)
		}
		if err := k.Unspill(); err != nil {
			b.Fatal(err)
		}
	}
}
