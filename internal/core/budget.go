package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync/atomic"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/node"
)

// Resource governance.
//
// A kernel can be created with a node and/or byte budget (Options.MaxNodes,
// Options.MaxBytes). Enforcement happens in two places:
//
//   - mid-build, the workers' amortized poll (pollCancel → checkBudget)
//     compares cheap approximate usage counters against the budget. At
//     the soft threshold (7/8 of the budget) it degrades gracefully by
//     lowering the effective partial-BF evaluation threshold toward
//     depth-first — the paper's own memory-control knob (§3.1): a smaller
//     threshold bounds the breadth-first queues and operator arenas at the
//     cost of locality. At the hard threshold it aborts the build through
//     the buildAborted cancellation machinery with a typed *BudgetError.
//
//   - at top-level-operation boundaries (budgetGate), where every worker
//     is quiescent, the remaining escalation steps run: force an early
//     collection, then shrink the compute caches, and only if the pinned
//     live state alone still busts the budget, refuse the operation with
//     *BudgetError before any transient state is built.
//
// The escalation ladder is therefore: degrade threshold → forced GC →
// cache shrink → typed abort; the kernel stays consistent and reusable
// after every rung (see DESIGN.md §8).

// ErrBudgetExceeded is the sentinel wrapped by every *BudgetError;
// classify budget aborts with errors.Is(err, ErrBudgetExceeded).
var ErrBudgetExceeded = errors.New("resource budget exceeded")

// LevelUsage is the live node count of one variable level, reported in a
// BudgetError so callers can see which variables dominate the blow-up.
type LevelUsage struct {
	Level int
	Nodes uint64
}

// BudgetError reports a build aborted (or refused) because the kernel's
// node or byte budget was exceeded after all graceful-degradation steps.
// The kernel remains consistent and immediately usable.
type BudgetError struct {
	Kind     string // "nodes" or "bytes": which limit tripped
	Live     uint64 // approximate live nodes at abort
	MaxNodes uint64 // configured node budget (0 = unlimited)
	Bytes    uint64 // approximate total bytes at abort
	MaxBytes uint64 // configured byte budget (0 = unlimited)

	// Degradation-step counters at the time of the abort.
	ForcedGCs      uint64
	ThresholdDrops uint64
	CacheShrinks   uint64

	// PerLevel lists the heaviest variable levels by live node count,
	// descending. Filled once the aborted build has quiesced.
	PerLevel []LevelUsage
}

func (e *BudgetError) Error() string {
	switch e.Kind {
	case "bytes":
		return fmt.Sprintf("build aborted: %v (%d bytes live, budget %d)",
			ErrBudgetExceeded, e.Bytes, e.MaxBytes)
	default:
		return fmt.Sprintf("build aborted: %v (%d nodes live, budget %d)",
			ErrBudgetExceeded, e.Live, e.MaxNodes)
	}
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// InternalError is a kernel invariant violation converted into a typed
// error instead of a raw panic string, so the serving layer can contain
// it to one session (poisoning it) rather than losing the process. The
// kernel it came from must be considered corrupt.
type InternalError struct {
	Op    string // the operation or site that detected the violation
	Cause any    // the underlying panic value or description
	Stack []byte // stack captured at the point of detection
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error in %s: %v", e.Op, e.Cause)
}

// internalf builds an *InternalError with the current stack.
func internalf(op, format string, args ...any) *InternalError {
	return &InternalError{Op: op, Cause: fmt.Sprintf(format, args...), Stack: debug.Stack()}
}

// degradedEvalThreshold is the evaluation threshold installed under
// memory pressure: small enough to make expansion effectively
// depth-first (queues stay shallow, operator arenas stay small), large
// enough to keep the per-context bookkeeping amortized.
const degradedEvalThreshold = 64

// budgetState holds the per-kernel budget configuration and the
// degradation counters. Thresholds are immutable after NewKernel; the
// counters are touched by concurrent workers and therefore atomic.
type budgetState struct {
	enabled            bool
	maxNodes, maxBytes uint64 // hard limits (0 = unlimited)
	softNodes          uint64 // degrade above this (7/8 of max)
	softBytes          uint64
	restoreNodes       uint64 // un-degrade below this (1/2 of max)
	restoreBytes       uint64

	degraded       atomic.Bool
	forcedGCs      atomic.Uint64
	thresholdDrops atomic.Uint64
	cacheShrinks   atomic.Uint64
	spills         atomic.Uint64
	aborts         atomic.Uint64
}

func (b *budgetState) init(opts Options) {
	b.maxNodes, b.maxBytes = opts.MaxNodes, opts.MaxBytes
	b.enabled = b.maxNodes > 0 || b.maxBytes > 0
	b.softNodes = b.maxNodes - b.maxNodes/8
	b.softBytes = b.maxBytes - b.maxBytes/8
	b.restoreNodes = b.maxNodes / 2
	b.restoreBytes = b.maxBytes / 2
}

// overSoft reports whether usage is above the degradation threshold.
func (b *budgetState) overSoft(live, mem uint64) bool {
	return (b.maxNodes > 0 && live > b.softNodes) ||
		(b.maxBytes > 0 && mem > b.softBytes)
}

// overHard reports whether usage is above the budget itself, and which
// limit tripped.
func (b *budgetState) overHard(live, mem uint64) (string, bool) {
	if b.maxNodes > 0 && live > b.maxNodes {
		return "nodes", true
	}
	if b.maxBytes > 0 && mem > b.maxBytes {
		return "bytes", true
	}
	return "", false
}

// BudgetStats is a snapshot of the degradation counters.
type BudgetStats struct {
	ForcedGCs      uint64
	ThresholdDrops uint64
	CacheShrinks   uint64
	Spills         uint64
	Aborts         uint64
}

// BudgetStats returns the degradation counters.
func (k *Kernel) BudgetStats() BudgetStats {
	return BudgetStats{
		ForcedGCs:      k.budget.forcedGCs.Load(),
		ThresholdDrops: k.budget.thresholdDrops.Load(),
		CacheShrinks:   k.budget.cacheShrinks.Load(),
		Spills:         k.budget.spills.Load(),
		Aborts:         k.budget.aborts.Load(),
	}
}

// EffEvalThreshold returns the evaluation threshold currently in effect
// (lowered from Options.EvalThreshold while degraded).
func (k *Kernel) EffEvalThreshold() int { return int(k.effThreshold.Load()) }

// MemBytes returns the kernel's approximate memory footprint: live
// nodes, operator arenas of the build in flight, compute caches, and
// unique-table buckets. Safe to call concurrently with a build.
func (k *Kernel) MemBytes() uint64 { return k.approxMem(k.store.ApproxLive()) }

// approxMem estimates total bytes from the approximate live-node count,
// the per-worker operator-arena counters, and the cached cache+table
// overhead (refreshed by sampleMemory at operation boundaries).
func (k *Kernel) approxMem(live uint64) uint64 {
	var opB uint64
	for _, w := range k.workers {
		opB += w.opAllocBytes.Load()
	}
	m := live*node.NodeBytes + opB + k.overheadBytes.Load()
	// Spilled levels live in files and the page cache, not on the heap;
	// subtract them (clamped: spill files hold whole blocks, so their
	// byte count can exceed the live-node estimate of those levels).
	if t := k.tier.Load(); t != nil {
		if sp := t.SpilledBytes(); sp < m {
			m -= sp
		} else if sp > 0 {
			m = 0
		}
	}
	return m
}

// checkBudget is the mid-build budget poll, called from pollCancel on
// the expansion/reduction paths (no unique-table lock held). It uses
// only O(workers) atomic reads, so it is cheap enough for the amortized
// poll cadence.
func (k *Kernel) checkBudget() {
	b := &k.budget
	if !b.enabled {
		return
	}
	live := k.store.ApproxLive()
	mem := k.approxMem(live)
	if kind, over := b.overHard(live, mem); over {
		k.abortBudget(kind, live, mem)
	}
	if b.overSoft(live, mem) {
		k.degradeThreshold()
	}
}

// degradeThreshold lowers the effective evaluation threshold toward
// depth-first. Idempotent per degradation episode: the first worker to
// cross the soft threshold wins the CAS and installs the new threshold.
func (k *Kernel) degradeThreshold() {
	if k.budget.degraded.CompareAndSwap(false, true) {
		if int64(degradedEvalThreshold) < k.effThreshold.Load() {
			k.effThreshold.Store(degradedEvalThreshold)
		}
		k.budget.thresholdDrops.Add(1)
	}
}

// restoreThreshold undoes degradation once usage has fallen back below
// the restore watermark. Boundary-only (reads arena state exactly).
func (k *Kernel) restoreThreshold(live, mem uint64) {
	b := &k.budget
	if !b.degraded.Load() {
		return
	}
	if b.maxNodes > 0 && live > b.restoreNodes {
		return
	}
	if b.maxBytes > 0 && mem > b.restoreBytes {
		return
	}
	b.degraded.Store(false)
	k.effThreshold.Store(int64(k.opts.EvalThreshold))
}

// abortBudget records a typed budget abort and unwinds the calling
// worker through the buildAborted cancellation machinery; the top-level
// entry point re-raises it as a *BudgetError after the build quiesces.
func (k *Kernel) abortBudget(kind string, live, mem uint64) {
	k.budget.aborts.Add(1)
	err := error(k.newBudgetError(kind, live, mem))
	k.abortErr.CompareAndSwap(nil, &err)
	panic(buildAborted{})
}

func (k *Kernel) newBudgetError(kind string, live, mem uint64) *BudgetError {
	b := &k.budget
	return &BudgetError{
		Kind:     kind,
		Live:     live,
		MaxNodes: b.maxNodes,
		Bytes:    mem,
		MaxBytes: b.maxBytes,

		ForcedGCs:      b.forcedGCs.Load(),
		ThresholdDrops: b.thresholdDrops.Load(),
		CacheShrinks:   b.cacheShrinks.Load(),
	}
}

// budgetTopLevels is how many of the heaviest variable levels a
// BudgetError reports.
const budgetTopLevels = 8

// fillBudgetUsage attaches per-variable usage to a BudgetError. Called
// only after the aborted build has quiesced (reading the arenas' exact
// live counts is then race-free).
func (k *Kernel) fillBudgetUsage(e *BudgetError) {
	if e.PerLevel != nil {
		return
	}
	usage := make([]LevelUsage, 0, k.opts.Levels)
	for l := 0; l < k.opts.Levels; l++ {
		if n := k.store.NodesAtLevel(l); n > 0 {
			usage = append(usage, LevelUsage{Level: l, Nodes: n})
		}
	}
	sort.Slice(usage, func(i, j int) bool {
		if usage[i].Nodes != usage[j].Nodes {
			return usage[i].Nodes > usage[j].Nodes
		}
		return usage[i].Level < usage[j].Level
	})
	if len(usage) > budgetTopLevels {
		usage = usage[:budgetTopLevels]
	}
	e.PerLevel = usage
}

// budgetGate runs at top-level-operation boundaries in place of the
// plain maybeGC check. With no budget configured it is exactly maybeGC.
// Otherwise it walks the escalation ladder while over the soft
// threshold, and refuses the operation with *BudgetError if the pinned
// live state alone is already over the hard limit — no transient build
// state exists yet, so refusing here is clean.
func (k *Kernel) budgetGate() {
	b := &k.budget
	if !b.enabled {
		k.maybeGC()
		return
	}
	k.store.SyncLive()
	live := k.store.ApproxLive()
	mem := k.approxMem(live)
	if !b.overSoft(live, mem) {
		k.restoreThreshold(live, mem)
		k.maybeGC()
		return
	}
	if k.gcInhibit == 0 {
		k.GC()
		b.forcedGCs.Add(1)
		live = k.store.ApproxLive()
		mem = k.approxMem(live)
		if !b.overSoft(live, mem) {
			k.restoreThreshold(live, mem)
			return
		}
	}
	var freed uint64
	for _, w := range k.workers {
		freed += w.cache.Shrink()
	}
	if freed > 0 {
		b.cacheShrinks.Add(1)
		k.sampleMemory() // refresh overheadBytes now that caches are empty
		mem = k.approxMem(live)
	}
	k.degradeThreshold()
	if kind, over := b.overHard(live, mem); over {
		// Last rung before the typed abort: a byte overage can still be
		// relieved by tiering the coldest (deepest) levels to disk — live
		// nodes keep their identity, only their bytes leave the heap. A
		// node overage cannot (spilling does not reduce the node count).
		if kind == "bytes" && k.spillColdest(live, &mem) {
			if _, still := b.overHard(live, mem); !still {
				return
			}
			kind, _ = b.overHard(live, mem)
		}
		b.aborts.Add(1)
		e := k.newBudgetError(kind, live, mem)
		k.fillBudgetUsage(e)
		panic(e)
	}
}

// abortPayload classifies a recovered panic value (or a recorded abort
// error) as one of the typed abort payloads that the context-aware entry
// points return as errors: budget aborts, internal invariant violations,
// and injected faults.
func abortPayload(v any) (error, bool) {
	switch e := v.(type) {
	case nil:
		return nil, false
	case *BudgetError:
		return e, true
	case *InternalError:
		return e, true
	}
	if err, ok := v.(error); ok && errors.Is(err, faultinject.ErrInjected) {
		return err, true
	}
	return nil, false
}

// convertAbort is deferred by the top-level entry points (Apply,
// applyBatchInto). It turns the buildAborted unwind into a typed panic
// when the abort was caused by a budget trip, an injected fault, or a
// contained invariant violation — after discarding the aborted build's
// transient state — and re-raises plain cancellation unchanged for
// ApplyCtx/ApplyBatchCtx to translate. Panics that are not abort
// payloads propagate untouched.
func (k *Kernel) convertAbort() {
	rec := recover()
	if rec == nil {
		return
	}
	if _, ok := rec.(buildAborted); ok {
		k.abortTopLevel()
		if e, ok := abortPayload(k.abortError()); ok {
			if be, isBudget := e.(*BudgetError); isBudget {
				k.fillBudgetUsage(be)
			}
			panic(e)
		}
		panic(buildAborted{})
	}
	if e, ok := abortPayload(rec); ok {
		// Typed panic raised directly on the caller goroutine (sequential
		// engines, or the parallel driver after its workers quiesced).
		k.abortTopLevel()
		if be, isBudget := e.(*BudgetError); isBudget {
			k.fillBudgetUsage(be)
		}
		panic(e)
	}
	panic(rec)
}
