package core

import (
	"time"

	"bfbdd/internal/spill"
	"bfbdd/internal/trace"
)

// Memory tiering (see DESIGN.md §14).
//
// A kernel created with Options.SpillDir owns a spill.Tier. Fully
// reduced levels can be written to level-major spill files and their
// heap blocks released; on platforms with an mmap backend the level
// stays readable through a read-only file mapping, so the Ref
// resolution hot path is unchanged and only writes need the level back
// on the heap.
//
// The invariants the hooks below maintain:
//
//   - Write paths pin: any site that allocates into or mutates a
//     level's arenas (FindOrAdd via mkNode or the reduce sweep) calls
//     pinLevel first, which unspills that one level. The fast path is
//     two atomic loads and costs nothing while no level is spilled.
//   - GC and reordering run fully resident: compaction replaces
//     arenas and the free-list sweep writes Next fields, so both
//     unspill everything first (ensureAllResident).
//   - Read paths on mmap platforms need nothing: a spilled level
//     resolves refs through the mapping and the OS faults pages in.
//     On other platforms every read entry calls ensureReadable, which
//     unspills everything.
//   - Mappings retired by an unspill are unmapped only at quiescent
//     boundaries (ReleaseRetired from sampleMemory), because readers
//     racing with the unspill may still hold the old block table.
//   - Spilling itself happens only at quiescent boundaries: the
//     public SpillLevels/SpillAll (manager-driven tier-down) and the
//     budget ladder's spill rung inside budgetGate.

// spillPrefetchAhead is how many levels ahead of the reduce sweep the
// kernel issues WILLNEED advice for, in sweep order (bottom-up).
const spillPrefetchAhead = 4

// EnableSpill creates (or reopens) the spill tier rooted at dir. It is
// called once right after kernel construction, before any operation;
// stale spill files under dir are removed. Enabling twice replaces the
// tier only if the first had no spilled levels (it never does at call
// time).
func (k *Kernel) EnableSpill(dir string) error {
	t, err := spill.Open(dir)
	if err != nil {
		return err
	}
	k.tier.Store(t)
	return nil
}

// SpillEnabled reports whether a spill tier is attached.
func (k *Kernel) SpillEnabled() bool { return k.tier.Load() != nil }

// SpillStats returns the tier's activity counters (zero value without
// a tier).
func (k *Kernel) SpillStats() spill.Stats {
	if t := k.tier.Load(); t != nil {
		return t.Stats()
	}
	return spill.Stats{}
}

// SpilledLevels returns the currently spilled level numbers.
func (k *Kernel) SpilledLevels() []int {
	if t := k.tier.Load(); t != nil {
		return t.SpilledLevels()
	}
	return nil
}

// pinLevel brings one level back to the heap before a write touches its
// arenas. Hot-path cost while nothing is spilled: one atomic pointer
// load and one atomic counter load. Safe from any worker: the spill
// mutex serializes racing pins, and readers concurrently resolving refs
// through the old (mapped) block table stay valid until ReleaseRetired.
func (k *Kernel) pinLevel(level int) {
	t := k.tier.Load()
	if t == nil || t.SpilledLevelCount() == 0 {
		return
	}
	if !t.IsSpilled(level) {
		return
	}
	k.spillMu.Lock()
	defer k.spillMu.Unlock()
	if !t.IsSpilled(level) {
		return
	}
	t0 := time.Now()
	if err := t.UnspillLevel(k.store, level); err != nil {
		// An unreadable spill file would lose nodes; treat it like any
		// other kernel invariant violation so the serving layer poisons
		// just this session.
		panic(internalf("spill", "unspill level %d: %v", level, err))
	}
	if k.btr != nil {
		k.btr.Add(k.btrParent, "unspill", t0, time.Now(), trace.I("level", int64(level)))
	}
}

// prefetchAhead advises the OS about the next levels the bottom-up
// reduce sweep will touch.
func (k *Kernel) prefetchAhead(level int) {
	t := k.tier.Load()
	if t == nil || t.SpilledLevelCount() == 0 {
		return
	}
	var next []int
	for l := level - 1; l >= 0 && l >= level-spillPrefetchAhead; l-- {
		next = append(next, l)
	}
	if len(next) == 0 {
		return
	}
	t0 := time.Now()
	t.Prefetch(next)
	if k.btr != nil {
		k.btr.Add(k.btrParent, "prefetch", t0, time.Now(),
			trace.I("level", int64(level)), trace.I("ahead", int64(len(next))))
	}
}

// ensureReadable makes every level resolvable before a read-only
// traversal. With an mmap backend this is free — spilled levels serve
// reads through their mappings. Without one, spilled levels have no
// blocks at all, so everything is unspilled.
func (k *Kernel) ensureReadable() {
	if spill.MmapEnabled {
		return
	}
	k.ensureAllResident("read")
}

// EnsureReadable makes every level resolvable before an external
// traversal of the store (snapshot.Write, DOT export). Free on mmap
// platforms; unspills everything elsewhere.
func (k *Kernel) EnsureReadable() { k.ensureReadable() }

// ensureAllResident unspills every level; required before GC (arenas
// are replaced or mutated) and level reordering.
func (k *Kernel) ensureAllResident(site string) {
	t := k.tier.Load()
	if t == nil || t.SpilledLevelCount() == 0 {
		return
	}
	k.spillMu.Lock()
	defer k.spillMu.Unlock()
	t0 := time.Now()
	n := t.SpilledLevelCount()
	if err := t.UnspillAll(k.store); err != nil {
		panic(internalf(site, "unspill: %v", err))
	}
	if k.btr != nil {
		k.btr.Add(k.btrParent, "unspill", t0, time.Now(), trace.I("levels", int64(n)))
	}
}

// SpillLevels writes the given levels (all spillable levels when nil)
// to the spill tier and releases their heap blocks. Levels are spilled
// deepest first — the bottom of the order is the coldest region of a
// top-down traversal. Must be called at a quiescent boundary (the
// manager serializes it against operations). Without a tier it is a
// no-op. On error the affected level stays fully resident.
func (k *Kernel) SpillLevels(levels []int) error {
	k.checkOpen()
	t := k.tier.Load()
	if t == nil {
		return nil
	}
	k.spillMu.Lock()
	defer k.spillMu.Unlock()
	if levels == nil {
		for l := k.opts.Levels - 1; l >= 0; l-- {
			levels = append(levels, l)
		}
	}
	t0 := time.Now()
	var spilled int
	for _, l := range levels {
		if l < 0 || l >= k.opts.Levels {
			continue
		}
		if err := k.spillOneLocked(t, l); err != nil {
			return err
		}
		spilled++
	}
	k.sampleMemory()
	if k.btr != nil {
		k.btr.Add(k.btrParent, "spill", t0, time.Now(),
			trace.I("levels", int64(spilled)), trace.I("spilled_bytes", int64(t.SpilledBytes())))
	}
	return nil
}

// SpillAll tiers the whole store down to disk.
func (k *Kernel) SpillAll() error { return k.SpillLevels(nil) }

// Unspill brings every spilled level back to the heap and releases the
// retired mappings. Quiescent-boundary only.
func (k *Kernel) Unspill() error {
	k.checkOpen()
	t := k.tier.Load()
	if t == nil {
		return nil
	}
	k.spillMu.Lock()
	defer k.spillMu.Unlock()
	if err := t.UnspillAll(k.store); err != nil {
		return err
	}
	t.ReleaseRetired()
	k.sampleMemory()
	return nil
}

// spillOneLocked spills one level with the spill mutex held.
func (k *Kernel) spillOneLocked(t *spill.Tier, level int) error {
	return t.SpillLevel(k.store, level)
}

// spillColdest is the budget ladder's spill rung: with the byte budget
// still busted after forced GC, cache shrink, and threshold
// degradation, spill levels deepest-first until usage drops below the
// soft threshold (or nothing spillable remains). Returns whether any
// level was spilled. Quiescent (budgetGate) only.
func (k *Kernel) spillColdest(live uint64, mem *uint64) bool {
	t := k.tier.Load()
	if t == nil {
		return false
	}
	k.spillMu.Lock()
	defer k.spillMu.Unlock()
	t0 := time.Now()
	var spilled int
	for l := k.opts.Levels - 1; l >= 0; l-- {
		if t.IsSpilled(l) {
			continue
		}
		if err := k.spillOneLocked(t, l); err != nil {
			// Disk trouble must not turn into a wrong answer; fall through
			// to the *BudgetError rung with whatever was spilled so far.
			break
		}
		spilled++
		*mem = k.approxMem(live)
		if !k.budget.overSoft(live, *mem) {
			break
		}
	}
	if spilled == 0 {
		return false
	}
	k.budget.spills.Add(1)
	k.sampleMemory()
	*mem = k.approxMem(live)
	if k.btr != nil {
		k.btr.Add(k.btrParent, "spill", t0, time.Now(),
			trace.I("levels", int64(spilled)), trace.I("spilled_bytes", int64(t.SpilledBytes())))
	}
	return true
}

// MemReport is the per-manager memory-tiering breakdown: how many bytes
// are heap-resident vs. spilled, and where each level lives.
type MemReport struct {
	ResidentBytes uint64
	SpilledBytes  uint64
	Levels        []LevelMem
}

// LevelMem describes one variable level's storage.
type LevelMem struct {
	Level   int
	Nodes   uint64
	Bytes   uint64
	Spilled bool
}

// MemReport returns the tiering breakdown. Levels with no storage are
// omitted. Safe at quiescent boundaries (the manager serializes it).
func (k *Kernel) MemReport() MemReport {
	k.checkOpen()
	r := MemReport{ResidentBytes: k.store.ResidentBytes()}
	t := k.tier.Load()
	if t != nil {
		r.SpilledBytes = t.SpilledBytes()
	}
	for l := 0; l < k.opts.Levels; l++ {
		bytes, mapped := k.store.LevelBytes(l)
		if t != nil {
			if sb := t.LevelBytes(l); sb > 0 {
				// Portable spill drops the blocks entirely; report the
				// on-disk footprint instead of the (zero) heap one.
				bytes, mapped = sb, true
			}
		}
		nodes := k.store.NodesAtLevel(l)
		if bytes == 0 && nodes == 0 {
			continue
		}
		r.Levels = append(r.Levels, LevelMem{Level: l, Nodes: nodes, Bytes: bytes, Spilled: mapped})
	}
	return r
}

// closeSpill tears the tier down with the kernel; spill files are
// scratch state scoped to the kernel's lifetime.
func (k *Kernel) closeSpill() {
	if t := k.tier.Load(); t != nil {
		t.Close(true)
		k.tier.Store(nil)
	}
}
