package core

import (
	"bfbdd/internal/trace"
)

// Build tracing.
//
// A traced top-level operation arms the kernel with a trace and a parent
// span before the build starts; the workers then record per-level
// expansion and reduction spans (the live, request-attributed counterpart
// of the stats.Worker phase timers) and the collector records a gc span.
// The armed trace is published before any worker goroutine of the build
// is spawned and cleared after every worker has quiesced, so the plain
// fields need no synchronization — the go statement provides the
// happens-before edge, exactly like the kernel's other per-build state
// (pending queues, opDone).
//
// When no trace is armed (the overwhelmingly common case) every hook is
// one nil pointer compare on a per-level — never per-operation — path.

// ArmTrace attaches a trace to the next top-level operation: per-level
// phase spans are recorded as children of parent. Must be called with the
// kernel quiescent (no build in flight), like every other top-level
// entry point.
func (k *Kernel) ArmTrace(t *trace.Trace, parent trace.SpanID) {
	k.btr, k.btrParent = t, parent
}

// DisarmTrace detaches the armed trace after the build completes.
func (k *Kernel) DisarmTrace() {
	k.btr, k.btrParent = nil, 0
}
