package core

import (
	"math/rand"
	"testing"

	"bfbdd/internal/node"
)

func TestReorderLevelsSemantics(t *testing.T) {
	k := NewKernel(Options{Levels: 6, Engine: EnginePBF, EvalThreshold: 16})
	o := newTruthOracle(k, 6, 77)
	for i := 0; i < 60; i++ {
		o.step()
	}
	// Pin everything so the reorder rebuild covers it.
	pins := make([]*Pin, len(o.refs))
	for i, r := range o.refs {
		pins[i] = k.Pin(r)
	}

	rng := rand.New(rand.NewSource(3))
	levelMap := rng.Perm(6)
	k.ReorderLevels(levelMap)

	// Semantics under the permuted order: variable at old level l now
	// sits at levelMap[l], so assignments must be re-indexed.
	assign := make([]bool, 6)
	for idx := range o.refs {
		r := pins[idx].Ref()
		for row := 0; row < 64; row++ {
			for oldLvl := 0; oldLvl < 6; oldLvl++ {
				assign[levelMap[oldLvl]] = row>>(6-1-oldLvl)&1 == 1
			}
			want := o.masks[idx]>>row&1 == 1
			if got := k.Eval(r, assign); got != want {
				t.Fatalf("fn %d row %d wrong after reorder", idx, row)
			}
		}
	}
	// Canonicity: functions with equal truth tables share refs after the
	// rebuild too.
	for i := range pins {
		for j := i + 1; j < len(pins); j++ {
			sameRef := pins[i].Ref() == pins[j].Ref()
			sameFn := o.masks[i] == o.masks[j]
			if sameRef != sameFn {
				t.Fatalf("canonicity broken after reorder: %d vs %d", i, j)
			}
		}
	}
	roots := make([]node.Ref, len(pins))
	for i, p := range pins {
		roots[i] = p.Ref()
	}
	checkInvariants(t, k, roots)
}

func TestReorderLevelsIdentityNoop(t *testing.T) {
	k := NewKernel(Options{Levels: 4, Engine: EnginePBF})
	f := k.Apply(OpAnd, k.VarRef(0), k.VarRef(3))
	p := k.Pin(f)
	before := p.Ref()
	k.ReorderLevels([]int{0, 1, 2, 3})
	if p.Ref() != before {
		t.Fatal("identity reorder rebuilt the forest")
	}
}

func TestReorderLevelsPanics(t *testing.T) {
	k := NewKernel(Options{Levels: 3, Engine: EnginePBF})
	for _, bad := range [][]int{{0, 1}, {0, 0, 2}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ReorderLevels(%v) did not panic", bad)
				}
			}()
			k.ReorderLevels(bad)
		}()
	}
}

func TestReorderCollectsOldForest(t *testing.T) {
	k := NewKernel(Options{Levels: 10, Engine: EnginePBF})
	f := node.One
	for v := 0; v < 10; v++ {
		f = k.Apply(OpAnd, f, k.VarRef(v))
	}
	p := k.Pin(f)
	rev := make([]int, 10)
	for i := range rev {
		rev[i] = 9 - i
	}
	k.ReorderLevels(rev)
	// The conjunction has the same size under any order; the old forest
	// must be gone.
	if got := k.Size(p.Ref()); got != 10 {
		t.Fatalf("size after reorder = %d want 10", got)
	}
	if live := k.NumNodes(); live != 10 {
		t.Fatalf("live nodes after reorder = %d want 10 (old forest leaked)", live)
	}
}

func TestReorderParallelKernel(t *testing.T) {
	k := NewKernel(Options{
		Levels: 8, Engine: EnginePar, Workers: 3,
		EvalThreshold: 16, GroupSize: 4, Stealing: true,
	})
	f := node.Zero
	for v := 0; v < 8; v++ {
		f = k.Apply(OpXor, f, k.VarRef(v))
	}
	p := k.Pin(f)
	sizeBefore := k.Size(p.Ref())
	k.ReorderLevels([]int{3, 1, 7, 5, 0, 2, 6, 4})
	if k.Size(p.Ref()) != sizeBefore {
		t.Fatalf("parity size should be order-independent: %d vs %d",
			k.Size(p.Ref()), sizeBefore)
	}
	// Still fully functional after reordering.
	g := k.Apply(OpXor, p.Ref(), p.Ref())
	if g != node.Zero {
		t.Fatal("kernel unusable after reorder")
	}
	checkInvariants(t, k, []node.Ref{p.Ref()})
}
