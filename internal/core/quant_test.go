package core

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"bfbdd/internal/node"
)

func quantKernel() *Kernel {
	return NewKernel(Options{Levels: 6, Engine: EnginePBF, EvalThreshold: 16, GroupSize: 4})
}

// randomFunc builds a random function and its truth mask.
func randomFunc(k *Kernel, rng *rand.Rand, nvars, steps int) (node.Ref, uint64) {
	o := newTruthOracle(k, nvars, rng.Int63())
	for i := 0; i < steps; i++ {
		o.step()
	}
	idx := len(o.refs) - 1
	return o.refs[idx], o.masks[idx]
}

// maskExists computes ∃ var v over a 6-variable truth mask.
func maskExists(m uint64, v, nvars int) uint64 {
	var out uint64
	for row := 0; row < 1<<nvars; row++ {
		flipped := row ^ (1 << (nvars - 1 - v)) // toggle bit of var v
		if m>>row&1 == 1 || m>>flipped&1 == 1 {
			out |= 1 << row
		}
	}
	return out
}

func maskForall(m uint64, v, nvars int) uint64 {
	var out uint64
	for row := 0; row < 1<<nvars; row++ {
		flipped := row ^ (1 << (nvars - 1 - v))
		if m>>row&1 == 1 && m>>flipped&1 == 1 {
			out |= 1 << row
		}
	}
	return out
}

func maskRestrict(m uint64, v int, val bool, nvars int) uint64 {
	var out uint64
	for row := 0; row < 1<<nvars; row++ {
		fixed := row &^ (1 << (nvars - 1 - v))
		if val {
			fixed |= 1 << (nvars - 1 - v)
		}
		if m>>fixed&1 == 1 {
			out |= 1 << row
		}
	}
	return out
}

func maskOf(k *Kernel, f node.Ref, nvars int) uint64 {
	var m uint64
	assign := make([]bool, k.Levels())
	for row := 0; row < 1<<nvars; row++ {
		for v := 0; v < nvars; v++ {
			assign[v] = row>>(nvars-1-v)&1 == 1
		}
		if k.Eval(f, assign) {
			m |= 1 << row
		}
	}
	return m
}

func TestExistsForallAgainstTruthTables(t *testing.T) {
	k := quantKernel()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		f, m := randomFunc(k, rng, 6, 40)
		vars := []int{rng.Intn(6)}
		if trial%2 == 0 {
			vars = append(vars, rng.Intn(6))
		}
		cube := k.CubeRef(vars)

		wantE, wantA := m, m
		done := map[int]bool{}
		for _, v := range vars {
			if done[v] {
				continue
			}
			done[v] = true
			wantE = maskExists(wantE, v, 6)
			wantA = maskForall(wantA, v, 6)
		}
		if got := maskOf(k, k.Exists(f, cube), 6); got != wantE {
			t.Fatalf("trial %d: Exists mask %x want %x (vars %v)", trial, got, wantE, vars)
		}
		if got := maskOf(k, k.Forall(f, cube), 6); got != wantA {
			t.Fatalf("trial %d: Forall mask %x want %x (vars %v)", trial, got, wantA, vars)
		}
	}
}

func TestQuantifierIdentities(t *testing.T) {
	k := quantKernel()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		f, _ := randomFunc(k, rng, 6, 30)
		v := rng.Intn(6)
		cube := k.CubeRef([]int{v})

		// ∃v f = f|v=0 ∨ f|v=1 ; ∀v f = f|v=0 ∧ f|v=1.
		f0 := k.Restrict(f, v, false)
		f1 := k.Restrict(f, v, true)
		if k.Exists(f, cube) != k.Apply(OpOr, f0, f1) {
			t.Fatalf("trial %d: exists identity failed", trial)
		}
		if k.Forall(f, cube) != k.Apply(OpAnd, f0, f1) {
			t.Fatalf("trial %d: forall identity failed", trial)
		}
		// De Morgan over quantifiers: ¬∃v f = ∀v ¬f.
		if k.Not(k.Exists(f, cube)) != k.Forall(k.Not(f), cube) {
			t.Fatalf("trial %d: quantifier De Morgan failed", trial)
		}
		// Quantifying a variable not in the support is the identity.
		outside := k.CubeRef([]int{(v + 1) % 6})
		g := k.Restrict(f, (v+1)%6, false) // eliminate the var first
		if k.Exists(g, outside) != g {
			t.Fatalf("trial %d: exists over absent var changed f", trial)
		}
	}
}

func TestRestrictAgainstTruthTables(t *testing.T) {
	k := quantKernel()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		f, m := randomFunc(k, rng, 6, 40)
		v := rng.Intn(6)
		val := rng.Intn(2) == 1
		got := maskOf(k, k.Restrict(f, v, val), 6)
		want := maskRestrict(m, v, val, 6)
		if got != want {
			t.Fatalf("trial %d: restrict(%d,%v) mask %x want %x", trial, v, val, got, want)
		}
	}
}

func TestComposeAgainstShannon(t *testing.T) {
	// compose(f, v, g) must equal ITE(g, f|v=1, f|v=0).
	k := quantKernel()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		f, _ := randomFunc(k, rng, 6, 30)
		g, _ := randomFunc(k, rng, 6, 20)
		v := rng.Intn(6)
		got := k.Compose(f, v, g)
		want := k.ITE(g, k.Restrict(f, v, true), k.Restrict(f, v, false))
		if got != want {
			t.Fatalf("trial %d: compose != Shannon form", trial)
		}
	}
}

func TestComposeIdentity(t *testing.T) {
	k := quantKernel()
	rng := rand.New(rand.NewSource(37))
	f, _ := randomFunc(k, rng, 6, 30)
	// Substituting a variable with itself is the identity.
	for v := 0; v < 6; v++ {
		if k.Compose(f, v, k.VarRef(v)) != f {
			t.Fatalf("compose(f, %d, x%d) != f", v, v)
		}
	}
}

func TestITETruthTable(t *testing.T) {
	k := quantKernel()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		f, mf := randomFunc(k, rng, 6, 20)
		g, mg := randomFunc(k, rng, 6, 20)
		h, mh := randomFunc(k, rng, 6, 20)
		got := maskOf(k, k.ITE(f, g, h), 6)
		want := (mf & mg) | (mh &^ mf)
		if got != want {
			t.Fatalf("trial %d: ITE mask %x want %x", trial, got, want)
		}
	}
}

func TestSatCountAgainstEnumeration(t *testing.T) {
	k := quantKernel()
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		f, m := randomFunc(k, rng, 6, 30)
		want := 0
		for row := 0; row < 64; row++ {
			if m>>row&1 == 1 {
				want++
			}
		}
		if got := k.SatCount(f); got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("trial %d: SatCount = %v want %d", trial, got, want)
		}
	}
}

func TestSatCountScaling(t *testing.T) {
	// Over n variables, a single variable has 2^(n-1) satisfying rows.
	k := NewKernel(Options{Levels: 40, Engine: EnginePBF})
	for _, lvl := range []int{0, 17, 39} {
		want := new(big.Int).Lsh(big.NewInt(1), 39)
		if got := k.SatCount(k.VarRef(lvl)); got.Cmp(want) != 0 {
			t.Fatalf("SatCount(x%d) = %v want %v", lvl, got, want)
		}
	}
	if k.SatCount(node.One).Cmp(new(big.Int).Lsh(big.NewInt(1), 40)) != 0 {
		t.Fatal("SatCount(1) wrong")
	}
	if k.SatCount(node.Zero).Sign() != 0 {
		t.Fatal("SatCount(0) wrong")
	}
}

func TestAnySat(t *testing.T) {
	k := quantKernel()
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		f, m := randomFunc(k, rng, 6, 30)
		a, ok := k.AnySat(f)
		if m == 0 {
			if ok {
				t.Fatalf("trial %d: AnySat on unsat function returned %v", trial, a)
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: AnySat failed on satisfiable function", trial)
		}
		// Every completion of the partial assignment must satisfy f;
		// check with don't-cares set both ways on a few samples.
		assign := make([]bool, k.Levels())
		for s := 0; s < 8; s++ {
			for i := range assign[:6] {
				switch a[i] {
				case 1:
					assign[i] = true
				case 0:
					assign[i] = false
				default:
					assign[i] = rng.Intn(2) == 1
				}
			}
			if !k.Eval(f, assign) {
				t.Fatalf("trial %d: AnySat assignment does not satisfy", trial)
			}
		}
	}
}

func TestSupport(t *testing.T) {
	k := quantKernel()
	x0, x2, x4 := k.VarRef(0), k.VarRef(2), k.VarRef(4)
	f := k.Apply(OpAnd, x0, k.Apply(OpXor, x2, x4))
	got := k.Support(f)
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Support = %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v want %v", got, want)
		}
	}
	if len(k.Support(node.One)) != 0 {
		t.Fatal("Support of constant not empty")
	}
}

func TestCubeRef(t *testing.T) {
	k := quantKernel()
	cube := k.CubeRef([]int{3, 1, 5, 1}) // unsorted with duplicate
	// Expect x1 ∧ x3 ∧ x5 as a 3-node chain.
	if k.Size(cube) != 3 {
		t.Fatalf("cube size = %d want 3", k.Size(cube))
	}
	want := k.Apply(OpAnd, k.VarRef(1), k.Apply(OpAnd, k.VarRef(3), k.VarRef(5)))
	if cube != want {
		t.Fatalf("cube %v != conjunction %v", cube, want)
	}
	if k.CubeRef(nil) != node.One {
		t.Fatal("empty cube should be One")
	}
}

func TestEvalQuick(t *testing.T) {
	// Property: Eval of an AND of two vars equals the conjunction of the
	// assignment bits.
	k := NewKernel(Options{Levels: 8, Engine: EngineDF})
	f := k.Apply(OpAnd, k.VarRef(2), k.VarRef(5))
	fn := func(bits uint8) bool {
		assign := make([]bool, 8)
		for i := range assign {
			assign[i] = bits>>i&1 == 1
		}
		return k.Eval(f, assign) == (assign[2] && assign[5])
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}
