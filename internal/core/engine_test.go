package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bfbdd/internal/node"
)

// testEngines enumerates kernel configurations exercised by the
// cross-engine tests. Small thresholds and group sizes force heavy
// context pushing and stealing.
func testEngines() []Options {
	return []Options{
		{Engine: EngineDF},
		{Engine: EngineBF},
		{Engine: EngineHybrid, EvalThreshold: 8},
		{Engine: EnginePBF, EvalThreshold: 8, GroupSize: 4},
		{Engine: EnginePBF, EvalThreshold: 64, GroupSize: 16},
		{Engine: EnginePar, Workers: 2, EvalThreshold: 8, GroupSize: 4, Stealing: true},
		{Engine: EnginePar, Workers: 4, EvalThreshold: 16, GroupSize: 4, Stealing: true},
		{Engine: EnginePar, Workers: 4, EvalThreshold: 16, GroupSize: 4, Stealing: false},
	}
}

func optName(o Options) string {
	return fmt.Sprintf("%s-w%d-t%d", o.Engine, max(o.Workers, 1), o.EvalThreshold)
}

// truthOracle builds a random formula DAG over nvars ≤ 6 variables,
// tracking exact truth tables as uint64 bitmasks alongside the BDD refs.
type truthOracle struct {
	k     *Kernel
	nvars int
	rng   *rand.Rand
	refs  []node.Ref
	masks []uint64
	full  uint64 // mask of the 2^nvars valid rows
}

func newTruthOracle(k *Kernel, nvars int, seed int64) *truthOracle {
	if nvars > 6 {
		panic("truthOracle supports at most 6 variables")
	}
	o := &truthOracle{k: k, nvars: nvars, rng: rand.New(rand.NewSource(seed))}
	o.full = ^uint64(0) >> (64 - (1 << nvars))
	o.refs = append(o.refs, node.Zero, node.One)
	o.masks = append(o.masks, 0, o.full)
	for v := 0; v < nvars; v++ {
		o.refs = append(o.refs, k.VarRef(v))
		var m uint64
		for row := 0; row < 1<<nvars; row++ {
			if row>>(nvars-1-v)&1 == 1 {
				m |= 1 << row
			}
		}
		o.masks = append(o.masks, m)
	}
	return o
}

func maskOp(op Op, a, b, full uint64) uint64 {
	switch op {
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpNand:
		return full &^ (a & b)
	case OpNor:
		return full &^ (a | b)
	case OpXnor:
		return full &^ (a ^ b)
	case OpDiff:
		return a &^ b
	case OpImp:
		return (full &^ a) | b
	}
	panic("maskOp: " + op.String())
}

// step applies a random op to two random existing formulas.
func (o *truthOracle) step() {
	op := Op(o.rng.Intn(int(numBinaryOps)))
	i, j := o.rng.Intn(len(o.refs)), o.rng.Intn(len(o.refs))
	r := o.k.Apply(op, o.refs[i], o.refs[j])
	o.refs = append(o.refs, r)
	o.masks = append(o.masks, maskOp(op, o.masks[i], o.masks[j], o.full))
}

// verify checks semantics (Eval vs truth table) and canonicity (equal
// truth tables ⇔ equal refs) for every formula built so far.
func (o *truthOracle) verify(t *testing.T) {
	t.Helper()
	assign := make([]bool, o.k.Levels())
	for idx, r := range o.refs {
		for row := 0; row < 1<<o.nvars; row++ {
			for v := 0; v < o.nvars; v++ {
				assign[v] = row>>(o.nvars-1-v)&1 == 1
			}
			want := o.masks[idx]>>row&1 == 1
			if got := o.k.Eval(r, assign); got != want {
				t.Fatalf("formula %d row %d: Eval=%v want %v", idx, row, got, want)
			}
		}
	}
	for i := range o.refs {
		for j := i + 1; j < len(o.refs); j++ {
			sameRef := o.refs[i] == o.refs[j]
			sameFn := o.masks[i] == o.masks[j]
			if sameRef != sameFn {
				t.Fatalf("canonicity violation: formulas %d,%d sameRef=%v sameFn=%v",
					i, j, sameRef, sameFn)
			}
		}
	}
}

// checkInvariants walks the reachable graph from the given roots and
// verifies structural BDD invariants.
func checkInvariants(t *testing.T, k *Kernel, roots []node.Ref) {
	t.Helper()
	type key struct {
		lvl       int
		low, high node.Ref
	}
	seenKey := make(map[key]node.Ref)
	seen := make(map[node.Ref]bool)
	var stack []node.Ref
	for _, r := range roots {
		if !r.Valid() {
			t.Fatalf("invalid root ref %v", r)
		}
		if !r.IsTerminal() && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := k.Store().Node(r)
		if nd.Low == nd.High {
			t.Fatalf("unreduced node %v: low == high == %v", r, nd.Low)
		}
		kk := key{r.Level(), nd.Low, nd.High}
		if prev, ok := seenKey[kk]; ok && prev != r {
			t.Fatalf("duplicate nodes %v and %v for (%d,%v,%v)", prev, r, kk.lvl, kk.low, kk.high)
		}
		seenKey[kk] = r
		for _, c := range [2]node.Ref{nd.Low, nd.High} {
			if !c.Valid() {
				t.Fatalf("node %v has invalid child", r)
			}
			if !c.IsTerminal() {
				if c.Level() <= r.Level() {
					t.Fatalf("ordering violation: node %v child %v", r, c)
				}
				if !seen[c] {
					seen[c] = true
					stack = append(stack, c)
				}
			}
		}
	}
}

func TestEnginesAgainstTruthTables(t *testing.T) {
	for _, opts := range testEngines() {
		opts := opts
		t.Run(optName(opts), func(t *testing.T) {
			opts.Levels = 6
			k := NewKernel(opts)
			o := newTruthOracle(k, 6, 42)
			for i := 0; i < 150; i++ {
				o.step()
			}
			o.verify(t)
			checkInvariants(t, k, o.refs)
		})
	}
}

func TestEnginesCrossCanonical(t *testing.T) {
	// Within a single kernel, the configured engine and a direct
	// depth-first evaluation must return identical canonical refs.
	for _, opts := range testEngines() {
		opts := opts
		if opts.Engine == EngineDF {
			continue
		}
		t.Run(optName(opts), func(t *testing.T) {
			opts.Levels = 8
			k := NewKernel(opts)
			rng := rand.New(rand.NewSource(7))
			refs := []node.Ref{node.Zero, node.One}
			for v := 0; v < 8; v++ {
				refs = append(refs, k.VarRef(v))
			}
			for i := 0; i < 200; i++ {
				op := Op(rng.Intn(int(numBinaryOps)))
				f := refs[rng.Intn(len(refs))]
				g := refs[rng.Intn(len(refs))]
				got := k.Apply(op, f, g)
				want := k.workers[0].dfApply(op, f, g)
				k.endTopLevel()
				if got != want {
					t.Fatalf("step %d: engine %v != df %v for %v(%v,%v)", i, got, want, op, f, g)
				}
				refs = append(refs, got)
			}
			checkInvariants(t, k, refs)
		})
	}
}

func TestTerminalRulesExhaustive(t *testing.T) {
	// Every op on two constants must be a terminal case with the right
	// value, for all four constant combinations.
	consts := [2]node.Ref{node.Zero, node.One}
	for op := Op(0); op < numBinaryOps; op++ {
		for i, f := range consts {
			for j, g := range consts {
				r, ok := terminal(op, f, g)
				if !ok {
					t.Fatalf("%v(%d,%d) not terminal", op, i, j)
				}
				want := evalConst(op, i == 1, j == 1)
				if r.IsOne() != want {
					t.Fatalf("%v(%d,%d) = %v want %v", op, i, j, r, want)
				}
			}
		}
	}
}

func TestTerminalRulesSound(t *testing.T) {
	// Whenever terminal() claims a result for symbolic operands, the
	// result must agree with the brute-force evaluation. Use one real
	// variable node and the constants.
	k := NewKernel(Options{Levels: 2, Engine: EngineDF})
	x := k.VarRef(0)
	nx := k.Not(x)
	operands := []node.Ref{node.Zero, node.One, x, nx}
	assign := [][]bool{{false, false}, {true, false}}
	for op := Op(0); op < numBinaryOps; op++ {
		for _, f := range operands {
			for _, g := range operands {
				r, ok := terminal(op, f, g)
				if !ok {
					continue
				}
				for _, a := range assign {
					want := evalConst(op, k.Eval(f, a), k.Eval(g, a))
					if got := k.Eval(r, a); got != want {
						t.Fatalf("terminal %v(%v,%v) wrong under %v: got %v want %v",
							op, f, g, a, got, want)
					}
				}
			}
		}
	}
}

func TestNot(t *testing.T) {
	k := NewKernel(Options{Levels: 4, Engine: EnginePBF, EvalThreshold: 4})
	x0, x1 := k.VarRef(0), k.VarRef(1)
	f := k.Apply(OpAnd, x0, x1)
	nf := k.Not(f)
	if k.Not(nf) != f {
		t.Fatal("double negation is not the identity")
	}
	if k.Apply(OpAnd, f, nf) != node.Zero {
		t.Fatal("f AND NOT f != 0")
	}
	if k.Apply(OpOr, f, nf) != node.One {
		t.Fatal("f OR NOT f != 1")
	}
	if k.Not(node.Zero) != node.One || k.Not(node.One) != node.Zero {
		t.Fatal("constant negation wrong")
	}
}

func TestMkNodeReductionRule(t *testing.T) {
	k := NewKernel(Options{Levels: 2, Engine: EngineDF})
	x1 := k.VarRef(1)
	if got := k.MkNode(0, x1, x1); got != x1 {
		t.Fatalf("MkNode(l, f, f) = %v want %v", got, x1)
	}
	a := k.MkNode(0, node.Zero, x1)
	b := k.MkNode(0, node.Zero, x1)
	if a != b {
		t.Fatal("MkNode not canonical")
	}
}

func TestDeepChain(t *testing.T) {
	// A long conjunction chain exercises level-by-level queues.
	const n = 64
	for _, opts := range testEngines() {
		opts := opts
		t.Run(optName(opts), func(t *testing.T) {
			opts.Levels = n
			k := NewKernel(opts)
			f := node.One
			for v := 0; v < n; v++ {
				f = k.Apply(OpAnd, f, k.VarRef(v))
			}
			if k.Size(f) != n {
				t.Fatalf("conjunction size = %d want %d", k.Size(f), n)
			}
			all := make([]bool, n)
			for i := range all {
				all[i] = true
			}
			if !k.Eval(f, all) {
				t.Fatal("all-ones assignment should satisfy")
			}
			all[n-1] = false
			if k.Eval(f, all) {
				t.Fatal("assignment with a zero should not satisfy")
			}
			if got := k.SatCount(f); got.Int64() != 1 {
				t.Fatalf("SatCount = %v want 1", got)
			}
		})
	}
}

func TestStatsCounting(t *testing.T) {
	opts := Options{Levels: 10, Engine: EnginePBF, EvalThreshold: 16, GroupSize: 4}
	k := NewKernel(opts)
	var f node.Ref = node.One
	for v := 0; v < 10; v++ {
		g := k.Apply(OpXor, k.VarRef(v), k.VarRef((v+1)%10))
		f = k.Apply(OpAnd, f, g)
	}
	total := k.TotalStats()
	if total.Ops == 0 {
		t.Fatal("no Shannon steps counted")
	}
	if total.ContextPushes == 0 {
		t.Fatal("tiny threshold should force context pushes")
	}
	if total.ContextPushes != total.ContextPops {
		t.Fatalf("pushes %d != pops %d", total.ContextPushes, total.ContextPops)
	}
	k.ResetStats()
	if k.TotalStats().Ops != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestParallelStressRace(t *testing.T) {
	// Heavy random workload with many workers, tiny thresholds and
	// stealing; meant to run under -race.
	opts := Options{
		Levels: 12, Engine: EnginePar, Workers: 4,
		EvalThreshold: 32, GroupSize: 8, Stealing: true,
	}
	k := NewKernel(opts)
	rng := rand.New(rand.NewSource(99))
	refs := []node.Ref{node.Zero, node.One}
	for v := 0; v < 12; v++ {
		refs = append(refs, k.VarRef(v))
	}
	for i := 0; i < 300; i++ {
		op := Op(rng.Intn(int(numBinaryOps)))
		f := refs[rng.Intn(len(refs))]
		g := refs[rng.Intn(len(refs))]
		refs = append(refs, k.Apply(op, f, g))
	}
	checkInvariants(t, k, refs)
	// At least some parallel machinery must have engaged.
	total := k.TotalStats()
	if total.Ops == 0 {
		t.Fatal("no work recorded")
	}
}
