package core

import (
	"math/big"

	"bfbdd/internal/cache"
	"bfbdd/internal/node"
)

// Exists computes ∃ cube . f: existential quantification of f over the
// variables of cube, which must be a positive cube (a conjunction of
// variables, as built by CubeRef).
func (k *Kernel) Exists(f, cube node.Ref) node.Ref {
	k.ensureReadable()
	k.InhibitGC()
	defer k.ReleaseGC()
	return k.workers[0].quantRec(opExists, f, cube)
}

// Forall computes ∀ cube . f: universal quantification.
func (k *Kernel) Forall(f, cube node.Ref) node.Ref {
	k.ensureReadable()
	k.InhibitGC()
	defer k.ReleaseGC()
	return k.workers[0].quantRec(opForall, f, cube)
}

// CubeRef builds the positive cube over the given levels (conjunction of
// the corresponding variables).
func (k *Kernel) CubeRef(levels []int) node.Ref {
	// Build bottom-up in decreasing precedence so each mkNode call has
	// already-canonical children.
	sorted := append([]int(nil), levels...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	r := node.One
	for i := len(sorted) - 1; i >= 0; i-- {
		if i+1 < len(sorted) && sorted[i] == sorted[i+1] {
			continue // duplicate level
		}
		r = k.MkNode(sorted[i], node.Zero, r)
	}
	return r
}

func (w *worker) quantRec(op Op, f, cube node.Ref) node.Ref {
	k := w.k
	st := k.store
	// Skip cube variables with higher precedence than f's top variable:
	// they do not occur in f, so quantifying them is the identity.
	for !cube.IsTerminal() && cube.Level() < f.Level() {
		cube = st.Node(cube).High
	}
	if cube.IsOne() || f.IsTerminal() {
		return f
	}
	if cube.IsZero() {
		panic("core: quantification cube must be a positive cube")
	}
	lvl := f.Level()
	if v, ok := w.cache.Lookup(lvl, uint8(op), f, cube); ok && !v.IsOpHandle() {
		w.st.CacheHits++
		return v.Ref()
	}
	nd := st.Node(f)
	var res node.Ref
	if cube.Level() == lvl {
		next := st.Node(cube).High
		// GC is inhibited for the whole quantification, so raw refs stay
		// valid across the recursive calls and Applies below.
		r0 := w.quantRec(op, nd.Low, next)
		r1 := w.quantRec(op, nd.High, next)
		if op == opExists {
			res = k.Apply(OpOr, r0, r1)
		} else {
			res = k.Apply(OpAnd, r0, r1)
		}
	} else {
		r0 := w.quantRec(op, nd.Low, cube)
		r1 := w.quantRec(op, nd.High, cube)
		res = k.mkNode(w.id, lvl, r0, r1)
	}
	w.cache.Insert(lvl, uint8(op), f, cube, cache.FromRef(res))
	return res
}

// Restrict computes f with the variable at level fixed to value.
func (k *Kernel) Restrict(f node.Ref, level int, value bool) node.Ref {
	k.ensureReadable()
	var lit node.Ref
	if value {
		lit = k.MkNode(level, node.Zero, node.One)
	} else {
		lit = k.MkNode(level, node.One, node.Zero)
	}
	k.InhibitGC()
	defer k.ReleaseGC()
	return k.workers[0].restrictRec(f, lit)
}

func (w *worker) restrictRec(f, lit node.Ref) node.Ref {
	k := w.k
	st := k.store
	llvl := lit.Level()
	if f.IsTerminal() || f.Level() > llvl {
		return f // the restricted variable does not occur in f
	}
	if f.Level() == llvl {
		nd := st.Node(f)
		if st.Node(lit).High.IsOne() {
			return nd.High
		}
		return nd.Low
	}
	lvl := f.Level()
	if v, ok := w.cache.Lookup(lvl, uint8(opRestrict), f, lit); ok && !v.IsOpHandle() {
		w.st.CacheHits++
		return v.Ref()
	}
	nd := st.Node(f)
	r0 := w.restrictRec(nd.Low, lit)
	r1 := w.restrictRec(nd.High, lit)
	res := k.mkNode(w.id, lvl, r0, r1)
	w.cache.Insert(lvl, uint8(opRestrict), f, lit, cache.FromRef(res))
	return res
}

// ITE computes if-then-else: f ? g : h.
func (k *Kernel) ITE(f, g, h node.Ref) node.Ref {
	k.InhibitGC()
	defer k.ReleaseGC()
	fg := k.Apply(OpAnd, f, g)
	nfh := k.Apply(OpDiff, h, f) // h AND NOT f
	return k.Apply(OpOr, fg, nfh)
}

// Compose substitutes the function g for the variable at level in f.
func (k *Kernel) Compose(f node.Ref, level int, g node.Ref) node.Ref {
	k.ensureReadable()
	k.InhibitGC()
	defer k.ReleaseGC()
	memo := make(map[node.Ref]node.Ref)
	return k.composeRec(f, level, g, memo)
}

func (k *Kernel) composeRec(f node.Ref, level int, g node.Ref, memo map[node.Ref]node.Ref) node.Ref {
	if f.IsTerminal() || f.Level() > level {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	nd := k.store.Node(f)
	var res node.Ref
	if f.Level() == level {
		res = k.ITE(g, nd.High, nd.Low)
	} else {
		r0 := k.composeRec(nd.Low, level, g, memo)
		r1 := k.composeRec(nd.High, level, g, memo)
		// g may introduce variables above f's level, so rebuild with ITE
		// on f's variable rather than mkNode, which would assume the
		// children stay below this level.
		v := k.MkNode(f.Level(), node.Zero, node.One)
		res = k.ITE(v, r1, r0)
	}
	memo[f] = res
	return res
}

// SatCount returns the exact number of satisfying assignments of f over
// all of the kernel's variables.
func (k *Kernel) SatCount(f node.Ref) *big.Int {
	k.ensureReadable()
	memo := make(map[node.Ref]*big.Int)
	c := k.satCountRec(f, memo)
	// Variables with higher precedence than f's top variable are free.
	return new(big.Int).Lsh(c, uint(min(f.Level(), k.opts.Levels)))
}

// satCountRec counts assignments of the variables at levels ≥ f's level.
func (k *Kernel) satCountRec(f node.Ref, memo map[node.Ref]*big.Int) *big.Int {
	if f.IsZero() {
		return big.NewInt(0)
	}
	if f.IsOne() {
		return big.NewInt(1)
	}
	if c, ok := memo[f]; ok {
		return c
	}
	nd := k.store.Node(f)
	lvl := f.Level()
	c0 := k.satCountRec(nd.Low, memo)
	c1 := k.satCountRec(nd.High, memo)
	gap := func(child node.Ref) uint {
		cl := child.Level()
		if cl == node.TermLevel {
			cl = k.opts.Levels
		}
		return uint(cl - lvl - 1)
	}
	c := new(big.Int).Lsh(c0, gap(nd.Low))
	c.Add(c, new(big.Int).Lsh(c1, gap(nd.High)))
	memo[f] = c
	return c
}

// AnySat returns one satisfying assignment of f as a slice indexed by
// level: 0, 1, or -1 (don't care). ok is false when f is unsatisfiable.
func (k *Kernel) AnySat(f node.Ref) (assignment []int8, ok bool) {
	k.ensureReadable()
	if f.IsZero() {
		return nil, false
	}
	a := make([]int8, k.opts.Levels)
	for i := range a {
		a[i] = -1
	}
	for !f.IsTerminal() {
		nd := k.store.Node(f)
		// In a reduced BDD a branch is unsatisfiable iff it is the Zero
		// terminal, so any non-Zero branch leads to One.
		if nd.Low.IsZero() {
			a[f.Level()] = 1
			f = nd.High
		} else {
			a[f.Level()] = 0
			f = nd.Low
		}
	}
	return a, true
}

// Eval evaluates f under a complete assignment indexed by level.
func (k *Kernel) Eval(f node.Ref, assignment []bool) bool {
	k.ensureReadable()
	for !f.IsTerminal() {
		nd := k.store.Node(f)
		if assignment[f.Level()] {
			f = nd.High
		} else {
			f = nd.Low
		}
	}
	return f.IsOne()
}

// Size returns the number of internal nodes in f's reachable subgraph.
func (k *Kernel) Size(f node.Ref) int { return k.SizeMulti([]node.Ref{f}) }

// SizeMulti returns the number of distinct internal nodes reachable from
// any of the given roots (shared nodes counted once).
func (k *Kernel) SizeMulti(roots []node.Ref) int {
	k.ensureReadable()
	seen := make(map[node.Ref]bool)
	var stack []node.Ref
	for _, r := range roots {
		if !r.IsTerminal() && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	count := 0
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		nd := k.store.Node(r)
		for _, c := range [2]node.Ref{nd.Low, nd.High} {
			if !c.IsTerminal() && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return count
}

// Support returns the sorted levels of the variables occurring in f.
func (k *Kernel) Support(f node.Ref) []int {
	k.ensureReadable()
	present := make(map[int]bool)
	seen := make(map[node.Ref]bool)
	var stack []node.Ref
	if !f.IsTerminal() {
		stack = append(stack, f)
		seen[f] = true
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		present[r.Level()] = true
		nd := k.store.Node(r)
		for _, c := range [2]node.Ref{nd.Low, nd.High} {
			if !c.IsTerminal() && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	levels := make([]int, 0, len(present))
	for l := 0; l < k.opts.Levels; l++ {
		if present[l] {
			levels = append(levels, l)
		}
	}
	return levels
}
