package core

import (
	"fmt"

	"bfbdd/internal/node"
)

// ReorderLevels changes the variable order: levelMap[old] gives the new
// level of the variable currently at level old, and must be a permutation
// of [0, Levels). Every pinned BDD is rebuilt under the new order and its
// pin updated in place; the old-order forest is then garbage collected.
//
// The paper cites Rudell's dynamic variable reordering as the
// complementary line of work on BDD sizes (§1, [22]). Classic sifting
// relies on in-place adjacent level swaps, which require node identities
// that survive relabeling; with packed (level, worker, index) refs we
// instead rebuild the pinned functions under the target order — an
// O(size × levels) transformation that reuses the engine's own Apply
// machinery, trading swap efficiency for compatibility with the
// compaction-oriented memory layout.
func (k *Kernel) ReorderLevels(levelMap []int) {
	if len(levelMap) != k.opts.Levels {
		panic(fmt.Sprintf("core: ReorderLevels with %d entries for %d levels",
			len(levelMap), k.opts.Levels))
	}
	seen := make([]bool, len(levelMap))
	identity := true
	for old, nw := range levelMap {
		if nw < 0 || nw >= len(levelMap) || seen[nw] {
			panic("core: ReorderLevels map is not a permutation")
		}
		seen[nw] = true
		if nw != old {
			identity = false
		}
	}
	if identity {
		return
	}
	// The rebuild traverses every pinned node and the final GC replaces
	// arenas; run fully resident.
	k.ensureAllResident("ReorderLevels")

	k.InhibitGC()
	// Snapshot the pins; Apply (used by the rebuild) takes pinsMu for its
	// operand pins, so the registry must not be held while rebuilding.
	k.pinsMu.Lock()
	snapshot := make([]*Pin, 0, len(k.pins))
	for p := range k.pins {
		snapshot = append(snapshot, p)
	}
	k.pinsMu.Unlock()

	memo := make(map[node.Ref]node.Ref)
	rebuilt := make([]node.Ref, len(snapshot))
	for i, p := range snapshot {
		rebuilt[i] = k.permuteRec(p.ref, levelMap, memo)
	}
	k.pinsMu.Lock()
	for i, p := range snapshot {
		p.ref = rebuilt[i]
	}
	k.pinsMu.Unlock()
	k.ReleaseGC()

	// The old-order forest is dead; compact it away (also invalidates
	// every compute cache, whose entries mix orders otherwise).
	k.GC()
}

// permuteRec rebuilds f with each variable moved to its new level. The
// ITE on the renamed variable handles arbitrary permutations, including
// ones that invert the relative order of f's variables.
func (k *Kernel) permuteRec(f node.Ref, levelMap []int, memo map[node.Ref]node.Ref) node.Ref {
	if f.IsTerminal() {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	nd := k.store.Node(f)
	r0 := k.permuteRec(nd.Low, levelMap, memo)
	r1 := k.permuteRec(nd.High, levelMap, memo)
	v := k.MkNode(levelMap[f.Level()], node.Zero, node.One)
	res := k.ITE(v, r1, r0)
	memo[f] = res
	return res
}
