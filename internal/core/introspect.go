package core

import (
	"bfbdd/internal/node"
)

// CanonicalSignature returns a deterministic, manager-independent
// encoding of the multi-rooted BDD reachable from roots. Refs are only
// meaningful inside their own kernel (they pack arena coordinates), so
// canonical handles from two managers cannot be compared directly; the
// signature re-numbers nodes in a traversal order that depends only on
// the diagram's structure, making the encodings comparable across
// managers.
//
// Nodes are numbered by completion order of a depth-first traversal of
// the roots in argument order (low child explored before high). Codes 0
// and 1 are the terminals; the i-th internal node to complete gets code
// i+2, and its triple (level, lowCode, highCode) sits at sig[3(i)] —
// so the layout is [triples for nodes 2..n+1, then one code per root].
//
// Because BDDs are canonical, two kernels over the same variable order
// produce equal signatures exactly when the corresponding roots denote
// the same Boolean functions. This is the cross-engine comparison hook
// used by the differential oracle (internal/oracle).
func (k *Kernel) CanonicalSignature(roots []node.Ref) []uint64 {
	k.checkOpen()
	k.ensureReadable()
	code := make(map[node.Ref]uint64)
	var sig []uint64
	next := uint64(2)
	var visit func(r node.Ref) uint64
	visit = func(r node.Ref) uint64 {
		if r.IsZero() {
			return 0
		}
		if r.IsOne() {
			return 1
		}
		if c, ok := code[r]; ok {
			return c
		}
		nd := k.store.Node(r)
		lo := visit(nd.Low)
		hi := visit(nd.High)
		c := next
		next++
		code[r] = c
		sig = append(sig, uint64(r.Level()), lo, hi)
		return c
	}
	for _, r := range roots {
		sig = append(sig, visit(r))
	}
	return sig
}

// SetBudget replaces the kernel's node and byte budgets at a top-level
// operation boundary (0 disables the corresponding limit). Disabling the
// budget also lifts any threshold degradation still in effect. The
// differential oracle uses this to probe budget-abort recovery in the
// middle of an operation sequence; like every other kernel call it must
// not race with a build in flight.
func (k *Kernel) SetBudget(maxNodes, maxBytes uint64) {
	k.checkOpen()
	k.opts.MaxNodes, k.opts.MaxBytes = maxNodes, maxBytes
	k.budget.init(k.opts)
	if !k.budget.enabled {
		k.budget.degraded.Store(false)
		k.effThreshold.Store(int64(k.opts.EvalThreshold))
	}
}
