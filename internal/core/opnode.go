package core

import (
	"sync/atomic"

	"bfbdd/internal/cache"
	"bfbdd/internal/node"
)

// Operator-node states. An operator node is created claimed by the worker
// whose expansion produced it; a context push releases the still-unexpanded
// remainder into stealable groups; claiming (by the owner draining its own
// groups, by a cache hit, or by a thief) happens with a CAS so exactly one
// worker expands and reduces each node.
const (
	opQueued  uint32 = iota // sitting in a context group, unowned
	opClaimed               // owned by a worker's pending queue
	opDone                  // Result is valid
)

// opNode is one pending Shannon expansion: the paper's operator node, with
// branch0/branch1 holding either BDD refs or references to child operator
// nodes, and result filled in by the reduction phase.
//
// Cross-worker protocol: only the claiming worker writes f/g/b0/b1; other
// workers read result only after observing state == opDone (release /
// acquire pairing via state). The result itself is atomic because a
// worker stalled on a claimed operator node may escalate and compute the
// value depth-first (see worker.forceResolve): both writers store the
// same canonical ref, and publishing through state keeps readers correct
// whichever store lands first.
type opNode struct {
	f, g   node.Ref
	b0, b1 cache.Tagged
	result atomic.Uint64 // holds a node.Ref
	state  atomic.Uint32
	op     Op
}

// setResult publishes the operator node's result.
func (o *opNode) setResult(r node.Ref) {
	o.result.Store(uint64(r))
	o.state.Store(opDone)
}

// resultRef reads the published result; valid only after state == opDone.
func (o *opNode) resultRef() node.Ref { return node.Ref(o.result.Load()) }

// opNodeBytes approximates the footprint of one operator node for the
// memory accounting (Fig 9/10).
const opNodeBytes = 48

// opRef is a packed handle to an operator node: bit 63 set (so it is
// distinguishable from a node.Ref inside a cache.Tagged word), owner
// worker in bits 48..55, level in bits 32..47, arena index in bits 0..31.
type opRef uint64

func makeOpRef(worker, level int, idx uint32) opRef {
	return opRef(1)<<63 | opRef(worker)<<48 | opRef(level)<<32 | opRef(idx)
}

func (r opRef) worker() int   { return int(r>>48) & 0xFF }
func (r opRef) level() int    { return int(r>>32) & 0xFFFF }
func (r opRef) index() uint32 { return uint32(r) }

func (r opRef) tagged() cache.Tagged { return cache.Tagged(r) }

const (
	opBlockShift = 10
	opBlockSize  = 1 << opBlockShift
	opBlockMask  = opBlockSize - 1
)

// opArena is the operator-node manager for one (worker, variable) pair.
// Like the BDD node arenas, it allocates in blocks and is walked
// contiguously, which is what makes the breadth-first queues cache
// friendly; the arena itself doubles as backing storage for both the
// operator queue and the reduce queue.
type opArena struct {
	blocks [][]opNode
	n      uint32
}

func (a *opArena) alloc(op Op, f, g node.Ref) uint32 {
	i := a.n
	if i>>opBlockShift == uint32(len(a.blocks)) {
		a.blocks = append(a.blocks, make([]opNode, opBlockSize))
	}
	a.n++
	nd := a.at(i)
	nd.op, nd.f, nd.g = op, f, g
	nd.b0, nd.b1 = 0, 0
	nd.result.Store(uint64(node.Nil))
	nd.state.Store(opClaimed)
	return i
}

func (a *opArena) at(i uint32) *opNode {
	return &a.blocks[i>>opBlockShift][i&opBlockMask]
}

func (a *opArena) len() uint32 { return a.n }

// reset drops all operator nodes but keeps block storage for reuse.
func (a *opArena) reset() { a.n = 0 }

// release returns block storage to the runtime.
func (a *opArena) release() { a.blocks = nil; a.n = 0 }

func (a *opArena) bytes() uint64 { return uint64(len(a.blocks)) * opBlockSize * opNodeBytes }
