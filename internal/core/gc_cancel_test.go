package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bfbdd/internal/node"
)

// gcStormKernel collects at (nearly) every top-level-operation boundary:
// GCMinNodes 1 and a growth factor barely above 1 make maybeGC fire as
// soon as any garbage exists, so a storm of cancelled operations sweeps
// the cancellation point across mark-compact collections in flight.
func gcStormKernel(engine Engine, workers int, policy GCPolicy) *Kernel {
	return NewKernel(Options{
		Levels: 20, Engine: engine, Workers: workers,
		EvalThreshold: 64, GroupSize: 32, Stealing: true,
		GC: policy, GCMinNodes: 1, GCGrowth: 1.05,
	})
}

// stormOperands builds a pool of pinned random DNFs plus plenty of
// unpinned construction garbage for the collections to chew on. GC is
// inhibited during construction because the storm kernels collect at
// every boundary and randomDNF holds raw (unpinned) intermediate refs.
func stormOperands(k *Kernel, n int) []*Pin {
	rng := rand.New(rand.NewSource(41))
	k.InhibitGC()
	pins := make([]*Pin, 0, n)
	for i := 0; i < n; i++ {
		pins = append(pins, k.Pin(randomDNF(k, rng, k.Levels(), 40, 9)))
	}
	k.ReleaseGC()
	return pins
}

// TestCancelDuringGCStorm cancels builds at every countdown offset across
// kernels that garbage-collect at every operation boundary, so expiries
// land before, during, and after mark-compact collections. Whatever the
// interleaving, the collection must complete (GC is a boundary operation
// and is never torn), the build must abort cleanly, and the kernel must
// stay canonical — verified by cross-evaluating post-storm results
// against an uncancelled reference kernel. Run with -race; the GC worker
// goroutines and the cancellation probe are exactly the kind of pairing
// the detector is for.
func TestCancelDuringGCStorm(t *testing.T) {
	for _, cfg := range []struct {
		name    string
		engine  Engine
		workers int
		policy  GCPolicy
	}{
		{"pbf-compact", EnginePBF, 1, GCCompact},
		{"par4-compact", EnginePar, 4, GCCompact},
		{"par4-freelist", EnginePar, 4, GCFreeList},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			// Uncancelled reference: same operand pool, default GC cadence.
			ref := cancelTestKernel(cfg.engine, cfg.workers)
			refPins := stormOperands(ref, 8)

			k := gcStormKernel(cfg.engine, cfg.workers, cfg.policy)
			pins := stormOperands(k, 8)

			// Storm: sweep the countdown so the deadline expires at every
			// distinct point of the boundary-GC + build pipeline. Each
			// operation either completes or aborts with the deadline error;
			// anything else is a consistency failure.
			allowances := make([]int64, 0, 32)
			for a := int64(1); a <= 24; a++ {
				allowances = append(allowances, a)
			}
			// Generous tail so some storm operations run to completion.
			allowances = append(allowances, 32, 64, 128, 256, 1024, 1<<20)
			var cancelled, completed int
			for n, allow := range allowances {
				i, j := n%len(pins), (n+3)%len(pins)
				ctx := newCountdownCtx(allow)
				_, err := k.ApplyCtx(ctx, OpXor, pins[i].Ref(), pins[j].Ref())
				switch {
				case err == nil:
					completed++
				case errors.Is(err, context.DeadlineExceeded):
					cancelled++
				default:
					t.Fatalf("storm op (allow=%d): unexpected error %v", allow, err)
				}
			}
			if cancelled == 0 {
				t.Fatal("storm never cancelled a build; countdown sweep too generous")
			}
			if completed == 0 {
				t.Fatal("storm never completed a build; countdown sweep too tight")
			}
			if k.Memory().GCCount == 0 {
				t.Fatal("storm never garbage-collected; GC thresholds not aggressive enough")
			}
			t.Logf("storm: %d cancelled, %d completed, %d collections",
				cancelled, completed, k.Memory().GCCount)

			// The kernel must still produce canonical, correct results.
			// Each result is pinned immediately: the storm kernel collects
			// at every boundary, so the next Apply would relocate (or
			// reclaim) an unpinned ref from a previous iteration.
			resultPins := make([]*Pin, 0, len(pins)/2)
			refResults := make([]node.Ref, 0, len(pins)/2)
			for i := 0; i+1 < len(pins); i += 2 {
				resultPins = append(resultPins, k.Pin(k.Apply(OpXor, pins[i].Ref(), pins[i+1].Ref())))
				refResults = append(refResults, ref.Apply(OpXor, refPins[i].Ref(), refPins[i+1].Ref()))
			}
			rng := rand.New(rand.NewSource(53))
			assignment := make([]bool, k.Levels())
			for trial := 0; trial < 64; trial++ {
				for i := range assignment {
					assignment[i] = rng.Intn(2) == 1
				}
				for i, p := range resultPins {
					if k.Eval(p.Ref(), assignment) != ref.Eval(refResults[i], assignment) {
						t.Fatalf("post-storm result %d disagrees with reference", i)
					}
				}
			}
			results := make([]node.Ref, len(resultPins))
			for i, p := range resultPins {
				results[i] = p.Ref()
			}
			checkInvariants(t, k, results)
		})
	}
}

// TestCancelAtGCBoundaryExact pins the expiry to the exact boundary the
// collection runs at: the entry check consumes the countdown's only
// allowance, so Err flips to non-nil before the pre-build collection
// starts, and the first worker poll after the collection aborts the
// build. The collection itself must still have completed (GCCount
// advances) and the kernel must stay usable.
func TestCancelAtGCBoundaryExact(t *testing.T) {
	k := gcStormKernel(EnginePar, 4, GCCompact)
	pins := stormOperands(k, 4)

	before := k.Memory().GCCount
	ctx := newCountdownCtx(1) // entry check passes; first poll expires
	_, err := k.ApplyCtx(ctx, OpXor, pins[0].Ref(), pins[1].Ref())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if k.Memory().GCCount == before {
		t.Fatal("boundary collection did not run")
	}

	// Pin across the second Apply: its boundary collection relocates
	// unpinned refs on this every-boundary-GC kernel.
	rp := k.Pin(k.Apply(OpXor, pins[0].Ref(), pins[1].Ref()))
	if rp.Ref() != k.Apply(OpXor, pins[0].Ref(), pins[1].Ref()) {
		t.Fatal("post-abort Apply not canonical")
	}
	checkInvariants(t, k, []node.Ref{rp.Ref()})
}
