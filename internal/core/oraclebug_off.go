//go:build !oraclebug

package core

// plantedOracleBug gates the deliberately wrong Apply shortcut used by
// scripts/oracle-selfcheck.sh to prove the differential oracle detects
// and shrinks real kernel bugs. It is a constant false in normal builds,
// so the guard compiles away entirely; see oraclebug_on.go.
const plantedOracleBug = false
