package core

import (
	"fmt"

	"bfbdd/internal/node"
)

// LevelMajorOrder returns every non-terminal node reachable from roots in
// a deterministic breadth-first, level-major order: all nodes of the
// shallowest (highest-precedence) level first, then the next level, and
// so on. Within a level, nodes appear in first-discovery order — roots in
// argument order, then children low-before-high as the shallower levels
// are scanned.
//
// The order is a pure function of the graph's structure and the root
// list: it does not depend on arena layout, worker count, engine, or GC
// history, so two kernels holding the same Boolean functions under the
// same variable order export identical sequences. That stability is what
// lets compiled artifacts and their serialized bytes be compared across
// engines.
//
// The caller must guarantee quiescence (no concurrent mutation of the
// store), exactly as for snapshot.Write.
func (k *Kernel) LevelMajorOrder(roots []node.Ref) ([]node.Ref, error) {
	k.checkOpen()
	k.ensureReadable()
	L := k.opts.Levels
	perLevel := make([][]node.Ref, L)
	seen := make(map[node.Ref]struct{})
	push := func(r node.Ref) error {
		if r.IsTerminal() {
			return nil
		}
		if !r.Valid() || r.Level() >= L {
			return fmt.Errorf("core: export reached invalid ref %v", r)
		}
		if _, ok := seen[r]; ok {
			return nil
		}
		seen[r] = struct{}{}
		perLevel[r.Level()] = append(perLevel[r.Level()], r)
		return nil
	}
	for _, r := range roots {
		if err := push(r); err != nil {
			return nil, err
		}
	}
	// Children live at strictly deeper levels than their parent, so by the
	// time a level's bucket is scanned it is complete: scanning can only
	// append to deeper buckets.
	total := 0
	for lvl := 0; lvl < L; lvl++ {
		for i := 0; i < len(perLevel[lvl]); i++ {
			nd := k.store.Node(perLevel[lvl][i])
			if nd.Low.Level() <= lvl || nd.High.Level() <= lvl {
				return nil, fmt.Errorf("core: export found non-descending child at level %d", lvl)
			}
			if err := push(nd.Low); err != nil {
				return nil, err
			}
			if err := push(nd.High); err != nil {
				return nil, err
			}
		}
		total += len(perLevel[lvl])
	}
	out := make([]node.Ref, 0, total)
	for lvl := 0; lvl < L; lvl++ {
		out = append(out, perLevel[lvl]...)
	}
	return out, nil
}
