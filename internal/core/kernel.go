package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/node"
	"bfbdd/internal/spill"
	"bfbdd/internal/stats"
	"bfbdd/internal/trace"
	"bfbdd/internal/unique"
)

// Engine selects the construction algorithm.
type Engine int

// The available construction engines.
const (
	// EngineDF is the conventional depth-first algorithm (paper §2.2).
	EngineDF Engine = iota
	// EngineBF is pure breadth-first expansion: partial breadth-first
	// with an unbounded evaluation threshold.
	EngineBF
	// EngineHybrid is breadth-first until the evaluation threshold, then
	// depth-first for the remaining queued operations ([8]).
	EngineHybrid
	// EnginePBF is the paper's sequential partial breadth-first algorithm
	// with evaluation contexts (§3.1).
	EnginePBF
	// EnginePar is the parallel partial breadth-first algorithm (§3).
	EnginePar
)

var engineNames = map[Engine]string{
	EngineDF: "df", EngineBF: "bf", EngineHybrid: "hybrid",
	EnginePBF: "pbf", EnginePar: "par",
}

// String returns the engine name.
func (e Engine) String() string {
	if s, ok := engineNames[e]; ok {
		return s
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// GCPolicy selects the garbage collection strategy (§3.4).
type GCPolicy int

// The available GC policies.
const (
	// GCCompact is the paper's mark-and-sweep collector with memory
	// compaction: mark, fix references, rehash.
	GCCompact GCPolicy = iota
	// GCFreeList is the non-compacting alternative: mark, then sweep dead
	// nodes onto per-arena free lists. Kept for the §3.4 ablation.
	GCFreeList
)

// String returns the policy name.
func (p GCPolicy) String() string {
	if p == GCFreeList {
		return "freelist"
	}
	return "compact"
}

// Options configures a Kernel.
type Options struct {
	// Levels is the number of Boolean variables (levels).
	Levels int
	// Engine selects the construction algorithm.
	Engine Engine
	// Workers is the parallel worker count (EnginePar only; others use 1).
	Workers int
	// EvalThreshold is the partial breadth-first evaluation threshold:
	// the number of Shannon expansions performed in one evaluation
	// context before the remainder is pushed as a new context (§3.1).
	EvalThreshold int
	// GroupSize is the number of operations per stealable group when a
	// context is pushed (§3.3).
	GroupSize int
	// CacheBits bounds each per-variable compute-cache segment at
	// 2^CacheBits entries.
	CacheBits uint
	// GC selects the collector.
	GC GCPolicy
	// GCGrowth is the heap growth factor that triggers collection: GC
	// runs when live nodes exceed GCGrowth × nodes-live-after-last-GC.
	// The paper's sequential configuration collects more aggressively
	// than the parallel one; callers model that with a smaller factor.
	GCGrowth float64
	// GCMinNodes suppresses collection below this live-node count.
	GCMinNodes uint64
	// Stealing enables work stealing (EnginePar; disable for ablation).
	Stealing bool
	// Locking forces unique-table locking even with one worker, matching
	// the paper's distinction between the "Seq" row (no locks) and the
	// 1-processor parallel run (locks present).
	Locking bool
	// MaxNodes, when non-zero, bounds the live node count. Approaching
	// the limit triggers graceful degradation (forced GC, cache shrink,
	// evaluation-threshold drop toward depth-first); exceeding it aborts
	// the build in flight with a typed *BudgetError. See budget.go.
	MaxNodes uint64
	// MaxBytes, when non-zero, bounds the kernel's approximate total
	// memory footprint the same way.
	MaxBytes uint64
	// SpillDir, when non-empty, enables memory tiering: quiescent
	// fully-reduced levels can be spilled to level-major files under this
	// directory and their heap blocks released (see spill.go and
	// DESIGN.md §14). The directory is scratch state owned by this
	// kernel; stale contents are wiped on creation and the whole
	// directory is removed on Close.
	SpillDir string
}

// withDefaults fills in zero-valued options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Engine != EnginePar {
		o.Workers = 1
	}
	if o.EvalThreshold <= 0 {
		o.EvalThreshold = 1 << 16
	}
	if o.GroupSize <= 0 {
		o.GroupSize = 512
	}
	if o.CacheBits == 0 {
		o.CacheBits = 18
	}
	if o.GCGrowth <= 1 {
		o.GCGrowth = 2.0
	}
	if o.GCMinNodes == 0 {
		o.GCMinNodes = 1 << 18
	}
	if o.Engine == EnginePar {
		o.Locking = true
	}
	return o
}

// Kernel owns the shared state of one BDD manager: the node store, the
// per-variable unique tables, the external root registry, the worker set,
// and the garbage collector.
type Kernel struct {
	opts   Options
	store  *node.Store
	tables []unique.Table

	workers []*worker

	// pins is the external root registry. A compacting collection marks
	// from every pin and rewrites each pin's ref in place, so pins are
	// the only refs that stay valid across garbage collections.
	pinsMu sync.Mutex
	pins   map[*Pin]struct{}

	// gcInhibit suppresses collection while composite algorithms hold
	// unregistered intermediate refs.
	gcInhibit int
	// gcLiveAfter is the live-node count after the last collection.
	gcLiveAfter uint64

	// stealWanted counts idle workers looking for work; busy workers
	// respond by pushing evaluation contexts early (§3.3 "notifies busy
	// processes to create more sharable work by context switching").
	stealWanted atomic.Int32
	// opDone signals idle workers that the current top-level operation
	// has completed.
	opDone atomic.Bool

	// applySeq numbers top-level operations (diagnostics).
	applySeq uint64

	// interrupt is the cancellation probe for the build in flight (nil
	// when the build is not interruptible); abortErr records the error
	// observed by the first worker to notice a cancellation. See cancel.go.
	interrupt atomic.Pointer[func() error]
	abortErr  atomic.Pointer[error]

	// closed is set by Close; subsequent kernel use panics deterministically.
	closed atomic.Bool

	// btr/btrParent are the armed build trace (see trace.go): per-level
	// phase spans of the operation in flight are recorded under btrParent.
	// Written only while quiescent; workers read them unsynchronized.
	btr       *trace.Trace
	btrParent trace.SpanID

	// effThreshold is the evaluation threshold currently in effect: the
	// configured EvalThreshold normally, lowered under memory pressure
	// (the paper's partial-BF memory knob, §3.1). Read by every expand.
	effThreshold atomic.Int64
	// overheadBytes caches the cache+table byte estimate from the last
	// sampleMemory, so the mid-build budget poll avoids recomputing it.
	overheadBytes atomic.Uint64
	// budget is the resource-governance state (see budget.go).
	budget budgetState

	// tier is the spill backend (nil unless Options.SpillDir is set);
	// spillMu serializes every resident↔spilled transition. See spill.go.
	tier    atomic.Pointer[spill.Tier]
	spillMu sync.Mutex

	mem stats.Memory
}

// NewKernel creates a kernel with the given options.
func NewKernel(opts Options) *Kernel {
	opts = opts.withDefaults()
	if opts.Levels < 0 || opts.Levels >= node.MaxLevels {
		panic(fmt.Sprintf("core: invalid level count %d", opts.Levels))
	}
	k := &Kernel{
		opts:   opts,
		store:  node.NewStore(opts.Workers, opts.Levels),
		tables: make([]unique.Table, opts.Levels),
		pins:   make(map[*Pin]struct{}),
	}
	k.workers = make([]*worker, opts.Workers)
	for i := range k.workers {
		k.workers[i] = newWorker(k, i)
	}
	k.effThreshold.Store(int64(opts.EvalThreshold))
	k.budget.init(opts)
	if opts.SpillDir != "" {
		if err := k.EnableSpill(opts.SpillDir); err != nil {
			// An unusable spill directory costs capacity, not correctness:
			// the kernel runs fully resident.
			k.tier.Store(nil)
		}
	}
	return k
}

// Options returns the kernel's effective options.
func (k *Kernel) Options() Options { return k.opts }

// Store exposes the node store (read-only use by callers).
func (k *Kernel) Store() *node.Store { return k.store }

// Levels returns the variable count.
func (k *Kernel) Levels() int { return k.opts.Levels }

// Table returns the unique table for a level (instrumentation access).
func (k *Kernel) Table(level int) *unique.Table { return &k.tables[level] }

// WorkerStats returns worker w's counters.
func (k *Kernel) WorkerStats(w int) *stats.Worker { return &k.workers[w].st }

// TotalStats returns counters summed over all workers.
func (k *Kernel) TotalStats() stats.Worker {
	var total stats.Worker
	for _, w := range k.workers {
		total.Add(&w.st)
	}
	return total
}

// ResetStats zeroes all worker counters and lock-wait accumulators.
func (k *Kernel) ResetStats() {
	for _, w := range k.workers {
		w.st.Reset()
	}
	for i := range k.tables {
		k.tables[i].ResetLockWait()
	}
}

// Memory returns the memory accounting record.
func (k *Kernel) Memory() *stats.Memory { return &k.mem }

// mkNode returns the canonical node for (level, low, high), applying the
// reduction rule. worker selects the arena for a newly created node.
func (k *Kernel) mkNode(worker, level int, low, high node.Ref) node.Ref {
	if low == high {
		return low
	}
	k.pinLevel(level) // FindOrAdd allocates and rewrites Next chains
	t := &k.tables[level]
	if k.opts.Locking {
		t.Lock()
		defer t.Unlock()
	}
	return t.FindOrAdd(k.store, worker, level, low, high)
}

// MkNode is the exported canonical node constructor (used by the public
// API for Var and by the composite algorithms).
func (k *Kernel) MkNode(level int, low, high node.Ref) node.Ref {
	k.checkOpen()
	if level < 0 || level >= k.opts.Levels {
		panic(fmt.Sprintf("core: MkNode level %d out of range", level))
	}
	if !low.Valid() || !high.Valid() {
		panic("core: MkNode with invalid child ref")
	}
	if faultinject.Enabled {
		// Models an invariant violation detected inside the kernel: the
		// typed *InternalError is what real "can't happen" checks raise,
		// so tests can drive the containment path deterministically.
		if err := faultinject.Check(faultinject.KernelInvariant); err != nil {
			panic(internalf("MkNode", "injected invariant violation: %v", err))
		}
	}
	return k.mkNode(0, level, low, high)
}

// VarRef returns the BDD for the single variable at level.
func (k *Kernel) VarRef(level int) node.Ref {
	return k.MkNode(level, node.Zero, node.One)
}

// Pin is a stable external reference to a BDD. Raw node.Ref values become
// stale when a compacting collection relocates nodes; a Pin's ref is
// rewritten by the collector, so Ref() is always current. Pins double as
// GC roots.
type Pin struct{ ref node.Ref }

// Ref returns the pin's current (post-any-GC) ref.
func (p *Pin) Ref() node.Ref { return p.ref }

// Close releases the kernel: every registered pin is dropped and the node
// store, unique tables, operator arenas, and compute caches are released
// for reclamation. Closing twice, or using the kernel after Close, panics
// deterministically. Close must not race with an in-flight operation.
func (k *Kernel) Close() {
	if k.closed.Swap(true) {
		panic("core: kernel closed twice")
	}
	k.pinsMu.Lock()
	k.pins = make(map[*Pin]struct{})
	k.pinsMu.Unlock()
	for _, w := range k.workers {
		w.resetOps()
		w.ops = nil
		w.cache = nil
		w.pending = nil
		w.curReduce = nil
		w.ctxs = nil
	}
	k.closeSpill()
	k.store = nil
	k.tables = nil
}

// Closed reports whether Close has been called.
func (k *Kernel) Closed() bool { return k.closed.Load() }

// checkOpen panics when the kernel has been closed.
func (k *Kernel) checkOpen() {
	if k.closed.Load() {
		panic("core: use of closed kernel")
	}
}

// Pin registers r as an external root and returns its stable handle.
func (k *Kernel) Pin(r node.Ref) *Pin {
	k.checkOpen()
	p := &Pin{ref: r}
	k.pinsMu.Lock()
	k.pins[p] = struct{}{}
	k.pinsMu.Unlock()
	return p
}

// Unpin removes the pin from the root registry. The pin's ref must not be
// used afterwards unless otherwise kept alive.
func (k *Kernel) Unpin(p *Pin) {
	k.pinsMu.Lock()
	delete(k.pins, p)
	k.pinsMu.Unlock()
}

// NumPins returns the number of registered external roots.
func (k *Kernel) NumPins() int {
	k.pinsMu.Lock()
	defer k.pinsMu.Unlock()
	return len(k.pins)
}

// InhibitGC suppresses automatic collection until ReleaseGC; composite
// algorithms use it to keep unregistered intermediates alive.
func (k *Kernel) InhibitGC() { k.gcInhibit++ }

// ReleaseGC re-enables automatic collection.
func (k *Kernel) ReleaseGC() {
	if k.gcInhibit == 0 {
		panic("core: ReleaseGC without InhibitGC")
	}
	k.gcInhibit--
}

// NumNodes returns the current live node count.
func (k *Kernel) NumNodes() uint64 { return k.store.NumNodes() }

// sampleMemory refreshes the memory accounting and peak.
func (k *Kernel) sampleMemory() {
	var opB, cacheB uint64
	for _, w := range k.workers {
		opB += w.opBytes()
		cacheB += w.cache.Bytes()
	}
	// Bucket arrays: 8 bytes per bucket; approximate via counts (load
	// factor ≤ 2 ⇒ buckets ≥ count/2). Exact bucket length is private to
	// the table; the estimate is within 2× and consistent across runs.
	var tableB uint64
	for i := range k.tables {
		tableB += (k.tables[i].Count() / 2) * 8
	}
	k.overheadBytes.Store(cacheB + tableB)
	// Node bytes are the resident (heap) footprint: spilled levels live
	// in files and the page cache, not on this kernel's heap.
	k.mem.Sample(k.store.ResidentBytes(), opB, cacheB, tableB)
	// sampleMemory runs only at quiescent boundaries, which is exactly
	// when mappings retired by mid-build unspills become unreferenced.
	if t := k.tier.Load(); t != nil {
		t.ReleaseRetired()
	}
}

// maybeGC runs a collection if thresholds are exceeded and collection is
// not inhibited. Must be called only at top-level-operation boundaries
// (all workers quiescent).
func (k *Kernel) maybeGC() {
	if k.gcInhibit > 0 {
		return
	}
	live := k.store.NumNodes()
	if live < k.opts.GCMinNodes {
		return
	}
	if float64(live) < k.opts.GCGrowth*float64(k.gcLiveAfter) {
		return
	}
	k.GC()
}

// Apply computes f op g with the configured engine, running garbage
// collection at operation boundaries when thresholds are exceeded.
//
// With a budget configured (Options.MaxNodes/MaxBytes), a build that
// exceeds it after graceful degradation panics a typed *BudgetError;
// ApplyCtx returns it as an error instead. The kernel stays consistent
// and reusable either way.
func (k *Kernel) Apply(op Op, f, g node.Ref) node.Ref {
	if op >= numBinaryOps {
		panic("core: Apply with non-binary op " + op.String())
	}
	if !f.Valid() || !g.Valid() {
		panic("core: Apply with invalid operand")
	}
	if plantedOracleBug && op == OpDiff && f == g && !f.IsTerminal() {
		return node.One // deliberately wrong: f \ f is Zero (see oraclebug_on.go)
	}
	k.applySeq++
	// Operands must survive (and track) a pre-operation collection. The
	// unpin is deferred so an aborted (canceled) build does not leak pins.
	pf, pg := k.Pin(f), k.Pin(g)
	defer func() {
		k.Unpin(pf)
		k.Unpin(pg)
	}()
	// A previous abort on an uninterruptible build (e.g. a mid-build
	// budget trip) leaves its error latched in abortErr; only armInterrupt
	// clears it otherwise. This build must start clean or the first poll
	// would re-abort it with the stale error.
	k.abortErr.Store(nil)
	defer k.convertAbort()
	k.ensureReadable()
	k.budgetGate()
	f, g = pf.ref, pg.ref
	var r node.Ref
	switch k.opts.Engine {
	case EngineDF:
		r = k.workers[0].dfApply(op, f, g)
	case EngineHybrid:
		r = k.workers[0].hybridApply(op, f, g)
	case EngineBF, EnginePBF:
		r = k.workers[0].pbfApply(op, f, g)
	case EnginePar:
		r = k.parApply(op, f, g)
	default:
		panic("core: unknown engine")
	}
	k.sampleMemory()
	return r
}

// Not returns the complement of f (XNOR with the zero terminal, resolved
// by the terminal rules).
func (k *Kernel) Not(f node.Ref) node.Ref { return k.Apply(OpXnor, f, node.Zero) }

// endTopLevel recycles operator arenas and invalidates the uncomputed
// entries of every compute cache; called when a top-level operation's
// result has been produced.
func (k *Kernel) endTopLevel() {
	for _, w := range k.workers {
		w.checkQuiescent()
		w.resetOps()
		w.cache.InvalidateOps()
	}
}
