//go:build oraclebug

package core

// plantedOracleBug compiles a known-wrong result into Apply: DIFF of a
// non-terminal operand with itself returns One instead of Zero. The
// mutation-test script (scripts/oracle-selfcheck.sh) builds cmd/bfbdd-fuzz
// with this tag and asserts that the differential oracle catches the
// divergence and shrinks the failing operation sequence to a handful of
// ops — proving the oracle is live, not vacuously green. Never enable
// this tag outside that self-check; the regular test suite fails under it
// by design.
const plantedOracleBug = true
