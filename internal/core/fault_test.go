//go:build faultinject

package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/node"
)

// faultOperands builds two pinned random DNFs big enough that an XOR of
// them visits every allocation fault point many times.
func faultOperands(k *Kernel) (a, b *Pin) {
	rng := rand.New(rand.NewSource(17))
	a = k.Pin(randomDNF(k, rng, k.Levels(), 40, 9))
	b = k.Pin(randomDNF(k, rng, k.Levels(), 40, 9))
	return a, b
}

// TestInjectedAllocFaultsTyped drives an injected failure through each
// allocation fault point and checks the containment contract: ApplyCtx
// returns a typed error wrapping faultinject.ErrInjected (never a raw
// panic), and after disarming, the kernel is fully usable.
func TestInjectedAllocFaultsTyped(t *testing.T) {
	points := []faultinject.Point{
		faultinject.UniqueAdd, faultinject.ArenaAlloc, faultinject.OpAlloc,
	}
	for _, cfg := range []struct {
		name    string
		engine  Engine
		workers int
	}{
		{"pbf", EnginePBF, 1},
		{"par4", EnginePar, 4},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			for _, p := range points {
				t.Run(p.String(), func(t *testing.T) {
					faultinject.Reset()
					defer faultinject.Reset()

					k := cancelTestKernel(cfg.engine, cfg.workers)
					a, b := faultOperands(k)

					faultinject.Arm(p, nil) // fire on the first visit
					_, err := k.ApplyCtx(context.Background(), OpXor, a.Ref(), b.Ref())
					faultinject.Disarm(p)
					if err == nil {
						t.Fatalf("%s armed but build completed", p)
					}
					if !errors.Is(err, faultinject.ErrInjected) {
						t.Fatalf("err = %v, want ErrInjected", err)
					}
					if faultinject.Fired(p) == 0 {
						t.Fatalf("%s never fired", p)
					}

					// Disarmed, the same build must complete and agree with
					// a fresh kernel on random assignments.
					rp := k.Pin(k.Apply(OpXor, a.Ref(), b.Ref()))
					ref := cancelTestKernel(cfg.engine, cfg.workers)
					ra, rb := faultOperands(ref)
					refR := ref.Apply(OpXor, ra.Ref(), rb.Ref())
					rng := rand.New(rand.NewSource(29))
					assignment := make([]bool, k.Levels())
					for trial := 0; trial < 64; trial++ {
						for i := range assignment {
							assignment[i] = rng.Intn(2) == 1
						}
						if k.Eval(rp.Ref(), assignment) != ref.Eval(refR, assignment) {
							t.Fatal("post-fault result disagrees with reference")
						}
					}
					checkInvariants(t, k, []node.Ref{rp.Ref()})
				})
			}
		})
	}
}

// TestInjectedFaultPlainApplyPanicsTyped checks the non-Ctx contract: a
// plain Apply hit by an injected fault panics the typed error (so even
// panic-style callers get a classifiable value), and the kernel stays
// usable after the unwind.
func TestInjectedFaultPlainApplyPanicsTyped(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	k := cancelTestKernel(EnginePar, 4)
	a, b := faultOperands(k)

	faultinject.Arm(faultinject.UniqueAdd, nil)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		k.Apply(OpXor, a.Ref(), b.Ref())
	}()
	faultinject.Disarm(faultinject.UniqueAdd)
	if recovered == nil {
		t.Fatal("armed Apply completed without panicking")
	}
	err, ok := recovered.(error)
	if !ok {
		t.Fatalf("panic value %T, want a typed error", recovered)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("panic error = %v, want ErrInjected", err)
	}

	r := k.Apply(OpAnd, a.Ref(), a.Ref())
	if r != a.Ref() {
		t.Fatal("kernel inconsistent after injected-fault panic")
	}
}

// TestInjectedKernelInvariantIsInternalError checks the invariant wall:
// the KernelInvariant point models a "can't happen" check tripping inside
// MkNode, and must surface as a typed *InternalError (the serving layer
// poisons the session on exactly this type).
func TestInjectedKernelInvariantIsInternalError(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	k := cancelTestKernel(EnginePBF, 1)
	faultinject.Arm(faultinject.KernelInvariant, faultinject.FailFirst(1))
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		k.VarRef(3)
	}()
	var ie *InternalError
	err, ok := recovered.(error)
	if !ok || !errors.As(err, &ie) {
		t.Fatalf("recovered %T (%v), want *InternalError", recovered, recovered)
	}
	if ie.Op != "MkNode" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError missing context: op=%q stack=%d bytes", ie.Op, len(ie.Stack))
	}
}

// TestInjectedSpillWriteLeavesResident checks the spill containment
// contract: a spill-file write failure must surface as a typed error
// wrapping faultinject.ErrInjected and leave the Manager fully resident
// and consistent — no level may be half-spilled, no heap block released.
func TestInjectedSpillWriteLeavesResident(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	k := NewKernel(Options{Levels: 10, Engine: EnginePBF, SpillDir: t.TempDir()})
	defer k.Close()
	f := buildDisjunction(k, 10)
	p := k.Pin(f)
	defer k.Unpin(p)
	sig := k.CanonicalSignature([]node.Ref{p.Ref()})
	resident := k.Store().ResidentBytes()
	if resident == 0 {
		t.Fatal("nothing resident to protect")
	}

	faultinject.Arm(faultinject.SpillWrite, nil)
	err := k.SpillAll()
	faultinject.Disarm(faultinject.SpillWrite)
	if err == nil {
		t.Fatal("armed SpillAll reported success")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if faultinject.Fired(faultinject.SpillWrite) == 0 {
		t.Fatal("spill-write point never fired")
	}
	if got := k.SpillStats().SpilledBytes; got != 0 {
		t.Fatalf("spilled bytes after failed spill = %d, want 0", got)
	}
	if got := k.Store().ResidentBytes(); got != resident {
		t.Fatalf("resident bytes after failed spill = %d, want %d", got, resident)
	}
	if got := k.CanonicalSignature([]node.Ref{p.Ref()}); !equalSig(sig, got) {
		t.Fatal("signature changed across failed spill")
	}

	// Disarmed, the same spill must complete and round-trip.
	if err := k.SpillAll(); err != nil {
		t.Fatalf("SpillAll after disarm: %v", err)
	}
	if k.SpillStats().SpilledBytes == 0 {
		t.Fatal("nothing spilled after disarm")
	}
	if err := k.Unspill(); err != nil {
		t.Fatalf("Unspill: %v", err)
	}
	if got := k.CanonicalSignature([]node.Ref{p.Ref()}); !equalSig(sig, got) {
		t.Fatal("signature changed across post-fault spill round trip")
	}
}

func equalSig(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCancelDuringGCStallWidened is the tagged variant of the GC-cancel
// storm: a stall armed inside the mark phase holds every collection open
// for a few milliseconds per level, so the countdown expiries that land
// mid-collection do so while the GC worker goroutines are provably still
// running. The collection must still complete and the kernel stay
// canonical.
func TestCancelDuringGCStallWidened(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	k := gcStormKernel(EnginePar, 4, GCCompact)
	pins := stormOperands(k, 4)
	faultinject.ArmStall(faultinject.GCStall, time.Millisecond, nil)

	var cancelled int
	for allow := int64(1); allow <= 12; allow++ {
		ctx := newCountdownCtx(allow)
		_, err := k.ApplyCtx(ctx, OpXor, pins[int(allow)%4].Ref(), pins[(int(allow)+1)%4].Ref())
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("allow=%d: unexpected error %v", allow, err)
			}
			cancelled++
		}
	}
	faultinject.Disarm(faultinject.GCStall)
	if cancelled == 0 {
		t.Fatal("no build was cancelled")
	}
	if faultinject.Fired(faultinject.GCStall) == 0 {
		t.Fatal("GC stall never fired; no collection ran during the storm")
	}

	rp := k.Pin(k.Apply(OpXor, pins[0].Ref(), pins[1].Ref()))
	checkInvariants(t, k, []node.Ref{rp.Ref()})
}
