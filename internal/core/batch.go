package core

import (
	"sync"
	"sync/atomic"

	"bfbdd/internal/cache"
	"bfbdd/internal/node"
)

// BinOp is one top-level binary operation for ApplyBatch.
type BinOp struct {
	Op   Op
	F, G node.Ref
}

// ApplyBatch computes a set of independent top-level operations. This is
// the usage mode the paper's parallel measurements assume: users queue a
// set of top-level operations, the workers construct them cooperatively,
// and the garbage-collection condition is checked at the batch boundary
// (§4.1: "we check whether or not to garbage collect only after we
// complete a set of top level operations we queued" — the implicit
// barrier between batches is the parallel engine's GC safe point).
//
// With the parallel engine the operations are seeded round-robin across
// the workers, every worker drives its own share, and work stealing
// balances the remainder. Sequential engines evaluate the batch in order
// (still skipping per-operation GC checks, matching the batch-barrier
// semantics).
func (k *Kernel) ApplyBatch(ops []BinOp) []node.Ref {
	results := make([]node.Ref, len(ops))
	for i := range results {
		results[i] = node.Nil
	}
	k.applyBatchInto(ops, results)
	return results
}

// applyBatchInto is the batch engine shared by ApplyBatch and
// ApplyBatchCtx. It fills results[i] as ops[i] completes, so when a
// typed abort (budget trip, injected fault) unwinds the batch, the
// entries already produced report which operations finished — the
// partial-result contract of ApplyBatchCtx. results must have len(ops)
// entries, pre-filled with node.Nil.
func (k *Kernel) applyBatchInto(ops []BinOp, results []node.Ref) {
	if len(ops) == 0 {
		return
	}
	for _, op := range ops {
		if op.Op >= numBinaryOps {
			panic("core: ApplyBatch with non-binary op " + op.Op.String())
		}
		if !op.F.Valid() || !op.G.Valid() {
			panic("core: ApplyBatch with invalid operand")
		}
	}
	k.applySeq++

	// Pin all operands across the batch-entry collection. The unpin is
	// deferred so an aborted (canceled) batch does not leak pins.
	pins := make([]*Pin, 0, 2*len(ops))
	defer func() {
		for _, p := range pins {
			k.Unpin(p)
		}
	}()
	for _, op := range ops {
		pins = append(pins, k.Pin(op.F), k.Pin(op.G))
	}
	// Clear any abort error latched by a previous uninterruptible build
	// (see Apply); a stale latch would re-abort this batch at first poll.
	k.abortErr.Store(nil)
	defer k.convertAbort()
	k.ensureReadable()
	k.budgetGate()
	for i := range ops {
		ops[i].F = pins[2*i].Ref()
		ops[i].G = pins[2*i+1].Ref()
	}

	if k.opts.Engine == EnginePar && len(k.workers) > 1 {
		k.parApplyBatch(ops, results)
	} else {
		for i, op := range ops {
			switch k.opts.Engine {
			case EngineDF:
				results[i] = k.workers[0].dfApply(op.Op, op.F, op.G)
			case EngineHybrid:
				results[i] = k.workers[0].hybridApply(op.Op, op.F, op.G)
			default:
				results[i] = k.workers[0].pbfApply(op.Op, op.F, op.G)
			}
			// Results must survive the rest of the batch (no GC runs
			// inside the batch, but pin for uniformity with parallel).
			pins = append(pins, k.Pin(results[i]))
		}
	}

	k.sampleMemory()
}

// parApplyBatch seeds the operations round-robin over the workers and
// runs all workers symmetrically: each drives its own seeds to completion
// and then turns thief until the whole batch is done.
func (k *Kernel) parApplyBatch(ops []BinOp, results []node.Ref) {
	P := len(k.workers)

	// Seeding runs on the caller goroutine before any worker goroutine
	// starts, so touching each worker's private queues is safe.
	roots := make([]taggedRoot, len(ops))
	for i, op := range ops {
		w := k.workers[i%P]
		w.nOps = 0
		roots[i] = taggedRoot{worker: w, val: w.preprocess(op.Op, op.F, op.G)}
	}

	k.opDone.Store(false)
	var active atomic.Int32
	active.Store(int32(P))
	var wg sync.WaitGroup
	for _, w := range k.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			// A canceled build unwinds workers with the buildAborted
			// sentinel; catchAbort swallows it and raises opDone so the
			// still-idle workers drain too. The abort is re-raised on the
			// caller goroutine once every worker has quiesced.
			defer k.catchAbort()
			if w.pendingTotal > 0 {
				w.evalCycle()
			}
			// This worker's seeds are complete; help the others.
			if active.Add(-1) == 0 {
				k.opDone.Store(true)
				return
			}
			w.idleLoop()
		}(w)
	}
	wg.Wait()
	if k.aborted() {
		// Harvest the roots that did complete before the abort so the
		// partial-result contract of ApplyBatchCtx holds. The refs point
		// into the append-only node store, so they stay valid after
		// abortTopLevel recycles the operator arenas.
		for i, r := range roots {
			if !r.val.IsOpHandle() {
				results[i] = r.val.Ref()
				continue
			}
			o := r.worker.opAt(opRef(r.val))
			if o.state.Load() == opDone {
				results[i] = o.resultRef()
			}
		}
		panic(buildAborted{})
	}

	for i, r := range roots {
		if !r.val.IsOpHandle() {
			results[i] = r.val.Ref()
			continue
		}
		o := r.worker.opAt(opRef(r.val))
		if o.state.Load() != opDone {
			panic(internalf("parApplyBatch", "batch root %d not reduced", i))
		}
		results[i] = o.resultRef()
	}
	k.endTopLevel()
}

type taggedRoot struct {
	worker *worker
	val    cache.Tagged
}
