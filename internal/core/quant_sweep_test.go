package core

import (
	"testing"

	"bfbdd/internal/node"
)

// The exhaustive quantifier sweep checks Exists and Forall against
// truth tables for EVERY Boolean function of up to four variables and
// EVERY variable subset. Row convention (local to this file, unlike the
// MSB-first masks in quant_test.go): bit v of row r is the value of the
// variable at level v, and bit r of a mask is the function's value on
// row r.

// sweepKernel builds a kernel that never garbage-collects, so raw refs
// stay stable and results can be compared by ref identity without pins.
func sweepKernel(nvars int) *Kernel {
	return NewKernel(Options{Levels: nvars, Engine: EnginePBF,
		EvalThreshold: 4, GroupSize: 4, GCMinNodes: 1 << 30})
}

// sweepBDD constructs the canonical BDD of a truth mask bottom-up by
// Shannon expansion. memo is keyed on (level, sub-mask) so the whole
// sweep over 2^16 functions shares subfunction work.
func sweepBDD(k *Kernel, level, nvars int, mask uint64, memo map[[2]uint64]node.Ref) node.Ref {
	if level == nvars {
		if mask&1 == 1 {
			return node.One
		}
		return node.Zero
	}
	key := [2]uint64{uint64(level), mask}
	if r, ok := memo[key]; ok {
		return r
	}
	rows := 1 << (nvars - level - 1)
	var lo, hi uint64
	for r := 0; r < rows; r++ {
		lo |= mask >> (2 * r) & 1 << r
		hi |= mask >> (2*r + 1) & 1 << r
	}
	l := sweepBDD(k, level+1, nvars, lo, memo)
	h := sweepBDD(k, level+1, nvars, hi, memo)
	out := k.MkNode(level, l, h)
	memo[key] = out
	return out
}

// sweepQuant folds the variables of subset out of a mask: exists keeps a
// row when either cofactor row is set, forall when both are.
func sweepQuant(mask uint64, subset, nvars int, ex bool) uint64 {
	for v := 0; v < nvars; v++ {
		if subset>>v&1 == 0 {
			continue
		}
		var out uint64
		for r := 0; r < 1<<nvars; r++ {
			a := mask>>(r&^(1<<v))&1 == 1
			b := mask>>(r|1<<v)&1 == 1
			if (ex && (a || b)) || (!ex && a && b) {
				out |= 1 << r
			}
		}
		mask = out
	}
	return mask
}

// TestQuantExhaustiveSweep checks ∃S f and ∀S f for every function f of
// 1..4 variables against every variable subset S, comparing the kernel's
// result ref against the independently constructed BDD of the
// truth-table fold. Short mode stops at 3 variables (every function of 4
// variables is 65536 masks × 16 subsets).
func TestQuantExhaustiveSweep(t *testing.T) {
	maxVars := 4
	if testing.Short() {
		maxVars = 3
	}
	for nvars := 1; nvars <= maxVars; nvars++ {
		k := sweepKernel(nvars)
		memo := make(map[[2]uint64]node.Ref)
		// Positive cubes for every subset, built once.
		cubes := make([]node.Ref, 1<<nvars)
		for subset := range cubes {
			cube := node.Ref(node.One)
			for v := nvars - 1; v >= 0; v-- {
				if subset>>v&1 == 1 {
					cube = k.MkNode(v, node.Zero, cube)
				}
			}
			cubes[subset] = cube
		}
		numFuncs := uint64(1) << (1 << nvars)
		for mask := uint64(0); mask < numFuncs; mask++ {
			f := sweepBDD(k, 0, nvars, mask, memo)
			for subset := 0; subset < 1<<nvars; subset++ {
				wantEx := sweepBDD(k, 0, nvars, sweepQuant(mask, subset, nvars, true), memo)
				if got := k.Exists(f, cubes[subset]); got != wantEx {
					t.Fatalf("nvars=%d mask=%#x subset=%#x: Exists mismatch", nvars, mask, subset)
				}
				wantFa := sweepBDD(k, 0, nvars, sweepQuant(mask, subset, nvars, false), memo)
				if got := k.Forall(f, cubes[subset]); got != wantFa {
					t.Fatalf("nvars=%d mask=%#x subset=%#x: Forall mismatch", nvars, mask, subset)
				}
			}
		}
		k.Close()
	}
}
