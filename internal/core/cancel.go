package core

import (
	"context"

	"bfbdd/internal/node"
)

// Build cancellation.
//
// A long-running top-level operation can be interrupted cooperatively: the
// caller arms the kernel with an interrupt probe (typically ctx.Err), the
// workers poll it at safe points of the expansion and reduction loops, and
// the first worker that observes a non-nil probe result aborts the build
// by unwinding with the buildAborted sentinel. The top-level entry point
// recovers the sentinel, discards the build's transient state (operator
// arenas, pending queues, evaluation contexts, compute-cache op entries),
// and returns the probe's error. The persistent structures — node store,
// unique tables, pins — are append-only during a build, so an aborted
// build leaves them canonical; the partial nodes it created are garbage
// that the next collection reclaims.

// buildAborted is the panic sentinel used to unwind an interrupted build.
type buildAborted struct{}

// cancelPollInterval is the number of Shannon expansion steps between
// interrupt-probe polls on the expansion fast path.
const cancelPollInterval = 1024

// armInterrupt installs the probe and clears any stale abort state. Only
// one build runs on a kernel at a time, so arming is unsynchronized with
// respect to other arms (workers read the probe atomically).
func (k *Kernel) armInterrupt(probe func() error) {
	k.abortErr.Store(nil)
	k.interrupt.Store(&probe)
}

// disarmInterrupt removes the probe after the build finishes or aborts.
func (k *Kernel) disarmInterrupt() {
	k.interrupt.Store(nil)
	k.abortErr.Store(nil)
}

// checkCancelNow consults the abort flag and the interrupt probe, and
// unwinds the calling worker when the build has been canceled. Must only
// be called at points where the worker holds no unique-table lock.
func (w *worker) checkCancelNow() {
	k := w.k
	if k.abortErr.Load() != nil {
		panic(buildAborted{})
	}
	p := k.interrupt.Load()
	if p == nil {
		return
	}
	if err := (*p)(); err != nil {
		e := err
		k.abortErr.CompareAndSwap(nil, &e)
		panic(buildAborted{})
	}
}

// pollCancel is the amortized form of checkCancelNow for per-operation
// call sites: it probes once every cancelPollInterval invocations.
func (w *worker) pollCancel() {
	w.cancelCounter--
	if w.cancelCounter > 0 {
		return
	}
	w.cancelCounter = cancelPollInterval
	w.checkCancelNow()
}

// aborted reports whether the current build has been canceled, without
// unwinding (for loops that prefer a clean return, like idleLoop).
func (k *Kernel) aborted() bool { return k.abortErr.Load() != nil }

// abortError returns the error recorded by the worker that observed the
// cancellation.
func (k *Kernel) abortError() error {
	if p := k.abortErr.Load(); p != nil {
		return *p
	}
	return nil
}

// catchAbort recovers the buildAborted sentinel in a worker goroutine,
// re-panicking on anything else. It also raises opDone so peers that are
// not themselves polling (e.g. between steals) drain promptly.
func (k *Kernel) catchAbort() {
	if r := recover(); r != nil {
		if _, ok := r.(buildAborted); !ok {
			panic(r)
		}
		k.opDone.Store(true)
	}
}

// abortTopLevel discards all transient build state after every worker has
// quiesced from an aborted build: pending operator queues, reduce queues,
// registered evaluation contexts, operator arenas, and the compute caches'
// operator-handle entries. The node store and unique tables are untouched
// (they only ever gain canonical nodes), so the kernel is immediately
// usable for the next operation.
func (k *Kernel) abortTopLevel() {
	for _, w := range k.workers {
		for i := range w.pending {
			w.pending[i] = w.pending[i][:0]
		}
		w.pendingTotal = 0
		for i := range w.curReduce {
			w.curReduce[i] = w.curReduce[i][:0]
		}
		w.ctxMu.Lock()
		w.ctxs = w.ctxs[:0]
		w.ctxMu.Unlock()
		w.nOps = 0
		w.cancelCounter = 0
		w.resetOps()
		w.cache.InvalidateOps()
	}
}

// interruptible reports whether ctx can ever be canceled; contexts without
// cancellation capability take the zero-overhead uninterruptible path.
func interruptible(ctx context.Context) bool {
	return ctx != nil && ctx.Done() != nil
}

// ApplyCtx is Apply with cooperative cancellation: when ctx is canceled
// (or its deadline passes) mid-build, the workers abandon the operation at
// the next poll point and ApplyCtx returns ctx's error. The kernel remains
// fully usable afterwards.
func (k *Kernel) ApplyCtx(ctx context.Context, op Op, f, g node.Ref) (r node.Ref, err error) {
	if !interruptible(ctx) {
		return k.Apply(op, f, g), nil
	}
	if err := ctx.Err(); err != nil {
		return node.Nil, err
	}
	k.armInterrupt(ctx.Err)
	defer k.disarmInterrupt()
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(buildAborted); !ok {
				panic(rec)
			}
			k.abortTopLevel()
			r, err = node.Nil, k.abortError()
			if err == nil {
				err = context.Canceled
			}
		}
	}()
	return k.Apply(op, f, g), nil
}

// ApplyBatchCtx is ApplyBatch with cooperative cancellation (see
// ApplyCtx). On cancellation none of the batch's results are returned.
func (k *Kernel) ApplyBatchCtx(ctx context.Context, ops []BinOp) (refs []node.Ref, err error) {
	if !interruptible(ctx) {
		return k.ApplyBatch(ops), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k.armInterrupt(ctx.Err)
	defer k.disarmInterrupt()
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(buildAborted); !ok {
				panic(rec)
			}
			k.abortTopLevel()
			refs, err = nil, k.abortError()
			if err == nil {
				err = context.Canceled
			}
		}
	}()
	return k.ApplyBatch(ops), nil
}
