package core

import (
	"context"
	"runtime/debug"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/node"
)

// Build cancellation.
//
// A long-running top-level operation can be interrupted cooperatively: the
// caller arms the kernel with an interrupt probe (typically ctx.Err), the
// workers poll it at safe points of the expansion and reduction loops, and
// the first worker that observes a non-nil probe result aborts the build
// by unwinding with the buildAborted sentinel. The top-level entry point
// recovers the sentinel, discards the build's transient state (operator
// arenas, pending queues, evaluation contexts, compute-cache op entries),
// and returns the probe's error. The persistent structures — node store,
// unique tables, pins — are append-only during a build, so an aborted
// build leaves them canonical; the partial nodes it created are garbage
// that the next collection reclaims.

// buildAborted is the panic sentinel used to unwind an interrupted build.
type buildAborted struct{}

// cancelPollInterval is the number of Shannon expansion steps between
// interrupt-probe polls on the expansion fast path.
const cancelPollInterval = 1024

// armInterrupt installs the probe and clears any stale abort state. Only
// one build runs on a kernel at a time, so arming is unsynchronized with
// respect to other arms (workers read the probe atomically).
func (k *Kernel) armInterrupt(probe func() error) {
	k.abortErr.Store(nil)
	k.interrupt.Store(&probe)
}

// disarmInterrupt removes the probe after the build finishes or aborts.
func (k *Kernel) disarmInterrupt() {
	k.interrupt.Store(nil)
	k.abortErr.Store(nil)
}

// checkCancelNow consults the abort flag and the interrupt probe, and
// unwinds the calling worker when the build has been canceled. Must only
// be called at points where the worker holds no unique-table lock.
func (w *worker) checkCancelNow() {
	k := w.k
	if k.abortErr.Load() != nil {
		panic(buildAborted{})
	}
	p := k.interrupt.Load()
	if p == nil {
		return
	}
	if err := (*p)(); err != nil {
		e := err
		k.abortErr.CompareAndSwap(nil, &e)
		panic(buildAborted{})
	}
}

// pollCancel is the amortized form of checkCancelNow for per-operation
// call sites: it probes once every cancelPollInterval invocations. The
// same cadence drives the mid-build budget check and the worker-stall
// fault point.
func (w *worker) pollCancel() {
	w.cancelCounter--
	if w.cancelCounter > 0 {
		return
	}
	w.cancelCounter = cancelPollInterval
	if faultinject.Enabled {
		faultinject.Stall(faultinject.WorkerStall)
	}
	w.checkCancelNow()
	w.k.checkBudget()
}

// aborted reports whether the current build has been canceled, without
// unwinding (for loops that prefer a clean return, like idleLoop).
func (k *Kernel) aborted() bool { return k.abortErr.Load() != nil }

// abortError returns the error recorded by the worker that observed the
// cancellation.
func (k *Kernel) abortError() error {
	if p := k.abortErr.Load(); p != nil {
		return *p
	}
	return nil
}

// catchAbort recovers the buildAborted sentinel in a worker goroutine and
// raises opDone so peers that are not themselves polling (e.g. between
// steals) drain promptly. Any other panic on a worker goroutine would
// kill the whole process (no caller frame recovers it), so it is the
// containment wall for residual worker panics too: the value is recorded
// as the build's abort error — wrapped as *InternalError unless already a
// typed abort payload — and the driver re-raises it on the caller
// goroutine once every worker has quiesced.
func (k *Kernel) catchAbort() {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := r.(buildAborted); ok {
		k.opDone.Store(true)
		return
	}
	err, ok := abortPayload(r)
	if !ok {
		err = &InternalError{Op: "worker", Cause: r, Stack: debug.Stack()}
	}
	k.abortErr.CompareAndSwap(nil, &err)
	k.opDone.Store(true)
}

// abortTopLevel discards all transient build state after every worker has
// quiesced from an aborted build: pending operator queues, reduce queues,
// registered evaluation contexts, operator arenas, and the compute caches'
// operator-handle entries. The node store and unique tables are untouched
// (they only ever gain canonical nodes), so the kernel is immediately
// usable for the next operation.
func (k *Kernel) abortTopLevel() {
	for _, w := range k.workers {
		for i := range w.pending {
			w.pending[i] = w.pending[i][:0]
		}
		w.pendingTotal = 0
		for i := range w.curReduce {
			w.curReduce[i] = w.curReduce[i][:0]
		}
		w.ctxMu.Lock()
		w.ctxs = w.ctxs[:0]
		w.ctxMu.Unlock()
		w.nOps = 0
		w.cancelCounter = 0
		w.resetOps()
		w.cache.InvalidateOps()
	}
}

// interruptible reports whether ctx can ever be canceled; contexts without
// cancellation capability take the zero-overhead uninterruptible path.
func interruptible(ctx context.Context) bool {
	return ctx != nil && ctx.Done() != nil
}

// ApplyCtx is Apply with cooperative cancellation: when ctx is canceled
// (or its deadline passes) mid-build, the workers abandon the operation at
// the next poll point and ApplyCtx returns ctx's error. The kernel remains
// fully usable afterwards.
//
// Typed aborts — *BudgetError, *InternalError, injected faults — are
// returned as errors regardless of whether ctx is cancellable.
func (k *Kernel) ApplyCtx(ctx context.Context, op Op, f, g node.Ref) (r node.Ref, err error) {
	if interruptible(ctx) {
		if err := ctx.Err(); err != nil {
			return node.Nil, err
		}
		k.armInterrupt(ctx.Err)
		defer k.disarmInterrupt()
	}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		// Apply's convertAbort already discarded the transient build state
		// before re-raising either the bare sentinel (cancellation) or a
		// typed abort payload.
		if _, ok := rec.(buildAborted); ok {
			r, err = node.Nil, k.abortError()
			if err == nil {
				err = context.Canceled
			}
			return
		}
		if e, ok := abortPayload(rec); ok {
			r, err = node.Nil, e
			return
		}
		panic(rec)
	}()
	return k.Apply(op, f, g), nil
}

// ApplyBatchCtx is ApplyBatch with cooperative cancellation (see
// ApplyCtx). On cancellation none of the batch's results are returned.
// On a typed abort (budget trip, injected fault) the returned slice
// reports the operations that did complete: refs[i] is the result of
// ops[i] if it finished before the abort and node.Nil otherwise. The
// completed refs are canonical but unpinned; a caller that wants them to
// survive the next collection must pin them before operating further.
func (k *Kernel) ApplyBatchCtx(ctx context.Context, ops []BinOp) (refs []node.Ref, err error) {
	results := make([]node.Ref, len(ops))
	for i := range results {
		results[i] = node.Nil
	}
	if interruptible(ctx) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k.armInterrupt(ctx.Err)
		defer k.disarmInterrupt()
	}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if _, ok := rec.(buildAborted); ok {
			refs, err = nil, k.abortError()
			if err == nil {
				err = context.Canceled
			}
			return
		}
		if e, ok := abortPayload(rec); ok {
			refs, err = results, e
			return
		}
		panic(rec)
	}()
	k.applyBatchInto(ops, results)
	return results, nil
}
