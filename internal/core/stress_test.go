package core

import (
	"math/rand"
	"testing"

	"bfbdd/internal/cache"
	"bfbdd/internal/node"
)

// TestParallelDeadlockRegression reproduces the configuration class that
// once deadlocked: many workers, tiny thresholds and groups (so expanded
// operator nodes are parked in pushed contexts while their branches are
// claimed across workers), heavy stealing pressure, and automatic GC. The
// fix escalates stalled reducers to depth-first self-computation; this
// test passes iff the build terminates (the test harness timeout is the
// failure detector) and stays canonical.
func TestParallelDeadlockRegression(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		k := NewKernel(Options{
			Levels: 16, Engine: EnginePar, Workers: 6,
			EvalThreshold: 8, GroupSize: 2, Stealing: true,
			GCMinNodes: 128, GCGrowth: 1.2,
		})
		rng := rand.New(rand.NewSource(seed))
		pins := make([]*Pin, 0, 64)
		refs := []node.Ref{node.Zero, node.One}
		for v := 0; v < 16; v++ {
			refs = append(refs, k.VarRef(v))
		}
		for i := 0; i < 120; i++ {
			op := Op(rng.Intn(int(numBinaryOps)))
			f := refs[rng.Intn(len(refs))]
			g := refs[rng.Intn(len(refs))]
			r := k.Apply(op, f, g)
			refs = append(refs, r)
			p := k.Pin(r)
			pins = append(pins, p)
			if len(pins) > 32 {
				k.Unpin(pins[0])
				pins = pins[1:]
			}
			// Refresh refs from pins after potential GC inside Apply.
			base := len(refs) - len(pins)
			for j, pp := range pins {
				refs[base+j] = pp.Ref()
			}
			refs = refs[max(0, len(refs)-40):]
		}
		roots := make([]node.Ref, len(pins))
		for i, p := range pins {
			roots[i] = p.Ref()
		}
		checkInvariants(t, k, roots)
		total := k.TotalStats()
		if total.ContextPushes == 0 {
			t.Fatal("stress config did not push contexts — not stressing the scheduler")
		}
	}
}

// TestForceResolveDirect exercises the escalation path deterministically:
// an operator node claimed by a worker that never finishes it (simulated
// by hand) must be computable by another worker's forceResolve.
func TestForceResolveDirect(t *testing.T) {
	k := NewKernel(Options{
		Levels: 6, Engine: EnginePar, Workers: 2,
		EvalThreshold: 1 << 20, Stealing: true,
	})
	w0, w1 := k.workers[0], k.workers[1]
	x0, x1 := k.VarRef(0), k.VarRef(1)

	// Fabricate a parent whose branch is a claimed-but-never-finished op
	// belonging to worker 1.
	childIdx := w1.ops[0].alloc(OpAnd, x0, x1)
	childHandle := makeOpRef(1, 0, childIdx)
	parentIdx := w0.ops[0].alloc(OpOr, x0, x1)
	parent := w0.ops[0].at(parentIdx)
	parent.b0 = childHandle.tagged()
	parent.b1 = cache.FromRef(x0)

	if _, ok := w0.resolve(parent.b0); ok {
		t.Fatal("unclaimed child should not resolve")
	}
	w0.forceResolve([]opRef{makeOpRef(0, 0, parentIdx)})
	r0, ok := w0.resolve(parent.b0)
	if !ok {
		t.Fatal("forceResolve did not publish the child result")
	}
	want := k.workers[0].dfApply(OpAnd, x0, x1)
	if r0 != want {
		t.Fatalf("forced result %v != df %v", r0, want)
	}
	if w0.st.ForcedOps != 1 {
		t.Fatalf("ForcedOps = %d", w0.st.ForcedOps)
	}
	// Idempotent: a second call must not recompute.
	w0.forceResolve([]opRef{makeOpRef(0, 0, parentIdx)})
	if w0.st.ForcedOps != 1 {
		t.Fatalf("forceResolve recomputed a done op: %d", w0.st.ForcedOps)
	}
}
