package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"bfbdd/internal/node"
)

// countdownCtx is a context whose Err() starts returning
// context.DeadlineExceeded after `allow` calls. It gives the cancellation
// tests a deterministic mid-build trigger: the entry check consumes one
// call, and the first worker poll after that observes the expiry, without
// depending on wall-clock timing.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
	done      chan struct{}
}

func newCountdownCtx(allow int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background(), done: make(chan struct{})}
	c.remaining.Store(allow)
	return c
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.DeadlineExceeded
	}
	return nil
}

// randomDNF builds the OR of `terms` random cubes over the given levels:
// a dense, irregular function whose pairwise XORs cost many Shannon
// expansions (random DNFs share little structure with each other).
func randomDNF(k *Kernel, rng *rand.Rand, levels, terms, width int) node.Ref {
	f := node.Zero
	for t := 0; t < terms; t++ {
		cube := node.One
		for j := 0; j < width; j++ {
			lvl := rng.Intn(levels)
			var lit node.Ref
			if rng.Intn(2) == 1 {
				lit = k.VarRef(lvl)
			} else {
				lit = k.MkNode(lvl, node.One, node.Zero)
			}
			cube = k.Apply(OpAnd, cube, lit)
		}
		f = k.Apply(OpOr, f, cube)
	}
	return f
}

// buildCancelBatch constructs a batch of operations over large pseudo-
// random operand BDDs — enough Shannon expansions that every engine is
// guaranteed to cross the worker poll interval several times.
func buildCancelBatch(k *Kernel, levels int) []BinOp {
	rng := rand.New(rand.NewSource(7))
	pins := make([]*Pin, 0, 32)
	for i := 0; i < 32; i++ {
		pins = append(pins, k.Pin(randomDNF(k, rng, levels, 48, 9)))
	}
	batch := make([]BinOp, 0, 16)
	for i := 0; i < 16; i++ {
		batch = append(batch, BinOp{Op: OpXor, F: pins[2*i].Ref(), G: pins[2*i+1].Ref()})
	}
	for _, p := range pins {
		k.Unpin(p)
	}
	return batch
}

func cancelTestKernel(engine Engine, workers int) *Kernel {
	return NewKernel(Options{
		Levels: 20, Engine: engine, Workers: workers,
		EvalThreshold: 256, GroupSize: 64, Stealing: true,
	})
}

func TestApplyCtxPreCanceled(t *testing.T) {
	k := cancelTestKernel(EnginePBF, 1)
	x, y := k.VarRef(0), k.VarRef(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := k.ApplyCtx(ctx, OpAnd, x, y); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	// The kernel must be untouched and fully usable.
	r, err := k.ApplyCtx(context.Background(), OpAnd, x, y)
	if err != nil {
		t.Fatalf("ApplyCtx after pre-cancel: %v", err)
	}
	if r != k.Apply(OpAnd, x, y) {
		t.Fatal("ApplyCtx result not canonical after pre-cancel")
	}
}

func TestApplyBatchCtxCancelMidBuild(t *testing.T) {
	for _, cfg := range []struct {
		name    string
		engine  Engine
		workers int
	}{
		{"pbf", EnginePBF, 1},
		{"df", EngineDF, 1},
		{"par4", EnginePar, 4},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			// Reference run: same workload uncancelled, to confirm the
			// batch is big enough that workers must cross the poll
			// interval (so the cancellation below fires mid-build, not
			// never).
			ref := cancelTestKernel(cfg.engine, cfg.workers)
			refBatch := buildCancelBatch(ref, 20)
			ref.ResetStats()
			refResults := ref.ApplyBatch(refBatch)
			if ops := ref.TotalStats().Ops; ops < 4*cancelPollInterval {
				t.Fatalf("reference batch too small to guarantee polling: %d ops", ops)
			}

			k := cancelTestKernel(cfg.engine, cfg.workers)
			batch := buildCancelBatch(k, 20)
			basePins := k.NumPins()
			ctx := newCountdownCtx(2)
			res, err := k.ApplyBatchCtx(ctx, append([]BinOp(nil), batch...))
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("ApplyBatchCtx: err = %v, want context.DeadlineExceeded", err)
			}
			if res != nil {
				t.Fatal("ApplyBatchCtx returned results alongside cancellation")
			}
			if got := k.NumPins(); got != basePins {
				t.Fatalf("aborted batch leaked pins: %d -> %d", basePins, got)
			}

			// The kernel must remain consistent: the same batch, run to
			// completion afterwards, produces results that agree with the
			// reference kernel under cross-evaluation.
			results, err := k.ApplyBatchCtx(context.Background(), batch)
			if err != nil {
				t.Fatalf("ApplyBatchCtx after abort: %v", err)
			}
			rng := rand.New(rand.NewSource(99))
			assignment := make([]bool, 20)
			for trial := 0; trial < 64; trial++ {
				for i := range assignment {
					assignment[i] = rng.Intn(2) == 1
				}
				for i := range results {
					if k.Eval(results[i], assignment) != ref.Eval(refResults[i], assignment) {
						t.Fatalf("post-abort result %d disagrees with reference", i)
					}
				}
			}
			checkInvariants(t, k, results)
		})
	}
}

func TestApplyCtxCompletesWhenNotCanceled(t *testing.T) {
	k := cancelTestKernel(EnginePar, 4)
	batch := buildCancelBatch(k, 20)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, err := k.ApplyCtx(ctx, batch[0].Op, batch[0].F, batch[0].G)
	if err != nil {
		t.Fatalf("ApplyCtx: %v", err)
	}
	if r != k.Apply(batch[0].Op, batch[0].F, batch[0].G) {
		t.Fatal("ApplyCtx result not canonical")
	}
}
