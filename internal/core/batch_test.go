package core

import (
	"math/rand"
	"testing"

	"bfbdd/internal/node"
)

func TestApplyBatchMatchesSequentialApply(t *testing.T) {
	for _, opts := range testEngines() {
		opts := opts
		t.Run(optName(opts), func(t *testing.T) {
			opts.Levels = 10
			k := NewKernel(opts)
			rng := rand.New(rand.NewSource(21))
			operands := []node.Ref{node.Zero, node.One}
			for v := 0; v < 10; v++ {
				operands = append(operands, k.VarRef(v))
			}
			// Pre-build some structure for interesting operands.
			for i := 0; i < 30; i++ {
				op := Op(rng.Intn(int(numBinaryOps)))
				f := operands[rng.Intn(len(operands))]
				g := operands[rng.Intn(len(operands))]
				operands = append(operands, k.Apply(op, f, g))
			}
			// Issue batches and verify against individual DF evaluation.
			for round := 0; round < 5; round++ {
				batch := make([]BinOp, 17)
				for i := range batch {
					batch[i] = BinOp{
						Op: Op(rng.Intn(int(numBinaryOps))),
						F:  operands[rng.Intn(len(operands))],
						G:  operands[rng.Intn(len(operands))],
					}
				}
				got := k.ApplyBatch(batch)
				for i, op := range batch {
					want := k.workers[0].dfApply(op.Op, op.F, op.G)
					k.endTopLevel()
					if got[i] != want {
						t.Fatalf("round %d op %d: batch %v != df %v", round, i, got[i], want)
					}
				}
				operands = append(operands, got...)
			}
			checkInvariants(t, k, operands)
		})
	}
}

func TestApplyBatchEmpty(t *testing.T) {
	k := NewKernel(Options{Levels: 2, Engine: EnginePar, Workers: 2})
	if got := k.ApplyBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %v", got)
	}
}

func TestApplyBatchAllTerminal(t *testing.T) {
	k := NewKernel(Options{Levels: 2, Engine: EnginePar, Workers: 2, Stealing: true})
	got := k.ApplyBatch([]BinOp{
		{OpAnd, node.Zero, node.One},
		{OpOr, node.One, node.Zero},
		{OpXor, node.One, node.One},
	})
	want := []node.Ref{node.Zero, node.One, node.Zero}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("terminal batch [%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestApplyBatchLargeParallelStress(t *testing.T) {
	// More operations than workers, tiny thresholds: forces seeding
	// across all workers, context pushes, and stealing; run under -race.
	k := NewKernel(Options{
		Levels: 14, Engine: EnginePar, Workers: 4,
		EvalThreshold: 16, GroupSize: 4, Stealing: true,
	})
	var vars []node.Ref
	for v := 0; v < 14; v++ {
		vars = append(vars, k.VarRef(v))
	}
	var batch []BinOp
	for i := 0; i < 64; i++ {
		batch = append(batch, BinOp{
			Op: Op(i % int(numBinaryOps)),
			F:  vars[i%14],
			G:  vars[(i*5+3)%14],
		})
	}
	got := k.ApplyBatch(batch)
	for i, op := range batch {
		want := k.workers[0].dfApply(op.Op, op.F, op.G)
		k.endTopLevel()
		if got[i] != want {
			t.Fatalf("op %d mismatch", i)
		}
	}
	checkInvariants(t, k, got)
}

func TestApplyBatchWithGC(t *testing.T) {
	// Batches separated by aggressive collections: refs must stay valid
	// through the batch-boundary GC via the internal pinning.
	k := NewKernel(Options{
		Levels: 12, Engine: EnginePar, Workers: 3,
		EvalThreshold: 32, GroupSize: 8, Stealing: true,
		GCMinNodes: 64, GCGrowth: 1.1,
	})
	acc := make([]node.Ref, 12)
	for v := 0; v < 12; v++ {
		acc[v] = k.VarRef(v)
	}
	pins := make([]*Pin, 12)
	for v, r := range acc {
		pins[v] = k.Pin(r)
	}
	for round := 0; round < 6; round++ {
		batch := make([]BinOp, 12)
		for v := 0; v < 12; v++ {
			batch[v] = BinOp{OpXor, pins[v].Ref(), pins[(v+1)%12].Ref()}
		}
		res := k.ApplyBatch(batch)
		for v, p := range pins {
			k.Unpin(p)
			pins[v] = k.Pin(res[v])
		}
	}
	if k.Memory().GCCount == 0 {
		t.Fatal("expected collections at batch boundaries")
	}
	roots := make([]node.Ref, len(pins))
	for i, p := range pins {
		roots[i] = p.Ref()
	}
	checkInvariants(t, k, roots)
	// Semantics spot check: the accumulated functions are XOR chains.
	assign := make([]bool, 12)
	assign[3] = true
	for v := range pins {
		got := k.Eval(pins[v].Ref(), assign)
		// Each round XORs neighbours; verify against direct recomputation.
		_ = got // value checked via canonicity below
	}
	// Rebuild round-by-round with the DF engine in a fresh kernel and
	// compare sizes (canonical — equal functions have equal sizes).
	k2 := NewKernel(Options{Levels: 12, Engine: EngineDF})
	acc2 := make([]node.Ref, 12)
	for v := 0; v < 12; v++ {
		acc2[v] = k2.VarRef(v)
	}
	for round := 0; round < 6; round++ {
		next := make([]node.Ref, 12)
		for v := 0; v < 12; v++ {
			next[v] = k2.Apply(OpXor, acc2[v], acc2[(v+1)%12])
		}
		acc2 = next
	}
	for v := range pins {
		if k.Size(pins[v].Ref()) != k2.Size(acc2[v]) {
			t.Fatalf("function %d diverged after batched rounds with GC", v)
		}
	}
}
