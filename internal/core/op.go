// Package core implements the paper's BDD construction engines over the
// substrates in internal/node, internal/unique and internal/cache:
//
//   - a conventional depth-first engine (the paper's [3] baseline),
//   - a pure breadth-first engine ([17, 18, 2]),
//   - the hybrid breadth-first/depth-first engine ([8]) the paper builds on,
//   - the paper's partial breadth-first engine with evaluation contexts, and
//   - the parallel partial breadth-first engine with per-worker node
//     managers and compute caches, per-variable unique-table locks, and
//     dynamic load balancing by stealing operation groups from context
//     stacks.
//
// All engines share one Kernel (store + unique tables), so results from
// different engines are directly comparable canonical refs.
package core

import (
	"fmt"

	"bfbdd/internal/node"
)

// Op is a binary Boolean operation code.
type Op uint8

// The supported binary operations. NOT f is expressed as XNOR(f, 0),
// which the terminal rules below resolve without a dedicated operator.
const (
	OpAnd Op = iota
	OpOr
	OpXor
	OpNand
	OpNor
	OpXnor
	OpDiff // f AND NOT g
	OpImp  // NOT f OR g
	numBinaryOps

	// Cache-only operation codes for the composite algorithms. They never
	// appear in operator queues.
	opExists
	opForall
	opRestrict
	opCompose
)

var opNames = map[Op]string{
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNand: "nand",
	OpNor: "nor", OpXnor: "xnor", OpDiff: "diff", OpImp: "imp",
	opExists: "exists", opForall: "forall", opRestrict: "restrict", opCompose: "compose",
}

// String returns the operation mnemonic.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Commutative reports whether operand order is irrelevant, allowing the
// compute cache key to be normalized.
func (op Op) Commutative() bool {
	switch op {
	case OpAnd, OpOr, OpXor, OpNand, OpNor, OpXnor:
		return true
	}
	return false
}

// terminal evaluates op on (f, g) if it is a terminal case, following the
// depth-first algorithm's "if terminal case, return simplified result".
// The rules below cover every pair of constant operands, so Shannon
// expansion always bottoms out.
func terminal(op Op, f, g node.Ref) (node.Ref, bool) {
	switch op {
	case OpAnd:
		switch {
		case f == g:
			return f, true
		case f.IsZero() || g.IsZero():
			return node.Zero, true
		case f.IsOne():
			return g, true
		case g.IsOne():
			return f, true
		}
	case OpOr:
		switch {
		case f == g:
			return f, true
		case f.IsOne() || g.IsOne():
			return node.One, true
		case f.IsZero():
			return g, true
		case g.IsZero():
			return f, true
		}
	case OpXor:
		switch {
		case f == g:
			return node.Zero, true
		case f.IsZero():
			return g, true
		case g.IsZero():
			return f, true
		}
	case OpNand:
		switch {
		case f.IsZero() || g.IsZero():
			return node.One, true
		case f.IsOne() && g.IsOne():
			return node.Zero, true
		}
	case OpNor:
		switch {
		case f.IsOne() || g.IsOne():
			return node.Zero, true
		case f.IsZero() && g.IsZero():
			return node.One, true
		}
	case OpXnor:
		switch {
		case f == g:
			return node.One, true
		case f.IsOne():
			return g, true
		case g.IsOne():
			return f, true
		}
	case OpDiff:
		switch {
		case f == g:
			return node.Zero, true
		case f.IsZero() || g.IsOne():
			return node.Zero, true
		case g.IsZero():
			return f, true
		}
	case OpImp:
		switch {
		case f == g:
			return node.One, true
		case f.IsZero() || g.IsOne():
			return node.One, true
		case f.IsOne():
			return g, true
		}
	default:
		panic("core: terminal called with non-binary op " + op.String())
	}
	return node.Zero, false
}

// evalConst evaluates op on two booleans; used by tests and oracles.
func evalConst(op Op, a, b bool) bool {
	switch op {
	case OpAnd:
		return a && b
	case OpOr:
		return a || b
	case OpXor:
		return a != b
	case OpNand:
		return !(a && b)
	case OpNor:
		return !(a || b)
	case OpXnor:
		return a == b
	case OpDiff:
		return a && !b
	case OpImp:
		return !a || b
	}
	panic("core: evalConst on non-binary op " + op.String())
}
