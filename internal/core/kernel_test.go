package core

import (
	"testing"

	"bfbdd/internal/node"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{Levels: 4}.withDefaults()
	if o.Workers != 1 {
		t.Errorf("Workers default = %d", o.Workers)
	}
	if o.EvalThreshold <= 0 || o.GroupSize <= 0 || o.CacheBits == 0 {
		t.Errorf("tuning defaults missing: %+v", o)
	}
	if o.GCGrowth <= 1 || o.GCMinNodes == 0 {
		t.Errorf("GC defaults missing: %+v", o)
	}
	// Non-parallel engines force one worker.
	o = Options{Levels: 4, Engine: EnginePBF, Workers: 8}.withDefaults()
	if o.Workers != 1 {
		t.Errorf("sequential engine kept %d workers", o.Workers)
	}
	// The parallel engine forces locking.
	o = Options{Levels: 4, Engine: EnginePar, Workers: 4}.withDefaults()
	if !o.Locking {
		t.Error("parallel engine without locking")
	}
}

func TestEngineAndPolicyStrings(t *testing.T) {
	names := map[Engine]string{
		EngineDF: "df", EngineBF: "bf", EngineHybrid: "hybrid",
		EnginePBF: "pbf", EnginePar: "par",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q want %q", e, e.String(), want)
		}
	}
	if GCCompact.String() != "compact" || GCFreeList.String() != "freelist" {
		t.Error("GC policy names wrong")
	}
	if OpAnd.String() != "and" || OpImp.String() != "imp" {
		t.Error("op names wrong")
	}
	if !OpAnd.Commutative() || OpImp.Commutative() {
		t.Error("commutativity flags wrong")
	}
}

func TestKernelAccessors(t *testing.T) {
	k := NewKernel(Options{Levels: 5, Engine: EnginePBF})
	if k.Levels() != 5 {
		t.Fatalf("Levels = %d", k.Levels())
	}
	if k.Store() == nil || k.Table(0) == nil {
		t.Fatal("nil substrates")
	}
	if k.Options().Engine != EnginePBF {
		t.Fatal("Options not surfaced")
	}
	x := k.VarRef(2)
	if x.Level() != 2 {
		t.Fatalf("VarRef level = %d", x.Level())
	}
	if k.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", k.NumNodes())
	}
	if k.NumPins() != 0 {
		t.Fatalf("NumPins = %d", k.NumPins())
	}
	p := k.Pin(x)
	if k.NumPins() != 1 || p.Ref() != x {
		t.Fatal("pin accounting wrong")
	}
	k.Unpin(p)
	if k.NumPins() != 0 {
		t.Fatal("unpin accounting wrong")
	}
}

func TestMemorySampling(t *testing.T) {
	k := NewKernel(Options{Levels: 8, Engine: EnginePBF})
	f := node.One
	for v := 0; v < 8; v++ {
		f = k.Apply(OpAnd, f, k.VarRef(v))
	}
	mem := k.Memory()
	if mem.PeakBytes == 0 || mem.NodeBytes == 0 {
		t.Fatalf("memory accounting empty: %+v", *mem)
	}
	if mem.Total() > mem.PeakBytes {
		t.Fatal("peak below current total")
	}
}

func TestApplyPanicsOnBadInput(t *testing.T) {
	k := NewKernel(Options{Levels: 2, Engine: EngineDF})
	for name, fn := range map[string]func(){
		"non-binary op":   func() { k.Apply(opExists, node.Zero, node.One) },
		"invalid operand": func() { k.Apply(OpAnd, node.Nil, node.One) },
		"bad mknode lvl":  func() { k.MkNode(9, node.Zero, node.One) },
		"bad mknode ref":  func() { k.MkNode(0, node.Nil, node.One) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewKernelPanicsOnBadLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKernel with negative levels did not panic")
		}
	}()
	NewKernel(Options{Levels: -1})
}
