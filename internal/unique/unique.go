// Package unique implements the per-variable unique tables that guarantee
// BDD canonicity. There is one Table per variable level, shared by all
// workers, with one lock per table — the synchronization structure the
// paper uses for the parallel reduction phase (§3.2) and whose contention
// it measures in Figures 16 and 17.
package unique

import (
	"sync"
	"sync/atomic"
	"time"

	"bfbdd/internal/faultinject"
	"bfbdd/internal/node"
)

// hashRef mixes a pair of child refs into a bucket hash. The paper notes
// the hash function depends on the location of a node's children, which is
// why compaction forces the rehash phase of garbage collection; packed
// refs have the same property since a child's index changes when it moves.
func hashRef(low, high node.Ref) uint64 {
	h := uint64(low)*0x9E3779B97F4A7C15 ^ uint64(high)*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

const initialBuckets = 64

// Table is the unique table for one variable level. Buckets hold the head
// Ref of a chain linked through Node.Next; chains may traverse the arenas
// of several workers.
//
// All mutating access (FindOrAdd, RemoveUnmarked, ResetBuckets, Insert)
// requires holding the table's lock via Lock/Unlock, except where a phase
// barrier already guarantees exclusivity (noted per method).
type Table struct {
	mu sync.Mutex

	buckets []node.Ref
	count   uint64

	// maxCount tracks the high-water node count for this variable,
	// reproducing the paper's Figure 15 (max BDD nodes per variable).
	maxCount uint64

	// lockWaitNs accumulates time spent waiting to acquire the lock,
	// reproducing Figures 16/17. Updated atomically by Lock.
	lockWaitNs atomic.Int64

	// hits/misses count FindOrAdd outcomes for diagnostics.
	hits, misses uint64
}

// Lock acquires the table lock, accumulating contention wait time. The
// fast path (uncontended TryLock) costs one atomic operation and records
// no wait.
func (t *Table) Lock() {
	if t.mu.TryLock() {
		return
	}
	start := time.Now()
	t.mu.Lock()
	t.lockWaitNs.Add(int64(time.Since(start)))
}

// TryLock attempts to acquire the lock without blocking.
func (t *Table) TryLock() bool { return t.mu.TryLock() }

// Unlock releases the table lock.
func (t *Table) Unlock() { t.mu.Unlock() }

// LockWait returns the accumulated lock acquisition wait time.
func (t *Table) LockWait() time.Duration { return time.Duration(t.lockWaitNs.Load()) }

// ResetLockWait clears the contention counter (used between experiment
// phases so Figure 16 reports reduction-phase waiting only).
func (t *Table) ResetLockWait() { t.lockWaitNs.Store(0) }

// Count returns the number of nodes currently in the table. Callers
// should hold the lock or be at a barrier for an exact value.
func (t *Table) Count() uint64 { return t.count }

// MaxCount returns the high-water node count for this variable.
func (t *Table) MaxCount() uint64 { return t.maxCount }

// Hits and Misses return FindOrAdd outcome counters.
func (t *Table) Hits() uint64   { return t.hits }
func (t *Table) Misses() uint64 { return t.misses }

// FindOrAdd returns the canonical node for (level, low, high), creating it
// in worker w's arena if absent. The caller must hold the lock and must
// have already applied the reduction rule (low != high).
//
// Under -tags=faultinject it panics a *faultinject.Error when the
// unique-add or arena-alloc point is armed, modeling insert/allocation
// failure; callers (the kernel) unwind it through their abort machinery
// and must therefore release the table lock via defer.
func (t *Table) FindOrAdd(st *node.Store, w, level int, low, high node.Ref) node.Ref {
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.UniqueAdd); err != nil {
			panic(err)
		}
	}
	if t.buckets == nil {
		t.buckets = make([]node.Ref, initialBuckets)
		for i := range t.buckets {
			t.buckets[i] = node.Nil
		}
	}
	b := hashRef(low, high) & uint64(len(t.buckets)-1)
	for r := t.buckets[b]; r != node.Nil; {
		nd := st.Node(r)
		if nd.Low == low && nd.High == high {
			t.hits++
			return r
		}
		r = nd.Next
	}
	t.misses++
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.ArenaAlloc); err != nil {
			panic(err)
		}
	}
	idx := st.Arena(w, level).Alloc(low, high)
	st.NoteAlloc(w)
	r := node.MakeRef(level, w, idx)
	nd := st.Node(r)
	nd.Next = t.buckets[b]
	t.buckets[b] = r
	t.count++
	if t.count > t.maxCount {
		t.maxCount = t.count
	}
	if t.count > uint64(len(t.buckets))*2 {
		t.grow(st)
	}
	return r
}

// grow doubles the bucket array, rechaining all nodes. Caller holds lock.
func (t *Table) grow(st *node.Store) {
	old := t.buckets
	t.buckets = make([]node.Ref, len(old)*2)
	for i := range t.buckets {
		t.buckets[i] = node.Nil
	}
	for _, head := range old {
		for r := head; r != node.Nil; {
			nd := st.Node(r)
			next := nd.Next
			b := hashRef(nd.Low, nd.High) & uint64(len(t.buckets)-1)
			nd.Next = t.buckets[b]
			t.buckets[b] = r
			r = next
		}
	}
}

// Lookup returns the canonical node for (low, high) if present, without
// creating it. Caller must hold the lock (or be at a barrier).
func (t *Table) Lookup(st *node.Store, low, high node.Ref) (node.Ref, bool) {
	if t.buckets == nil {
		return node.Nil, false
	}
	b := hashRef(low, high) & uint64(len(t.buckets)-1)
	for r := t.buckets[b]; r != node.Nil; {
		nd := st.Node(r)
		if nd.Low == low && nd.High == high {
			return r, true
		}
		r = nd.Next
	}
	return node.Nil, false
}

// ResetBuckets empties the table (keeping capacity) in preparation for the
// rehash phase of a compacting collection. Exclusivity is guaranteed by
// the GC barrier, not the lock.
func (t *Table) ResetBuckets(sizeHint uint64) {
	n := uint64(initialBuckets)
	for n < sizeHint {
		n *= 2
	}
	if uint64(len(t.buckets)) != n {
		t.buckets = make([]node.Ref, n)
	}
	for i := range t.buckets {
		t.buckets[i] = node.Nil
	}
	t.count = 0
}

// Insert adds a node known to be absent (rehash phase). The caller must
// hold the lock. Unlike FindOrAdd it never allocates and never grows: the
// rehash phase pre-sizes buckets via ResetBuckets.
func (t *Table) Insert(st *node.Store, r node.Ref) {
	nd := st.Node(r)
	b := hashRef(nd.Low, nd.High) & uint64(len(t.buckets)-1)
	nd.Next = t.buckets[b]
	t.buckets[b] = r
	t.count++
	if t.count > t.maxCount {
		t.maxCount = t.count
	}
}

// RemoveUnmarked unlinks every node whose arena mark bit is clear
// (free-list GC sweep), invoking free for each removed ref. Exclusivity is
// guaranteed by the GC barrier.
func (t *Table) RemoveUnmarked(st *node.Store, free func(node.Ref)) {
	for i := range t.buckets {
		prevNext := &t.buckets[i]
		for r := *prevNext; r != node.Nil; {
			nd := st.Node(r)
			next := nd.Next
			if st.Arena(r.Worker(), r.Level()).Marked(r.Index()) {
				prevNext = &nd.Next
			} else {
				*prevNext = next
				t.count--
				free(r)
			}
			r = next
		}
	}
}
