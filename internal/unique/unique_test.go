package unique

import (
	"math/rand"
	"sync"
	"testing"

	"bfbdd/internal/node"
)

func TestFindOrAddCanonical(t *testing.T) {
	st := node.NewStore(1, 2)
	var tab Table
	tab.Lock()
	a := tab.FindOrAdd(st, 0, 1, node.Zero, node.One)
	b := tab.FindOrAdd(st, 0, 1, node.Zero, node.One)
	c := tab.FindOrAdd(st, 0, 1, node.One, node.Zero)
	tab.Unlock()
	if a != b {
		t.Fatalf("duplicate insert returned different refs: %v vs %v", a, b)
	}
	if a == c {
		t.Fatal("distinct children returned same ref")
	}
	if tab.Count() != 2 {
		t.Fatalf("Count = %d", tab.Count())
	}
	if tab.Hits() != 1 || tab.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d", tab.Hits(), tab.Misses())
	}
}

func TestFindOrAddGrowth(t *testing.T) {
	st := node.NewStore(1, 2)
	var tab Table
	const n = 10000
	refs := make([]node.Ref, n)
	tab.Lock()
	for i := 0; i < n; i++ {
		low := node.MakeRef(1, 0, uint64(i))
		refs[i] = tab.FindOrAdd(st, 0, 0, low, node.One)
	}
	tab.Unlock()
	if tab.Count() != n {
		t.Fatalf("Count = %d want %d", tab.Count(), n)
	}
	if tab.MaxCount() != n {
		t.Fatalf("MaxCount = %d", tab.MaxCount())
	}
	// All still findable after growth rechaining.
	tab.Lock()
	for i := 0; i < n; i++ {
		low := node.MakeRef(1, 0, uint64(i))
		if got := tab.FindOrAdd(st, 0, 0, low, node.One); got != refs[i] {
			t.Fatalf("after growth: ref %d changed: %v vs %v", i, got, refs[i])
		}
	}
	tab.Unlock()
}

func TestLookup(t *testing.T) {
	st := node.NewStore(1, 2)
	var tab Table
	if _, ok := tab.Lookup(st, node.Zero, node.One); ok {
		t.Fatal("lookup hit on empty table")
	}
	tab.Lock()
	r := tab.FindOrAdd(st, 0, 1, node.Zero, node.One)
	tab.Unlock()
	got, ok := tab.Lookup(st, node.Zero, node.One)
	if !ok || got != r {
		t.Fatalf("Lookup = %v,%v want %v,true", got, ok, r)
	}
	if _, ok := tab.Lookup(st, node.One, node.Zero); ok {
		t.Fatal("lookup hit for absent node")
	}
}

func TestConcurrentFindOrAdd(t *testing.T) {
	st := node.NewStore(4, 1)
	var tab Table
	const perWorker = 2000
	var wg sync.WaitGroup
	results := make([][]node.Ref, 4)
	for w := 0; w < 4; w++ {
		results[w] = make([]node.Ref, perWorker)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Same logical nodes from every worker: canonicity must hold.
				low := node.Zero
				high := node.MakeRef(node.TermLevel, 0, uint64(1)) // One
				if i%2 == 0 {
					low, high = high, low
				}
				_ = low
				tab.Lock()
				results[w][i] = tab.FindOrAdd(st, w, 0, low, high)
				tab.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if tab.Count() != 2 {
		t.Fatalf("Count = %d want 2", tab.Count())
	}
	for w := 1; w < 4; w++ {
		for i := 0; i < perWorker; i++ {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d item %d: %v != %v", w, i, results[w][i], results[0][i])
			}
		}
	}
}

func TestRemoveUnmarked(t *testing.T) {
	st := node.NewStore(1, 1)
	var tab Table
	const n = 100
	refs := make([]node.Ref, n)
	tab.Lock()
	for i := 0; i < n; i++ {
		refs[i] = tab.FindOrAdd(st, 0, 0, node.MakeRef(node.TermLevel, 0, 0), node.MakeRef(0, 0, uint64(i+1000)))
	}
	tab.Unlock()
	ar := st.Arena(0, 0)
	ar.PrepareMarks()
	keep := map[node.Ref]bool{}
	rng := rand.New(rand.NewSource(7))
	for _, r := range refs {
		if rng.Intn(2) == 0 {
			word, bit := ar.MarkWord(r.Index())
			*word |= bit
			keep[r] = true
		}
	}
	var freed []node.Ref
	tab.RemoveUnmarked(st, func(r node.Ref) { freed = append(freed, r) })
	if int(tab.Count()) != len(keep) {
		t.Fatalf("Count = %d want %d", tab.Count(), len(keep))
	}
	if len(freed)+len(keep) != n {
		t.Fatalf("freed %d + kept %d != %d", len(freed), len(keep), n)
	}
	for _, r := range freed {
		if keep[r] {
			t.Fatalf("marked node %v was freed", r)
		}
	}
	// Survivors still findable.
	for r := range keep {
		nd := st.Node(r)
		got, ok := tab.Lookup(st, nd.Low, nd.High)
		if !ok || got != r {
			t.Fatalf("survivor %v lost: %v,%v", r, got, ok)
		}
	}
}

func TestResetBucketsAndInsert(t *testing.T) {
	st := node.NewStore(1, 1)
	var tab Table
	tab.Lock()
	r1 := tab.FindOrAdd(st, 0, 0, node.Zero, node.One)
	r2 := tab.FindOrAdd(st, 0, 0, node.One, node.Zero)
	tab.Unlock()
	tab.ResetBuckets(2)
	if tab.Count() != 0 {
		t.Fatalf("Count after reset = %d", tab.Count())
	}
	tab.Lock()
	tab.Insert(st, r1)
	tab.Insert(st, r2)
	tab.Unlock()
	if tab.Count() != 2 {
		t.Fatalf("Count after reinsert = %d", tab.Count())
	}
	if got, ok := tab.Lookup(st, node.Zero, node.One); !ok || got != r1 {
		t.Fatalf("r1 lost after rehash")
	}
	if got, ok := tab.Lookup(st, node.One, node.Zero); !ok || got != r2 {
		t.Fatalf("r2 lost after rehash")
	}
	// MaxCount survives the reset (high-water semantics).
	if tab.MaxCount() < 2 {
		t.Fatalf("MaxCount = %d", tab.MaxCount())
	}
}

func TestLockWaitAccumulates(t *testing.T) {
	var tab Table
	tab.Lock()
	done := make(chan struct{})
	go func() {
		tab.Lock() // will block
		tab.Unlock()
		close(done)
	}()
	// Give the contender time to block, then release.
	for i := 0; i < 100; i++ {
		if tab.lockWaitNs.Load() >= 0 {
			break
		}
	}
	tab.Unlock()
	<-done
	if tab.LockWait() < 0 {
		t.Fatalf("LockWait negative: %v", tab.LockWait())
	}
	tab.ResetLockWait()
	if tab.LockWait() != 0 {
		t.Fatalf("LockWait after reset: %v", tab.LockWait())
	}
}
