package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"bfbdd/internal/node"
)

// Reader decodes a snapshot stream in two phases: NewReader consumes and
// validates the header and variable-order section (so a caller can size a
// fresh manager), then Resolve streams the level segments through a
// node-construction callback and returns the labeled roots.
type Reader struct {
	r      io.Reader
	hdr    Header
	v2l    []int
	levels []LevelInfo
}

// LevelInfo summarizes one level segment of a stream.
type LevelInfo struct {
	// Level is the variable level the segment's nodes live at.
	Level int
	// Count is the number of nodes in the segment.
	Count uint64
	// Bytes is the segment's on-disk size including framing.
	Bytes int
}

// NewReader consumes the fixed header and the variable-order section.
func NewReader(r io.Reader) (*Reader, error) {
	var hb [HeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return nil, eofErr(err)
	}
	hdr, err := ParseHeader(hb[:])
	if err != nil {
		return nil, err
	}
	rd := &Reader{r: r, hdr: hdr}
	kind, payload, err := rd.readSection()
	if err != nil {
		return nil, err
	}
	if kind != secVarOrder {
		return nil, corrupt("expected variable-order section, got kind %d", kind)
	}
	p := payloadReader{b: payload}
	v2l := make([]int, hdr.NumVars)
	seen := make([]bool, hdr.NumVars)
	for v := range v2l {
		lv, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if lv >= uint64(hdr.NumVars) || seen[lv] {
			return nil, corrupt("variable order is not a permutation of [0,%d)", hdr.NumVars)
		}
		v2l[v] = int(lv)
		seen[lv] = true
	}
	if !p.empty() {
		return nil, corrupt("trailing bytes in variable-order section")
	}
	rd.v2l = v2l
	return rd, nil
}

// Header returns the decoded fixed header.
func (rd *Reader) Header() Header { return rd.hdr }

// NumVars returns the stream's variable count.
func (rd *Reader) NumVars() int { return rd.hdr.NumVars }

// Var2Level returns the stream's variable order: entry v is the level of
// public variable v. The slice is owned by the reader.
func (rd *Reader) Var2Level() []int { return rd.v2l }

// Levels returns per-segment statistics, in stream order (deepest level
// first). Populated by Resolve.
func (rd *Reader) Levels() []LevelInfo { return rd.levels }

// Resolve reads the level segments, materializing every node through mk
// in bottom-up order — each call's low/high arguments are terminals or
// refs returned by earlier mk calls, so mk can insert directly into fresh
// unique tables (compaction-on-load: only live nodes arrive, in dense
// order). It returns the stream's labeled roots.
//
// mk is typically a canonicalizing constructor; if the stream encodes a
// redundant or duplicate node, mk's collapsed result is used for all
// later references to it, so the restored graph is canonical even when
// the stream was not minimal.
func (rd *Reader) Resolve(mk func(level int, low, high node.Ref) node.Ref) ([]Root, error) {
	delta := rd.hdr.Flags&FlagDeltaRefs != 0
	refs := make([]node.Ref, 0, min(rd.hdr.TotalNodes, 1<<20))
	prevLevel := rd.hdr.NumVars // segments must descend strictly below this
	for {
		kind, payload, err := rd.readSection()
		if err != nil {
			return nil, err
		}
		switch kind {
		case secLevel:
			p := payloadReader{b: payload}
			lvlU, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if lvlU >= uint64(prevLevel) {
				return nil, corrupt("level segment %d out of order (must descend below %d)", lvlU, prevLevel)
			}
			lvl := int(lvlU)
			count, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			// Each node costs at least two payload bytes; this bound stops
			// hostile counts before any proportional allocation.
			if count == 0 || count > uint64(len(payload))/2 {
				return nil, corrupt("level %d claims %d nodes in %d payload bytes", lvl, count, len(payload))
			}
			base := uint64(len(refs))
			if base+count > rd.hdr.TotalNodes {
				return nil, corrupt("more nodes than the header's total %d", rd.hdr.TotalNodes)
			}
			for i := uint64(0); i < count; i++ {
				low, err := p.child(base+i, base, refs, delta)
				if err != nil {
					return nil, err
				}
				high, err := p.child(base+i, base, refs, delta)
				if err != nil {
					return nil, err
				}
				refs = append(refs, mk(lvl, low, high))
			}
			if !p.empty() {
				return nil, corrupt("trailing bytes in level %d segment", lvl)
			}
			rd.levels = append(rd.levels, LevelInfo{Level: lvl, Count: count, Bytes: len(payload) + 9})
			prevLevel = lvl

		case secRoots:
			if uint64(len(refs)) != rd.hdr.TotalNodes {
				return nil, corrupt("stream has %d nodes, header promised %d", len(refs), rd.hdr.TotalNodes)
			}
			p := payloadReader{b: payload}
			// Each root costs at least two payload bytes (id and encoding
			// uvarints); this bound stops a hostile NumRoots — the header
			// CRC is not an integrity guarantee — before any proportional
			// allocation.
			if uint64(rd.hdr.NumRoots)*2 > uint64(len(payload)) {
				return nil, corrupt("header claims %d roots in %d payload bytes", rd.hdr.NumRoots, len(payload))
			}
			roots := make([]Root, 0, rd.hdr.NumRoots)
			for i := 0; i < rd.hdr.NumRoots; i++ {
				id, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				enc, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				var ref node.Ref
				switch enc {
				case 0:
					ref = node.Zero
				case 1:
					ref = node.One
				default:
					s := enc - 2
					if s >= uint64(len(refs)) {
						return nil, corrupt("root %d references node %d of %d", i, s, len(refs))
					}
					ref = refs[s]
				}
				roots = append(roots, Root{ID: id, Ref: ref})
			}
			if !p.empty() {
				return nil, corrupt("trailing bytes in roots section")
			}
			kind, payload, err := rd.readSection()
			if err != nil {
				return nil, err
			}
			if kind != secEnd || len(payload) != 0 {
				return nil, corrupt("missing end-of-stream section")
			}
			return roots, nil

		default:
			return nil, corrupt("unexpected section kind %d", kind)
		}
	}
}

// readSection reads one kind/length/payload/crc section. The payload is
// read in bounded chunks so a hostile length field cannot force a large
// allocation beyond the bytes actually present.
func (rd *Reader) readSection() (kind byte, payload []byte, err error) {
	var hb [5]byte
	if _, err := io.ReadFull(rd.r, hb[:]); err != nil {
		return 0, nil, eofErr(err)
	}
	kind = hb[0]
	n := binary.LittleEndian.Uint32(hb[1:])
	if n > maxSectionLen {
		return 0, nil, corrupt("section length %d exceeds limit", n)
	}
	payload = make([]byte, 0, min(int(n), 64<<10))
	for remaining := int(n); remaining > 0; {
		c := min(remaining, 64<<10)
		start := len(payload)
		payload = append(payload, make([]byte, c)...)
		if _, err := io.ReadFull(rd.r, payload[start:]); err != nil {
			return 0, nil, eofErr(err)
		}
		remaining -= c
	}
	var crcb [4]byte
	if _, err := io.ReadFull(rd.r, crcb[:]); err != nil {
		return 0, nil, eofErr(err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcb[:]) {
		return 0, nil, fmt.Errorf("%w: section kind %d", ErrChecksum, kind)
	}
	return kind, payload, nil
}

// payloadReader is a varint cursor over one section's payload.
type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, corrupt("bad varint at payload offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) empty() bool { return p.off == len(p.b) }

// child decodes one child reference for the node with sequence number
// cur. base is the first sequence number of the current level, which is
// also the exclusive upper bound for children: a valid child lives at a
// strictly deeper level, i.e. strictly earlier in the stream.
func (p *payloadReader) child(cur, base uint64, refs []node.Ref, delta bool) (node.Ref, error) {
	enc, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	switch enc {
	case 0:
		return node.Zero, nil
	case 1:
		return node.One, nil
	}
	var s uint64
	if delta {
		d := enc - 1
		if d > cur {
			return 0, corrupt("node %d child delta %d reaches before the stream", cur, d)
		}
		s = cur - d
	} else {
		s = enc - 2
	}
	if s >= base {
		return 0, corrupt("node %d child %d is not at a deeper level", cur, s)
	}
	return refs[s], nil
}

// Info is the result of Inspect: everything about a stream except the
// nodes themselves.
type Info struct {
	Header    Header
	Var2Level []int
	// Levels holds the per-level histogram in stream order (deepest
	// first).
	Levels []LevelInfo
	// Roots carries the stream's labeled roots; each Ref is synthetic
	// (not resolvable against any store) but its Level() is meaningful.
	Roots []Root
}

// Inspect fully decodes and checksums a stream without building a node
// store, returning header fields, the per-level node histogram, and the
// root labels. It validates exactly as much as a real restore does.
func Inspect(r io.Reader) (*Info, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var n uint64
	roots, err := rd.Resolve(func(level int, low, high node.Ref) node.Ref {
		ref := node.MakeRef(level, 0, n)
		n++
		return ref
	})
	if err != nil {
		return nil, err
	}
	return &Info{Header: rd.hdr, Var2Level: rd.v2l, Levels: rd.levels, Roots: roots}, nil
}
