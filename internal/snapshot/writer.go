package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"bfbdd/internal/node"
)

// Options tunes the writer.
type Options struct {
	// RawRefs disables the per-level varint delta encoding of child
	// references (clears flag bit 0). Raw streams are larger but useful
	// for format debugging and as an encoding ablation.
	RawRefs bool
}

// Write serializes the subgraph reachable from roots into the snapshot
// format. The caller must guarantee quiescence: no concurrent mutation of
// the store while Write scans it. Only nodes reachable from the given
// roots are emitted — dead nodes are dropped at save time, so a restored
// manager starts from a garbage-free, densely renumbered node space.
//
// The emitted byte stream is a deterministic function of the store's
// physical layout and the root list: snapshotting the same manager twice
// yields identical bytes.
func Write(w io.Writer, st *node.Store, var2level []int, roots []Root, opts Options) error {
	W, L := st.Workers(), st.Levels()
	if len(var2level) != L {
		return fmt.Errorf("snapshot: var2level has %d entries for %d levels", len(var2level), L)
	}

	// Phase 1: mark the subgraph reachable from the roots, one visited
	// bitmap per (worker, level) arena, allocated lazily so untouched
	// arenas cost nothing.
	vis := make([][][]uint64, W)
	for wk := range vis {
		vis[wk] = make([][]uint64, L)
	}
	visited := func(r node.Ref) bool {
		wv := vis[r.Worker()][r.Level()]
		return wv != nil && wv[r.Index()>>6]&(1<<(r.Index()&63)) != 0
	}
	setVisited := func(r node.Ref) {
		wvp := &vis[r.Worker()][r.Level()]
		if *wvp == nil {
			*wvp = make([]uint64, (st.Arena(r.Worker(), r.Level()).Len()+63)/64)
		}
		(*wvp)[r.Index()>>6] |= 1 << (r.Index() & 63)
	}
	var stack []node.Ref
	for i, rt := range roots {
		if !rt.Ref.Valid() {
			return fmt.Errorf("snapshot: root %d has invalid ref %v", i, rt.Ref)
		}
		stack = append(stack, rt.Ref)
	}
	var total uint64
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r.IsTerminal() || visited(r) {
			continue
		}
		setVisited(r)
		total++
		nd := st.Node(r)
		stack = append(stack, nd.Low, nd.High)
	}
	if total > math.MaxUint32-2 {
		return ErrTooLarge
	}

	// Phase 2: assign dense sequence numbers bottom-up (deepest level
	// first, then worker, then arena index) — the exact order segments are
	// emitted in, so a node's sequence number is its position in the
	// stream and every child (at a strictly deeper level) numbers lower.
	seq := make([][][]uint32, W)
	for wk := range seq {
		seq[wk] = make([][]uint32, L)
	}
	counts := make([]uint64, L)
	var next uint32
	for lvl := L - 1; lvl >= 0; lvl-- {
		for wk := 0; wk < W; wk++ {
			wv := vis[wk][lvl]
			if wv == nil {
				continue
			}
			sq := make([]uint32, st.Arena(wk, lvl).Len())
			for i := range sq {
				if wv[i>>6]&(1<<(uint(i)&63)) == 0 {
					continue
				}
				sq[i] = next
				next++
				counts[lvl]++
			}
			seq[wk][lvl] = sq
		}
	}

	flags := uint16(FlagDeltaRefs)
	if opts.RawRefs {
		flags = 0
	}
	bw := bufio.NewWriter(w)
	hdr := Header{Version: Version, Flags: flags, NumVars: L, NumRoots: len(roots), TotalNodes: total}
	if _, err := bw.Write(hdr.encode()); err != nil {
		return err
	}

	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}

	// Variable-order section.
	for _, l := range var2level {
		putUvarint(uint64(l))
	}
	if err := writeSection(bw, secVarOrder, buf.Bytes()); err != nil {
		return err
	}

	seqOf := func(r node.Ref) uint32 { return seq[r.Worker()][r.Level()][r.Index()] }
	encChild := func(cur uint32, c node.Ref) uint64 {
		switch {
		case c.IsZero():
			return 0
		case c.IsOne():
			return 1
		case opts.RawRefs:
			return 2 + uint64(seqOf(c))
		default:
			return 1 + uint64(cur) - uint64(seqOf(c))
		}
	}

	// Level segments, bottom-up, each a sequential scan of the arenas.
	var cur uint32
	for lvl := L - 1; lvl >= 0; lvl-- {
		if counts[lvl] == 0 {
			continue
		}
		buf.Reset()
		putUvarint(uint64(lvl))
		putUvarint(counts[lvl])
		for wk := 0; wk < W; wk++ {
			wv := vis[wk][lvl]
			if wv == nil {
				continue
			}
			a := st.Arena(wk, lvl)
			for i := uint64(0); i < a.Len(); i++ {
				if wv[i>>6]&(1<<(i&63)) == 0 {
					continue
				}
				nd := a.At(i)
				putUvarint(encChild(cur, nd.Low))
				putUvarint(encChild(cur, nd.High))
				cur++
			}
		}
		if err := writeSection(bw, secLevel, buf.Bytes()); err != nil {
			return err
		}
	}

	// Roots section: IDs plus raw-encoded node numbers.
	buf.Reset()
	for _, rt := range roots {
		putUvarint(rt.ID)
		switch {
		case rt.Ref.IsZero():
			putUvarint(0)
		case rt.Ref.IsOne():
			putUvarint(1)
		default:
			putUvarint(2 + uint64(seqOf(rt.Ref)))
		}
	}
	if err := writeSection(bw, secRoots, buf.Bytes()); err != nil {
		return err
	}
	if err := writeSection(bw, secEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// writeSection emits one kind/length/payload/crc section.
func writeSection(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > maxSectionLen {
		return ErrTooLarge
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crcb[:])
	return err
}
