// Package snapshot implements the versioned, checksummed binary format
// that serializes a BDD node graph level by level. The format exploits
// the engine's per-(worker, variable) arena layout: nodes of one variable
// are emitted as one contiguous segment by scanning the arenas
// sequentially, and child references are re-packed as dense per-stream
// sequence numbers instead of (level, worker, index) triples, so the
// stream is position independent. Segments are written bottom-up (deepest
// variable first), which means every child reference points strictly
// backwards in the stream — a reader can materialize nodes in a single
// pass, and child references compress well as small varint deltas
// (level-local delta encoding, cf. Hansen et al., "Compressing Binary
// Decision Diagrams").
//
// Layout:
//
//	header (32 bytes, fixed):
//	  magic      [8]byte  "BFBDSNAP"
//	  version    uint16
//	  flags      uint16   (bit 0: delta-encoded child refs)
//	  numVars    uint32
//	  numRoots   uint32
//	  totalNodes uint64
//	  headerCRC  uint32   (IEEE CRC-32 of the 28 preceding bytes)
//
//	then a series of sections, each:
//	  kind    uint8   (1 varorder, 2 level segment, 3 roots, 4 end)
//	  length  uint32  (payload bytes, little endian)
//	  payload [length]byte
//	  crc     uint32  (IEEE CRC-32 of payload)
//
//	varorder payload: numVars × uvarint(level of variable v) — a
//	  permutation of [0, numVars).
//	level-segment payload: uvarint(level), uvarint(count), then count ×
//	  (uvarint low, uvarint high). Segments appear in strictly decreasing
//	  level order. Node sequence numbers are implicit: nodes are numbered
//	  0, 1, 2, … in stream order across all segments.
//	roots payload: numRoots × (uvarint id, uvarint node), node raw-encoded.
//	end payload: empty; marks a complete stream.
//
// Child/root encoding: 0 is the Zero terminal, 1 is the One terminal.
// With delta refs (flag bit 0), a child of the node with sequence number
// cur encodes as 1 + (cur - child); without, and always in the roots
// section, as 2 + child.
//
// Every malformed input is reported as a typed error (ErrBadMagic,
// ErrVersion, ErrChecksum, ErrTruncated, ErrCorrupt); the reader never
// panics on untrusted bytes.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"bfbdd/internal/node"
)

// Magic identifies a snapshot stream.
const Magic = "BFBDSNAP"

// Version is the format version this package writes.
const Version = 1

// HeaderSize is the byte length of the fixed header.
const HeaderSize = 32

// FlagDeltaRefs marks streams whose level segments delta-encode child
// references against the current node's sequence number.
const FlagDeltaRefs = 1 << 0

// Section kinds.
const (
	secVarOrder = 1
	secLevel    = 2
	secRoots    = 3
	secEnd      = 4
)

// maxSectionLen bounds a single section payload; longer claims are
// rejected as corrupt before any allocation of that size is attempted.
const maxSectionLen = 1 << 30

// Typed decode errors. Every reader failure wraps exactly one of these.
var (
	// ErrBadMagic means the stream does not start with the snapshot magic.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion means the stream's version or flags are not supported.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrChecksum means a section's CRC does not match its payload.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrTruncated means the stream ended before the end-of-stream marker.
	ErrTruncated = errors.New("snapshot: truncated stream")
	// ErrCorrupt means the stream is structurally invalid (bad varint,
	// out-of-order segment, dangling reference, count mismatch, …).
	ErrCorrupt = errors.New("snapshot: corrupt stream")
	// ErrTooLarge means the graph exceeds the format's limits.
	ErrTooLarge = errors.New("snapshot: graph too large for format")
)

// corrupt wraps ErrCorrupt with detail.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// eofErr converts io EOF errors into ErrTruncated, passing others through.
func eofErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

// Header is the decoded fixed header of a snapshot stream.
type Header struct {
	Version    uint16
	Flags      uint16
	NumVars    int
	NumRoots   int
	TotalNodes uint64
}

// encode renders the header, including its trailing CRC.
func (h Header) encode() []byte {
	b := make([]byte, HeaderSize)
	copy(b, Magic)
	binary.LittleEndian.PutUint16(b[8:], h.Version)
	binary.LittleEndian.PutUint16(b[10:], h.Flags)
	binary.LittleEndian.PutUint32(b[12:], uint32(h.NumVars))
	binary.LittleEndian.PutUint32(b[16:], uint32(h.NumRoots))
	binary.LittleEndian.PutUint64(b[20:], h.TotalNodes)
	binary.LittleEndian.PutUint32(b[28:], crc32.ChecksumIEEE(b[:28]))
	return b
}

// ParseHeader decodes and validates a fixed header from b, which must
// hold at least HeaderSize bytes. It lets a caller vet a stream's
// dimensions (variable count, node count) against resource limits before
// committing to a full restore.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	if string(b[:8]) != Magic {
		return Header{}, ErrBadMagic
	}
	if got, want := binary.LittleEndian.Uint32(b[28:32]), crc32.ChecksumIEEE(b[:28]); got != want {
		return Header{}, fmt.Errorf("%w: header", ErrChecksum)
	}
	h := Header{
		Version:    binary.LittleEndian.Uint16(b[8:]),
		Flags:      binary.LittleEndian.Uint16(b[10:]),
		NumVars:    int(binary.LittleEndian.Uint32(b[12:])),
		NumRoots:   int(binary.LittleEndian.Uint32(b[16:])),
		TotalNodes: binary.LittleEndian.Uint64(b[20:]),
	}
	if h.Version != Version {
		return Header{}, fmt.Errorf("%w: version %d", ErrVersion, h.Version)
	}
	if h.Flags&^FlagDeltaRefs != 0 {
		return Header{}, fmt.Errorf("%w: unknown flags %#x", ErrVersion, h.Flags)
	}
	if h.NumVars >= node.MaxLevels {
		return Header{}, corrupt("variable count %d out of range", h.NumVars)
	}
	return h, nil
}

// Root labels one externally meaningful entry point into the node graph.
// IDs are opaque to the format; the service layer uses them to carry its
// wire handle numbers across a save/restore cycle.
type Root struct {
	ID  uint64
	Ref node.Ref
}
