package snapshot_test

import (
	"bytes"
	"errors"
	"testing"

	"bfbdd"
	"bfbdd/internal/snapshot"
)

// seedStreams builds a few valid snapshots of different shapes so the
// fuzzer starts from structurally interesting corpus entries rather than
// discovering the framing from scratch.
func seedStreams(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte

	add := func(m *bfbdd.Manager, roots ...*bfbdd.BDD) {
		var buf bytes.Buffer
		if err := m.Snapshot(&buf, roots...); err != nil {
			f.Fatalf("seed snapshot: %v", err)
		}
		out = append(out, buf.Bytes())
		m.Close()
	}

	m := bfbdd.New(6)
	add(m, m.Var(0).And(m.Var(3)).Or(m.Var(5).Not()))

	m = bfbdd.New(4)
	add(m) // no roots

	m = bfbdd.New(3)
	add(m, m.Zero(), m.One()) // terminal-only roots

	m = bfbdd.New(8)
	var raw bytes.Buffer
	g := m.Var(1).Xor(m.Var(6)).Implies(m.Var(2))
	if err := m.SnapshotRoots(&raw, []bfbdd.SnapshotRoot{{ID: 7, B: g}},
		bfbdd.SnapshotRawRefs()); err != nil {
		f.Fatalf("raw seed: %v", err)
	}
	out = append(out, raw.Bytes())
	m.Close()
	return out
}

// FuzzRestore feeds arbitrary bytes through both the structural decoder
// (Inspect) and the full restore path. Neither may panic; failures must
// be one of the package's typed errors.
func FuzzRestore(f *testing.F) {
	for _, s := range seedStreams(f) {
		f.Add(s)
	}
	f.Add([]byte("BFBDSNAP"))
	f.Add([]byte{})

	typed := []error{
		snapshot.ErrBadMagic, snapshot.ErrVersion, snapshot.ErrChecksum,
		snapshot.ErrTruncated, snapshot.ErrCorrupt, snapshot.ErrTooLarge,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := snapshot.Inspect(bytes.NewReader(data)); err != nil {
			ok := false
			for _, te := range typed {
				if errors.Is(err, te) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("Inspect: untyped error %v", err)
			}
		}
		m, _, err := bfbdd.RestoreManager(bytes.NewReader(data))
		if err == nil {
			m.Close()
		}
	})
}
