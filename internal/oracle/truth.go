// Package oracle is the cross-engine differential and metamorphic
// testing subsystem: it generates seeded random operation sequences,
// executes them against every construction engine (df, bf, hybrid, pbf,
// par×{1,2,4}) plus an exhaustive truth-table evaluator, cross-checks
// canonical structure, evaluation, and Boolean identities, and on any
// divergence records a replayable trace and shrinks it to a minimal
// failing case. See DESIGN.md §9.
package oracle

import (
	"math/big"
	"math/bits"

	"bfbdd/internal/core"
)

// MaxVars bounds the truth-table ground truth: 2^14 rows is 2 KiB per
// function, small enough to keep thousands of live tables per sequence.
const MaxVars = 14

// Truth is the exhaustive truth table of a Boolean function over a fixed
// variable count: bit r of the table (word r/64, bit r%64) is the
// function's value on the assignment where variable v takes bit v of r.
// This is the oracle's ground truth; every engine result is checked
// against it.
type Truth struct {
	Vars int
	W    []uint64
}

// rows returns the assignment count.
func (t Truth) rows() int { return 1 << t.Vars }

// words returns the backing word count for a variable count.
func words(vars int) int {
	if vars <= 6 {
		return 1
	}
	return 1 << (vars - 6)
}

// topMask masks the valid bits of the last word.
func topMask(vars int) uint64 {
	if vars >= 6 {
		return ^uint64(0)
	}
	return ^uint64(0) >> (64 - (1 << vars))
}

// TruthConst returns the constant function.
func TruthConst(vars int, v bool) Truth {
	t := Truth{Vars: vars, W: make([]uint64, words(vars))}
	if v {
		for i := range t.W {
			t.W[i] = ^uint64(0)
		}
		t.W[len(t.W)-1] &= topMask(vars)
	}
	return t
}

// TruthVar returns the projection function of variable v.
func TruthVar(vars, v int) Truth {
	t := Truth{Vars: vars, W: make([]uint64, words(vars))}
	for r := 0; r < t.rows(); r++ {
		if r>>v&1 == 1 {
			t.W[r>>6] |= 1 << (r & 63)
		}
	}
	return t
}

// Bit returns the function's value on assignment row r.
func (t Truth) Bit(r int) bool { return t.W[r>>6]>>(r&63)&1 == 1 }

// setBit sets row r to 1.
func (t Truth) setBit(r int) { t.W[r>>6] |= 1 << (r & 63) }

// Bin applies a binary operation word-wise.
func (t Truth) Bin(op core.Op, u Truth) Truth {
	out := Truth{Vars: t.Vars, W: make([]uint64, len(t.W))}
	full := topMask(t.Vars)
	for i := range t.W {
		a, b := t.W[i], u.W[i]
		var w uint64
		switch op {
		case core.OpAnd:
			w = a & b
		case core.OpOr:
			w = a | b
		case core.OpXor:
			w = a ^ b
		case core.OpNand:
			w = ^(a & b)
		case core.OpNor:
			w = ^(a | b)
		case core.OpXnor:
			w = ^(a ^ b)
		case core.OpDiff:
			w = a &^ b
		case core.OpImp:
			w = ^a | b
		default:
			panic("oracle: Bin on " + op.String())
		}
		out.W[i] = w
	}
	if t.Vars < 6 {
		out.W[0] &= full
	}
	return out
}

// Not complements the function.
func (t Truth) Not() Truth {
	out := Truth{Vars: t.Vars, W: make([]uint64, len(t.W))}
	for i := range t.W {
		out.W[i] = ^t.W[i]
	}
	if t.Vars < 6 {
		out.W[0] &= topMask(t.Vars)
	}
	return out
}

// Restrict fixes variable v to val.
func (t Truth) Restrict(v int, val bool) Truth {
	out := Truth{Vars: t.Vars, W: make([]uint64, len(t.W))}
	for r := 0; r < t.rows(); r++ {
		src := r &^ (1 << v)
		if val {
			src |= 1 << v
		}
		if t.Bit(src) {
			out.setBit(r)
		}
	}
	return out
}

// quantVar folds one variable out: exists (OR of cofactors) when ex,
// forall (AND) otherwise.
func (t Truth) quantVar(v int, ex bool) Truth {
	out := Truth{Vars: t.Vars, W: make([]uint64, len(t.W))}
	for r := 0; r < t.rows(); r++ {
		b0 := t.Bit(r &^ (1 << v))
		b1 := t.Bit(r | 1<<v)
		var b bool
		if ex {
			b = b0 || b1
		} else {
			b = b0 && b1
		}
		if b {
			out.setBit(r)
		}
	}
	return out
}

// Exists quantifies out every variable whose bit is set in mask.
func (t Truth) Exists(mask uint32) Truth {
	for v := 0; v < t.Vars; v++ {
		if mask>>v&1 == 1 {
			t = t.quantVar(v, true)
		}
	}
	return t
}

// Forall is the universal counterpart of Exists.
func (t Truth) Forall(mask uint32) Truth {
	for v := 0; v < t.Vars; v++ {
		if mask>>v&1 == 1 {
			t = t.quantVar(v, false)
		}
	}
	return t
}

// Count returns the number of satisfying assignments.
func (t Truth) Count() *big.Int {
	n := 0
	for _, w := range t.W {
		n += bits.OnesCount64(w)
	}
	return big.NewInt(int64(n))
}

// IsZero reports whether the function is constant false.
func (t Truth) IsZero() bool {
	for _, w := range t.W {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports table equality.
func (t Truth) Equal(u Truth) bool {
	if t.Vars != u.Vars {
		return false
	}
	for i := range t.W {
		if t.W[i] != u.W[i] {
			return false
		}
	}
	return true
}

// Assignment expands row r into the []bool form Manager.Eval expects.
func Assignment(vars, r int) []bool {
	a := make([]bool, vars)
	for v := 0; v < vars; v++ {
		a[v] = r>>v&1 == 1
	}
	return a
}
