package oracle_test

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bfbdd/internal/core"
	"bfbdd/internal/oracle"
)

// evalRec recomputes one row of an op result directly from operand rows,
// as an independent check on the word-parallel Truth implementation.
func evalRec(op core.Op, a, b bool) bool {
	switch op {
	case core.OpAnd:
		return a && b
	case core.OpOr:
		return a || b
	case core.OpXor:
		return a != b
	case core.OpNand:
		return !(a && b)
	case core.OpNor:
		return !(a || b)
	case core.OpXnor:
		return a == b
	case core.OpDiff:
		return a && !b
	case core.OpImp:
		return !a || b
	}
	panic("unknown op")
}

// TestTruthOps checks the word-parallel table ops against row-by-row
// recomputation, on widths below and above one word.
func TestTruthOps(t *testing.T) {
	for _, vars := range []int{3, 6, 8} {
		rng := rand.New(rand.NewSource(int64(vars) * 7919))
		// Random tables via XOR of random projections and restrictions.
		a := oracle.TruthVar(vars, rng.Intn(vars))
		b := oracle.TruthConst(vars, true)
		for i := 0; i < 5; i++ {
			a = a.Bin(core.OpXor, oracle.TruthVar(vars, rng.Intn(vars)).Restrict(rng.Intn(vars), rng.Intn(2) == 1))
			b = b.Bin(core.Op(rng.Intn(8)), oracle.TruthVar(vars, rng.Intn(vars)))
		}
		for op := core.Op(0); op < 8; op++ {
			got := a.Bin(op, b)
			for r := 0; r < 1<<vars; r++ {
				if got.Bit(r) != evalRec(op, a.Bit(r), b.Bit(r)) {
					t.Fatalf("vars=%d op=%v row=%d: Bin disagrees with row recompute", vars, op, r)
				}
			}
		}
		n := a.Not()
		ex := a.Exists(0b11)
		fa := a.Forall(0b11)
		count := 0
		for r := 0; r < 1<<vars; r++ {
			if n.Bit(r) == a.Bit(r) {
				t.Fatalf("vars=%d row=%d: Not did not flip", vars, r)
			}
			r00 := r &^ 0b11
			anyRow := a.Bit(r00) || a.Bit(r00|1) || a.Bit(r00|2) || a.Bit(r00|3)
			allRow := a.Bit(r00) && a.Bit(r00|1) && a.Bit(r00|2) && a.Bit(r00|3)
			if ex.Bit(r) != anyRow || fa.Bit(r) != allRow {
				t.Fatalf("vars=%d row=%d: quantifier disagrees with cofactor scan", vars, r)
			}
			if a.Bit(r) {
				count++
			}
		}
		if a.Count().Int64() != int64(count) {
			t.Fatalf("vars=%d: Count=%v, brute force %d", vars, a.Count(), count)
		}
	}
}

// TestGenerateDeterministic checks that a Config expands to the same
// sequence and byte-identical trace every time.
func TestGenerateDeterministic(t *testing.T) {
	cfg := oracle.Config{Seed: 42, Vars: 8, Ops: 120}
	s1, s2 := oracle.Generate(cfg), oracle.Generate(cfg)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("Generate is not deterministic for a fixed Config")
	}
	t1, t2 := strings.Join(s1.Trace(), "\n"), strings.Join(s2.Trace(), "\n")
	if t1 != t2 {
		t.Fatal("Trace rendering is not deterministic")
	}
	if len(s1.Ops) != cfg.Ops {
		t.Fatalf("Generate produced %d ops, want %d", len(s1.Ops), cfg.Ops)
	}
}

// TestRunSmoke executes generated sequences across the full engine
// matrix and expects no divergence. Sizes are kept small so the test is
// -race friendly; cmd/bfbdd-fuzz is the deep version.
func TestRunSmoke(t *testing.T) {
	engines := oracle.DefaultEngines()
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := oracle.Config{Seed: seed, Vars: 6, Ops: 30}
		rep := oracle.Run(oracle.Generate(cfg), engines)
		if rep.Div != nil {
			t.Fatalf("seed %d: %s\ntrace:\n%s", seed, rep.Div, rep.Seq)
		}
		if rep.Executed != cfg.Ops {
			t.Fatalf("seed %d: executed %d of %d ops without a divergence", seed, rep.Executed, cfg.Ops)
		}
	}
}

// TestCompileOp pins a sequence with an explicit compile op so the
// compiled-artifact cross-check (read path vs truth table vs live
// manager, byte-identical serialization across engines) runs even when
// generated sequences happen not to draw one.
func TestCompileOp(t *testing.T) {
	seq := oracle.Sequence{
		Vars: 6,
		Ops: []oracle.OpRec{
			{Kind: oracle.KApply, Op: oracle.OpAnd, A: 2, B: 3, Seed: 101},
			{Kind: oracle.KApply, Op: oracle.OpXor, A: 4, B: 5, Seed: 102},
			{Kind: oracle.KApply, Op: oracle.OpOr, A: 8, B: 9, Seed: 103},
			{Kind: oracle.KNot, A: 10, Seed: 104},
			{Kind: oracle.KCompile, Seed: 105},
			{Kind: oracle.KReorder, A: 10, Seed: 106},
			{Kind: oracle.KCompile, Seed: 107}, // again under a shuffled order
		},
	}
	rep := oracle.Run(seq, oracle.DefaultEngines())
	if rep.Div != nil {
		t.Fatalf("%s\ntrace:\n%s", rep.Div, rep.Seq)
	}
}

// TestSpillOp pins a sequence with explicit spill ops so the memory-tier
// round trip (spill → sig unchanged → unspill → sig unchanged, cross-
// engine) runs even when generated sequences happen not to draw one, and
// interleaves it with the ops most likely to trip tiering bugs: builds
// over a spilled store, GC, and reordering right after a round trip.
func TestSpillOp(t *testing.T) {
	seq := oracle.Sequence{
		Vars: 6,
		Ops: []oracle.OpRec{
			{Kind: oracle.KApply, Op: oracle.OpAnd, A: 2, B: 3, Seed: 201},
			{Kind: oracle.KApply, Op: oracle.OpXor, A: 4, B: 5, Seed: 202},
			{Kind: oracle.KApply, Op: oracle.OpOr, A: 8, B: 9, Seed: 203},
			{Kind: oracle.KSpill, A: 10, Seed: 204},
			{Kind: oracle.KApply, Op: oracle.OpImp, A: 10, B: 6, Seed: 205},
			{Kind: oracle.KSpill, A: 11, Seed: 206},
			{Kind: oracle.KGC, A: 10, Seed: 207},
			{Kind: oracle.KSpill, A: 8, Seed: 208},
			{Kind: oracle.KReorder, A: 10, Seed: 209},
			{Kind: oracle.KSpill, A: 11, Seed: 210},
			{Kind: oracle.KSnapshot, Seed: 211},
		},
	}
	rep := oracle.Run(seq, oracle.DefaultEngines())
	if rep.Div != nil {
		t.Fatalf("%s\ntrace:\n%s", rep.Div, rep.Seq)
	}
}

// TestRunVerdictDeterministic re-runs the same sequence and requires the
// identical verdict string, the property replay verification rests on.
func TestRunVerdictDeterministic(t *testing.T) {
	engines := oracle.DefaultEngines()
	seq := oracle.Generate(oracle.Config{Seed: 99, Vars: 5, Ops: 25})
	v1 := oracle.Run(seq, engines).Verdict()
	v2 := oracle.Run(seq, engines).Verdict()
	if v1 != v2 {
		t.Fatalf("verdicts differ across runs: %q vs %q", v1, v2)
	}
	if v1 != "pass" {
		t.Fatalf("expected a passing sequence, got %q", v1)
	}
}

// TestShrinkSynthetic drives the shrinker with a pure predicate — no
// engines involved — and expects it to isolate the single relevant op
// and collapse the variable count.
func TestShrinkSynthetic(t *testing.T) {
	seq := oracle.Generate(oracle.Config{Seed: 7, Vars: 9, Ops: 80})
	fails := func(s oracle.Sequence) bool {
		for _, r := range s.Ops {
			if r.Kind == oracle.KApply && r.Op == oracle.OpDiff {
				return true
			}
		}
		return false
	}
	if !fails(seq) {
		t.Skip("seed produced no Diff apply; adjust seed")
	}
	shrunk := oracle.Shrink(seq, fails, 2000)
	if len(shrunk.Ops) != 1 {
		t.Fatalf("shrunk to %d ops, want 1:\n%s", len(shrunk.Ops), shrunk)
	}
	if shrunk.Vars != 1 {
		t.Fatalf("shrunk to %d vars, want 1", shrunk.Vars)
	}
	if !fails(shrunk) {
		t.Fatal("shrunk sequence no longer satisfies the predicate")
	}
}

// TestShrinkIrreproducible checks that Shrink leaves a sequence alone
// when the predicate never fires.
func TestShrinkIrreproducible(t *testing.T) {
	seq := oracle.Generate(oracle.Config{Seed: 11, Vars: 4, Ops: 20})
	out := oracle.Shrink(seq, func(oracle.Sequence) bool { return false }, 100)
	if !reflect.DeepEqual(out, seq) {
		t.Fatal("Shrink modified an irreproducible sequence")
	}
}

// TestReplayRoundTrip writes a replay, reads it back, verifies it, and
// then checks that tampering with the trace or verdict is detected.
func TestReplayRoundTrip(t *testing.T) {
	engines := oracle.DefaultEngines()
	cfg := oracle.Config{Seed: 1234, Vars: 5, Ops: 20}
	rep := oracle.Run(oracle.Generate(cfg), engines)
	if rep.Div != nil {
		t.Fatalf("unexpected divergence: %s", rep.Div)
	}
	rp := oracle.NewReplay(cfg, rep)
	path := filepath.Join(t.TempDir(), "replay.json")
	if err := oracle.WriteReplay(path, rp); err != nil {
		t.Fatalf("WriteReplay: %v", err)
	}
	got, err := oracle.ReadReplay(path)
	if err != nil {
		t.Fatalf("ReadReplay: %v", err)
	}
	if !reflect.DeepEqual(got, rp) {
		t.Fatal("replay did not round-trip through JSON")
	}
	if err := got.Verify(engines); err != nil {
		t.Fatalf("Verify on a faithful replay: %v", err)
	}
	tampered := *got
	tampered.Trace = append([]string(nil), got.Trace...)
	tampered.Trace[3] = "3: not s0"
	if err := tampered.Verify(engines); err == nil {
		t.Fatal("Verify accepted a tampered trace")
	}
	tampered2 := *got
	tampered2.Verdict = "divergence at op 0 [df/eval]: fabricated"
	if err := tampered2.Verify(engines); err == nil {
		t.Fatal("Verify accepted a tampered verdict")
	}
}

// TestRegressionTestRendering spot-checks the generated Go source.
func TestRegressionTestRendering(t *testing.T) {
	seq := oracle.Sequence{Vars: 2, Ops: []oracle.OpRec{
		{Kind: oracle.KApply, Op: oracle.OpDiff, A: 3, B: 3, Seed: 5},
		{Kind: oracle.KSatCount, A: 4},
	}}
	src := oracle.RegressionTest(seq)
	for _, want := range []string{
		"func TestOracleRegression(t *testing.T)",
		"oracle.Sequence{",
		"Vars: 2",
		"{Kind: oracle.KApply, Op: oracle.OpDiff, A: 3, B: 3, Seed: 5}",
		"{Kind: oracle.KSatCount, A: 4}",
		"oracle.DefaultEngines()",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("generated test missing %q:\n%s", want, src)
		}
	}
}

// TestParseEngines exercises the CLI engine selector.
func TestParseEngines(t *testing.T) {
	all, err := oracle.ParseEngines("all")
	if err != nil || len(all) != len(oracle.DefaultEngines()) {
		t.Fatalf("ParseEngines(all) = %d engines, err %v", len(all), err)
	}
	two, err := oracle.ParseEngines("df, par4")
	if err != nil || len(two) != 2 || two[0].Name != "df" || two[1].Name != "par4" {
		t.Fatalf("ParseEngines(df, par4) = %+v, err %v", two, err)
	}
	if _, err := oracle.ParseEngines("df,nope"); err == nil {
		t.Fatal("ParseEngines accepted an unknown engine")
	}
}
