package oracle

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReplayVersion is the current replay-file format version. OpKind and
// the OpRec JSON encoding are append-only, so older files stay readable.
const ReplayVersion = 1

// Replay is the on-disk record of one fuzzed sequence — enough to
// regenerate it from its seed, re-execute it, and confirm the same
// verdict byte for byte. Failing replays also carry the shrunk sequence
// and a ready-to-paste regression test.
type Replay struct {
	Version        int       `json:"version"`
	Seed           int64     `json:"seed"`
	Vars           int       `json:"vars"`
	Ops            int       `json:"ops"`
	Verdict        string    `json:"verdict"`
	Trace          []string  `json:"trace"`
	Shrunk         *Sequence `json:"shrunk,omitempty"`
	ShrunkOps      int       `json:"shrunk_ops,omitempty"`
	ShrunkVerdict  string    `json:"shrunk_verdict,omitempty"`
	RegressionTest string    `json:"regression_test,omitempty"`
}

// NewReplay records the generation parameters and outcome of one run.
func NewReplay(cfg Config, rep Report) *Replay {
	return &Replay{
		Version: ReplayVersion,
		Seed:    cfg.Seed,
		Vars:    cfg.Vars,
		Ops:     cfg.Ops,
		Verdict: rep.Verdict(),
		Trace:   rep.Seq.Trace(),
	}
}

// AttachShrunk adds the minimized sequence, its verdict, and the
// generated regression test to the replay.
func (rp *Replay) AttachShrunk(shrunk Sequence, verdict string) {
	s := shrunk
	rp.Shrunk = &s
	rp.ShrunkOps = len(s.Ops)
	rp.ShrunkVerdict = verdict
	rp.RegressionTest = RegressionTest(s)
}

// Verify regenerates the sequence from the recorded seed and re-executes
// it: the regenerated trace must match the recorded one byte for byte,
// and the fresh verdict (and shrunk verdict, when present) must equal
// what the file claims. This is the replay guarantee — a failure seed is
// sufficient to reproduce the exact op trace and outcome.
func (rp *Replay) Verify(engines []EngineSpec) error {
	if rp.Version != ReplayVersion {
		return fmt.Errorf("oracle: replay version %d, this build reads %d", rp.Version, ReplayVersion)
	}
	seq := Generate(Config{Seed: rp.Seed, Vars: rp.Vars, Ops: rp.Ops})
	trace := seq.Trace()
	if len(trace) != len(rp.Trace) {
		return fmt.Errorf("oracle: regenerated trace has %d ops, file has %d", len(trace), len(rp.Trace))
	}
	for i := range trace {
		if trace[i] != rp.Trace[i] {
			return fmt.Errorf("oracle: trace diverges at line %d: regenerated %q, file %q",
				i, trace[i], rp.Trace[i])
		}
	}
	if got := Run(seq, engines).Verdict(); got != rp.Verdict {
		return fmt.Errorf("oracle: verdict mismatch: re-run says %q, file says %q", got, rp.Verdict)
	}
	if rp.Shrunk != nil {
		if got := Run(*rp.Shrunk, engines).Verdict(); got != rp.ShrunkVerdict {
			return fmt.Errorf("oracle: shrunk verdict mismatch: re-run says %q, file says %q",
				got, rp.ShrunkVerdict)
		}
	}
	return nil
}

// WriteReplay writes the replay as indented JSON.
func WriteReplay(path string, rp *Replay) error {
	data, err := json.MarshalIndent(rp, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReplay parses a replay file.
func ReadReplay(path string) (*Replay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rp := new(Replay)
	if err := json.Unmarshal(data, rp); err != nil {
		return nil, fmt.Errorf("oracle: bad replay file %s: %w", path, err)
	}
	return rp, nil
}
