package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"bfbdd/internal/core"
)

// Re-exported operation codes so shrunk regression tests read naturally
// without importing internal/core.
const (
	OpAnd  = core.OpAnd
	OpOr   = core.OpOr
	OpXor  = core.OpXor
	OpNand = core.OpNand
	OpNor  = core.OpNor
	OpXnor = core.OpXnor
	OpDiff = core.OpDiff
	OpImp  = core.OpImp
)

// numBinOps is the binary operation alphabet size (OpAnd..OpImp).
const numBinOps = 8

// OpKind enumerates the operation-sequence grammar. Producing kinds
// append one or more function slots; checking kinds verify properties of
// existing slots without growing the sequence's state.
type OpKind int

// The grammar. Kinds are part of the replay-file format — append only.
const (
	// KApply: slots += Apply(Op, slot A, slot B). Producing.
	KApply OpKind = iota
	// KNot: slots += ¬(slot A). Producing.
	KNot
	// KRestrict: slots += (slot A)|_{Var=Val}. Producing.
	KRestrict
	// KExists: slots += ∃(VarsMask)(slot A). Producing.
	KExists
	// KForall: slots += ∀(VarsMask)(slot A). Producing.
	KForall
	// KCircuit: build a pseudo-random netlist DAG (netlist.Random with
	// Seed) gate by gate through the engine's Apply path and append its
	// output functions. A resolves the input count, B the gate count.
	// Producing (several slots).
	KCircuit
	// KMeta: check metamorphic Boolean identities (De Morgan, absorption,
	// f⊕f=0, implication expansion, quantifier duality over Var) on
	// slots A and B. Checking.
	KMeta
	// KEval: evaluate slot A on random assignment rows (from Seed)
	// against the truth table, on every engine. Checking.
	KEval
	// KAnySat: AnySat(slot A) must produce a satisfying partial
	// assignment exactly when the truth table is satisfiable. Checking.
	KAnySat
	// KSatCount: SatCount(slot A) must equal the truth-table model
	// count. Checking.
	KSatCount
	// KGC: force a collection on every engine, then re-verify slot A.
	// Checking.
	KGC
	// KReorder: install a random variable order (permutation from Seed)
	// on every engine, then re-verify slot A. Checking.
	KReorder
	// KSnapshot: snapshot every slot, restore into a fresh manager,
	// compare restored structure against the original, and require the
	// re-snapshot to be byte-identical. Checking.
	KSnapshot
	// KAbort: probe abort recovery on every engine — a pre-canceled
	// ApplyCtx and a build under a deliberately tiny node budget — then
	// re-verify slot A to prove the manager stayed usable. Checking.
	KAbort
	// KCompile: freeze every slot into a compiled function artifact on
	// every engine, then cross-check the read path — Eval, EvalBatch,
	// SatCount — against the truth table and the live manager, require
	// the serialized artifact to be byte-identical across engines, and
	// round-trip it through the hostile-hardened loader. Checking.
	KCompile
	// KSpill: tier every level down to the spill store on every engine,
	// verify slot A's canonical structure is unchanged while spilled,
	// unspill, and re-verify — the memory tier must be invisible to the
	// function semantics. Checking.
	KSpill
	numKinds
)

var kindNames = [numKinds]string{
	"apply", "not", "restrict", "exists", "forall", "circuit",
	"meta", "eval", "anysat", "satcount", "gc", "reorder", "snapshot", "abort",
	"compile", "spill",
}

// String returns the kind mnemonic.
func (k OpKind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// OpRec is one operation of a sequence. Slot operands A and B are raw
// draws resolved modulo the live slot count at execution time, and Var
// is resolved modulo the variable count — so removing earlier operations
// or shrinking the variable count keeps every record executable, which
// is what makes delta-debugging possible.
type OpRec struct {
	Kind     OpKind  `json:"kind"`
	Op       core.Op `json:"op,omitempty"`
	A        int     `json:"a,omitempty"`
	B        int     `json:"b,omitempty"`
	Var      int     `json:"var,omitempty"`
	Val      bool    `json:"val,omitempty"`
	VarsMask uint32  `json:"mask,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

// String renders the record for the replay trace. The rendering is a
// pure function of the record, so traces regenerate byte-identically
// from the sequence seed.
func (r OpRec) String() string {
	switch r.Kind {
	case KApply:
		return fmt.Sprintf("apply %s s%d s%d", r.Op, r.A, r.B)
	case KNot:
		return fmt.Sprintf("not s%d", r.A)
	case KRestrict:
		return fmt.Sprintf("restrict s%d v%d=%v", r.A, r.Var, r.Val)
	case KExists:
		return fmt.Sprintf("exists s%d m%#x", r.A, r.VarsMask)
	case KForall:
		return fmt.Sprintf("forall s%d m%#x", r.A, r.VarsMask)
	case KCircuit:
		return fmt.Sprintf("circuit in%d g%d seed%d", r.A, r.B, r.Seed)
	case KMeta:
		return fmt.Sprintf("meta s%d s%d v%d", r.A, r.B, r.Var)
	case KEval:
		return fmt.Sprintf("eval s%d seed%d", r.A, r.Seed)
	case KAnySat:
		return fmt.Sprintf("anysat s%d", r.A)
	case KSatCount:
		return fmt.Sprintf("satcount s%d", r.A)
	case KGC:
		return fmt.Sprintf("gc s%d", r.A)
	case KReorder:
		return fmt.Sprintf("reorder s%d seed%d", r.A, r.Seed)
	case KSnapshot:
		return "snapshot"
	case KAbort:
		return fmt.Sprintf("abort %s s%d s%d", r.Op, r.A, r.B)
	case KCompile:
		return fmt.Sprintf("compile seed%d", r.Seed)
	case KSpill:
		return fmt.Sprintf("spill s%d", r.A)
	}
	return r.Kind.String()
}

// producing reports whether the record appends function slots, and how
// many (circuits append up to circuitMaxOutputs).
func (r OpRec) producing() bool {
	switch r.Kind {
	case KApply, KNot, KRestrict, KExists, KForall, KCircuit:
		return true
	}
	return false
}

// Sequence is a deterministic operation program over Vars variables.
type Sequence struct {
	Vars int     `json:"vars"`
	Ops  []OpRec `json:"ops"`
}

// Trace renders one line per operation, prefixed with its index.
func (s Sequence) Trace() []string {
	out := make([]string, len(s.Ops))
	for i, r := range s.Ops {
		out[i] = fmt.Sprintf("%d: %s", i, r)
	}
	return out
}

// String joins the trace for error messages.
func (s Sequence) String() string {
	return fmt.Sprintf("vars=%d\n%s", s.Vars, strings.Join(s.Trace(), "\n"))
}

// Config parameterizes sequence generation.
type Config struct {
	Seed int64
	Vars int // 1..MaxVars
	Ops  int
}

// circuit op bounds: inputs resolve into [1, vars], gates into
// [4, 4+circuitMaxGates), outputs capped by netlist.Random at 8.
const circuitMaxGates = 12

// Generate expands a seed into an explicit operation sequence. The same
// Config always yields the same Sequence; all execution-time randomness
// (evaluation rows, permutations, circuit shapes) is carried in per-op
// Seed fields, so any subsequence executes deterministically too.
func Generate(cfg Config) Sequence {
	if cfg.Vars < 1 || cfg.Vars > MaxVars {
		panic(fmt.Sprintf("oracle: Generate with %d vars (want 1..%d)", cfg.Vars, MaxVars))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seq := Sequence{Vars: cfg.Vars}
	slots := baseSlots(cfg.Vars)
	for len(seq.Ops) < cfg.Ops {
		r := OpRec{Seed: rng.Int63()}
		switch p := rng.Intn(100); {
		case p < 50:
			r.Kind = KApply
			r.Op = core.Op(rng.Intn(numBinOps))
			r.A, r.B = rng.Intn(slots), rng.Intn(slots)
			if rng.Intn(8) == 0 {
				r.B = r.A // same-operand applies hit the f==g terminal rules
			}
		case p < 57:
			r.Kind = KNot
			r.A = rng.Intn(slots)
		case p < 63:
			r.Kind = KRestrict
			r.A, r.Var, r.Val = rng.Intn(slots), rng.Intn(cfg.Vars), rng.Intn(2) == 1
		case p < 67:
			r.Kind = KExists
			r.A, r.VarsMask = rng.Intn(slots), quantMask(rng, cfg.Vars)
		case p < 71:
			r.Kind = KForall
			r.A, r.VarsMask = rng.Intn(slots), quantMask(rng, cfg.Vars)
		case p < 74:
			r.Kind = KCircuit
			r.A = 1 + rng.Intn(cfg.Vars)        // input count
			r.B = 4 + rng.Intn(circuitMaxGates) // gate count
		case p < 80:
			r.Kind = KMeta
			r.A, r.B, r.Var = rng.Intn(slots), rng.Intn(slots), rng.Intn(cfg.Vars)
		case p < 86:
			r.Kind = KEval
			r.A = rng.Intn(slots)
		case p < 88:
			r.Kind = KAnySat
			r.A = rng.Intn(slots)
		case p < 90:
			r.Kind = KSatCount
			r.A = rng.Intn(slots)
		case p < 93:
			r.Kind = KGC
			r.A = rng.Intn(slots)
		case p < 95:
			r.Kind = KReorder
			r.A = rng.Intn(slots)
		case p < 97:
			r.Kind = KSnapshot
		case p < 98:
			r.Kind = KCompile
		case p < 99:
			r.Kind = KSpill
			r.A = rng.Intn(slots)
		default:
			r.Kind = KAbort
			r.Op = core.Op(rng.Intn(numBinOps))
			r.A, r.B = rng.Intn(slots), rng.Intn(slots)
		}
		seq.Ops = append(seq.Ops, r)
		if r.producing() {
			if r.Kind == KCircuit {
				slots += circuitOutputs(r)
			} else {
				slots++
			}
		}
	}
	return seq
}

// baseSlots is the fixed slot prefix: Zero, One, then one slot per
// variable. It never shrinks, so operand draws below it stay stable
// under delta-debugging.
func baseSlots(vars int) int { return 2 + vars }

// circuitOutputs is how many slots a KCircuit record appends:
// netlist.Random marks its last min(8, gates) gates as outputs.
func circuitOutputs(r OpRec) int {
	if r.B < 8 {
		return r.B
	}
	return 8
}

// quantMask draws a non-empty subset of up to three variables.
func quantMask(rng *rand.Rand, vars int) uint32 {
	var m uint32
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		m |= 1 << rng.Intn(vars)
	}
	return m
}
