package oracle

import (
	"fmt"
	"strings"
)

// Shrink delta-debugs a failing sequence down to a minimal one that
// still satisfies fails. It alternates three reducers to a fixpoint:
// greedy chunk removal over the op list (ddmin-style, halving chunk
// sizes), operand normalization (rewriting raw A/B/Var draws to their
// resolved values so the records read literally), and variable-count
// reduction. budget caps the number of fails evaluations, since each one
// typically re-runs every engine.
//
// Slot operands resolve modulo the live slot count, so removing ops
// never invalidates later records — it only changes which slot they pick
// up, and fails decides whether that still reproduces.
func Shrink(seq Sequence, fails func(Sequence) bool, budget int) Sequence {
	sh := &shrinker{fails: fails, budget: budget}
	if !sh.check(seq) {
		return seq // not reproducible under this predicate; don't touch it
	}
	for {
		ops, vars := len(seq.Ops), seq.Vars
		seq = sh.ddmin(seq)
		seq = sh.normalize(seq)
		seq = sh.shrinkVars(seq)
		if sh.budget <= 0 || (len(seq.Ops) == ops && seq.Vars == vars) {
			return seq
		}
	}
}

type shrinker struct {
	fails  func(Sequence) bool
	budget int
}

func (sh *shrinker) check(seq Sequence) bool {
	if sh.budget <= 0 {
		return false
	}
	sh.budget--
	return sh.fails(seq)
}

// ddmin removes chunks of operations at halving granularity, keeping any
// removal that still fails.
func (sh *shrinker) ddmin(seq Sequence) Sequence {
	for chunk := len(seq.Ops); chunk >= 1; chunk /= 2 {
		start := 0
		for start < len(seq.Ops) {
			if sh.budget <= 0 {
				return seq
			}
			end := start + chunk
			if end > len(seq.Ops) {
				end = len(seq.Ops)
			}
			cand := Sequence{Vars: seq.Vars, Ops: cutOps(seq.Ops, start, end)}
			if sh.check(cand) {
				seq = cand // same start now holds the next chunk
			} else {
				start = end
			}
		}
	}
	return seq
}

func cutOps(ops []OpRec, start, end int) []OpRec {
	out := make([]OpRec, 0, len(ops)-(end-start))
	out = append(out, ops[:start]...)
	return append(out, ops[end:]...)
}

// normalize rewrites raw operand draws to the values they resolve to at
// execution time and zeroes fields the op kind ignores, so the shrunk
// record reads literally. Resolution is semantics-preserving (the
// executor applies the same modulo), but the result is re-checked and
// dropped if the predicate disagrees.
func (sh *shrinker) normalize(seq Sequence) Sequence {
	out := Sequence{Vars: seq.Vars, Ops: append([]OpRec(nil), seq.Ops...)}
	slots := baseSlots(seq.Vars)
	for i := range out.Ops {
		r := &out.Ops[i]
		switch r.Kind {
		case KApply, KAbort:
			r.A, r.B = r.A%slots, r.B%slots
			r.Var, r.Val, r.VarsMask = 0, false, 0
		case KNot, KEval, KAnySat, KSatCount, KGC, KReorder, KSpill:
			r.A %= slots
			r.Op, r.B, r.Var, r.Val, r.VarsMask = 0, 0, 0, false, 0
		case KRestrict:
			r.A, r.Var = r.A%slots, r.Var%seq.Vars
			r.Op, r.B, r.VarsMask = 0, 0, 0
		case KExists, KForall:
			r.A, r.VarsMask = r.A%slots, r.VarsMask&(1<<seq.Vars-1)
			r.Op, r.B, r.Var, r.Val = 0, 0, 0, false
		case KMeta:
			r.A, r.B, r.Var = r.A%slots, r.B%slots, r.Var%seq.Vars
			r.Op, r.Val, r.VarsMask = 0, false, 0
		case KCircuit:
			r.A = (r.A-1)%seq.Vars + 1
			r.Op, r.Var, r.Val, r.VarsMask = 0, 0, false, 0
		case KSnapshot, KCompile:
			r.Op, r.A, r.B, r.Var, r.Val, r.VarsMask = 0, 0, 0, 0, false, 0
		}
		if r.producing() {
			if r.Kind == KCircuit {
				slots += circuitOutputs(*r)
			} else {
				slots++
			}
		}
	}
	if sh.check(out) {
		return out
	}
	return seq
}

// shrinkVars lowers the variable count while the failure persists. Var
// and mask fields resolve modulo the variable count, so the ops stay
// executable at any width.
func (sh *shrinker) shrinkVars(seq Sequence) Sequence {
	for seq.Vars > 1 {
		cand := Sequence{Vars: seq.Vars - 1, Ops: seq.Ops}
		if !sh.check(cand) {
			return seq
		}
		seq = cand
	}
	return seq
}

// Go identifier tables for RegressionTest output.
var kindIdents = [numKinds]string{
	"KApply", "KNot", "KRestrict", "KExists", "KForall", "KCircuit",
	"KMeta", "KEval", "KAnySat", "KSatCount", "KGC", "KReorder", "KSnapshot", "KAbort",
	"KCompile", "KSpill",
}

var opIdents = [numBinOps]string{
	"OpAnd", "OpOr", "OpXor", "OpNand", "OpNor", "OpXnor", "OpDiff", "OpImp",
}

// RegressionTest renders a shrunk sequence as a ready-to-paste Go test
// against the oracle package.
func RegressionTest(seq Sequence) string {
	var b strings.Builder
	b.WriteString("func TestOracleRegression(t *testing.T) {\n")
	b.WriteString("\tseq := oracle.Sequence{\n")
	fmt.Fprintf(&b, "\t\tVars: %d,\n", seq.Vars)
	b.WriteString("\t\tOps: []oracle.OpRec{\n")
	for _, r := range seq.Ops {
		b.WriteString("\t\t\t" + recLiteral(r) + ",\n")
	}
	b.WriteString("\t\t},\n\t}\n")
	b.WriteString("\tif rep := oracle.Run(seq, oracle.DefaultEngines()); rep.Div != nil {\n")
	b.WriteString("\t\tt.Fatalf(\"divergence: %s\", rep.Div)\n\t}\n}\n")
	return b.String()
}

// recLiteral renders one record as a Go composite literal, omitting
// zero-valued fields.
func recLiteral(r OpRec) string {
	parts := []string{"Kind: oracle." + kindIdents[r.Kind]}
	if r.Op != 0 || r.Kind == KApply || r.Kind == KAbort {
		parts = append(parts, "Op: oracle."+opIdents[int(r.Op)%numBinOps])
	}
	if r.A != 0 {
		parts = append(parts, fmt.Sprintf("A: %d", r.A))
	}
	if r.B != 0 {
		parts = append(parts, fmt.Sprintf("B: %d", r.B))
	}
	if r.Var != 0 {
		parts = append(parts, fmt.Sprintf("Var: %d", r.Var))
	}
	if r.Val {
		parts = append(parts, "Val: true")
	}
	if r.VarsMask != 0 {
		parts = append(parts, fmt.Sprintf("VarsMask: %#x", r.VarsMask))
	}
	if r.Seed != 0 {
		parts = append(parts, fmt.Sprintf("Seed: %d", r.Seed))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
