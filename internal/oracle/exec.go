package oracle

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bfbdd"
	"bfbdd/internal/core"
	"bfbdd/internal/netlist"
	"bfbdd/internal/node"
)

// EngineSpec is one engine configuration under differential test.
type EngineSpec struct {
	Name string
	Opts []bfbdd.Option
}

// DefaultEngines returns the full cross-check matrix: the depth-first
// baseline, breadth-first, hybrid, partial breadth-first, and the
// parallel engine at 1, 2, and 4 workers. Thresholds and group sizes are
// deliberately tiny so context pushing, stealing, and GC all engage on
// small fuzz workloads; two engines get aggressive GC settings so
// automatic collections fire mid-sequence.
func DefaultEngines() []EngineSpec {
	return []EngineSpec{
		{"df", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EngineDF)}},
		{"bf", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EngineBF)}},
		{"hybrid", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EngineHybrid), bfbdd.WithEvalThreshold(8)}},
		{"pbf", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EnginePBF), bfbdd.WithEvalThreshold(8),
			bfbdd.WithGroupSize(4), bfbdd.WithGCMinNodes(256)}},
		{"par1", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(1),
			bfbdd.WithEvalThreshold(16), bfbdd.WithGroupSize(4)}},
		{"par2", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(2),
			bfbdd.WithEvalThreshold(8), bfbdd.WithGroupSize(4),
			bfbdd.WithGCPolicy(bfbdd.GCFreeList), bfbdd.WithGCMinNodes(512)}},
		{"par4", []bfbdd.Option{bfbdd.WithEngine(bfbdd.EnginePar), bfbdd.WithWorkers(4),
			bfbdd.WithEvalThreshold(16), bfbdd.WithGroupSize(8)}},
	}
}

// ParseEngines resolves a comma-separated engine list ("df,par4") against
// DefaultEngines; "all" or "" selects everything.
func ParseEngines(list string) ([]EngineSpec, error) {
	all := DefaultEngines()
	if list == "" || list == "all" {
		return all, nil
	}
	byName := make(map[string]EngineSpec, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	var out []EngineSpec
	for _, name := range strings.Split(list, ",") {
		s, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("oracle: unknown engine %q", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// Divergence describes one failed cross-check.
type Divergence struct {
	OpIndex int    `json:"op_index"`
	Engine  string `json:"engine"`
	Check   string `json:"check"`
	Detail  string `json:"detail"`
}

func (d *Divergence) String() string {
	return fmt.Sprintf("op %d [%s/%s]: %s", d.OpIndex, d.Engine, d.Check, d.Detail)
}

// Report is the outcome of one differential run.
type Report struct {
	Seq      Sequence
	Executed int         // operations completed before stopping
	Div      *Divergence // nil when the sequence passed every check
}

// Verdict renders the outcome as a stable one-line string; replay files
// compare verdicts byte-for-byte.
func (r Report) Verdict() string {
	if r.Div == nil {
		return "pass"
	}
	return "divergence at " + r.Div.String()
}

// engState is one engine's view of the sequence: its manager and the
// slot list of live function handles. Every engine executes the same
// ops, so slot lists stay index-aligned across engines and with the
// truth-table list.
type engState struct {
	spec  EngineSpec
	m     *bfbdd.Manager
	slots []*bfbdd.BDD
}

// sig computes the manager-independent canonical signature of slot i.
func (st *engState) sig(i int) []uint64 {
	return st.m.Kernel().CanonicalSignature([]node.Ref{st.slots[i].Ref()})
}

// Run executes the sequence against every engine and the truth-table
// evaluator, stopping at the first divergence. A panic anywhere in the
// kernel is reported as a divergence rather than crashing the fuzzer.
func Run(seq Sequence, engines []EngineSpec) (rep Report) {
	rep.Seq = seq
	if seq.Vars < 1 || seq.Vars > MaxVars {
		panic(fmt.Sprintf("oracle: Run with %d vars", seq.Vars))
	}
	if len(engines) == 0 {
		panic("oracle: Run with no engines")
	}
	engs := make([]*engState, len(engines))
	truths := make([]Truth, 0, baseSlots(seq.Vars)+len(seq.Ops))
	truths = append(truths, TruthConst(seq.Vars, false), TruthConst(seq.Vars, true))
	for v := 0; v < seq.Vars; v++ {
		truths = append(truths, TruthVar(seq.Vars, v))
	}
	// Every engine gets a scratch spill tier so KSpill ops exercise the
	// memory-tiering path; if the temp dir can't be made the managers run
	// resident and KSpill degrades to a (passing) no-op round trip.
	spillRoot, rootErr := os.MkdirTemp("", "bfbdd-oracle-spill-*")
	defer func() {
		if rec := recover(); rec != nil {
			rep.Div = &Divergence{OpIndex: rep.Executed, Engine: "run",
				Check: "panic", Detail: fmt.Sprint(rec)}
		}
		for _, st := range engs {
			closeQuiet(st)
		}
		if rootErr == nil {
			os.RemoveAll(spillRoot)
		}
	}()
	for i, spec := range engines {
		opts := spec.Opts
		if rootErr == nil {
			// Not folded into spec.Opts: snapshot restore reuses those for a
			// second live manager, which must not share (and wipe) the dir.
			opts = append(append([]bfbdd.Option{}, spec.Opts...),
				bfbdd.WithSpillDir(filepath.Join(spillRoot, spec.Name)))
		}
		m := bfbdd.New(seq.Vars, opts...)
		st := &engState{spec: spec, m: m}
		st.slots = append(st.slots, m.Zero(), m.One())
		for v := 0; v < seq.Vars; v++ {
			st.slots = append(st.slots, m.Var(v))
		}
		engs[i] = st
	}
	ex := &executor{seq: seq, engs: engs, truths: truths}
	for i, r := range seq.Ops {
		if d := ex.step(i, r); d != nil {
			rep.Div = d
			rep.Executed = i
			return rep
		}
		rep.Executed = i + 1
	}
	return rep
}

// closeQuiet closes an engine state, swallowing panics from managers a
// detected kernel bug may have corrupted.
func closeQuiet(st *engState) {
	if st == nil || st.m == nil || st.m.Closed() {
		return
	}
	defer func() { _ = recover() }()
	st.m.Close()
}

type executor struct {
	seq    Sequence
	engs   []*engState
	truths []Truth
}

// slot resolves a raw operand draw against the live slot count.
func (ex *executor) slot(raw int) int { return raw % len(ex.truths) }

// step executes one record on every engine and cross-checks the results.
func (ex *executor) step(i int, r OpRec) *Divergence {
	vars := ex.seq.Vars
	switch r.Kind {
	case KApply:
		a, b := ex.slot(r.A), ex.slot(r.B)
		for _, st := range ex.engs {
			st.slots = append(st.slots, applyBDD(r.Op, st.slots[a], st.slots[b]))
		}
		ex.truths = append(ex.truths, ex.truths[a].Bin(r.Op, ex.truths[b]))
		return ex.checkNewest(i, r.Seed)
	case KNot:
		a := ex.slot(r.A)
		for _, st := range ex.engs {
			st.slots = append(st.slots, st.slots[a].Not())
		}
		ex.truths = append(ex.truths, ex.truths[a].Not())
		return ex.checkNewest(i, r.Seed)
	case KRestrict:
		a, v := ex.slot(r.A), r.Var%vars
		for _, st := range ex.engs {
			st.slots = append(st.slots, st.slots[a].Restrict(v, r.Val))
		}
		ex.truths = append(ex.truths, ex.truths[a].Restrict(v, r.Val))
		return ex.checkNewest(i, r.Seed)
	case KExists, KForall:
		a := ex.slot(r.A)
		mask := r.VarsMask & (1<<vars - 1)
		vs := maskVars(mask)
		for _, st := range ex.engs {
			var nb *bfbdd.BDD
			if r.Kind == KExists {
				nb = st.slots[a].Exists(vs...)
			} else {
				nb = st.slots[a].Forall(vs...)
			}
			st.slots = append(st.slots, nb)
		}
		if r.Kind == KExists {
			ex.truths = append(ex.truths, ex.truths[a].Exists(mask))
		} else {
			ex.truths = append(ex.truths, ex.truths[a].Forall(mask))
		}
		return ex.checkNewest(i, r.Seed)
	case KCircuit:
		return ex.execCircuit(i, r)
	case KMeta:
		return ex.execMeta(i, r)
	case KEval:
		a := ex.slot(r.A)
		rng := rand.New(rand.NewSource(r.Seed))
		for s := 0; s < 8; s++ {
			row := rng.Intn(1 << vars)
			if d := ex.checkRow(i, a, row); d != nil {
				return d
			}
		}
		return nil
	case KAnySat:
		return ex.execAnySat(i, r)
	case KSatCount:
		a := ex.slot(r.A)
		want := ex.truths[a].Count()
		for _, st := range ex.engs {
			if got := st.slots[a].SatCount(); got.Cmp(want) != 0 {
				return &Divergence{i, st.spec.Name, "satcount",
					fmt.Sprintf("slot %d: SatCount=%v truth=%v", a, got, want)}
			}
		}
		return nil
	case KGC:
		for _, st := range ex.engs {
			st.m.GC()
		}
		return ex.checkSlot(i, ex.slot(r.A), r.Seed)
	case KReorder:
		perm := rand.New(rand.NewSource(r.Seed)).Perm(vars)
		for _, st := range ex.engs {
			st.m.SetOrder(perm)
		}
		return ex.checkSlot(i, ex.slot(r.A), r.Seed)
	case KSnapshot:
		return ex.execSnapshot(i)
	case KAbort:
		return ex.execAbort(i, r)
	case KCompile:
		return ex.execCompile(i, r)
	case KSpill:
		return ex.execSpill(i, r)
	}
	return &Divergence{i, "run", "grammar", fmt.Sprintf("unknown op kind %d", int(r.Kind))}
}

// applyBDD dispatches a binary op code onto the public BDD API.
func applyBDD(op core.Op, f, g *bfbdd.BDD) *bfbdd.BDD {
	switch op {
	case core.OpAnd:
		return f.And(g)
	case core.OpOr:
		return f.Or(g)
	case core.OpXor:
		return f.Xor(g)
	case core.OpNand:
		return f.Nand(g)
	case core.OpNor:
		return f.Nor(g)
	case core.OpXnor:
		return f.Xnor(g)
	case core.OpDiff:
		return f.Diff(g)
	case core.OpImp:
		return f.Implies(g)
	}
	panic("oracle: applyBDD on " + op.String())
}

// maskVars expands a variable bitmask into a sorted index list.
func maskVars(mask uint32) []int {
	var vs []int
	for v := 0; mask != 0; v, mask = v+1, mask>>1 {
		if mask&1 == 1 {
			vs = append(vs, v)
		}
	}
	return vs
}

// checkNewest cross-checks the slot appended by the current op.
func (ex *executor) checkNewest(i int, seed int64) *Divergence {
	return ex.checkSlot(i, len(ex.truths)-1, seed)
}

// checkSlot compares slot s structurally across all engines and samples
// its evaluation against the truth table.
func (ex *executor) checkSlot(i, s int, seed int64) *Divergence {
	sig0 := ex.engs[0].sig(s)
	for _, st := range ex.engs[1:] {
		if !equalU64(st.sig(s), sig0) {
			return &Divergence{i, st.spec.Name, "canonical",
				fmt.Sprintf("slot %d structure differs from %s", s, ex.engs[0].spec.Name)}
		}
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	for k := 0; k < 4; k++ {
		if d := ex.checkRow(i, s, rng.Intn(1<<ex.seq.Vars)); d != nil {
			return d
		}
	}
	return nil
}

// checkRow evaluates slot s on one assignment row across all engines.
func (ex *executor) checkRow(i, s, row int) *Divergence {
	want := ex.truths[s].Bit(row)
	assign := Assignment(ex.seq.Vars, row)
	for _, st := range ex.engs {
		if got := st.slots[s].Eval(assign); got != want {
			return &Divergence{i, st.spec.Name, "eval",
				fmt.Sprintf("slot %d row %d: Eval=%v truth=%v", s, row, got, want)}
		}
	}
	return nil
}

// execCircuit builds a pseudo-random netlist gate by gate through every
// engine (reusing netlist.Random, the fuzz DAG generator) and appends
// its output functions as new slots.
func (ex *executor) execCircuit(i int, r OpRec) *Divergence {
	in := (r.A-1)%ex.seq.Vars + 1
	c := netlist.Random(in, r.B, r.Seed)
	inputPos := make(map[int]int, len(c.Inputs))
	for pos, gi := range c.Inputs {
		inputPos[gi] = pos
	}
	// Ground truth per gate.
	gateT := make([]Truth, len(c.Gates))
	for gi, g := range c.Gates {
		gateT[gi] = gateTruth(ex.seq.Vars, g, gateT, inputPos[gi])
	}
	isOut := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		isOut[o] = true
	}
	for _, st := range ex.engs {
		gateB := make([]*bfbdd.BDD, len(c.Gates))
		for gi, g := range c.Gates {
			gateB[gi] = gateBDD(st.m, g, gateB, inputPos[gi])
		}
		for _, o := range c.Outputs {
			st.slots = append(st.slots, gateB[o])
		}
		for gi, b := range gateB {
			if !isOut[gi] {
				b.Free()
			}
		}
	}
	first := len(ex.truths)
	for _, o := range c.Outputs {
		ex.truths = append(ex.truths, gateT[o])
	}
	for s := first; s < len(ex.truths); s++ {
		if d := ex.checkSlot(i, s, r.Seed+int64(s)); d != nil {
			return d
		}
	}
	return nil
}

// gateTruth evaluates one gate over the truth tables of its fanins.
func gateTruth(vars int, g netlist.Gate, gateT []Truth, inputPos int) Truth {
	switch g.Type {
	case netlist.GateInput:
		return TruthVar(vars, inputPos)
	case netlist.GateConst0:
		return TruthConst(vars, false)
	case netlist.GateConst1:
		return TruthConst(vars, true)
	case netlist.GateNot:
		return gateT[g.Fanin[0]].Not()
	case netlist.GateBuf:
		return gateT[g.Fanin[0]]
	}
	op, neg := gateOp(g.Type)
	t := gateT[g.Fanin[0]]
	for _, f := range g.Fanin[1:] {
		t = t.Bin(op, gateT[f])
	}
	if neg {
		t = t.Not()
	}
	return t
}

// gateBDD evaluates one gate symbolically through the public BDD API.
func gateBDD(m *bfbdd.Manager, g netlist.Gate, gateB []*bfbdd.BDD, inputPos int) *bfbdd.BDD {
	switch g.Type {
	case netlist.GateInput:
		return m.Var(inputPos)
	case netlist.GateConst0:
		return m.Zero()
	case netlist.GateConst1:
		return m.One()
	case netlist.GateNot:
		return gateB[g.Fanin[0]].Not()
	case netlist.GateBuf:
		b := gateB[g.Fanin[0]]
		return b.Or(b) // fresh handle for the same function
	}
	op, neg := gateOp(g.Type)
	b := gateB[g.Fanin[0]]
	free := false
	for _, f := range g.Fanin[1:] {
		nb := applyBDD(op, b, gateB[f])
		if free {
			b.Free()
		}
		b, free = nb, true
	}
	if neg {
		nb := b.Not()
		if free {
			b.Free()
		}
		b = nb
	}
	return b
}

// gateOp maps an n-ary gate type onto a base binary op and a final
// negation (NAND folds as AND then NOT, matching netlist.GateType.Eval).
func gateOp(t netlist.GateType) (core.Op, bool) {
	switch t {
	case netlist.GateAnd:
		return core.OpAnd, false
	case netlist.GateNand:
		return core.OpAnd, true
	case netlist.GateOr:
		return core.OpOr, false
	case netlist.GateNor:
		return core.OpOr, true
	case netlist.GateXor:
		return core.OpXor, false
	case netlist.GateXnor:
		return core.OpXor, true
	}
	panic("oracle: gateOp on " + t.String())
}

// execMeta checks metamorphic Boolean identities on two existing slots
// within each engine; all comparisons are canonical-handle equality, so
// they hold independently of the truth tables.
func (ex *executor) execMeta(i int, r OpRec) *Divergence {
	a, b := ex.slot(r.A), ex.slot(r.B)
	v := r.Var % ex.seq.Vars
	for _, st := range ex.engs {
		f, g := st.slots[a], st.slots[b]
		if d := metaCheck(i, st.spec.Name, f, g, v); d != nil {
			return d
		}
	}
	return nil
}

func metaCheck(i int, engine string, f, g *bfbdd.BDD, v int) *Divergence {
	fail := func(check string) *Divergence {
		return &Divergence{i, engine, check, fmt.Sprintf("identity violated (v%d)", v)}
	}
	tmp := make([]*bfbdd.BDD, 0, 16)
	keep := func(b *bfbdd.BDD) *bfbdd.BDD { tmp = append(tmp, b); return b }
	defer func() {
		for _, b := range tmp {
			b.Free()
		}
	}()
	// De Morgan: ¬(f ∧ g) = ¬f ∨ ¬g.
	nf, ng := keep(f.Not()), keep(g.Not())
	if !keep(keep(f.And(g)).Not()).Equal(keep(nf.Or(ng))) {
		return fail("meta-demorgan")
	}
	// Absorption: f ∨ (f ∧ g) = f and f ∧ (f ∨ g) = f.
	if !keep(f.Or(keep(f.And(g)))).Equal(f) {
		return fail("meta-absorb-or")
	}
	if !keep(f.And(keep(f.Or(g)))).Equal(f) {
		return fail("meta-absorb-and")
	}
	// f ⊕ f = 0.
	if !keep(f.Xor(f)).IsZero() {
		return fail("meta-xor-self")
	}
	// Implication expansion: f → g = ¬f ∨ g.
	if !keep(f.Implies(g)).Equal(keep(nf.Or(g))) {
		return fail("meta-implies")
	}
	// Quantifier duality: ¬∃v f = ∀v ¬f.
	if !keep(keep(f.Exists(v)).Not()).Equal(keep(nf.Forall(v))) {
		return fail("meta-quant-dual")
	}
	return nil
}

// execAnySat checks AnySat agreement with the truth table: satisfiable
// exactly when the table is non-zero, and any returned partial
// assignment must satisfy under both all-false and all-true completions
// of its don't-cares.
func (ex *executor) execAnySat(i int, r OpRec) *Divergence {
	a := ex.slot(r.A)
	want := !ex.truths[a].IsZero()
	for _, st := range ex.engs {
		assign, ok := st.slots[a].AnySat()
		if ok != want {
			return &Divergence{i, st.spec.Name, "anysat",
				fmt.Sprintf("slot %d: ok=%v truth satisfiable=%v", a, ok, want)}
		}
		if !ok {
			continue
		}
		row0, row1 := 0, 1<<ex.seq.Vars-1
		for v, val := range assign {
			if val {
				row0 |= 1 << v
			} else {
				row1 &^= 1 << v
			}
		}
		if !ex.truths[a].Bit(row0) || !ex.truths[a].Bit(row1) {
			return &Divergence{i, st.spec.Name, "anysat",
				fmt.Sprintf("slot %d: assignment completion unsatisfied (rows %d,%d)", a, row0, row1)}
		}
	}
	return nil
}

// execSnapshot round-trips every engine's full slot set through the
// snapshot subsystem: restore must reproduce the exact canonical
// structure and the re-snapshot must be byte-identical.
func (ex *executor) execSnapshot(i int) *Divergence {
	for _, st := range ex.engs {
		if d := snapshotRoundTrip(i, st); d != nil {
			return d
		}
	}
	return nil
}

func snapshotRoundTrip(i int, st *engState) *Divergence {
	roots := make([]bfbdd.SnapshotRoot, len(st.slots))
	for j, b := range st.slots {
		roots[j] = bfbdd.SnapshotRoot{ID: uint64(j), B: b}
	}
	var buf bytes.Buffer
	if err := st.m.SnapshotRoots(&buf, roots); err != nil {
		return &Divergence{i, st.spec.Name, "snapshot", "write: " + err.Error()}
	}
	m2, restored, err := bfbdd.RestoreManager(bytes.NewReader(buf.Bytes()), st.spec.Opts...)
	if err != nil {
		return &Divergence{i, st.spec.Name, "snapshot", "restore: " + err.Error()}
	}
	defer m2.Close()
	if len(restored) != len(st.slots) {
		return &Divergence{i, st.spec.Name, "snapshot",
			fmt.Sprintf("restored %d roots, want %d", len(restored), len(st.slots))}
	}
	sort.Slice(restored, func(a, b int) bool { return restored[a].ID < restored[b].ID })
	for j, rt := range restored {
		if rt.ID != uint64(j) {
			return &Divergence{i, st.spec.Name, "snapshot",
				fmt.Sprintf("root ID %d at position %d", rt.ID, j)}
		}
		want := st.sig(j)
		got := m2.Kernel().CanonicalSignature([]node.Ref{rt.B.Ref()})
		if !equalU64(got, want) {
			return &Divergence{i, st.spec.Name, "snapshot",
				fmt.Sprintf("restored slot %d structure differs", j)}
		}
	}
	roots2 := make([]bfbdd.SnapshotRoot, len(restored))
	for j, rt := range restored {
		roots2[j] = bfbdd.SnapshotRoot{ID: rt.ID, B: rt.B}
	}
	var buf2 bytes.Buffer
	if err := m2.SnapshotRoots(&buf2, roots2); err != nil {
		return &Divergence{i, st.spec.Name, "snapshot", "rewrite: " + err.Error()}
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		return &Divergence{i, st.spec.Name, "snapshot",
			fmt.Sprintf("re-snapshot not byte-identical (%d vs %d bytes)", buf.Len(), buf2.Len())}
	}
	return nil
}

// execSpill round-trips every engine through the memory tier: spill
// every level to disk, verify slot A's canonical structure is unchanged
// while the store is spilled (mmap platforms read through the mapping;
// others unspill transparently), bring everything back, verify again,
// then cross-check the slot across engines. Engines without a tier (the
// temp dir failed) pass trivially — SpillAll is an inert no-op there.
func (ex *executor) execSpill(i int, r OpRec) *Divergence {
	a := ex.slot(r.A)
	for _, st := range ex.engs {
		before := st.sig(a)
		if err := st.m.SpillAll(); err != nil {
			return &Divergence{i, st.spec.Name, "spill", "spill: " + err.Error()}
		}
		if got := st.sig(a); !equalU64(got, before) {
			return &Divergence{i, st.spec.Name, "spill",
				fmt.Sprintf("slot %d structure changed while spilled", a)}
		}
		if err := st.m.Unspill(); err != nil {
			return &Divergence{i, st.spec.Name, "spill", "unspill: " + err.Error()}
		}
		if got := st.sig(a); !equalU64(got, before) {
			return &Divergence{i, st.spec.Name, "spill",
				fmt.Sprintf("slot %d structure changed after unspill", a)}
		}
	}
	return ex.checkSlot(i, a, r.Seed)
}

// execAbort probes abort recovery: a pre-canceled context must refuse
// the build, and a build under a deliberately tiny node budget must
// either finish or abort with a typed budget error — in every case the
// manager must remain consistent and reusable, which checkSlot then
// verifies across engines.
func (ex *executor) execAbort(i int, r OpRec) *Divergence {
	a, b := ex.slot(r.A), ex.slot(r.B)
	for _, st := range ex.engs {
		k := st.m.Kernel()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := k.ApplyCtx(ctx, r.Op, st.slots[a].Ref(), st.slots[b].Ref()); err == nil {
			return &Divergence{i, st.spec.Name, "abort-cancel",
				"pre-canceled ApplyCtx returned no error"}
		}
		k.SetBudget(k.NumNodes()+4, 0)
		_, err := k.ApplyCtx(context.Background(), r.Op, st.slots[a].Ref(), st.slots[b].Ref())
		k.SetBudget(0, 0)
		var be *bfbdd.BudgetError
		if err != nil && !errors.As(err, &be) {
			return &Divergence{i, st.spec.Name, "abort-budget",
				"unexpected abort error: " + err.Error()}
		}
	}
	return ex.checkSlot(i, a, r.Seed)
}

// compileExhaustiveVars bounds exhaustive EvalBatch verification: up to
// this many variables every assignment row is checked; beyond it, 256
// seeded rows per artifact.
const compileExhaustiveVars = 10

// execCompile freezes every engine's full slot set into a compiled
// function artifact and cross-checks the frozen read path against both
// oracles: the truth table (ground truth) and the live manager (the
// write path the artifact was compiled from). Compilation renumbers
// into the canonical level-major order, so the serialized artifact must
// come out byte-identical on every engine, and the bytes must round-trip
// through the hostile-hardened loader with identical answers.
func (ex *executor) execCompile(i int, r OpRec) *Divergence {
	vars := ex.seq.Vars
	rowIdx := make([]int, 0, 1<<compileExhaustiveVars)
	if vars <= compileExhaustiveVars {
		for row := 0; row < 1<<vars; row++ {
			rowIdx = append(rowIdx, row)
		}
	} else {
		rng := rand.New(rand.NewSource(r.Seed))
		for k := 0; k < 256; k++ {
			rowIdx = append(rowIdx, rng.Intn(1<<vars))
		}
	}
	assigns := make([][]bool, len(rowIdx))
	for j, row := range rowIdx {
		assigns[j] = Assignment(vars, row)
	}
	var refBytes []byte
	for _, st := range ex.engs {
		roots := make([]bfbdd.SnapshotRoot, len(st.slots))
		for j, b := range st.slots {
			roots[j] = bfbdd.SnapshotRoot{ID: uint64(j), B: b}
		}
		fn, err := st.m.CompileRoots(roots)
		if err != nil {
			return &Divergence{i, st.spec.Name, "compile", "compile: " + err.Error()}
		}
		if d := ex.checkCompiled(i, st, fn, rowIdx, assigns, r.Seed); d != nil {
			return d
		}
		var buf bytes.Buffer
		if err := fn.Serialize(&buf); err != nil {
			return &Divergence{i, st.spec.Name, "compile", "serialize: " + err.Error()}
		}
		if refBytes == nil {
			refBytes = buf.Bytes()
			fn2, err := bfbdd.LoadCompiled(bytes.NewReader(refBytes))
			if err != nil {
				return &Divergence{i, st.spec.Name, "compile-load", err.Error()}
			}
			if d := ex.checkCompiled(i, st, fn2, rowIdx, assigns, r.Seed); d != nil {
				d.Check = "compile-load"
				return d
			}
		} else if !bytes.Equal(buf.Bytes(), refBytes) {
			return &Divergence{i, st.spec.Name, "compile-bytes",
				fmt.Sprintf("artifact differs from %s (%d vs %d bytes)",
					ex.engs[0].spec.Name, buf.Len(), len(refBytes))}
		}
	}
	return nil
}

// checkCompiled verifies one artifact against every slot's truth table
// (EvalBatch over rowIdx, SatCount) and spot-checks single-assignment
// Eval against both the truth table and the live manager.
func (ex *executor) checkCompiled(i int, st *engState, fn *bfbdd.CompiledFunc,
	rowIdx []int, assigns [][]bool, seed int64) *Divergence {
	vars := ex.seq.Vars
	for s := range st.slots {
		root, ok := fn.RootByID(uint64(s))
		if !ok {
			return &Divergence{i, st.spec.Name, "compile",
				fmt.Sprintf("artifact lost root id %d", s)}
		}
		got := fn.EvalBatch(root, assigns)
		for j, row := range rowIdx {
			if got[j] != ex.truths[s].Bit(row) {
				return &Divergence{i, st.spec.Name, "compile-evalbatch",
					fmt.Sprintf("slot %d row %d: EvalBatch=%v truth=%v", s, row, got[j], ex.truths[s].Bit(row))}
			}
		}
		rng := rand.New(rand.NewSource(seed ^ int64(s)))
		for k := 0; k < 4; k++ {
			row := rng.Intn(1 << vars)
			asn := Assignment(vars, row)
			cv := fn.Eval(root, asn)
			if cv != ex.truths[s].Bit(row) {
				return &Divergence{i, st.spec.Name, "compile-eval",
					fmt.Sprintf("slot %d row %d: Eval=%v truth=%v", s, row, cv, ex.truths[s].Bit(row))}
			}
			if lv := st.slots[s].Eval(asn); lv != cv {
				return &Divergence{i, st.spec.Name, "compile-live",
					fmt.Sprintf("slot %d row %d: compiled=%v manager=%v", s, row, cv, lv)}
			}
		}
		if got := fn.SatCount(root); got.Cmp(ex.truths[s].Count()) != 0 {
			return &Divergence{i, st.spec.Name, "compile-satcount",
				fmt.Sprintf("slot %d: SatCount=%v truth=%v", s, got, ex.truths[s].Count())}
		}
	}
	return nil
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
