package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkWALAppend measures the per-operation journaling cost under
// each sync policy — the write-ahead overhead every acknowledged
// mutation pays. SyncAlways is dominated by the fsync; interval and none
// by the frame encode + one write(2).
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		b.Run(pol.String(), func(b *testing.B) {
			l, err := Open(b.TempDir(), "s-bench", 0,
				Options{Policy: pol, Interval: time.Second}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rec := ApplyRec{Op: 1, F: 3, G: 4, Handle: 5}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppendGroup measures group commit: many records in one
// Append share one frame assembly, one write, and (under always) one
// fsync. ns/op divided by the group size is the amortized per-record
// cost.
func BenchmarkWALAppendGroup(b *testing.B) {
	for _, size := range []int{8, 64} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			l, err := Open(b.TempDir(), "s-bench", 0, Options{Policy: SyncNone}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			recs := make([]Record, size)
			for i := range recs {
				recs[i] = ApplyRec{Op: 1, F: uint64(i), G: uint64(i + 1), Handle: uint64(i + 2)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(recs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALReplay measures the decode side: scanning one segment of
// 4096 apply records, the unit of work startup recovery does per
// segment. ns/op / 4096 is the per-record replay cost.
func BenchmarkWALReplay(b *testing.B) {
	const records = 4096
	dir := b.TempDir()
	l, err := Open(dir, "s-bench", 0, Options{Policy: SyncNone}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := l.Append(ApplyRec{Op: uint8(i % NumOps), F: uint64(i), G: uint64(i + 1), Handle: uint64(i + 2)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, SegmentName("s-bench", 0))
	if _, err := os.Stat(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		st, err := ScanSegmentFile(path, func(Entry) error { n++; return nil })
		if err != nil || st.Torn || n != records {
			b.Fatalf("scan: n=%d torn=%v err=%v", n, st.Torn, err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*records), "ns/record")
}
