package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestHeaderEpochRoundtrip(t *testing.T) {
	b := encodeHeader(42, 7)
	base, epoch, n, err := ParseHeader(b)
	if err != nil || base != 42 || epoch != 7 || n != HeaderSize {
		t.Fatalf("ParseHeader = %d,%d,%d,%v", base, epoch, n, err)
	}
}

// encodeHeaderV1 renders the 24-byte version-1 header exactly as older
// builds wrote it, so compatibility is tested against real v1 bytes.
func encodeHeaderV1(base uint64) []byte {
	b := make([]byte, headerSizeV1)
	copy(b, Magic)
	binary.LittleEndian.PutUint16(b[8:], 1)
	binary.LittleEndian.PutUint16(b[10:], 0)
	binary.LittleEndian.PutUint64(b[12:], base)
	binary.LittleEndian.PutUint32(b[20:], crc32.ChecksumIEEE(b[:20]))
	return b
}

func TestV1SegmentStillReadable(t *testing.T) {
	var seg []byte
	seg = append(seg, encodeHeaderV1(3)...)
	for i, r := range []Record{VarRec{Index: 0, Handle: 1}, GCRec{}} {
		seg = AppendFrame(seg, EncodeRecord(uint64(4+i), r))
	}
	var seqs []uint64
	st, err := ScanSegment(bytes.NewReader(seg), func(e Entry) error {
		seqs = append(seqs, e.Seq)
		return nil
	})
	if err != nil || st.Torn {
		t.Fatalf("scan v1: %v torn=%v (%v)", err, st.Torn, st.TornErr)
	}
	if st.Base != 3 || st.Epoch != 0 || !reflect.DeepEqual(seqs, []uint64{4, 5}) {
		t.Fatalf("v1 scan: base=%d epoch=%d seqs=%v", st.Base, st.Epoch, seqs)
	}

	// A v1 file on disk participates in MaxEpoch (as 0) and VerifyChain.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SegmentName("s-v1", 3)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	if max, err := MaxEpoch(dir, "s-v1"); err != nil || max != 0 {
		t.Fatalf("MaxEpoch over v1 = %d, %v", max, err)
	}
	cs, err := VerifyChain(dir, "s-v1")
	if err != nil || cs.Records != 2 || cs.LastSeq != 5 {
		t.Fatalf("VerifyChain over v1: %+v err=%v", cs, err)
	}
}

func TestOpenFencesStaleEpoch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "s-ep", 0, Options{Policy: SyncNone, Epoch: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(VarRec{Index: 0, Handle: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if max, err := MaxEpoch(dir, "s-ep"); err != nil || max != 2 {
		t.Fatalf("MaxEpoch = %d, %v", max, err)
	}

	// A stale primary (epoch 1) must be refused; the promoted owner's
	// epoch (2) and anything higher must still open.
	if _, err := Open(dir, "s-ep", 1, Options{Policy: SyncNone, Epoch: 1}, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch open: %v, want ErrFenced", err)
	}
	l2, err := Open(dir, "s-ep", 1, Options{Policy: SyncNone, Epoch: 3}, nil)
	if err != nil {
		t.Fatalf("newer-epoch open: %v", err)
	}
	l2.Close()
}

func TestSetEpochStampsSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "s-se", 0, Options{Policy: SyncNone, Epoch: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Empty active segment: the header is rewritten in place.
	if err := l.SetEpoch(2); err != nil {
		t.Fatal(err)
	}
	if segs, _ := ListSegments(dir, "s-se"); len(segs) != 1 {
		t.Fatalf("in-place restamp created segments: %v", segs)
	}
	if max, _ := MaxEpoch(dir, "s-se"); max != 2 {
		t.Fatalf("epoch after in-place restamp = %d, want 2", max)
	}

	// Non-empty active segment: SetEpoch rotates so the old records keep
	// their epoch and new ones land under the new epoch.
	if err := l.Append(VarRec{Index: 0, Handle: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.SetEpoch(5); err != nil {
		t.Fatal(err)
	}
	if got := l.Epoch(); got != 5 {
		t.Fatalf("Epoch = %d, want 5", got)
	}
	if err := l.Append(VarRec{Index: 1, Handle: 2}); err != nil {
		t.Fatal(err)
	}
	segs, _ := ListSegments(dir, "s-se")
	if len(segs) != 2 {
		t.Fatalf("segments after rotating restamp: %v", segs)
	}
	cs, err := VerifyChain(dir, "s-se")
	if err != nil || cs.MaxEpoch != 5 || cs.Records != 2 || cs.LastSeq != 2 {
		t.Fatalf("VerifyChain: %+v err=%v", cs, err)
	}

	// Lowering the epoch is a fencing violation.
	if err := l.SetEpoch(4); !errors.Is(err, ErrFenced) {
		t.Fatalf("lowering epoch: %v, want ErrFenced", err)
	}
}

func TestScanFramesRoundtripAndTorn(t *testing.T) {
	recs := allKinds()
	var wire []byte
	for i, r := range recs {
		wire = AppendFrame(wire, EncodeRecord(uint64(i+1), r))
	}
	var got []Record
	n, err := ScanFrames(wire, func(e Entry) error {
		got = append(got, e.Rec)
		return nil
	})
	if err != nil || n != len(recs) {
		t.Fatalf("ScanFrames: n=%d err=%v", n, err)
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d diverged: %+v != %+v", i, got[i], recs[i])
		}
	}

	// Every truncation of the stream delivers a prefix and a typed error
	// (the torn-final-record-at-the-follower shape): never a panic, never
	// an over-delivery.
	for cut := 0; cut < len(wire); cut++ {
		n := 0
		delivered, err := ScanFrames(wire[:cut], func(Entry) error { n++; return nil })
		if cut == 0 {
			if delivered != 0 || err != nil {
				t.Fatalf("empty stream: %d, %v", delivered, err)
			}
			continue
		}
		if err == nil {
			// A cut can only scan cleanly if it is frame-aligned; then it
			// must be a strict prefix.
			if delivered >= len(recs) {
				t.Fatalf("cut %d: clean scan delivered %d records", cut, delivered)
			}
			continue
		}
		if delivered != n || delivered >= len(recs) {
			t.Fatalf("cut %d: delivered=%d n=%d", cut, delivered, n)
		}
	}

	// A corrupted byte inside a frame is a typed error, not a panic.
	mut := append([]byte(nil), wire...)
	mut[frameOverhead+1] ^= 0xA5
	if _, err := ScanFrames(mut, func(Entry) error { return nil }); err == nil {
		t.Fatal("ScanFrames accepted a corrupted frame")
	}
}

func TestCollectFrames(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "s-cf", 0, Options{Policy: SyncNone, Epoch: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.Append(VarRec{Index: i, Handle: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer l.Close()

	// The window (2, 5] spans the segment boundary.
	frames, last, err := CollectFrames(dir, "s-cf", 2, 5, 0)
	if err != nil || last != 5 {
		t.Fatalf("CollectFrames: last=%d err=%v", last, err)
	}
	var seqs []uint64
	if _, err := ScanFrames(frames, func(e Entry) error { seqs = append(seqs, e.Seq); return nil }); err != nil {
		t.Fatal(err)
	}
	if want := []uint64{3, 4, 5}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("seqs = %v, want %v", seqs, want)
	}

	// A byte budget still ships at least one record and reports where it
	// stopped so the follower's next poll resumes there.
	frames, last, err = CollectFrames(dir, "s-cf", 0, 6, 1)
	if err != nil || last != 1 {
		t.Fatalf("budgeted collect: last=%d err=%v", last, err)
	}
	if n, err := ScanFrames(frames, func(Entry) error { return nil }); err != nil || n != 1 {
		t.Fatalf("budgeted frames: n=%d err=%v", n, err)
	}

	// Truncating the chain below the requested base is ErrNoChain — the
	// follower must re-bootstrap from a snapshot.
	if err := l.TruncateTo(3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := CollectFrames(dir, "s-cf", 0, 6, 0); !errors.Is(err, ErrNoChain) {
		t.Fatalf("post-truncation collect: %v, want ErrNoChain", err)
	}
}

func TestVerifyChainDetectsGapAndEpochRegression(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "s-vc", 0, Options{Policy: SyncNone, Epoch: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		l.Append(VarRec{Index: i, Handle: uint64(i + 1)})
		if i == 1 || i == 3 {
			l.Rotate()
		}
	}
	l.Close()
	if cs, err := VerifyChain(dir, "s-vc"); err != nil || cs.Segments != 3 || cs.Records != 6 {
		t.Fatalf("healthy chain: %+v err=%v", cs, err)
	}

	// Remove the middle segment: the chain cannot bridge to the last one.
	// (Removing the oldest would just be a shorter, still-valid chain.)
	segs, _ := ListSegments(dir, "s-vc")
	if err := os.Rename(segs[1].Path, segs[1].Path+".stash"); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain(dir, "s-vc"); !errors.Is(err, ErrNoChain) {
		t.Fatalf("gap verdict: %v, want ErrNoChain", err)
	}
	if err := os.Rename(segs[1].Path+".stash", segs[1].Path); err != nil {
		t.Fatal(err)
	}

	// Rewrite the second segment's header with a lower epoch: regression.
	data, err := os.ReadFile(segs[1].Path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, encodeHeader(2, 0))
	if err := os.WriteFile(segs[1].Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain(dir, "s-vc"); err == nil {
		t.Fatal("VerifyChain accepted an epoch regression")
	}
}
