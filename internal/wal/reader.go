package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// SegmentStats summarizes one segment scan.
type SegmentStats struct {
	Base    uint64 // from the header
	Epoch   uint64 // replication epoch from the header (0 for v1)
	Records int    // well-formed records delivered
	LastSeq uint64 // sequence of the last delivered record (Base if none)
	// Torn reports that the scan stopped before EOF: a frame was
	// half-written, its CRC mismatched, or its sequence broke the chain.
	// Everything before it was delivered; everything after is discarded.
	Torn bool
	// TornErr is the typed error that ended a torn scan (nil otherwise).
	TornErr error
}

// ScanSegment reads one segment stream: header, then records in order,
// calling fn for each. Records must be densely sequenced from base+1; the
// first malformed or out-of-sequence frame ends the scan as a torn tail
// (reported in the stats, not as an error — a torn tail is the expected
// shape of a crash). Only a bad header or an fn failure produce an error.
// Hostile bytes never panic.
func ScanSegment(r io.Reader, fn func(Entry) error) (SegmentStats, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var st SegmentStats
	// Headers are version-sized: read the v1 prefix first, then the v2
	// epoch extension if the version field says so.
	hdr := make([]byte, headerSizeV1, HeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return st, fmt.Errorf("%w: %d-byte segment", ErrTruncated, headerBytesRead(err, hdr))
	}
	if string(hdr[:8]) == Magic && binary.LittleEndian.Uint16(hdr[8:]) == Version {
		hdr = hdr[:HeaderSize]
		if _, err := io.ReadFull(br, hdr[headerSizeV1:]); err != nil {
			return st, fmt.Errorf("%w: segment shorter than its v2 header", ErrTruncated)
		}
	}
	base, epoch, _, err := ParseHeader(hdr)
	if err != nil {
		return st, err
	}
	st.Base = base
	st.Epoch = epoch
	st.LastSeq = base
	buf := make([]byte, 0, 4096)
	for {
		var frame [frameOverhead]byte
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return st, nil // clean end
			}
			st.Torn, st.TornErr = true, fmt.Errorf("%w: partial frame prefix", ErrTruncated)
			return st, nil
		}
		length := binary.LittleEndian.Uint32(frame[0:])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if length == 0 || length > MaxRecordLen {
			st.Torn, st.TornErr = true, corrupt("frame length %d", length)
			return st, nil
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			st.Torn, st.TornErr = true, fmt.Errorf("%w: partial frame payload", ErrTruncated)
			return st, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			st.Torn, st.TornErr = true, fmt.Errorf("%w: record after seq %d", ErrChecksum, st.LastSeq)
			return st, nil
		}
		ent, err := DecodeRecord(payload)
		if err != nil {
			st.Torn, st.TornErr = true, err
			return st, nil
		}
		if ent.Seq != st.LastSeq+1 {
			st.Torn, st.TornErr = true, corrupt("sequence %d after %d", ent.Seq, st.LastSeq)
			return st, nil
		}
		if err := fn(ent); err != nil {
			return st, err
		}
		st.Records++
		st.LastSeq = ent.Seq
	}
}

func headerBytesRead(err error, hdr []byte) int {
	if err == io.EOF {
		return 0
	}
	// ReadFull returned ErrUnexpectedEOF; the exact count is not
	// recoverable, report the partial size class.
	return len(hdr) - 1
}

// ScanSegmentFile runs ScanSegment over a file.
func ScanSegmentFile(path string, fn func(Entry) error) (SegmentStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return SegmentStats{}, err
	}
	defer f.Close()
	return ScanSegment(f, fn)
}

// ReplayStats summarizes a cross-segment tail replay.
type ReplayStats struct {
	Segments  int    // segment files visited
	Replayed  uint64 // records delivered to fn
	Skipped   uint64 // records below the replay base (already in the snapshot)
	TornTails int    // segments that ended in a discarded torn tail
	LastSeq   uint64 // last contiguous sequence reached
	// Gap reports that records exist beyond LastSeq that the chain cannot
	// reach (a whole segment is missing, or a segment's base is beyond
	// the snapshot it should chain from). Under SyncAlways a gap means
	// acknowledged history is unreachable — callers must treat the
	// checkpoint/WAL pair as non-chaining and refuse it rather than
	// silently serving a partial state.
	Gap bool
	// GapBase is the base of the first unreachable segment when Gap.
	GapBase uint64
}

// ReplayTail replays id's records with sequence > from, in order, from
// the segment chain in dir. Segments whose records all fall at or below
// from are skipped over; a torn tail ends its segment and the chain
// continues with the next segment if that segment chains contiguously.
// fn errors abort the replay and are returned as-is.
func ReplayTail(dir, id string, from uint64, fn func(Entry) error) (ReplayStats, error) {
	st := ReplayStats{LastSeq: from}
	segs, err := ListSegments(dir, id)
	if err != nil {
		return st, err
	}
	for _, sg := range segs {
		if sg.Base > st.LastSeq {
			// The chain cannot bridge to this segment. If it (or anything
			// after it, which has an even higher base) holds records, they
			// are unreachable.
			n, _ := countRecords(sg.Path)
			if n > 0 {
				st.Gap = true
				st.GapBase = sg.Base
				return st, nil
			}
			continue
		}
		st.Segments++
		seg, err := ScanSegmentFile(sg.Path, func(e Entry) error {
			if e.Seq <= st.LastSeq {
				st.Skipped++
				return nil
			}
			if e.Seq != st.LastSeq+1 {
				// Cannot happen with ScanSegment's dense-sequence check
				// plus the base ordering, but guard anyway.
				return corrupt("sequence %d after %d", e.Seq, st.LastSeq)
			}
			if err := fn(e); err != nil {
				return err
			}
			st.Replayed++
			st.LastSeq = e.Seq
			return nil
		})
		if err != nil {
			return st, err
		}
		if seg.Torn {
			st.TornTails++
		}
	}
	return st, nil
}

// countRecords counts the well-formed records in a segment, tolerating
// torn tails and unreadable files (both count as zero reachable records
// beyond what was scanned).
func countRecords(path string) (int, error) {
	n := 0
	st, err := ScanSegmentFile(path, func(Entry) error { n++; return nil })
	_ = st
	return n, err
}
