package wal

import (
	"sync"
	"testing"
)

// TestConcurrentAppendRotateTruncate races the three mutators the server
// runs concurrently — the session executor appending, the checkpointer
// rotating at each snapshot and truncating after each commit — and then
// proves the on-disk chain still replays every appended record exactly
// once from the highest truncation point. Run under -race this is the
// append-vs-checkpoint interleaving test; without it, it is still a
// strong linearizability check on the segment chain.
func TestConcurrentAppendRotateTruncate(t *testing.T) {
	dir := t.TempDir()
	var ctr Counters
	l, err := Open(dir, "s-race", 0, Options{Policy: SyncNone}, &ctr)
	if err != nil {
		t.Fatal(err)
	}

	const appends = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	// checkpointBase is the highest sequence a simulated checkpoint has
	// covered; records above it must survive on disk.
	var mu sync.Mutex
	var checkpointBase uint64

	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := l.Append(VarRec{Index: i & 0xF, Handle: uint64(i + 1)}); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			// The checkpointer's sequence: rotate so the covered records end
			// at a segment boundary, then truncate everything below that
			// boundary. Truncating to anything other than a boundary could
			// delete records a checkpoint does not cover — the same reason
			// the server truncates to the sequence it rotated at.
			if err := l.Rotate(); err != nil {
				t.Errorf("rotate: %v", err)
				return
			}
			l.mu.Lock()
			base := l.base
			l.mu.Unlock()
			if err := l.TruncateTo(base); err != nil {
				t.Errorf("truncate: %v", err)
				return
			}
			mu.Lock()
			if base > checkpointBase {
				checkpointBase = base
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything after the last covered sequence replays densely.
	want := uint64(appends) - checkpointBase
	var n uint64
	last := checkpointBase
	st, err := ReplayTail(dir, "s-race", checkpointBase, func(e Entry) error {
		if e.Seq != last+1 {
			return corrupt("sequence %d after %d", e.Seq, last)
		}
		last = e.Seq
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Gap {
		t.Fatalf("chain gap at base %d", st.GapBase)
	}
	if n != want || last != appends {
		t.Fatalf("replayed %d records to seq %d, want %d to %d", n, last, want, appends)
	}
	if got := ctr.Appended.Load(); got != appends {
		t.Fatalf("Appended = %d, want %d", got, appends)
	}
}
